module treeserver

go 1.22
