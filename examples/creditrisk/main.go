// Credit-risk demo: the paper's Fig. 1 scenario — predicting credit-card
// default from a small customer table — scaled up to a realistic size, with
// missing values and values unseen during training, trained through the
// distributed engine and rendered as a human-readable tree.
//
//	go run ./examples/creditrisk
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
	"treeserver/internal/split"
	"treeserver/internal/task"
)

// makeCustomers synthesises a customer table shaped like Fig. 1(a): Age,
// Education, HomeOwner, Income -> Default, with a plausible ground truth
// (low income and young renters default more) plus noise and missing cells.
func makeCustomers(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	eduLevels := []string{"Primary", "Secondary", "Bachelor", "Master", "PhD"}
	age := make([]float64, n)
	edu := make([]int32, n)
	owner := make([]int32, n)
	income := make([]float64, n)
	def := make([]int32, n)
	for i := 0; i < n; i++ {
		age[i] = 18 + rng.Float64()*50
		edu[i] = int32(rng.Intn(5))
		owner[i] = int32(rng.Intn(2))
		income[i] = 2000 + rng.Float64()*9000 + float64(edu[i])*800
		risk := 0.05
		if income[i] < 5500 {
			risk += 0.55
		}
		if age[i] < 32 && owner[i] == 0 {
			risk += 0.35
		}
		if edu[i] <= 1 {
			risk += 0.2
		}
		if rng.Float64() < risk {
			def[i] = 1
		}
	}
	incomeCol := dataset.NewNumeric("Income", income)
	for i := 0; i < n; i++ { // some customers decline to state income
		if rng.Float64() < 0.04 {
			incomeCol.SetMissing(i)
		}
	}
	return dataset.MustNewTable([]*dataset.Column{
		dataset.NewNumeric("Age", age),
		dataset.NewCategorical("Education", edu, eduLevels),
		dataset.NewCategorical("HomeOwner", owner, []string{"No", "Yes"}),
		incomeCol,
		dataset.NewCategorical("Default", def, []string{"No", "Yes"}),
	}, 4)
}

func main() {
	log.SetFlags(0)
	train := makeCustomers(12000, 1)
	test := makeCustomers(3000, 2)

	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(3), cluster.WithCompers(2),
		cluster.WithPolicy(task.Policy{TauD: 1500, TauDFS: 6000, NPool: 4}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 4 // small enough to read
	tree, err := c.TrainOne(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("decision tree for credit-card default:")
	fmt.Println()
	printTree(tree.Root, train, "")

	pred := make([]int32, test.NumRows())
	for r := range pred {
		pred[r] = tree.PredictClass(test, r, 0)
	}
	fmt.Printf("\ntest accuracy: %.2f%% (baseline always-No: %.2f%%)\n",
		metrics.Accuracy(pred, test.Y().Cats)*100, baselineNo(test)*100)

	// A customer with a missing income stops at the node whose split needs
	// it and still gets a prediction (Appendix D).
	missing := makeCustomers(1, 3)
	missing.ColumnByName("Income").SetMissing(0)
	fmt.Printf("customer with undisclosed income -> predicted %q\n",
		test.Y().Levels[tree.PredictClass(missing, 0, 0)])
}

func baselineNo(tbl *dataset.Table) float64 {
	no := 0
	for r := 0; r < tbl.NumRows(); r++ {
		if tbl.Y().Cat(r) == 0 {
			no++
		}
	}
	return float64(no) / float64(tbl.NumRows())
}

// printTree renders the tree with attribute names and level labels, like
// the paper's Fig. 1(b).
func printTree(n *core.Node, tbl *dataset.Table, indent string) {
	y := tbl.Y()
	if n.IsLeaf() {
		fmt.Printf("%s-> %s  (p=%.2f, n=%d)\n", indent, y.Levels[n.Class], n.PMF[n.Class], n.N)
		return
	}
	fmt.Printf("%s%s?\n", indent, renderCond(n.Cond, tbl))
	fmt.Printf("%syes:\n", indent)
	printTree(n.Left, tbl, indent+"  ")
	fmt.Printf("%sno:\n", indent)
	printTree(n.Right, tbl, indent+"  ")
}

func renderCond(c *split.Condition, tbl *dataset.Table) string {
	col := tbl.Cols[c.Col]
	if c.Kind == dataset.Numeric {
		return fmt.Sprintf("%s <= %.1f", col.Name, c.Threshold)
	}
	names := make([]string, len(c.LeftSet))
	for i, code := range c.LeftSet {
		names[i] = col.Levels[code]
	}
	return fmt.Sprintf("%s in {%s}", col.Name, strings.Join(names, ", "))
}
