// Quickstart: train a decision tree and a random forest on an in-process
// TreeServer cluster and evaluate them on held-out data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/forest"
	"treeserver/internal/metrics"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic classification dataset: 20k rows, 8 numeric + 2
	//    categorical features, 3 classes, with a planted depth-5 concept.
	train, test := synth.Generate(synth.Spec{
		Name: "quickstart", Rows: 20000,
		NumNumeric: 8, NumCategorical: 2, CatLevels: 5,
		NumClasses: 3, ConceptDepth: 5, LabelNoise: 0.05, Seed: 42,
	}, 0.25)
	fmt.Printf("dataset: %d train / %d test rows, %d features, %d classes\n",
		train.NumRows(), test.NumRows(), train.NumCols()-1, train.NumClasses())

	// 2. An in-process TreeServer deployment: 4 workers x 4 compers,
	//    columns replicated twice, thresholds scaled to the dataset.
	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(4), cluster.WithCompers(4),
		cluster.WithPolicy(task.Policy{TauD: 2000, TauDFS: 8000, NPool: 50}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 3. One exact decision tree (the Table II(a) workload).
	params := core.Defaults() // dmax=10, tau_leaf=1, Gini
	start := time.Now()
	tree, err := c.TrainOne(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecision tree: %d nodes, depth %d, trained in %s\n",
		tree.NumNodes, tree.MaxDepth, time.Since(start).Round(time.Millisecond))
	pred := make([]int32, test.NumRows())
	for r := range pred {
		pred[r] = tree.PredictClass(test, r, 0)
	}
	fmt.Printf("decision tree test accuracy: %.2f%%\n",
		metrics.Accuracy(pred, test.Y().Cats)*100)

	// Appendix D: the same tree evaluated at truncated depths — no
	// retraining needed.
	for _, d := range []int{1, 3, 5} {
		for r := range pred {
			pred[r] = tree.PredictClass(test, r, d)
		}
		fmt.Printf("  ... truncated to depth %d: %.2f%%\n",
			d, metrics.Accuracy(pred, test.Y().Cats)*100)
	}

	// 4. A 20-tree random forest (bootstrap bags; 60% of columns per tree —
	//    with only 10 features, the paper's sqrt|A| would starve each tree)
	//    — one TreeServer job of independent tree tasks.
	start = time.Now()
	f, err := forest.Train(c, cluster.SchemaOf(train), forest.Config{
		Trees: 20, Params: params, ColFrac: 0.6, Bootstrap: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom forest: 20 trees in %s, test accuracy %.2f%%\n",
		time.Since(start).Round(time.Millisecond), f.Accuracy(test)*100)
}
