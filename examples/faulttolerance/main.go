// Fault-tolerance demo (Appendix E): a worker machine crashes in the middle
// of a forest job; the master detects the failure by heartbeat, re-replicates
// the lost columns from replicas, revokes and requeues the affected tasks,
// and the job finishes with trees identical to a crash-free run.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func main() {
	log.SetFlags(0)
	train := synth.GenerateTrain(synth.Spec{
		Name: "ft", Rows: 15000, NumNumeric: 8, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.05, Seed: 33,
	})

	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(5), cluster.WithCompers(3), cluster.WithReplicas(2),
		cluster.WithPolicy(task.Policy{TauD: 1500, TauDFS: 6000, NPool: 16}),
		cluster.WithHeartbeat(25*time.Millisecond), // enables failure detection
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	params := core.Defaults()
	specs := make([]cluster.TreeSpec, 8)
	for i := range specs {
		specs[i] = cluster.TreeSpec{Params: params}
	}

	// Crash worker 2 shortly after the job starts.
	go func() {
		time.Sleep(40 * time.Millisecond)
		fmt.Println("!! crashing worker 2 mid-job")
		c.CrashWorker(2)
	}()

	start := time.Now()
	trees, err := c.Train(specs)
	if err != nil {
		log.Fatalf("job failed despite recovery: %v", err)
	}
	fmt.Printf("job finished in %s with %d trees\n", time.Since(start).Round(time.Millisecond), len(trees))
	fmt.Printf("alive workers after recovery: %v\n", c.Master.AliveWorkers())

	// The recovered result must equal serial training exactly.
	want := core.TrainLocal(train, dataset.AllRows(train.NumRows()), params)
	for i, tr := range trees {
		if !tr.Equal(want) {
			log.Fatalf("tree %d differs from the crash-free result", i)
		}
	}
	fmt.Println("all trees identical to the crash-free serial result ✔")

	// Columns the dead worker held were re-replicated to survivors.
	for _, col := range train.FeatureIndexes() {
		holders := 0
		for _, w := range c.Master.AliveWorkers() {
			if c.Workers[w].HoldsColumn(col) {
				holders++
			}
		}
		if holders == 0 {
			log.Fatalf("column %d lost", col)
		}
	}
	fmt.Println("every column still replicated on surviving workers ✔")
}
