// Deep-forest demo (Section VII): multi-grained scanning over synthetic
// digit images followed by a cascade forest, with every forest trained as a
// TreeServer job, printing the Table-VII-style step report.
//
//	go run ./examples/deepforest
package main

import (
	"fmt"
	"log"

	"treeserver/internal/cluster"
	"treeserver/internal/deepforest"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func main() {
	log.SetFlags(0)
	trainSet := synth.Digits(800, 7)
	testSet := synth.Digits(300, 8)
	fmt.Printf("digits: %d train / %d test, %dx%d px, 10 classes\n\n",
		trainSet.Len(), testSet.Len(), trainSet.W, trainSet.H)

	cfg := deepforest.Config{
		Windows: []int{3, 5, 7}, Stride: 7,
		ForestsPerStep: 2, TreesPerForest: 20,
		MGSMaxDepth: 10, CFLevels: 4, Seed: 11,
	}
	// Every MGS and CF forest trains on a fresh in-process TreeServer
	// cluster over the step's feature table.
	factory := deepforest.ClusterFactory(
		cluster.WithWorkers(3), cluster.WithCompers(4),
		cluster.WithPolicy(task.Policy{TauD: 4000, TauDFS: 16000, NPool: 50}),
	)

	model, timings, err := deepforest.Train(trainSet, testSet, cfg, factory)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-13s %14s %12s %14s\n", "step", "train time(s)", "test time(s)", "test accuracy")
	for _, st := range timings {
		acc := ""
		if st.HasAccuracy {
			acc = fmt.Sprintf("%.2f%%", st.TestAccuracy*100)
		}
		fmt.Printf("%-13s %14.3f %12.3f %14s\n", st.Step, st.TrainSeconds, st.TestSeconds, acc)
	}

	// Classify a handful of fresh digits end to end.
	fresh := synth.Digits(10, 9)
	hits := 0
	for i := 0; i < fresh.Len(); i++ {
		if model.Predict(fresh, i) == fresh.Labels[i] {
			hits++
		}
	}
	fmt.Printf("\nend-to-end on 10 fresh digits: %d/10 correct\n", hits)
}
