// Distributed gradient boosting on TreeServer — the extension built on the
// engine's target-update protocol: rounds are sequential (each needs the
// previous ensemble's residuals) but every round's exact regression tree
// trains with full cluster parallelism.
//
//	go run ./examples/boosting
package main

import (
	"fmt"
	"log"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/gbt"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func main() {
	log.SetFlags(0)
	train, test := synth.Generate(synth.Spec{
		Name: "boosting", Rows: 12000, NumNumeric: 10, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.08, Seed: 20,
	}, 0.25)
	fmt.Printf("dataset: %d train / %d test rows, binary classification\n\n",
		train.NumRows(), test.NumRows())

	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(4), cluster.WithCompers(4),
		cluster.WithPolicy(task.Policy{TauD: 1500, TauDFS: 6000, NPool: 8}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Println("rounds  trees  test accuracy  elapsed")
	start := time.Now()
	for _, rounds := range []int{5, 15, 40} {
		model, err := gbt.Train(c, train, gbt.Config{
			Rounds: rounds, MaxDepth: 4, LearningRate: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %6d %13.2f%% %8s\n",
			rounds, len(model.Trees), model.Accuracy(test)*100,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\naccuracy keeps improving with rounds (Table IV(c)'s shape),")
	fmt.Println("while each round's tree trains distributed and exact.")
}
