package treeserver

// The benchmarks below regenerate the paper's evaluation tables (Section
// VIII) as testing.B targets, one per table, plus the DESIGN.md ablations.
// Each iteration runs the full experiment at the quick laptop scale and
// logs the rendered table once, so
//
//	go test -bench=. -benchmem
//
// both times every experiment and prints the rows the paper reports. Use
// cmd/benchtab for full-scale runs with adjustable sizes.

import (
	"strings"
	"sync"
	"testing"

	"treeserver/internal/experiments"
)

func benchScale() experiments.Scale {
	return experiments.Scale{BaseRows: 12000, Workers: 4, Compers: 4, Quick: true}
}

var logOnce sync.Map

// runExperiment executes one experiment per b.N iteration and logs its
// table on the first run.
func runExperiment(b *testing.B, name string, f func(experiments.Scale) *experiments.Result) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := f(scale)
		if _, logged := logOnce.LoadOrStore(name, true); !logged {
			var sb strings.Builder
			r.Fprint(&sb)
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTableIIa — Table II(a): one decision tree, TreeServer vs MLlib.
func BenchmarkTableIIa(b *testing.B) { runExperiment(b, "2a", experiments.TableIIa) }

// BenchmarkTableIIb — Table II(b): 20-tree random forest vs MLlib.
func BenchmarkTableIIb(b *testing.B) { runExperiment(b, "2b", experiments.TableIIb) }

// BenchmarkTableIIc — Table II(c): bagging vs XGBoost-style boosting.
func BenchmarkTableIIc(b *testing.B) { runExperiment(b, "2c", experiments.TableIIc) }

// BenchmarkTableIIInpool — Tables III(a–c): effect of n_pool.
func BenchmarkTableIIInpool(b *testing.B) { runExperiment(b, "3npool", experiments.TableIIINPool) }

// BenchmarkTableIIItdfs — Table III(d): effect of τ_dfs.
func BenchmarkTableIIItdfs(b *testing.B) { runExperiment(b, "3tdfs", experiments.TableIIITauDFS) }

// BenchmarkTableIIItd — Table III(e): effect of τ_D.
func BenchmarkTableIIItd(b *testing.B) { runExperiment(b, "3td", experiments.TableIIITauD) }

// BenchmarkTableIV — Tables IV(a,b): running time vs number of trees.
func BenchmarkTableIV(b *testing.B) { runExperiment(b, "4", experiments.TableIV) }

// BenchmarkTableIVc — Table IV(c): boosting accuracy vs tree count.
func BenchmarkTableIVc(b *testing.B) { runExperiment(b, "4c", experiments.TableIVc) }

// BenchmarkTableV — Table V: vertical scalability (compers per machine).
func BenchmarkTableV(b *testing.B) { runExperiment(b, "5", experiments.TableV) }

// BenchmarkTableVI — Table VI: horizontal scalability (machines).
func BenchmarkTableVI(b *testing.B) { runExperiment(b, "6", experiments.TableVI) }

// BenchmarkTableVII — Table VII: the deep-forest pipeline.
func BenchmarkTableVII(b *testing.B) { runExperiment(b, "7", experiments.TableVII) }

// BenchmarkTableVIIIdmax — Tables VIII(a,b): accuracy vs dmax.
func BenchmarkTableVIIIdmax(b *testing.B) { runExperiment(b, "8dmax", experiments.TableVIIIDmax) }

// BenchmarkTableVIIIcols — Tables VIII(c,d): effect of |C|/|A|.
func BenchmarkTableVIIIcols(b *testing.B) { runExperiment(b, "8cols", experiments.TableVIIICols) }

// BenchmarkFairness — the "fairness of implementation" paragraph:
// single-thread single-tree exact trainer vs single-thread MLlib.
func BenchmarkFairness(b *testing.B) { runExperiment(b, "fair", experiments.Fairness) }

// BenchmarkAblationMasterRelay — Section V ablation: delegate workers vs
// master-relayed row sets (master outbound bytes).
func BenchmarkAblationMasterRelay(b *testing.B) {
	runExperiment(b, "ab-relay", experiments.AblationMasterRelay)
}

// BenchmarkAblationSchedPolicy — hybrid BFS/DFS deque vs pure BFS / DFS.
func BenchmarkAblationSchedPolicy(b *testing.B) {
	runExperiment(b, "ab-sched", experiments.AblationSchedPolicy)
}

// BenchmarkAblationColumnGroups — Section VII ablation: DFS column grouping
// vs one file per column.
func BenchmarkAblationColumnGroups(b *testing.B) {
	runExperiment(b, "ab-colgroups", experiments.AblationColumnGroups)
}

// BenchmarkAblationLoadBal — Section VI ablation: M_work cost model vs
// round-robin assignment.
func BenchmarkAblationLoadBal(b *testing.B) {
	runExperiment(b, "ab-loadbal", experiments.AblationLoadBal)
}

// BenchmarkExtensionGBT — the repository's extension: gradient boosting
// driven through the TreeServer engine.
func BenchmarkExtensionGBT(b *testing.B) {
	runExperiment(b, "ext-gbt", experiments.ExtensionGBT)
}
