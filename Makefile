# TreeServer-Go build targets. Everything is stdlib-only Go >= 1.22.

GO ?= go

.PHONY: all build test race recovery straggler hist failover elastic serve resilience cover bench experiments ablations examples fmt vet lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cluster/ ./internal/transport/ ./internal/task/

# Crash-restart recovery suite: checkpoint format, cluster resume tests and
# the master-kill chaos cells, all under the race detector.
recovery:
	$(GO) test -race ./internal/checkpoint/
	$(GO) test -race ./internal/cluster/ -run 'TestMasterKill|TestResume|TestCheckpoint|TestRereplicate|TestMaxTreeRestarts|TestHeartbeatBudget'
	$(GO) test -race ./internal/chaostest/ -run TestMasterKillRecovery

# Gray-failure suite: straggler scoring, hedged execution and quarantine unit
# tests plus the degraded-worker chaos cells, all under the race detector.
straggler:
	$(GO) test -race ./internal/cluster/ -run 'TestHealth|TestQuarantine|TestWorkerFailedClearsQuarantine|TestPingRTT|TestAttemptDeadline|TestSetTargetDegraded|TestHedge'
	$(GO) test -race ./internal/transport/ -run TestChaosDegrade
	$(GO) test -race ./internal/loadbal/ -run Quarantine
	$(GO) test -race ./internal/chaostest/ -run TestGrayFailure

# Histogram training mode: sketch and kernel unit tests, the saturated
# hist-vs-exact equivalence properties, and the hist chaos cell, all under
# the race detector.
hist:
	$(GO) test -race ./internal/sketch/
	$(GO) test -race ./internal/split/ -run 'TestHist|TestBinsFromSketch'
	$(GO) test -race ./internal/core/ -run TestTrainLocalHist
	$(GO) test -race ./internal/cluster/ -run TestHist
	$(GO) test -race ./internal/chaostest/ -run TestHistModeDeterministic

# Hot-standby failover suite: the checkpoint stream and lease machinery
# (including the randomized-interleaving lease property test), the in-cluster
# standby tests, and the failover chaos cells (primary kill, lossy fabric,
# split-brain), all under the race detector.
failover:
	$(GO) test -race ./internal/checkpoint/ -run 'TestStream|TestReplica|TestMultiSink'
	$(GO) test -race ./internal/cluster/ -run 'TestLease|TestStandby|TestNoStandbyNoStreamTraffic'
	$(GO) test -race ./internal/chaostest/ -run TestStandbyFailover

# Elastic-fleet suite: membership protocol unit tests (live join, graceful
# drain, fleet cap, generation fence), membership checkpoint records, and the
# churn chaos cells (join under drops, drain mid-tree, join racing failover,
# churn storm), all under the race detector.
elastic:
	$(GO) test -race ./internal/cluster/ -run 'TestJoin|TestDrain|TestFleetCap'
	$(GO) test -race ./internal/checkpoint/ -run TestMembership
	$(GO) test -race ./internal/loadbal/ -run TestMatrixGrow
	$(GO) test -race ./internal/chaostest/ -run TestElasticChurn

# Serving suite: compiled-vs-interpreter equivalence properties and
# zero-alloc guards, registry hot-swap storm, and the /v1 handler tests,
# all under the race detector, plus the legacy-vs-compiled serving A/B.
serve:
	$(GO) test -race ./internal/infer/ ./internal/registry/ ./internal/serve/
	$(GO) run ./cmd/benchtab -quick -serve-json BENCH_serve.json

# Serving resilience suite: overload shedding, request deadlines, canary
# promote/rollback, slow-loris and shutdown-under-load chaos cells, plus the
# limiter+canary overhead A/B (the resilience arm of BENCH_serve.json).
resilience:
	$(GO) test -race ./internal/serve/ -run 'TestOverload|TestLimiter|TestRequestDeadline|TestClientDisconnect|TestBodyTooLarge|TestStage|TestCanary|TestReadyz|TestSlowLoris|TestShutdown'
	$(GO) test -race ./internal/registry/ -run 'TestStage|TestRoute|TestCanary|TestActivateAndRollbackCancelCanary|TestRollbackEmptyHistory|TestActivateUnknownSeq|TestWatch'
	$(GO) test -race ./internal/infer/ -run 'TestDecodeRequestCtx|TestPredictCtx'
	$(GO) run ./cmd/benchtab -quick -serve-json BENCH_serve.json

cover:
	$(GO) test -cover ./internal/...

# One testing.B benchmark per paper table plus per-package micro benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation tables at the default laptop scale.
experiments:
	$(GO) run ./cmd/benchtab

ablations:
	$(GO) run ./cmd/benchtab -ablations

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/creditrisk
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/boosting
	$(GO) run ./examples/deepforest

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# vet plus staticcheck; CI installs staticcheck, locally it is optional.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

clean:
	$(GO) clean ./...
