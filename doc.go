// Package treeserver is a from-scratch Go reproduction of "Distributed
// Task-Based Training of Tree Models" (Yan et al., ICDE 2022): the
// TreeServer system for exact distributed training of decision trees and
// tree ensembles, plus everything its evaluation depends on — the
// PLANET/Spark-MLlib comparator, an XGBoost-style boosting comparator, a
// simulated HDFS with the paper's column-group × row-group layout, and the
// deep-forest pipeline of Section VII.
//
// The library lives under internal/; the executables are:
//
//   - cmd/treeserver — master/worker processes over TCP (or -role local)
//   - cmd/tsput      — the dedicated "put" program uploading CSVs into the
//     DFS layout
//   - cmd/benchtab   — regenerates every table of the paper's evaluation
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go wrap the same experiments as testing.B targets.
package treeserver
