// Command tstrain trains a model directly from a CSV file on an in-process
// TreeServer cluster — the shortest path from data to a servable model.
//
//	tstrain -csv customers.csv -target Default -job rf -trees 50 \
//	        -out default.tsmodel -eval 0.2
//	tsserve -model default.tsmodel
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tstrain: ")
	var (
		csvPath   = flag.String("csv", "", "input CSV file (with header)")
		target    = flag.String("target", "", "name of the Y column")
		job       = flag.String("job", "rf", "dt | rf | xt")
		trees     = flag.Int("trees", 20, "trees for rf/xt")
		dmax      = flag.Int("dmax", 10, "maximum tree depth")
		minLeaf   = flag.Int("tau-leaf", 1, "tau_leaf")
		colFrac   = flag.Float64("col-frac", 0, "|C|/|A| per tree (0 = sqrt|A|, -1 = all)")
		workers   = flag.Int("workers", 4, "in-process workers")
		compers   = flag.Int("compers", 4, "compers per worker")
		evalFrac  = flag.Float64("eval", 0, "hold out this fraction of rows for evaluation")
		out       = flag.String("out", "", "write the model here")
		modelName = flag.String("model-name", "", "registry name stored in the model file (default: the -job name)")
		seed      = flag.Int64("seed", 1, "randomness seed")
		forceCat  = flag.String("force-categorical", "", "comma-separated columns parsed as categorical")
		report    = flag.Bool("report", false, "print the end-of-train telemetry report")
		debugAddr = flag.String("debug", "", "serve /debug/obs, /debug/vars and /debug/pprof on this address")
		ckptDir   = flag.String("checkpoint-dir", "", "enable durable master checkpointing into this directory")
		ckptEvery = flag.Duration("checkpoint-every", 0, "periodic snapshot interval between tree boundaries (0 = tree boundaries only)")
		resume    = flag.Bool("resume", false, "recover the interrupted job from -checkpoint-dir (same CSV and flags as the original run)")
		hedge     = flag.Float64("hedge-factor", 0, "hedge a task attempt outliving this multiple of the fleet latency estimate (0 = off)")
		quarant   = flag.Float64("quarantine-threshold", 0, "quarantine workers whose median-normalised health score drops below this, in [0,1) (0 = off)")
		mode      = flag.String("mode", "exact", "split finding: exact | hist (sketch-binned histograms with top-k voting)")
		maxBins   = flag.Int("max-bins", 0, "hist mode: bins per numeric column (0 = cluster default)")
		topK      = flag.Int("top-k", 0, "hist mode: candidate splits each worker votes per node (0 = cluster default)")
		standby   = flag.Bool("standby", false, "attach an in-process hot-standby master (diskless failover)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "failover lease duration (0 = default; implies -standby)")
		joinN     = flag.Int("join", 0, "live-join this many extra workers through the membership handshake after the cluster starts")
		drainW    = flag.Int("drain", -1, "gracefully drain this worker index (cordon, hand off columns, retire) before training")
		fleetCap  = flag.Int("fleet-cap", 0, "reject live joins that would grow the fleet past this size (0 = unbounded)")
	)
	flag.Parse()
	if *csvPath == "" || *target == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		log.Fatalf("opening CSV: %v", err)
	}
	opts := dataset.CSVOptions{Target: *target}
	if *forceCat != "" {
		opts.ForceCategorical = strings.Split(*forceCat, ",")
	}
	full, err := dataset.ReadCSV(f, opts)
	f.Close()
	if err != nil {
		log.Fatalf("parsing CSV: %v", err)
	}

	train, test := dataset.SplitStratified(full, *evalFrac, *seed)
	fmt.Printf("loaded %d rows x %d columns (%s)", full.NumRows(), full.NumCols(), full.Task())
	if test != nil {
		fmt.Printf("; holding out %d rows", test.NumRows())
	}
	fmt.Println()

	var reg *obs.Registry
	if *report || *debugAddr != "" {
		reg = obs.NewRegistry()
		reg.PublishExpvar()
		if *debugAddr != "" {
			dbg := &http.Server{
				Addr:              *debugAddr,
				Handler:           reg.Handler(),
				ReadHeaderTimeout: 5 * time.Second,
			}
			go func() {
				if err := dbg.ListenAndServe(); err != nil {
					log.Printf("debug listener: %v", err)
				}
			}()
		}
	}

	rows := train.NumRows()
	copts := []cluster.Option{
		cluster.WithWorkers(*workers), cluster.WithCompers(*compers),
		cluster.WithPolicy(task.Policy{TauD: max(rows/10, 64), TauDFS: max(rows/2, 128), NPool: 200}),
		cluster.WithObserver(reg),
	}
	if *ckptDir != "" {
		copts = append(copts, cluster.WithCheckpoint(*ckptDir, *ckptEvery))
	}
	if *hedge > 0 {
		copts = append(copts, cluster.WithHedgeFactor(*hedge))
	}
	if *quarant > 0 {
		copts = append(copts, cluster.WithQuarantine(*quarant, 0))
	}
	splitMode, err := cluster.ParseSplitMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	copts = append(copts, cluster.WithSplitMode(splitMode))
	if *standby {
		copts = append(copts, cluster.WithStandby())
	}
	if *leaseTTL > 0 {
		copts = append(copts, cluster.WithLease(*leaseTTL))
	}
	if *maxBins > 0 {
		copts = append(copts, cluster.WithMaxBins(*maxBins))
	}
	if *topK > 0 {
		copts = append(copts, cluster.WithTopK(*topK))
	}
	if *fleetCap > 0 {
		copts = append(copts, cluster.WithFleetCap(*fleetCap))
	}
	c, err := cluster.NewInProcess(train, copts...)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Elastic-fleet transitions: joins and drains go through exactly the
	// membership protocol a mid-job transition uses.
	for i := 0; i < *joinN; i++ {
		w, err := c.Join()
		if err != nil {
			log.Fatalf("live join: %v", err)
		}
		fmt.Printf("worker %d joined the fleet live\n", w.ID())
	}
	if *drainW >= 0 {
		if err := c.Drain(*drainW); err != nil {
			log.Fatalf("draining worker %d: %v", *drainW, err)
		}
		fmt.Printf("worker %d drained gracefully\n", *drainW)
	}

	params := core.Params{MaxDepth: *dmax, MinLeaf: *minLeaf}
	var spec forest.ModelSpec
	switch *job {
	case "dt":
		spec = forest.ModelSpec{Name: "dt", Kind: forest.DecisionTree, Params: params, Seed: *seed}
	case "rf":
		spec = forest.ModelSpec{Name: "rf", Kind: forest.RandomForest, Params: params,
			Trees: *trees, ColFrac: *colFrac, Bootstrap: true, Seed: *seed}
	case "xt":
		spec = forest.ModelSpec{Name: "xt", Kind: forest.ExtraForest, Params: params,
			Trees: *trees, Bootstrap: true, Seed: *seed}
	default:
		log.Fatalf("unknown job %q", *job)
	}

	start := time.Now()
	var fst *forest.Forest
	if *resume {
		// The tree specs come from the checkpoint, so the CSV and flags must
		// match the interrupted run for the model to be meaningful.
		trees, err := c.Resume()
		if err != nil {
			log.Fatalf("resuming: %v", err)
		}
		fst = &forest.Forest{Trees: trees, Task: train.Task(), NumClasses: train.NumClasses()}
		fmt.Printf("resumed %s with %d tree(s) in %s\n",
			spec.Kind, len(fst.Trees), time.Since(start).Round(time.Millisecond))
	} else {
		trained, err := forest.TrainModels(c, cluster.SchemaOf(train), []forest.ModelSpec{spec})
		if err != nil {
			log.Fatalf("training: %v", err)
		}
		fst = trained[0].Forest
		fmt.Printf("trained %s with %d tree(s) in %s\n",
			trained[0].Spec.Kind, len(fst.Trees), time.Since(start).Round(time.Millisecond))
	}

	if test != nil {
		if train.Task() == dataset.Classification {
			fmt.Printf("held-out accuracy: %.2f%%\n", fst.Accuracy(test)*100)
		} else {
			fmt.Printf("held-out RMSE: %.4f\n", fst.RMSE(test))
		}
	}
	if *out != "" {
		name := *modelName
		if name == "" {
			name = *job
		}
		if err := model.SaveForestFile(*out, name, fst, model.SchemaOf(train)); err != nil {
			log.Fatalf("writing model: %v", err)
		}
		fmt.Printf("model written to %s (serve it with tsserve)\n", *out)
	}
	if *report && reg != nil {
		fmt.Print(reg.Snapshot().Report())
	}
}
