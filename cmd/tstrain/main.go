// Command tstrain trains a model directly from a CSV file on an in-process
// TreeServer cluster — the shortest path from data to a servable model.
//
//	tstrain -csv customers.csv -target Default -job rf -trees 50 \
//	        -out default.tsmodel -eval 0.2
//	tsserve -model default.tsmodel
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tstrain: ")
	var (
		csvPath   = flag.String("csv", "", "input CSV file (with header)")
		target    = flag.String("target", "", "name of the Y column")
		job       = flag.String("job", "rf", "dt | rf | xt")
		trees     = flag.Int("trees", 20, "trees for rf/xt")
		dmax      = flag.Int("dmax", 10, "maximum tree depth")
		minLeaf   = flag.Int("tau-leaf", 1, "tau_leaf")
		colFrac   = flag.Float64("col-frac", 0, "|C|/|A| per tree (0 = sqrt|A|, -1 = all)")
		workers   = flag.Int("workers", 4, "in-process workers")
		compers   = flag.Int("compers", 4, "compers per worker")
		evalFrac  = flag.Float64("eval", 0, "hold out this fraction of rows for evaluation")
		out       = flag.String("out", "", "write the model here")
		seed      = flag.Int64("seed", 1, "randomness seed")
		forceCat  = flag.String("force-categorical", "", "comma-separated columns parsed as categorical")
		report    = flag.Bool("report", false, "print the end-of-train telemetry report")
		debugAddr = flag.String("debug", "", "serve /debug/obs, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()
	if *csvPath == "" || *target == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		log.Fatalf("opening CSV: %v", err)
	}
	opts := dataset.CSVOptions{Target: *target}
	if *forceCat != "" {
		opts.ForceCategorical = strings.Split(*forceCat, ",")
	}
	full, err := dataset.ReadCSV(f, opts)
	f.Close()
	if err != nil {
		log.Fatalf("parsing CSV: %v", err)
	}

	train, test := dataset.SplitStratified(full, *evalFrac, *seed)
	fmt.Printf("loaded %d rows x %d columns (%s)", full.NumRows(), full.NumCols(), full.Task())
	if test != nil {
		fmt.Printf("; holding out %d rows", test.NumRows())
	}
	fmt.Println()

	var reg *obs.Registry
	if *report || *debugAddr != "" {
		reg = obs.NewRegistry()
		reg.PublishExpvar()
		if *debugAddr != "" {
			go func() {
				if err := http.ListenAndServe(*debugAddr, reg.Handler()); err != nil {
					log.Printf("debug listener: %v", err)
				}
			}()
		}
	}

	rows := train.NumRows()
	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(*workers), cluster.WithCompers(*compers),
		cluster.WithPolicy(task.Policy{TauD: max(rows/10, 64), TauDFS: max(rows/2, 128), NPool: 200}),
		cluster.WithObserver(reg),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	params := core.Params{MaxDepth: *dmax, MinLeaf: *minLeaf}
	var spec forest.ModelSpec
	switch *job {
	case "dt":
		spec = forest.ModelSpec{Name: "dt", Kind: forest.DecisionTree, Params: params, Seed: *seed}
	case "rf":
		spec = forest.ModelSpec{Name: "rf", Kind: forest.RandomForest, Params: params,
			Trees: *trees, ColFrac: *colFrac, Bootstrap: true, Seed: *seed}
	case "xt":
		spec = forest.ModelSpec{Name: "xt", Kind: forest.ExtraForest, Params: params,
			Trees: *trees, Bootstrap: true, Seed: *seed}
	default:
		log.Fatalf("unknown job %q", *job)
	}

	start := time.Now()
	trained, err := forest.TrainModels(c, cluster.SchemaOf(train), []forest.ModelSpec{spec})
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	m := trained[0]
	fmt.Printf("trained %s with %d tree(s) in %s\n",
		m.Spec.Kind, len(m.Forest.Trees), time.Since(start).Round(time.Millisecond))

	if test != nil {
		if train.Task() == dataset.Classification {
			fmt.Printf("held-out accuracy: %.2f%%\n", m.Forest.Accuracy(test)*100)
		} else {
			fmt.Printf("held-out RMSE: %.4f\n", m.Forest.RMSE(test))
		}
	}
	if *out != "" {
		if err := model.SaveForestFile(*out, *job, m.Forest, model.SchemaOf(train)); err != nil {
			log.Fatalf("writing model: %v", err)
		}
		fmt.Printf("model written to %s (serve it with tsserve)\n", *out)
	}
	if *report && reg != nil {
		fmt.Print(reg.Snapshot().Report())
	}
}
