// Command treeserver runs the TreeServer system over real TCP: one master
// process plus N worker processes, each loading its column partition from a
// shared DFS store directory (produced by tsput). A single-process -role
// local mode trains on an in-process cluster for quick experiments.
//
// Master:
//
//	treeserver -role master -listen :7070 \
//	    -workers host1:7071,host2:7072 \
//	    -store /mnt/dfs -table mytable \
//	    -job rf -trees 20 -dmax 10 -out forest.tsmodel
//
// Worker i (i in 0..N-1, same order as the master's -workers list):
//
//	treeserver -role worker -id 0 -listen :7071 \
//	    -master host0:7070 -workers host1:7071,host2:7072 \
//	    -store /mnt/dfs -table mytable -compers 10
//
// Hot standby (add -standby-addr hostS:7069 to the master's flags):
//
//	treeserver -role standby -listen hostS:7069 -promote-listen hostS:7070 \
//	    -master host0:7070 -workers host1:7071,host2:7072 \
//	    -store /mnt/dfs -table mytable -lease-ttl 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/dfs"
	"treeserver/internal/forest"
	"treeserver/internal/loadbal"
	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("treeserver: ")
	var (
		role       = flag.String("role", "local", "master | worker | local")
		listen     = flag.String("listen", "127.0.0.1:0", "listen address")
		masterAddr = flag.String("master", "", "master address (worker role)")
		workerList = flag.String("workers", "", "comma-separated worker addresses, in id order")
		id         = flag.Int("id", 0, "worker id (worker role)")
		storeDir   = flag.String("store", "", "DFS store directory")
		tableName  = flag.String("table", "table", "table name within the store")
		job        = flag.String("job", "dt", "dt (decision tree) | rf (random forest) | xt (extra-trees forest)")
		trees      = flag.Int("trees", 20, "trees for rf/xt jobs")
		dmax       = flag.Int("dmax", 10, "maximum tree depth")
		minLeaf    = flag.Int("tau-leaf", 1, "tau_leaf: minimum rows before a node becomes a leaf")
		tauD       = flag.Int("tau-d", 10000, "tau_D: subtree-task threshold")
		tauDFS     = flag.Int("tau-dfs", 80000, "tau_dfs: depth-first threshold")
		npool      = flag.Int("npool", 200, "n_pool: trees under construction at once")
		replicas   = flag.Int("replicas", 2, "column replication factor k")
		compers    = flag.Int("compers", 10, "computing threads per worker (worker/local role)")
		workersN   = flag.Int("cluster-workers", 4, "workers for -role local")
		out        = flag.String("out", "", "write the trained model to this file (tsserve-compatible)")
		modelName  = flag.String("model-name", "", "registry name stored in the model file (default: the -job name)")
		report     = flag.Bool("report", false, "print the end-of-train telemetry report")
		debugAddr  = flag.String("debug", "", "serve /debug/obs, /debug/vars and /debug/pprof on this address")
		ckptDir    = flag.String("checkpoint-dir", "", "enable durable master checkpointing into this directory (master/local role)")
		ckptEvery  = flag.Duration("checkpoint-every", 0, "periodic snapshot interval between tree boundaries (0 = tree boundaries only)")
		resume     = flag.Bool("resume", false, "recover the interrupted job from -checkpoint-dir instead of starting fresh")
		hedge      = flag.Float64("hedge-factor", 0, "hedge a task attempt outliving this multiple of the fleet latency estimate (0 = off; master/local role)")
		quarantine = flag.Float64("quarantine-threshold", 0, "quarantine workers whose median-normalised health score drops below this, in [0,1) (0 = off; master/local role)")
		mode       = flag.String("mode", "exact", "split finding: exact | hist (sketch-binned histograms with top-k voting; master/local role)")
		maxBins    = flag.Int("max-bins", 0, "hist mode: bins per numeric column (0 = cluster default)")
		topK       = flag.Int("top-k", 0, "hist mode: candidate splits each worker votes per node (0 = cluster default)")

		standbyAddr = flag.String("standby-addr", "", "stream checkpoints to a hot standby at this address (master role)")
		leaseTTL    = flag.Duration("lease-ttl", 0, "failover lease duration (0 = default; master/standby/local role)")
		advertise   = flag.String("advertise", "", "externally reachable master address, sent to rejoining workers (master role)")
		standbyOn   = flag.Bool("standby", false, "attach an in-process hot standby (local role)")
		promoteAddr = flag.String("promote-listen", "", "host:port the promoted master listens on after failover; must be reachable by workers (standby role)")

		joinN    = flag.Int("join", 0, "live-join this many extra workers through the membership handshake after the cluster starts (local role)")
		drainW   = flag.Int("drain", -1, "gracefully drain this worker index (cordon, hand off columns, retire) before training (local role)")
		fleetCap = flag.Int("fleet-cap", 0, "reject live joins that would grow the fleet past this size (0 = unbounded; local role)")
	)
	flag.Parse()
	savedModelName = *modelName
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}
	splitMode, err := cluster.ParseSplitMode(*mode)
	if err != nil {
		log.Fatal(err)
	}

	ck := ckpt{dir: *ckptDir, every: *ckptEvery, resume: *resume}
	gf := gray{hedge: *hedge, quarantine: *quarantine}
	hm := histMode{mode: splitMode, maxBins: *maxBins, topK: *topK}
	hc := ha{standbyAddr: *standbyAddr, leaseTTL: *leaseTTL, advertise: *advertise,
		standby: *standbyOn, promoteListen: *promoteAddr}
	el := elastic{join: *joinN, drain: *drainW, fleetCap: *fleetCap}
	reg := newTelemetry(*report, *debugAddr)
	switch *role {
	case "local":
		runLocal(*storeDir, *tableName, *job, *trees, *dmax, *minLeaf, *tauD, *tauDFS, *npool, *replicas, *compers, *workersN, *out, reg, *report, ck, gf, hm, hc, el)
	case "worker":
		runWorker(*listen, *masterAddr, *workerList, *id, *storeDir, *tableName, *replicas, *compers, reg)
	case "master":
		runMaster(*listen, *workerList, *storeDir, *tableName, *job, *trees, *dmax, *minLeaf, *tauD, *tauDFS, *npool, *replicas, *out, reg, *report, ck, gf, hm, hc)
	case "standby":
		runStandby(*listen, *masterAddr, *workerList, *storeDir, *tableName, *job, *tauD, *tauDFS, *npool, *replicas, *out, reg, *report, ck, gf, hm, hc)
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// elastic carries the fleet-membership flags to the local role runner: how
// many workers to live-join, which worker to gracefully drain, and the
// admission cap on fleet growth.
type elastic struct {
	join     int
	drain    int
	fleetCap int
}

// applyTo runs the configured membership transitions against a started
// cluster: join the extra workers through the live handshake, then drain
// the chosen worker. Both go through exactly the protocol a mid-job
// transition uses.
func (e elastic) applyTo(c *cluster.Cluster) {
	for i := 0; i < e.join; i++ {
		w, err := c.Join()
		if err != nil {
			log.Fatalf("live join: %v", err)
		}
		fmt.Printf("worker %d joined the fleet live\n", w.ID())
	}
	if e.drain >= 0 {
		if err := c.Drain(e.drain); err != nil {
			log.Fatalf("draining worker %d: %v", e.drain, err)
		}
		fmt.Printf("worker %d drained gracefully\n", e.drain)
	}
}

// ha carries the hot-standby / failover flags to the role runners.
type ha struct {
	standbyAddr   string
	leaseTTL      time.Duration
	advertise     string
	standby       bool
	promoteListen string
}

// histMode carries the approximate-training flags to the role runners.
// Workers need no flags: the bin protocol configures them over the wire.
type histMode struct {
	mode          cluster.SplitMode
	maxBins, topK int
}

// ckpt carries the checkpoint/resume flags to the role runners.
type ckpt struct {
	dir    string
	every  time.Duration
	resume bool
}

// gray carries the gray-failure tolerance flags to the role runners.
type gray struct {
	hedge      float64
	quarantine float64
}

// newTelemetry builds the optional live registry: nil unless the user asked
// for the report or the debug endpoints, so the default run stays on the
// telemetry-disabled fast path.
func newTelemetry(report bool, debugAddr string) *obs.Registry {
	if !report && debugAddr == "" {
		return nil
	}
	reg := obs.NewRegistry()
	reg.PublishExpvar()
	if debugAddr != "" {
		dbg := &http.Server{
			Addr:              debugAddr,
			Handler:           reg.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	return reg
}

func printReport(reg *obs.Registry, report bool) {
	if report && reg != nil {
		fmt.Print(reg.Snapshot().Report())
	}
}

func loadTable(storeDir, name string) (*dataset.Table, dfs.Layout, *dfs.DirStore) {
	if storeDir == "" {
		log.Fatal("-store is required")
	}
	store, err := dfs.NewDirStore(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := dfs.ReadLayout(store, name)
	if err != nil {
		log.Fatalf("reading table layout (did you run tsput?): %v", err)
	}
	tbl, err := dfs.LoadTable(store, name)
	if err != nil {
		log.Fatalf("loading table: %v", err)
	}
	return tbl, layout, store
}

func jobSpecs(tbl *dataset.Table, job string, trees, dmax, minLeaf int) []cluster.TreeSpec {
	params := core.Params{MaxDepth: dmax, MinLeaf: minLeaf}
	switch job {
	case "dt":
		return []cluster.TreeSpec{{Params: params}}
	case "rf":
		return forest.Specs(cluster.SchemaOf(tbl), forest.Config{
			Trees: trees, Params: params, ColFrac: 0, Bootstrap: true, Seed: 1,
		})
	case "xt":
		return forest.Specs(cluster.SchemaOf(tbl), forest.Config{
			Trees: trees, Params: params, ExtraTrees: true, Bootstrap: true, Seed: 1,
		})
	default:
		log.Fatalf("unknown job %q (want dt, rf or xt)", job)
		return nil
	}
}

// savedModelName is the registry name written into model files; set from
// -model-name, falling back to the job name.
var savedModelName string

func writeModel(path, job string, trained []*core.Tree, tbl *dataset.Table) {
	if path == "" {
		return
	}
	name := savedModelName
	if name == "" {
		name = job
	}
	f := &forest.Forest{Trees: trained, Task: tbl.Task(), NumClasses: tbl.NumClasses()}
	if err := model.SaveForestFile(path, name, f, model.SchemaOf(tbl)); err != nil {
		log.Fatalf("writing model: %v", err)
	}
	fmt.Printf("model with %d tree(s) written to %s (serve it with tsserve)\n", len(trained), path)
}

func runLocal(storeDir, tableName, job string, trees, dmax, minLeaf, tauD, tauDFS, npool, replicas, compers, workers int, out string, reg *obs.Registry, report bool, ck ckpt, gf gray, hm histMode, hc ha, el elastic) {
	tbl, _, _ := loadTable(storeDir, tableName)
	opts := []cluster.Option{
		cluster.WithWorkers(workers), cluster.WithCompers(compers), cluster.WithReplicas(replicas),
		cluster.WithPolicy(task.Policy{TauD: tauD, TauDFS: tauDFS, NPool: npool}),
		cluster.WithObserver(reg),
		cluster.WithSplitMode(hm.mode),
	}
	if hc.standby {
		opts = append(opts, cluster.WithStandby())
	}
	if hc.leaseTTL > 0 {
		opts = append(opts, cluster.WithLease(hc.leaseTTL))
	}
	if hm.maxBins > 0 {
		opts = append(opts, cluster.WithMaxBins(hm.maxBins))
	}
	if hm.topK > 0 {
		opts = append(opts, cluster.WithTopK(hm.topK))
	}
	if ck.dir != "" {
		opts = append(opts, cluster.WithCheckpoint(ck.dir, ck.every))
	}
	if gf.hedge > 0 {
		opts = append(opts, cluster.WithHedgeFactor(gf.hedge))
	}
	if gf.quarantine > 0 {
		opts = append(opts, cluster.WithQuarantine(gf.quarantine, 0))
	}
	if el.fleetCap > 0 {
		opts = append(opts, cluster.WithFleetCap(el.fleetCap))
	}
	c, err := cluster.NewInProcess(tbl, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	el.applyTo(c)
	start := time.Now()
	var trained []*core.Tree
	if ck.resume {
		trained, err = c.Resume()
	} else {
		trained, err = c.Train(jobSpecs(tbl, job, trees, dmax, minLeaf))
	}
	if err != nil && c.Standby != nil {
		// The primary failed with a hot standby attached: the takeover may
		// still finish the job from the streamed replica.
		select {
		case <-c.Standby.Done():
			trained, err = c.Standby.Result()
		case <-time.After(time.Minute):
		}
	}
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained %d tree(s) on %d rows in %s\n", len(trained), tbl.NumRows(), time.Since(start).Round(time.Millisecond))
	writeModel(out, job, trained, tbl)
	printReport(reg, report)
}

func parseWorkers(list string) []string {
	if list == "" {
		return nil
	}
	return strings.Split(list, ",")
}

// workerColumns computes worker id's column partition from the shared
// layout: the deterministic round-robin placement both master and workers
// derive independently, so no column assignment messages are needed.
func workerColumns(tbl *dataset.Table, numWorkers, replicas, id int) map[int]*dataset.Column {
	placement := loadbal.RoundRobin(tbl.FeatureIndexes(), numWorkers, replicas)
	cols := map[int]*dataset.Column{}
	for col, owners := range placement.Owners {
		for _, o := range owners {
			if o == id {
				cols[col] = tbl.Cols[col]
			}
		}
	}
	return cols
}

func runWorker(listen, masterAddr, workerList string, id int, storeDir, tableName string, replicas, compers int, reg *obs.Registry) {
	if masterAddr == "" {
		log.Fatal("-master is required for workers")
	}
	addrs := parseWorkers(workerList)
	if id < 0 || id >= len(addrs) {
		log.Fatalf("worker id %d out of range for %d workers", id, len(addrs))
	}
	tbl, _, _ := loadTable(storeDir, tableName)

	peers := map[string]string{cluster.MasterName: masterAddr}
	for i, a := range addrs {
		peers[cluster.WorkerName(i)] = a
	}
	ep, err := transport.ListenTCP(cluster.WorkerName(id), listen, peers)
	if err != nil {
		log.Fatal(err)
	}
	cols := workerColumns(tbl, len(addrs), replicas, id)
	w := cluster.NewWorker(id, reg.Wrap(ep), cluster.SchemaOf(tbl), cols, tbl.Y(), compers, reg)
	w.Start()
	fmt.Printf("worker %d serving %d columns on %s\n", id, len(cols), ep.Addr())
	w.Wait()
	fmt.Printf("worker %d: shutdown\n", id)
}

func runMaster(listen, workerList, storeDir, tableName, job string, trees, dmax, minLeaf, tauD, tauDFS, npool, replicas int, out string, reg *obs.Registry, report bool, ck ckpt, gf gray, hm histMode, hc ha) {
	addrs := parseWorkers(workerList)
	if len(addrs) == 0 {
		log.Fatal("-workers is required for the master")
	}
	tbl, _, _ := loadTable(storeDir, tableName)

	peers := map[string]string{}
	for i, a := range addrs {
		peers[cluster.WorkerName(i)] = a
	}
	cfg := cluster.MasterConfig{
		NumWorkers:          len(addrs),
		Policy:              task.Policy{TauD: tauD, TauDFS: tauDFS, NPool: npool},
		Heartbeat:           time.Second,
		Replicas:            replicas,
		CheckpointDir:       ck.dir,
		CheckpointEvery:     ck.every,
		HedgeFactor:         gf.hedge,
		QuarantineThreshold: gf.quarantine,
		SplitMode:           hm.mode,
		MaxBins:             hm.maxBins,
		TopK:                hm.topK,
		AdvertiseAddr:       hc.advertise,
		Obs:                 reg,
	}
	if hc.standbyAddr != "" {
		peers[cluster.StandbyName] = hc.standbyAddr
		cfg.StandbyName = cluster.StandbyName
		cfg.LeaseTTL = hc.leaseTTL
	}
	ep, err := transport.ListenTCP(cluster.MasterName, listen, peers)
	if err != nil {
		log.Fatal(err)
	}
	placement := loadbal.RoundRobin(tbl.FeatureIndexes(), len(addrs), replicas)
	m, err := cluster.NewMaster(reg.Wrap(ep), cluster.SchemaOf(tbl), placement, cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	start := time.Now()
	var trained []*core.Tree
	if ck.resume {
		trained, err = m.Resume()
	} else {
		trained, err = m.Train(jobSpecs(tbl, job, trees, dmax, minLeaf))
	}
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained %d tree(s) on %d rows across %d workers in %s\n",
		len(trained), tbl.NumRows(), len(addrs), time.Since(start).Round(time.Millisecond))
	writeModel(out, job, trained, tbl)
	printReport(reg, report)
}

// runStandby runs the hot-standby role: it materialises the primary's
// streamed checkpoint records, acks its lease renewals, and — if the lease
// lapses — promotes itself, listens on -promote-listen as the new master,
// re-homes the workers through the rejoin handshake, and finishes the job.
// The process exits when the takeover job completes; while the primary stays
// healthy it just keeps replicating.
func runStandby(listen, masterAddr, workerList, storeDir, tableName, job string, tauD, tauDFS, npool, replicas int, out string, reg *obs.Registry, report bool, ck ckpt, gf gray, hm histMode, hc ha) {
	if masterAddr == "" {
		log.Fatal("-master is required for the standby")
	}
	addrs := parseWorkers(workerList)
	if len(addrs) == 0 {
		log.Fatal("-workers is required for the standby (the promoted master must reach the fleet)")
	}
	if hc.promoteListen == "" || strings.HasSuffix(hc.promoteListen, ":0") {
		log.Fatal("-promote-listen is required for the standby: a concrete host:port the workers can reach after failover")
	}
	tbl, _, _ := loadTable(storeDir, tableName)

	peers := map[string]string{cluster.MasterName: masterAddr}
	workerPeers := map[string]string{}
	for i, a := range addrs {
		peers[cluster.WorkerName(i)] = a
		workerPeers[cluster.WorkerName(i)] = a
	}
	ep, err := transport.ListenTCP(cluster.StandbyName, listen, peers)
	if err != nil {
		log.Fatal(err)
	}
	ttl := hc.leaseTTL
	if ttl == 0 {
		ttl = cluster.DefaultLeaseTTL
	}
	sb, err := cluster.NewStandby(reg.Wrap(ep), cluster.StandbyConfig{
		Schema: cluster.SchemaOf(tbl),
		MasterCfg: cluster.MasterConfig{
			NumWorkers:          len(addrs),
			Policy:              task.Policy{TauD: tauD, TauDFS: tauDFS, NPool: npool},
			Heartbeat:           time.Second,
			Replicas:            replicas,
			CheckpointDir:       ck.dir,
			CheckpointEvery:     ck.every,
			HedgeFactor:         gf.hedge,
			QuarantineThreshold: gf.quarantine,
			SplitMode:           hm.mode,
			MaxBins:             hm.maxBins,
			TopK:                hm.topK,
			AdvertiseAddr:       hc.promoteListen,
			Obs:                 reg,
		},
		LeaseTTL: ttl,
		// Over TCP the old primary's listener cannot be closed from here;
		// fencing relies on the takeover announcement plus the generation
		// fence carried by every rejoin request and task message.
		Rebind: func() (transport.Endpoint, error) {
			mep, err := transport.ListenTCP(cluster.MasterName, hc.promoteListen, workerPeers)
			if err != nil {
				return nil, err
			}
			return reg.Wrap(mep), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sb.Start()
	defer sb.Stop()
	fmt.Printf("standby on %s watching master %s (lease ttl %s)\n", ep.Addr(), masterAddr, ttl)

	<-sb.Done()
	trained, err := sb.Result()
	if err != nil {
		log.Fatalf("takeover: %v", err)
	}
	fmt.Printf("failover complete: finished %d tree(s) on %d rows across %d workers\n",
		len(trained), tbl.NumRows(), len(addrs))
	writeModel(out, job, trained, tbl)
	printReport(reg, report)
}
