// Command tsserve serves trained TreeServer models over HTTP.
//
// Single-model (legacy) mode serves one file under the /v1 API and the
// deprecated /predict and /schema aliases:
//
//	tsserve -model forest.tsmodel -listen :8080
//
// Registry mode loads every *.tsmodel in a directory, activates the newest
// version of each, and optionally watches the directory for new versions:
//
//	tsserve -model-dir models/ -default-model forest -watch 2s -listen :8080
//
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/models/forest/predict \
//	     -d '{"rows":[{"Age":"37","Income":"5200","Education":"Bachelor","HomeOwner":"No"}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/registry"
	"treeserver/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsserve: ")
	var (
		modelPath    = flag.String("model", "", "single model file written by treeserver/tstrain")
		modelDir     = flag.String("model-dir", "", "directory of *.tsmodel files to load into the registry")
		defaultModel = flag.String("default-model", "", "model served by the legacy /predict alias (default: the only loaded model)")
		maxDepth     = flag.Int("max-depth", 0, "truncate forest traversal at this depth (0 = full trees)")
		watch        = flag.Duration("watch", 0, "poll -model-dir at this interval and hot-swap changed files (0 = off)")
		listen       = flag.String("listen", ":8080", "HTTP listen address")
		debugAddr    = flag.String("debug", "", "serve /debug/obs, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()
	if (*modelPath == "") == (*modelDir == "") {
		flag.Usage()
		log.Fatal("exactly one of -model or -model-dir is required")
	}

	obsReg := obs.NewRegistry()
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obsReg.Handler()); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	opts := []serve.Option{serve.WithObs(obsReg)}
	if *maxDepth > 0 {
		opts = append(opts, serve.WithMaxDepth(*maxDepth))
	}
	if *defaultModel != "" {
		opts = append(opts, serve.WithDefaultModel(*defaultModel))
	}

	var srv *serve.Server
	if *modelPath != "" {
		m, err := model.LoadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		srv, err = serve.NewSingle(m, opts...)
		if err != nil {
			log.Fatal(err)
		}
		task := "classification"
		if m.Schema.Regression() {
			task = "regression"
		}
		fmt.Printf("serving %s model %q (%s, %d features) on %s\n",
			m.Kind, m.Name, task, len(m.Schema.FeatureNames()), *listen)
	} else {
		reg := registry.New()
		names, err := reg.LoadDir(*modelDir)
		if err != nil {
			log.Printf("load warnings: %v", err)
		}
		if len(names) == 0 {
			log.Fatalf("no loadable models in %s", *modelDir)
		}
		for _, name := range names {
			if _, err := reg.Activate(name, 0); err != nil {
				log.Fatal(err)
			}
		}
		if *watch > 0 {
			go reg.Watch(*modelDir, *watch, nil, func(msg string) {
				obsReg.Serve().Swap()
				log.Print(msg)
			})
		}
		srv = serve.New(reg, opts...)
		fmt.Printf("serving %d model(s) %v from %s on %s\n", len(names), names, *modelDir, *listen)
	}
	if *watch > 0 && *modelPath != "" {
		log.Printf("-watch ignored in single-model mode")
	}
	log.Fatal(srv.ListenAndServe(*listen))
}
