// Command tsserve serves a trained TreeServer model file over HTTP.
//
//	tsserve -model forest.tsmodel -listen :8080
//
//	curl localhost:8080/schema
//	curl -X POST localhost:8080/predict \
//	     -d '{"rows":[{"Age":"37","Income":"5200","Education":"Bachelor","HomeOwner":"No"}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsserve: ")
	var (
		modelPath = flag.String("model", "", "model file written by treeserver/tstrain")
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		debugAddr = flag.String("debug", "", "serve /debug/obs, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		log.Fatal("-model is required")
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		go func() {
			if err := http.ListenAndServe(*debugAddr, reg.Handler()); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	m, err := model.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	task := "classification"
	if m.Schema.Regression() {
		task = "regression"
	}
	fmt.Printf("serving %s model %q (%s, %d features) on %s\n",
		m.Kind, m.Name, task, len(m.Schema.FeatureNames()), *listen)
	log.Fatal(serve.New(m).ListenAndServe(*listen))
}
