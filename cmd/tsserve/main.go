// Command tsserve serves trained TreeServer models over HTTP.
//
// Single-model (legacy) mode serves one file under the /v1 API and the
// deprecated /predict and /schema aliases:
//
//	tsserve -model forest.tsmodel -listen :8080
//
// Registry mode loads every *.tsmodel in a directory, activates the newest
// version of each, and optionally watches the directory for new versions:
//
//	tsserve -model-dir models/ -default-model forest -watch 2s -listen :8080
//
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/models/forest/predict \
//	     -d '{"rows":[{"Age":"37","Income":"5200","Education":"Bachelor","HomeOwner":"No"}]}'
//
// The server is resilient by default: per-model overload shedding
// (-max-inflight), request deadlines (-request-timeout), a global body cap
// (-max-body-bytes), canary rollout of watched model updates
// (-canary-fraction/-canary-window), and graceful drain on SIGTERM
// (-drain-timeout) with /readyz flipping unready the moment the drain begins.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/registry"
	"treeserver/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsserve: ")
	var (
		modelPath    = flag.String("model", "", "single model file written by treeserver/tstrain")
		modelDir     = flag.String("model-dir", "", "directory of *.tsmodel files to load into the registry")
		defaultModel = flag.String("default-model", "", "model served by the legacy /predict alias (default: the only loaded model)")
		maxDepth     = flag.Int("max-depth", 0, "truncate forest traversal at this depth (0 = full trees)")
		watch        = flag.Duration("watch", 0, "poll -model-dir at this interval and hot-swap changed files (0 = off)")
		listen       = flag.String("listen", ":8080", "HTTP listen address")
		debugAddr    = flag.String("debug", "", "serve /debug/obs, /debug/vars and /debug/pprof on this address")

		maxInflight  = flag.Int("max-inflight", 0, "max concurrent predict requests per model; excess is shed as 429 (0 = unlimited)")
		queueDepth   = flag.Int("queue-depth", 0, "shed-candidates that may wait for an inflight slot (needs -max-inflight)")
		queueWait    = flag.Duration("queue-wait", 50*time.Millisecond, "how long a queued request may wait for a slot")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request decode+inference budget; over budget = 503 (0 = unlimited)")
		maxBodyBytes = flag.Int64("max-body-bytes", serve.DefaultMaxBodyBytes, "request body cap; over = 413 (negative = unlimited)")
		canaryFrac   = flag.Float64("canary-fraction", 0, "stage watched model updates as canaries at this traffic fraction instead of activating (0 = activate directly)")
		canaryWindow = flag.Int("canary-window", registry.DefaultCanaryWindow, "canary requests observed before auto-promote/rollback")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for inflight requests before exiting")
	)
	flag.Parse()
	if (*modelPath == "") == (*modelDir == "") {
		flag.Usage()
		log.Fatal("exactly one of -model or -model-dir is required")
	}

	obsReg := obs.NewRegistry()
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obsReg.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	opts := []serve.Option{serve.WithObs(obsReg)}
	if *maxDepth > 0 {
		opts = append(opts, serve.WithMaxDepth(*maxDepth))
	}
	if *defaultModel != "" {
		opts = append(opts, serve.WithDefaultModel(*defaultModel))
	}
	if *maxInflight > 0 {
		opts = append(opts, serve.WithMaxInflight(*maxInflight),
			serve.WithQueue(*queueDepth, *queueWait))
	}
	if *reqTimeout > 0 {
		opts = append(opts, serve.WithRequestTimeout(*reqTimeout))
	}
	opts = append(opts, serve.WithMaxBodyBytes(*maxBodyBytes))

	var srv *serve.Server
	if *modelPath != "" {
		m, err := model.LoadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		srv, err = serve.NewSingle(m, opts...)
		if err != nil {
			log.Fatal(err)
		}
		task := "classification"
		if m.Schema.Regression() {
			task = "regression"
		}
		fmt.Printf("serving %s model %q (%s, %d features) on %s\n",
			m.Kind, m.Name, task, len(m.Schema.FeatureNames()), *listen)
	} else {
		reg := registry.New()
		names, err := reg.LoadDir(*modelDir)
		if err != nil {
			log.Printf("load warnings: %v", err)
		}
		if len(names) == 0 {
			log.Fatalf("no loadable models in %s", *modelDir)
		}
		for _, name := range names {
			if _, err := reg.Activate(name, 0); err != nil {
				log.Fatal(err)
			}
		}
		if *watch > 0 {
			onEvent := func(msg string) {
				obsReg.Serve().Swap()
				log.Print(msg)
			}
			if *canaryFrac > 0 {
				go reg.WatchCanary(*modelDir, *watch, *canaryFrac, *canaryWindow, nil, onEvent)
			} else {
				go reg.Watch(*modelDir, *watch, nil, onEvent)
			}
		}
		srv = serve.New(reg, opts...)
		fmt.Printf("serving %d model(s) %v from %s on %s\n", len(names), names, *modelDir, *listen)
	}
	if *watch > 0 && *modelPath != "" {
		log.Printf("-watch ignored in single-model mode")
	}

	// Graceful drain: on SIGTERM/SIGINT flip /readyz unready, stop accepting,
	// and give inflight requests -drain-timeout to finish.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, os.Interrupt)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*listen) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("drain cut short: %v", err)
		}
		log.Print("drained cleanly")
	}
}
