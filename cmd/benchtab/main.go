// Command benchtab regenerates the paper's evaluation tables (Tables
// II–VIII) and the DESIGN.md ablation benches on laptop-scale synthetic
// workloads.
//
// Usage:
//
//	benchtab                      # run every table at the default scale
//	benchtab -table 2a            # run one experiment (see -list)
//	benchtab -quick               # shrunken smoke run
//	benchtab -rows 50000 -workers 8 -compers 4
//	benchtab -ablations           # run only the design ablations
//	benchtab -json BENCH_splits.json   # also write machine-readable results
//	benchtab -obs-json BENCH_obs.json  # telemetry on/off overhead A/B
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/experiments"
	"treeserver/internal/impurity"
	"treeserver/internal/obs"
	"treeserver/internal/split"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// splitBenchResult is one microbenchmark row of the split-kernel suite.
type splitBenchResult struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchOutput is the schema of the -json file: the experiment tables that
// ran plus the FindBest kernel microbenchmarks, for CI trend tracking.
type benchOutput struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	Scale       experiments.Scale     `json:"scale"`
	Experiments []*experiments.Result `json:"experiments"`
	SplitBench  []splitBenchResult    `json:"split_bench"`
}

// runSplitBench measures the exact numeric splitter's presorted fast path
// and sort+sweep fallback on one dense node, mirroring the package
// benchmarks in internal/split.
func runSplitBench(n int) []splitBenchResult {
	rng := rand.New(rand.NewSource(1))
	num := make([]float64, n)
	ycls := make([]int32, n)
	for i := range num {
		num[i] = rng.NormFloat64()
		if num[i]+rng.NormFloat64()*0.3 > 0 {
			ycls[i] = 1
		}
	}
	col := dataset.NewNumeric("x", num)
	y := dataset.NewCategorical("y", ycls, []string{"n", "p"})
	rows := dataset.AllRows(n)
	scratch := split.GetScratch()
	defer split.PutScratch(scratch)

	fast := split.Request{Col: col, Y: y, Rows: rows, Measure: impurity.Gini,
		NumClasses: 2, RowSet: dataset.RowSetOf(rows, n), Scratch: scratch}
	fallback := fast
	fallback.RowSet = nil

	out := make([]splitBenchResult, 0, 2)
	for _, c := range []struct {
		name string
		req  split.Request
	}{{"FindBestNumeric/presorted", fast}, {"FindBestNumeric/fallback", fallback}} {
		req := c.req
		split.FindBest(req) // warm up: sort index + scratch growth
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				split.FindBest(req)
			}
		})
		out = append(out, splitBenchResult{
			Name:        c.name,
			Rows:        n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// obsOverheadResult is one telemetry A/B measurement: the same workload with
// the registry absent (the production default) and attached.
type obsOverheadResult struct {
	Name        string  `json:"name"`
	BaselineNs  float64 `json:"baseline_ns_per_op"`
	TelemetryNs float64 `json:"telemetry_ns_per_op"`
	Ratio       float64 `json:"ratio"` // telemetry / baseline; ~1.0 means within noise
}

// obsBenchOutput is the schema of the -obs-json file.
type obsBenchOutput struct {
	GeneratedAt string              `json:"generated_at"`
	GoVersion   string              `json:"go_version"`
	Quick       bool                `json:"quick"`
	Results     []obsOverheadResult `json:"results"`
}

// runObsOverhead A/Bs the two hot paths the registry instruments: the dense
// FindBest kernel (nil vs live SplitCounters — the ISSUE's <=2% budget) and
// a short distributed forest job (nil vs live Observer).
func runObsOverhead(quick bool) []obsOverheadResult {
	kernelRows, trainRows, trees := 100000, 12000, 8
	if quick {
		kernelRows, trainRows, trees = 20000, 4000, 4
	}
	var out []obsOverheadResult

	// Kernel A/B. The live counters come from a real registry so the bench
	// exercises the same pointer chain the worker does.
	rng := rand.New(rand.NewSource(1))
	num := make([]float64, kernelRows)
	ycls := make([]int32, kernelRows)
	for i := range num {
		num[i] = rng.NormFloat64()
		if num[i]+rng.NormFloat64()*0.3 > 0 {
			ycls[i] = 1
		}
	}
	col := dataset.NewNumeric("x", num)
	y := dataset.NewCategorical("y", ycls, []string{"n", "p"})
	rows := dataset.AllRows(kernelRows)
	scratch := split.GetScratch()
	defer split.PutScratch(scratch)
	req := split.Request{Col: col, Y: y, Rows: rows, Measure: impurity.Gini,
		NumClasses: 2, RowSet: dataset.RowSetOf(rows, kernelRows), Scratch: scratch}
	benchKernel := func(counters *obs.SplitCounters) float64 {
		r := req
		r.Counters = counters
		split.FindBest(r) // warm up
		b := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				split.FindBest(r)
			}
		})
		return float64(b.T.Nanoseconds()) / float64(b.N)
	}
	base := benchKernel(nil)
	live := benchKernel(obs.NewRegistry().Split())
	out = append(out, obsOverheadResult{
		Name: "FindBestNumeric/presorted", BaselineNs: base, TelemetryNs: live, Ratio: live / base,
	})

	// Forest-job A/B: same specs, fresh cluster per run so transport and
	// scheduling state cannot leak between arms.
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "obsbench", Rows: trainRows, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 51,
	})
	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]cluster.TreeSpec, trees)
	for i := range specs {
		specs[i] = cluster.TreeSpec{Params: params}
	}
	trainOnce := func(reg *obs.Registry) float64 {
		c, err := cluster.NewInProcess(tbl,
			cluster.WithWorkers(3), cluster.WithCompers(2),
			cluster.WithPolicy(task.Policy{TauD: trainRows / 10, TauDFS: trainRows / 2, NPool: 16}),
			cluster.WithObserver(reg),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if _, err := c.Train(specs); err != nil {
			log.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds())
	}
	trainOnce(nil) // warm up: page in the table, JIT the scratch pools
	baseTrain := trainOnce(nil)
	liveTrain := trainOnce(obs.NewRegistry())
	out = append(out, obsOverheadResult{
		Name: "cluster.Train/forest", BaselineNs: baseTrain, TelemetryNs: liveTrain, Ratio: liveTrain / baseTrain,
	})
	return out
}

func writeObsBench(path string, quick bool) {
	results := runObsOverhead(quick)
	for _, r := range results {
		fmt.Printf("%-28s baseline %.0fns  telemetry %.0fns  ratio %.3f\n",
			r.Name, r.BaselineNs, r.TelemetryNs, r.Ratio)
	}
	data, err := json.MarshalIndent(obsBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Results:     results,
	}, "", "  ")
	if err != nil {
		log.Fatalf("marshal obs bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// ckptOverheadResult is the checkpointing A/B: the same forest job with
// durable master checkpointing off (the default) and on.
type ckptOverheadResult struct {
	Name            string  `json:"name"`
	BaselineNs      float64 `json:"baseline_ns_per_op"`
	CheckpointNs    float64 `json:"checkpoint_ns_per_op"`
	Ratio           float64 `json:"ratio"` // checkpoint / baseline
	Snapshots       int64   `json:"snapshots"`
	Records         int64   `json:"records"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
}

// ckptBenchOutput is the schema of the -ckpt-json file.
type ckptBenchOutput struct {
	GeneratedAt string               `json:"generated_at"`
	GoVersion   string               `json:"go_version"`
	Quick       bool                 `json:"quick"`
	Results     []ckptOverheadResult `json:"results"`
}

// runCkptOverhead measures what durable checkpointing costs a forest job:
// one fsynced snapshot at job start and end plus an fsynced append per
// completed tree. The checkpointed arm reports its write telemetry so the
// JSON records how much durability work the ratio paid for.
func runCkptOverhead(quick bool) []ckptOverheadResult {
	trainRows, trees := 12000, 8
	if quick {
		trainRows, trees = 4000, 4
	}
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "ckptbench", Rows: trainRows, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 52,
	})
	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]cluster.TreeSpec, trees)
	for i := range specs {
		specs[i] = cluster.TreeSpec{Params: params,
			Bag: cluster.BagSpec{NumRows: trainRows, Sample: trainRows, Seed: int64(i)}}
	}
	trainOnce := func(dir string, reg *obs.Registry) float64 {
		opts := []cluster.Option{
			cluster.WithWorkers(3), cluster.WithCompers(2),
			cluster.WithPolicy(task.Policy{TauD: trainRows / 10, TauDFS: trainRows / 2, NPool: 16}),
			cluster.WithObserver(reg),
		}
		if dir != "" {
			opts = append(opts, cluster.WithCheckpoint(dir, 0))
		}
		c, err := cluster.NewInProcess(tbl, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if _, err := c.Train(specs); err != nil {
			log.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds())
	}
	trainOnce("", nil) // warm up
	base := trainOnce("", nil)
	dir, err := os.MkdirTemp("", "benchtab-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	ck := trainOnce(dir, reg)
	m := reg.Snapshot().Master
	return []ckptOverheadResult{{
		Name: "cluster.Train/forest", BaselineNs: base, CheckpointNs: ck, Ratio: ck / base,
		Snapshots: m.CheckpointSnapshots, Records: m.CheckpointRecords, CheckpointBytes: m.CheckpointBytes,
	}}
}

func writeCkptBench(path string, quick bool) {
	results := runCkptOverhead(quick)
	for _, r := range results {
		fmt.Printf("%-24s baseline %.0fns  checkpointed %.0fns  ratio %.3f  (%d snapshots, %d records, %d bytes)\n",
			r.Name, r.BaselineNs, r.CheckpointNs, r.Ratio, r.Snapshots, r.Records, r.CheckpointBytes)
	}
	data, err := json.MarshalIndent(ckptBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Results:     results,
	}, "", "  ")
	if err != nil {
		log.Fatalf("marshal ckpt bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// hedgeOverheadResult is the gray-failure A/B: the same forest job through a
// chaos fabric with one degraded (but alive) worker, hedging off vs on.
type hedgeOverheadResult struct {
	Name           string  `json:"name"`
	NoHedgeNs      float64 `json:"no_hedge_ns_per_op"`
	HedgedNs       float64 `json:"hedged_ns_per_op"`
	Ratio          float64 `json:"ratio"` // hedged / no-hedge; < 1.0 means hedging paid off
	HedgesLaunched int64   `json:"hedges_launched"`
	HedgesWon      int64   `json:"hedges_won"`
	HedgesWasted   int64   `json:"hedges_wasted"`
}

// hedgeBenchOutput is the schema of the -hedge-json file.
type hedgeBenchOutput struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	Quick       bool                  `json:"quick"`
	Results     []hedgeOverheadResult `json:"results"`
}

// runHedgeOverhead trains the same forest twice over a chaos fabric where one
// worker turns ~50× slow shortly into the job and never recovers: once with
// hedging off (per-attempt deadlines are the only countermeasure) and once
// with hedging on. Both arms see the identical fault schedule (same chaos
// seed and plan), so the ratio isolates what hedged execution buys.
func runHedgeOverhead(quick bool) []hedgeOverheadResult {
	trainRows, trees := 12000, 6
	if quick {
		trainRows, trees = 4000, 4
	}
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "hedgebench", Rows: trainRows, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 53,
	})
	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]cluster.TreeSpec, trees)
	for i := range specs {
		specs[i] = cluster.TreeSpec{Params: params,
			Bag: cluster.BagSpec{NumRows: trainRows, Sample: trainRows, Seed: int64(i)}}
	}
	plan := transport.FaultPlan{
		Name:  "hedge-bench",
		Links: []transport.LinkFault{{From: "*", To: "*", Delay: 100 * time.Microsecond, Jitter: 100 * time.Microsecond}},
		Degrades: []transport.Degrade{{Name: cluster.WorkerName(1), Factor: 50,
			Delay: 2 * time.Millisecond, Jitter: 500 * time.Microsecond, AfterSends: 30}},
	}
	trainOnce := func(hedge float64, reg *obs.Registry) float64 {
		chaos := transport.NewChaosNetwork(7, plan)
		cfg := cluster.Config{
			Workers: 5, Compers: 2, Replicas: 2,
			Policy: task.Policy{TauD: trainRows / 10, TauDFS: trainRows / 2, NPool: 8},
			// Generous deadline so per-attempt re-execution stays out of the
			// way and the A/B isolates hedging as the countermeasure.
			TaskRetry:       2400 * time.Millisecond,
			MaxTaskAttempts: 8,
			HedgeFactor:     hedge,
			WrapEndpoint:    chaos.Wrap,
			Observer:        reg,
		}
		c, err := cluster.NewInProcess(tbl, cluster.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if _, err := c.Train(specs); err != nil {
			log.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds())
	}
	trainOnce(0, nil) // warm up: page in the table, grow the scratch pools
	noHedge := trainOnce(0, obs.NewRegistry())
	reg := obs.NewRegistry()
	hedged := trainOnce(8, reg)
	m := reg.Snapshot().Master
	return []hedgeOverheadResult{{
		Name: "cluster.Train/degraded-worker", NoHedgeNs: noHedge, HedgedNs: hedged, Ratio: hedged / noHedge,
		HedgesLaunched: m.HedgesLaunched, HedgesWon: m.HedgesWon, HedgesWasted: m.HedgesWasted,
	}}
}

func writeHedgeBench(path string, quick bool) {
	results := runHedgeOverhead(quick)
	for _, r := range results {
		fmt.Printf("%-30s no-hedge %.0fns  hedged %.0fns  ratio %.3f  (%d launched, %d won, %d wasted)\n",
			r.Name, r.NoHedgeNs, r.HedgedNs, r.Ratio, r.HedgesLaunched, r.HedgesWon, r.HedgesWasted)
	}
	data, err := json.MarshalIndent(hedgeBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Results:     results,
	}, "", "  ")
	if err != nil {
		log.Fatalf("marshal hedge bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// histABResult is one row of the exact-vs-hist A/B: the same wide/deep
// training job under both split modes, at one MaxBins setting.
type histABResult struct {
	Name             string  `json:"name"`
	MaxBins          int     `json:"max_bins"`
	TopK             int     `json:"top_k"`
	ExactNs          float64 `json:"exact_ns"`
	HistNs           float64 `json:"hist_ns"`
	Speedup          float64 `json:"speedup"` // exact / hist wall clock; > 1 means hist is faster
	ExactLinkBytes   int64   `json:"exact_link_bytes"`
	HistLinkBytes    int64   `json:"hist_link_bytes"`
	ByteReduction    float64 `json:"byte_reduction"` // exact / hist link bytes; > 1 means hist ships less
	ExactAccuracy    float64 `json:"exact_accuracy"`
	HistAccuracy     float64 `json:"hist_accuracy"`
	AccuracyDelta    float64 `json:"accuracy_delta"` // exact - hist on held-out rows
	BinRounds        int64   `json:"bin_rounds"`
	HistogramsSent   int64   `json:"histograms_fetched"`
	HistSubtractions int64   `json:"hist_subtractions"`
}

// histBenchOutput is the schema of the -hist-json file.
type histBenchOutput struct {
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version"`
	Quick       bool           `json:"quick"`
	Results     []histABResult `json:"results"`
}

// runHistAB trains the same wide/deep classification job once under the exact
// protocol and once per MaxBins setting under hist mode, on identical
// clusters. Wall clock, total link bytes (worker + master outbound) and
// held-out accuracy quantify what sketch-binned histograms with top-k voting
// trade away; the obs counters show how the hist arm got there. The job runs
// with TauD = 1 so every split goes through the column-task protocol — the
// regime the hist mode exists for; subtree handoff (large TauD) short-circuits
// both arms into the identical serial trainer and measures nothing.
func runHistAB(quick bool) []histABResult {
	trainRows, maxDepth := 32000, 12
	if quick {
		trainRows, maxDepth = 8000, 9
	}
	train, test := synth.Generate(synth.Spec{
		Name: "histbench", Rows: trainRows * 5 / 4, NumNumeric: 32, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 8, LabelNoise: 0.05, Seed: 54,
	}, 0.2)
	params := core.Defaults()
	params.MaxDepth = maxDepth
	specs := []cluster.TreeSpec{{Params: params}, {Params: core.Params{
		MaxDepth: params.MaxDepth, MinLeaf: params.MinLeaf, Measure: params.Measure, Seed: 1}}}

	accuracy := func(tr *core.Tree) float64 {
		hits := 0
		for r := 0; r < test.NumRows(); r++ {
			if tr.PredictClass(test, r, 0) == test.Y().Cats[r] {
				hits++
			}
		}
		return float64(hits) / float64(test.NumRows())
	}
	n := train.NumRows()
	trainOnce := func(mode cluster.SplitMode, maxBins, topK int, reg *obs.Registry) (float64, int64, float64) {
		opts := []cluster.Option{
			cluster.WithWorkers(4), cluster.WithCompers(2),
			cluster.WithPolicy(task.Policy{TauD: 1, TauDFS: n / 2, NPool: 8}),
			cluster.WithObserver(reg), cluster.WithSplitMode(mode),
		}
		if maxBins > 0 {
			opts = append(opts, cluster.WithMaxBins(maxBins), cluster.WithTopK(topK))
		}
		c, err := cluster.NewInProcess(train, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		trained, err := c.Train(specs)
		if err != nil {
			log.Fatal(err)
		}
		m := c.MetricsSince(start)
		return float64(time.Since(start).Nanoseconds()), m.WorkerSentBytes + m.MasterSentBytes, accuracy(trained[0])
	}

	trainOnce(cluster.SplitExact, 0, 0, nil) // warm up: page in the table, grow the pools
	// Both arms carry a live registry so per-message telemetry sizing costs
	// them equally.
	exactNs, exactBytes, exactAcc := trainOnce(cluster.SplitExact, 0, 0, obs.NewRegistry())

	// The bin sweep spans the tradeoff: at 32 bins the per-node work is far
	// below the exact sort-and-sweep; by 256 bins the deep frontier's nodes
	// hold fewer rows than the histogram holds bins, and clearing + scanning
	// those slots costs more than exact splitting — the regime where exact
	// still wins.
	var out []histABResult
	for _, maxBins := range []int{32, 64, 256} {
		reg := obs.NewRegistry()
		histNs, histBytes, histAcc := trainOnce(cluster.SplitHist, maxBins, 2, reg)
		m := reg.Snapshot()
		out = append(out, histABResult{
			Name: "cluster.Train/wide-deep", MaxBins: maxBins, TopK: 2,
			ExactNs: exactNs, HistNs: histNs, Speedup: exactNs / histNs,
			ExactLinkBytes: exactBytes, HistLinkBytes: histBytes,
			ByteReduction: float64(exactBytes) / float64(histBytes),
			ExactAccuracy: exactAcc, HistAccuracy: histAcc, AccuracyDelta: exactAcc - histAcc,
			BinRounds:      m.Master.BinRounds,
			HistogramsSent: m.Master.HistogramsFetched, HistSubtractions: m.Split.HistSubtractions,
		})
	}
	return out
}

func writeHistBench(path string, quick bool) {
	results := runHistAB(quick)
	for _, r := range results {
		fmt.Printf("%-24s max-bins %-4d exact %.0fms hist %.0fms speedup %.2fx  bytes %.2fx less  acc %.4f vs %.4f (delta %.4f)\n",
			r.Name, r.MaxBins, r.ExactNs/1e6, r.HistNs/1e6, r.Speedup, r.ByteReduction,
			r.ExactAccuracy, r.HistAccuracy, r.AccuracyDelta)
	}
	data, err := json.MarshalIndent(histBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Results:     results,
	}, "", "  ")
	if err != nil {
		log.Fatalf("marshal hist bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// failoverOverheadResult is the hot-standby A/B: the same forest job with no
// standby (the default) and with a live standby replicating every streamed
// checkpoint record and acking lease renewals. The primary never fails, so
// the ratio is the pure steady-state cost the standby adds to the training
// critical path — the stream send is off-path (a buffered queue drained by
// its own goroutine), so the ratio should sit within run-to-run noise.
type failoverOverheadResult struct {
	Name           string  `json:"name"`
	BaselineNs     float64 `json:"baseline_ns_per_op"`
	StandbyNs      float64 `json:"standby_ns_per_op"`
	Ratio          float64 `json:"ratio"` // standby / baseline; ~1.0 means within noise
	StreamRecords  int64   `json:"stream_records"`
	StreamBytes    int64   `json:"stream_bytes"`
	ReplicaApplied int64   `json:"replica_applied"`
	LeaseRenewals  int64   `json:"lease_renewals"`
	LeaseAcks      int64   `json:"lease_acks"`
}

// failoverBenchOutput is the schema of the -failover-json file.
type failoverBenchOutput struct {
	GeneratedAt string                   `json:"generated_at"`
	GoVersion   string                   `json:"go_version"`
	Quick       bool                     `json:"quick"`
	Results     []failoverOverheadResult `json:"results"`
}

// runFailoverOverhead measures what a hot standby costs a healthy forest
// job: every checkpoint record encoded and streamed, plus the lease
// renew/ack exchange, with no disk in either arm.
func runFailoverOverhead(quick bool) []failoverOverheadResult {
	trainRows, trees := 12000, 8
	if quick {
		trainRows, trees = 4000, 4
	}
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "fobench", Rows: trainRows, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 53,
	})
	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]cluster.TreeSpec, trees)
	for i := range specs {
		specs[i] = cluster.TreeSpec{Params: params,
			Bag: cluster.BagSpec{NumRows: trainRows, Sample: trainRows, Seed: int64(i)}}
	}
	trainOnce := func(standby bool, reg *obs.Registry) float64 {
		opts := []cluster.Option{
			cluster.WithWorkers(3), cluster.WithCompers(2),
			cluster.WithPolicy(task.Policy{TauD: trainRows / 10, TauDFS: trainRows / 2, NPool: 16}),
			cluster.WithObserver(reg),
		}
		if standby {
			opts = append(opts, cluster.WithLease(250*time.Millisecond))
		}
		c, err := cluster.NewInProcess(tbl, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if _, err := c.Train(specs); err != nil {
			log.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds())
	}
	trainOnce(false, nil) // warm up
	base := trainOnce(false, nil)
	reg := obs.NewRegistry()
	sb := trainOnce(true, reg)
	m := reg.Snapshot().Master
	return []failoverOverheadResult{{
		Name: "cluster.Train/forest", BaselineNs: base, StandbyNs: sb, Ratio: sb / base,
		StreamRecords: m.StreamRecords, StreamBytes: m.StreamBytes, ReplicaApplied: m.StreamApplied,
		LeaseRenewals: m.LeaseRenewals, LeaseAcks: m.LeaseAcks,
	}}
}

func writeFailoverBench(path string, quick bool) {
	results := runFailoverOverhead(quick)
	for _, r := range results {
		fmt.Printf("%-24s baseline %.0fns  with-standby %.0fns  ratio %.3f  (%d records / %d bytes streamed, %d applied, %d renewals / %d acks)\n",
			r.Name, r.BaselineNs, r.StandbyNs, r.Ratio, r.StreamRecords, r.StreamBytes, r.ReplicaApplied, r.LeaseRenewals, r.LeaseAcks)
	}
	data, err := json.MarshalIndent(failoverBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Results:     results,
	}, "", "  ")
	if err != nil {
		log.Fatalf("marshal failover bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func main() {
	var (
		table     = flag.String("table", "", "run a single experiment id (see -list)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		quick     = flag.Bool("quick", false, "shrunken smoke run")
		rows      = flag.Int("rows", 20000, "rows of the largest synthetic dataset")
		workers   = flag.Int("workers", 4, "simulated worker machines")
		compers   = flag.Int("compers", 4, "computing threads per worker")
		ablations = flag.Bool("ablations", false, "run only the design ablations")
		jsonPath  = flag.String("json", "", "write machine-readable results (tables + split kernel bench) to this file")
		obsJSON   = flag.String("obs-json", "", "run the telemetry on/off overhead bench and write it to this file")
		ckptJSON  = flag.String("ckpt-json", "", "run the checkpointing on/off overhead bench and write it to this file")
		hedgeJSON = flag.String("hedge-json", "", "run the hedging off/on A/B under one degraded worker and write it to this file")
		histJSON  = flag.String("hist-json", "", "run the exact-vs-hist split mode A/B and write it to this file")
		failJSON  = flag.String("failover-json", "", "run the hot-standby on/off overhead bench and write it to this file")
		serveJSON = flag.String("serve-json", "", "run the legacy-vs-compiled serving A/B and write it to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		return
	}

	if *obsJSON != "" {
		writeObsBench(*obsJSON, *quick)
	}
	if *ckptJSON != "" {
		writeCkptBench(*ckptJSON, *quick)
	}
	if *hedgeJSON != "" {
		writeHedgeBench(*hedgeJSON, *quick)
	}
	if *histJSON != "" {
		writeHistBench(*histJSON, *quick)
	}
	if *failJSON != "" {
		writeFailoverBench(*failJSON, *quick)
	}
	if *serveJSON != "" {
		writeServeBench(*serveJSON, *quick)
	}
	if (*obsJSON != "" || *ckptJSON != "" || *hedgeJSON != "" || *histJSON != "" || *failJSON != "" || *serveJSON != "") && *table == "" && !*ablations && *jsonPath == "" {
		return
	}

	scale := experiments.Scale{BaseRows: *rows, Workers: *workers, Compers: *compers, Quick: *quick}

	var results []*experiments.Result
	start := time.Now()
	run := func(id string) {
		f, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		r := f(scale)
		r.Fprint(os.Stdout)
		fmt.Printf("[%s took %s]\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
		results = append(results, r)
	}
	switch {
	case *table != "":
		run(*table)
	case *ablations:
		for _, id := range experiments.IDs() {
			if strings.HasPrefix(id, "ab-") {
				run(id)
			}
		}
	default:
		for _, id := range experiments.IDs() {
			run(id)
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))

	if *jsonPath != "" {
		benchRows := 10000
		if *quick {
			benchRows = 2000
		}
		out := benchOutput{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			Scale:       scale,
			Experiments: results,
			SplitBench:  runSplitBench(benchRows),
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal bench json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
