// Command benchtab regenerates the paper's evaluation tables (Tables
// II–VIII) and the DESIGN.md ablation benches on laptop-scale synthetic
// workloads.
//
// Usage:
//
//	benchtab                      # run every table at the default scale
//	benchtab -table 2a            # run one experiment (see -list)
//	benchtab -quick               # shrunken smoke run
//	benchtab -rows 50000 -workers 8 -compers 4
//	benchtab -ablations           # run only the design ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"treeserver/internal/experiments"
)

func main() {
	var (
		table     = flag.String("table", "", "run a single experiment id (see -list)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		quick     = flag.Bool("quick", false, "shrunken smoke run")
		rows      = flag.Int("rows", 20000, "rows of the largest synthetic dataset")
		workers   = flag.Int("workers", 4, "simulated worker machines")
		compers   = flag.Int("compers", 4, "computing threads per worker")
		ablations = flag.Bool("ablations", false, "run only the design ablations")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	scale := experiments.Scale{BaseRows: *rows, Workers: *workers, Compers: *compers, Quick: *quick}

	start := time.Now()
	run := func(id string) {
		f, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		r := f(scale)
		r.Fprint(os.Stdout)
		fmt.Printf("[%s took %s]\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
	}
	switch {
	case *table != "":
		run(*table)
	case *ablations:
		for _, id := range experiments.IDs() {
			if strings.HasPrefix(id, "ab-") {
				run(id)
			}
		}
	default:
		for _, id := range experiments.IDs() {
			run(id)
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}
