// Command benchtab regenerates the paper's evaluation tables (Tables
// II–VIII) and the DESIGN.md ablation benches on laptop-scale synthetic
// workloads.
//
// Usage:
//
//	benchtab                      # run every table at the default scale
//	benchtab -table 2a            # run one experiment (see -list)
//	benchtab -quick               # shrunken smoke run
//	benchtab -rows 50000 -workers 8 -compers 4
//	benchtab -ablations           # run only the design ablations
//	benchtab -json BENCH_splits.json   # also write machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"treeserver/internal/dataset"
	"treeserver/internal/experiments"
	"treeserver/internal/impurity"
	"treeserver/internal/split"
)

// splitBenchResult is one microbenchmark row of the split-kernel suite.
type splitBenchResult struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchOutput is the schema of the -json file: the experiment tables that
// ran plus the FindBest kernel microbenchmarks, for CI trend tracking.
type benchOutput struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	Scale       experiments.Scale     `json:"scale"`
	Experiments []*experiments.Result `json:"experiments"`
	SplitBench  []splitBenchResult    `json:"split_bench"`
}

// runSplitBench measures the exact numeric splitter's presorted fast path
// and sort+sweep fallback on one dense node, mirroring the package
// benchmarks in internal/split.
func runSplitBench(n int) []splitBenchResult {
	rng := rand.New(rand.NewSource(1))
	num := make([]float64, n)
	ycls := make([]int32, n)
	for i := range num {
		num[i] = rng.NormFloat64()
		if num[i]+rng.NormFloat64()*0.3 > 0 {
			ycls[i] = 1
		}
	}
	col := dataset.NewNumeric("x", num)
	y := dataset.NewCategorical("y", ycls, []string{"n", "p"})
	rows := dataset.AllRows(n)
	scratch := split.GetScratch()
	defer split.PutScratch(scratch)

	fast := split.Request{Col: col, Y: y, Rows: rows, Measure: impurity.Gini,
		NumClasses: 2, RowSet: dataset.RowSetOf(rows, n), Scratch: scratch}
	fallback := fast
	fallback.RowSet = nil

	out := make([]splitBenchResult, 0, 2)
	for _, c := range []struct {
		name string
		req  split.Request
	}{{"FindBestNumeric/presorted", fast}, {"FindBestNumeric/fallback", fallback}} {
		req := c.req
		split.FindBest(req) // warm up: sort index + scratch growth
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				split.FindBest(req)
			}
		})
		out = append(out, splitBenchResult{
			Name:        c.name,
			Rows:        n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

func main() {
	var (
		table     = flag.String("table", "", "run a single experiment id (see -list)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		quick     = flag.Bool("quick", false, "shrunken smoke run")
		rows      = flag.Int("rows", 20000, "rows of the largest synthetic dataset")
		workers   = flag.Int("workers", 4, "simulated worker machines")
		compers   = flag.Int("compers", 4, "computing threads per worker")
		ablations = flag.Bool("ablations", false, "run only the design ablations")
		jsonPath  = flag.String("json", "", "write machine-readable results (tables + split kernel bench) to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	scale := experiments.Scale{BaseRows: *rows, Workers: *workers, Compers: *compers, Quick: *quick}

	var results []*experiments.Result
	start := time.Now()
	run := func(id string) {
		f, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		r := f(scale)
		r.Fprint(os.Stdout)
		fmt.Printf("[%s took %s]\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
		results = append(results, r)
	}
	switch {
	case *table != "":
		run(*table)
	case *ablations:
		for _, id := range experiments.IDs() {
			if strings.HasPrefix(id, "ab-") {
				run(id)
			}
		}
	default:
		for _, id := range experiments.IDs() {
			run(id)
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))

	if *jsonPath != "" {
		benchRows := 10000
		if *quick {
			benchRows = 2000
		}
		out := benchOutput{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			Scale:       scale,
			Experiments: results,
			SplitBench:  runSplitBench(benchRows),
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal bench json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
