package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/forest"
	"treeserver/internal/infer"
	"treeserver/internal/model"
	"treeserver/internal/registry"
	"treeserver/internal/serve"
	"treeserver/internal/synth"
)

// serveBenchResult is one arm × batch-size (or depth) cell of the serving
// A/B. RowsPerSecPerCore is single-goroutine throughput, so per-core equals
// absolute; p50/p99 come from sorted per-call wall times over a fixed-length
// measurement loop, allocs/op from testing.Benchmark.
type serveBenchResult struct {
	Arm            string  `json:"arm"` // "legacy" or "compiled"
	Batch          int     `json:"batch"`
	MaxDepth       int     `json:"max_depth,omitempty"` // 0 = full trees
	NsPerOp        float64 `json:"ns_per_op,omitempty"`
	RowsPerSecCore float64 `json:"rows_per_sec_per_core,omitempty"`
	P50Ns          int64   `json:"p50_ns,omitempty"`
	P99Ns          int64   `json:"p99_ns,omitempty"`
	AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
	// Load-generator cells: aggregate throughput over this many concurrent
	// client goroutines (0 = single-goroutine microbenchmark cell).
	Goroutines int     `json:"goroutines,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// serveBenchOutput is the schema of the -serve-json file.
type serveBenchOutput struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	Quick       bool               `json:"quick"`
	Trees       int                `json:"trees"`
	MaxTreeDep  int                `json:"max_tree_depth"`
	Batches     []serveBenchResult `json:"batches"`
	DepthSweep  []serveBenchResult `json:"depth_sweep"`
	// LoadSweep is the multi-goroutine load-generator grid: aggregate
	// rows/sec for each arm at 1, 4 and NumCPU concurrent clients.
	LoadSweep []serveBenchResult `json:"load_sweep"`
	// Resilience A/Bs the full HTTP handler with the resilience machinery
	// off ("plain") and on ("hardened": inflight limiter + request deadline
	// + a live canary split) at batch 64.
	Resilience []serveBenchResult `json:"resilience"`
	// ResilienceOverhead is hardened over plain ns/op at batch 64 — the
	// price of the limiter+deadline+canary path (should sit within noise).
	ResilienceOverhead float64 `json:"resilience_overhead"`
	// SpeedupAtBatch64 is compiled over legacy rows/sec at batch 64 — the
	// acceptance headline.
	SpeedupAtBatch64 float64 `json:"speedup_at_batch_64"`
}

// discardRW is the cheapest possible ResponseWriter: headers land in a reused
// map, bodies in the void. It keeps the handler A/B free of recorder allocs.
type discardRW struct {
	h    http.Header
	code int
}

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardRW) WriteHeader(code int)        { d.code = code }

// serveBenchArm measures one request-shaped workload end to end: parse the
// JSON body, score every row, encode the response. It reports mean ns/op,
// percentiles over `calls` timed invocations, and allocs/op.
func serveBenchArm(body []byte, work func([]byte)) (float64, int64, int64, int64) {
	work(body) // warm up pools and scratch
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			work(body)
		}
	})
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	calls := 400
	lat := make([]int64, calls)
	for i := range lat {
		t0 := time.Now()
		work(body)
		lat[i] = time.Since(t0).Nanoseconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return nsPerOp, lat[calls/2], lat[calls*99/100], r.AllocsPerOp()
}

// loadThroughput drives the workload from n concurrent client goroutines for
// a fixed wall-clock window and returns aggregate rows/sec. makeWork is
// called once per goroutine so closures carrying per-client scratch (the
// compiled arm's encode buffer) are never shared.
func loadThroughput(makeWork func() func([]byte), body []byte, batch, n int, window time.Duration) float64 {
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		work := makeWork()
		work(body) // warm per-client scratch outside the timed window
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					work(body)
					ops.Add(1)
				}
			}
		}()
	}
	t0 := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) * float64(batch) / time.Since(t0).Seconds()
}

// runServeBench trains a forest once, then A/Bs the legacy interpreter path
// (encoding/json → Schema.ParseRows → File.Predict → encoding/json) against
// the compiled path (infer.DecodeRequest → Model.Predict → pooled append
// encode) on identical request bodies at several batch sizes, plus a
// MaxDepth truncation sweep on the compiled arm.
func runServeBench(quick bool) serveBenchOutput {
	trainRows, trees := 20000, 16
	if quick {
		trainRows, trees = 5000, 8
	}
	train := synth.GenerateTrain(synth.Spec{
		Name: "servebench", Rows: trainRows, NumNumeric: 6, NumCategorical: 2, CatLevels: 8,
		NumClasses: 3, ConceptDepth: 6, LabelNoise: 0.05, Seed: 61,
	})
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: trees, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "servebench", f, model.SchemaOf(train)); err != nil {
		log.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := infer.Compile(mf)
	if err != nil {
		log.Fatal(err)
	}

	// Request bodies mirror what a /predict caller sends: string-valued
	// cells, every feature present, drawn from the training distribution.
	rng := rand.New(rand.NewSource(7))
	names := mf.Schema.FeatureNames()
	makeBody := func(batch int) []byte {
		var b bytes.Buffer
		b.WriteString(`{"rows":[`)
		for r := 0; r < batch; r++ {
			if r > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('{')
			for i, name := range names {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Quote(name))
				b.WriteByte(':')
				if i < 6 {
					b.WriteString(strconv.Quote(strconv.FormatFloat(rng.NormFloat64()*2, 'g', 6, 64)))
				} else {
					b.WriteString(strconv.Quote("L" + strconv.Itoa(rng.Intn(8))))
				}
			}
			b.WriteByte('}')
		}
		b.WriteString(`]}`)
		return b.Bytes()
	}

	legacyWork := func(body []byte) {
		var req struct {
			Rows []map[string]string `json:"rows"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			log.Fatal(err)
		}
		tbl, err := mf.Schema.ParseRows(req.Rows)
		if err != nil {
			log.Fatal(err)
		}
		preds := mf.Predict(tbl)
		if _, err := json.Marshal(struct {
			Predictions []model.Prediction `json:"predictions"`
		}{preds}); err != nil {
			log.Fatal(err)
		}
	}

	// newCompiledWork builds one request-scoring closure with its own encode
	// buffer — per-client state, exactly as each connection goroutine owns
	// one in the server. The load generator calls this once per goroutine.
	newCompiledWork := func(depth int) func([]byte) {
		var out bytes.Buffer
		return func(body []byte) {
			block := cm.GetBlock()
			res := cm.GetResult()
			reqDepth, err := cm.DecodeRequest(block, body, 1<<20)
			if err != nil {
				log.Fatal(err)
			}
			if reqDepth == 0 {
				reqDepth = depth
			}
			cm.Predict(block, res, reqDepth)
			out.Reset()
			b := out.AvailableBuffer()
			b = append(b, `{"predictions":[`...)
			classes := cm.Classes()
			for i := 0; i < res.Len(); i++ {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"class":`...)
				b = strconv.AppendQuote(b, classes[res.Class(i)])
				b = append(b, `,"pmf":[`...)
				for j, p := range res.PMF(i) {
					if j > 0 {
						b = append(b, ',')
					}
					b = strconv.AppendFloat(b, p, 'g', -1, 64)
				}
				b = append(b, ']', '}')
			}
			b = append(b, ']', '}')
			out.Write(b)
			cm.PutResult(res)
			cm.PutBlock(block)
		}
	}
	compiledWork := newCompiledWork(0)

	output := serveBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Trees:       trees,
		MaxTreeDep:  cm.MaxTreeDepth(),
	}
	for _, batch := range []int{1, 64, 1024} {
		body := makeBody(batch)
		for _, arm := range []struct {
			name string
			work func([]byte)
		}{{"legacy", legacyWork}, {"compiled", compiledWork}} {
			ns, p50, p99, allocs := serveBenchArm(body, arm.work)
			res := serveBenchResult{
				Arm: arm.name, Batch: batch, NsPerOp: ns,
				RowsPerSecCore: float64(batch) / (ns / 1e9),
				P50Ns:          p50, P99Ns: p99, AllocsPerOp: allocs,
			}
			output.Batches = append(output.Batches, res)
			fmt.Printf("serve %-8s batch %-5d %12.0f ns/op  %12.0f rows/s/core  p50 %8dns p99 %8dns  %5d allocs/op\n",
				arm.name, batch, ns, res.RowsPerSecCore, p50, p99, allocs)
		}
	}
	for i := 0; i+1 < len(output.Batches); i += 2 {
		if output.Batches[i].Batch == 64 {
			output.SpeedupAtBatch64 = output.Batches[i+1].RowsPerSecCore / output.Batches[i].RowsPerSecCore
		}
	}
	fmt.Printf("serve speedup at batch 64: %.2fx\n", output.SpeedupAtBatch64)

	// Multi-goroutine load generator: aggregate throughput at 1, 4 and
	// NumCPU concurrent clients on the batch-64 body — how the serving path
	// scales when connections pile on, not just how fast one core runs.
	window := 300 * time.Millisecond
	if quick {
		window = 150 * time.Millisecond
	}
	loadBody := makeBody(64)
	seen := map[int]bool{}
	for _, g := range []int{1, 4, runtime.NumCPU()} {
		if g < 1 || seen[g] {
			continue
		}
		seen[g] = true
		for _, arm := range []struct {
			name string
			mk   func() func([]byte)
		}{
			// legacyWork keeps no per-call state, so every client can share it.
			{"legacy", func() func([]byte) { return legacyWork }},
			{"compiled", func() func([]byte) { return newCompiledWork(0) }},
		} {
			rps := loadThroughput(arm.mk, loadBody, 64, g, window)
			output.LoadSweep = append(output.LoadSweep, serveBenchResult{
				Arm: arm.name, Batch: 64, Goroutines: g, RowsPerSec: rps,
			})
			fmt.Printf("serve %-8s load %2d goroutine(s)  %12.0f rows/s aggregate\n", arm.name, g, rps)
		}
	}

	// Resilience A/B: the identical batch-64 body through the full HTTP
	// handler — once with every resilience knob off, once with the limiter,
	// request deadline and a live canary split all armed (window parked far
	// above the benchmark's request count so no promote/rollback fires
	// mid-measurement). The delta is what overload control costs a healthy
	// request.
	newServerWork := func(s *serve.Server) func([]byte) {
		w := &discardRW{h: make(http.Header)}
		req, err := http.NewRequest(http.MethodPost, "/v1/models/servebench/predict", nil)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("X-Canary-Key", "bench-client")
		req.RemoteAddr = "10.0.0.1:1234"
		var rd bytes.Reader
		return func(body []byte) {
			rd.Reset(body)
			req.Body = io.NopCloser(&rd)
			req.ContentLength = int64(len(body))
			w.code = 0
			s.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				log.Fatalf("serve bench handler returned %d", w.code)
			}
		}
	}
	newBenchRegistry := func(versions int) *registry.Registry {
		reg := registry.New()
		for i := 0; i < versions; i++ {
			if _, err := reg.Load("servebench", mf, "bench"); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := reg.Activate("servebench", 1); err != nil {
			log.Fatal(err)
		}
		return reg
	}
	plainSrv := serve.New(newBenchRegistry(1))
	hardReg := newBenchRegistry(2)
	if _, err := hardReg.StageWindow("servebench", 2, 0.3, 1<<30); err != nil {
		log.Fatal(err)
	}
	hardSrv := serve.New(hardReg,
		serve.WithMaxInflight(64), serve.WithQueue(16, 50*time.Millisecond),
		serve.WithRequestTimeout(5*time.Second))
	resBody := makeBody(64)
	var plainNs float64
	for _, arm := range []struct {
		name string
		srv  *serve.Server
	}{{"plain", plainSrv}, {"hardened", hardSrv}} {
		ns, p50, p99, allocs := serveBenchArm(resBody, newServerWork(arm.srv))
		res := serveBenchResult{
			Arm: arm.name, Batch: 64, NsPerOp: ns,
			RowsPerSecCore: 64 / (ns / 1e9),
			P50Ns:          p50, P99Ns: p99, AllocsPerOp: allocs,
		}
		output.Resilience = append(output.Resilience, res)
		if arm.name == "plain" {
			plainNs = ns
		} else if plainNs > 0 {
			output.ResilienceOverhead = ns / plainNs
		}
		fmt.Printf("serve %-8s batch %-5d %12.0f ns/op  %12.0f rows/s/core  p50 %8dns p99 %8dns  %5d allocs/op\n",
			arm.name, 64, ns, res.RowsPerSecCore, p50, p99, allocs)
	}
	fmt.Printf("serve resilience overhead at batch 64: %.3fx\n", output.ResilienceOverhead)

	// MaxDepth sweep: the Appendix-D truncation knob on the compiled arm.
	// Depths step from 2 up to the deepest trained tree.
	body := makeBody(256)
	for depth := 2; depth <= cm.MaxTreeDepth(); depth += 2 {
		ns, p50, p99, allocs := serveBenchArm(body, newCompiledWork(depth))
		res := serveBenchResult{
			Arm: "compiled", Batch: 256, MaxDepth: depth, NsPerOp: ns,
			RowsPerSecCore: 256 / (ns / 1e9),
			P50Ns:          p50, P99Ns: p99, AllocsPerOp: allocs,
		}
		output.DepthSweep = append(output.DepthSweep, res)
		fmt.Printf("serve compiled depth %-3d   %12.0f ns/op  %12.0f rows/s/core  p50 %8dns p99 %8dns\n",
			depth, ns, res.RowsPerSecCore, p50, p99)
	}
	return output
}

func writeServeBench(path string, quick bool) {
	out := runServeBench(quick)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatalf("marshal serve bench json: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}
