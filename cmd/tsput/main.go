// Command tsput is TreeServer's dedicated "put" program (Section VII): it
// uploads a CSV table into the DFS column-group × row-group layout, so that
// workers can load whole columns cheaply while row-partitioned jobs can
// load row ranges cheaply.
//
// Usage:
//
//	tsput -csv data.csv -target Y -store /mnt/dfs -name mytable \
//	      -cols-per-group 50 -rows-per-group 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"treeserver/internal/dataset"
	"treeserver/internal/dfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsput: ")
	var (
		csvPath  = flag.String("csv", "", "input CSV file (with header)")
		target   = flag.String("target", "", "name of the Y column to predict")
		storeDir = flag.String("store", "", "DFS store directory")
		name     = flag.String("name", "table", "table name within the store")
		colsPG   = flag.Int("cols-per-group", 50, "columns per column-group file")
		rowsPG   = flag.Int("rows-per-group", 100000, "rows per row-group file")
		forceCat = flag.String("force-categorical", "", "comma-separated columns to parse as categorical")
	)
	flag.Parse()
	if *csvPath == "" || *target == "" || *storeDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		log.Fatalf("opening CSV: %v", err)
	}
	defer f.Close()
	opts := dataset.CSVOptions{Target: *target}
	if *forceCat != "" {
		opts.ForceCategorical = strings.Split(*forceCat, ",")
	}
	tbl, err := dataset.ReadCSV(f, opts)
	if err != nil {
		log.Fatalf("parsing CSV: %v", err)
	}

	store, err := dfs.NewDirStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := dfs.PutTable(store, *name, tbl, *colsPG, *rowsPG)
	if err != nil {
		log.Fatalf("uploading: %v", err)
	}
	fmt.Printf("uploaded %q: %d rows x %d columns (%s), %d column groups x %d row groups\n",
		*name, tbl.NumRows(), tbl.NumCols(), tbl.Task(),
		len(layout.ColGroups), len(layout.RowGroups))
}
