// Package split implements split-condition search for decision-tree nodes:
// the three exact one-pass algorithms of the paper's Appendix B, a random
// splitter for extra-trees, the approximate equi-depth histogram splitter
// used by the PLANET/MLlib baseline, and a brute-force reference finder for
// property tests.
package split

import (
	"fmt"
	"slices"
	"strings"

	"treeserver/internal/dataset"
)

// Condition is a binary node-splitting condition on one attribute.
//
// For a numeric attribute the condition is "Ai <= Threshold"; for a
// categorical attribute it is "Ai in LeftSet". Rows satisfying the condition
// go to the left child. Rows with a missing attribute value go left when
// MissingLeft is set (training routes them with the larger partition).
type Condition struct {
	Col         int // column index within the table
	Kind        dataset.Kind
	Threshold   float64 // numeric split value v
	LeftSet     []int32 // sorted categorical codes routed left
	leftMask    uint64  // fast-path bitmask when all codes < 64
	maskValid   bool
	MissingLeft bool
}

// NewNumericCondition builds an "Ai <= v" condition.
func NewNumericCondition(col int, v float64, missingLeft bool) Condition {
	return Condition{Col: col, Kind: dataset.Numeric, Threshold: v, MissingLeft: missingLeft}
}

// NewCategoricalCondition builds an "Ai in Sl" condition. The code slice is
// copied and sorted.
func NewCategoricalCondition(col int, leftSet []int32, missingLeft bool) Condition {
	set := append([]int32(nil), leftSet...)
	slices.Sort(set)
	c := Condition{Col: col, Kind: dataset.Categorical, LeftSet: set, MissingLeft: missingLeft}
	c.buildMask()
	return c
}

func (c *Condition) buildMask() {
	c.leftMask, c.maskValid = 0, true
	for _, code := range c.LeftSet {
		if code < 0 || code >= 64 {
			c.maskValid = false
			c.leftMask = 0
			return
		}
		c.leftMask |= 1 << uint(code)
	}
}

// LeftContains reports whether categorical code belongs to the left set.
func (c *Condition) LeftContains(code int32) bool {
	if c.maskValid {
		return code >= 0 && code < 64 && c.leftMask&(1<<uint(code)) != 0
	}
	_, found := slices.BinarySearch(c.LeftSet, code)
	return found
}

// GoesLeft evaluates the condition on row r of column col. The caller must
// pass the column the condition was built for. Missing values follow
// MissingLeft.
func (c *Condition) GoesLeft(col *dataset.Column, r int) bool {
	if col.IsMissing(r) {
		return c.MissingLeft
	}
	if c.Kind == dataset.Numeric {
		return col.Floats[r] <= c.Threshold
	}
	return c.LeftContains(col.Cats[r])
}

// Rehydrate rebuilds unexported caches after the condition crossed a
// serialisation boundary (gob only transfers exported fields).
func (c *Condition) Rehydrate() {
	if c.Kind == dataset.Categorical {
		c.buildMask()
	}
}

// String renders the condition using the column's metadata when provided.
func (c Condition) String() string {
	if c.Kind == dataset.Numeric {
		return fmt.Sprintf("col[%d] <= %g", c.Col, c.Threshold)
	}
	codes := make([]string, len(c.LeftSet))
	for i, code := range c.LeftSet {
		codes[i] = fmt.Sprint(code)
	}
	return fmt.Sprintf("col[%d] in {%s}", c.Col, strings.Join(codes, ","))
}

// Candidate is a scored split condition: the outcome of evaluating one
// column at one node. Workers ship Candidates (not row sets) to the master,
// together with the left/right row counts the master needs to classify the
// child tasks (Section V).
type Candidate struct {
	Cond     Condition
	Impurity float64 // weighted child impurity; lower is better
	LeftN    int
	RightN   int
	Valid    bool // false when the column admits no useful split at this node
}

// Better reports whether candidate a strictly beats candidate b. Invalid
// candidates never win; ties break toward the lower column index so that
// distributed and serial training choose identical trees.
func (a Candidate) Better(b Candidate) bool {
	if !a.Valid {
		return false
	}
	if !b.Valid {
		return true
	}
	if a.Impurity != b.Impurity {
		return a.Impurity < b.Impurity
	}
	return a.Cond.Col < b.Cond.Col
}

// Partition splits rows into (left, right) according to the condition,
// preserving relative order — the operation a delegate worker performs to
// derive I_xl and I_xr from I_x.
func (c *Condition) Partition(col *dataset.Column, rows []int32) (left, right []int32) {
	left = make([]int32, 0, len(rows))
	right = make([]int32, 0, len(rows))
	for _, r := range rows {
		if c.GoesLeft(col, int(r)) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}
