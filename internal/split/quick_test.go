package split

import (
	"math"
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

// randNumericTable draws a numeric column (optionally with missing rows and
// heavy value ties) plus a target column over n rows.
func randNumericCol(rng *rand.Rand, n int, withMissing bool) *dataset.Column {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(rng.Intn(9)) // few distinct values => many ties
	}
	col := dataset.NewNumeric("x", vals)
	if withMissing {
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.15 {
				col.SetMissing(i)
			}
		}
	}
	return col
}

func randTarget(rng *rand.Rand, n int, classification bool, numClasses int) *dataset.Column {
	if classification {
		ys := make([]int32, n)
		names := make([]string, numClasses)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		for i := range ys {
			ys[i] = int32(rng.Intn(numClasses))
		}
		return dataset.NewCategorical("y", ys, names)
	}
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = rng.NormFloat64() * 3
	}
	return dataset.NewNumeric("y", ys)
}

// randRows draws a random row multiset: sometimes all rows, sometimes a
// subset, sometimes a bootstrap-style sample with replacement (duplicates).
func randRows(rng *rand.Rand, n int) []int32 {
	switch rng.Intn(3) {
	case 0:
		return dataset.AllRows(n)
	case 1:
		var rows []int32
		for r := 0; r < n; r++ {
			if rng.Float64() < 0.7 {
				rows = append(rows, int32(r))
			}
		}
		return rows
	default:
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(rng.Intn(n))
		}
		return rows
	}
}

// TestPresortedMatchesFallbackExactly: the presorted membership walk and the
// sort+sweep fallback are the same algorithm over the same total order, so
// on any input — ties, missing values, duplicated bootstrap rows — they must
// return identical candidates, bit-for-bit on the impurity.
func TestPresortedMatchesFallbackExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	scratch := GetScratch()
	defer PutScratch(scratch)
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(120)
		classification := rng.Intn(2) == 0
		numClasses := 2 + rng.Intn(3)
		col := randNumericCol(rng, n, rng.Intn(2) == 0)
		y := randTarget(rng, n, classification, numClasses)
		rows := randRows(rng, n)
		measure := impurity.Variance
		if classification {
			measure = impurity.Gini
			if rng.Intn(2) == 0 {
				measure = impurity.Entropy
			}
		}
		base := Request{Col: col, ColIdx: 2, Y: y, Rows: rows, Measure: measure, NumClasses: numClasses}

		fallback := FindBest(base)

		fast := base
		fast.RowSet = dataset.RowSetOf(rows, n)
		fast.MinDensity = 1e-9 // force the presorted path regardless of density
		fast.Scratch = scratch
		if !fast.usePresorted() && len(rows) >= 2 {
			t.Fatalf("trial %d: fast path did not engage", trial)
		}
		got := FindBest(fast)

		if got.Valid != fallback.Valid {
			t.Fatalf("trial %d: validity fast=%v fallback=%v", trial, got.Valid, fallback.Valid)
		}
		if !got.Valid {
			continue
		}
		if got.Impurity != fallback.Impurity {
			t.Fatalf("trial %d: impurity fast=%v fallback=%v (not bit-for-bit)", trial, got.Impurity, fallback.Impurity)
		}
		if got.Cond.Threshold != fallback.Cond.Threshold {
			t.Fatalf("trial %d: threshold fast=%v fallback=%v", trial, got.Cond.Threshold, fallback.Cond.Threshold)
		}
		if got.LeftN != fallback.LeftN || got.RightN != fallback.RightN {
			t.Fatalf("trial %d: counts fast=%d/%d fallback=%d/%d",
				trial, got.LeftN, got.RightN, fallback.LeftN, fallback.RightN)
		}
		if got.Cond.MissingLeft != fallback.Cond.MissingLeft {
			t.Fatalf("trial %d: missing routing differs", trial)
		}
	}
}

// TestPresortedAndFallbackMatchBrute: both numeric paths must achieve the
// brute-force optimum impurity, and every path's child counts must cover the
// node. Complements TestExactMatchesBruteForce by also driving the RowSet
// fast path and the shared Scratch.
func TestPresortedAndFallbackMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	scratch := GetScratch()
	defer PutScratch(scratch)
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(50)
		classification := rng.Intn(2) == 0
		numClasses := 2 + rng.Intn(3)
		col := randNumericCol(rng, n, rng.Intn(2) == 0)
		y := randTarget(rng, n, classification, numClasses)
		rows := randRows(rng, n)
		measure := impurity.Variance
		if classification {
			measure = impurity.Gini
		}
		base := Request{Col: col, ColIdx: 0, Y: y, Rows: rows, Measure: measure, NumClasses: numClasses}

		brute := FindBestBrute(base)
		fallback := FindBest(base)
		fast := base
		fast.RowSet = dataset.RowSetOf(rows, n)
		fast.MinDensity = 1e-9
		fast.Scratch = scratch
		pres := FindBest(fast)

		for name, cand := range map[string]Candidate{"fallback": fallback, "presorted": pres} {
			if cand.Valid != brute.Valid {
				t.Fatalf("trial %d: %s validity %v, brute %v", trial, name, cand.Valid, brute.Valid)
			}
			if !cand.Valid {
				continue
			}
			if math.Abs(cand.Impurity-brute.Impurity) > 1e-9 {
				t.Fatalf("trial %d: %s impurity %g, brute %g", trial, name, cand.Impurity, brute.Impurity)
			}
			if cand.LeftN+cand.RightN != len(rows) {
				t.Fatalf("trial %d: %s counts %d+%d do not cover %d rows",
					trial, name, cand.LeftN, cand.RightN, len(rows))
			}
		}
	}
}

// TestScratchReuseMatchesFreshAcrossKinds: one Scratch reused across a long
// randomized stream of requests — numeric and categorical, classification
// and regression, with and without missing values — must return the same
// candidate as a fresh computation each time. Catches stale-buffer bugs.
func TestScratchReuseMatchesFreshAcrossKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	scratch := GetScratch()
	defer PutScratch(scratch)
	for trial := 0; trial < 250; trial++ {
		n := 2 + rng.Intn(80)
		classification := rng.Intn(2) == 0
		numClasses := 2 + rng.Intn(4)
		var col *dataset.Column
		if rng.Intn(2) == 0 {
			col = randNumericCol(rng, n, rng.Intn(2) == 0)
		} else {
			levels := 2 + rng.Intn(12) // crosses the exhaustive/Breiman/singleton regimes
			names := make([]string, levels)
			for i := range names {
				names[i] = string(rune('a' + i))
			}
			codes := make([]int32, n)
			for i := range codes {
				codes[i] = int32(rng.Intn(levels))
			}
			col = dataset.NewCategorical("c", codes, names)
		}
		y := randTarget(rng, n, classification, numClasses)
		rows := randRows(rng, n)
		measure := impurity.Variance
		if classification {
			measure = impurity.Gini
		}
		req := Request{Col: col, ColIdx: 1, Y: y, Rows: rows, Measure: measure, NumClasses: numClasses}

		fresh := FindBest(req)
		req.Scratch = scratch
		reused := FindBest(req)

		if fresh.Valid != reused.Valid {
			t.Fatalf("trial %d: validity fresh=%v reused=%v", trial, fresh.Valid, reused.Valid)
		}
		if !fresh.Valid {
			continue
		}
		if fresh.Impurity != reused.Impurity || fresh.LeftN != reused.LeftN || fresh.RightN != reused.RightN {
			t.Fatalf("trial %d: scratch reuse diverged: fresh=%+v reused=%+v", trial, fresh, reused)
		}
		if fresh.Cond.Kind == dataset.Categorical {
			if len(fresh.Cond.LeftSet) != len(reused.Cond.LeftSet) {
				t.Fatalf("trial %d: left sets differ: %v vs %v", trial, fresh.Cond.LeftSet, reused.Cond.LeftSet)
			}
			for i := range fresh.Cond.LeftSet {
				if fresh.Cond.LeftSet[i] != reused.Cond.LeftSet[i] {
					t.Fatalf("trial %d: left sets differ: %v vs %v", trial, fresh.Cond.LeftSet, reused.Cond.LeftSet)
				}
			}
		} else if fresh.Cond.Threshold != reused.Cond.Threshold {
			t.Fatalf("trial %d: thresholds differ: %v vs %v", trial, fresh.Cond.Threshold, reused.Cond.Threshold)
		}
	}
}

// TestDensityGate: below the density threshold the presorted path must not
// engage even with a RowSet present; at or above it must.
func TestDensityGate(t *testing.T) {
	n := 1000
	col := randNumericCol(rand.New(rand.NewSource(1)), n, false)
	rs := dataset.RowSetOf(dataset.AllRows(n), n)

	sparseRows := dataset.AllRows(n)[:10]
	sparse := Request{Col: col, Rows: sparseRows, RowSet: rs}
	if sparse.usePresorted() {
		t.Fatal("sparse node engaged the presorted path at default density")
	}
	dense := Request{Col: col, Rows: dataset.AllRows(n), RowSet: rs}
	if !dense.usePresorted() {
		t.Fatal("dense node did not engage the presorted path")
	}
	mismatched := Request{Col: col, Rows: dataset.AllRows(n), RowSet: dataset.NewRowSet(n + 1)}
	if mismatched.usePresorted() {
		t.Fatal("mismatched RowSet capacity engaged the presorted path")
	}
}
