package split

import (
	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

// FindBestBrute is an O(candidates × rows) reference implementation of
// FindBest used by property tests: it evaluates every admissible condition
// by fully re-partitioning the rows, with no incremental accumulators and no
// ordering tricks. Its result must match FindBest's impurity on any input.
func FindBestBrute(req Request) Candidate {
	present := make([]int32, 0, len(req.Rows))
	missN := 0
	for _, r := range req.Rows {
		if req.Col.IsMissing(int(r)) {
			missN++
		} else {
			present = append(present, r)
		}
	}
	if len(present) < 2 {
		return Candidate{}
	}
	best := Candidate{}
	for _, cond := range enumerateConditions(req, present) {
		cand := scoreCondition(req, cond, present)
		if cand.Better(best) {
			best = cand
		}
	}
	if !best.Valid {
		return best
	}
	best.Cond.MissingLeft = best.LeftN >= best.RightN
	if best.Cond.MissingLeft {
		best.LeftN += missN
	} else {
		best.RightN += missN
	}
	return best
}

func enumerateConditions(req Request, rows []int32) []Condition {
	var conds []Condition
	if req.Col.Kind == dataset.Numeric {
		seen := map[float64]bool{}
		var values []float64
		for _, r := range rows {
			v := req.Col.Floats[r]
			if !seen[v] {
				seen[v] = true
				values = append(values, v)
			}
		}
		sortFloats(values)
		for i := 0; i+1 < len(values); i++ {
			conds = append(conds, NewNumericCondition(req.ColIdx, midpoint(values[i], values[i+1]), false))
		}
		return conds
	}
	present := map[int32]bool{}
	var codes []int32
	for _, r := range rows {
		c := req.Col.Cats[r]
		if !present[c] {
			present[c] = true
			codes = append(codes, c)
		}
	}
	sortCodes(codes)
	if len(codes) < 2 {
		return nil
	}
	regression := req.Y.Kind == dataset.Numeric
	exhaustive := len(codes) <= req.maxExhaustive()
	switch {
	case regression || exhaustive:
		// Enumerate all bipartitions (codes[0] pinned right). For regression
		// this super-set of Breiman's prefix family verifies its optimality.
		rest := codes[1:]
		for mask := 1; mask < 1<<uint(len(rest)); mask++ {
			var leftSet []int32
			for b, code := range rest {
				if mask&(1<<uint(b)) != 0 {
					leftSet = append(leftSet, code)
				}
			}
			conds = append(conds, NewCategoricalCondition(req.ColIdx, leftSet, false))
		}
	default:
		for _, code := range codes {
			conds = append(conds, NewCategoricalCondition(req.ColIdx, []int32{code}, false))
		}
	}
	return conds
}

func scoreCondition(req Request, cond Condition, rows []int32) Candidate {
	left, right := cond.Partition(req.Col, rows)
	if len(left) == 0 || len(right) == 0 {
		return Candidate{}
	}
	imp := impurity.WeightedSplit(len(left), subsetImpurity(req, left), len(right), subsetImpurity(req, right))
	return Candidate{Cond: cond, Impurity: imp, LeftN: len(left), RightN: len(right), Valid: true}
}

func subsetImpurity(req Request, rows []int32) float64 {
	if req.Y.Kind == dataset.Categorical {
		counts := make([]int, req.NumClasses)
		for _, r := range rows {
			counts[req.Y.Cats[r]]++
		}
		if req.Measure == impurity.Entropy {
			return impurity.EntropyFromCounts(counts)
		}
		return impurity.GiniFromCounts(counts)
	}
	var m impurity.MomentAccumulator
	for _, r := range rows {
		m.Add(req.Y.Floats[r])
	}
	return m.Impurity()
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func sortCodes(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
