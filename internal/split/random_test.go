package split

import (
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

func TestFindRandomNumericWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := dataset.NewNumeric("x", []float64{3, 7, 1, 9, 5})
	y := dataset.NewCategorical("y", []int32{0, 1, 0, 1, 0}, []string{"a", "b"})
	for trial := 0; trial < 100; trial++ {
		cand := FindRandom(Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(5), Measure: impurity.Gini, NumClasses: 2}, rng)
		if !cand.Valid {
			t.Fatal("valid input produced no split")
		}
		if cand.Cond.Threshold < 1 || cand.Cond.Threshold >= 9 {
			t.Fatalf("threshold %g outside [min, max)", cand.Cond.Threshold)
		}
		if cand.LeftN == 0 || cand.RightN == 0 {
			t.Fatalf("degenerate partition %d/%d", cand.LeftN, cand.RightN)
		}
	}
}

func TestFindRandomConstantColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := dataset.NewNumeric("x", []float64{4, 4, 4})
	y := dataset.NewCategorical("y", []int32{0, 1, 0}, []string{"a", "b"})
	if cand := FindRandom(Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(3), Measure: impurity.Gini, NumClasses: 2}, rng); cand.Valid {
		t.Fatal("constant column produced a random split")
	}
}

func TestFindRandomCategoricalProperSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	col := dataset.NewCategorical("c", []int32{0, 1, 2, 3, 0, 1, 2, 3}, []string{"a", "b", "c", "d"})
	y := dataset.NewCategorical("y", []int32{0, 1, 0, 1, 0, 1, 0, 1}, []string{"n", "p"})
	for trial := 0; trial < 100; trial++ {
		cand := FindRandom(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(8), Measure: impurity.Gini, NumClasses: 2}, rng)
		if !cand.Valid {
			t.Fatal("no random categorical split")
		}
		if len(cand.Cond.LeftSet) == 0 || len(cand.Cond.LeftSet) == 4 {
			t.Fatalf("left set %v is trivial", cand.Cond.LeftSet)
		}
	}
}

func TestFindRandomDeterministicPerSeed(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 4, 5, 6})
	y := dataset.NewNumeric("y", []float64{1, 2, 3, 4, 5, 6})
	req := Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(6), Measure: impurity.Variance}
	a := FindRandom(req, rand.New(rand.NewSource(77)))
	b := FindRandom(req, rand.New(rand.NewSource(77)))
	if a.Cond.Threshold != b.Cond.Threshold {
		t.Fatal("same seed produced different random splits")
	}
}

func TestFindRandomSkipsMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 100})
	x.SetMissing(3) // missing row must not stretch the [min,max] range
	y := dataset.NewNumeric("y", []float64{1, 2, 3, 4})
	for trial := 0; trial < 50; trial++ {
		cand := FindRandom(Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(4), Measure: impurity.Variance}, rng)
		if !cand.Valid {
			t.Fatal("no split")
		}
		if cand.Cond.Threshold >= 3 {
			t.Fatalf("threshold %g drawn from missing value's range", cand.Cond.Threshold)
		}
		if cand.LeftN+cand.RightN != 4 {
			t.Fatal("missing row not routed")
		}
	}
}
