package split

import (
	"sync"

	"treeserver/internal/impurity"
	"treeserver/internal/obs"
)

// Scratch holds the reusable buffers of one split-finding thread. Passing a
// Scratch in a Request makes the steady-state numeric kernels allocation-free:
// the presorted fast path and the sort+sweep fallback both run at 0 allocs/op
// once the buffers have grown to the working-set size. Categorical kernels
// reuse the count matrices and group buffers, leaving only the per-candidate
// LeftSet copies that escape into returned Conditions.
//
// A Scratch is owned by one goroutine at a time. Compers check one out of the
// package pool per task (GetScratch/PutScratch); the serial trainer keeps one
// per tree build.
type Scratch struct {
	present []int32     // missing-filtered row buffer
	pairs   []valuePair // sort+sweep fallback buffer
	vals    []float64   // presorted fast path: gathered values
	ys      []int32     // gathered class codes (classification)
	fs      []float64   // gathered targets (regression)

	left, right, total *impurity.ClassCounter

	countsBuf   []int   // backing array of the level x class count matrix
	counts      [][]int // per-level views into countsBuf
	seenLevel   []bool  // level-presence flags for the count matrix
	codes       []int32 // present level codes
	moments     []impurity.MomentAccumulator
	groups      []catGroup
	prefix      []int32
	leftSet     []int32
	rightCounts []int
}

// catGroup is one categorical level ordered by a sort key (mean Y or
// P(class 1)) for Breiman prefix scans.
type catGroup struct {
	code int32
	key  float64
}

// scratchPool has no New hook so checkouts can distinguish a reuse from a
// fresh allocation — the pool hit rate is a telemetry quantity.
var scratchPool sync.Pool

// GetScratch checks a Scratch out of the shared pool.
func GetScratch() *Scratch { return GetScratchObserved(nil) }

// GetScratchObserved is GetScratch with pool-hit telemetry: a non-nil
// counter records whether the checkout reused a pooled Scratch or allocated.
func GetScratchObserved(c *obs.SplitCounters) *Scratch {
	if v := scratchPool.Get(); v != nil {
		c.ScratchGet(true)
		return v.(*Scratch)
	}
	c.ScratchGet(false)
	return new(Scratch)
}

// PutScratch returns a Scratch to the pool. The caller must not retain it.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// presentBuf returns an empty []int32 with capacity >= n.
func (s *Scratch) presentBuf(n int) []int32 {
	if cap(s.present) < n {
		s.present = make([]int32, 0, n)
	}
	return s.present[:0]
}

// pairBuf returns a zero-length pair buffer with capacity >= n.
func (s *Scratch) pairBuf(n int) []valuePair {
	if cap(s.pairs) < n {
		s.pairs = make([]valuePair, 0, n)
	}
	return s.pairs[:0]
}

// numericBufs returns the three empty gather buffers of the numeric sweep,
// each with capacity >= n.
func (s *Scratch) numericBufs(n int) (vals []float64, ys []int32, fs []float64) {
	if cap(s.vals) < n {
		s.vals = make([]float64, 0, n)
	}
	if cap(s.ys) < n {
		s.ys = make([]int32, 0, n)
	}
	if cap(s.fs) < n {
		s.fs = make([]float64, 0, n)
	}
	return s.vals[:0], s.ys[:0], s.fs[:0]
}

// classCounters returns the left/right sweep counters reset for k classes.
func (s *Scratch) classCounters(k int) (left, right *impurity.ClassCounter) {
	if s.left == nil || len(s.left.Counts) != k {
		s.left = impurity.NewClassCounter(k)
		s.right = impurity.NewClassCounter(k)
	} else {
		s.left.Reset()
		s.right.Reset()
	}
	return s.left, s.right
}

// totalCounter returns the node-total counter reset for k classes.
func (s *Scratch) totalCounter(k int) *impurity.ClassCounter {
	if s.total == nil || len(s.total.Counts) != k {
		s.total = impurity.NewClassCounter(k)
	} else {
		s.total.Reset()
	}
	return s.total
}

// countMatrix returns a zeroed levels x classes count matrix plus the
// level-presence flags, both backed by reused storage.
func (s *Scratch) countMatrix(levels, classes int) ([][]int, []bool) {
	need := levels * classes
	if cap(s.countsBuf) < need {
		s.countsBuf = make([]int, need)
	} else {
		s.countsBuf = s.countsBuf[:need]
		for i := range s.countsBuf {
			s.countsBuf[i] = 0
		}
	}
	if cap(s.counts) < levels {
		s.counts = make([][]int, levels)
	}
	s.counts = s.counts[:levels]
	for i := 0; i < levels; i++ {
		s.counts[i] = s.countsBuf[i*classes : (i+1)*classes]
	}
	if cap(s.seenLevel) < levels {
		s.seenLevel = make([]bool, levels)
	}
	s.seenLevel = s.seenLevel[:levels]
	for i := range s.seenLevel {
		s.seenLevel[i] = false
	}
	return s.counts, s.seenLevel
}

// codesBuf returns an empty code buffer with capacity >= n.
func (s *Scratch) codesBuf(n int) []int32 {
	if cap(s.codes) < n {
		s.codes = make([]int32, 0, n)
	}
	return s.codes[:0]
}

// momentBuf returns a zeroed moment accumulator slice of length n.
func (s *Scratch) momentBuf(n int) []impurity.MomentAccumulator {
	if cap(s.moments) < n {
		s.moments = make([]impurity.MomentAccumulator, n)
		return s.moments
	}
	s.moments = s.moments[:n]
	for i := range s.moments {
		s.moments[i] = impurity.MomentAccumulator{}
	}
	return s.moments
}

// groupBuf returns an empty group buffer with capacity >= n.
func (s *Scratch) groupBuf(n int) []catGroup {
	if cap(s.groups) < n {
		s.groups = make([]catGroup, 0, n)
	}
	return s.groups[:0]
}

// prefixBuf returns an empty prefix buffer with capacity >= n.
func (s *Scratch) prefixBuf(n int) []int32 {
	if cap(s.prefix) < n {
		s.prefix = make([]int32, 0, n)
	}
	return s.prefix[:0]
}

// leftSetBuf returns an empty left-set buffer with capacity >= n.
func (s *Scratch) leftSetBuf(n int) []int32 {
	if cap(s.leftSet) < n {
		s.leftSet = make([]int32, 0, n)
	}
	return s.leftSet[:0]
}

// rightCountsBuf returns a zeroed class-count buffer of length k.
func (s *Scratch) rightCountsBuf(k int) []int {
	if cap(s.rightCounts) < k {
		s.rightCounts = make([]int, k)
		return s.rightCounts
	}
	s.rightCounts = s.rightCounts[:k]
	for i := range s.rightCounts {
		s.rightCounts[i] = 0
	}
	return s.rightCounts
}
