package split

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/sketch"
)

// histSketchFor builds the bin proposal a hist-mode worker would ship: one
// weighted sketch over the column's non-missing values in row order.
func histSketchFor(col *dataset.Column, maxBins int) *sketch.Sketch {
	size := 4 * maxBins
	if size < 64 {
		size = 64
	}
	sk := sketch.New(size)
	for r := 0; r < col.Len(); r++ {
		if !col.IsMissing(r) {
			sk.Add(col.Floats[r], 1)
		}
	}
	return sk
}

func fillHistFor(bc *BinnedColumn, y *dataset.Column, rows []int32, numClasses int) *Hist {
	classes := 0
	if y.Kind == dataset.Categorical {
		classes = numClasses
	}
	h := GetHist(bc.Bins.NumBins, classes)
	h.Fill(bc, y, rows)
	return h
}

func sameCondition(a, b Condition) bool {
	return a.Col == b.Col && a.Kind == b.Kind && a.Threshold == b.Threshold &&
		a.MissingLeft == b.MissingLeft && slices.Equal(a.LeftSet, b.LeftSet)
}

// TestHistSaturatedMatchesExact is the maxBins-saturated equivalence
// property: when every distinct value of a numeric column fits in its own
// bin, the histogram splitter proposes the exact sweep's thresholds and must
// return the same (column, threshold, gain) as FindBest. Classification
// gains are bitwise identical (integer bin counts feed the same impurity
// arithmetic); regression gains agree to rounding because per-bin moments
// are summed in a different order.
func TestHistSaturatedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	scratch := GetScratch()
	defer PutScratch(scratch)
	const maxBins = 16 // > 9 distinct values drawn by randNumericCol
	for trial := 0; trial < 300; trial++ {
		n := 30 + rng.Intn(200)
		classification := trial%2 == 0
		numClasses := 2 + rng.Intn(3)
		col := randNumericCol(rng, n, trial%3 == 0)
		y := randTarget(rng, n, classification, numClasses)

		bins := BinsFromSketch(0, histSketchFor(col, maxBins), maxBins)
		bc := BinColumn(col, bins)
		rows := randRows(rng, n)

		h := fillHistFor(bc, y, rows, numClasses)
		got := BestFromHist(bins, h, impurity.Gini, 0, scratch)
		PutHist(h)
		want := FindBest(Request{
			Col: col, ColIdx: 0, Y: y, Rows: rows,
			Measure: impurity.Gini, NumClasses: numClasses,
		})

		if got.Valid != want.Valid {
			t.Fatalf("trial %d: valid %v != %v", trial, got.Valid, want.Valid)
		}
		if !got.Valid {
			continue
		}
		if got.LeftN != want.LeftN || got.RightN != want.RightN {
			t.Fatalf("trial %d: counts (%d,%d) != (%d,%d)",
				trial, got.LeftN, got.RightN, want.LeftN, want.RightN)
		}
		if classification {
			if got.Impurity != want.Impurity {
				t.Fatalf("trial %d: impurity %v != %v", trial, got.Impurity, want.Impurity)
			}
		} else if math.Abs(got.Impurity-want.Impurity) > 1e-9*(1+math.Abs(want.Impurity)) {
			t.Fatalf("trial %d: impurity %v != %v", trial, got.Impurity, want.Impurity)
		}
		// Over the full table the proposed thresholds are the exact sweep's
		// midpoints, so the condition matches verbatim; over subsets the
		// threshold may sit at a different point of the same gap, but both
		// conditions must induce the same partition.
		allRows := len(rows) == n
		for i := 0; allRows && i < n; i++ {
			allRows = int(rows[i]) == i
		}
		if allRows && got.Cond.Threshold != want.Cond.Threshold {
			t.Fatalf("trial %d: threshold %v != %v", trial, got.Cond.Threshold, want.Cond.Threshold)
		}
		for _, r := range rows {
			if got.Cond.GoesLeft(col, int(r)) != want.Cond.GoesLeft(col, int(r)) {
				t.Fatalf("trial %d: partitions disagree at row %d (%v vs %v)",
					trial, r, got.Cond, want.Cond)
			}
		}
	}
}

// TestHistCategoricalMatchesExactBitwise: categorical histograms reconstruct
// the exact per-level statistics (counts, row-order moments) and reuse the
// exact kernels, so the candidates must be fully identical on any row
// multiset — both tasks, including LeftSet and gain bits.
func TestHistCategoricalMatchesExactBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	scratch := GetScratch()
	defer PutScratch(scratch)
	for trial := 0; trial < 300; trial++ {
		n := 30 + rng.Intn(200)
		classification := trial%2 == 0
		numClasses := 2 + rng.Intn(3)
		levels := 2 + rng.Intn(6)
		names := make([]string, levels)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(rng.Intn(levels))
		}
		col := dataset.NewCategorical("c", codes, names)
		if trial%3 == 0 {
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.15 {
					col.SetMissing(i)
				}
			}
		}
		y := randTarget(rng, n, classification, numClasses)

		bins := Bins{Col: 0, Kind: dataset.Categorical, NumBins: levels}
		bc := BinColumn(col, bins)
		rows := randRows(rng, n)

		h := fillHistFor(bc, y, rows, numClasses)
		got := BestFromHist(bins, h, impurity.Entropy, 0, scratch)
		PutHist(h)
		want := FindBest(Request{
			Col: col, ColIdx: 0, Y: y, Rows: rows,
			Measure: impurity.Entropy, NumClasses: numClasses,
		})

		if got.Valid != want.Valid {
			t.Fatalf("trial %d: valid %v != %v", trial, got.Valid, want.Valid)
		}
		if !got.Valid {
			continue
		}
		if got.Impurity != want.Impurity || got.LeftN != want.LeftN ||
			got.RightN != want.RightN || !sameCondition(got.Cond, want.Cond) {
			t.Fatalf("trial %d: candidate %+v != %+v", trial, got, want)
		}
	}
}

// TestHistSubtractionBitwise: deriving the larger sibling by subtracting the
// smaller from the cached parent must be bitwise identical to filling it
// directly — the invariant that makes opportunistic subtraction safe for
// deterministic training.
func TestHistSubtractionBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	scratch := GetScratch()
	defer PutScratch(scratch)
	for trial := 0; trial < 100; trial++ {
		n := 50 + rng.Intn(200)
		numClasses := 2 + rng.Intn(3)
		col := randNumericCol(rng, n, trial%2 == 0)
		y := randTarget(rng, n, true, numClasses)
		bins := BinsFromSketch(0, histSketchFor(col, 16), 16)
		bc := BinColumn(col, bins)

		rows := dataset.AllRows(n)
		pivot := float64(rng.Intn(9))
		var left, right []int32
		for _, r := range rows {
			if !col.IsMissing(int(r)) && col.Floats[r] <= pivot {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		parent := fillHistFor(bc, y, rows, numClasses)
		small := fillHistFor(bc, y, left, numClasses)
		direct := fillHistFor(bc, y, right, numClasses)
		derived := GetHist(bins.NumBins, numClasses)
		derived.Sub(parent, small)

		if derived.Missing != direct.Missing || !slices.Equal(derived.W, direct.W) {
			t.Fatalf("trial %d: subtracted histogram differs from direct fill", trial)
		}
		gd := BestFromHist(bins, derived, impurity.Gini, 0, scratch)
		gt := BestFromHist(bins, direct, impurity.Gini, 0, scratch)
		if gd.Valid != gt.Valid || gd.Impurity != gt.Impurity || !sameCondition(gd.Cond, gt.Cond) {
			t.Fatalf("trial %d: candidates differ after subtraction", trial)
		}
		PutHist(parent)
		PutHist(small)
		PutHist(direct)
		PutHist(derived)
	}
}

// TestHistMergeEqualsSingle: merging shard histograms equals one histogram
// over the concatenated rows (classification counts are exact integers).
func TestHistMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	n := 400
	col := randNumericCol(rng, n, true)
	y := randTarget(rng, n, true, 3)
	bins := BinsFromSketch(0, histSketchFor(col, 16), 16)
	bc := BinColumn(col, bins)

	all := fillHistFor(bc, y, dataset.AllRows(n), 3)
	merged := GetHist(bins.NumBins, 3)
	for shard := 0; shard < 4; shard++ {
		var rows []int32
		for r := shard; r < n; r += 4 {
			rows = append(rows, int32(r))
		}
		part := fillHistFor(bc, y, rows, 3)
		merged.Merge(part)
		PutHist(part)
	}
	if merged.Missing != all.Missing || !slices.Equal(merged.W, all.W) {
		t.Fatal("merged shard histograms differ from single fill")
	}
	PutHist(all)
	PutHist(merged)
}

// TestHistKernelZeroAlloc: the pooled fill+sweep hot path must not allocate
// once scratch, pool, and binned column are warm — numeric conditions carry
// no slices, so the whole per-(node, column) kernel is allocation-free.
func TestHistKernelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	n := 2000
	colC := randNumericCol(rng, n, true)
	yC := randTarget(rng, n, true, 3)
	colR := randNumericCol(rng, n, false)
	yR := randTarget(rng, n, false, 0)
	binsC := BinsFromSketch(0, histSketchFor(colC, 32), 32)
	binsR := BinsFromSketch(1, histSketchFor(colR, 32), 32)
	bcC := BinColumn(colC, binsC)
	bcR := BinColumn(colR, binsR)
	rows := dataset.AllRows(n)
	scratch := GetScratch()
	defer PutScratch(scratch)

	// Warm the pool and scratch buffers.
	h := GetHist(binsC.NumBins, 3)
	h.Fill(bcC, yC, rows)
	BestFromHist(binsC, h, impurity.Gini, 0, scratch)
	h.Reset(binsR.NumBins, 0)
	h.Fill(bcR, yR, rows)
	BestFromHist(binsR, h, impurity.Variance, 0, scratch)
	PutHist(h)

	allocs := testing.AllocsPerRun(50, func() {
		hc := GetHist(binsC.NumBins, 3)
		hc.Fill(bcC, yC, rows)
		BestFromHist(binsC, hc, impurity.Gini, 0, scratch)
		PutHist(hc)
		hr := GetHist(binsR.NumBins, 0)
		hr.Fill(bcR, yR, rows)
		BestFromHist(binsR, hr, impurity.Variance, 0, scratch)
		PutHist(hr)
	})
	if allocs != 0 {
		t.Fatalf("hist kernel allocated %v times per run, want 0", allocs)
	}
}

// TestBinsFromSketchSaturated: with at most maxBins distinct values, every
// value gets its own bin and each threshold is the exact sweep's midpoint of
// adjacent distinct values; merging an identical replica sketch (doubling
// every weight) must propose identical bins.
func TestBinsFromSketchSaturated(t *testing.T) {
	values := []float64{-3, -1.5, 0, 0.25, 2, 7}
	sk := sketch.New(64)
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 500; i++ {
		sk.Add(values[rng.Intn(len(values))], 1)
	}
	bins := BinsFromSketch(4, sk, 16)
	if bins.NumBins != len(values) {
		t.Fatalf("NumBins = %d, want %d", bins.NumBins, len(values))
	}
	for i := 0; i+1 < len(values); i++ {
		want := midpoint(values[i], values[i+1])
		if bins.Thresholds[i] != want {
			t.Fatalf("threshold[%d] = %v, want %v", i, bins.Thresholds[i], want)
		}
	}
	replica := sketch.FromEntries(64, sk.Entries())
	merged := sketch.FromEntries(64, sk.Entries())
	merged.Merge(replica)
	if got := BinsFromSketch(4, merged, 16); !slices.Equal(got.Thresholds, bins.Thresholds) {
		t.Fatalf("replica-merged bins differ: %v vs %v", got.Thresholds, bins.Thresholds)
	}
}
