package split

import (
	"math/rand"

	"treeserver/internal/dataset"
)

// FindRandom draws the completely-random split used by extra-trees
// (Appendix F): for a numeric column a uniform threshold in [min, max] of the
// values present at the node; for a categorical column a random non-trivial
// subset of the present levels. It returns an invalid candidate when the
// column is constant over the rows. The candidate's Impurity is the weighted
// child impurity so callers can still compare random draws if they wish.
func FindRandom(req Request, rng *rand.Rand) Candidate {
	present := make([]int32, 0, len(req.Rows))
	missN := 0
	for _, r := range req.Rows {
		if req.Col.IsMissing(int(r)) {
			missN++
		} else {
			present = append(present, r)
		}
	}
	if len(present) < 2 {
		return Candidate{}
	}
	var cond Condition
	if req.Col.Kind == dataset.Numeric {
		lo, hi := req.Col.Floats[present[0]], req.Col.Floats[present[0]]
		for _, r := range present[1:] {
			v := req.Col.Floats[r]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi {
			return Candidate{}
		}
		// Draw v in [lo, hi); rows with value <= v go left, so v = lo keeps
		// at least the minimum on the left and v < hi keeps the max right.
		cond = NewNumericCondition(req.ColIdx, lo+rng.Float64()*(hi-lo), false)
	} else {
		presentCodes := presentLevelCodes(req.Col, present)
		if len(presentCodes) < 2 {
			return Candidate{}
		}
		// Random non-empty proper subset: draw until both sides are non-empty
		// (expected < 2 draws for any level count >= 2).
		var leftSet []int32
		for len(leftSet) == 0 || len(leftSet) == len(presentCodes) {
			leftSet = leftSet[:0]
			for _, code := range presentCodes {
				if rng.Intn(2) == 0 {
					leftSet = append(leftSet, code)
				}
			}
		}
		cond = NewCategoricalCondition(req.ColIdx, leftSet, false)
	}
	cand := scoreCondition(req, cond, present)
	if !cand.Valid {
		return cand
	}
	cand.Cond.MissingLeft = cand.LeftN >= cand.RightN
	if cand.Cond.MissingLeft {
		cand.LeftN += missN
	} else {
		cand.RightN += missN
	}
	return cand
}

func presentLevelCodes(col *dataset.Column, rows []int32) []int32 {
	seen := make([]bool, col.NumLevels())
	var codes []int32
	for _, r := range rows {
		c := col.Cats[r]
		if !seen[c] {
			seen[c] = true
			codes = append(codes, c)
		}
	}
	sortCodes(codes)
	return codes
}
