package split

import (
	"slices"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

// The histogram splitter reproduces how PLANET (and Spark MLlib on top of
// it) finds split conditions approximately: numeric columns are discretised
// once into maxBins equi-depth bins, per-(node, column, bin) statistics are
// aggregated across row-partitioned workers, and only bin boundaries are
// considered as candidate thresholds. This is the approximation TreeServer's
// exact column-partitioned search avoids.

// Bins is the immutable per-column discretisation computed before training.
type Bins struct {
	Col  int
	Kind dataset.Kind
	// Thresholds are ascending numeric upper bounds: bin b holds values
	// <= Thresholds[b]; values above the last threshold fall in the final
	// bin. len(Thresholds) == NumBins-1. Empty for categorical columns,
	// where the bin of a row is its level code.
	Thresholds []float64
	NumBins    int
}

// ComputeBins derives equi-depth bins for a column from the given rows
// (typically all rows, or a sample as MLlib does). Categorical columns get
// one bin per level.
func ComputeBins(col *dataset.Column, colIdx, maxBins int, rows []int32) Bins {
	if col.Kind == dataset.Categorical {
		return Bins{Col: colIdx, Kind: dataset.Categorical, NumBins: col.NumLevels()}
	}
	values := make([]float64, 0, len(rows))
	for _, r := range rows {
		if !col.IsMissing(int(r)) {
			values = append(values, col.Floats[r])
		}
	}
	slices.Sort(values)
	b := Bins{Col: colIdx, Kind: dataset.Numeric}
	if len(values) == 0 {
		b.NumBins = 1
		return b
	}
	// Equi-depth boundaries at the maxBins quantiles, deduplicated so a
	// heavily repeated value yields fewer, wider bins.
	var thresholds []float64
	for i := 1; i < maxBins; i++ {
		q := values[i*len(values)/maxBins]
		if len(thresholds) == 0 || q > thresholds[len(thresholds)-1] {
			if q < values[len(values)-1] { // boundary must leave the max on the right
				thresholds = append(thresholds, q)
			}
		}
	}
	b.Thresholds = thresholds
	b.NumBins = len(thresholds) + 1
	return b
}

// BinOf maps row r of col into its bin index; missing values map to bin 0.
func (b *Bins) BinOf(col *dataset.Column, r int) int {
	if col.IsMissing(r) {
		return 0
	}
	if b.Kind == dataset.Categorical {
		return int(col.Cats[r])
	}
	v := col.Floats[r]
	i, _ := slices.BinarySearch(b.Thresholds, v) // first threshold >= v
	return i
}

// Histogram holds per-bin target statistics for one (node, column) pair.
// For classification Counts[bin][class] is populated; for regression the
// Moments per bin. Histograms from different workers Merge by addition —
// the aggregation MapReduce performs between mappers and the driver.
type Histogram struct {
	Counts  [][]int
	Moments []impurity.MomentAccumulator
}

// NewHistogram allocates a histogram with numBins bins. numClasses == 0
// selects regression moments.
func NewHistogram(numBins, numClasses int) *Histogram {
	h := &Histogram{}
	if numClasses > 0 {
		h.Counts = make([][]int, numBins)
		for i := range h.Counts {
			h.Counts[i] = make([]int, numClasses)
		}
	} else {
		h.Moments = make([]impurity.MomentAccumulator, numBins)
	}
	return h
}

// AddClass records a classification observation in bin.
func (h *Histogram) AddClass(bin int, class int32) { h.Counts[bin][class]++ }

// AddValue records a regression observation in bin.
func (h *Histogram) AddValue(bin int, y float64) { h.Moments[bin].Add(y) }

// Merge adds other's statistics into h. The shapes must match.
func (h *Histogram) Merge(other *Histogram) {
	for b := range h.Counts {
		for c := range h.Counts[b] {
			h.Counts[b][c] += other.Counts[b][c]
		}
	}
	for b := range h.Moments {
		h.Moments[b].N += other.Moments[b].N
		h.Moments[b].Sum += other.Moments[b].Sum
		h.Moments[b].SumSq += other.Moments[b].SumSq
	}
}

// Total returns the number of observations aggregated.
func (h *Histogram) Total() int {
	n := 0
	for _, bc := range h.Counts {
		for _, c := range bc {
			n += c
		}
	}
	for _, m := range h.Moments {
		n += m.N
	}
	return n
}

// BestFromHistogram scans the merged histogram for the best approximate
// split. Numeric columns sweep bin boundaries in order. Categorical columns
// use Breiman's mean ordering for regression and singleton left sets for
// classification, matching MLlib's behaviour.
func BestFromHistogram(bins Bins, h *Histogram, m impurity.Measure) Candidate {
	if bins.Kind == dataset.Numeric {
		return bestNumericHistogram(bins, h, m)
	}
	if h.Moments != nil {
		return bestCategoricalHistogramRegression(bins, h)
	}
	return bestCategoricalHistogramClassification(bins, h, m)
}

func bestNumericHistogram(bins Bins, h *Histogram, m impurity.Measure) Candidate {
	best := Candidate{}
	if h.Counts != nil {
		numClasses := 0
		if len(h.Counts) > 0 {
			numClasses = len(h.Counts[0])
		}
		left := impurity.NewClassCounter(numClasses)
		right := impurity.NewClassCounter(numClasses)
		for _, bc := range h.Counts {
			for class, n := range bc {
				right.AddN(int32(class), n)
			}
		}
		for b := 0; b < bins.NumBins-1; b++ {
			for class, n := range h.Counts[b] {
				left.AddN(int32(class), n)
				right.AddN(int32(class), -n)
			}
			if left.N == 0 || right.N == 0 {
				continue
			}
			imp := impurity.WeightedSplit(left.N, left.Impurity(m), right.N, right.Impurity(m))
			cand := Candidate{
				Cond:     NewNumericCondition(bins.Col, bins.Thresholds[b], false),
				Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
			}
			if cand.Better(best) {
				best = cand
			}
		}
		return best
	}
	var left, right impurity.MomentAccumulator
	for _, mo := range h.Moments {
		right.N += mo.N
		right.Sum += mo.Sum
		right.SumSq += mo.SumSq
	}
	for b := 0; b < bins.NumBins-1; b++ {
		mo := h.Moments[b]
		left.N += mo.N
		left.Sum += mo.Sum
		left.SumSq += mo.SumSq
		right.N -= mo.N
		right.Sum -= mo.Sum
		right.SumSq -= mo.SumSq
		if left.N == 0 || right.N == 0 {
			continue
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		cand := Candidate{
			Cond:     NewNumericCondition(bins.Col, bins.Thresholds[b], false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

func bestCategoricalHistogramRegression(bins Bins, h *Histogram) Candidate {
	type group struct {
		code int32
		mean float64
	}
	var groups []group
	for code, mo := range h.Moments {
		if mo.N > 0 {
			groups = append(groups, group{int32(code), mo.Mean()})
		}
	}
	if len(groups) < 2 {
		return Candidate{}
	}
	slices.SortFunc(groups, func(a, b group) int {
		if a.mean != b.mean {
			if a.mean < b.mean {
				return -1
			}
			return 1
		}
		return int(a.code) - int(b.code)
	})
	var left, right impurity.MomentAccumulator
	for _, g := range groups {
		mo := h.Moments[g.code]
		right.N += mo.N
		right.Sum += mo.Sum
		right.SumSq += mo.SumSq
	}
	best := Candidate{}
	prefix := make([]int32, 0, len(groups))
	for i := 0; i < len(groups)-1; i++ {
		mo := h.Moments[groups[i].code]
		left.N += mo.N
		left.Sum += mo.Sum
		left.SumSq += mo.SumSq
		right.N -= mo.N
		right.Sum -= mo.Sum
		right.SumSq -= mo.SumSq
		prefix = append(prefix, groups[i].code)
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		cand := Candidate{
			Cond:     NewCategoricalCondition(bins.Col, prefix, false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

func bestCategoricalHistogramClassification(bins Bins, h *Histogram, m impurity.Measure) Candidate {
	numClasses := 0
	if len(h.Counts) > 0 {
		numClasses = len(h.Counts[0])
	}
	total := impurity.NewClassCounter(numClasses)
	for _, bc := range h.Counts {
		for class, n := range bc {
			total.AddN(int32(class), n)
		}
	}
	best := Candidate{}
	for code, bc := range h.Counts {
		left := impurity.NewClassCounter(numClasses)
		for class, n := range bc {
			left.AddN(int32(class), n)
		}
		if left.N == 0 || left.N == total.N {
			continue
		}
		rightCounts := make([]int, numClasses)
		for class := range rightCounts {
			rightCounts[class] = total.Counts[class] - left.Counts[class]
		}
		var rightImp float64
		if m == impurity.Entropy {
			rightImp = impurity.EntropyFromCounts(rightCounts)
		} else {
			rightImp = impurity.GiniFromCounts(rightCounts)
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(m), total.N-left.N, rightImp)
		cand := Candidate{
			Cond:     NewCategoricalCondition(bins.Col, []int32{int32(code)}, false),
			Impurity: imp, LeftN: left.N, RightN: total.N - left.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}
