package split

import (
	"slices"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/obs"
)

// DefaultMaxExhaustiveLevels bounds full subset enumeration for categorical
// attributes in classification. Above this, the finder restricts |Sl| = 1 as
// the paper describes for large |Si|.
const DefaultMaxExhaustiveLevels = 10

// DensityThreshold is the default minimum |D_x| / tableRows density at which
// FindBest walks the column's presorted SortIndex instead of sorting the
// node's rows. The presorted path costs O(tableRows) regardless of node
// size, the fallback O(|D_x| log |D_x|); below this density the filtered
// walk touches too many non-member rows to pay off. Request.MinDensity
// overrides it per call.
var DensityThreshold = 0.1

// Dense reports whether a node of nodeRows rows over a table of tableRows
// rows clears the default density threshold — callers use it to decide
// whether building a RowSet for the node is worth the bookkeeping.
func Dense(nodeRows, tableRows int) bool {
	return tableRows > 0 && float64(nodeRows) >= DensityThreshold*float64(tableRows)
}

// Request carries everything needed to find one column's best split at one
// node. Rows index into Col and Y, which must be in the same coordinate
// system (both full-table columns, or both gathered shards).
type Request struct {
	Col        *dataset.Column
	ColIdx     int // value recorded in the resulting Condition
	Y          *dataset.Column
	Rows       []int32
	Measure    impurity.Measure
	NumClasses int // classes in Y for classification; ignored for regression
	// MaxExhaustiveLevels overrides DefaultMaxExhaustiveLevels when > 0.
	MaxExhaustiveLevels int
	// RowSet, when non-nil, must hold exactly the multiset of Rows (same
	// coordinate system, same multiplicities). It lets numeric columns use
	// the presorted fast path: walk Col.SortIndex() filtered by membership —
	// O(tableRows), no sort, no allocation — instead of re-sorting Rows.
	// The fast path engages only when the node is dense enough (see
	// DensityThreshold / MinDensity); sparse nodes keep the sort+sweep
	// fallback, which is cheaper when |Rows| << tableRows.
	RowSet *dataset.RowSet
	// MinDensity overrides the package-level DensityThreshold when > 0.
	MinDensity float64
	// Scratch provides reusable buffers so steady-state numeric kernels run
	// allocation-free. nil is allowed: a private scratch is used and its
	// buffers are garbage afterwards (the pre-optimisation behaviour).
	Scratch *Scratch
	// Counters, when non-nil, receives one dispatch count per FindBest call
	// (fast path vs sort+sweep fallback vs categorical). nil disables
	// telemetry at the cost of a single pointer check.
	Counters *obs.SplitCounters
}

func (r *Request) maxExhaustive() int {
	if r.MaxExhaustiveLevels > 0 {
		return r.MaxExhaustiveLevels
	}
	return DefaultMaxExhaustiveLevels
}

// usePresorted reports whether the presorted numeric fast path engages: a
// consistent RowSet is present and the node clears the density threshold.
func (r *Request) usePresorted() bool {
	if r.Col.Kind != dataset.Numeric || r.RowSet == nil {
		return false
	}
	n := r.Col.Len()
	if n == 0 || r.RowSet.Cap() != n || len(r.Rows) < 2 {
		return false
	}
	th := r.MinDensity
	if th <= 0 {
		th = DensityThreshold
	}
	return float64(len(r.Rows)) >= th*float64(n)
}

// FindBest computes the exact best split condition of one column over the
// rows D_x, dispatching on the (attribute kind, target kind) pair per
// Appendix B. Rows with a missing attribute value are excluded from impurity
// evaluation and then routed with the larger child; the returned counts
// include them so the master can classify child tasks against τ_D and τ_dfs.
//
// Numeric columns have two equivalent paths: a presorted membership walk for
// dense nodes (see Request.RowSet) and the classic sort+sweep for sparse row
// subsets. Both feed the same boundary sweep, so they agree bit-for-bit.
func FindBest(req Request) Candidate {
	s := req.Scratch
	if s == nil {
		s = new(Scratch)
	}
	if req.usePresorted() {
		req.Counters.DispatchFast()
		return bestNumericPresorted(req, s)
	}
	present := req.Rows
	missN := 0
	if req.Col.MissingCount() > 0 {
		buf := s.presentBuf(len(req.Rows))
		for _, r := range req.Rows {
			if req.Col.IsMissing(int(r)) {
				missN++
			} else {
				buf = append(buf, r)
			}
		}
		s.present = buf
		present = buf
	}
	if len(present) < 2 {
		return Candidate{}
	}
	var cand Candidate
	switch {
	case req.Col.Kind == dataset.Numeric:
		req.Counters.DispatchFallback()
		cand = bestNumeric(req, present, s)
	case req.Y.Kind == dataset.Numeric:
		req.Counters.DispatchCategorical()
		cand = bestCategoricalRegression(req, present, s)
	default:
		req.Counters.DispatchCategorical()
		cand = bestCategoricalClassification(req, present, s)
	}
	return routeMissing(cand, missN)
}

// routeMissing applies the shared epilogue: missing rows join the larger
// child and the counts are adjusted to cover all of D_x.
func routeMissing(cand Candidate, missN int) Candidate {
	if !cand.Valid {
		return cand
	}
	cand.Cond.MissingLeft = cand.LeftN >= cand.RightN
	if cand.Cond.MissingLeft {
		cand.LeftN += missN
	} else {
		cand.RightN += missN
	}
	return cand
}

type valuePair struct {
	v float64
	y int32 // class code (classification)
	f float64
	r int32 // original row, kept for deterministic stable sort
}

// cmpValuePair orders pairs by (value, original row), the same total order
// the presorted SortIndex walk produces.
func cmpValuePair(a, b valuePair) int {
	if a.v != b.v {
		if a.v < b.v {
			return -1
		}
		return 1
	}
	return int(a.r) - int(b.r)
}

// bestNumericPresorted is the dense-node fast path of Case 1: walk the
// column's global presorted permutation once, keeping only member rows, and
// sweep the gathered (value, target) run. O(tableRows) per node with zero
// steady-state allocations; the O(n log n) sort was paid once per column at
// first use.
func bestNumericPresorted(req Request, s *Scratch) Candidate {
	idx := req.Col.SortIndex()
	rs := req.RowSet
	classification := req.Y.Kind == dataset.Categorical
	vals, ys, fs := s.numericBufs(len(req.Rows))
	missN := 0
	for _, r := range idx {
		c := rs.Count(r)
		if c == 0 {
			continue
		}
		if req.Col.IsMissing(int(r)) {
			missN += int(c)
			continue
		}
		v := req.Col.Floats[r]
		if classification {
			y := req.Y.Cats[r]
			for ; c > 0; c-- {
				vals = append(vals, v)
				ys = append(ys, y)
			}
		} else {
			f := req.Y.Floats[r]
			for ; c > 0; c-- {
				vals = append(vals, v)
				fs = append(fs, f)
			}
		}
	}
	s.vals, s.ys, s.fs = vals, ys, fs
	if len(vals) < 2 {
		return Candidate{}
	}
	return routeMissing(sweepNumeric(req, vals, ys, fs, s), missN)
}

// bestNumeric handles Case 1 for sparse row subsets: sort the node's rows by
// attribute value, then sweep. Kept as the fallback because sorting |D_x|
// elements beats walking the whole table when the node holds a small
// fraction of the rows.
func bestNumeric(req Request, rows []int32, s *Scratch) Candidate {
	pairs := s.pairBuf(len(rows))
	classification := req.Y.Kind == dataset.Categorical
	for _, r := range rows {
		p := valuePair{v: req.Col.Floats[r], r: r}
		if classification {
			p.y = req.Y.Cats[r]
		} else {
			p.f = req.Y.Floats[r]
		}
		pairs = append(pairs, p)
	}
	s.pairs = pairs
	slices.SortFunc(pairs, cmpValuePair)
	// Feed the shared sweep so both numeric paths run identical arithmetic.
	vals, ys, fs := s.numericBufs(len(pairs))
	for _, p := range pairs {
		vals = append(vals, p.v)
		if classification {
			ys = append(ys, p.y)
		} else {
			fs = append(fs, p.f)
		}
	}
	s.vals, s.ys, s.fs = vals, ys, fs
	return sweepNumeric(req, vals, ys, fs, s)
}

// sweepNumeric evaluates every boundary between distinct values of the
// already-sorted run with incremental accumulators — O(1) per row. Both
// numeric paths funnel here, which is what makes them bit-for-bit equal.
func sweepNumeric(req Request, vals []float64, ys []int32, fs []float64, s *Scratch) Candidate {
	best := Candidate{}
	n := len(vals)
	if req.Y.Kind == dataset.Categorical {
		left, right := s.classCounters(req.NumClasses)
		for _, y := range ys {
			right.Add(y)
		}
		for i := 0; i < n-1; i++ {
			left.Add(ys[i])
			right.Remove(ys[i])
			if vals[i] == vals[i+1] {
				continue
			}
			imp := impurity.WeightedSplit(left.N, left.Impurity(req.Measure), right.N, right.Impurity(req.Measure))
			cand := Candidate{
				Cond:     NewNumericCondition(req.ColIdx, midpoint(vals[i], vals[i+1]), false),
				Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
			}
			if cand.Better(best) {
				best = cand
			}
		}
		return best
	}

	var left, right impurity.MomentAccumulator
	for _, f := range fs {
		right.Add(f)
	}
	for i := 0; i < n-1; i++ {
		left.Add(fs[i])
		right.Remove(fs[i])
		if vals[i] == vals[i+1] {
			continue
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		cand := Candidate{
			Cond:     NewNumericCondition(req.ColIdx, midpoint(vals[i], vals[i+1]), false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// midpoint returns a threshold strictly between lo and hi that keeps lo on
// the left side, falling back to lo when the mean rounds onto hi or out of
// the open interval.
func midpoint(lo, hi float64) float64 {
	m := lo + (hi-lo)/2
	if m < lo || m >= hi {
		return lo
	}
	return m
}

// cmpCatGroup orders categorical groups by (sort key, level code), the
// deterministic order of the Breiman prefix scans.
func cmpCatGroup(a, b catGroup) int {
	if a.key != b.key {
		if a.key < b.key {
			return -1
		}
		return 1
	}
	return int(a.code) - int(b.code)
}

// bestCategoricalRegression handles Case 2 via Breiman's ordering trick:
// group rows by category, sort groups by mean Y, and the optimal subset
// split is a prefix of that order — one pass over the groups.
func bestCategoricalRegression(req Request, rows []int32, s *Scratch) Candidate {
	levels := req.Col.NumLevels()
	moments := s.momentBuf(levels)
	for _, r := range rows {
		moments[req.Col.Cats[r]].Add(req.Y.Floats[r])
	}
	return bestCategoricalRegressionFromMoments(req.ColIdx, moments, s)
}

// bestCategoricalRegressionFromMoments runs the Breiman prefix scan over
// already-aggregated per-level moments. Shared by the exact row kernel above
// and the histogram kernel, which rebuilds identical moments from bins.
func bestCategoricalRegressionFromMoments(colIdx int, moments []impurity.MomentAccumulator, s *Scratch) Candidate {
	groups := s.groupBuf(len(moments))
	for code := range moments {
		if moments[code].N > 0 {
			groups = append(groups, catGroup{int32(code), moments[code].Mean()})
		}
	}
	s.groups = groups
	if len(groups) < 2 {
		return Candidate{}
	}
	slices.SortFunc(groups, cmpCatGroup)

	var left, right impurity.MomentAccumulator
	for _, g := range groups {
		m := moments[g.code]
		right.N += m.N
		right.Sum += m.Sum
		right.SumSq += m.SumSq
	}
	// Score every prefix first; the winning Condition is materialised once at
	// the end, so the scan itself stays allocation-free.
	best := Candidate{}
	bestLen := 0
	for i := 0; i < len(groups)-1; i++ {
		m := moments[groups[i].code]
		left.N += m.N
		left.Sum += m.Sum
		left.SumSq += m.SumSq
		right.N -= m.N
		right.Sum -= m.Sum
		right.SumSq -= m.SumSq
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		if !best.Valid || imp < best.Impurity {
			best = Candidate{Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true}
			bestLen = i + 1
		}
	}
	if best.Valid {
		prefix := s.prefixBuf(bestLen)
		for i := 0; i < bestLen; i++ {
			prefix = append(prefix, groups[i].code)
		}
		s.prefix = prefix
		best.Cond = NewCategoricalCondition(colIdx, prefix, false)
	}
	return best
}

// bestCategoricalClassification handles Case 3. For small |Si| it enumerates
// every subset exactly (fixing the first present level's side to skip mirror
// duplicates). For large |Si| with a binary target, Breiman's theorem makes
// ordering levels by P(class 1) exact with a one-pass prefix scan, just like
// the regression case; only the multiclass large-|Si| case falls back to the
// paper's |Sl| = 1 restriction.
func bestCategoricalClassification(req Request, rows []int32, s *Scratch) Candidate {
	levels := req.Col.NumLevels()
	counts, seen := s.countMatrix(levels, req.NumClasses) // counts[code][class]
	presentCodes := s.codesBuf(levels)
	for _, r := range rows {
		code := req.Col.Cats[r]
		if !seen[code] {
			seen[code] = true
			presentCodes = append(presentCodes, code)
		}
		counts[code][req.Y.Cats[r]]++
	}
	s.codes = presentCodes
	if len(presentCodes) < 2 {
		return Candidate{}
	}
	slices.Sort(presentCodes)
	return bestCategoricalClassificationFromCounts(
		req.ColIdx, counts, presentCodes, req.NumClasses, req.Measure, req.maxExhaustive(), s)
}

// bestCategoricalClassificationFromCounts runs the subset search over an
// already-aggregated level x class count matrix and its sorted present
// codes. Shared by the exact row kernel above and the histogram kernel,
// which rebuilds an identical matrix from bins — identical counts make the
// two paths agree bit-for-bit.
func bestCategoricalClassificationFromCounts(colIdx int, counts [][]int, presentCodes []int32, numClasses int, measure impurity.Measure, maxExhaustive int, s *Scratch) Candidate {
	total := s.totalCounter(numClasses)
	for _, code := range presentCodes {
		for class, n := range counts[code] {
			total.AddN(int32(class), n)
		}
	}

	// evaluate scores one bipartition without building a Condition; the
	// winner's Condition is materialised once per call so the enumeration
	// itself stays allocation-free.
	left, _ := s.classCounters(numClasses)
	evaluate := func(leftSet []int32) (imp float64, leftN, rightN int, ok bool) {
		left.Reset()
		for _, code := range leftSet {
			for class, n := range counts[code] {
				left.AddN(int32(class), n)
			}
		}
		rightCounts := s.rightCountsBuf(numClasses)
		for class := range rightCounts {
			rightCounts[class] = total.Counts[class] - left.Counts[class]
		}
		rightN = total.N - left.N
		if left.N == 0 || rightN == 0 {
			return 0, 0, 0, false
		}
		var rightImp float64
		if measure == impurity.Entropy {
			rightImp = impurity.EntropyFromCounts(rightCounts)
		} else {
			rightImp = impurity.GiniFromCounts(rightCounts)
		}
		imp = impurity.WeightedSplit(left.N, left.Impurity(measure), rightN, rightImp)
		return imp, left.N, rightN, true
	}

	best := Candidate{}
	if len(presentCodes) <= maxExhaustive {
		// Enumerate subsets of presentCodes[1:]; presentCodes[0] is pinned to
		// the right side, which covers every distinct bipartition once.
		rest := presentCodes[1:]
		bestMask := 0
		for mask := 1; mask < 1<<uint(len(rest)); mask++ {
			leftSet := s.leftSetBuf(len(rest))
			for b, code := range rest {
				if mask&(1<<uint(b)) != 0 {
					leftSet = append(leftSet, code)
				}
			}
			s.leftSet = leftSet
			if imp, ln, rn, ok := evaluate(leftSet); ok && (!best.Valid || imp < best.Impurity) {
				best = Candidate{Impurity: imp, LeftN: ln, RightN: rn, Valid: true}
				bestMask = mask
			}
		}
		if best.Valid {
			leftSet := s.leftSetBuf(len(rest))
			for b, code := range rest {
				if bestMask&(1<<uint(b)) != 0 {
					leftSet = append(leftSet, code)
				}
			}
			s.leftSet = leftSet
			best.Cond = NewCategoricalCondition(colIdx, leftSet, false)
		}
		return best
	}
	if numClasses == 2 {
		// Breiman ordering: sort present levels by P(class 1) and scan
		// prefixes — exact for any concave impurity (Gini, entropy).
		groups := s.groupBuf(len(presentCodes))
		for _, code := range presentCodes {
			n := counts[code][0] + counts[code][1]
			groups = append(groups, catGroup{code, float64(counts[code][1]) / float64(n)})
		}
		s.groups = groups
		slices.SortFunc(groups, cmpCatGroup)
		prefix := s.prefixBuf(len(groups))
		bestLen := 0
		for i := 0; i < len(groups)-1; i++ {
			prefix = append(prefix, groups[i].code)
			if imp, ln, rn, ok := evaluate(prefix); ok && (!best.Valid || imp < best.Impurity) {
				best = Candidate{Impurity: imp, LeftN: ln, RightN: rn, Valid: true}
				bestLen = i + 1
			}
		}
		s.prefix = prefix
		if best.Valid {
			best.Cond = NewCategoricalCondition(colIdx, prefix[:bestLen], false)
		}
		return best
	}
	var bestCode int32
	for _, code := range presentCodes {
		leftSet := s.leftSetBuf(1)
		leftSet = append(leftSet, code)
		s.leftSet = leftSet
		if imp, ln, rn, ok := evaluate(leftSet); ok && (!best.Valid || imp < best.Impurity) {
			best = Candidate{Impurity: imp, LeftN: ln, RightN: rn, Valid: true}
			bestCode = code
		}
	}
	if best.Valid {
		leftSet := s.leftSetBuf(1)
		leftSet = append(leftSet, bestCode)
		s.leftSet = leftSet
		best.Cond = NewCategoricalCondition(colIdx, leftSet, false)
	}
	return best
}
