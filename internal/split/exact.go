package split

import (
	"sort"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

// DefaultMaxExhaustiveLevels bounds full subset enumeration for categorical
// attributes in classification. Above this, the finder restricts |Sl| = 1 as
// the paper describes for large |Si|.
const DefaultMaxExhaustiveLevels = 10

// Request carries everything needed to find one column's best split at one
// node. Rows index into Col and Y, which must be in the same coordinate
// system (both full-table columns, or both gathered shards).
type Request struct {
	Col        *dataset.Column
	ColIdx     int // value recorded in the resulting Condition
	Y          *dataset.Column
	Rows       []int32
	Measure    impurity.Measure
	NumClasses int // classes in Y for classification; ignored for regression
	// MaxExhaustiveLevels overrides DefaultMaxExhaustiveLevels when > 0.
	MaxExhaustiveLevels int
}

func (r *Request) maxExhaustive() int {
	if r.MaxExhaustiveLevels > 0 {
		return r.MaxExhaustiveLevels
	}
	return DefaultMaxExhaustiveLevels
}

// FindBest computes the exact best split condition of one column over the
// rows D_x, dispatching on the (attribute kind, target kind) pair per
// Appendix B. Rows with a missing attribute value are excluded from impurity
// evaluation and then routed with the larger child; the returned counts
// include them so the master can classify child tasks against τ_D and τ_dfs.
func FindBest(req Request) Candidate {
	var cand Candidate
	present := req.Rows
	missN := 0
	if req.Col.MissingCount() > 0 {
		present = make([]int32, 0, len(req.Rows))
		for _, r := range req.Rows {
			if req.Col.IsMissing(int(r)) {
				missN++
			} else {
				present = append(present, r)
			}
		}
	}
	if len(present) < 2 {
		return Candidate{}
	}
	switch {
	case req.Col.Kind == dataset.Numeric:
		cand = bestNumeric(req, present)
	case req.Y.Kind == dataset.Numeric:
		cand = bestCategoricalRegression(req, present)
	default:
		cand = bestCategoricalClassification(req, present)
	}
	if !cand.Valid {
		return cand
	}
	cand.Cond.MissingLeft = cand.LeftN >= cand.RightN
	if cand.Cond.MissingLeft {
		cand.LeftN += missN
	} else {
		cand.RightN += missN
	}
	return cand
}

type valuePair struct {
	v float64
	y int32 // class code (classification)
	f float64
	r int32 // original row, kept for deterministic stable sort
}

// bestNumeric handles Case 1: ordinal attribute, either target kind.
// Sort rows by attribute value, then a single sweep with incremental
// accumulators evaluates every boundary between distinct values in O(1).
func bestNumeric(req Request, rows []int32) Candidate {
	pairs := make([]valuePair, len(rows))
	classification := req.Y.Kind == dataset.Categorical
	for i, r := range rows {
		pairs[i] = valuePair{v: req.Col.Floats[r], r: r}
		if classification {
			pairs[i].y = req.Y.Cats[r]
		} else {
			pairs[i].f = req.Y.Floats[r]
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v < pairs[j].v
		}
		return pairs[i].r < pairs[j].r
	})

	best := Candidate{Impurity: 0, Valid: false}
	n := len(pairs)
	if classification {
		left := impurity.NewClassCounter(req.NumClasses)
		right := impurity.NewClassCounter(req.NumClasses)
		for _, p := range pairs {
			right.Add(p.y)
		}
		for i := 0; i < n-1; i++ {
			left.Add(pairs[i].y)
			right.Remove(pairs[i].y)
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			imp := impurity.WeightedSplit(left.N, left.Impurity(req.Measure), right.N, right.Impurity(req.Measure))
			cand := Candidate{
				Cond:     NewNumericCondition(req.ColIdx, midpoint(pairs[i].v, pairs[i+1].v), false),
				Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
			}
			if cand.Better(best) {
				best = cand
			}
		}
		return best
	}

	var left, right impurity.MomentAccumulator
	for _, p := range pairs {
		right.Add(p.f)
	}
	for i := 0; i < n-1; i++ {
		left.Add(pairs[i].f)
		right.Remove(pairs[i].f)
		if pairs[i].v == pairs[i+1].v {
			continue
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		cand := Candidate{
			Cond:     NewNumericCondition(req.ColIdx, midpoint(pairs[i].v, pairs[i+1].v), false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// midpoint returns a threshold strictly between lo and hi that keeps lo on
// the left side, falling back to lo when the mean rounds onto hi or out of
// the open interval.
func midpoint(lo, hi float64) float64 {
	m := lo + (hi-lo)/2
	if m < lo || m >= hi {
		return lo
	}
	return m
}

// bestCategoricalRegression handles Case 2 via Breiman's ordering trick:
// group rows by category, sort groups by mean Y, and the optimal subset
// split is a prefix of that order — one pass over the groups.
func bestCategoricalRegression(req Request, rows []int32) Candidate {
	levels := req.Col.NumLevels()
	moments := make([]impurity.MomentAccumulator, levels)
	for _, r := range rows {
		moments[req.Col.Cats[r]].Add(req.Y.Floats[r])
	}
	type group struct {
		code int32
		mean float64
	}
	groups := make([]group, 0, levels)
	for code := range moments {
		if moments[code].N > 0 {
			groups = append(groups, group{int32(code), moments[code].Mean()})
		}
	}
	if len(groups) < 2 {
		return Candidate{}
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].mean != groups[j].mean {
			return groups[i].mean < groups[j].mean
		}
		return groups[i].code < groups[j].code
	})

	var left, right impurity.MomentAccumulator
	for _, g := range groups {
		m := moments[g.code]
		right.N += m.N
		right.Sum += m.Sum
		right.SumSq += m.SumSq
	}
	best := Candidate{}
	prefix := make([]int32, 0, len(groups))
	for i := 0; i < len(groups)-1; i++ {
		m := moments[groups[i].code]
		left.N += m.N
		left.Sum += m.Sum
		left.SumSq += m.SumSq
		right.N -= m.N
		right.Sum -= m.Sum
		right.SumSq -= m.SumSq
		prefix = append(prefix, groups[i].code)
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		cand := Candidate{
			Cond:     NewCategoricalCondition(req.ColIdx, prefix, false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// bestCategoricalClassification handles Case 3. For small |Si| it enumerates
// every subset exactly (fixing the first present level's side to skip mirror
// duplicates). For large |Si| with a binary target, Breiman's theorem makes
// ordering levels by P(class 1) exact with a one-pass prefix scan, just like
// the regression case; only the multiclass large-|Si| case falls back to the
// paper's |Sl| = 1 restriction.
func bestCategoricalClassification(req Request, rows []int32) Candidate {
	levels := req.Col.NumLevels()
	counts := make([][]int, levels) // counts[code][class]
	presentCodes := make([]int32, 0, levels)
	for _, r := range rows {
		code := req.Col.Cats[r]
		if counts[code] == nil {
			counts[code] = make([]int, req.NumClasses)
			presentCodes = append(presentCodes, code)
		}
		counts[code][req.Y.Cats[r]]++
	}
	if len(presentCodes) < 2 {
		return Candidate{}
	}
	sort.Slice(presentCodes, func(i, j int) bool { return presentCodes[i] < presentCodes[j] })

	total := impurity.NewClassCounter(req.NumClasses)
	for _, code := range presentCodes {
		for class, n := range counts[code] {
			total.AddN(int32(class), n)
		}
	}

	evaluate := func(leftSet []int32) Candidate {
		left := impurity.NewClassCounter(req.NumClasses)
		for _, code := range leftSet {
			for class, n := range counts[code] {
				left.AddN(int32(class), n)
			}
		}
		rightCounts := make([]int, req.NumClasses)
		for class := range rightCounts {
			rightCounts[class] = total.Counts[class] - left.Counts[class]
		}
		rightN := total.N - left.N
		if left.N == 0 || rightN == 0 {
			return Candidate{}
		}
		var rightImp float64
		if req.Measure == impurity.Entropy {
			rightImp = impurity.EntropyFromCounts(rightCounts)
		} else {
			rightImp = impurity.GiniFromCounts(rightCounts)
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(req.Measure), rightN, rightImp)
		return Candidate{
			Cond:     NewCategoricalCondition(req.ColIdx, leftSet, false),
			Impurity: imp, LeftN: left.N, RightN: rightN, Valid: true,
		}
	}

	best := Candidate{}
	if len(presentCodes) <= req.maxExhaustive() {
		// Enumerate subsets of presentCodes[1:]; presentCodes[0] is pinned to
		// the right side, which covers every distinct bipartition once.
		rest := presentCodes[1:]
		for mask := 1; mask < 1<<uint(len(rest)); mask++ {
			leftSet := make([]int32, 0, len(rest))
			for b, code := range rest {
				if mask&(1<<uint(b)) != 0 {
					leftSet = append(leftSet, code)
				}
			}
			if cand := evaluate(leftSet); cand.Better(best) {
				best = cand
			}
		}
		return best
	}
	if req.NumClasses == 2 {
		// Breiman ordering: sort present levels by P(class 1) and scan
		// prefixes — exact for any concave impurity (Gini, entropy).
		type group struct {
			code int32
			p1   float64
		}
		groups := make([]group, 0, len(presentCodes))
		for _, code := range presentCodes {
			n := counts[code][0] + counts[code][1]
			groups = append(groups, group{code, float64(counts[code][1]) / float64(n)})
		}
		sort.Slice(groups, func(i, j int) bool {
			if groups[i].p1 != groups[j].p1 {
				return groups[i].p1 < groups[j].p1
			}
			return groups[i].code < groups[j].code
		})
		prefix := make([]int32, 0, len(groups))
		for i := 0; i < len(groups)-1; i++ {
			prefix = append(prefix, groups[i].code)
			if cand := evaluate(prefix); cand.Better(best) {
				best = cand
			}
		}
		return best
	}
	for _, code := range presentCodes {
		if cand := evaluate([]int32{code}); cand.Better(best) {
			best = cand
		}
	}
	return best
}
