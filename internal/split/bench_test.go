package split

import (
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

func benchColumns(n int, rng *rand.Rand) (*dataset.Column, *dataset.Column, *dataset.Column, *dataset.Column) {
	num := make([]float64, n)
	cat := make([]int32, n)
	ycls := make([]int32, n)
	yreg := make([]float64, n)
	for i := 0; i < n; i++ {
		num[i] = rng.NormFloat64()
		cat[i] = int32(rng.Intn(8))
		if num[i]+rng.NormFloat64()*0.3 > 0 {
			ycls[i] = 1
		}
		yreg[i] = num[i]*2 + rng.NormFloat64()
	}
	levels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	return dataset.NewNumeric("x", num), dataset.NewCategorical("c", cat, levels),
		dataset.NewCategorical("y", ycls, []string{"n", "p"}), dataset.NewNumeric("yr", yreg)
}

// denseRequest builds a steady-state dense-node request: RowSet covering the
// whole table, shared Scratch, and a warm-up call so the one-time SortIndex
// build and scratch growth happen outside the timed region.
func denseRequest(col, y *dataset.Column, rows []int32, m impurity.Measure, k int) Request {
	req := Request{
		Col: col, ColIdx: 0, Y: y, Rows: rows, Measure: m, NumClasses: k,
		RowSet:  dataset.RowSetOf(rows, col.Len()),
		Scratch: new(Scratch),
	}
	FindBest(req) // warm up: builds the sort index, grows scratch buffers
	return req
}

// BenchmarkFindBestNumericClassification measures the presorted-index fast
// path on a dense node — the inner loop of every column-task in steady state.
func BenchmarkFindBestNumericClassification(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	num, _, ycls, _ := benchColumns(10000, rng)
	req := denseRequest(num, ycls, dataset.AllRows(10000), impurity.Gini, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cand := FindBest(req); !cand.Valid {
			b.Fatal("no split")
		}
	}
}

// BenchmarkFindBestNumericClassificationFallback measures the sort+sweep
// fallback (no RowSet), the path sparse nodes take.
func BenchmarkFindBestNumericClassificationFallback(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	num, _, ycls, _ := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: num, ColIdx: 0, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2, Scratch: new(Scratch)}
	FindBest(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cand := FindBest(req); !cand.Valid {
			b.Fatal("no split")
		}
	}
}

// BenchmarkFindBestNumericRegression measures the variance sweep on the
// presorted fast path.
func BenchmarkFindBestNumericRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	num, _, _, yreg := benchColumns(10000, rng)
	req := denseRequest(num, yreg, dataset.AllRows(10000), impurity.Variance, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// BenchmarkFindBestNumericRegressionFallback measures the sort+sweep
// variance fallback.
func BenchmarkFindBestNumericRegressionFallback(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	num, _, _, yreg := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: num, ColIdx: 0, Y: yreg, Rows: rows, Measure: impurity.Variance, Scratch: new(Scratch)}
	FindBest(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// BenchmarkFindBestCategoricalClassification measures subset enumeration
// over 8 levels (2^7 bipartitions).
func BenchmarkFindBestCategoricalClassification(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	_, cat, ycls, _ := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: cat, ColIdx: 0, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2, Scratch: new(Scratch)}
	FindBest(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// BenchmarkFindBestCategoricalRegression measures Breiman's ordering trick.
func BenchmarkFindBestCategoricalRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	_, cat, _, yreg := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: cat, ColIdx: 0, Y: yreg, Rows: rows, Measure: impurity.Variance, Scratch: new(Scratch)}
	FindBest(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// TestFastPathZeroAllocs is the allocation-regression gate: once the sort
// index is built and the scratch is grown, the presorted numeric kernel must
// not allocate at all.
func TestFastPathZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	num, _, ycls, yreg := benchColumns(4096, rng)
	cls := denseRequest(num, ycls, dataset.AllRows(4096), impurity.Gini, 2)
	if allocs := testing.AllocsPerRun(20, func() { FindBest(cls) }); allocs != 0 {
		t.Fatalf("numeric classification fast path: %v allocs/op, want 0", allocs)
	}
	reg := denseRequest(num, yreg, dataset.AllRows(4096), impurity.Variance, 0)
	if allocs := testing.AllocsPerRun(20, func() { FindBest(reg) }); allocs != 0 {
		t.Fatalf("numeric regression fast path: %v allocs/op, want 0", allocs)
	}
}

// TestScratchReuseZeroAllocs: with a warmed Scratch, the sort+sweep fallback
// must run allocation-free; the categorical kernels may allocate only the
// winning Condition's owned LeftSet copy (it outlives the scratch), nothing
// per evaluated subset.
func TestScratchReuseZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	num, cat, ycls, yreg := benchColumns(4096, rng)
	rows := dataset.AllRows(4096)
	cases := []struct {
		name      string
		req       Request
		maxAllocs float64
	}{
		{"numeric-fallback", Request{Col: num, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2}, 0},
		{"categorical-subset", Request{Col: cat, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2}, 1},
		{"categorical-breiman-reg", Request{Col: cat, Y: yreg, Rows: rows, Measure: impurity.Variance}, 1},
	}
	for _, tc := range cases {
		req := tc.req
		req.Scratch = new(Scratch)
		FindBest(req) // warm up: grows the scratch buffers
		if allocs := testing.AllocsPerRun(20, func() { FindBest(req) }); allocs > tc.maxAllocs {
			t.Fatalf("%s with warm scratch: %v allocs/op, want <= %v", tc.name, allocs, tc.maxAllocs)
		}
	}
}

// BenchmarkHistogramSplit measures the approximate PLANET path end to end:
// binning plus boundary sweep.
func BenchmarkHistogramSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	num, _, ycls, _ := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	bins := ComputeBins(num, 0, 32, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistogram(bins.NumBins, 2)
		for r := 0; r < 10000; r++ {
			h.AddClass(bins.BinOf(num, r), ycls.Cats[r])
		}
		BestFromHistogram(bins, h, impurity.Gini)
	}
}

// BenchmarkPartition measures the delegate worker's I_x split.
func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	num, _, ycls, _ := benchColumns(100000, rng)
	rows := dataset.AllRows(100000)
	cand := FindBest(Request{Col: num, ColIdx: 0, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r := cand.Cond.Partition(num, rows)
		if len(l)+len(r) != len(rows) {
			b.Fatal("partition lost rows")
		}
	}
}
