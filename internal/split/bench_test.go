package split

import (
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

func benchColumns(n int, rng *rand.Rand) (*dataset.Column, *dataset.Column, *dataset.Column, *dataset.Column) {
	num := make([]float64, n)
	cat := make([]int32, n)
	ycls := make([]int32, n)
	yreg := make([]float64, n)
	for i := 0; i < n; i++ {
		num[i] = rng.NormFloat64()
		cat[i] = int32(rng.Intn(8))
		if num[i]+rng.NormFloat64()*0.3 > 0 {
			ycls[i] = 1
		}
		yreg[i] = num[i]*2 + rng.NormFloat64()
	}
	levels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	return dataset.NewNumeric("x", num), dataset.NewCategorical("c", cat, levels),
		dataset.NewCategorical("y", ycls, []string{"n", "p"}), dataset.NewNumeric("yr", yreg)
}

// BenchmarkFindBestNumericClassification measures the sort+sweep exact
// splitter — the inner loop of every column-task.
func BenchmarkFindBestNumericClassification(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	num, _, ycls, _ := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: num, ColIdx: 0, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cand := FindBest(req); !cand.Valid {
			b.Fatal("no split")
		}
	}
}

// BenchmarkFindBestNumericRegression measures the variance sweep.
func BenchmarkFindBestNumericRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	num, _, _, yreg := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: num, ColIdx: 0, Y: yreg, Rows: rows, Measure: impurity.Variance}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// BenchmarkFindBestCategoricalClassification measures subset enumeration
// over 8 levels (2^7 bipartitions).
func BenchmarkFindBestCategoricalClassification(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	_, cat, ycls, _ := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: cat, ColIdx: 0, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// BenchmarkFindBestCategoricalRegression measures Breiman's ordering trick.
func BenchmarkFindBestCategoricalRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	_, cat, _, yreg := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	req := Request{Col: cat, ColIdx: 0, Y: yreg, Rows: rows, Measure: impurity.Variance}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindBest(req)
	}
}

// BenchmarkHistogramSplit measures the approximate PLANET path end to end:
// binning plus boundary sweep.
func BenchmarkHistogramSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	num, _, ycls, _ := benchColumns(10000, rng)
	rows := dataset.AllRows(10000)
	bins := ComputeBins(num, 0, 32, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistogram(bins.NumBins, 2)
		for r := 0; r < 10000; r++ {
			h.AddClass(bins.BinOf(num, r), ycls.Cats[r])
		}
		BestFromHistogram(bins, h, impurity.Gini)
	}
}

// BenchmarkPartition measures the delegate worker's I_x split.
func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	num, _, ycls, _ := benchColumns(100000, rng)
	rows := dataset.AllRows(100000)
	cand := FindBest(Request{Col: num, ColIdx: 0, Y: ycls, Rows: rows, Measure: impurity.Gini, NumClasses: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r := cand.Cond.Partition(num, rows)
		if len(l)+len(r) != len(rows) {
			b.Fatal("partition lost rows")
		}
	}
}
