package split_test

import (
	"fmt"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/split"
)

// ExampleFindBest finds the exact best split of one column — the
// computation a TreeServer column-task performs.
func ExampleFindBest() {
	income := dataset.NewNumeric("Income", []float64{3000, 4000, 5000, 6500, 7500, 8000})
	label := dataset.NewCategorical("Default", []int32{1, 1, 1, 0, 0, 0}, []string{"No", "Yes"})
	cand := split.FindBest(split.Request{
		Col: income, ColIdx: 0, Y: label,
		Rows:    dataset.AllRows(6),
		Measure: impurity.Gini, NumClasses: 2,
	})
	fmt.Printf("%v (impurity %.2f, %d/%d rows)\n", cand.Cond, cand.Impurity, cand.LeftN, cand.RightN)
	// Output: col[0] <= 5750 (impurity 0.00, 3/3 rows)
}

// ExampleCondition_Partition splits a row-index set the way a delegate
// worker derives I_xl and I_xr from I_x.
func ExampleCondition_Partition() {
	age := dataset.NewNumeric("Age", []float64{24, 28, 44, 32, 36, 48})
	cond := split.NewNumericCondition(0, 40, false)
	left, right := cond.Partition(age, dataset.AllRows(6))
	fmt.Println(left, right)
	// Output: [0 1 3 4] [2 5]
}
