package split

import (
	"math"
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

func TestComputeBinsEquiDepth(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	col := dataset.NewNumeric("x", vals)
	bins := ComputeBins(col, 0, 4, allRows(100))
	if bins.NumBins != 4 || len(bins.Thresholds) != 3 {
		t.Fatalf("bins = %d thresholds = %v", bins.NumBins, bins.Thresholds)
	}
	// Uniform data: boundaries near the quartiles.
	for i, want := range []float64{25, 50, 75} {
		if math.Abs(bins.Thresholds[i]-want) > 2 {
			t.Fatalf("threshold[%d] = %g, want ~%g", i, bins.Thresholds[i], want)
		}
	}
}

func TestComputeBinsSkewedDedup(t *testing.T) {
	// 90% of values identical: dedup must not emit repeated thresholds.
	vals := make([]float64, 100)
	for i := 90; i < 100; i++ {
		vals[i] = float64(i)
	}
	col := dataset.NewNumeric("x", vals)
	bins := ComputeBins(col, 0, 8, allRows(100))
	for i := 1; i < len(bins.Thresholds); i++ {
		if bins.Thresholds[i] <= bins.Thresholds[i-1] {
			t.Fatalf("thresholds not strictly increasing: %v", bins.Thresholds)
		}
	}
	if bins.NumBins != len(bins.Thresholds)+1 {
		t.Fatal("NumBins inconsistent")
	}
}

func TestComputeBinsCategorical(t *testing.T) {
	col := dataset.NewCategorical("c", []int32{0, 1, 2}, []string{"a", "b", "c"})
	bins := ComputeBins(col, 2, 32, allRows(3))
	if bins.Kind != dataset.Categorical || bins.NumBins != 3 {
		t.Fatalf("categorical bins wrong: %+v", bins)
	}
	if bins.BinOf(col, 2) != 2 {
		t.Fatal("categorical bin must be the level code")
	}
}

func TestBinOfBoundaries(t *testing.T) {
	col := dataset.NewNumeric("x", []float64{0, 5, 5.1, 10, 20})
	bins := Bins{Col: 0, Kind: dataset.Numeric, Thresholds: []float64{5, 10}, NumBins: 3}
	wants := []int{0, 0, 1, 1, 2} // v <= 5 -> bin 0; v <= 10 -> bin 1; else 2
	for r, want := range wants {
		if got := bins.BinOf(col, r); got != want {
			t.Fatalf("BinOf(row %d, v=%g) = %d, want %d", r, col.Floats[r], got, want)
		}
	}
}

func TestHistogramMergeEqualsSingle(t *testing.T) {
	// Splitting rows across two "workers" and merging must equal one pass.
	rng := rand.New(rand.NewSource(3))
	n := 400
	vals := make([]float64, n)
	ys := make([]int32, n)
	for i := range vals {
		vals[i] = rng.Float64() * 100
		if vals[i] > 50 {
			ys[i] = 1
		}
	}
	col := dataset.NewNumeric("x", vals)
	y := dataset.NewCategorical("y", ys, []string{"a", "b"})
	bins := ComputeBins(col, 0, 16, allRows(n))

	whole := NewHistogram(bins.NumBins, 2)
	for r := 0; r < n; r++ {
		whole.AddClass(bins.BinOf(col, r), y.Cats[r])
	}
	h1 := NewHistogram(bins.NumBins, 2)
	h2 := NewHistogram(bins.NumBins, 2)
	for r := 0; r < n; r++ {
		h := h1
		if r >= n/2 {
			h = h2
		}
		h.AddClass(bins.BinOf(col, r), y.Cats[r])
	}
	h1.Merge(h2)
	if h1.Total() != whole.Total() {
		t.Fatal("merge lost observations")
	}
	c1 := BestFromHistogram(bins, h1, impurity.Gini)
	c2 := BestFromHistogram(bins, whole, impurity.Gini)
	if !c1.Valid || !c2.Valid || c1.Impurity != c2.Impurity || c1.Cond.Threshold != c2.Cond.Threshold {
		t.Fatalf("merged split %+v != single-pass split %+v", c1, c2)
	}
}

func TestHistogramApproximationNeverBeatsExact(t *testing.T) {
	// The approximate split's impurity can never be lower than exact search.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(200)
		vals := make([]float64, n)
		ys := make([]int32, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
			if vals[i]+rng.NormFloat64() > 0 {
				ys[i] = 1
			}
		}
		col := dataset.NewNumeric("x", vals)
		y := dataset.NewCategorical("y", ys, []string{"a", "b"})
		exact := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(n), Measure: impurity.Gini, NumClasses: 2})
		bins := ComputeBins(col, 0, 8, allRows(n))
		h := NewHistogram(bins.NumBins, 2)
		for r := 0; r < n; r++ {
			h.AddClass(bins.BinOf(col, r), y.Cats[r])
		}
		approx := BestFromHistogram(bins, h, impurity.Gini)
		if !exact.Valid || !approx.Valid {
			continue
		}
		if approx.Impurity < exact.Impurity-1e-9 {
			t.Fatalf("trial %d: approximate %g beat exact %g", trial, approx.Impurity, exact.Impurity)
		}
	}
}

func TestHistogramRegression(t *testing.T) {
	n := 200
	vals := make([]float64, n)
	ys := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
		if i >= 100 {
			ys[i] = 50
		}
	}
	col := dataset.NewNumeric("x", vals)
	bins := ComputeBins(col, 0, 32, allRows(n))
	h := NewHistogram(bins.NumBins, 0)
	for r := 0; r < n; r++ {
		h.AddValue(bins.BinOf(col, r), ys[r])
	}
	cand := BestFromHistogram(bins, h, impurity.Variance)
	if !cand.Valid {
		t.Fatal("no split")
	}
	// The step at x=100 falls near a bin boundary; impurity should be small.
	if cand.Impurity > 60 {
		t.Fatalf("impurity = %g, too high for a clean step", cand.Impurity)
	}
}

func TestHistogramCategoricalClassification(t *testing.T) {
	col := dataset.NewCategorical("c", []int32{0, 0, 1, 1, 2, 2}, []string{"a", "b", "c"})
	y := dataset.NewCategorical("y", []int32{1, 1, 0, 0, 0, 0}, []string{"n", "p"})
	bins := ComputeBins(col, 0, 32, allRows(6))
	h := NewHistogram(bins.NumBins, 2)
	for r := 0; r < 6; r++ {
		h.AddClass(bins.BinOf(col, r), y.Cats[r])
	}
	cand := BestFromHistogram(bins, h, impurity.Gini)
	if !cand.Valid || cand.Impurity != 0 {
		t.Fatalf("pure singleton split missed: %+v", cand)
	}
	if len(cand.Cond.LeftSet) != 1 || cand.Cond.LeftSet[0] != 0 {
		t.Fatalf("left set %v, want {0}", cand.Cond.LeftSet)
	}
}

func TestHistogramCategoricalRegressionMatchesExact(t *testing.T) {
	// With one bin per level the histogram path has full information, so it
	// must match the exact Breiman search.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(100)
		levels := 3 + rng.Intn(5)
		codes := make([]int32, n)
		ys := make([]float64, n)
		names := make([]string, levels)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		for i := range codes {
			codes[i] = int32(rng.Intn(levels))
			ys[i] = float64(codes[i])*3 + rng.NormFloat64()
		}
		col := dataset.NewCategorical("c", codes, names)
		y := dataset.NewNumeric("y", ys)
		exact := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(n), Measure: impurity.Variance})
		bins := ComputeBins(col, 0, 32, allRows(n))
		h := NewHistogram(bins.NumBins, 0)
		for r := 0; r < n; r++ {
			h.AddValue(bins.BinOf(col, r), ys[r])
		}
		approx := BestFromHistogram(bins, h, impurity.Variance)
		if exact.Valid != approx.Valid {
			t.Fatalf("trial %d validity mismatch", trial)
		}
		if exact.Valid && math.Abs(exact.Impurity-approx.Impurity) > 1e-9 {
			t.Fatalf("trial %d: exact %g != full-info histogram %g", trial, exact.Impurity, approx.Impurity)
		}
	}
}
