package split

import (
	"slices"
	"sync"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/sketch"
)

// This file is the kernel of the distributed histogram training mode
// ("-mode hist"): sketch-proposed bins discretise each numeric column once
// per job, a flat pooled accumulator fills per-(node, column, bin) statistics
// in one slice, and histogram subtraction derives the larger sibling of a
// split from the cached parent instead of re-scanning its rows. The legacy
// Histogram type above stays as the PLANET/MLlib baseline; the cluster's
// hist mode uses only the types below.

// missingBin marks a missing cell in BinnedColumn.Idx. Bin indexes are
// uint16, capping usable bins per column at 65535.
const missingBin = ^uint16(0)

// BinsFromCuts builds numeric Bins from sketch-proposed cut values. Each cut
// is an actual data value — the inclusive upper bound of its bin — and
// values is the full ascending summary the cuts were drawn from. The stored
// threshold is placed at midpoint(cut, next greater summary value), so that
// when every distinct value receives its own bin the thresholds agree
// bit-for-bit with the exact sweep's midpoints.
func BinsFromCuts(colIdx int, cuts, values []float64) Bins {
	b := Bins{Col: colIdx, Kind: dataset.Numeric}
	thresholds := make([]float64, 0, len(cuts))
	for _, c := range cuts {
		j, _ := slices.BinarySearch(values, c)
		for j < len(values) && values[j] <= c {
			j++
		}
		if j >= len(values) {
			continue // a cut at the maximum leaves nothing on the right
		}
		t := midpoint(c, values[j])
		if len(thresholds) == 0 || t > thresholds[len(thresholds)-1] {
			thresholds = append(thresholds, t)
		}
	}
	b.Thresholds = thresholds
	b.NumBins = len(thresholds) + 1
	return b
}

// SketchCapacity is the quantile-summary capacity used when proposing
// maxBins bins: 4× oversampling so the quantile picks stay sharp, floored at
// 64. Workers (proposal) and master (merge) must agree on it, or replica
// merges would compress differently on each side of the wire.
func SketchCapacity(maxBins int) int {
	if s := 4 * maxBins; s > 64 {
		return s
	}
	return 64
}

// ProposeBins derives one column's Bins directly from its values — the
// serial analogue of the distributed bin-proposal round, used by local
// hist-mode training where no sketches cross a wire.
func ProposeBins(colIdx int, col *dataset.Column, maxBins int) Bins {
	if col.Kind == dataset.Categorical {
		return Bins{Col: colIdx, Kind: dataset.Categorical, NumBins: col.NumLevels()}
	}
	sk := sketch.New(SketchCapacity(maxBins))
	vals := make([]float64, 0, col.Len())
	for r := 0; r < col.Len(); r++ {
		if !col.IsMissing(r) {
			vals = append(vals, col.Floats[r])
		}
	}
	sk.AddBulk(vals)
	return BinsFromSketch(colIdx, sk, maxBins)
}

// BinsFromSketch proposes bins for one numeric column from a merged quantile
// summary. When the summary retains no more than maxBins distinct values,
// every value (bar the maximum) becomes a cut — the saturated case where
// hist-mode candidates match the exact sweep; otherwise the maxBins-quantile
// proposals are used.
func BinsFromSketch(colIdx int, sk *sketch.Sketch, maxBins int) Bins {
	values := sk.Values()
	if len(values) <= maxBins {
		var cuts []float64
		if len(values) > 0 {
			cuts = values[:len(values)-1]
		}
		return BinsFromCuts(colIdx, cuts, values)
	}
	return BinsFromCuts(colIdx, sk.Quantiles(maxBins), values)
}

// BinnedColumn caches the per-row bin index of one column under immutable
// Bins. It is computed once per (column, bin broadcast) and reused by every
// node's histogram fill, so the per-node kernel is one uint16 load per row.
type BinnedColumn struct {
	Bins Bins
	Idx  []uint16
}

// BinColumn precomputes row-to-bin indexes. Missing cells get the missingBin
// sentinel so fills can count them without consulting the column again.
func BinColumn(col *dataset.Column, bins Bins) *BinnedColumn {
	if bins.NumBins >= int(missingBin) {
		panic("split: bins exceed uint16 index range")
	}
	idx := make([]uint16, col.Len())
	for r := range idx {
		switch {
		case col.IsMissing(r):
			idx[r] = missingBin
		case bins.Kind == dataset.Categorical:
			idx[r] = uint16(col.Cats[r])
		default:
			i, _ := slices.BinarySearch(bins.Thresholds, col.Floats[r])
			idx[r] = uint16(i)
		}
	}
	return &BinnedColumn{Bins: bins, Idx: idx}
}

// Hist is the flat per-(node, column) histogram. Classification uses stride
// Classes — integer-valued class counts per bin, exact in float64 up to 2^53
// rows, which is what makes Sub bitwise identical to a direct fill.
// Regression uses stride 3: (count, sum, sumsq) per bin. All fields are
// exported so histograms cross the gob wire unmodified.
type Hist struct {
	NumBins int
	Classes int // 0 selects regression moments
	Missing int // rows whose cell was missing, excluded from W
	W       []float64
}

func (h *Hist) stride() int {
	if h.Classes > 0 {
		return h.Classes
	}
	return 3
}

// Reset resizes and zeroes the histogram for numBins bins.
func (h *Hist) Reset(numBins, classes int) {
	h.NumBins, h.Classes, h.Missing = numBins, classes, 0
	need := numBins * h.stride()
	if cap(h.W) < need {
		h.W = make([]float64, need)
		return
	}
	h.W = h.W[:need]
	for i := range h.W {
		h.W[i] = 0
	}
}

// histPool has no New hook so a checkout can tell reuse from allocation.
var histPool sync.Pool

// GetHist checks a zeroed histogram out of the package pool.
func GetHist(numBins, classes int) *Hist {
	h, _ := histPool.Get().(*Hist)
	if h == nil {
		h = new(Hist)
	}
	h.Reset(numBins, classes)
	return h
}

// PutHist returns a histogram to the pool. The caller must not retain it.
func PutHist(h *Hist) {
	if h != nil {
		histPool.Put(h)
	}
}

// Fill accumulates rows into the histogram in row order: class counts for
// classification, (count, sum, sumsq) for regression. Row order matters for
// regression determinism — every fill of the same rows produces bitwise
// identical sums.
func (h *Hist) Fill(bc *BinnedColumn, y *dataset.Column, rows []int32) {
	if h.Classes > 0 {
		k := h.Classes
		for _, r := range rows {
			b := bc.Idx[r]
			if b == missingBin {
				h.Missing++
				continue
			}
			h.W[int(b)*k+int(y.Cats[r])]++
		}
		return
	}
	for _, r := range rows {
		b := bc.Idx[r]
		if b == missingBin {
			h.Missing++
			continue
		}
		f := y.Floats[r]
		i := int(b) * 3
		h.W[i]++
		h.W[i+1] += f
		h.W[i+2] += f * f
	}
}

// Sub sets h = parent - sibling elementwise. Exact for classification's
// integer counts; hist mode applies subtraction only there, so a subtracted
// histogram is bitwise identical to a directly filled one and cache timing
// can never change the chosen split.
func (h *Hist) Sub(parent, sibling *Hist) {
	h.Reset(parent.NumBins, parent.Classes)
	for i := range h.W {
		h.W[i] = parent.W[i] - sibling.W[i]
	}
	h.Missing = parent.Missing - sibling.Missing
}

// Merge adds other's statistics into h. Shapes must match.
func (h *Hist) Merge(other *Hist) {
	for i := range h.W {
		h.W[i] += other.W[i]
	}
	h.Missing += other.Missing
}

// Total returns the number of non-missing observations aggregated.
func (h *Hist) Total() int {
	n := 0
	if h.Classes > 0 {
		for _, w := range h.W {
			n += int(w)
		}
		return n
	}
	for b := 0; b < h.NumBins; b++ {
		n += int(h.W[b*3])
	}
	return n
}

// Clone returns an independent copy, used when a histogram outlives its pool
// checkout (subtraction cache, wire messages).
func (h *Hist) Clone() *Hist {
	return &Hist{
		NumBins: h.NumBins, Classes: h.Classes, Missing: h.Missing,
		W: append([]float64(nil), h.W...),
	}
}

// BestFromHist scans a (merged) histogram for the best split under the bins.
// Numeric columns sweep the stored thresholds with incremental accumulators;
// categorical columns reconstruct exact per-level statistics and reuse the
// exact kernels, so categorical hist candidates match FindBest bit-for-bit
// whenever the histogram covers the same rows. Missing rows are routed with
// the larger child exactly like FindBest. maxExhaustive <= 0 selects
// DefaultMaxExhaustiveLevels; a nil scratch allocates privately.
func BestFromHist(bins Bins, h *Hist, measure impurity.Measure, maxExhaustive int, s *Scratch) Candidate {
	if s == nil {
		s = new(Scratch)
	}
	if maxExhaustive <= 0 {
		maxExhaustive = DefaultMaxExhaustiveLevels
	}
	if h.Total() < 2 {
		return Candidate{}
	}
	var cand Candidate
	switch {
	case bins.Kind == dataset.Numeric && h.Classes > 0:
		cand = histNumericClassification(bins, h, measure, s)
	case bins.Kind == dataset.Numeric:
		cand = histNumericRegression(bins, h)
	case h.Classes > 0:
		cand = histCategoricalClassification(bins, h, measure, maxExhaustive, s)
	default:
		cand = histCategoricalRegression(bins, h, s)
	}
	return routeMissing(cand, h.Missing)
}

// histNumericClassification sweeps bin boundaries with class counters, the
// binned analogue of sweepNumeric's classification branch. Empty bins repeat
// the previous partition and are skipped, mirroring the exact sweep's
// equal-value skip.
func histNumericClassification(bins Bins, h *Hist, m impurity.Measure, s *Scratch) Candidate {
	k := h.Classes
	left, right := s.classCounters(k)
	for i, w := range h.W {
		if n := int(w); n > 0 {
			right.AddN(int32(i%k), n)
		}
	}
	best := Candidate{}
	for b := 0; b < h.NumBins-1; b++ {
		moved := 0
		for class := 0; class < k; class++ {
			if n := int(h.W[b*k+class]); n > 0 {
				left.AddN(int32(class), n)
				right.AddN(int32(class), -n)
				moved += n
			}
		}
		if moved == 0 || left.N == 0 || right.N == 0 {
			continue
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(m), right.N, right.Impurity(m))
		cand := Candidate{
			Cond:     NewNumericCondition(bins.Col, bins.Thresholds[b], false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// histNumericRegression sweeps bin boundaries with moment accumulators.
func histNumericRegression(bins Bins, h *Hist) Candidate {
	var left, right impurity.MomentAccumulator
	for b := 0; b < h.NumBins; b++ {
		i := b * 3
		right.N += int(h.W[i])
		right.Sum += h.W[i+1]
		right.SumSq += h.W[i+2]
	}
	best := Candidate{}
	for b := 0; b < h.NumBins-1; b++ {
		i := b * 3
		n := int(h.W[i])
		if n > 0 {
			left.N += n
			left.Sum += h.W[i+1]
			left.SumSq += h.W[i+2]
			right.N -= n
			right.Sum -= h.W[i+1]
			right.SumSq -= h.W[i+2]
		}
		if n == 0 || left.N == 0 || right.N == 0 {
			continue
		}
		imp := impurity.WeightedSplit(left.N, left.Impurity(), right.N, right.Impurity())
		cand := Candidate{
			Cond:     NewNumericCondition(bins.Col, bins.Thresholds[b], false),
			Impurity: imp, LeftN: left.N, RightN: right.N, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// histCategoricalRegression rebuilds per-level moments from the histogram
// and feeds the exact Breiman prefix scan. The per-level sums were
// accumulated in row order, so the moments equal the exact kernel's.
func histCategoricalRegression(bins Bins, h *Hist, s *Scratch) Candidate {
	moments := s.momentBuf(h.NumBins)
	for b := 0; b < h.NumBins; b++ {
		i := b * 3
		moments[b] = impurity.MomentAccumulator{N: int(h.W[i]), Sum: h.W[i+1], SumSq: h.W[i+2]}
	}
	return bestCategoricalRegressionFromMoments(bins.Col, moments, s)
}

// histCategoricalClassification rebuilds the level x class count matrix from
// the histogram and feeds the exact subset search.
func histCategoricalClassification(bins Bins, h *Hist, m impurity.Measure, maxExh int, s *Scratch) Candidate {
	k := h.Classes
	counts, _ := s.countMatrix(h.NumBins, k)
	presentCodes := s.codesBuf(h.NumBins)
	for code := 0; code < h.NumBins; code++ {
		present := false
		for class := 0; class < k; class++ {
			if n := int(h.W[code*k+class]); n > 0 {
				counts[code][class] = n
				present = true
			}
		}
		if present {
			presentCodes = append(presentCodes, int32(code))
		}
	}
	s.codes = presentCodes
	if len(presentCodes) < 2 {
		return Candidate{}
	}
	return bestCategoricalClassificationFromCounts(bins.Col, counts, presentCodes, k, m, maxExh, s)
}
