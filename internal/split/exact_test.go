package split

import (
	"math"
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
)

// fig1Age and fig1Default reproduce the Age and Default columns of the
// paper's Fig. 1; the known best root split is "Age <= 40".
func fig1Cols() (age, edu, income, def *dataset.Column) {
	age = dataset.NewNumeric("Age", []float64{24, 28, 44, 32, 36, 48, 37, 42, 54, 47})
	eduLevels := []string{"Primary", "Secondary", "Bachelor", "Master", "PhD"}
	edu = dataset.NewCategorical("Education", []int32{2, 3, 2, 1, 4, 2, 1, 2, 1, 4}, eduLevels)
	income = dataset.NewNumeric("Income", []float64{5000, 7500, 5500, 6000, 10000, 6500, 3000, 6000, 4000, 8000})
	def = dataset.NewCategorical("Default", []int32{0, 0, 0, 1, 0, 0, 1, 0, 1, 0}, []string{"No", "Yes"})
	return
}

func allRows(n int) []int32 { return dataset.AllRows(n) }

func TestNumericSplitOnFig1Age(t *testing.T) {
	age, _, _, def := fig1Cols()
	cand := FindBest(Request{Col: age, ColIdx: 0, Y: def, Rows: allRows(10), Measure: impurity.Gini, NumClasses: 2})
	if !cand.Valid {
		t.Fatal("no valid split found")
	}
	if cand.Cond.Kind != dataset.Numeric {
		t.Fatal("split kind wrong")
	}
	// (The paper's Fig. 1 split "Age <= 40" is illustrative, not
	// Gini-optimal; the optimum on this data isolates the 54-year-old
	// defaulter. We assert optimality against brute force instead.)
	brute := FindBestBrute(Request{Col: age, ColIdx: 0, Y: def, Rows: allRows(10), Measure: impurity.Gini, NumClasses: 2})
	if math.Abs(cand.Impurity-brute.Impurity) > 1e-12 {
		t.Fatalf("exact %g != brute %g", cand.Impurity, brute.Impurity)
	}
	left, right := cand.Cond.Partition(age, allRows(10))
	if len(left)+len(right) != 10 || len(left) == 0 || len(right) == 0 {
		t.Fatalf("partition %d/%d invalid", len(left), len(right))
	}
}

func TestNumericSplitPerfectSeparation(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 10, 11, 12})
	y := dataset.NewCategorical("y", []int32{0, 0, 0, 1, 1, 1}, []string{"a", "b"})
	cand := FindBest(Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(6), Measure: impurity.Gini, NumClasses: 2})
	if !cand.Valid || cand.Impurity != 0 {
		t.Fatalf("perfect split not found: %+v", cand)
	}
	if cand.Cond.Threshold < 3 || cand.Cond.Threshold >= 10 {
		t.Fatalf("threshold %g outside (3,10]", cand.Cond.Threshold)
	}
	if cand.LeftN != 3 || cand.RightN != 3 {
		t.Fatalf("counts %d/%d", cand.LeftN, cand.RightN)
	}
}

func TestConstantColumnInvalid(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{5, 5, 5, 5})
	y := dataset.NewCategorical("y", []int32{0, 1, 0, 1}, []string{"a", "b"})
	if cand := FindBest(Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(4), Measure: impurity.Gini, NumClasses: 2}); cand.Valid {
		t.Fatal("constant column produced a split")
	}
}

func TestTooFewRowsInvalid(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2})
	y := dataset.NewCategorical("y", []int32{0, 1}, []string{"a", "b"})
	if cand := FindBest(Request{Col: x, ColIdx: 0, Y: y, Rows: []int32{0}, Measure: impurity.Gini, NumClasses: 2}); cand.Valid {
		t.Fatal("single row produced a split")
	}
}

func TestCategoricalRegressionBreiman(t *testing.T) {
	// Category means: a=1, b=10, c=5. Breiman order a,c,b. Best cut must be a
	// prefix of that order.
	col := dataset.NewCategorical("c", []int32{0, 0, 1, 1, 2, 2}, []string{"a", "b", "c"})
	y := dataset.NewNumeric("y", []float64{1, 1, 10, 10, 5, 5})
	cand := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(6), Measure: impurity.Variance})
	if !cand.Valid {
		t.Fatal("no split")
	}
	brute := FindBestBrute(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(6), Measure: impurity.Variance})
	if math.Abs(cand.Impurity-brute.Impurity) > 1e-12 {
		t.Fatalf("breiman %g != brute %g", cand.Impurity, brute.Impurity)
	}
}

func TestCategoricalClassificationExhaustive(t *testing.T) {
	// Labels pure per category pair: {a,c} -> 0, {b,d} -> 1.
	col := dataset.NewCategorical("c", []int32{0, 1, 2, 3, 0, 1, 2, 3}, []string{"a", "b", "c", "d"})
	y := dataset.NewCategorical("y", []int32{0, 1, 0, 1, 0, 1, 0, 1}, []string{"n", "p"})
	cand := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(8), Measure: impurity.Gini, NumClasses: 2})
	if !cand.Valid || cand.Impurity != 0 {
		t.Fatalf("exhaustive search missed pure split: %+v", cand)
	}
	// The winning left set must be {a,c} or {b,d}.
	got := cand.Cond.LeftSet
	ok := (len(got) == 2) && ((got[0] == 0 && got[1] == 2) || (got[0] == 1 && got[1] == 3))
	if !ok {
		t.Fatalf("left set %v not a pure bipartition", got)
	}
}

func TestCategoricalSingletonFallback(t *testing.T) {
	// 12 levels forces |Sl| = 1. Level 5 is the only impure-breaking one.
	n := 120
	codes := make([]int32, n)
	ys := make([]int32, n)
	levels := make([]string, 12)
	for i := range levels {
		levels[i] = string(rune('a' + i))
	}
	for i := 0; i < n; i++ {
		codes[i] = int32(i % 12)
		if codes[i] == 5 {
			ys[i] = 1
		}
	}
	col := dataset.NewCategorical("c", codes, levels)
	y := dataset.NewCategorical("y", ys, []string{"n", "p"})
	cand := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(n), Measure: impurity.Gini, NumClasses: 2})
	if !cand.Valid {
		t.Fatal("no split")
	}
	// With a binary target the large-|Si| path uses Breiman ordering, which
	// may return {5} or its mirror (all other levels); both isolate level 5.
	isFive := len(cand.Cond.LeftSet) == 1 && cand.Cond.LeftSet[0] == 5
	isMirror := len(cand.Cond.LeftSet) == 11 && !cand.Cond.LeftContains(5)
	if !isFive && !isMirror {
		t.Fatalf("split = %v, want {5} or its complement", cand.Cond.LeftSet)
	}
	if cand.Impurity != 0 {
		t.Fatalf("impurity = %g, want 0", cand.Impurity)
	}

	// A 3-class target with many levels still uses the |Sl| = 1 fallback.
	ys3 := make([]int32, n)
	for i := 0; i < n; i++ {
		ys3[i] = codes[i] % 3
	}
	y3 := dataset.NewCategorical("y3", ys3, []string{"a", "b", "c"})
	cand3 := FindBest(Request{Col: col, ColIdx: 0, Y: y3, Rows: allRows(n), Measure: impurity.Gini, NumClasses: 3})
	if !cand3.Valid || len(cand3.Cond.LeftSet) != 1 {
		t.Fatalf("multiclass fallback split = %v, want a singleton", cand3.Cond.LeftSet)
	}
}

func TestMissingValuesExcludedAndRouted(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 10, 11, 12, 0, 0})
	x.SetMissing(6)
	x.SetMissing(7)
	y := dataset.NewCategorical("y", []int32{0, 0, 0, 1, 1, 1, 0, 1}, []string{"a", "b"})
	cand := FindBest(Request{Col: x, ColIdx: 0, Y: y, Rows: allRows(8), Measure: impurity.Gini, NumClasses: 2})
	if !cand.Valid {
		t.Fatal("no split")
	}
	if cand.Impurity != 0 {
		t.Fatalf("missing rows contaminated impurity: %g", cand.Impurity)
	}
	// 6 present rows split 3/3; the 2 missing rows join one side (tie -> left).
	if cand.LeftN+cand.RightN != 8 {
		t.Fatalf("counts %d+%d must cover all rows", cand.LeftN, cand.RightN)
	}
	if !cand.Cond.MissingLeft || cand.LeftN != 5 {
		t.Fatalf("missing rows not routed to left on tie: leftN=%d missingLeft=%v", cand.LeftN, cand.Cond.MissingLeft)
	}
	left, right := cand.Cond.Partition(x, allRows(8))
	if len(left) != cand.LeftN || len(right) != cand.RightN {
		t.Fatalf("partition %d/%d disagrees with candidate counts %d/%d", len(left), len(right), cand.LeftN, cand.RightN)
	}
}

func TestPartitionCoversRowsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(100)
		x := make([]float64, n)
		yv := make([]int32, n)
		for i := range x {
			x[i] = float64(rng.Intn(10))
			yv[i] = int32(rng.Intn(3))
		}
		col := dataset.NewNumeric("x", x)
		y := dataset.NewCategorical("y", yv, []string{"a", "b", "c"})
		cand := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(n), Measure: impurity.Gini, NumClasses: 3})
		if !cand.Valid {
			continue
		}
		left, right := cand.Cond.Partition(col, allRows(n))
		if len(left)+len(right) != n {
			t.Fatalf("trial %d: partition lost rows", trial)
		}
		if len(left) != cand.LeftN || len(right) != cand.RightN {
			t.Fatalf("trial %d: counts mismatch", trial)
		}
		seen := map[int32]bool{}
		for _, r := range left {
			seen[r] = true
		}
		for _, r := range right {
			if seen[r] {
				t.Fatalf("trial %d: row %d in both partitions", trial, r)
			}
		}
	}
}

// TestExactMatchesBruteForce is the core correctness property: the one-pass
// exact finders must agree with brute-force enumeration on the achieved
// impurity, for every (column kind × target kind) combination.
func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []struct {
		name    string
		colCat  bool
		yCat    bool
		measure impurity.Measure
	}{
		{"numeric-classification-gini", false, true, impurity.Gini},
		{"numeric-classification-entropy", false, true, impurity.Entropy},
		{"numeric-regression", false, false, impurity.Variance},
		{"categorical-classification", true, true, impurity.Gini},
		{"categorical-regression", true, false, impurity.Variance},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			for trial := 0; trial < 60; trial++ {
				n := 2 + rng.Intn(60)
				levels := 2 + rng.Intn(6) // <= 8 keeps exhaustive reference tractable
				var col *dataset.Column
				if k.colCat {
					codes := make([]int32, n)
					levelNames := make([]string, levels)
					for i := range levelNames {
						levelNames[i] = string(rune('a' + i))
					}
					for i := range codes {
						codes[i] = int32(rng.Intn(levels))
					}
					col = dataset.NewCategorical("c", codes, levelNames)
				} else {
					vals := make([]float64, n)
					for i := range vals {
						vals[i] = float64(rng.Intn(12)) // repeats exercise value ties
					}
					col = dataset.NewNumeric("c", vals)
				}
				var y *dataset.Column
				numClasses := 0
				if k.yCat {
					numClasses = 2 + rng.Intn(3)
					ys := make([]int32, n)
					classNames := make([]string, numClasses)
					for i := range classNames {
						classNames[i] = string(rune('A' + i))
					}
					for i := range ys {
						ys[i] = int32(rng.Intn(numClasses))
					}
					y = dataset.NewCategorical("y", ys, classNames)
				} else {
					ys := make([]float64, n)
					for i := range ys {
						ys[i] = rng.NormFloat64() * 5
					}
					y = dataset.NewNumeric("y", ys)
				}
				req := Request{Col: col, ColIdx: 3, Y: y, Rows: allRows(n), Measure: k.measure, NumClasses: numClasses}
				fast := FindBest(req)
				brute := FindBestBrute(req)
				if fast.Valid != brute.Valid {
					t.Fatalf("trial %d: validity fast=%v brute=%v", trial, fast.Valid, brute.Valid)
				}
				if fast.Valid && math.Abs(fast.Impurity-brute.Impurity) > 1e-9 {
					t.Fatalf("trial %d: impurity fast=%g brute=%g (fast cond %v, brute cond %v)",
						trial, fast.Impurity, brute.Impurity, fast.Cond, brute.Cond)
				}
			}
		})
	}
}

// TestBinaryBreimanMatchesExhaustive: for binary classification with many
// levels, the P(class 1)-ordered prefix scan must find the same optimum as
// full subset enumeration (Breiman's theorem for concave impurities).
func TestBinaryBreimanMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		levels := 11 + rng.Intn(3) // > DefaultMaxExhaustiveLevels
		n := 200 + rng.Intn(200)
		codes := make([]int32, n)
		ys := make([]int32, n)
		names := make([]string, levels)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		for i := range codes {
			codes[i] = int32(rng.Intn(levels))
			if rng.Float64() < float64(codes[i])/float64(levels) {
				ys[i] = 1
			}
		}
		col := dataset.NewCategorical("c", codes, names)
		y := dataset.NewCategorical("y", ys, []string{"n", "p"})
		fast := FindBest(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(n),
			Measure: impurity.Gini, NumClasses: 2}) // Breiman path (levels > 10)
		full := FindBestBrute(Request{Col: col, ColIdx: 0, Y: y, Rows: allRows(n),
			Measure: impurity.Gini, NumClasses: 2, MaxExhaustiveLevels: 16}) // full 2^(L-1) enumeration
		if fast.Valid != full.Valid {
			t.Fatalf("trial %d: validity mismatch", trial)
		}
		if fast.Valid && math.Abs(fast.Impurity-full.Impurity) > 1e-9 {
			t.Fatalf("trial %d: breiman %g != exhaustive %g", trial, fast.Impurity, full.Impurity)
		}
	}
}

func TestCandidateBetterOrdering(t *testing.T) {
	a := Candidate{Valid: true, Impurity: 0.2, Cond: Condition{Col: 3}}
	b := Candidate{Valid: true, Impurity: 0.3, Cond: Condition{Col: 1}}
	if !a.Better(b) || b.Better(a) {
		t.Fatal("lower impurity must win")
	}
	c := Candidate{Valid: true, Impurity: 0.2, Cond: Condition{Col: 1}}
	if !c.Better(a) || a.Better(c) {
		t.Fatal("tie must break to lower column")
	}
	invalid := Candidate{}
	if invalid.Better(a) || !a.Better(invalid) {
		t.Fatal("invalid candidates must lose")
	}
	if invalid.Better(Candidate{}) {
		t.Fatal("invalid vs invalid must be false")
	}
}

func TestConditionLeftContainsLargeCodes(t *testing.T) {
	// Codes >= 64 disable the bitmask fast path; binary search must agree.
	cond := NewCategoricalCondition(0, []int32{3, 70, 100}, false)
	for _, c := range []int32{3, 70, 100} {
		if !cond.LeftContains(c) {
			t.Fatalf("code %d missing from left set", c)
		}
	}
	for _, c := range []int32{0, 64, 99, 101} {
		if cond.LeftContains(c) {
			t.Fatalf("code %d wrongly in left set", c)
		}
	}
}

func TestConditionRehydrate(t *testing.T) {
	cond := NewCategoricalCondition(0, []int32{1, 2}, false)
	stripped := Condition{Col: cond.Col, Kind: cond.Kind, LeftSet: cond.LeftSet} // simulates gob decode
	stripped.Rehydrate()
	if !stripped.LeftContains(1) || stripped.LeftContains(0) {
		t.Fatal("rehydrated condition misroutes")
	}
}

func TestMidpointStaysInInterval(t *testing.T) {
	cases := [][2]float64{{1, 2}, {0, 1e-300}, {-5, -4.999999}, {1, math.Nextafter(1, 2)}}
	for _, c := range cases {
		m := midpoint(c[0], c[1])
		if m < c[0] || m >= c[1] {
			t.Fatalf("midpoint(%g,%g) = %g escapes [lo,hi)", c[0], c[1], m)
		}
	}
}
