package infer

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"testing"

	"treeserver/internal/boost"
	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/model"
	"treeserver/internal/synth"
)

// trainForestFile trains a forest on the spec and round-trips it through the
// gob model format, exactly as a served model arrives.
func trainForestFile(t *testing.T, spec synth.Spec, trees, maxDepth int) (*model.File, *dataset.Table) {
	t.Helper()
	train, test := synth.Generate(spec, 0.3)
	params := core.Defaults()
	if maxDepth > 0 {
		params.MaxDepth = maxDepth
	}
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: trees, Params: params, ColFrac: -1, Bootstrap: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, spec.Name, f, model.SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return mf, test
}

func trainBoostFile(t *testing.T, spec synth.Spec, rounds int) (*model.File, *dataset.Table) {
	t.Helper()
	train, test := synth.Generate(spec, 0.3)
	bm, err := boost.Train(train, boost.Config{Rounds: rounds, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveBoost(&buf, spec.Name, bm, model.SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return mf, test
}

// rowToMap renders table row r the way an HTTP client would send it: numeric
// cells as shortest round-trip decimal strings, categorical cells as level
// strings, missing cells as "" / "NA" / omitted in rotation so every missing
// spelling is exercised.
func rowToMap(tbl *dataset.Table, r int) map[string]string {
	out := make(map[string]string, len(tbl.Cols))
	missSpelling := 0
	for ci, col := range tbl.Cols {
		if ci == tbl.Target {
			continue
		}
		if col.IsMissing(r) {
			switch missSpelling % 3 {
			case 0:
				out[col.Name] = ""
			case 1:
				out[col.Name] = "NA"
			default: // omitted key
			}
			missSpelling++
			continue
		}
		if col.Kind == dataset.Numeric {
			out[col.Name] = strconv.FormatFloat(col.Floats[r], 'g', -1, 64)
		} else {
			out[col.Name] = col.Levels[col.Cats[r]]
		}
	}
	return out
}

// propertySpecs is the equivalence grid: classification and regression,
// numeric-only and mixed categorical, missing values, binary and multiclass.
func propertySpecs() []synth.Spec {
	return []synth.Spec{
		{Name: "cls-mixed", Rows: 1200, NumNumeric: 3, NumCategorical: 2, CatLevels: 5,
			NumClasses: 2, MissingRate: 0.1, ConceptDepth: 4, Seed: 11},
		{Name: "cls-numeric", Rows: 1000, NumNumeric: 4, NumClasses: 3,
			ConceptDepth: 4, Seed: 12},
		{Name: "cls-wide-cat", Rows: 1500, NumNumeric: 1, NumCategorical: 3, CatLevels: 70,
			NumClasses: 4, MissingRate: 0.05, ConceptDepth: 5, Seed: 13},
		{Name: "reg-mixed", Rows: 1200, NumNumeric: 3, NumCategorical: 2, CatLevels: 5,
			NumClasses: 0, MissingRate: 0.1, ConceptDepth: 4, Seed: 14},
		{Name: "reg-numeric", Rows: 1000, NumNumeric: 4, NumClasses: 0,
			ConceptDepth: 4, Seed: 15},
	}
}

// TestForestEquivalence holds the compiled engine to bit-identical
// predictions against the interpreter over the property grid, at full depth
// and at every truncation depth 1..dmax, through both ingestion paths
// (string maps and parsed tables), including unseen categorical levels.
func TestForestEquivalence(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mf, test := trainForestFile(t, spec, 5, 6)
			m, err := Compile(mf)
			if err != nil {
				t.Fatal(err)
			}
			if m.Kind() != "forest" {
				t.Fatalf("kind = %q", m.Kind())
			}

			// Client-shaped rows, with a sprinkle of unseen levels.
			rows := make([]map[string]string, test.NumRows())
			for r := range rows {
				rows[r] = rowToMap(test, r)
				if spec.NumCategorical > 0 && r%17 == 0 {
					rows[r][test.Cols[spec.NumNumeric].Name] = "NEVER-SEEN-LEVEL"
				}
			}
			parsed, err := mf.Schema.ParseRows(rows)
			if err != nil {
				t.Fatal(err)
			}

			block := m.GetBlock()
			defer m.PutBlock(block)
			for _, row := range rows {
				if err := m.AppendRow(block, row); err != nil {
					t.Fatal(err)
				}
			}
			res := m.GetResult()
			defer m.PutResult(res)

			for depth := 0; depth <= m.MaxTreeDepth(); depth++ {
				m.Predict(block, res, depth)
				for r := 0; r < len(rows); r++ {
					if spec.Regression() {
						want := mf.Forest.PredictValue(parsed, r, depth)
						if got := res.Value(r); got != want {
							t.Fatalf("depth %d row %d: value %v != %v", depth, r, got, want)
						}
						continue
					}
					wantPMF := mf.Forest.PredictPMF(parsed, r, depth)
					gotPMF := res.PMF(r)
					if len(gotPMF) != len(wantPMF) {
						t.Fatalf("depth %d row %d: pmf len %d != %d", depth, r, len(gotPMF), len(wantPMF))
					}
					for i := range wantPMF {
						if gotPMF[i] != wantPMF[i] {
							t.Fatalf("depth %d row %d class %d: pmf %v != %v",
								depth, r, i, gotPMF[i], wantPMF[i])
						}
					}
					if got, want := res.Class(r), mf.Forest.PredictClass(parsed, r, depth); got != want {
						t.Fatalf("depth %d row %d: class %d != %d", depth, r, got, want)
					}
				}
			}

			// Full-depth predictions must also match the model-file wrapper
			// (Class strings / Value), the shape the legacy handler serves.
			m.Predict(block, res, 0)
			for r, p := range mf.Predict(parsed) {
				if spec.Regression() {
					if res.Value(r) != p.Value {
						t.Fatalf("row %d: value %v != wrapper %v", r, res.Value(r), p.Value)
					}
				} else if m.Classes()[res.Class(r)] != p.Class {
					t.Fatalf("row %d: class %q != wrapper %q", r, m.Classes()[res.Class(r)], p.Class)
				}
			}

			// The table ingestion path must agree with the map path.
			tb := m.GetBlock()
			defer m.PutBlock(tb)
			for r := 0; r < parsed.NumRows(); r++ {
				if err := m.AppendTableRow(tb, parsed, r); err != nil {
					t.Fatal(err)
				}
			}
			tres := m.GetResult()
			defer m.PutResult(tres)
			m.Predict(tb, tres, 0)
			for r := 0; r < len(rows); r++ {
				if spec.Regression() {
					if tres.Value(r) != res.Value(r) {
						t.Fatalf("row %d: table path value %v != map path %v", r, tres.Value(r), res.Value(r))
					}
				} else if tres.Class(r) != res.Class(r) {
					t.Fatalf("row %d: table path class %d != map path %d", r, tres.Class(r), res.Class(r))
				}
			}
		})
	}
}

// TestBoostEquivalence covers the gradient-boosted kinds: regression, binary
// logistic and multiclass softmax, with missing values and categorical codes
// compared as numeric values.
func TestBoostEquivalence(t *testing.T) {
	specs := []synth.Spec{
		{Name: "gbt-reg", Rows: 1200, NumNumeric: 3, NumCategorical: 1, CatLevels: 5,
			NumClasses: 0, MissingRate: 0.1, ConceptDepth: 4, Seed: 21},
		{Name: "gbt-binary", Rows: 1200, NumNumeric: 3, NumCategorical: 1, CatLevels: 5,
			NumClasses: 2, MissingRate: 0.1, ConceptDepth: 4, Seed: 22},
		{Name: "gbt-multi", Rows: 1200, NumNumeric: 3, NumCategorical: 1, CatLevels: 5,
			NumClasses: 4, MissingRate: 0.1, ConceptDepth: 4, Seed: 23},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mf, test := trainBoostFile(t, spec, 8)
			m, err := Compile(mf)
			if err != nil {
				t.Fatal(err)
			}
			if m.Kind() != "boost" || m.DepthTruncation() {
				t.Fatalf("kind %q truncation %v", m.Kind(), m.DepthTruncation())
			}
			rows := make([]map[string]string, test.NumRows())
			for r := range rows {
				rows[r] = rowToMap(test, r)
				if r%13 == 0 {
					rows[r][test.Cols[spec.NumNumeric].Name] = "NEVER-SEEN-LEVEL"
				}
			}
			parsed, err := mf.Schema.ParseRows(rows)
			if err != nil {
				t.Fatal(err)
			}
			block := m.GetBlock()
			for _, row := range rows {
				if err := m.AppendRow(block, row); err != nil {
					t.Fatal(err)
				}
			}
			res := m.GetResult()
			m.Predict(block, res, 0)
			for r := 0; r < len(rows); r++ {
				if spec.Regression() {
					if got, want := res.Value(r), mf.Boost.PredictValue(parsed, r); got != want {
						t.Fatalf("row %d: value %v != %v", r, got, want)
					}
				} else if got, want := res.Class(r), mf.Boost.PredictClass(parsed, r); got != want {
					t.Fatalf("row %d: class %d != %d", r, got, want)
				}
			}
		})
	}
}

// TestAppendRowParsing pins the request-parsing conventions: missing
// spellings, whitespace trimming, unknown feature names ignored, unseen
// levels coded unseen, bad numerics rejected without growing the block.
func TestAppendRowParsing(t *testing.T) {
	spec := synth.Spec{Name: "parse", Rows: 400, NumNumeric: 1, NumCategorical: 1,
		CatLevels: 3, NumClasses: 2, ConceptDepth: 2, Seed: 31}
	mf, _ := trainForestFile(t, spec, 2, 3)
	m, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	b := m.GetBlock()
	numName, catName := mf.Schema.Names[0], mf.Schema.Names[1]

	if err := m.AppendRow(b, map[string]string{numName: " 1.5 ", catName: " L1 ", "bogus": "x"}); err != nil {
		t.Fatal(err)
	}
	if b.nums[0] != 1.5 || b.cats[0] != 1 {
		t.Fatalf("trimmed row parsed to %v %v", b.nums[0], b.cats[0])
	}
	for _, spelling := range []string{"", "NA", "?"} {
		if err := m.AppendRow(b, map[string]string{numName: spelling, catName: spelling}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 1; r <= 3; r++ {
		if v := b.nums[r]; !math.IsNaN(v) {
			t.Fatalf("row %d numeric = %v, want NaN", r, v)
		}
		if c := b.cats[r]; c != missingCode {
			t.Fatalf("row %d categorical = %d, want %d", r, c, missingCode)
		}
	}
	if err := m.AppendRow(b, map[string]string{catName: "martian"}); err != nil {
		t.Fatal(err)
	}
	if c := b.cats[4]; c != unseenCode {
		t.Fatalf("unseen level coded %d, want %d", c, unseenCode)
	}
	n := b.Len()
	if err := m.AppendRow(b, map[string]string{numName: "not-a-number"}); err == nil {
		t.Fatal("bad numeric accepted")
	}
	if b.Len() != n {
		t.Fatalf("failed append grew block to %d rows", b.Len())
	}
}

func TestCompileRejects(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil file accepted")
	}
	spec := synth.Spec{Name: "rej", Rows: 300, NumNumeric: 2, NumClasses: 2, ConceptDepth: 2, Seed: 41}
	mf, _ := trainForestFile(t, spec, 2, 3)
	hollow := *mf
	hollow.Forest = nil
	if _, err := Compile(&hollow); err == nil {
		t.Fatal("payload-less file accepted")
	}
}

// TestPredictZeroAlloc proves the steady-state parse+predict path allocates
// nothing once the pooled buffers have warmed up.
func TestPredictZeroAlloc(t *testing.T) {
	spec := synth.Spec{Name: "alloc", Rows: 1500, NumNumeric: 3, NumCategorical: 1,
		CatLevels: 4, NumClasses: 3, MissingRate: 0.05, ConceptDepth: 4, Seed: 51}
	mf, test := trainForestFile(t, spec, 5, 6)
	m, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]map[string]string, 64)
	for r := range rows {
		rows[r] = rowToMap(test, r)
	}
	block := m.GetBlock()
	res := m.GetResult()
	work := func() {
		block.Reset()
		for _, row := range rows {
			if err := m.AppendRow(block, row); err != nil {
				panic(err)
			}
		}
		m.Predict(block, res, 0)
	}
	work() // warm-up grows the buffers
	if avg := testing.AllocsPerRun(100, work); avg != 0 {
		t.Fatalf("steady-state predict allocates %.1f per batch, want 0", avg)
	}
}

// TestDepthTruncationMonotone sanity-checks the Appendix D dial: depth-1
// predictions differ from full-depth on some rows, and truncating at dmax
// equals full depth.
func TestDepthTruncationMonotone(t *testing.T) {
	spec := synth.Spec{Name: "trunc", Rows: 2000, NumNumeric: 4, NumClasses: 2,
		ConceptDepth: 5, Seed: 61}
	mf, test := trainForestFile(t, spec, 4, 7)
	m, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	block := m.GetBlock()
	for r := 0; r < test.NumRows(); r++ {
		if err := m.AppendRow(block, rowToMap(test, r)); err != nil {
			t.Fatal(err)
		}
	}
	full, shallow, capped := m.GetResult(), m.GetResult(), m.GetResult()
	m.Predict(block, full, 0)
	m.Predict(block, shallow, 1)
	m.Predict(block, capped, m.MaxTreeDepth())
	differ := false
	for r := 0; r < block.Len(); r++ {
		for i, p := range full.PMF(r) {
			if shallow.PMF(r)[i] != p {
				differ = true
			}
			if capped.PMF(r)[i] != p {
				t.Fatalf("row %d: dmax-capped pmf differs from full depth", r)
			}
		}
	}
	if !differ {
		t.Fatal("depth-1 predictions identical to full depth; truncation dial inert")
	}
}

func ExampleModel_Predict() {
	train, _ := synth.Generate(synth.Spec{
		Name: "ex", Rows: 800, NumNumeric: 2, NumClasses: 2, ConceptDepth: 3, Seed: 71,
	}, 0)
	f, _ := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: 3, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 1})
	var buf bytes.Buffer
	_ = model.SaveForest(&buf, "ex", f, model.SchemaOf(train))
	mf, _ := model.Load(&buf)

	m, _ := Compile(mf)
	block := m.GetBlock()
	_ = m.AppendRow(block, map[string]string{"num0": "0.4", "num1": "-1.2"})
	res := m.GetResult()
	m.Predict(block, res, 0)
	fmt.Println(m.Classes()[res.Class(0)] != "")
	// Output: true
}
