// Package infer is the compiled serving engine: it flattens trained models
// into cache-friendly structure-of-arrays node tables and evaluates them over
// row blocks with a zero-allocation steady state.
//
// The interpreter in core/forest walks pointer-linked Node values — fine for
// training-time evaluation, but a serving hot path pays for the pointer
// chasing, the per-request schema scans and the per-call allocations. Compile
// applies the cache-conscious layout playbook of "Breadth-first, Depth-next
// Training of Random Forests" (1910.06853) to prediction instead:
//
//   - every tree becomes parallel flat arrays (feature slot, threshold,
//     left/right int32 offsets, per-node leaf payloads) laid out in
//     breadth-first order, so traversal is array indexing, not chasing;
//   - categorical seen/left sets become packed bitsets in one shared word
//     pool per tree;
//   - categorical dictionaries (level string → code) are built once at
//     compile time, so request parsing is a map lookup, not a linear scan of
//     the training levels;
//   - row blocks and result buffers are pooled per model, so the parse →
//     predict → encode path allocates nothing after warm-up.
//
// Because every node carries its training-time prediction (Appendix D), a
// compiled model can stop traversal at any depth: Predict's maxDepth is the
// latency/accuracy dial the paper's depth-truncated evaluation guarantees,
// with no retraining. Predictions are bit-identical to the interpreter
// (forest.Forest.Predict* / boost.Model.Predict*) — the equivalence property
// tests in this package hold the engine to that.
package infer

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"treeserver/internal/boost"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/model"
)

// Categorical cell sentinels. Both stop forest traversal at the current node
// (Appendix D routes missing and unseen values the same way), but boost
// models route missing values by the learned default direction while an
// unseen level keeps its -1 code as a numeric value, exactly like the
// interpreter's feature view — so the two cases stay distinguishable.
const (
	// unseenCode marks a categorical value absent from the training levels.
	unseenCode int32 = -1
	// missingCode marks a missing categorical cell.
	missingCode int32 = -2
)

// Node kinds in the flat tables.
const (
	nodeLeaf uint8 = iota
	nodeNumeric
	nodeCategorical
)

// soaTree is one tree flattened into parallel arrays. Nodes are indexed by
// int32 offsets with the root at 0, laid out in breadth-first order so the
// hot top-of-tree levels share cache lines.
type soaTree struct {
	kind   []uint8
	depth  []int32
	slot   []int32   // row-block slot of the split feature
	thresh []float64 // numeric split value
	left   []int32
	right  []int32

	// Categorical membership sets, packed two per node into words: the seen
	// set at setOff (codes observed in D_x during training) followed by the
	// left set (codes routed left), each setLen words wide.
	setOff []int32
	setLen []int32
	words  []uint64

	// Per-node payloads: traversal can stop anywhere (leaf, missing value,
	// unseen level, depth truncation), so every node carries its prediction.
	class []int32   // classification: argmax class
	pmf   []float64 // classification: node-major PMFs, numClasses stride
	mean  []float64 // regression mean / boost leaf weight

	missLeft []bool // boost: learned default direction for missing values
}

// Model is an immutable compiled inference artifact. All methods are safe
// for concurrent use; mutability lives in the per-call RowBlock/Result pairs.
type Model struct {
	schema     model.Schema
	kind       string // "forest" or "boost"
	regression bool
	numClasses int
	classes    []string
	dmax       int // deepest node depth across member trees

	// Feature plumbing: schema column index → row-block slot.
	colSlot  []int32 // slot within nums (numeric) or cats (categorical); -1 for the target
	colCat   []bool
	numSlots int
	catSlots int
	dicts    []map[string]int32 // categorical columns: level → code
	byName   map[string]int     // feature name → schema column index

	trees []soaTree

	// Boost-only shape: base margin and trees-per-round group count.
	boostBase    float64
	boostGroups  int
	boostClasses int // boost.Model.NumClasses: 0 regression, 1 binary, >=3 softmax

	blockPool sync.Pool
	resPool   sync.Pool
}

// Kind returns "forest" or "boost".
func (m *Model) Kind() string { return m.kind }

// Regression reports whether the model predicts a numeric target.
func (m *Model) Regression() bool { return m.regression }

// NumClasses returns the class count (0 for regression).
func (m *Model) NumClasses() int {
	if m.regression {
		return 0
	}
	return m.numClasses
}

// Classes returns the class label names (nil for regression). Shared; do not
// mutate.
func (m *Model) Classes() []string { return m.classes }

// NumTrees returns the flattened tree count (boost: rounds × groups).
func (m *Model) NumTrees() int { return len(m.trees) }

// MaxTreeDepth returns the deepest node depth across member trees — the
// upper end of the MaxDepth truncation dial.
func (m *Model) MaxTreeDepth() int { return m.dmax }

// Schema returns the training schema the model parses requests against.
func (m *Model) Schema() model.Schema { return m.schema }

// DepthTruncation reports whether Predict honours maxDepth. Forests carry
// Appendix D payloads on every node; boost trees predict only at leaves, so
// truncating them has nothing to return.
func (m *Model) DepthTruncation() bool { return m.kind == "forest" }

// Compile flattens a loaded model file into a compiled engine.
func Compile(f *model.File) (*Model, error) {
	if f == nil {
		return nil, fmt.Errorf("infer: nil model file")
	}
	s := f.Schema
	if s.NumCols() == 0 {
		return nil, fmt.Errorf("infer: model %q has an empty schema", f.Name)
	}
	m := &Model{
		schema:     s,
		regression: s.Regression(),
		colSlot:    make([]int32, s.NumCols()),
		colCat:     make([]bool, s.NumCols()),
		dicts:      make([]map[string]int32, s.NumCols()),
		byName:     make(map[string]int, s.NumCols()),
	}
	if !m.regression {
		m.classes = s.TargetLevels()
		m.numClasses = len(m.classes)
	}
	for ci := range s.Names {
		m.colSlot[ci] = -1
		if ci == s.Target {
			continue
		}
		m.byName[s.Names[ci]] = ci
		if s.Kinds[ci] == dataset.Categorical {
			m.colCat[ci] = true
			m.colSlot[ci] = int32(m.catSlots)
			m.catSlots++
			dict := make(map[string]int32, len(s.Levels[ci]))
			for code, level := range s.Levels[ci] {
				dict[level] = int32(code)
			}
			m.dicts[ci] = dict
		} else {
			m.colSlot[ci] = int32(m.numSlots)
			m.numSlots++
		}
	}
	switch {
	case f.Forest != nil:
		m.kind = "forest"
		if len(f.Forest.Trees) == 0 {
			return nil, fmt.Errorf("infer: model %q has no trees", f.Name)
		}
		if !m.regression && f.Forest.NumClasses != m.numClasses {
			return nil, fmt.Errorf("infer: model %q: forest has %d classes, schema %d",
				f.Name, f.Forest.NumClasses, m.numClasses)
		}
		m.trees = make([]soaTree, len(f.Forest.Trees))
		for i, t := range f.Forest.Trees {
			if err := m.compileTree(&m.trees[i], t); err != nil {
				return nil, fmt.Errorf("infer: model %q tree %d: %w", f.Name, i, err)
			}
		}
	case f.Boost != nil:
		m.kind = "boost"
		b := f.Boost
		if len(b.Rounds) == 0 || len(b.Rounds[0]) == 0 {
			return nil, fmt.Errorf("infer: model %q has no boosting rounds", f.Name)
		}
		m.boostBase = b.Base
		m.boostGroups = len(b.Rounds[0])
		m.boostClasses = b.NumClasses
		for r, trees := range b.Rounds {
			if len(trees) != m.boostGroups {
				return nil, fmt.Errorf("infer: model %q round %d has %d trees, want %d",
					f.Name, r, len(trees), m.boostGroups)
			}
			for k, t := range trees {
				var st soaTree
				if err := m.compileGTree(&st, t); err != nil {
					return nil, fmt.Errorf("infer: model %q round %d tree %d: %w", f.Name, r, k, err)
				}
				m.trees = append(m.trees, st)
			}
		}
	default:
		return nil, fmt.Errorf("infer: model %q holds neither forest nor boost payload", f.Name)
	}
	m.blockPool.New = func() any {
		return &RowBlock{numStride: m.numSlots, catStride: m.catSlots}
	}
	m.resPool.New = func() any { return &Result{} }
	return m, nil
}

// compileTree flattens one core.Tree breadth-first into dst.
func (m *Model) compileTree(dst *soaTree, t *core.Tree) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("empty tree")
	}
	nc := m.numClasses
	// Breadth-first queue; indices are assigned in dequeue order, so a
	// node's children always land after it and the top levels stay adjacent.
	queue := []*core.Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		idx := len(dst.kind)
		dst.kind = append(dst.kind, nodeLeaf)
		dst.depth = append(dst.depth, int32(n.Depth))
		dst.slot = append(dst.slot, 0)
		dst.thresh = append(dst.thresh, 0)
		dst.left = append(dst.left, 0)
		dst.right = append(dst.right, 0)
		dst.setOff = append(dst.setOff, 0)
		dst.setLen = append(dst.setLen, 0)
		dst.class = append(dst.class, n.Class)
		dst.mean = append(dst.mean, n.Mean)
		if nc > 0 {
			pmf := make([]float64, nc)
			copy(pmf, n.PMF)
			dst.pmf = append(dst.pmf, pmf...)
		}
		if n.IsLeaf() {
			continue
		}
		col := n.Cond.Col
		if col < 0 || col >= len(m.colSlot) || m.colSlot[col] < 0 {
			return fmt.Errorf("node %d splits on column %d outside the feature schema", n.ID, col)
		}
		dst.slot[idx] = m.colSlot[col]
		if n.Cond.Kind == dataset.Numeric {
			if m.colCat[col] {
				return fmt.Errorf("node %d: numeric split on categorical column %d", n.ID, col)
			}
			dst.kind[idx] = nodeNumeric
			dst.thresh[idx] = n.Cond.Threshold
		} else {
			if !m.colCat[col] {
				return fmt.Errorf("node %d: categorical split on numeric column %d", n.ID, col)
			}
			dst.kind[idx] = nodeCategorical
			nw := int32((len(m.schema.Levels[col]) + 63) / 64)
			if nw == 0 {
				nw = 1
			}
			dst.setOff[idx] = int32(len(dst.words))
			dst.setLen[idx] = nw
			dst.words = append(dst.words, make([]uint64, 2*nw)...)
			seen := dst.words[dst.setOff[idx] : dst.setOff[idx]+nw]
			left := dst.words[dst.setOff[idx]+nw : dst.setOff[idx]+2*nw]
			for _, code := range n.SeenCodes {
				if code < 0 || int(code) >= int(nw)*64 {
					return fmt.Errorf("node %d: seen code %d outside column %d's %d levels",
						n.ID, code, col, len(m.schema.Levels[col]))
				}
				seen[code>>6] |= 1 << uint(code&63)
			}
			for _, code := range n.Cond.LeftSet {
				if code < 0 || int(code) >= int(nw)*64 {
					return fmt.Errorf("node %d: left code %d outside column %d's %d levels",
						n.ID, code, col, len(m.schema.Levels[col]))
				}
				left[code>>6] |= 1 << uint(code&63)
			}
		}
		// Children are appended to the queue in (left, right) order; their
		// final indices are the current queue tail positions.
		dst.left[idx] = int32(len(dst.kind) + len(queue))
		queue = append(queue, n.Left)
		dst.right[idx] = int32(len(dst.kind) + len(queue))
		queue = append(queue, n.Right)
		if n.Depth >= m.dmax {
			m.dmax = n.Depth + 1
		}
	}
	return nil
}

// compileGTree flattens one boosted regression tree. Gradient trees always
// compare the feature as float64 (categorical codes numeric, like the
// interpreter's feature view) and route missing values by the learned
// default direction.
func (m *Model) compileGTree(dst *soaTree, t *boost.GTree) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("empty tree")
	}
	type item struct {
		n     *boost.GNode
		depth int32
	}
	queue := []item{{t.Root, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		n := it.n
		idx := len(dst.kind)
		dst.kind = append(dst.kind, nodeLeaf)
		dst.depth = append(dst.depth, it.depth)
		dst.slot = append(dst.slot, 0)
		dst.thresh = append(dst.thresh, 0)
		dst.left = append(dst.left, 0)
		dst.right = append(dst.right, 0)
		dst.mean = append(dst.mean, n.Weight)
		dst.missLeft = append(dst.missLeft, n.MissingLeft)
		if int(it.depth) >= m.dmax {
			m.dmax = int(it.depth)
		}
		if n.Leaf {
			continue
		}
		col := n.Feature
		if col < 0 || col >= len(m.colSlot) || m.colSlot[col] < 0 {
			return fmt.Errorf("node splits on column %d outside the feature schema", col)
		}
		dst.slot[idx] = m.colSlot[col]
		dst.thresh[idx] = n.Threshold
		if m.colCat[col] {
			dst.kind[idx] = nodeCategorical
		} else {
			dst.kind[idx] = nodeNumeric
		}
		dst.left[idx] = int32(len(dst.kind) + len(queue))
		queue = append(queue, item{n.Left, it.depth + 1})
		dst.right[idx] = int32(len(dst.kind) + len(queue))
		queue = append(queue, item{n.Right, it.depth + 1})
	}
	return nil
}

// route walks one row down a compiled forest tree, stopping at leaves, depth
// truncation, missing values (numeric NaN or categorical missingCode) and
// categorical codes unseen at the node during training — the Appendix D
// semantics of core.Tree.route, over flat arrays.
func (t *soaTree) route(nums []float64, cats []int32, numOff, catOff int, maxDepth int32) int32 {
	n := int32(0)
	for {
		k := t.kind[n]
		if k == nodeLeaf {
			return n
		}
		if maxDepth > 0 && t.depth[n] >= maxDepth {
			return n
		}
		if k == nodeNumeric {
			v := nums[numOff+int(t.slot[n])]
			if v != v { // NaN: missing stops traversal
				return n
			}
			if v <= t.thresh[n] {
				n = t.left[n]
			} else {
				n = t.right[n]
			}
			continue
		}
		c := cats[catOff+int(t.slot[n])]
		w := c >> 6
		if c < 0 || w >= t.setLen[n] {
			return n // missing or unseen level
		}
		off := t.setOff[n]
		bit := uint64(1) << uint(c&63)
		if t.words[off+w]&bit == 0 {
			return n // level not observed at this node during training
		}
		if t.words[off+t.setLen[n]+w]&bit != 0 {
			n = t.left[n]
		} else {
			n = t.right[n]
		}
	}
}

// routeBoost walks one row down a compiled gradient tree: missing values
// follow the learned default direction, every other value is compared as
// float64 (unseen categorical levels keep their -1 code as a value, exactly
// like boost's feature view).
func (t *soaTree) routeBoost(nums []float64, cats []int32, numOff, catOff int) int32 {
	n := int32(0)
	for t.kind[n] != nodeLeaf {
		var v float64
		miss := false
		if t.kind[n] == nodeNumeric {
			v = nums[numOff+int(t.slot[n])]
			miss = v != v
		} else {
			c := cats[catOff+int(t.slot[n])]
			if c == missingCode {
				miss = true
			} else {
				v = float64(c)
			}
		}
		if miss {
			if t.missLeft[n] {
				n = t.left[n]
			} else {
				n = t.right[n]
			}
			continue
		}
		if v <= t.thresh[n] {
			n = t.left[n]
		} else {
			n = t.right[n]
		}
	}
	return n
}

// Predict scores every row of the block into res, truncating forest
// traversal at maxDepth (0 = full depth; ignored for boost models, whose
// internal nodes carry no predictions). The result holds, per row: the class
// code and PMF (classification forests), the class code (boost
// classification) or the value (regression). Zero allocations in steady
// state once res has grown to the block size.
func (m *Model) Predict(b *RowBlock, res *Result, maxDepth int) {
	_ = m.PredictCtx(context.Background(), b, res, maxDepth)
}

// PredictCtx is Predict with cooperative cancellation: between each
// tree × row-block pass it checks ctx and stops early, returning the
// context's error, so a request whose deadline fired (or whose client
// disconnected) releases its serving slot within one tree's worth of work
// instead of scoring the whole forest. The result is unusable after a
// non-nil return. The check is one ctx.Err() call per tree, so the steady
// state stays allocation-free.
func (m *Model) PredictCtx(ctx context.Context, b *RowBlock, res *Result, maxDepth int) error {
	res.grow(b.n, m.numClasses, m.kind == "forest" && !m.regression)
	if m.kind == "forest" {
		if m.regression {
			return m.predictForestValue(ctx, b, res, int32(maxDepth))
		}
		return m.predictForestClass(ctx, b, res, int32(maxDepth))
	}
	if m.regression {
		return m.predictBoostValue(ctx, b, res)
	}
	return m.predictBoostClass(ctx, b, res)
}

// predictForestClass mirrors forest.Forest.PredictPMF followed by the strict
// argmax of model.File.Predict: trees accumulate in member order, the sums
// divide by the tree count, ties break to the lowest class index — so the
// compiled PMFs and classes are bit-identical to the interpreter.
func (m *Model) predictForestClass(ctx context.Context, b *RowBlock, res *Result, maxDepth int32) error {
	nc := m.numClasses
	pmf := res.pmf[:b.n*nc]
	for i := range pmf {
		pmf[i] = 0
	}
	for ti := range m.trees {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := &m.trees[ti]
		for row := 0; row < b.n; row++ {
			n := t.route(b.nums, b.cats, row*b.numStride, row*b.catStride, maxDepth)
			src := t.pmf[int(n)*nc : int(n)*nc+nc]
			dst := pmf[row*nc : row*nc+nc]
			for i, p := range src {
				dst[i] += p
			}
		}
	}
	numTrees := float64(len(m.trees))
	for i := range pmf {
		pmf[i] /= numTrees
	}
	for row := 0; row < b.n; row++ {
		res.classes[row] = argMax(pmf[row*nc : row*nc+nc])
	}
	return nil
}

func (m *Model) predictForestValue(ctx context.Context, b *RowBlock, res *Result, maxDepth int32) error {
	vals := res.values[:b.n]
	for i := range vals {
		vals[i] = 0
	}
	for ti := range m.trees {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := &m.trees[ti]
		for row := 0; row < b.n; row++ {
			n := t.route(b.nums, b.cats, row*b.numStride, row*b.catStride, maxDepth)
			vals[row] += t.mean[n]
		}
	}
	numTrees := float64(len(m.trees))
	for i := range vals {
		vals[i] /= numTrees
	}
	return nil
}

func (m *Model) predictBoostValue(ctx context.Context, b *RowBlock, res *Result) error {
	vals := res.values[:b.n]
	for i := range vals {
		vals[i] = m.boostBase
	}
	// Rounds were flattened in order with group 0 first; regression models
	// only ever have one group.
	for ti := 0; ti < len(m.trees); ti += m.boostGroups {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := &m.trees[ti]
		for row := 0; row < b.n; row++ {
			n := t.routeBoost(b.nums, b.cats, row*b.numStride, row*b.catStride)
			vals[row] += t.mean[n]
		}
	}
	return nil
}

func (m *Model) predictBoostClass(ctx context.Context, b *RowBlock, res *Result) error {
	if m.boostClasses == 1 { // binary logistic: sign of the margin
		vals := res.values[:b.n]
		for i := range vals {
			vals[i] = 0
		}
		for ti := 0; ti < len(m.trees); ti += m.boostGroups {
			if err := ctx.Err(); err != nil {
				return err
			}
			t := &m.trees[ti]
			for row := 0; row < b.n; row++ {
				n := t.routeBoost(b.nums, b.cats, row*b.numStride, row*b.catStride)
				vals[row] += t.mean[n]
			}
		}
		for row := 0; row < b.n; row++ {
			if vals[row] > 0 {
				res.classes[row] = 1
			} else {
				res.classes[row] = 0
			}
		}
		return nil
	}
	// Softmax: scores accumulate in (round, group) order, argmax ties break
	// to the lowest class — matching boost.Model.PredictClass.
	nc := m.boostClasses
	scores := res.pmf[:b.n*nc]
	for i := range scores {
		scores[i] = 0
	}
	for ti := range m.trees {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := &m.trees[ti]
		k := ti % m.boostGroups
		for row := 0; row < b.n; row++ {
			n := t.routeBoost(b.nums, b.cats, row*b.numStride, row*b.catStride)
			scores[row*nc+k] += t.mean[n]
		}
	}
	for row := 0; row < b.n; row++ {
		res.classes[row] = argMax(scores[row*nc : row*nc+nc])
	}
	return nil
}

// argMax returns the index of the strictly largest value, lowest index on
// ties — the tie-break every interpreter path uses.
func argMax(v []float64) int32 {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return int32(best)
}

// --- row blocks ---

// RowBlock is a reusable batch of parsed rows in the model's coordinate
// system: numeric features as float64 (NaN = missing), categorical features
// as int32 codes (missingCode / unseenCode sentinels). Obtain blocks from
// Model.GetBlock and return them with PutBlock; a block is only valid with
// the model that produced it.
type RowBlock struct {
	n         int
	numStride int
	catStride int
	nums      []float64
	cats      []int32
	scratch   []byte // JSON string unescape buffer, reused across requests
}

// Len returns the number of rows currently in the block.
func (b *RowBlock) Len() int { return b.n }

// Reset empties the block, keeping capacity.
func (b *RowBlock) Reset() { b.n = 0 }

// GetBlock returns an empty pooled row block for this model.
func (m *Model) GetBlock() *RowBlock {
	b := m.blockPool.Get().(*RowBlock)
	b.Reset()
	return b
}

// PutBlock returns a block to the model's pool.
func (m *Model) PutBlock(b *RowBlock) {
	if b != nil {
		m.blockPool.Put(b)
	}
}

// GetResult returns a pooled result buffer for this model.
func (m *Model) GetResult() *Result {
	return m.resPool.Get().(*Result)
}

// PutResult returns a result buffer to the model's pool.
func (m *Model) PutResult(r *Result) {
	if r != nil {
		m.resPool.Put(r)
	}
}

// grow ensures one more row of capacity.
func (b *RowBlock) grow() (numOff, catOff int) {
	numOff = b.n * b.numStride
	catOff = b.n * b.catStride
	if need := numOff + b.numStride; need > len(b.nums) {
		b.nums = append(b.nums, make([]float64, need-len(b.nums))...)
	}
	if need := catOff + b.catStride; need > len(b.cats) {
		b.cats = append(b.cats, make([]int32, need-len(b.cats))...)
	}
	b.n++
	return numOff, catOff
}

// AppendRow parses one feature map (name → raw string value) into the block
// using the model's compiled dictionaries. The missing-value conventions
// match model.Schema.ParseRows: absent keys, empty strings, "NA" and "?" are
// missing; categorical values outside the training levels become unseen
// codes. Unknown feature names are ignored, like the interpreter. The one
// divergence: a numeric cell spelled "NaN" is treated as missing here (the
// interpreter stores it as an unflagged NaN value that always routes right).
func (m *Model) AppendRow(b *RowBlock, values map[string]string) error {
	numOff, catOff := b.grow()
	s := &m.schema
	for ci, name := range s.Names {
		slot := m.colSlot[ci]
		if slot < 0 {
			continue // target column: not a prediction input
		}
		raw, ok := values[name]
		raw = strings.TrimSpace(raw)
		missing := !ok || raw == "" || raw == "NA" || raw == "?"
		if m.colCat[ci] {
			code := missingCode
			if !missing {
				var found bool
				if code, found = m.dicts[ci][raw]; !found {
					code = unseenCode
				}
			}
			b.cats[catOff+int(slot)] = code
			continue
		}
		if missing {
			b.nums[numOff+int(slot)] = math.NaN()
			continue
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			b.n--
			return fmt.Errorf("infer: row %d column %q: %q is not numeric", b.n, name, raw)
		}
		b.nums[numOff+int(slot)] = v
	}
	return nil
}

// AppendTableRow copies row r of a schema-shaped table (the column order the
// model was trained on, e.g. one produced by model.Schema.ParseRows) into
// the block. Missing cells follow the table's bitmap.
func (m *Model) AppendTableRow(b *RowBlock, tbl *dataset.Table, r int) error {
	if len(tbl.Cols) != len(m.colSlot) {
		return fmt.Errorf("infer: table has %d columns, schema %d", len(tbl.Cols), len(m.colSlot))
	}
	numOff, catOff := b.grow()
	for ci, col := range tbl.Cols {
		slot := m.colSlot[ci]
		if slot < 0 {
			continue
		}
		if m.colCat[ci] {
			if col.Kind != dataset.Categorical {
				b.n--
				return fmt.Errorf("infer: column %d is %v, schema wants categorical", ci, col.Kind)
			}
			if col.IsMissing(r) {
				b.cats[catOff+int(slot)] = missingCode
			} else {
				b.cats[catOff+int(slot)] = col.Cats[r]
			}
			continue
		}
		if col.Kind != dataset.Numeric {
			b.n--
			return fmt.Errorf("infer: column %d is %v, schema wants numeric", ci, col.Kind)
		}
		if col.IsMissing(r) {
			b.nums[numOff+int(slot)] = math.NaN()
		} else {
			b.nums[numOff+int(slot)] = col.Floats[r]
		}
	}
	return nil
}

// --- results ---

// Result holds Predict's per-row outputs. Buffers are reused across calls;
// accessors index into them without copying.
type Result struct {
	n          int
	numClasses int
	classes    []int32
	pmf        []float64
	values     []float64
}

// grow sizes the buffers for n rows.
func (r *Result) grow(n, numClasses int, wantPMF bool) {
	r.n, r.numClasses = n, numClasses
	if len(r.classes) < n {
		r.classes = append(r.classes, make([]int32, n-len(r.classes))...)
	}
	if len(r.values) < n {
		r.values = append(r.values, make([]float64, n-len(r.values))...)
	}
	if need := n * numClasses; (wantPMF || numClasses > 0) && len(r.pmf) < need {
		r.pmf = append(r.pmf, make([]float64, need-len(r.pmf))...)
	}
}

// Len returns the number of scored rows.
func (r *Result) Len() int { return r.n }

// Class returns row i's predicted class code (classification only).
func (r *Result) Class(i int) int32 { return r.classes[i] }

// PMF returns row i's class distribution (classification forests only). The
// slice aliases the result buffer; read it before the next Predict.
func (r *Result) PMF(i int) []float64 {
	return r.pmf[i*r.numClasses : i*r.numClasses+r.numClasses]
}

// Value returns row i's regression prediction.
func (r *Result) Value(i int) float64 { return r.values[i] }
