package infer

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// TestDecodeRequestCtxCancellation proves a dead context aborts the JSON
// scanner between row checks, and that the context-free path is untouched.
func TestDecodeRequestCtxCancellation(t *testing.T) {
	m, rows := decodeTestModel(t)
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	b := m.GetBlock()
	defer m.PutBlock(b)
	if _, err := m.DecodeRequestCtx(ctx, b, body, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled decode returned %v", err)
	}

	b.Reset()
	if _, err := m.DecodeRequestCtx(context.Background(), b, body, 0); err != nil {
		t.Fatalf("live-context decode failed: %v", err)
	}
	if b.Len() != len(rows) {
		t.Fatalf("decoded %d rows, want %d", b.Len(), len(rows))
	}
}

// TestPredictCtxCancellation proves a dead context aborts inference at a
// tree boundary and a live one scores identically to Predict.
func TestPredictCtxCancellation(t *testing.T) {
	m, rows := decodeTestModel(t)
	b := m.GetBlock()
	defer m.PutBlock(b)
	for _, row := range rows {
		if err := m.AppendRow(b, row); err != nil {
			t.Fatal(err)
		}
	}
	res := m.GetResult()
	defer m.PutResult(res)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.PredictCtx(ctx, b, res, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled predict returned %v", err)
	}

	if err := m.PredictCtx(context.Background(), b, res, 0); err != nil {
		t.Fatalf("live-context predict failed: %v", err)
	}
	want := m.GetResult()
	defer m.PutResult(want)
	m.Predict(b, want, 0)
	for i := 0; i < b.Len(); i++ {
		if res.Class(i) != want.Class(i) {
			t.Fatalf("row %d: PredictCtx class %d != Predict class %d", i, res.Class(i), want.Class(i))
		}
	}
}
