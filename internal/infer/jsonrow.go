package infer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// ErrTooManyRows is wrapped by DecodeRequest when the row cap is exceeded;
// handlers map it to 413.
var ErrTooManyRows = errors.New("too many rows")

// DecodeRequest parses a predict request body straight into the row block —
// the zero-allocation ingest path. The expected shape is
//
//	{"rows":[{"feature":value,...},...], "max_depth":N}
//
// where each cell value may be a JSON string (parsed exactly like
// AppendRow: trimmed, ""/"NA"/"?" missing, dictionaries for categorical
// levels), a JSON number (numeric columns take it directly; categorical
// columns look the literal text up as a level), or null (missing). Unknown
// envelope and feature keys are skipped like encoding/json would. Rows may
// omit features — omitted cells are missing. maxRows <= 0 means unlimited.
//
// Unlike the encoding/json route this never materialises per-row maps:
// feature names and level strings are matched with the compiler's
// zero-copy map-lookup idiom, so steady-state decoding allocates nothing.
func (m *Model) DecodeRequest(b *RowBlock, body []byte, maxRows int) (maxDepth int, err error) {
	return m.DecodeRequestCtx(context.Background(), b, body, maxRows)
}

// decodeCheckEvery is how many rows DecodeRequestCtx parses between context
// checks — coarse enough that the check never shows up in the row loop,
// fine enough that a dead request abandons a large batch mid-parse.
const decodeCheckEvery = 256

// DecodeRequestCtx is DecodeRequest with cooperative cancellation: every
// decodeCheckEvery rows the scanner checks ctx and aborts the parse with
// the context's error, so an expired or disconnected request stops chewing
// through a large body.
func (m *Model) DecodeRequestCtx(ctx context.Context, b *RowBlock, body []byte, maxRows int) (maxDepth int, err error) {
	s := scanner{data: body, scratch: b.scratch, ctx: ctx}
	defer func() { b.scratch = s.scratch }()
	s.ws()
	if err := s.expect('{'); err != nil {
		return 0, err
	}
	sawRows := false
	for {
		s.ws()
		if s.peek() == '}' {
			s.pos++
			break
		}
		key, err := s.string()
		if err != nil {
			return 0, err
		}
		s.ws()
		if err := s.expect(':'); err != nil {
			return 0, err
		}
		s.ws()
		switch {
		case string(key) == "rows":
			sawRows = true
			if err := m.decodeRows(&s, b, maxRows); err != nil {
				return 0, err
			}
		case string(key) == "max_depth":
			n, err := s.number()
			if err != nil {
				return 0, err
			}
			d, perr := strconv.Atoi(string(n))
			if perr != nil {
				return 0, fmt.Errorf("infer: max_depth %q is not an integer", n)
			}
			maxDepth = d
		default:
			if err := s.skipValue(); err != nil {
				return 0, err
			}
		}
		s.ws()
		switch s.peek() {
		case ',':
			s.pos++
		case '}':
			s.pos++
			goto done
		default:
			return 0, s.errAt("expected ',' or '}'")
		}
	}
done:
	if !sawRows {
		return 0, fmt.Errorf("infer: request has no \"rows\"")
	}
	return maxDepth, nil
}

func (m *Model) decodeRows(s *scanner, b *RowBlock, maxRows int) error {
	if err := s.expect('['); err != nil {
		return err
	}
	s.ws()
	if s.peek() == ']' {
		s.pos++
		return nil
	}
	for {
		if maxRows > 0 && b.n >= maxRows {
			return fmt.Errorf("infer: %w (limit %d)", ErrTooManyRows, maxRows)
		}
		if b.n%decodeCheckEvery == 0 && s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("infer: decode aborted at row %d: %w", b.n, err)
			}
		}
		if err := m.decodeRow(s, b); err != nil {
			return err
		}
		s.ws()
		switch s.peek() {
		case ',':
			s.pos++
			s.ws()
		case ']':
			s.pos++
			return nil
		default:
			return s.errAt("expected ',' or ']'")
		}
	}
}

// decodeRow parses one row object. All cells default to missing; keys seen
// in the object overwrite their slot (last duplicate wins, like
// encoding/json).
func (m *Model) decodeRow(s *scanner, b *RowBlock) error {
	row := b.n
	numOff, catOff := b.grow()
	for i := 0; i < b.numStride; i++ {
		b.nums[numOff+i] = math.NaN()
	}
	for i := 0; i < b.catStride; i++ {
		b.cats[catOff+i] = missingCode
	}
	if err := s.expect('{'); err != nil {
		return err
	}
	for {
		s.ws()
		if s.peek() == '}' {
			s.pos++
			return nil
		}
		key, err := s.string()
		if err != nil {
			return err
		}
		ci, known := m.byName[string(key)]
		s.ws()
		if err := s.expect(':'); err != nil {
			return err
		}
		s.ws()
		if !known { // unknown feature: skip its value, like the legacy parser
			if err := s.skipValue(); err != nil {
				return err
			}
		} else if err := m.decodeCell(s, b, row, ci, numOff, catOff); err != nil {
			return err
		}
		s.ws()
		switch s.peek() {
		case ',':
			s.pos++
		case '}':
			s.pos++
			return nil
		default:
			return s.errAt("expected ',' or '}'")
		}
	}
}

func (m *Model) decodeCell(s *scanner, b *RowBlock, row, ci, numOff, catOff int) error {
	name := m.schema.Names[ci]
	slot := int(m.colSlot[ci])
	switch c := s.peek(); {
	case c == '"':
		raw, err := s.string()
		if err != nil {
			return err
		}
		return m.assignRaw(b, row, ci, raw, numOff, catOff)
	case c == 'n':
		if err := s.literal("null"); err != nil {
			return err
		}
		return nil // defaults already say missing
	case c == 't' || c == 'f':
		lit := "true"
		if c == 'f' {
			lit = "false"
		}
		if err := s.literal(lit); err != nil {
			return err
		}
		if m.colCat[ci] {
			return m.assignRaw(b, row, ci, []byte(lit), numOff, catOff)
		}
		return fmt.Errorf("infer: row %d column %q: boolean is not numeric", row, name)
	case c == '{' || c == '[':
		return fmt.Errorf("infer: row %d column %q: cell must be a scalar", row, name)
	default:
		raw, err := s.number()
		if err != nil {
			return err
		}
		if m.colCat[ci] {
			// A bare number for a categorical column names the level by its
			// literal text, same as the quoted form.
			code, found := m.dicts[ci][string(raw)]
			if !found {
				code = unseenCode
			}
			b.cats[catOff+slot] = code
			return nil
		}
		v, perr := strconv.ParseFloat(string(raw), 64)
		if perr != nil {
			return fmt.Errorf("infer: row %d column %q: %q is not numeric", row, name, raw)
		}
		b.nums[numOff+slot] = v
		return nil
	}
}

// assignRaw applies AppendRow's string-cell conventions to one slot.
func (m *Model) assignRaw(b *RowBlock, row, ci int, raw []byte, numOff, catOff int) error {
	slot := int(m.colSlot[ci])
	trimmed := trimBytes(raw)
	if len(trimmed) == 0 || string(trimmed) == "NA" || string(trimmed) == "?" {
		return nil // defaults already say missing
	}
	if m.colCat[ci] {
		code, found := m.dicts[ci][string(trimmed)]
		if !found {
			code = unseenCode
		}
		b.cats[catOff+slot] = code
		return nil
	}
	v, err := strconv.ParseFloat(string(trimmed), 64)
	if err != nil {
		return fmt.Errorf("infer: row %d column %q: %q is not numeric", row, m.schema.Names[ci], trimmed)
	}
	b.nums[numOff+slot] = v
	return nil
}

// trimBytes is strings.TrimSpace over bytes, ASCII fast path first.
func trimBytes(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	if len(b) > 0 && (b[0] >= utf8.RuneSelf || b[len(b)-1] >= utf8.RuneSelf) {
		return []byte(strings.TrimSpace(string(b))) // rare: unicode spaces
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

// scanner is a minimal JSON scanner over a byte slice. It only implements
// what the predict request shape needs; anything else is a parse error with
// a byte offset.
type scanner struct {
	data    []byte
	pos     int
	scratch []byte // unescape buffer, owned by the row block between calls
	ctx     context.Context
}

func (s *scanner) ws() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *scanner) peek() byte {
	if s.pos < len(s.data) {
		return s.data[s.pos]
	}
	return 0
}

func (s *scanner) expect(c byte) error {
	if s.pos >= len(s.data) || s.data[s.pos] != c {
		return s.errAt(fmt.Sprintf("expected %q", c))
	}
	s.pos++
	return nil
}

func (s *scanner) errAt(msg string) error {
	return fmt.Errorf("infer: invalid JSON at byte %d: %s", s.pos, msg)
}

func (s *scanner) literal(lit string) error {
	if s.pos+len(lit) > len(s.data) || string(s.data[s.pos:s.pos+len(lit)]) != lit {
		return s.errAt("expected " + lit)
	}
	s.pos += len(lit)
	return nil
}

// string scans a JSON string and returns its contents. Unescaped strings
// alias the input; escaped ones are decoded into the scratch buffer. The
// returned slice is valid until the next string call.
func (s *scanner) string() ([]byte, error) {
	if err := s.expect('"'); err != nil {
		return nil, err
	}
	start := s.pos
	for s.pos < len(s.data) {
		switch c := s.data[s.pos]; {
		case c == '"':
			out := s.data[start:s.pos]
			s.pos++
			return out, nil
		case c == '\\':
			return s.stringSlow(start)
		case c < 0x20:
			return nil, s.errAt("control character in string")
		default:
			s.pos++
		}
	}
	return nil, s.errAt("unterminated string")
}

// stringSlow finishes a string containing escapes, decoding into scratch.
func (s *scanner) stringSlow(start int) ([]byte, error) {
	s.scratch = append(s.scratch[:0], s.data[start:s.pos]...)
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		switch {
		case c == '"':
			s.pos++
			return s.scratch, nil
		case c < 0x20:
			return nil, s.errAt("control character in string")
		case c != '\\':
			s.scratch = append(s.scratch, c)
			s.pos++
			continue
		}
		s.pos++
		if s.pos >= len(s.data) {
			return nil, s.errAt("unterminated escape")
		}
		e := s.data[s.pos]
		s.pos++
		switch e {
		case '"', '\\', '/':
			s.scratch = append(s.scratch, e)
		case 'b':
			s.scratch = append(s.scratch, '\b')
		case 'f':
			s.scratch = append(s.scratch, '\f')
		case 'n':
			s.scratch = append(s.scratch, '\n')
		case 'r':
			s.scratch = append(s.scratch, '\r')
		case 't':
			s.scratch = append(s.scratch, '\t')
		case 'u':
			r, err := s.hex4()
			if err != nil {
				return nil, err
			}
			if utf16.IsSurrogate(r) {
				if s.pos+1 < len(s.data) && s.data[s.pos] == '\\' && s.data[s.pos+1] == 'u' {
					s.pos += 2
					r2, err := s.hex4()
					if err != nil {
						return nil, err
					}
					r = utf16.DecodeRune(r, r2)
				} else {
					r = utf8.RuneError
				}
			}
			s.scratch = utf8.AppendRune(s.scratch, r)
		default:
			return nil, s.errAt("bad escape")
		}
	}
	return nil, s.errAt("unterminated string")
}

func (s *scanner) hex4() (rune, error) {
	if s.pos+4 > len(s.data) {
		return 0, s.errAt("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := s.data[s.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, s.errAt("bad \\u escape")
		}
	}
	s.pos += 4
	return r, nil
}

// number scans a JSON number and returns its literal bytes.
func (s *scanner) number() ([]byte, error) {
	start := s.pos
	if s.peek() == '-' {
		s.pos++
	}
	digits := 0
	for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
		s.pos++
		digits++
	}
	if digits == 0 {
		return nil, s.errAt("expected a number")
	}
	if s.peek() == '.' {
		s.pos++
		for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
			s.pos++
		}
	}
	if c := s.peek(); c == 'e' || c == 'E' {
		s.pos++
		if c := s.peek(); c == '+' || c == '-' {
			s.pos++
		}
		for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
			s.pos++
		}
	}
	return s.data[start:s.pos], nil
}

// skipValue consumes any JSON value.
func (s *scanner) skipValue() error {
	s.ws()
	switch c := s.peek(); c {
	case '"':
		_, err := s.string()
		return err
	case '{':
		s.pos++
		s.ws()
		if s.peek() == '}' {
			s.pos++
			return nil
		}
		for {
			s.ws()
			if _, err := s.string(); err != nil {
				return err
			}
			s.ws()
			if err := s.expect(':'); err != nil {
				return err
			}
			if err := s.skipValue(); err != nil {
				return err
			}
			s.ws()
			switch s.peek() {
			case ',':
				s.pos++
			case '}':
				s.pos++
				return nil
			default:
				return s.errAt("expected ',' or '}'")
			}
		}
	case '[':
		s.pos++
		s.ws()
		if s.peek() == ']' {
			s.pos++
			return nil
		}
		for {
			if err := s.skipValue(); err != nil {
				return err
			}
			s.ws()
			switch s.peek() {
			case ',':
				s.pos++
			case ']':
				s.pos++
				return nil
			default:
				return s.errAt("expected ',' or ']'")
			}
		}
	case 't':
		return s.literal("true")
	case 'f':
		return s.literal("false")
	case 'n':
		return s.literal("null")
	default:
		_, err := s.number()
		return err
	}
}
