package infer

import (
	"bytes"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/forest"
	"treeserver/internal/model"
	"treeserver/internal/synth"
)

func benchModel(b *testing.B) (*model.File, *Model, []map[string]string) {
	b.Helper()
	spec := synth.Spec{Name: "bench", Rows: 4000, NumNumeric: 6, NumCategorical: 2,
		CatLevels: 8, NumClasses: 3, MissingRate: 0.05, ConceptDepth: 5, Seed: 91}
	train, test := synth.Generate(spec, 0.25)
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: 8, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "bench", f, model.SchemaOf(train)); err != nil {
		b.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Compile(mf)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]map[string]string, 256)
	for r := range rows {
		rows[r] = rowToMap(test, r)
	}
	return mf, m, rows
}

// BenchmarkInterpreterPredict is the legacy path: schema scan parse + pointer
// tree walk, per batch of 256 rows.
func BenchmarkInterpreterPredict(b *testing.B) {
	mf, _, rows := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := mf.Schema.ParseRows(rows)
		if err != nil {
			b.Fatal(err)
		}
		_ = mf.Predict(tbl)
	}
}

// BenchmarkCompiledPredict is the compiled path: dict parse into a pooled
// block + SoA traversal, per batch of 256 rows.
func BenchmarkCompiledPredict(b *testing.B) {
	_, m, rows := benchModel(b)
	block := m.GetBlock()
	res := m.GetResult()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block.Reset()
		for _, row := range rows {
			if err := m.AppendRow(block, row); err != nil {
				b.Fatal(err)
			}
		}
		m.Predict(block, res, 0)
	}
}

// BenchmarkCompiledDepth4 shows the truncation dial's effect on traversal.
func BenchmarkCompiledDepth4(b *testing.B) {
	_, m, rows := benchModel(b)
	block := m.GetBlock()
	for _, row := range rows {
		if err := m.AppendRow(block, row); err != nil {
			b.Fatal(err)
		}
	}
	res := m.GetResult()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(block, res, 4)
	}
}
