package infer

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"treeserver/internal/synth"
)

func decodeTestModel(t *testing.T) (*Model, []map[string]string) {
	t.Helper()
	spec := synth.Spec{Name: "jsonrow", Rows: 900, NumNumeric: 2, NumCategorical: 2,
		CatLevels: 5, NumClasses: 2, MissingRate: 0.15, ConceptDepth: 3, Seed: 81}
	mf, test := trainForestFile(t, spec, 3, 4)
	m, err := Compile(mf)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]map[string]string, test.NumRows())
	for r := range rows {
		rows[r] = rowToMap(test, r)
	}
	return m, rows
}

func blocksEqual(t *testing.T, a, b *RowBlock) {
	t.Helper()
	if a.n != b.n {
		t.Fatalf("row counts %d != %d", a.n, b.n)
	}
	for i := 0; i < a.n*a.numStride; i++ {
		av, bv := a.nums[i], b.nums[i]
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			t.Fatalf("nums[%d]: %v != %v", i, av, bv)
		}
	}
	for i := 0; i < a.n*a.catStride; i++ {
		if a.cats[i] != b.cats[i] {
			t.Fatalf("cats[%d]: %d != %d", i, a.cats[i], b.cats[i])
		}
	}
}

// TestDecodeRequestMatchesAppendRow proves the hand-rolled scanner and the
// map path load bit-identical blocks from the same logical rows.
func TestDecodeRequestMatchesAppendRow(t *testing.T) {
	m, rows := decodeTestModel(t)
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}

	viaMaps := m.GetBlock()
	for _, row := range rows {
		if err := m.AppendRow(viaMaps, row); err != nil {
			t.Fatal(err)
		}
	}
	viaJSON := m.GetBlock()
	depth, err := m.DecodeRequest(viaJSON, body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 0 {
		t.Fatalf("absent max_depth decoded as %d", depth)
	}
	blocksEqual(t, viaMaps, viaJSON)
}

// TestDecodeRequestForms covers the value forms the scanner accepts beyond
// plain strings: native numbers, nulls, booleans for categorical cells,
// escaped strings, unknown keys with nested values, and max_depth.
func TestDecodeRequestForms(t *testing.T) {
	m, _ := decodeTestModel(t)
	names := m.Schema().Names // num0 num1 cat0 cat1 target
	body := `{
		"max_depth": 2,
		"ignored": {"nested": [1, "two", {"three": null}], "b": true},
		"rows": [
			{"` + names[0] + `": 1.25e1, "` + names[1] + `": -0.5, "` + names[2] + `": "L1", "` + names[3] + `": null},
			{"` + names[0] + `": " 3.5 ", "` + names[2] + `": "martian", "unknown": [{}], "` + names[3] + `": true},
			{}
		]
	}`
	b := m.GetBlock()
	depth, err := m.DecodeRequest(b, []byte(body), 0)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 2 {
		t.Fatalf("max_depth = %d", depth)
	}
	if b.Len() != 3 {
		t.Fatalf("rows = %d", b.Len())
	}
	if b.nums[0] != 12.5 || b.nums[1] != -0.5 {
		t.Fatalf("row 0 nums = %v", b.nums[:2])
	}
	if b.cats[0] != 1 { // "L1" unescapes to L1
		t.Fatalf("row 0 cat0 = %d", b.cats[0])
	}
	if b.cats[1] != missingCode { // explicit null
		t.Fatalf("row 0 cat1 = %d", b.cats[1])
	}
	if b.nums[2] != 3.5 { // quoted, padded numeric
		t.Fatalf("row 1 num0 = %v", b.nums[2])
	}
	if !math.IsNaN(b.nums[3]) { // omitted numeric
		t.Fatalf("row 1 num1 = %v", b.nums[3])
	}
	if b.cats[2] != unseenCode { // unknown level
		t.Fatalf("row 1 cat0 = %d", b.cats[2])
	}
	if b.cats[3] != unseenCode { // boolean for a categorical: literal text lookup
		t.Fatalf("row 1 cat1 = %d", b.cats[3])
	}
	for i := 4; i < 6; i++ { // empty row object: all missing
		if !math.IsNaN(b.nums[i]) {
			t.Fatalf("row 2 num = %v", b.nums[i])
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	m, _ := decodeTestModel(t)
	num := m.Schema().Names[0]
	bad := []string{
		``, `[`, `{`, `{"rows":}`, `{"rows":[}`, `{"rows":[{]}`,
		`{"rows":[{"` + num + `": }]}`,
		`{"rows":[{"` + num + `": "abc"}]}`,
		`{"rows":[{"` + num + `": true}]}`,
		`{"rows":[{"` + num + `": [1]}]}`,
		`{"rows":[{"` + num + `": {"a":1}}]}`,
		`{"rows":[{"` + num + `": 1} {"` + num + `": 2}]}`,
		`{"max_depth": 1.5, "rows":[]}`,
		`{"max_depth": 1}`, // rows required
		`{"rows":"nope"}`,
		`{"rows":[{"` + num + `": "\q"}]}`,
		`{"rows":[{"` + num + `": "\u12"}]}`,
	}
	for _, body := range bad {
		b := m.GetBlock()
		if _, err := m.DecodeRequest(b, []byte(body), 0); err == nil {
			t.Errorf("accepted %q", body)
		}
		m.PutBlock(b)
	}
}

func TestDecodeRequestRowCap(t *testing.T) {
	m, _ := decodeTestModel(t)
	body := `{"rows":[{},{},{},{}]}`
	b := m.GetBlock()
	_, err := m.DecodeRequest(b, []byte(body), 2)
	if !errors.Is(err, ErrTooManyRows) {
		t.Fatalf("err = %v, want ErrTooManyRows", err)
	}
	b.Reset()
	if _, err := m.DecodeRequest(b, []byte(body), 4); err != nil {
		t.Fatalf("at the cap: %v", err)
	}
}

// TestDecodeRequestZeroAlloc proves the JSON ingest path allocates nothing
// in steady state — the property that makes the /v1 hot path pool-friendly.
func TestDecodeRequestZeroAlloc(t *testing.T) {
	m, rows := decodeTestModel(t)
	body, err := json.Marshal(map[string]any{"rows": rows[:64], "max_depth": 3})
	if err != nil {
		t.Fatal(err)
	}
	// Include an escape so the scratch path warms up too.
	body = []byte(strings.Replace(string(body), `"L1"`, `"L1"`, 1))
	b := m.GetBlock()
	res := m.GetResult()
	work := func() {
		b.Reset()
		depth, err := m.DecodeRequest(b, body, 100000)
		if err != nil {
			panic(err)
		}
		m.Predict(b, res, depth)
	}
	work()
	if avg := testing.AllocsPerRun(100, work); avg != 0 {
		t.Fatalf("steady-state decode+predict allocates %.1f per request, want 0", avg)
	}
}

// TestDecodeEquivalentPredictions ties it together: a JSON-decoded block
// predicts identically to the interpreter on the same rows.
func TestDecodeEquivalentPredictions(t *testing.T) {
	m, rows := decodeTestModel(t)
	mf, _ := trainForestFile(t, synth.Spec{Name: "jsonrow", Rows: 900, NumNumeric: 2,
		NumCategorical: 2, CatLevels: 5, NumClasses: 2, MissingRate: 0.15,
		ConceptDepth: 3, Seed: 81}, 3, 4)
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	b := m.GetBlock()
	if _, err := m.DecodeRequest(b, body, 0); err != nil {
		t.Fatal(err)
	}
	res := m.GetResult()
	m.Predict(b, res, 0)
	parsed, err := mf.Schema.ParseRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range mf.Predict(parsed) {
		if got := m.Classes()[res.Class(r)]; got != p.Class {
			t.Fatalf("row %d: %q != %q", r, got, p.Class)
		}
	}
}
