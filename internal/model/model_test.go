package model

import (
	"bytes"
	"strconv"
	"testing"

	"treeserver/internal/boost"
	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/synth"
)

func trainedForest(t *testing.T) (*forest.Forest, *dataset.Table, *dataset.Table) {
	t.Helper()
	train, test := synth.Generate(synth.Spec{
		Name: "model", Rows: 3000, NumNumeric: 4, NumCategorical: 2, CatLevels: 4,
		NumClasses: 3, ConceptDepth: 4, Seed: 71,
	}, 0.25)
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: 5, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return f, train, test
}

func TestForestRoundTrip(t *testing.T) {
	f, train, test := trainedForest(t)
	var buf bytes.Buffer
	if err := SaveForest(&buf, "demo", f, SchemaOf(train)); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Kind != "forest" || loaded.Name != "demo" || loaded.Forest == nil {
		t.Fatalf("loaded = %+v", loaded)
	}
	if len(loaded.Forest.Trees) != 5 {
		t.Fatalf("trees = %d", len(loaded.Forest.Trees))
	}
	// Predictions must survive the round trip exactly.
	for r := 0; r < test.NumRows(); r++ {
		if f.PredictClass(test, r, 0) != loaded.Forest.PredictClass(test, r, 0) {
			t.Fatalf("row %d prediction changed", r)
		}
	}
}

func TestBoostRoundTrip(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "mboost", Rows: 3000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 72,
	}, 0.25)
	m, err := boost.Train(train, boost.Config{Rounds: 8, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBoost(&buf, "gbt", m, SchemaOf(train)); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Boost == nil || loaded.Kind != "boost" {
		t.Fatalf("loaded = %+v", loaded)
	}
	for r := 0; r < test.NumRows(); r++ {
		if m.PredictClass(test, r) != loaded.Boost.PredictClass(test, r) {
			t.Fatalf("row %d boost prediction changed", r)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	f, train, _ := trainedForest(t)
	_ = SaveForest(&buf, "x", f, SchemaOf(train))
	truncated := buf.Bytes()[:buf.Len()/2] // payload cut off mid-stream
	if _, err := Load(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	f, train, _ := trainedForest(t)
	path := t.TempDir() + "/m.tsmodel"
	if err := SaveForestFile(path, "file", f, SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "file" {
		t.Fatalf("name = %q", loaded.Name)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestSchemaParseRows(t *testing.T) {
	_, train, _ := trainedForest(t)
	sc := SchemaOf(train)
	rows := []map[string]string{
		{"num0": "1.5", "num1": "0", "num2": "-2", "num3": "3", "cat0": "L1", "cat1": "L2"},
		{"num0": "", "cat0": "NEVER_SEEN", "cat1": "L0"}, // missing + unseen
	}
	tbl, err := sc.ParseRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if got := tbl.ColumnByName("num0").Float(0); got != 1.5 {
		t.Fatalf("num0 = %g", got)
	}
	if !tbl.ColumnByName("num0").IsMissing(1) {
		t.Fatal("empty value not missing")
	}
	if !tbl.ColumnByName("num1").IsMissing(1) {
		t.Fatal("absent key not missing")
	}
	if got := tbl.ColumnByName("cat0").Cat(0); got != 1 {
		t.Fatalf("cat0 = %d, want code for L1", got)
	}
	if got := tbl.ColumnByName("cat0").Cat(1); got != -1 {
		t.Fatalf("unseen level code = %d, want -1", got)
	}
}

func TestSchemaParseRowsBadNumeric(t *testing.T) {
	_, train, _ := trainedForest(t)
	sc := SchemaOf(train)
	if _, err := sc.ParseRows([]map[string]string{{"num0": "abc"}}); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestPredictThroughFile(t *testing.T) {
	f, train, test := trainedForest(t)
	var buf bytes.Buffer
	_ = SaveForest(&buf, "p", f, SchemaOf(train))
	loaded, _ := Load(&buf)

	// Rebuild a request from test rows and compare predictions.
	rows := make([]map[string]string, 5)
	for r := range rows {
		rows[r] = map[string]string{}
		for ci, c := range test.Cols {
			if ci == test.Target {
				continue
			}
			if c.Kind == dataset.Numeric {
				rows[r][c.Name] = fmtFloat(c.Float(r))
			} else {
				rows[r][c.Name] = c.Levels[c.Cat(r)]
			}
		}
	}
	tbl, err := loaded.Schema.ParseRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	preds := loaded.Predict(tbl)
	for r, p := range preds {
		want := loaded.Schema.TargetLevels()[f.PredictClass(test, r, 0)]
		if p.Class != want {
			t.Fatalf("row %d predicted %q, direct %q", r, p.Class, want)
		}
		if len(p.PMF) != 3 {
			t.Fatalf("row %d pmf = %v", r, p.PMF)
		}
	}
}

func TestUnseenCategoricalStopsEarlyNotCrash(t *testing.T) {
	f, train, _ := trainedForest(t)
	var buf bytes.Buffer
	_ = SaveForest(&buf, "u", f, SchemaOf(train))
	loaded, _ := Load(&buf)
	tbl, err := loaded.Schema.ParseRows([]map[string]string{{
		"num0": "0", "num1": "0", "num2": "0", "num3": "0",
		"cat0": "ALIEN", "cat1": "ALIEN",
	}})
	if err != nil {
		t.Fatal(err)
	}
	preds := loaded.Predict(tbl)
	if preds[0].Class == "" {
		t.Fatal("no prediction for unseen categorical values")
	}
}

func TestSchemaHelpers(t *testing.T) {
	_, train, _ := trainedForest(t)
	sc := SchemaOf(train)
	if sc.Regression() {
		t.Fatal("classification schema marked regression")
	}
	if len(sc.FeatureNames()) != 6 {
		t.Fatalf("features = %v", sc.FeatureNames())
	}
	if len(sc.TargetLevels()) != 3 {
		t.Fatalf("classes = %v", sc.TargetLevels())
	}
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
