// Package model provides persistence and serving for trained TreeServer
// models. A model file carries a versioned header, the table schema the
// model was trained on (column names, kinds and categorical level codings —
// required to parse prediction inputs consistently), and the model payload:
// a forest (which covers single decision trees) or a boosted ensemble.
//
// Fig. 2 of the paper shows the master writing "Model Output Files"
// consumed by client queries; this package is that interface.
package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"treeserver/internal/boost"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
)

// FormatVersion is bumped on incompatible file layout changes.
const FormatVersion = 1

// magic identifies TreeServer model files.
const magic = "TSMODEL"

// Schema captures the training table's column metadata, the contract
// prediction inputs must be parsed against.
type Schema struct {
	Names  []string
	Kinds  []dataset.Kind
	Levels [][]string
	Target int
}

// SchemaOf extracts the schema from a training table.
func SchemaOf(t *dataset.Table) Schema {
	s := Schema{Target: t.Target}
	for _, c := range t.Cols {
		s.Names = append(s.Names, c.Name)
		s.Kinds = append(s.Kinds, c.Kind)
		s.Levels = append(s.Levels, c.Levels)
	}
	return s
}

// NumCols returns the column count including the target.
func (s Schema) NumCols() int { return len(s.Names) }

// FeatureNames returns the non-target column names in order.
func (s Schema) FeatureNames() []string {
	out := make([]string, 0, s.NumCols()-1)
	for i, n := range s.Names {
		if i != s.Target {
			out = append(out, n)
		}
	}
	return out
}

// TargetLevels returns the class label names (nil for regression).
func (s Schema) TargetLevels() []string { return s.Levels[s.Target] }

// Regression reports whether the target is numeric.
func (s Schema) Regression() bool { return s.Kinds[s.Target] == dataset.Numeric }

// File is a loaded model file. Exactly one of Forest or Boost is set.
type File struct {
	Version int
	Kind    string // "forest" or "boost"
	Name    string
	Schema  Schema
	Forest  *forest.Forest
	Boost   *boost.Model
}

type header struct {
	Magic   string
	Version int
	Kind    string
	Name    string
	Schema  Schema
}

// SaveForest writes a forest (or single tree wrapped in a one-tree forest)
// with its training schema.
func SaveForest(w io.Writer, name string, f *forest.Forest, schema Schema) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: FormatVersion, Kind: "forest", Name: name, Schema: schema}); err != nil {
		return fmt.Errorf("model: writing header: %w", err)
	}
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("model: writing forest: %w", err)
	}
	return nil
}

// SaveBoost writes a boosted model with its training schema.
func SaveBoost(w io.Writer, name string, m *boost.Model, schema Schema) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: FormatVersion, Kind: "boost", Name: name, Schema: schema}); err != nil {
		return fmt.Errorf("model: writing header: %w", err)
	}
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("model: writing boost model: %w", err)
	}
	return nil
}

// Load reads any TreeServer model file.
func Load(r io.Reader) (*File, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("model: reading header: %w", err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("model: not a TreeServer model file (magic %q)", h.Magic)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("model: unsupported version %d (want %d)", h.Version, FormatVersion)
	}
	f := &File{Version: h.Version, Kind: h.Kind, Name: h.Name, Schema: h.Schema}
	switch h.Kind {
	case "forest":
		f.Forest = &forest.Forest{}
		if err := dec.Decode(f.Forest); err != nil {
			return nil, fmt.Errorf("model: reading forest: %w", err)
		}
	case "boost":
		f.Boost = &boost.Model{}
		if err := dec.Decode(f.Boost); err != nil {
			return nil, fmt.Errorf("model: reading boost model: %w", err)
		}
	default:
		return nil, fmt.Errorf("model: unknown model kind %q", h.Kind)
	}
	return f, nil
}

// SaveForestFile / LoadFile are path conveniences.
func SaveForestFile(path, name string, f *forest.Forest, schema Schema) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: creating %s: %w", path, err)
	}
	defer out.Close()
	return SaveForest(out, name, f, schema)
}

// LoadFile loads a model from a path.
func LoadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: opening %s: %w", path, err)
	}
	defer in.Close()
	return Load(in)
}

// unseenCode marks a categorical value absent from the training coding; the
// tree's SeenCodes check stops prediction at the current node for it
// (Appendix D's unseen-value handling).
const unseenCode = -1

// ParseRow converts one feature map (name -> raw string value) into a
// single-row table in the schema's coordinate system. Missing keys and
// empty values become missing cells; unknown categorical values get a code
// the trees treat as unseen.
func (s Schema) ParseRow(values map[string]string) (*dataset.Table, error) {
	return s.ParseRows([]map[string]string{values})
}

// ParseRows converts feature maps into a prediction table.
func (s Schema) ParseRows(rows []map[string]string) (*dataset.Table, error) {
	cols := make([]*dataset.Column, s.NumCols())
	for ci := range s.Names {
		if s.Kinds[ci] == dataset.Numeric {
			cols[ci] = dataset.NewNumeric(s.Names[ci], make([]float64, len(rows)))
		} else {
			cols[ci] = dataset.NewCategorical(s.Names[ci], make([]int32, len(rows)), s.Levels[ci])
		}
	}
	for ri, row := range rows {
		for ci, name := range s.Names {
			if ci == s.Target {
				// Target values are optional in prediction inputs; fill a
				// placeholder so the table stays structurally valid.
				if s.Kinds[ci] == dataset.Categorical {
					cols[ci].Cats[ri] = 0
				}
				continue
			}
			raw, ok := row[name]
			raw = strings.TrimSpace(raw)
			if !ok || raw == "" || raw == "NA" || raw == "?" {
				cols[ci].SetMissing(ri)
				continue
			}
			if s.Kinds[ci] == dataset.Numeric {
				v, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return nil, fmt.Errorf("model: row %d column %q: %q is not numeric", ri, name, raw)
				}
				cols[ci].Floats[ri] = v
				continue
			}
			code := int32(unseenCode)
			for li, level := range s.Levels[ci] {
				if level == raw {
					code = int32(li)
				}
			}
			cols[ci].Cats[ri] = code
		}
	}
	return &dataset.Table{Cols: cols, Target: s.Target}, nil
}

// Prediction is one scored row.
type Prediction struct {
	Class string    `json:"class,omitempty"`
	PMF   []float64 `json:"pmf,omitempty"`
	Value float64   `json:"value,omitempty"`
}

// Predict scores parsed rows with whichever model the file holds.
func (f *File) Predict(tbl *dataset.Table) []Prediction {
	out := make([]Prediction, tbl.NumRows())
	for r := range out {
		switch {
		case f.Forest != nil && f.Schema.Regression():
			out[r].Value = f.Forest.PredictValue(tbl, r, 0)
		case f.Forest != nil:
			pmf := f.Forest.PredictPMF(tbl, r, 0)
			class := int32(0)
			for i, p := range pmf {
				if p > pmf[class] {
					class = int32(i)
				}
			}
			out[r].Class = f.Schema.TargetLevels()[class]
			out[r].PMF = pmf
		case f.Boost != nil && f.Schema.Regression():
			out[r].Value = f.Boost.PredictValue(tbl, r)
		case f.Boost != nil:
			out[r].Class = f.Schema.TargetLevels()[f.Boost.PredictClass(tbl, r)]
		}
	}
	return out
}
