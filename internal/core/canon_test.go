package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"treeserver/internal/dataset"
)

func copyNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := *n
	if n.Cond != nil {
		cond := *n.Cond
		cond.LeftSet = append([]int32(nil), n.Cond.LeftSet...)
		c.Cond = &cond
	}
	c.SeenCodes = append([]int32(nil), n.SeenCodes...)
	c.PMF = append([]float64(nil), n.PMF...)
	c.Left = copyNode(n.Left)
	c.Right = copyNode(n.Right)
	return &c
}

func copyTree(t *Tree) *Tree {
	c := *t
	c.Root = copyNode(t.Root)
	return &c
}

// TestCanonProperty: an exact copy of any random tree canonicalizes to the
// same string and diffs empty; Equal agrees.
func TestCanonProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := &Tree{Root: randomTree(rng, 0), Task: dataset.Classification, NumClasses: 3}
		cp := copyTree(tree)
		return tree.Canon() == cp.Canon() && DiffTrees(tree, cp) == "" && tree.Equal(cp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonIsBitExact: a one-ULP perturbation anywhere must change the
// canonical form — %v-style rounding would mask it.
func TestCanonIsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree := &Tree{Root: randomTree(rng, 0), Task: dataset.Classification, NumClasses: 3}
	cp := copyTree(tree)
	cp.Root.Mean = math.Nextafter(cp.Root.Mean, math.Inf(1))
	if tree.Canon() == cp.Canon() {
		t.Fatal("one-ULP mean change left Canon unchanged")
	}
	if d := DiffTrees(tree, cp); d == "" || !strings.Contains(d, "node .") {
		t.Fatalf("diff %q should name the root node", d)
	}
	// Negative zero is not zero.
	a := &Tree{Root: &Node{N: 1, Mean: 0}}
	b := &Tree{Root: &Node{N: 1, Mean: math.Copysign(0, -1)}}
	if DiffTrees(a, b) == "" {
		t.Fatal("0 and -0 canonicalize identically")
	}
}

// TestDiffTreesPinpointsFirstDivergentNode: the diff must name the path of
// the first pre-order divergence, not just report inequality.
func TestDiffTreesPinpointsFirstDivergentNode(t *testing.T) {
	leaf := func(n int) *Node { return &Node{N: n, Depth: 2} }
	build := func() *Tree {
		return &Tree{Root: &Node{
			N: 4, Depth: 0,
			Left:  &Node{N: 2, Depth: 1, Left: leaf(1), Right: leaf(1)},
			Right: &Node{N: 2, Depth: 1, Left: leaf(1), Right: leaf(1)},
		}}
	}
	a, b := build(), build()
	b.Root.Right.Left.Mean = 1.5
	d := DiffTrees(a, b)
	if !strings.Contains(d, "node RL") {
		t.Fatalf("diff %q should name node RL", d)
	}
	// Structural divergence: a child missing on one side.
	c := build()
	c.Root.Left.Right = nil
	if d := DiffTrees(a, c); !strings.Contains(d, "node LR") || !strings.Contains(d, "present in one tree only") {
		t.Fatalf("diff %q should report LR present in one tree only", d)
	}
	// PMF differences are caught even though Tree.Equal ignores them.
	e := build()
	e.Root.Left.PMF = []float64{0.25, 0.75}
	f := copyTree(e)
	f.Root.Left.PMF = []float64{0.75, 0.25}
	if !e.Equal(f) {
		t.Fatal("sanity: Equal ignores PMF")
	}
	if d := DiffTrees(e, f); !strings.Contains(d, "node L") {
		t.Fatalf("diff %q should catch PMF divergence at L", d)
	}
}

// TestCanonHeaderMismatch: task/class metadata differences are reported
// before any node walk.
func TestCanonHeaderMismatch(t *testing.T) {
	a := &Tree{Root: &Node{N: 1}, Task: dataset.Classification, NumClasses: 2}
	b := &Tree{Root: &Node{N: 1}, Task: dataset.Classification, NumClasses: 3}
	if d := DiffTrees(a, b); !strings.Contains(d, "header differs") {
		t.Fatalf("diff %q should report header mismatch", d)
	}
	if d := DiffTrees(nil, a); d == "" {
		t.Fatal("nil vs tree must diff")
	}
	if d := DiffTrees(nil, nil); d != "" {
		t.Fatalf("nil vs nil diffs: %q", d)
	}
}
