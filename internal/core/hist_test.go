package core

import (
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
	"treeserver/internal/synth"
)

// TestTrainLocalHistSaturated: with HistMaxBins large enough that every
// distinct numeric value gets its own bin, the serial histogram splitter and
// the exact sweep walk the same gaps — structure, partitions and predictions
// must coincide, though a subset node's threshold may sit elsewhere in the
// same gap.
func TestTrainLocalHistSaturated(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "hist-serial", Rows: 1200, NumNumeric: 4, NumCategorical: 2,
		CatLevels: 4, NumClasses: 3, ConceptDepth: 4, LabelNoise: 0.05, Seed: 81,
	})
	rows := dataset.AllRows(tbl.NumRows())
	params := Defaults()
	params.MaxDepth = 7

	exact := TrainLocal(tbl, rows, params)
	params.HistMaxBins = 4096
	hist := TrainLocal(tbl, rows, params)

	if hist.NumNodes != exact.NumNodes || hist.MaxDepth != exact.MaxDepth {
		t.Fatalf("shape differs: %d nodes depth %d vs %d nodes depth %d",
			hist.NumNodes, hist.MaxDepth, exact.NumNodes, exact.MaxDepth)
	}
	var histPred, exactPred []int32
	for r := 0; r < tbl.NumRows(); r++ {
		histPred = append(histPred, hist.PredictClass(tbl, r, 0))
		exactPred = append(exactPred, exact.PredictClass(tbl, r, 0))
	}
	if metrics.Accuracy(histPred, exactPred) != 1 {
		t.Fatal("saturated hist predictions differ from exact")
	}
}

// TestTrainLocalHistCoarseDeterministicAndClose: coarse bins must be
// deterministic run to run and stay close to exact accuracy on training data.
func TestTrainLocalHistCoarseDeterministicAndClose(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "hist-serial-coarse", Rows: 3000, NumNumeric: 6,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 82,
	})
	rows := dataset.AllRows(tbl.NumRows())
	params := Defaults()
	params.MaxDepth = 8
	params.HistMaxBins = 32

	first := TrainLocal(tbl, rows, params)
	second := TrainLocal(tbl, rows, params)
	if !first.Equal(second) {
		t.Fatal("serial hist training is not deterministic")
	}

	exactParams := params
	exactParams.HistMaxBins = 0
	exact := TrainLocal(tbl, rows, exactParams)
	truth := make([]int32, tbl.NumRows())
	for r := range truth {
		truth[r] = tbl.Y().Cats[r]
	}
	var histPred, exactPred []int32
	for r := 0; r < tbl.NumRows(); r++ {
		histPred = append(histPred, first.PredictClass(tbl, r, 0))
		exactPred = append(exactPred, exact.PredictClass(tbl, r, 0))
	}
	histAcc := metrics.Accuracy(histPred, truth)
	exactAcc := metrics.Accuracy(exactPred, truth)
	if histAcc < exactAcc-0.02 {
		t.Fatalf("hist accuracy %.4f trails exact %.4f by more than 2%%", histAcc, exactAcc)
	}
}
