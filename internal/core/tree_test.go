package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/metrics"
	"treeserver/internal/synth"
)

func trainTestSplit(t *testing.T, spec synth.Spec) (*dataset.Table, *dataset.Table) {
	t.Helper()
	train, test := synth.Generate(spec, 0.25)
	return train, test
}

func classify(tr *Tree, tbl *dataset.Table, maxDepth int) []int32 {
	out := make([]int32, tbl.NumRows())
	for r := range out {
		out[r] = tr.PredictClass(tbl, r, maxDepth)
	}
	return out
}

func actualClasses(tbl *dataset.Table) []int32 {
	return tbl.Y().Cats
}

func TestTrainLocalLearnsConcept(t *testing.T) {
	train, test := trainTestSplit(t, synth.Spec{
		Name: "basic", Rows: 4000, NumNumeric: 8, NumCategorical: 2,
		NumClasses: 3, ConceptDepth: 4, LabelNoise: 0, Seed: 1,
	})
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	acc := metrics.Accuracy(classify(tree, test, 0), actualClasses(test))
	if acc < 0.9 {
		t.Fatalf("test accuracy %.3f too low for a noiseless depth-4 concept", acc)
	}
	trainAcc := metrics.Accuracy(classify(tree, train, 0), actualClasses(train))
	if trainAcc < acc-1e-9 {
		t.Fatalf("train accuracy %.3f below test accuracy %.3f", trainAcc, acc)
	}
}

func TestTrainLocalRegression(t *testing.T) {
	train, test := trainTestSplit(t, synth.Spec{
		Name: "reg", Rows: 4000, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 0, ConceptDepth: 3, LabelNoise: 0.1, Seed: 2,
	})
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	if tree.Task != dataset.Regression {
		t.Fatal("task not regression")
	}
	pred := make([]float64, test.NumRows())
	actual := make([]float64, test.NumRows())
	for r := range pred {
		pred[r] = tree.PredictValue(test, r, 0)
		actual[r] = test.Y().Float(r)
	}
	rmse := metrics.RMSE(pred, actual)
	// Leaves of the planted concept are N(0,10) with 0.1 noise; a fitted tree
	// should get within a small multiple of the noise floor.
	if rmse > 2.0 {
		t.Fatalf("rmse %.3f too high", rmse)
	}
}

func TestLeafConditions(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	y := dataset.NewCategorical("y", []int32{0, 1, 0, 1, 0, 1, 0, 1}, []string{"a", "b"})
	tbl := dataset.MustNewTable([]*dataset.Column{x, y}, 1)

	// MaxDepth = 1 allows exactly one split.
	p := Defaults()
	p.MaxDepth = 1
	tree := TrainLocal(tbl, dataset.AllRows(8), p)
	if tree.MaxDepth > 1 {
		t.Fatalf("max depth %d exceeds dmax 1", tree.MaxDepth)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("root should split at dmax=1")
	}
	if !tree.Root.Left.IsLeaf() || !tree.Root.Right.IsLeaf() {
		t.Fatal("children must be leaves at dmax=1")
	}

	// MinLeaf = 8 stops immediately.
	p = Defaults()
	p.MinLeaf = 8
	tree = TrainLocal(tbl, dataset.AllRows(8), p)
	if !tree.Root.IsLeaf() {
		t.Fatal("root should be a leaf when |Dx| <= MinLeaf")
	}

	// Pure node stops.
	pureY := dataset.NewCategorical("y", []int32{1, 1, 1, 1, 1, 1, 1, 1}, []string{"a", "b"})
	pureTbl := dataset.MustNewTable([]*dataset.Column{x, pureY}, 1)
	tree = TrainLocal(pureTbl, dataset.AllRows(8), Defaults())
	if !tree.Root.IsLeaf() || tree.Root.Class != 1 {
		t.Fatal("pure node must be a leaf predicting its class")
	}
}

func TestInternalNodesCarryPredictions(t *testing.T) {
	train, _ := trainTestSplit(t, synth.Spec{
		Name: "pmf", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 3,
	})
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	tree.Walk(func(n *Node) {
		if n.PMF == nil {
			t.Fatalf("node %d (leaf=%v) has no PMF", n.ID, n.IsLeaf())
		}
		sum := 0.0
		for _, p := range n.PMF {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("node %d PMF sums to %g", n.ID, sum)
		}
	})
}

func TestTruncatedDepthPrediction(t *testing.T) {
	// Appendix D: a tree trained with dmax can predict as any shallower tree.
	train, test := trainTestSplit(t, synth.Spec{
		Name: "trunc", Rows: 3000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 5, Seed: 4,
	})
	full := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	// Accuracy at depth 1 should be <= accuracy at full depth (on train at least).
	a1 := metrics.Accuracy(classify(full, train, 1), actualClasses(train))
	aFull := metrics.Accuracy(classify(full, train, 0), actualClasses(train))
	if a1 > aFull+1e-9 {
		t.Fatalf("depth-1 accuracy %.3f exceeds full %.3f on training data", a1, aFull)
	}
	// Truncation at a huge depth equals no truncation.
	for r := 0; r < test.NumRows(); r++ {
		if full.PredictClass(test, r, 99) != full.PredictClass(test, r, 0) {
			t.Fatal("maxDepth larger than tree changed predictions")
		}
	}
}

func TestMissingValueStopsAtNode(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 10, 11, 12})
	y := dataset.NewCategorical("y", []int32{0, 0, 0, 1, 1, 1}, []string{"a", "b"})
	tbl := dataset.MustNewTable([]*dataset.Column{x, y}, 1)
	tree := TrainLocal(tbl, dataset.AllRows(6), Defaults())
	if tree.Root.IsLeaf() {
		t.Fatal("expected a split")
	}
	// A test table with a missing x must receive the root's majority class.
	tx := dataset.NewNumeric("x", []float64{0})
	tx.SetMissing(0)
	ty := dataset.NewCategorical("y", []int32{0}, []string{"a", "b"})
	testTbl := dataset.MustNewTable([]*dataset.Column{tx, ty}, 1)
	got := tree.PredictClass(testTbl, 0, 0)
	if got != tree.Root.Class {
		t.Fatalf("missing value routed past root: got %d, want %d", got, tree.Root.Class)
	}
}

func TestUnseenCategoricalStopsAtNode(t *testing.T) {
	col := dataset.NewCategorical("c", []int32{0, 0, 1, 1}, []string{"a", "b", "zz"})
	y := dataset.NewCategorical("y", []int32{0, 0, 1, 1}, []string{"n", "p"})
	tbl := dataset.MustNewTable([]*dataset.Column{col, y}, 1)
	tree := TrainLocal(tbl, dataset.AllRows(4), Defaults())
	if tree.Root.IsLeaf() {
		t.Fatal("expected a split on c")
	}
	// Level "zz" (code 2) never appeared in training.
	tc := dataset.NewCategorical("c", []int32{2}, []string{"a", "b", "zz"})
	ty := dataset.NewCategorical("y", []int32{0}, []string{"n", "p"})
	testTbl := dataset.MustNewTable([]*dataset.Column{tc, ty}, 1)
	if got := tree.PredictClass(testTbl, 0, 0); got != tree.Root.Class {
		t.Fatalf("unseen level routed past root: got %d want %d", got, tree.Root.Class)
	}
}

func TestCandidateColumnRestriction(t *testing.T) {
	// Only column 1 is allowed; the tree must never split on column 0.
	train, _ := trainTestSplit(t, synth.Spec{
		Name: "restrict", Rows: 1000, NumNumeric: 3, NumClasses: 2, ConceptDepth: 3, Seed: 5,
	})
	p := Defaults()
	p.Candidates = []int{1}
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), p)
	tree.Walk(func(n *Node) {
		if n.Cond != nil && n.Cond.Col != 1 {
			t.Fatalf("node %d split on column %d outside C", n.ID, n.Cond.Col)
		}
	})
}

func TestExtraTreesDeterministicAndValid(t *testing.T) {
	train, test := trainTestSplit(t, synth.Spec{
		Name: "xt", Rows: 3000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 6,
	})
	p := Defaults()
	p.ExtraTrees = true
	p.Seed = 42
	a := TrainLocal(train, dataset.AllRows(train.NumRows()), p)
	b := TrainLocal(train, dataset.AllRows(train.NumRows()), p)
	if !a.Equal(b) {
		t.Fatal("same seed produced different extra-trees")
	}
	p.Seed = 43
	c := TrainLocal(train, dataset.AllRows(train.NumRows()), p)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical extra-trees")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid extra-tree: %v", err)
	}
	acc := metrics.Accuracy(classify(a, test, 0), actualClasses(test))
	if acc < 0.55 { // far better than the 0.5 baseline even with random splits
		t.Fatalf("extra-tree accuracy %.3f barely above chance", acc)
	}
}

func TestTrainWithMissingFeatures(t *testing.T) {
	train, test := trainTestSplit(t, synth.Spec{
		Name: "miss", Rows: 3000, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, MissingRate: 0.1, ConceptDepth: 4, Seed: 7,
	})
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	acc := metrics.Accuracy(classify(tree, test, 0), actualClasses(test))
	if acc < 0.7 {
		t.Fatalf("accuracy %.3f too low with 10%% missing", acc)
	}
}

func TestTreeSerializationRoundTrip(t *testing.T) {
	train, test := trainTestSplit(t, synth.Spec{
		Name: "ser", Rows: 2000, NumNumeric: 4, NumCategorical: 2,
		NumClasses: 3, ConceptDepth: 4, Seed: 8,
	})
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tree); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Tree
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !tree.Equal(&back) {
		t.Fatal("round-trip tree differs")
	}
	for r := 0; r < test.NumRows(); r++ {
		if tree.PredictClass(test, r, 0) != back.PredictClass(test, r, 0) {
			t.Fatalf("row %d prediction changed after round-trip", r)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded tree invalid: %v", err)
	}
}

func TestTreeEqualDetectsDifferences(t *testing.T) {
	train, _ := trainTestSplit(t, synth.Spec{
		Name: "eq", Rows: 1000, NumNumeric: 4, NumClasses: 2, ConceptDepth: 3, Seed: 9,
	})
	a := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	p := Defaults()
	p.MaxDepth = 2
	b := TrainLocal(train, dataset.AllRows(train.NumRows()), p)
	if a.Equal(b) {
		t.Fatal("Equal failed to detect different trees")
	}
	if !a.Equal(a) {
		t.Fatal("Equal failed on identical tree")
	}
}

func TestLeavesAndWalkCounts(t *testing.T) {
	train, _ := trainTestSplit(t, synth.Spec{
		Name: "walk", Rows: 1000, NumNumeric: 4, NumClasses: 2, ConceptDepth: 3, Seed: 10,
	})
	tree := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	visited := 0
	tree.Walk(func(*Node) { visited++ })
	if visited != tree.NumNodes {
		t.Fatalf("walked %d nodes, NumNodes says %d", visited, tree.NumNodes)
	}
	// Binary tree: leaves = internal + 1.
	if tree.Leaves() != (tree.NumNodes-tree.Leaves())+1 {
		t.Fatalf("leaf/internal imbalance: %d leaves of %d nodes", tree.Leaves(), tree.NumNodes)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train, _ := trainTestSplit(t, synth.Spec{
		Name: "det", Rows: 2000, NumNumeric: 5, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 4, Seed: 11,
	})
	a := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	b := TrainLocal(train, dataset.AllRows(train.NumRows()), Defaults())
	if !a.Equal(b) {
		t.Fatal("deterministic training produced different trees")
	}
}

func TestSubsetTraining(t *testing.T) {
	// Training on a row subset must behave like training on a gathered table.
	train, _ := trainTestSplit(t, synth.Spec{
		Name: "subset", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 12,
	})
	rng := rand.New(rand.NewSource(1))
	rows := make([]int32, 0, 700)
	for r := 0; r < train.NumRows(); r++ {
		if rng.Intn(3) == 0 {
			rows = append(rows, int32(r))
		}
	}
	onSubset := TrainLocal(train, rows, Defaults())
	gathered := train.Gather(rows)
	onGathered := TrainLocal(gathered, dataset.AllRows(gathered.NumRows()), Defaults())
	if !onSubset.Equal(onGathered) {
		t.Fatal("subset training differs from gathered-table training")
	}
}

func TestSeenCodes(t *testing.T) {
	col := dataset.NewCategorical("c", []int32{2, 0, 2, 1}, []string{"a", "b", "c", "d"})
	col.SetMissing(3)
	got := SeenCodes(col, []int32{0, 1, 2, 3})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("seen codes = %v, want [0 2]", got)
	}
	num := dataset.NewNumeric("x", []float64{1})
	if SeenCodes(num, []int32{0}) != nil {
		t.Fatal("numeric column must have nil seen codes")
	}
}

func TestMeasureForcedForRegression(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 4})
	y := dataset.NewNumeric("y", []float64{1, 1, 5, 5})
	tbl := dataset.MustNewTable([]*dataset.Column{x, y}, 1)
	p := Defaults()
	p.Measure = impurity.Gini // wrong on purpose; trainer must switch to variance
	tree := TrainLocal(tbl, dataset.AllRows(4), p)
	if tree.Root.IsLeaf() {
		t.Fatal("regression tree failed to split")
	}
}
