package core

import (
	"fmt"
	"strings"

	"treeserver/internal/dataset"
)

// Format renders a tree as indented text using the table's column names and
// categorical level labels — the human-readable view of a trained model
// (compare the paper's Fig. 1(b)).
//
// Classification leaves show the majority class with its probability;
// regression leaves show the mean. Internal nodes also carry predictions
// (Appendix D) but only their conditions are printed.
func Format(t *Tree, tbl *dataset.Table) string {
	var b strings.Builder
	var rec func(n *Node, indent string)
	rec = func(n *Node, indent string) {
		if n.IsLeaf() {
			if t.Task == dataset.Classification {
				label := "?"
				p := 0.0
				if n.Class >= 0 && int(n.Class) < len(tbl.Y().Levels) {
					label = tbl.Y().Levels[n.Class]
					if n.PMF != nil {
						p = n.PMF[n.Class]
					}
				}
				fmt.Fprintf(&b, "%s-> %s (p=%.2f, n=%d)\n", indent, label, p, n.N)
			} else {
				fmt.Fprintf(&b, "%s-> %.4g (n=%d)\n", indent, n.Mean, n.N)
			}
			return
		}
		col := tbl.Cols[n.Cond.Col]
		if n.Cond.Kind == dataset.Numeric {
			fmt.Fprintf(&b, "%s%s <= %g?\n", indent, col.Name, n.Cond.Threshold)
		} else {
			names := make([]string, len(n.Cond.LeftSet))
			for i, code := range n.Cond.LeftSet {
				if int(code) < len(col.Levels) {
					names[i] = col.Levels[code]
				} else {
					names[i] = fmt.Sprint(code)
				}
			}
			fmt.Fprintf(&b, "%s%s in {%s}?\n", indent, col.Name, strings.Join(names, ", "))
		}
		fmt.Fprintf(&b, "%syes:\n", indent)
		rec(n.Left, indent+"  ")
		fmt.Fprintf(&b, "%sno:\n", indent)
		rec(n.Right, indent+"  ")
	}
	if t.Root != nil {
		rec(t.Root, "")
	}
	return b.String()
}
