// Package core defines the decision-tree model — nodes, split conditions,
// per-node predictions — together with the local (single-machine) trainer
// that subtree-tasks execute and the serial baselines build on. Trees built
// here are exactly the trees the distributed engine produces: the cluster
// package drives the same split finders and assembles the same Node values.
package core

import (
	"fmt"
	"sort"

	"treeserver/internal/dataset"
	"treeserver/internal/split"
)

// Node is one node of a decision tree. Every node — internal or leaf —
// carries its training-time prediction (Appendix D), so prediction can stop
// at any depth: on reaching dmax-truncated evaluation, a missing attribute
// value, or a categorical value unseen in D_x during training.
type Node struct {
	ID    int32
	Depth int
	N     int // |D_x| at training time

	// Split; nil Cond marks a leaf.
	Cond        *split.Condition
	Left, Right *Node
	// SeenCodes are the sorted categorical codes observed in D_x for the
	// split attribute; a test value outside this set stops at the node.
	// nil for numeric splits and leaves.
	SeenCodes []int32

	// Predictions.
	PMF   []float64 // classification: class distribution at the node
	Class int32     // classification: argmax of PMF
	Mean  float64   // regression: mean Y at the node
}

// IsLeaf reports whether the node has no split.
func (n *Node) IsLeaf() bool { return n.Cond == nil }

// seen reports whether the categorical code was observed at this node during
// training.
func (n *Node) seen(code int32) bool {
	i := sort.Search(len(n.SeenCodes), func(i int) bool { return n.SeenCodes[i] >= code })
	return i < len(n.SeenCodes) && n.SeenCodes[i] == code
}

// Tree is a trained decision tree.
type Tree struct {
	Root       *Node
	Task       dataset.Task
	NumClasses int
	NumNodes   int
	MaxDepth   int // deepest node depth actually reached
}

// route returns the deepest node reachable for the row, walking from the
// root and stopping at depth maxDepth (0 means unlimited), at leaves, at
// missing attribute values and at unseen categorical values.
func (t *Tree) route(cols []*dataset.Column, row, maxDepth int) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if maxDepth > 0 && n.Depth >= maxDepth {
			break
		}
		col := cols[n.Cond.Col]
		if col.IsMissing(row) {
			break
		}
		if col.Kind == dataset.Categorical && !n.seen(col.Cats[row]) {
			break
		}
		if n.Cond.GoesLeft(col, row) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// PredictClass returns the predicted class code for a row of the table.
// maxDepth truncates the traversal (0 = full depth).
func (t *Tree) PredictClass(tbl *dataset.Table, row, maxDepth int) int32 {
	return t.route(tbl.Cols, row, maxDepth).Class
}

// PredictPMF returns the class distribution at the routed node. The returned
// slice is shared with the tree and must not be mutated.
func (t *Tree) PredictPMF(tbl *dataset.Table, row, maxDepth int) []float64 {
	return t.route(tbl.Cols, row, maxDepth).PMF
}

// PredictValue returns the regression prediction for a row.
func (t *Tree) PredictValue(tbl *dataset.Table, row, maxDepth int) float64 {
	return t.route(tbl.Cols, row, maxDepth).Mean
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		visit(n)
		rec(n.Left)
		rec(n.Right)
	}
	rec(t.Root)
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	leaves := 0
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			leaves++
		}
	})
	return leaves
}

// Validate checks structural invariants: child row counts sum to the parent,
// depths increment, and internal nodes have both children.
func (t *Tree) Validate() error {
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.IsLeaf() {
			if n.Left != nil || n.Right != nil {
				return fmt.Errorf("core: leaf node %d has children", n.ID)
			}
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("core: internal node %d missing a child", n.ID)
		}
		if n.Left.N+n.Right.N != n.N {
			return fmt.Errorf("core: node %d children rows %d+%d != %d", n.ID, n.Left.N, n.Right.N, n.N)
		}
		if n.Left.Depth != n.Depth+1 || n.Right.Depth != n.Depth+1 {
			return fmt.Errorf("core: node %d child depth mismatch", n.ID)
		}
		if err := rec(n.Left); err != nil {
			return err
		}
		return rec(n.Right)
	}
	if t.Root == nil {
		return fmt.Errorf("core: tree has no root")
	}
	return rec(t.Root)
}

// Equal reports whether two trees have identical structure, conditions and
// predictions — used to verify distributed ≡ serial training.
func (t *Tree) Equal(o *Tree) bool {
	var eq func(a, b *Node) bool
	eq = func(a, b *Node) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		if a == nil {
			return true
		}
		if a.N != b.N || a.Depth != b.Depth || a.Class != b.Class || a.Mean != b.Mean {
			return false
		}
		if (a.Cond == nil) != (b.Cond == nil) {
			return false
		}
		if a.Cond != nil {
			if a.Cond.Col != b.Cond.Col || a.Cond.Kind != b.Cond.Kind || a.Cond.Threshold != b.Cond.Threshold {
				return false
			}
			if len(a.Cond.LeftSet) != len(b.Cond.LeftSet) {
				return false
			}
			for i := range a.Cond.LeftSet {
				if a.Cond.LeftSet[i] != b.Cond.LeftSet[i] {
					return false
				}
			}
		}
		return eq(a.Left, b.Left) && eq(a.Right, b.Right)
	}
	return t.Task == o.Task && t.NumClasses == o.NumClasses && eq(t.Root, o.Root)
}
