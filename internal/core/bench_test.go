package core

import (
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/synth"
)

func benchTable(rows int) *dataset.Table {
	return synth.GenerateTrain(synth.Spec{
		Name: "bench", Rows: rows, NumNumeric: 10, NumCategorical: 4, CatLevels: 6,
		NumClasses: 3, ConceptDepth: 6, LabelNoise: 0.05, Seed: 123,
	})
}

// BenchmarkTrainLocal10k measures exact serial training — the subtree-task
// workload and the fairness baseline.
func BenchmarkTrainLocal10k(b *testing.B) {
	tbl := benchTable(10000)
	rows := dataset.AllRows(tbl.NumRows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := TrainLocal(tbl, rows, Defaults())
		if tree.NumNodes < 3 {
			b.Fatal("degenerate tree")
		}
	}
}

// BenchmarkTrainLocalExtraTrees measures completely-random training.
func BenchmarkTrainLocalExtraTrees(b *testing.B) {
	tbl := benchTable(10000)
	rows := dataset.AllRows(tbl.NumRows())
	params := Defaults()
	params.ExtraTrees = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Seed = int64(i)
		TrainLocal(tbl, rows, params)
	}
}

// BenchmarkPredict measures single-row prediction latency.
func BenchmarkPredict(b *testing.B) {
	tbl := benchTable(10000)
	tree := TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), Defaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.PredictClass(tbl, i%tbl.NumRows(), 0)
	}
}

// BenchmarkTreeEncode measures the flat gob encoding subtree results use.
func BenchmarkTreeEncode(b *testing.B) {
	tbl := benchTable(10000)
	tree := TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), Defaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := tree.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

// BenchmarkTreeDecode measures the decode side.
func BenchmarkTreeDecode(b *testing.B) {
	tbl := benchTable(10000)
	tree := TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), Defaults())
	data, err := tree.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var back Tree
		if err := back.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
