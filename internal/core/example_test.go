package core_test

import (
	"fmt"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
)

// ExampleTrainLocal trains an exact decision tree on a tiny table and
// prints its prediction for a new row.
func ExampleTrainLocal() {
	age := dataset.NewNumeric("Age", []float64{22, 25, 29, 48, 52, 60})
	owner := dataset.NewCategorical("Owner", []int32{0, 0, 1, 1, 1, 1}, []string{"No", "Yes"})
	def := dataset.NewCategorical("Default", []int32{1, 1, 0, 0, 0, 0}, []string{"No", "Yes"})
	tbl := dataset.MustNewTable([]*dataset.Column{age, owner, def}, 2)

	tree := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), core.Defaults())

	probe := dataset.MustNewTable([]*dataset.Column{
		dataset.NewNumeric("Age", []float64{24}),
		dataset.NewCategorical("Owner", []int32{0}, []string{"No", "Yes"}),
		dataset.NewCategorical("Default", []int32{0}, []string{"No", "Yes"}),
	}, 2)
	fmt.Println(def.Levels[tree.PredictClass(probe, 0, 0)])
	// Output: Yes
}

// ExampleFormat renders a trained tree with column names and level labels.
func ExampleFormat() {
	x := dataset.NewNumeric("Income", []float64{1000, 2000, 8000, 9000})
	y := dataset.NewCategorical("Risk", []int32{1, 1, 0, 0}, []string{"Low", "High"})
	tbl := dataset.MustNewTable([]*dataset.Column{x, y}, 1)
	tree := core.TrainLocal(tbl, dataset.AllRows(4), core.Defaults())
	fmt.Print(core.Format(tree, tbl))
	// Output:
	// Income <= 5000?
	// yes:
	//   -> High (p=1.00, n=2)
	// no:
	//   -> Low (p=1.00, n=2)
}
