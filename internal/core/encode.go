package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"treeserver/internal/dataset"
	"treeserver/internal/split"
)

// Trees cross machine boundaries twice in TreeServer: key workers send built
// subtrees to the master, and the master flushes finished trees to storage.
// Both use this flat, index-linked encoding: gob-friendly, no recursion on
// decode, and stable across versions of the in-memory Node layout.

type flatNode struct {
	ID        int32
	Depth     int
	N         int
	HasCond   bool
	Cond      split.Condition
	SeenCodes []int32
	PMF       []float64
	Class     int32
	Mean      float64
	Left      int32 // index into the flat node slice; -1 = none
	Right     int32
}

type flatTree struct {
	Nodes      []flatNode
	Root       int32
	Task       dataset.Task
	NumClasses int
	NumNodes   int
	MaxDepth   int
}

// MarshalBinary implements encoding.BinaryMarshaler, so a *Tree embedded in
// any gob message is serialised through the flat encoding automatically.
func (t *Tree) MarshalBinary() ([]byte, error) {
	ft := flatTree{
		Root: -1, Task: t.Task, NumClasses: t.NumClasses,
		NumNodes: t.NumNodes, MaxDepth: t.MaxDepth,
	}
	index := map[*Node]int32{}
	t.Walk(func(n *Node) {
		index[n] = int32(len(ft.Nodes))
		ft.Nodes = append(ft.Nodes, flatNode{})
	})
	i := 0
	t.Walk(func(n *Node) {
		fn := flatNode{
			ID: n.ID, Depth: n.Depth, N: n.N,
			SeenCodes: n.SeenCodes, PMF: n.PMF, Class: n.Class, Mean: n.Mean,
			Left: -1, Right: -1,
		}
		if n.Cond != nil {
			fn.HasCond = true
			fn.Cond = *n.Cond
		}
		if n.Left != nil {
			fn.Left = index[n.Left]
		}
		if n.Right != nil {
			fn.Right = index[n.Right]
		}
		ft.Nodes[i] = fn
		i++
	})
	if t.Root != nil {
		ft.Root = index[t.Root]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ft); err != nil {
		return nil, fmt.Errorf("core: encoding tree: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	var ft flatTree
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ft); err != nil {
		return fmt.Errorf("core: decoding tree: %w", err)
	}
	nodes := make([]*Node, len(ft.Nodes))
	for i := range ft.Nodes {
		fn := &ft.Nodes[i]
		n := &Node{
			ID: fn.ID, Depth: fn.Depth, N: fn.N,
			SeenCodes: fn.SeenCodes, PMF: fn.PMF, Class: fn.Class, Mean: fn.Mean,
		}
		if fn.HasCond {
			cond := fn.Cond
			cond.Rehydrate()
			n.Cond = &cond
		}
		nodes[i] = n
	}
	for i := range ft.Nodes {
		fn := &ft.Nodes[i]
		if fn.Left >= 0 {
			if int(fn.Left) >= len(nodes) {
				return fmt.Errorf("core: decoding tree: left index %d out of range", fn.Left)
			}
			nodes[i].Left = nodes[fn.Left]
		}
		if fn.Right >= 0 {
			if int(fn.Right) >= len(nodes) {
				return fmt.Errorf("core: decoding tree: right index %d out of range", fn.Right)
			}
			nodes[i].Right = nodes[fn.Right]
		}
	}
	t.Task = ft.Task
	t.NumClasses = ft.NumClasses
	t.NumNodes = ft.NumNodes
	t.MaxDepth = ft.MaxDepth
	t.Root = nil
	if ft.Root >= 0 {
		if int(ft.Root) >= len(nodes) {
			return fmt.Errorf("core: decoding tree: root index %d out of range", ft.Root)
		}
		t.Root = nodes[ft.Root]
	}
	return nil
}
