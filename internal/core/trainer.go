package core

import (
	"math/rand"
	"slices"

	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/split"
)

// Params are the model hyperparameters shared by local and distributed
// training. The zero value is not usable; call Defaults or fill explicitly.
type Params struct {
	// MaxDepth is dmax, the maximum node depth (root = 0 splits at depth 0;
	// leaves appear at depth <= MaxDepth). <= 0 means unlimited.
	MaxDepth int
	// MinLeaf is τ_leaf: a node with |D_x| <= MinLeaf becomes a leaf.
	MinLeaf int
	// Measure scores splits: Gini/Entropy for classification, Variance for
	// regression (forced automatically when the target is numeric).
	Measure impurity.Measure
	// Candidates restricts split search to these column indexes (the paper's
	// C ⊆ A). nil means all non-target columns.
	Candidates []int
	// ExtraTrees selects completely-random split drawing (Appendix F): one
	// freshly resampled column per node with a random split value.
	ExtraTrees bool
	// Seed drives all randomness (extra-trees draws). Same seed, same tree.
	Seed int64
	// MaxExhaustiveLevels bounds subset enumeration for categorical splits.
	MaxExhaustiveLevels int
	// HistMaxBins > 0 selects the serial histogram splitter: numeric columns
	// are discretised once per tree into at most HistMaxBins sketch-proposed
	// bins and every node is scored from pooled bin histograms instead of the
	// exact sweep. 0 keeps exact training. Ignored under ExtraTrees, whose
	// random draws never sweep.
	HistMaxBins int
}

// Defaults returns the paper's default model parameters: dmax = 10,
// τ_leaf = 1, Gini for classification / variance for regression.
func Defaults() Params {
	return Params{MaxDepth: 10, MinLeaf: 1, Measure: impurity.Gini}
}

// normalise resolves per-table parameter defaults.
func (p Params) normalise(tbl *dataset.Table) Params {
	if tbl.Task() == dataset.Regression {
		p.Measure = impurity.Variance
	} else if !p.Measure.ForClassification() {
		p.Measure = impurity.Gini
	}
	if p.MinLeaf < 1 {
		p.MinLeaf = 1
	}
	if p.Candidates == nil {
		p.Candidates = tbl.FeatureIndexes()
	}
	return p
}

// TrainLocal builds a decision tree over the given rows of the table on a
// single thread. This is exactly the computation a subtree-task performs on
// its key worker after collecting D_x, and it is the serial reference the
// distributed engine must agree with.
func TrainLocal(tbl *dataset.Table, rows []int32, params Params) *Tree {
	b := newBuilder(tbl, params)
	b.scratch = split.GetScratch()
	defer func() {
		split.PutScratch(b.scratch)
		b.scratch = nil
	}()
	root := b.build(rows, 0)
	return b.finish(root)
}

// builder holds the shared state of one tree construction.
type builder struct {
	tbl        *dataset.Table
	params     Params
	rng        *rand.Rand
	nextID     int32
	numClasses int
	maxDepth   int

	// scratch is the pooled split-kernel buffer set reused across every
	// node of this (single-threaded) build.
	scratch *split.Scratch
	// rowSet is the per-tree membership multiset: populated with a node's
	// rows before split search so dense nodes take the presorted fast path,
	// then unwound after the node splits. Allocated lazily on the first
	// dense node with a numeric candidate.
	rowSet *dataset.RowSet
	// hasNumeric records whether any candidate column is numeric; without
	// one the RowSet bookkeeping buys nothing.
	hasNumeric bool
	// binned holds the per-candidate-column binned images when HistMaxBins
	// selects the histogram splitter; nil under exact training.
	binned map[int]*split.BinnedColumn
}

func newBuilder(tbl *dataset.Table, params Params) *builder {
	params = params.normalise(tbl)
	b := &builder{
		tbl:        tbl,
		params:     params,
		rng:        rand.New(rand.NewSource(params.Seed)),
		numClasses: tbl.NumClasses(),
	}
	for _, colIdx := range b.params.Candidates {
		if tbl.Cols[colIdx].Kind == dataset.Numeric {
			b.hasNumeric = true
			break
		}
	}
	if params.HistMaxBins > 0 && !params.ExtraTrees {
		b.binned = make(map[int]*split.BinnedColumn, len(b.params.Candidates))
		for _, colIdx := range b.params.Candidates {
			col := tbl.Cols[colIdx]
			bins := split.ProposeBins(colIdx, col, params.HistMaxBins)
			b.binned[colIdx] = split.BinColumn(col, bins)
		}
	}
	return b
}

func (b *builder) finish(root *Node) *Tree {
	return &Tree{
		Root:       root,
		Task:       b.tbl.Task(),
		NumClasses: b.numClasses,
		NumNodes:   int(b.nextID),
		MaxDepth:   b.maxDepth,
	}
}

// newNode allocates a node with its prediction computed from the rows.
func (b *builder) newNode(rows []int32, depth int) *Node {
	n := &Node{ID: b.nextID, Depth: depth, N: len(rows)}
	b.nextID++
	if depth > b.maxDepth {
		b.maxDepth = depth
	}
	FillPrediction(n, b.tbl, rows, b.numClasses)
	return n
}

// FillPrediction computes the node's PMF/Class or Mean from the rows. It is
// exported for the distributed engine, which creates nodes from column-task
// results on the master.
func FillPrediction(n *Node, tbl *dataset.Table, rows []int32, numClasses int) {
	y := tbl.Y()
	if tbl.Task() == dataset.Classification {
		cc := impurity.NewClassCounter(numClasses)
		for _, r := range rows {
			cc.Add(y.Cats[r])
		}
		n.PMF = cc.PMF()
		n.Class = cc.Majority()
		return
	}
	var m impurity.MomentAccumulator
	for _, r := range rows {
		m.Add(y.Floats[r])
	}
	n.Mean = m.Mean()
}

// ShouldStop evaluates the leaf conditions of Section II: pure node,
// |D_x| <= τ_leaf, or depth at dmax.
func ShouldStop(tbl *dataset.Table, rows []int32, depth int, params Params) bool {
	if len(rows) <= params.MinLeaf {
		return true
	}
	if params.MaxDepth > 0 && depth >= params.MaxDepth {
		return true
	}
	return IsPure(tbl, rows)
}

// IsPure reports whether all rows share one Y value.
func IsPure(tbl *dataset.Table, rows []int32) bool {
	if len(rows) <= 1 {
		return true
	}
	y := tbl.Y()
	if y.Kind == dataset.Categorical {
		first := y.Cats[rows[0]]
		for _, r := range rows[1:] {
			if y.Cats[r] != first {
				return false
			}
		}
		return true
	}
	first := y.Floats[rows[0]]
	for _, r := range rows[1:] {
		if y.Floats[r] != first {
			return false
		}
	}
	return true
}

func (b *builder) build(rows []int32, depth int) *Node {
	n := b.newNode(rows, depth)
	if ShouldStop(b.tbl, rows, depth, b.params) {
		return n
	}
	best := b.bestSplit(rows)
	if !best.Valid {
		return n
	}
	col := b.tbl.Cols[best.Cond.Col]
	n.Cond = &best.Cond
	n.SeenCodes = SeenCodes(col, rows)
	left, right := best.Cond.Partition(col, rows)
	if len(left) == 0 || len(right) == 0 { // defensive: splitter guarantees both non-empty
		n.Cond, n.SeenCodes = nil, nil
		return n
	}
	n.Left = b.build(left, depth+1)
	n.Right = b.build(right, depth+1)
	return n
}

// bestSplit searches candidate columns for the best split at the node.
// Dense nodes load the per-tree RowSet first so numeric columns walk their
// presorted index; the set is unwound afterwards so the next sibling starts
// clean (O(|rows|) per node, never O(tableRows)).
func (b *builder) bestSplit(rows []int32) split.Candidate {
	if b.params.ExtraTrees {
		return b.randomSplit(rows)
	}
	if b.binned != nil {
		return b.histSplit(rows)
	}
	var rs *dataset.RowSet
	if b.hasNumeric && split.Dense(len(rows), b.tbl.NumRows()) {
		if b.rowSet == nil {
			b.rowSet = dataset.NewRowSet(b.tbl.NumRows())
		}
		rs = b.rowSet
		rs.AddAll(rows)
		defer rs.RemoveAll(rows)
	}
	best := split.Candidate{}
	for _, colIdx := range b.params.Candidates {
		cand := split.FindBest(split.Request{
			Col: b.tbl.Cols[colIdx], ColIdx: colIdx,
			Y: b.tbl.Y(), Rows: rows,
			Measure: b.params.Measure, NumClasses: b.numClasses,
			MaxExhaustiveLevels: b.params.MaxExhaustiveLevels,
			RowSet:              rs, Scratch: b.scratch,
		})
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// histSplit scores the node from per-column bin histograms — the serial form
// of hist mode. Direct fills only: the single-threaded build never holds a
// sibling pair, so subtraction would only add cache bookkeeping.
func (b *builder) histSplit(rows []int32) split.Candidate {
	classes := 0
	if b.tbl.Task() == dataset.Classification {
		classes = b.numClasses
	}
	best := split.Candidate{}
	for _, colIdx := range b.params.Candidates {
		bc := b.binned[colIdx]
		h := split.GetHist(bc.Bins.NumBins, classes)
		h.Fill(bc, b.tbl.Y(), rows)
		cand := split.BestFromHist(bc.Bins, h, b.params.Measure, b.params.MaxExhaustiveLevels, b.scratch)
		split.PutHist(h)
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// randomSplit implements extra-trees node splitting: resample one column
// uniformly from all features and draw a random split, retrying over a
// random order of the remaining columns when the draw is degenerate.
func (b *builder) randomSplit(rows []int32) split.Candidate {
	order := b.rng.Perm(len(b.params.Candidates))
	for _, i := range order {
		colIdx := b.params.Candidates[i]
		cand := split.FindRandom(split.Request{
			Col: b.tbl.Cols[colIdx], ColIdx: colIdx,
			Y: b.tbl.Y(), Rows: rows,
			Measure: b.params.Measure, NumClasses: b.numClasses,
		}, b.rng)
		if cand.Valid {
			return cand
		}
	}
	return split.Candidate{}
}

// SeenCodes returns the sorted categorical codes present at the rows, or nil
// for numeric columns. Recorded on split nodes to detect unseen test values.
func SeenCodes(col *dataset.Column, rows []int32) []int32 {
	if col.Kind != dataset.Categorical {
		return nil
	}
	seen := make([]bool, col.NumLevels())
	var codes []int32
	for _, r := range rows {
		if col.IsMissing(int(r)) {
			continue
		}
		c := col.Cats[r]
		if !seen[c] {
			seen[c] = true
			codes = append(codes, c)
		}
	}
	slices.Sort(codes)
	return codes
}
