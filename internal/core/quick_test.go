package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treeserver/internal/dataset"
	"treeserver/internal/split"
)

// randomTree builds a structurally random valid tree for round-trip tests.
func randomTree(rng *rand.Rand, depth int) *Node {
	n := &Node{
		Depth: depth, N: 1 + rng.Intn(1000),
		Class: int32(rng.Intn(3)), Mean: rng.NormFloat64(),
		PMF: []float64{rng.Float64(), rng.Float64()},
	}
	if depth >= 4 || rng.Intn(3) == 0 {
		return n
	}
	if rng.Intn(2) == 0 {
		cond := split.NewNumericCondition(rng.Intn(10), rng.NormFloat64(), rng.Intn(2) == 0)
		n.Cond = &cond
	} else {
		set := []int32{int32(rng.Intn(4)), int32(4 + rng.Intn(60)), int32(64 + rng.Intn(40))}
		cond := split.NewCategoricalCondition(rng.Intn(10), set[:1+rng.Intn(3)], false)
		n.Cond = &cond
		n.SeenCodes = []int32{0, 1, 2, 70, 100}
	}
	n.Left = randomTree(rng, depth+1)
	n.Right = randomTree(rng, depth+1)
	n.N = n.Left.N + n.Right.N
	return n
}

// TestTreeEncodeDecodeProperty: MarshalBinary/UnmarshalBinary round-trips
// arbitrary trees exactly (structure, conditions, predictions).
func TestTreeEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := &Tree{
			Root: randomTree(rng, 0), Task: dataset.Classification,
			NumClasses: 3, NumNodes: 0, MaxDepth: 4,
		}
		tree.Walk(func(n *Node) { tree.NumNodes++ })
		data, err := tree.MarshalBinary()
		if err != nil {
			return false
		}
		var back Tree
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return tree.Equal(&back) && back.NumNodes == tree.NumNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestConditionMaskMatchesSearchProperty: the bitmask fast path of
// LeftContains agrees with binary search on arbitrary code sets, including
// codes past 64 that disable the mask.
func TestConditionMaskMatchesSearchProperty(t *testing.T) {
	f := func(raw []uint8, probes []uint8, big bool) bool {
		set := make([]int32, 0, len(raw))
		for _, v := range raw {
			code := int32(v % 64)
			if big {
				code = int32(v) * 3 // spills past 63
			}
			set = append(set, code)
		}
		cond := split.NewCategoricalCondition(0, set, false)
		inSet := map[int32]bool{}
		for _, c := range set {
			inSet[c] = true
		}
		for _, p := range probes {
			code := int32(p)
			if cond.LeftContains(code) != inSet[code] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionIsStableProperty: Partition preserves the relative order of
// rows on each side and never drops or duplicates rows — the invariant the
// delegate worker and the serial trainer both depend on for determinism.
func TestPartitionIsStableProperty(t *testing.T) {
	f := func(values []float64, threshold float64) bool {
		col := dataset.NewNumeric("x", values)
		cond := split.NewNumericCondition(0, threshold, false)
		rows := dataset.AllRows(len(values))
		left, right := cond.Partition(col, rows)
		if len(left)+len(right) != len(rows) {
			return false
		}
		lastL, lastR := int32(-1), int32(-1)
		for _, r := range left {
			if r <= lastL {
				return false
			}
			lastL = r
		}
		for _, r := range right {
			if r <= lastR {
				return false
			}
			lastR = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
