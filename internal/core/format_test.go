package core

import (
	"strings"
	"testing"

	"treeserver/internal/dataset"
)

func TestFormatClassificationTree(t *testing.T) {
	age := dataset.NewNumeric("Age", []float64{20, 25, 50, 55})
	owner := dataset.NewCategorical("Owner", []int32{0, 1, 0, 1}, []string{"No", "Yes"})
	y := dataset.NewCategorical("Default", []int32{1, 0, 0, 0}, []string{"No", "Yes"})
	tbl := dataset.MustNewTable([]*dataset.Column{age, owner, y}, 2)
	tree := TrainLocal(tbl, dataset.AllRows(4), Defaults())
	out := Format(tree, tbl)
	if !strings.Contains(out, "yes:") || !strings.Contains(out, "no:") {
		t.Fatalf("missing branches:\n%s", out)
	}
	if !strings.Contains(out, "Age") && !strings.Contains(out, "Owner") {
		t.Fatalf("no column name rendered:\n%s", out)
	}
	if !strings.Contains(out, "-> No") && !strings.Contains(out, "-> Yes") {
		t.Fatalf("no class label rendered:\n%s", out)
	}
}

func TestFormatRegressionTree(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 10, 11})
	y := dataset.NewNumeric("y", []float64{0, 0, 5, 5})
	tbl := dataset.MustNewTable([]*dataset.Column{x, y}, 1)
	tree := TrainLocal(tbl, dataset.AllRows(4), Defaults())
	out := Format(tree, tbl)
	if !strings.Contains(out, "x <= ") {
		t.Fatalf("condition not rendered:\n%s", out)
	}
	if !strings.Contains(out, "-> 5") || !strings.Contains(out, "-> 0") {
		t.Fatalf("leaf means not rendered:\n%s", out)
	}
}

func TestFormatCategoricalCondition(t *testing.T) {
	c := dataset.NewCategorical("Edu", []int32{0, 0, 1, 1}, []string{"BSc", "PhD"})
	y := dataset.NewCategorical("Y", []int32{0, 0, 1, 1}, []string{"n", "p"})
	tbl := dataset.MustNewTable([]*dataset.Column{c, y}, 1)
	tree := TrainLocal(tbl, dataset.AllRows(4), Defaults())
	out := Format(tree, tbl)
	if !strings.Contains(out, "Edu in {") {
		t.Fatalf("categorical condition not rendered with level names:\n%s", out)
	}
	if !strings.Contains(out, "BSc") && !strings.Contains(out, "PhD") {
		t.Fatalf("level names missing:\n%s", out)
	}
}

func TestFormatEmptyTree(t *testing.T) {
	if got := Format(&Tree{}, nil); got != "" {
		t.Fatalf("empty tree rendered %q", got)
	}
}
