package core

import (
	"fmt"
	"strconv"
	"strings"

	"treeserver/internal/split"
)

// Canonical tree serialization for the distributed-vs-serial equivalence
// harness. Canon renders every node field — floats in hex so equality is
// bit-for-bit, not print-rounded — and DiffTrees pinpoints the first
// divergent node by its root path, which is far more actionable in a chaos
// failure than a bare "trees differ".
//
// Node IDs are deliberately excluded: the distributed assembler numbers
// nodes in completion order, so IDs may differ between two semantically
// identical trees. Position is addressed by the L/R path from the root
// instead.

// hexF formats a float64 exactly (hex mantissa/exponent, -0 and NaN kept
// distinct from 0).
func hexF(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

func canonCond(c *split.Condition) string {
	if c == nil {
		return "leaf"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "col=%d kind=%d thr=%s missLeft=%v", c.Col, c.Kind, hexF(c.Threshold), c.MissingLeft)
	if c.LeftSet != nil {
		b.WriteString(" left=[")
		for i, v := range c.LeftSet {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(']')
	}
	return b.String()
}

func canonNode(n *Node, path string) string {
	var b strings.Builder
	if path == "" {
		path = "."
	}
	fmt.Fprintf(&b, "%s depth=%d n=%d %s", path, n.Depth, n.N, canonCond(n.Cond))
	if n.SeenCodes != nil {
		b.WriteString(" seen=[")
		for i, v := range n.SeenCodes {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(']')
	}
	if n.PMF != nil {
		b.WriteString(" pmf=[")
		for i, v := range n.PMF {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(hexF(v))
		}
		b.WriteByte(']')
	}
	fmt.Fprintf(&b, " class=%d mean=%s", n.Class, hexF(n.Mean))
	return b.String()
}

// Canon serializes the tree into one line per node, pre-order, with exact
// (hex) float formatting. Two trees are bit-for-bit equivalent iff their
// Canon strings are equal.
func (t *Tree) Canon() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree task=%d classes=%d\n", t.Task, t.NumClasses)
	var rec func(n *Node, path string)
	rec = func(n *Node, path string) {
		if n == nil {
			return
		}
		b.WriteString(canonNode(n, path))
		b.WriteByte('\n')
		rec(n.Left, path+"L")
		rec(n.Right, path+"R")
	}
	rec(t.Root, "")
	return b.String()
}

// DiffTrees compares two trees node by node in pre-order and returns a
// description of the first divergence ("" when the trees are bit-for-bit
// identical). The description names the path of the divergent node and
// shows both canonical renderings.
func DiffTrees(a, b *Tree) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return "one tree is nil"
	}
	if a.Task != b.Task || a.NumClasses != b.NumClasses {
		return fmt.Sprintf("header differs: task=%d classes=%d vs task=%d classes=%d",
			a.Task, a.NumClasses, b.Task, b.NumClasses)
	}
	var rec func(x, y *Node, path string) string
	rec = func(x, y *Node, path string) string {
		if x == nil && y == nil {
			return ""
		}
		label := path
		if label == "" {
			label = "."
		}
		if (x == nil) != (y == nil) {
			return fmt.Sprintf("node %s: present in one tree only (a=%v b=%v)", label, x != nil, y != nil)
		}
		if ca, cb := canonNode(x, path), canonNode(y, path); ca != cb {
			return fmt.Sprintf("node %s differs:\n  a: %s\n  b: %s", label, ca, cb)
		}
		if d := rec(x.Left, y.Left, path+"L"); d != "" {
			return d
		}
		return rec(x.Right, y.Right, path+"R")
	}
	return rec(a.Root, b.Root, "")
}
