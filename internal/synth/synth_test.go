package synth

import (
	"testing"

	"treeserver/internal/dataset"
)

func TestGenerateShapes(t *testing.T) {
	spec := Spec{Name: "t", Rows: 1000, NumNumeric: 4, NumCategorical: 3, CatLevels: 5,
		NumClasses: 3, MissingRate: 0.1, ConceptDepth: 4, Seed: 1}
	train, test := Generate(spec, 0.2)
	if train.NumRows() != 800 || test.NumRows() != 200 {
		t.Fatalf("rows = %d/%d", train.NumRows(), test.NumRows())
	}
	if train.NumCols() != 8 {
		t.Fatalf("cols = %d, want 4+3+1", train.NumCols())
	}
	if train.Task() != dataset.Classification || train.NumClasses() != 3 {
		t.Fatal("task/classes wrong")
	}
	if err := train.Validate(); err != nil {
		t.Fatalf("invalid train table: %v", err)
	}
	if err := test.Validate(); err != nil {
		t.Fatalf("invalid test table: %v", err)
	}
	if train.Y().MissingCount() != 0 {
		t.Fatal("labels have missing values")
	}
	// Missing rate applies to feature cells only, roughly.
	miss := 0
	for _, c := range train.Cols[:7] {
		miss += c.MissingCount()
	}
	frac := float64(miss) / float64(7*800)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("missing fraction %.3f, want ~0.1", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", Rows: 500, NumNumeric: 3, NumClasses: 2, Seed: 42}
	a := GenerateTrain(spec)
	b := GenerateTrain(spec)
	for r := 0; r < 500; r++ {
		if a.Cols[0].Float(r) != b.Cols[0].Float(r) || a.Y().Cat(r) != b.Y().Cat(r) {
			t.Fatal("generation not deterministic")
		}
	}
	spec.Seed = 43
	c := GenerateTrain(spec)
	same := true
	for r := 0; r < 500; r++ {
		if a.Cols[0].Float(r) != c.Cols[0].Float(r) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestRegressionSpec(t *testing.T) {
	spec := Spec{Name: "r", Rows: 500, NumNumeric: 4, NumClasses: 0, Seed: 3}
	tbl := GenerateTrain(spec)
	if tbl.Task() != dataset.Regression {
		t.Fatal("not regression")
	}
	// Values should vary (leaves are N(0,10)).
	first := tbl.Y().Float(0)
	varies := false
	for r := 1; r < 500; r++ {
		if tbl.Y().Float(r) != first {
			varies = true
		}
	}
	if !varies {
		t.Fatal("constant regression target")
	}
}

func TestConceptIsLearnable(t *testing.T) {
	// All classes must actually appear; a degenerate concept would make
	// accuracy numbers meaningless.
	spec := Spec{Name: "l", Rows: 4000, NumNumeric: 6, NumClasses: 4, ConceptDepth: 5, Seed: 4}
	tbl := GenerateTrain(spec)
	counts := make([]int, 4)
	for r := 0; r < tbl.NumRows(); r++ {
		counts[tbl.Y().Cat(r)]++
	}
	for class, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never appears", class)
		}
	}
}

func TestPaperSpecs(t *testing.T) {
	specs := PaperSpecs(100000)
	if len(specs) != 11 {
		t.Fatalf("specs = %d, want 11", len(specs))
	}
	byName := map[string]PaperSpec{}
	for _, ps := range specs {
		byName[ps.Spec.Name] = ps
	}
	// Shapes mirror Table I.
	if s := byName["allstate"].Spec; s.NumNumeric != 13 || s.NumCategorical != 14 || s.NumClasses != 0 || s.MissingRate == 0 {
		t.Fatalf("allstate shape wrong: %+v", s)
	}
	if s := byName["poker"].Spec; s.NumNumeric != 0 || s.NumCategorical != 10 {
		t.Fatalf("poker shape wrong: %+v", s)
	}
	if s := byName["c14b"].Spec; s.NumNumeric != 700 {
		t.Fatalf("c14b shape wrong: %+v", s)
	}
	// The largest dataset lands at the base scale; relative sizes preserved.
	if byName["loan_y2"].Spec.Rows != 100000 {
		t.Fatalf("loan_y2 rows = %d", byName["loan_y2"].Spec.Rows)
	}
	if byName["loan_y1"].Spec.Rows >= byName["loan_y2"].Spec.Rows {
		t.Fatal("relative sizes lost")
	}
	// Floor keeps tiny sets trainable.
	if byName["c14b"].Spec.Rows < 2000 {
		t.Fatalf("floor not applied: %d", byName["c14b"].Spec.Rows)
	}
	if _, ok := PaperSpecByName("covtype", 50000); !ok {
		t.Fatal("lookup by name failed")
	}
	if _, ok := PaperSpecByName("nope", 50000); ok {
		t.Fatal("unknown name found")
	}
}

func TestDigits(t *testing.T) {
	set := Digits(200, 9)
	if set.Len() != 200 || set.W != 28 || set.H != 28 {
		t.Fatalf("set shape %dx%dx%d", set.Len(), set.W, set.H)
	}
	counts := make([]int, 10)
	for i, img := range set.Images {
		if len(img) != 28*28 {
			t.Fatalf("image %d has %d pixels", i, len(img))
		}
		counts[set.Labels[i]]++
		for _, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g out of [0,1]", v)
			}
		}
	}
	for d, n := range counts {
		if n != 20 {
			t.Fatalf("digit %d appears %d times, want balanced 20", d, n)
		}
	}
}

func TestDigitsDistinguishable(t *testing.T) {
	// Mean images of different digits must differ substantially: nearest-
	// centroid on the training means should beat random guessing by a lot.
	train := Digits(500, 10)
	test := Digits(200, 11)
	centroids := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range centroids {
		centroids[i] = make([]float64, 28*28)
	}
	for i, img := range train.Images {
		l := train.Labels[i]
		counts[l]++
		for p, v := range img {
			centroids[l][p] += v
		}
	}
	for l := range centroids {
		for p := range centroids[l] {
			centroids[l][p] /= float64(counts[l])
		}
	}
	hit := 0
	for i, img := range test.Images {
		best, bestDist := -1, 1e18
		for l := range centroids {
			d := 0.0
			for p := range img {
				diff := img[p] - centroids[l][p]
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = l, d
			}
		}
		if int32(best) == test.Labels[i] {
			hit++
		}
	}
	acc := float64(hit) / float64(test.Len())
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %.3f; digits not distinguishable", acc)
	}
}

func TestSlideWindows(t *testing.T) {
	set := Digits(3, 12)
	patches := set.SlideWindows(5)
	if len(patches) != 3 {
		t.Fatalf("groups = %d", len(patches))
	}
	want := (28 - 5 + 1) * (28 - 5 + 1)
	if len(patches[0]) != want {
		t.Fatalf("patches per image = %d, want %d", len(patches[0]), want)
	}
	if len(patches[0][0]) != 25 {
		t.Fatalf("patch dims = %d, want 25", len(patches[0][0]))
	}
}
