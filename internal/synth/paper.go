package synth

// The paper evaluates on 11 public datasets (Table I). We cannot ship those
// datasets, so PaperSpecs returns generators matching each dataset's shape:
// the same mix of numeric and categorical columns, the same problem type,
// missing values where the original has them, and row counts that preserve
// the datasets' relative sizes at a laptop-friendly scale.

// PaperSpec pairs a generator spec with the original dataset's row count so
// harnesses can report the scale factor they ran at.
type PaperSpec struct {
	Spec         Spec
	OriginalRows int
}

// PaperSpecs returns the 11 Table-I datasets scaled so that the largest
// (loan_y2-like) has baseRows rows. Row counts keep the paper's ordering;
// the floor of 2000 rows keeps tiny scales trainable.
func PaperSpecs(baseRows int) []PaperSpec {
	type shape struct {
		name     string
		rows     int // original
		num, cat int
		classes  int // 0 = regression
		missing  float64
		levels   int
	}
	shapes := []shape{
		{"allstate", 13184290, 13, 14, 0, 0.05, 8},
		{"higgs_boson", 11000000, 28, 0, 2, 0, 0},
		{"ms_ltrc", 723412, 136, 1, 5, 0, 5},
		{"c14b", 473134, 700, 0, 5, 0, 0},
		{"covtype", 581012, 54, 0, 7, 0, 0},
		{"poker", 1025010, 0, 10, 10, 0, 13},
		{"kdd99", 4898431, 38, 3, 5, 0, 6},
		{"susy", 5000000, 18, 0, 2, 0, 0},
		{"loan_m1", 6372703, 14, 13, 2, 0, 6},
		{"loan_y1", 29581722, 14, 13, 2, 0, 6},
		{"loan_y2", 54468375, 14, 13, 2, 0, 6},
	}
	const largest = 54468375
	specs := make([]PaperSpec, 0, len(shapes))
	for i, sh := range shapes {
		rows := int(int64(sh.rows) * int64(baseRows) / largest)
		if rows < 2000 {
			rows = 2000
		}
		specs = append(specs, PaperSpec{
			Spec: Spec{
				Name: sh.name, Rows: rows,
				NumNumeric: sh.num, NumCategorical: sh.cat,
				CatLevels: sh.levels, NumClasses: sh.classes,
				MissingRate: sh.missing, ConceptDepth: 7,
				LabelNoise: 0.05, Seed: int64(1000 + i),
			},
			OriginalRows: sh.rows,
		})
	}
	return specs
}

// PaperSpec returns the named Table-I spec at the given base scale, or false
// when the name is unknown.
func PaperSpecByName(name string, baseRows int) (PaperSpec, bool) {
	for _, ps := range PaperSpecs(baseRows) {
		if ps.Spec.Name == name {
			return ps, true
		}
	}
	return PaperSpec{}, false
}
