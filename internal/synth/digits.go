package synth

import (
	"math/rand"
)

// ImageSet is a stack of equally-sized grayscale images with class labels —
// the MNIST stand-in used by the deep-forest experiments (Table VII).
// Pixel values are in [0, 1].
type ImageSet struct {
	W, H   int
	Images [][]float64 // each of length W*H
	Labels []int32
}

// NumClasses returns the number of digit classes (always 10 here).
func (s *ImageSet) NumClasses() int { return 10 }

// Len returns the number of images.
func (s *ImageSet) Len() int { return len(s.Images) }

// Seven-segment layout on the 28×28 canvas. Each digit lights a subset of
// segments A..G; jitter, stroke-thickness variation and pixel noise make the
// classes overlap enough that learning is nontrivial but local windows stay
// informative — the property multi-grained scanning exploits.
//
//	 AAAA
//	F    B
//	F    B
//	 GGGG
//	E    C
//	E    C
//	 DDDD
var segmentsByDigit = [10]uint8{
	//      GFEDCBA
	0: 0b0111111,
	1: 0b0000110,
	2: 0b1011011,
	3: 0b1001111,
	4: 0b1100110,
	5: 0b1101101,
	6: 0b1111101,
	7: 0b0000111,
	8: 0b1111111,
	9: 0b1101111,
}

type segment struct{ x0, y0, x1, y1 int } // inclusive box in glyph coords

// glyph box is 16 wide × 24 tall, centred on the canvas before jitter.
var segmentBoxes = [7]segment{
	{2, 0, 13, 2},    // A top
	{13, 1, 15, 11},  // B top-right
	{13, 13, 15, 23}, // C bottom-right
	{2, 22, 13, 24},  // D bottom
	{0, 13, 2, 23},   // E bottom-left
	{0, 1, 2, 11},    // F top-left
	{2, 11, 13, 13},  // G middle
}

// Digits generates n labelled 28×28 digit images with the given seed.
// Labels are balanced round-robin and then shuffled.
func Digits(n int, seed int64) *ImageSet {
	const w, h = 28, 28
	rng := rand.New(rand.NewSource(seed))
	set := &ImageSet{W: w, H: h, Images: make([][]float64, n), Labels: make([]int32, n)}
	order := rng.Perm(n)
	for i := 0; i < n; i++ {
		label := int32(i % 10)
		img := renderDigit(rng, int(label), w, h)
		idx := order[i]
		set.Images[idx] = img
		set.Labels[idx] = label
	}
	return set
}

func renderDigit(rng *rand.Rand, digit, w, h int) []float64 {
	img := make([]float64, w*h)
	// Random placement of the 16×24 glyph box plus per-image intensity.
	offX := 5 + rng.Intn(5) - 2 // nominal 5, jitter ±2
	offY := 2 + rng.Intn(3) - 1
	intensity := 0.75 + rng.Float64()*0.25
	segs := segmentsByDigit[digit]
	for s := 0; s < 7; s++ {
		if segs&(1<<uint(s)) == 0 {
			continue
		}
		box := segmentBoxes[s]
		for y := box.y0; y <= box.y1; y++ {
			for x := box.x0; x <= box.x1; x++ {
				px, py := x+offX, y+offY
				if px < 0 || px >= w || py < 0 || py >= h {
					continue
				}
				v := intensity * (0.8 + rng.Float64()*0.2)
				if v > 1 {
					v = 1
				}
				img[py*w+px] = v
			}
		}
	}
	// Additive background noise plus salt dropout on strokes.
	for i := range img {
		img[i] += rng.Float64() * 0.12
		if img[i] > 0.5 && rng.Float64() < 0.04 {
			img[i] = rng.Float64() * 0.2
		}
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img
}

// SlideWindows extracts all stride-1 win×win patches from every image,
// flattened row-major — the paper's multi-grained scanning "slide" step.
// The returned patches are grouped per source image.
func (s *ImageSet) SlideWindows(win int) [][][]float64 {
	out := make([][][]float64, s.Len())
	per := (s.W - win + 1) * (s.H - win + 1)
	for i, img := range s.Images {
		patches := make([][]float64, 0, per)
		for y := 0; y+win <= s.H; y++ {
			for x := 0; x+win <= s.W; x++ {
				p := make([]float64, win*win)
				for dy := 0; dy < win; dy++ {
					copy(p[dy*win:(dy+1)*win], img[(y+dy)*s.W+x:(y+dy)*s.W+x+win])
				}
				patches = append(patches, p)
			}
		}
		out[i] = patches
	}
	return out
}
