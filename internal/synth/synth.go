// Package synth generates the synthetic workloads that stand in for the
// paper's datasets (Table I) and for MNIST. Each generator plants a hidden
// ground-truth concept — a random decision tree over a subset of the
// features — so that accuracy numbers are meaningful, deeper models fit
// better (Table VIII), and every attribute-type code path (numeric,
// categorical, missing values) is exercised.
package synth

import (
	"fmt"
	"math/rand"

	"treeserver/internal/dataset"
)

// Spec describes a synthetic tabular dataset.
type Spec struct {
	Name           string
	Rows           int
	NumNumeric     int
	NumCategorical int
	CatLevels      int     // levels per categorical column (>= 2)
	NumClasses     int     // 0 selects regression
	MissingRate    float64 // fraction of feature cells marked missing
	ConceptDepth   int     // depth of the hidden ground-truth tree
	LabelNoise     float64 // probability of a flipped/perturbed label
	Seed           int64
}

// Regression reports whether the spec describes a regression problem.
func (s Spec) Regression() bool { return s.NumClasses == 0 }

func (s Spec) withDefaults() Spec {
	if s.CatLevels < 2 {
		s.CatLevels = 6
	}
	if s.ConceptDepth <= 0 {
		s.ConceptDepth = 6
	}
	return s
}

// concept is the planted ground-truth: a random binary tree over the feature
// columns with class labels (or values) at the leaves.
type concept struct {
	col       int // feature index within the generated feature block
	isCat     bool
	threshold float64
	leftSet   map[int32]bool
	left      *concept
	right     *concept
	leaf      bool
	class     int32
	value     float64
}

func buildConcept(rng *rand.Rand, s Spec, depth int) *concept {
	if depth >= s.ConceptDepth {
		c := &concept{leaf: true}
		if s.Regression() {
			c.value = rng.NormFloat64() * 10
		} else {
			c.class = int32(rng.Intn(s.NumClasses))
		}
		return c
	}
	total := s.NumNumeric + s.NumCategorical
	col := rng.Intn(total)
	node := &concept{col: col}
	if col >= s.NumNumeric {
		node.isCat = true
		node.leftSet = map[int32]bool{}
		for len(node.leftSet) == 0 || len(node.leftSet) == s.CatLevels {
			node.leftSet = map[int32]bool{}
			for l := 0; l < s.CatLevels; l++ {
				if rng.Intn(2) == 0 {
					node.leftSet[int32(l)] = true
				}
			}
		}
	} else {
		// Features are N(0,1); thresholds near the centre keep both sides populated.
		node.threshold = rng.NormFloat64() * 0.6
	}
	node.left = buildConcept(rng, s, depth+1)
	node.right = buildConcept(rng, s, depth+1)
	return node
}

func (c *concept) eval(numeric []float64, cats []int32) *concept {
	for !c.leaf {
		var goLeft bool
		if c.isCat {
			goLeft = c.leftSet[cats[c.col-len(numeric)]]
		} else {
			goLeft = numeric[c.col] <= c.threshold
		}
		if goLeft {
			c = c.left
		} else {
			c = c.right
		}
	}
	return c
}

// Generate materialises the spec into train and test tables drawn from the
// same concept, with testFrac of the rows held out.
func Generate(s Spec, testFrac float64) (train, test *dataset.Table) {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	root := buildConcept(rng, s, 0)

	testRows := int(float64(s.Rows) * testFrac)
	trainRows := s.Rows - testRows
	train = generateRows(rng, s, root, trainRows)
	test = generateRows(rng, s, root, testRows)
	return train, test
}

// GenerateTrain is Generate without a held-out test set.
func GenerateTrain(s Spec) *dataset.Table {
	train, _ := Generate(s, 0)
	return train
}

func generateRows(rng *rand.Rand, s Spec, root *concept, rows int) *dataset.Table {
	numericCols := make([][]float64, s.NumNumeric)
	for i := range numericCols {
		numericCols[i] = make([]float64, rows)
	}
	catCols := make([][]int32, s.NumCategorical)
	for i := range catCols {
		catCols[i] = make([]int32, rows)
	}
	var yClasses []int32
	var yValues []float64
	if s.Regression() {
		yValues = make([]float64, rows)
	} else {
		yClasses = make([]int32, rows)
	}

	numBuf := make([]float64, s.NumNumeric)
	catBuf := make([]int32, s.NumCategorical)
	for r := 0; r < rows; r++ {
		for i := range numBuf {
			numBuf[i] = rng.NormFloat64()
			numericCols[i][r] = numBuf[i]
		}
		for i := range catBuf {
			catBuf[i] = int32(rng.Intn(s.CatLevels))
			catCols[i][r] = catBuf[i]
		}
		leaf := root.eval(numBuf, catBuf)
		if s.Regression() {
			y := leaf.value + rng.NormFloat64()*s.LabelNoise
			yValues[r] = y
		} else {
			class := leaf.class
			if s.LabelNoise > 0 && rng.Float64() < s.LabelNoise {
				class = int32(rng.Intn(s.NumClasses))
			}
			yClasses[r] = class
		}
	}

	levels := make([]string, s.CatLevels)
	for i := range levels {
		levels[i] = fmt.Sprintf("L%d", i)
	}
	cols := make([]*dataset.Column, 0, s.NumNumeric+s.NumCategorical+1)
	for i, vals := range numericCols {
		cols = append(cols, dataset.NewNumeric(fmt.Sprintf("num%d", i), vals))
	}
	for i, codes := range catCols {
		cols = append(cols, dataset.NewCategorical(fmt.Sprintf("cat%d", i), codes, levels))
	}
	if s.Regression() {
		cols = append(cols, dataset.NewNumeric("Y", yValues))
	} else {
		classLevels := make([]string, s.NumClasses)
		for i := range classLevels {
			classLevels[i] = fmt.Sprintf("C%d", i)
		}
		cols = append(cols, dataset.NewCategorical("Y", yClasses, classLevels))
	}
	target := len(cols) - 1

	// Sprinkle missing feature cells after labels are drawn, so missingness
	// is uninformative (like Allstate's missing fields).
	if s.MissingRate > 0 {
		for _, c := range cols[:target] {
			for r := 0; r < rows; r++ {
				if rng.Float64() < s.MissingRate {
					c.SetMissing(r)
				}
			}
		}
	}
	return dataset.MustNewTable(cols, target)
}
