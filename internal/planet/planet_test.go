package planet

import (
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/dfs"
	"treeserver/internal/forest"
	"treeserver/internal/metrics"
	"treeserver/internal/synth"
)

func classify(tr *core.Tree, tbl *dataset.Table) []int32 {
	out := make([]int32, tbl.NumRows())
	for r := range out {
		out[r] = tr.PredictClass(tbl, r, 0)
	}
	return out
}

func TestPlanetLearnsConcept(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "pl", Rows: 6000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 4, Seed: 81,
	}, 0.25)
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 4}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	tree := trees[0]
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	acc := metrics.Accuracy(classify(tree, test), test.Y().Cats)
	if acc < 0.88 {
		t.Fatalf("planet accuracy %.3f too low", acc)
	}
}

func TestPlanetApproximationVsExact(t *testing.T) {
	// With continuous features, 32-bin histograms must not beat exact
	// training on the training set, and should be close behind.
	train, _ := synth.Generate(synth.Spec{
		Name: "approx", Rows: 5000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 5, Seed: 82,
	}, 0)
	exact := core.TrainLocal(train, dataset.AllRows(train.NumRows()), core.Defaults())
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 4, MaxBins: 32}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	exactAcc := metrics.Accuracy(classify(exact, train), train.Y().Cats)
	approxAcc := metrics.Accuracy(classify(trees[0], train), train.Y().Cats)
	if approxAcc > exactAcc+0.01 {
		t.Fatalf("approximate training fit better than exact: %.4f vs %.4f", approxAcc, exactAcc)
	}
	if approxAcc < exactAcc-0.08 {
		t.Fatalf("approximate training too far behind exact: %.4f vs %.4f", approxAcc, exactAcc)
	}
}

func TestPlanetRegression(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "plreg", Rows: 5000, NumNumeric: 6, NumClasses: 0, ConceptDepth: 3, LabelNoise: 0.2, Seed: 83,
	}, 0.25)
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 3}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, test.NumRows())
	actual := make([]float64, test.NumRows())
	for r := range pred {
		pred[r] = trees[0].PredictValue(test, r, 0)
		actual[r] = test.Y().Float(r)
	}
	if rmse := metrics.RMSE(pred, actual); rmse > 3 {
		t.Fatalf("planet regression rmse %.3f", rmse)
	}
}

func TestPlanetHandlesMissingByMeanFill(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "plmiss", Rows: 4000, NumNumeric: 6, NumClasses: 2, MissingRate: 0.1, ConceptDepth: 4, Seed: 84,
	}, 0.25)
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 4}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	filledTest := dataset.FillMissingWithMean(test)
	acc := metrics.Accuracy(classify(trees[0], filledTest), filledTest.Y().Cats)
	if acc < 0.75 {
		t.Fatalf("planet accuracy with missing data %.3f", acc)
	}
}

func TestPlanetForestTrainsTogether(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "plrf", Rows: 5000, NumNumeric: 10, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.1, Seed: 85,
	}, 0.25)
	schema := cluster.SchemaOf(train)
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 4}}
	f, err := forest.Train(tr, schema, forest.Config{
		Trees: 10, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 10 {
		t.Fatalf("trees = %d", len(f.Trees))
	}
	if acc := f.Accuracy(test); acc < 0.8 {
		t.Fatalf("planet forest accuracy %.3f", acc)
	}
	// Trees with different bags must differ.
	if f.Trees[0].Equal(f.Trees[1]) {
		t.Fatal("bagged trees identical")
	}
}

func TestPlanetRespectsDepthAndCandidates(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "plc", Rows: 3000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 86,
	})
	params := core.Defaults()
	params.MaxDepth = 3
	params.Candidates = []int{1, 4}
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 2}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: params}})
	if err != nil {
		t.Fatal(err)
	}
	trees[0].Walk(func(n *core.Node) {
		if n.Depth > 3 {
			t.Fatalf("node at depth %d exceeds dmax 3", n.Depth)
		}
		if n.Cond != nil && n.Cond.Col != 1 && n.Cond.Col != 4 {
			t.Fatalf("split on column %d outside C", n.Cond.Col)
		}
	})
}

func TestPlanetStageOverheadSimulation(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "plov", Rows: 1000, NumNumeric: 4, NumClasses: 2, ConceptDepth: 3, Seed: 87,
	})
	params := core.Defaults()
	params.MaxDepth = 5
	fast := &Trainer{Table: train, Cfg: Config{Partitions: 2}}
	slow := &Trainer{Table: train, Cfg: Config{Partitions: 2, StageOverhead: 20 * time.Millisecond}}

	start := time.Now()
	if _, err := fast.Train([]cluster.TreeSpec{{Params: params}}); err != nil {
		t.Fatal(err)
	}
	fastTime := time.Since(start)
	start = time.Now()
	if _, err := slow.Train([]cluster.TreeSpec{{Params: params}}); err != nil {
		t.Fatal(err)
	}
	slowTime := time.Since(start)
	if slowTime < fastTime+50*time.Millisecond {
		t.Fatalf("stage overhead not applied: fast %v slow %v", fastTime, slowTime)
	}
}

func TestPlanetSingleThreadMatchesParallel(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "plst", Rows: 3000, NumNumeric: 5, NumCategorical: 2, NumClasses: 2, ConceptDepth: 4, Seed: 88,
	})
	par := &Trainer{Table: train, Cfg: Config{Partitions: 4, Parallelism: 4}}
	ser := &Trainer{Table: train, Cfg: Config{Partitions: 4, Parallelism: 1}}
	a, err := par.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ser.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	if !a[0].Equal(b[0]) {
		t.Fatal("parallelism changed the trained tree")
	}
}

func TestPlanetPureRootIsLeaf(t *testing.T) {
	x := dataset.NewNumeric("x", []float64{1, 2, 3, 4})
	y := dataset.NewCategorical("y", []int32{1, 1, 1, 1}, []string{"a", "b"})
	tbl := dataset.MustNewTable([]*dataset.Column{x, y}, 1)
	tr := &Trainer{Table: tbl, Cfg: Config{Partitions: 2}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: core.Defaults()}})
	if err != nil {
		t.Fatal(err)
	}
	if !trees[0].Root.IsLeaf() || trees[0].Root.Class != 1 {
		t.Fatalf("pure root not a leaf: %+v", trees[0].Root)
	}
}

func TestPlanetDFSRescanPerLevel(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "plio", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 89,
	})
	store := dfs.NewStore(dfs.Config{ConnectLatency: 0})
	if _, err := dfs.PutTable(store, "t", train, 3, 500); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	params := core.Defaults()
	params.MaxDepth = 5
	tr := &Trainer{Table: train, Cfg: Config{Partitions: 2, Store: store, Base: "t"}}
	trees, err := tr.Train([]cluster.TreeSpec{{Params: params}})
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Opens == 0 {
		t.Fatal("no per-level DFS reads recorded")
	}
	// One full table read per level: opens must be a multiple of the file
	// count and at least 2 levels' worth for a depth-5 tree.
	files := int64(len(store.List("t/")))
	if st.Opens < 2*files || st.Opens%files != 0 {
		t.Fatalf("opens = %d, files = %d: not whole-table rescans", st.Opens, files)
	}
	if trees[0].Root.IsLeaf() {
		t.Fatal("degenerate tree")
	}
}
