// Package planet reproduces the comparator system of the paper's
// experiments: PLANET-style distributed tree training as implemented by
// Spark MLlib. Its design choices are exactly the ones TreeServer removes:
//
//   - rows are partitioned across machines, so no machine can evaluate a
//     split exactly; statistics are equi-depth histograms (maxBins = 32 by
//     default) aggregated at the driver — approximate split conditions;
//   - nodes are processed strictly level by level; every level is one
//     synchronous distributed job that rescans all partitions, paying a
//     fixed per-stage scheduling overhead and a statistics shuffle;
//   - forest trees are trained together in the shared per-level jobs (the
//     MLlib node-queue design), so time grows linearly with tree count.
//
// The per-stage overhead and shuffle bandwidth are simulated (configurable,
// defaults calibrated to Spark's documented scheduling costs) because the
// real comparator ran on a 15-node cluster; everything else is computed for
// real.
package planet

import (
	"runtime"
	"sync"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/dfs"
	"treeserver/internal/impurity"
	"treeserver/internal/split"
)

// Config tunes the simulated MLlib deployment.
type Config struct {
	// Partitions is the number of row partitions ("executors").
	Partitions int
	// Parallelism is the number of partition-processing goroutines
	// (1 = the paper's "MLlib single thread" runs).
	Parallelism int
	// MaxBins is the histogram resolution (MLlib default 32).
	MaxBins int
	// StageOverhead is the simulated per-level job-scheduling cost (Spark
	// stage launch + task serialisation). 0 disables the simulation.
	StageOverhead time.Duration
	// ShuffleBps simulates the histogram statistics shuffle bandwidth
	// between executors and the driver. 0 disables.
	ShuffleBps float64
	// Store/Base, when set, make every level re-read the table's files from
	// the DFS — PLANET proper runs on MapReduce and reads each row once per
	// level from HDFS (the IO-bound behaviour the paper contrasts against).
	// Spark MLlib caches the RDD, so the comparison harness leaves this off.
	Store *dfs.Store
	Base  string
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 32
	}
	return c
}

// treeState is one tree's in-progress construction.
type treeState struct {
	spec     cluster.TreeSpec
	root     *core.Node
	bag      []int32 // row ids, with multiplicity for bootstrap bags
	assign   []int32 // bag position -> active node id, -1 once in a leaf
	nodes    map[int32]*core.Node
	nextNode int32
	done     bool
}

// nodeKey addresses an active node across the forest's shared level job.
type nodeKey struct {
	tree int
	node int32
}

// Trainer trains trees the PLANET/MLlib way over an in-memory table (the
// cached RDD). It satisfies forest.Trainer so ensembles and experiment
// harnesses can swap engines.
type Trainer struct {
	Table *dataset.Table
	Cfg   Config
}

// Train implements the forest.Trainer contract: all trees are built
// together, level-synchronously.
func (tr *Trainer) Train(specs []cluster.TreeSpec) ([]*core.Tree, error) {
	cfg := tr.Cfg.withDefaults()
	tbl := tr.Table
	numClasses := tbl.NumClasses()

	// MLlib cannot handle missing values; the paper mean-filled for it.
	hasMissing := false
	for _, c := range tbl.Cols {
		if c.MissingCount() > 0 {
			hasMissing = true
		}
	}
	if hasMissing {
		tbl = dataset.FillMissingWithMean(tbl)
	}

	// findSplits: one-time equi-depth binning per feature, like MLlib.
	allRows := dataset.AllRows(tbl.NumRows())
	bins := make([]split.Bins, len(tbl.Cols))
	for c := range tbl.Cols {
		if c == tbl.Target {
			continue
		}
		bins[c] = split.ComputeBins(tbl.Cols[c], c, cfg.MaxBins, allRows)
	}

	states := make([]*treeState, len(specs))
	for i, spec := range specs {
		if spec.Bag.NumRows == 0 {
			spec.Bag.NumRows = tbl.NumRows()
		}
		normaliseSpec(&spec, tbl)
		st := &treeState{spec: spec, bag: spec.Bag.Rows(), nodes: map[int32]*core.Node{}}
		st.assign = make([]int32, len(st.bag))
		st.root = &core.Node{ID: 0, Depth: 0, N: len(st.bag)}
		st.nodes[0] = st.root
		st.nextNode = 1
		states[i] = st
		for p := range st.assign {
			st.assign[p] = 0
		}
	}

	parts := dataset.RowSlices(tbl.NumRows(), cfg.Partitions)
	for depth := 0; ; depth++ {
		active := activeNodes(states)
		if len(active) == 0 {
			break
		}
		simulateStage(cfg)
		simulateLevelScan(cfg)
		merged := runLevelJob(tbl, states, active, bins, parts, cfg, numClasses)
		simulateShuffle(cfg, merged)
		splitLevel(tbl, states, active, bins, merged, numClasses, depth)
	}

	out := make([]*core.Tree, len(states))
	for i, st := range states {
		out[i] = finalize(st, tbl)
	}
	return out, nil
}

func normaliseSpec(spec *cluster.TreeSpec, tbl *dataset.Table) {
	if spec.Params.Candidates == nil {
		spec.Params.Candidates = tbl.FeatureIndexes()
	}
	if spec.Params.MinLeaf < 1 {
		spec.Params.MinLeaf = 1
	}
	if tbl.Task() == dataset.Regression {
		spec.Params.Measure = impurity.Variance
	} else if !spec.Params.Measure.ForClassification() {
		spec.Params.Measure = impurity.Gini
	}
}

func activeNodes(states []*treeState) []nodeKey {
	var keys []nodeKey
	for t, st := range states {
		if st.done {
			continue
		}
		seen := map[int32]bool{}
		for _, nid := range st.assign {
			if nid >= 0 && !seen[nid] {
				seen[nid] = true
				keys = append(keys, nodeKey{t, nid})
			}
		}
		if len(seen) == 0 {
			st.done = true
		}
	}
	return keys
}

// levelStats aggregates one node's histograms across all candidate columns.
type levelStats struct {
	hists map[int]*split.Histogram // column -> histogram
	total cluster.NodeStats
}

// runLevelJob is the per-level "MapReduce job": each partition accumulates
// local histograms for every (active node, candidate column), then the
// driver merges them — MLlib's aggregateByKey.
func runLevelJob(tbl *dataset.Table, states []*treeState, active []nodeKey,
	bins []split.Bins, parts [][2]int, cfg Config, numClasses int) map[nodeKey]*levelStats {

	activeSet := map[nodeKey]bool{}
	for _, k := range active {
		activeSet[k] = true
	}
	locals := make([]map[nodeKey]*levelStats, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for pi, pr := range parts {
		wg.Add(1)
		go func(pi int, pr [2]int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			locals[pi] = partitionPass(tbl, states, activeSet, bins, pr, numClasses)
		}(pi, pr)
	}
	wg.Wait()

	merged := map[nodeKey]*levelStats{}
	for _, local := range locals {
		for k, ls := range local {
			dst, ok := merged[k]
			if !ok {
				merged[k] = ls
				continue
			}
			for col, h := range ls.hists {
				dst.hists[col].Merge(h)
			}
			mergeStats(&dst.total, ls.total)
		}
	}
	return merged
}

// partitionPass scans one row partition once (PLANET's map phase), binning
// every bagged occurrence of every row into its tree-node histograms.
func partitionPass(tbl *dataset.Table, states []*treeState, active map[nodeKey]bool,
	bins []split.Bins, pr [2]int, numClasses int) map[nodeKey]*levelStats {

	out := map[nodeKey]*levelStats{}
	y := tbl.Y()
	for t, st := range states {
		if st.done {
			continue
		}
		cand := st.spec.Params.Candidates
		for pos, row := range st.bag {
			if int(row) < pr[0] || int(row) >= pr[1] {
				continue
			}
			nid := st.assign[pos]
			if nid < 0 {
				continue
			}
			k := nodeKey{t, nid}
			if !active[k] {
				continue
			}
			ls, ok := out[k]
			if !ok {
				ls = &levelStats{hists: map[int]*split.Histogram{}}
				for _, c := range cand {
					ls.hists[c] = split.NewHistogram(bins[c].NumBins, numClasses)
				}
				if numClasses > 0 {
					ls.total.Counts = make([]int, numClasses)
				}
				out[k] = ls
			}
			for _, c := range cand {
				b := bins[c].BinOf(tbl.Cols[c], int(row))
				if numClasses > 0 {
					ls.hists[c].AddClass(b, y.Cats[row])
				} else {
					ls.hists[c].AddValue(b, y.Floats[row])
				}
			}
			ls.total.N++
			if numClasses > 0 {
				ls.total.Counts[y.Cats[row]]++
			} else {
				v := y.Floats[row]
				ls.total.Sum += v
				ls.total.SumSq += v * v
			}
		}
	}
	return out
}

func mergeStats(dst *cluster.NodeStats, src cluster.NodeStats) {
	dst.N += src.N
	dst.Sum += src.Sum
	dst.SumSq += src.SumSq
	for i := range src.Counts {
		dst.Counts[i] += src.Counts[i]
	}
}

func statsPure(s cluster.NodeStats) bool {
	if s.Counts != nil {
		for _, c := range s.Counts {
			if c == s.N {
				return true
			}
		}
		return s.N == 0
	}
	if s.N == 0 {
		return true
	}
	mean := s.Sum / float64(s.N)
	return s.SumSq/float64(s.N)-mean*mean < 1e-12
}

// splitLevel is the driver phase: choose each node's best approximate split
// from the merged histograms, then one more partition pass reassigns rows
// to the new children (PLANET broadcasts the split conditions).
func splitLevel(tbl *dataset.Table, states []*treeState, active []nodeKey,
	bins []split.Bins, merged map[nodeKey]*levelStats, numClasses, depth int) {

	type decision struct {
		cond  *split.Condition
		left  int32
		right int32
	}
	decisions := make(map[nodeKey]decision)
	for _, k := range active {
		st := states[k.tree]
		ls := merged[k]
		node := st.nodes[k.node]
		if ls == nil {
			continue
		}
		ls.total.Fill(node)
		params := st.spec.Params
		stop := statsPure(ls.total) || ls.total.N <= params.MinLeaf ||
			(params.MaxDepth > 0 && depth >= params.MaxDepth)
		var best split.Candidate
		if !stop {
			for _, c := range params.Candidates {
				cand := split.BestFromHistogram(bins[c], ls.hists[c], params.Measure)
				if cand.Better(best) {
					best = cand
				}
			}
		}
		if stop || !best.Valid {
			retire(st, k.node)
			continue
		}
		cond := best.Cond
		cond.Rehydrate()
		node.Cond = &cond
		node.SeenCodes = seenFromHistogram(bins[cond.Col], ls.hists[cond.Col])
		left := &core.Node{ID: st.nextNode, Depth: depth + 1}
		right := &core.Node{ID: st.nextNode + 1, Depth: depth + 1}
		st.nextNode += 2
		node.Left, node.Right = left, right
		st.nodes[left.ID], st.nodes[right.ID] = left, right
		decisions[k] = decision{cond: node.Cond, left: left.ID, right: right.ID}
	}

	// Broadcast + reassignment pass.
	for t, st := range states {
		if st.done {
			continue
		}
		for pos, row := range st.bag {
			nid := st.assign[pos]
			if nid < 0 {
				continue
			}
			d, ok := decisions[nodeKey{t, nid}]
			if !ok {
				if _, stillActive := st.nodes[nid]; !stillActive {
					st.assign[pos] = -1 // node became a leaf this level
				}
				continue
			}
			if d.cond.GoesLeft(tbl.Cols[d.cond.Col], int(row)) {
				st.assign[pos] = d.left
			} else {
				st.assign[pos] = d.right
			}
		}
	}
}

// retire marks a node as a finished leaf by removing it from the active map
// (rows pointing at it are parked at -1 in the next reassignment pass).
func retire(st *treeState, nid int32) {
	delete(st.nodes, nid)
}

func seenFromHistogram(b split.Bins, h *split.Histogram) []int32 {
	if b.Kind != dataset.Categorical {
		return nil
	}
	var codes []int32
	for bin := 0; bin < b.NumBins; bin++ {
		n := 0
		if h.Counts != nil {
			for _, c := range h.Counts[bin] {
				n += c
			}
		} else {
			n = h.Moments[bin].N
		}
		if n > 0 {
			codes = append(codes, int32(bin))
		}
	}
	return codes
}

func finalize(st *treeState, tbl *dataset.Table) *core.Tree {
	t := &core.Tree{Root: st.root, Task: tbl.Task(), NumClasses: tbl.NumClasses()}
	id := int32(0)
	var walk func(*core.Node)
	walk = func(n *core.Node) {
		if n == nil {
			return
		}
		n.ID = id
		id++
		if n.Depth > t.MaxDepth {
			t.MaxDepth = n.Depth
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(st.root)
	t.NumNodes = int(id)
	return t
}

// simulateStage charges the per-level Spark job launch cost.
func simulateStage(cfg Config) {
	if cfg.StageOverhead > 0 {
		time.Sleep(cfg.StageOverhead)
	}
}

// simulateLevelScan re-reads the table's DFS files, charging the per-level
// HDFS IO a MapReduce-based PLANET pays (no-op unless Store is configured).
func simulateLevelScan(cfg Config) {
	if cfg.Store == nil {
		return
	}
	for _, path := range cfg.Store.List(cfg.Base + "/") {
		_, _ = cfg.Store.Read(path)
	}
}

// simulateShuffle charges the statistics shuffle for the merged histograms.
func simulateShuffle(cfg Config, merged map[nodeKey]*levelStats) {
	if cfg.ShuffleBps <= 0 {
		return
	}
	var bytes int64
	for _, ls := range merged {
		for _, h := range ls.hists {
			for _, bc := range h.Counts {
				bytes += int64(8 * len(bc))
			}
			bytes += int64(24 * len(h.Moments))
		}
	}
	time.Sleep(time.Duration(float64(bytes) / cfg.ShuffleBps * float64(time.Second)))
}
