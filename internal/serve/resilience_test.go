package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treeserver/internal/obs"
	"treeserver/internal/registry"
)

const goodBody = `{"rows":[{"num0":"0.5","num1":"-1","num2":"2","cat0":"L1"}]}`

// canaryServer builds a two-version registry (v1 active, v2 staged) behind a
// server wired into an obs registry.
func canaryServer(t *testing.T, opts ...Option) (*Server, *registry.Registry, *obs.Registry) {
	t.Helper()
	reg := registry.New()
	if _, err := reg.Load("m", trainModelFile(t, 1, 4), "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate("m", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("m", trainModelFile(t, 2, 3), "v2"); err != nil {
		t.Fatal(err)
	}
	obsReg := obs.NewRegistry()
	return New(reg, append([]Option{WithObs(obsReg)}, opts...)...), reg, obsReg
}

// servedVersion posts one good row and returns the version that answered.
func servedVersion(t *testing.T, s *Server, path, body string) int {
	t.Helper()
	rec := do(s, http.MethodPost, path, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Version
}

// --- overload shedding ---

func TestOverloadShedEnvelope(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	obsReg := obs.NewRegistry()
	s, err := NewSingle(mf, WithMaxInflight(2), WithObs(obsReg))
	if err != nil {
		t.Fatal(err)
	}
	// Fill both inflight slots so the next request must shed — no queue is
	// configured, so the rejection is immediate and deterministic.
	l := s.limiterFor("t")
	l.tokens <- struct{}{}
	l.tokens <- struct{}{}

	rec := do(s, http.MethodPost, "/v1/models/t/predict", goodBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != CodeOverloaded {
		t.Fatalf("code %q", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// The legacy alias sheds with the flat pre-/v1 error shape.
	rec = do(s, http.MethodPost, "/predict", goodBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("legacy status %d", rec.Code)
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil || flat.Error == "" {
		t.Fatalf("legacy shed shape: %s", rec.Body.String())
	}

	// Freeing the slots restores service.
	<-l.tokens
	<-l.tokens
	if rec := do(s, http.MethodPost, "/v1/models/t/predict", goodBody); rec.Code != http.StatusOK {
		t.Fatalf("post-release status %d: %s", rec.Code, rec.Body.String())
	}
	if sv := obsReg.Snapshot().Serve; sv.Sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sv.Sheds)
	}
}

// TestOverloadStorm is the chaos cell: a burst against a saturated model
// sheds every request as a typed 429, and capacity coming back restores
// service with nothing wedged.
func TestOverloadStorm(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	obsReg := obs.NewRegistry()
	s, err := NewSingle(mf, WithMaxInflight(1), WithObs(obsReg))
	if err != nil {
		t.Fatal(err)
	}
	l := s.limiterFor("t")
	l.tokens <- struct{}{}

	const burst = 24
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = do(s, http.MethodPost, "/v1/models/t/predict", goodBody).Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Fatalf("storm request %d got %d, want 429", i, code)
		}
	}
	if sv := obsReg.Snapshot().Serve; sv.Sheds != burst || sv.Errors != burst {
		t.Fatalf("serve snapshot = %+v", sv)
	}

	<-l.tokens
	for i := 0; i < 4; i++ {
		if rec := do(s, http.MethodPost, "/v1/models/t/predict", goodBody); rec.Code != http.StatusOK {
			t.Fatalf("post-storm request %d status %d", i, rec.Code)
		}
	}
}

func TestLimiterQueueAdmitsWhenSlotFrees(t *testing.T) {
	l := newLimiter(1, 1, time.Second)
	ok, err := l.acquire(context.Background())
	if !ok || err != nil {
		t.Fatalf("first acquire = %v, %v", ok, err)
	}
	admitted := make(chan bool)
	go func() {
		ok, _ := l.acquire(context.Background())
		admitted <- ok
	}()
	// Wait until the goroutine is parked in the queue, then prove a third
	// caller sheds instantly (queue full).
	for len(l.queue) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if ok, _ := l.acquire(context.Background()); ok {
		t.Fatal("third acquire admitted past a full queue")
	}
	l.release()
	if !<-admitted {
		t.Fatal("queued acquire shed despite a freed slot")
	}
	l.release()

	// A queued waiter whose context dies aborts with the context error.
	ok, _ = l.acquire(context.Background())
	if !ok {
		t.Fatal("reacquire failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error)
	go func() {
		_, err := l.acquire(ctx)
		errc <- err
	}()
	for len(l.queue) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	l.release()

	// Queue wait expiring sheds without an error.
	short := newLimiter(1, 1, time.Millisecond)
	if ok, _ := short.acquire(context.Background()); !ok {
		t.Fatal("acquire failed")
	}
	if ok, err := short.acquire(context.Background()); ok || err != nil {
		t.Fatalf("expired wait = %v, %v", ok, err)
	}
}

// --- request deadlines ---

func TestRequestDeadlineEnvelope(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	obsReg := obs.NewRegistry()
	s, err := NewSingle(mf, WithRequestTimeout(time.Nanosecond), WithObs(obsReg))
	if err != nil {
		t.Fatal(err)
	}
	rec := do(s, http.MethodPost, "/v1/models/t/predict", goodBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != CodeDeadlineExceeded {
		t.Fatalf("code %q", code)
	}

	// Legacy alias: flat error shape, same status.
	rec = do(s, http.MethodPost, "/predict", goodBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("legacy status %d", rec.Code)
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil || flat.Error == "" {
		t.Fatalf("legacy deadline shape: %s", rec.Body.String())
	}
	if sv := obsReg.Snapshot().Serve; sv.DeadlineExceeded != 2 {
		t.Fatalf("deadline counter = %d, want 2", sv.DeadlineExceeded)
	}
}

// TestClientDisconnectHonored proves a dead client context aborts the
// request even with no server-side budget configured.
func TestClientDisconnectHonored(t *testing.T) {
	s, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/t/predict", strings.NewReader(goodBody))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != CodeDeadlineExceeded {
		t.Fatalf("code %q", code)
	}
}

// --- body cap ---

func TestBodyTooLargeEnvelope(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	s, err := NewSingle(mf, WithMaxBodyBytes(32))
	if err != nil {
		t.Fatal(err)
	}
	big := `{"rows":[{"num0":"0.5","num1":"-1","num2":"2","cat0":"L1"}]}`
	rec := do(s, http.MethodPost, "/v1/models/t/predict", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != CodeBodyTooLarge {
		t.Fatalf("code %q", code)
	}
	// Legacy alias keeps the flat shape.
	rec = do(s, http.MethodPost, "/predict", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("legacy status %d", rec.Code)
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil || flat.Error == "" {
		t.Fatalf("legacy 413 shape: %s", rec.Body.String())
	}
	// Under the cap still serves.
	small := `{"rows":[{"num0":"1"}]}`
	if rec := do(s, http.MethodPost, "/v1/models/t/predict", small); rec.Code != http.StatusOK {
		t.Fatalf("small body status %d: %s", rec.Code, rec.Body.String())
	}
}

// --- canary rollout over HTTP ---

func TestStageEndpointErrors(t *testing.T) {
	s, _, _ := canaryServer(t)
	cases := []struct {
		path, body string
		status     int
		code       string
	}{
		{"/v1/models/ghost/stage", `{"seq":1,"fraction":0.5}`, http.StatusNotFound, CodeModelNotFound},
		{"/v1/models/m/stage", `{"seq":99,"fraction":0.5}`, http.StatusNotFound, CodeVersionNotFound},
		{"/v1/models/m/stage", `{"seq":2,"fraction":0}`, http.StatusBadRequest, CodeInvalidRequest},
		{"/v1/models/m/stage", `{"seq":2,"fraction":1.5}`, http.StatusBadRequest, CodeInvalidRequest},
		{"/v1/models/m/stage", `{garbage`, http.StatusBadRequest, CodeInvalidRequest},
	}
	for _, tc := range cases {
		rec := do(s, http.MethodPost, tc.path, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if code := decodeEnvelope(t, rec); code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.body, code, tc.code)
		}
	}
	if rec := do(s, http.MethodGet, "/v1/models/m/stage", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET stage status %d", rec.Code)
	}

	// Staging against a model with no active version is a conflict.
	reg := registry.New()
	if _, err := reg.Load("n", trainModelFile(t, 1, 2), "v1"); err != nil {
		t.Fatal(err)
	}
	s2 := New(reg)
	rec := do(s2, http.MethodPost, "/v1/models/n/stage", `{"seq":1,"fraction":0.5}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("no-active stage status %d: %s", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != CodeNoActiveVersion {
		t.Fatalf("code %q", code)
	}
}

// TestCanaryAutoPromoteOverHTTP stages v2 at full traffic with a 5-request
// window, sends 5 healthy requests, and watches the server promote it.
func TestCanaryAutoPromoteOverHTTP(t *testing.T) {
	s, reg, obsReg := canaryServer(t)
	rec := do(s, http.MethodPost, "/v1/models/m/stage", `{"seq":2,"fraction":1.0,"window":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stage status %d: %s", rec.Code, rec.Body.String())
	}
	var staged stageResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &staged); err != nil {
		t.Fatal(err)
	}
	if staged.Seq != 2 || staged.Window != 5 {
		t.Fatalf("stage response = %+v", staged)
	}

	// Fraction 1.0 routes everything to the canary: requests serve v2 while
	// the active pointer still says v1.
	for i := 0; i < 4; i++ {
		if v := servedVersion(t, s, "/v1/models/m/predict", goodBody); v != 2 {
			t.Fatalf("canary request %d served version %d", i, v)
		}
		if v, _ := reg.Active("m"); v.Seq != 1 {
			t.Fatalf("active flipped to %d before the window filled", v.Seq)
		}
	}
	// The 5th request fills the window and promotes.
	if v := servedVersion(t, s, "/v1/models/m/predict", goodBody); v != 2 {
		t.Fatalf("5th request served version %d", v)
	}
	if v, _ := reg.Active("m"); v.Seq != 2 {
		t.Fatalf("canary not promoted: active seq %d", v.Seq)
	}
	if _, live := reg.Canary("m"); live {
		t.Fatal("canary still live after promote")
	}
	sv := obsReg.Snapshot().Serve
	if sv.CanaryPromotes != 1 || sv.CanaryRollbacks != 0 || sv.Swaps != 1 {
		t.Fatalf("serve snapshot = %+v", sv)
	}
}

// TestCanaryAutoRollbackOverHTTP stages a canary and feeds it requests that
// error on the canary side (bad numeric cells). The window filling with
// failures rolls the canary back and v1 keeps all traffic.
func TestCanaryAutoRollbackOverHTTP(t *testing.T) {
	s, reg, obsReg := canaryServer(t)
	if rec := do(s, http.MethodPost, "/v1/models/m/stage", `{"seq":2,"fraction":1.0,"window":5}`); rec.Code != http.StatusOK {
		t.Fatalf("stage status %d: %s", rec.Code, rec.Body.String())
	}
	bad := `{"rows":[{"num0":"notanumber"}]}`
	for i := 0; i < 5; i++ {
		rec := do(s, http.MethodPost, "/v1/models/m/predict", bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("bad request %d status %d", i, rec.Code)
		}
	}
	if _, live := reg.Canary("m"); live {
		t.Fatal("canary survived a window of errors")
	}
	if v, _ := reg.Active("m"); v.Seq != 1 {
		t.Fatalf("active disturbed by rollback: seq %d", v.Seq)
	}
	// Service continues on v1.
	if v := servedVersion(t, s, "/v1/models/m/predict", goodBody); v != 1 {
		t.Fatalf("post-rollback version %d", v)
	}
	sv := obsReg.Snapshot().Serve
	if sv.CanaryRollbacks != 1 || sv.CanaryPromotes != 0 {
		t.Fatalf("serve snapshot = %+v", sv)
	}
	if !strings.Contains(obsReg.Snapshot().Report(), "1 canary rollbacks") {
		t.Fatalf("report lacks resilience line:\n%s", obsReg.Snapshot().Report())
	}
}

// TestCanarySplitDeterministic pins hash routing: the same X-Canary-Key
// always lands on the same side of a fractional split.
func TestCanarySplitDeterministic(t *testing.T) {
	s, _, _ := canaryServer(t)
	if rec := do(s, http.MethodPost, "/v1/models/m/stage", `{"seq":2,"fraction":0.5,"window":1000000}`); rec.Code != http.StatusOK {
		t.Fatalf("stage status %d", rec.Code)
	}
	versionFor := func(key string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/models/m/predict", strings.NewReader(goodBody))
		req.Header.Set("X-Canary-Key", key)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
		}
		var resp struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Version
	}
	seen := map[int]bool{}
	for _, key := range []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"} {
		first := versionFor(key)
		seen[first] = true
		for i := 0; i < 3; i++ {
			if v := versionFor(key); v != first {
				t.Fatalf("key %q flapped between versions %d and %d", key, first, v)
			}
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("split never exercised both sides: %v", seen)
	}
}

// --- readiness and graceful drain ---

func TestReadyzFlipsOnDrain(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(s, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", rec.Code)
	}
	if s.Draining() {
		t.Fatal("draining before BeginDrain")
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("not draining after BeginDrain")
	}
	rec := do(s, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", rec.Code)
	}
	if code := decodeEnvelope(t, rec); code != CodeDraining {
		t.Fatalf("code %q", code)
	}
	// Inflight requests still complete during the drain.
	if rec := do(s, http.MethodPost, "/v1/models/t/predict", goodBody); rec.Code != http.StatusOK {
		t.Fatalf("predict during drain: %d", rec.Code)
	}
}

// TestSlowLorisCut is the chaos cell for connection hygiene: a client that
// dribbles headers forever is cut off by ReadHeaderTimeout instead of
// pinning a connection.
func TestSlowLorisCut(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	s, err := NewSingle(mf, WithHTTPTimeouts(HTTPTimeouts{ReadHeader: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/models/t/predict HTTP/1.1\r\nHost: x\r\nX-Drib")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// The timeout firing shows up as the connection closing — bare, or after
	// an error status for the truncated headers (Go emits 400 or 408). Our
	// own read deadline expiring, or a 200, would mean the loris pinned a
	// connection and got served.
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("server never cut the slow-loris connection")
		}
	} else if strings.Contains(string(buf[:n]), "200 OK") {
		t.Fatalf("server answered a half-sent request: %q", buf[:n])
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("connection cut only after %v", waited)
	}
}

// TestShutdownUnderLoad is the chaos cell for graceful drain: clients hammer
// a real listener while Shutdown runs. Every request accepted before the
// drain must complete with 200 — zero dropped inflight requests.
func TestShutdownUnderLoad(t *testing.T) {
	mf := trainModelFile(t, 1, 4)
	obsReg := obs.NewRegistry()
	s, err := NewSingle(mf, WithObs(obsReg))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before load: %v %v", resp, err)
	}

	var drainStarted atomic.Bool
	var dropped, completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				resp, err := client.Post(base+"/v1/models/t/predict", "application/json",
					strings.NewReader(goodBody))
				if err != nil {
					// Connection errors are only legitimate once the drain has
					// begun (the listener refuses or closes idle conns). Any
					// earlier failure means a request was dropped.
					if !drainStarted.Load() {
						t.Errorf("request failed before drain: %v", err)
						dropped.Add(1)
					}
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("request got %d", resp.StatusCode)
					dropped.Add(1)
				} else {
					completed.Add(1)
				}
				resp.Body.Close()
				if drainStarted.Load() {
					return
				}
			}
		}()
	}

	// Let traffic flow, then drain mid-stream.
	for obsReg.Snapshot().Serve.Requests < 30 {
		time.Sleep(time.Millisecond)
	}
	drainStarted.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	wg.Wait()

	if dropped.Load() != 0 {
		t.Fatalf("%d requests dropped during drain", dropped.Load())
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed")
	}
	if !s.Draining() {
		t.Fatal("server not marked draining after shutdown")
	}
	sv := obsReg.Snapshot().Serve
	if sv.Drains != 1 {
		t.Fatalf("drain counter = %d, want 1", sv.Drains)
	}
	if !strings.Contains(obsReg.Snapshot().Report(), "1 drains") {
		t.Fatalf("report lacks drain line:\n%s", obsReg.Snapshot().Report())
	}
}

// TestShutdownWithoutListener covers servers driven through ServeHTTP
// directly: Shutdown still flips readiness and waits for inflight work.
func TestShutdownWithoutListener(t *testing.T) {
	s, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatal("not draining after shutdown")
	}
}
