package serve

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Default timeouts for the managed http.Server. ReadHeader bounds slow-loris
// clients, Read bounds the whole request body, Write bounds response
// rendering, Idle reaps keep-alive connections.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 60 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
)

// HTTPTimeouts configures the managed http.Server. Zero fields take the
// package defaults; use a negative value to disable one explicitly.
type HTTPTimeouts struct {
	ReadHeader time.Duration
	Read       time.Duration
	Write      time.Duration
	Idle       time.Duration
}

func (t HTTPTimeouts) withDefaults() HTTPTimeouts {
	pick := func(v, def time.Duration) time.Duration {
		switch {
		case v > 0:
			return v
		case v < 0:
			return 0
		default:
			return def
		}
	}
	t.ReadHeader = pick(t.ReadHeader, DefaultReadHeaderTimeout)
	t.Read = pick(t.Read, DefaultReadTimeout)
	t.Write = pick(t.Write, DefaultWriteTimeout)
	t.Idle = pick(t.Idle, DefaultIdleTimeout)
	return t
}

// WithHTTPTimeouts overrides the managed server's connection timeouts.
func WithHTTPTimeouts(t HTTPTimeouts) Option { return func(s *Server) { s.timeouts = t } }

// HTTPServer builds the managed http.Server the lifecycle methods drive:
// connection timeouts applied, handler pointed at this Server. Shutdown
// drains it.
func (s *Server) HTTPServer(addr string) *http.Server {
	t := s.timeouts.withDefaults()
	hs := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
	s.hs.Store(hs)
	return hs
}

// ListenAndServe runs the managed server until the listener fails or
// Shutdown completes (then it returns http.ErrServerClosed).
func (s *Server) ListenAndServe(addr string) error {
	return s.HTTPServer(addr).ListenAndServe()
}

// Serve runs the managed server on an existing listener.
func (s *Server) Serve(l net.Listener) error {
	return s.HTTPServer(l.Addr().String()).Serve(l)
}

// BeginDrain flips /readyz to unready so load balancers stop routing here,
// and snapshots the inflight count the drain must see out. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drainTarget.Store(s.inflight.Load())
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: readiness flips off, the managed listener
// stops accepting, and inflight requests get until ctx's deadline to finish.
// Returns nil when every inflight request completed (recorded as one drain
// event in obs), or ctx's error when the deadline cut the drain short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	var err error
	if hs := s.hs.Load(); hs != nil {
		err = hs.Shutdown(ctx)
	} else {
		err = s.waitIdle(ctx)
	}
	if err == nil {
		s.obs.Serve().Drain(s.drainTarget.Load())
	}
	return err
}

// waitIdle polls inflight down to zero for servers driven through ServeHTTP
// directly (httptest, embedding) rather than the managed listener.
func (s *Server) waitIdle(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// handleReady is /readyz: 200 while accepting traffic, a 503 draining
// envelope once shutdown has begun.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
}
