// Package serve exposes a trained TreeServer model over HTTP — the "client
// queries" edge of Fig. 2. Endpoints:
//
//	GET  /healthz   liveness probe
//	GET  /schema    feature names, kinds and class labels (JSON)
//	POST /predict   JSON {"rows":[{"col":"value",...},...]} -> predictions
//
// Values arrive as strings and are parsed against the model's stored
// training schema, so categorical codings always match training; missing
// and unseen values follow the paper's Appendix-D semantics.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"treeserver/internal/model"
)

// Server wraps a loaded model file as an http.Handler.
type Server struct {
	Model *model.File
	mux   *http.ServeMux
}

// New builds a server around a loaded model.
func New(m *model.File) *Server {
	s := &Server{Model: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/schema", s.handleSchema)
	s.mux.HandleFunc("/predict", s.handlePredict)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// schemaResponse is the /schema payload.
type schemaResponse struct {
	Model      string   `json:"model"`
	Kind       string   `json:"kind"`
	Task       string   `json:"task"`
	Features   []string `json:"features"`
	Classes    []string `json:"classes,omitempty"`
	NumTrees   int      `json:"num_trees,omitempty"`
	NumRounds  int      `json:"num_rounds,omitempty"`
	TargetName string   `json:"target"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	sc := s.Model.Schema
	resp := schemaResponse{
		Model:      s.Model.Name,
		Kind:       s.Model.Kind,
		Task:       "classification",
		Features:   sc.FeatureNames(),
		TargetName: sc.Names[sc.Target],
	}
	if sc.Regression() {
		resp.Task = "regression"
	} else {
		resp.Classes = sc.TargetLevels()
	}
	if s.Model.Forest != nil {
		resp.NumTrees = len(s.Model.Forest.Trees)
	}
	if s.Model.Boost != nil {
		resp.NumRounds = len(s.Model.Boost.Rounds)
	}
	writeJSON(w, http.StatusOK, resp)
}

// predictRequest is the /predict payload.
type predictRequest struct {
	Rows []map[string]string `json:"rows"`
}

// predictResponse is the /predict result.
type predictResponse struct {
	Predictions []model.Prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, "no rows")
		return
	}
	const maxRows = 100000
	if len(req.Rows) > maxRows {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("at most %d rows per request", maxRows))
		return
	}
	tbl, err := s.Model.Schema.ParseRows(req.Rows)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Predictions: s.Model.Predict(tbl)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than note it for the client.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// ListenAndServe runs the server until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s)
}
