// Package serve is the production serving surface: a versioned /v1 HTTP API
// over the compiled inference engine (internal/infer) and the hot-swap model
// registry (internal/registry).
//
//	GET  /healthz                        liveness probe
//	GET  /v1/models                      registry listing (versions, schema)
//	GET  /v1/models/{name}               one model's listing
//	POST /v1/models/{name}/predict       {"rows":[{...}],"max_depth":N}
//	POST /v1/models/{name}/activate      {"seq":N} (omit/0 = newest staged)
//	POST /v1/models/{name}/rollback      re-activate the previous version
//
// Every /v1 handler reports failures as a structured envelope
// {"error":{"code":"...","message":"..."}}. The predict hot path is
// allocation-free in steady state: request bodies land in pooled buffers,
// rows are decoded straight into the model's pooled row blocks
// (infer.Model.DecodeRequest), and responses are rendered by a pooled
// hand-written encoder.
//
// The pre-/v1 routes survive as deprecated aliases so existing callers keep
// working: /predict and /schema forward to the default model with their
// original response and error shapes.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"treeserver/internal/infer"
	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/registry"
)

// Error codes of the /v1 envelope.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeTooManyRows      = "too_many_rows"
	CodeModelNotFound    = "model_not_found"
	CodeNoActiveVersion  = "no_active_version"
	CodeVersionNotFound  = "version_not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeOverloaded       = "overloaded"        // 429: shed by the inflight gate
	CodeDeadlineExceeded = "deadline_exceeded" // 503: request budget or client gone
	CodeBodyTooLarge     = "body_too_large"    // 413: body over the global cap
	CodeDraining         = "draining"          // 503: server is shutting down
)

// DefaultMaxRows caps rows per predict request unless overridden.
const DefaultMaxRows = 100000

// DefaultMaxBodyBytes caps request bodies unless overridden.
const DefaultMaxBodyBytes int64 = 8 << 20

// Server is the HTTP front end over a model registry.
type Server struct {
	reg          *registry.Registry
	obs          *obs.Registry
	defaultModel string
	maxRows      int
	defaultDepth int // default truncation depth for forests (0 = full)
	mux          *http.ServeMux
	bufPool      sync.Pool // *bytes.Buffer: request bodies and responses

	// Overload control (off unless WithMaxInflight is set).
	maxInflight int
	queueDepth  int
	queueWait   time.Duration
	limiters    limiterMap // model name -> *limiter

	// Request budget (off unless WithRequestTimeout is set) and body cap.
	requestTimeout time.Duration
	maxBodyBytes   int64

	// Lifecycle state driven by lifecycle.go.
	timeouts    HTTPTimeouts
	hs          atomic.Pointer[http.Server]
	draining    atomic.Bool
	inflight    atomic.Int64
	drainTarget atomic.Int64
}

// Option configures a Server.
type Option func(*Server)

// WithObs threads serving telemetry into an obs registry.
func WithObs(r *obs.Registry) Option { return func(s *Server) { s.obs = r } }

// WithDefaultModel names the model the legacy /predict and /schema aliases
// forward to. Unset, the alias resolves only when exactly one model exists.
func WithDefaultModel(name string) Option { return func(s *Server) { s.defaultModel = name } }

// WithMaxRows overrides the per-request row cap.
func WithMaxRows(n int) Option { return func(s *Server) { s.maxRows = n } }

// WithMaxDepth sets the default Appendix-D truncation depth applied to
// forest predictions when the request doesn't carry its own max_depth.
func WithMaxDepth(d int) Option { return func(s *Server) { s.defaultDepth = d } }

// WithMaxInflight turns on per-model overload control: at most n predict
// requests run concurrently per model; the excess is shed as a 429
// "overloaded" envelope with a Retry-After header. 0 disables the gate.
func WithMaxInflight(n int) Option { return func(s *Server) { s.maxInflight = n } }

// WithQueue lets up to depth shed-candidates wait up to wait for an inflight
// slot before being shed. Only meaningful alongside WithMaxInflight.
func WithQueue(depth int, wait time.Duration) Option {
	return func(s *Server) { s.queueDepth, s.queueWait = depth, wait }
}

// WithRequestTimeout bounds each predict request's decode+inference budget.
// Requests over budget (or whose client disconnects) fail with a 503
// "deadline_exceeded" envelope. 0 disables the budget; client disconnects
// are still honored.
func WithRequestTimeout(d time.Duration) Option { return func(s *Server) { s.requestTimeout = d } }

// WithMaxBodyBytes overrides the global request body cap (413 when hit).
// Negative disables the cap.
func WithMaxBodyBytes(n int64) Option { return func(s *Server) { s.maxBodyBytes = n } }

// New builds a server over a registry.
func New(reg *registry.Registry, opts ...Option) *Server {
	s := &Server{reg: reg, maxRows: DefaultMaxRows, maxBodyBytes: DefaultMaxBodyBytes, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.bufPool.New = func() any { return &bytes.Buffer{} }
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/v1/models", s.handleList)
	s.mux.HandleFunc("/v1/models/{name}", s.handleGet)
	s.mux.HandleFunc("/v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/models/{name}/activate", s.handleActivate)
	s.mux.HandleFunc("/v1/models/{name}/rollback", s.handleRollback)
	s.mux.HandleFunc("/v1/models/{name}/stage", s.handleStage)
	s.mux.HandleFunc("/predict", s.handleLegacyPredict)
	s.mux.HandleFunc("/schema", s.handleLegacySchema)
	s.mux.HandleFunc("/", s.handleFallback)
	return s
}

// ServeHTTP implements http.Handler. Every request is inflight-tracked (so
// Shutdown can prove the drain saw them out) and body-capped.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.maxBodyBytes >= 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// --- error envelope ---

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// --- plumbing handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleFallback(w http.ResponseWriter, r *http.Request) {
	s.writeError(w, http.StatusNotFound, CodeNotFound, "no such route: "+r.URL.Path)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	infos := s.reg.List()
	if infos == nil {
		infos = []*registry.Info{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	name := r.PathValue("name")
	info, ok := s.reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeModelNotFound, "unknown model "+strconv.Quote(name))
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

type activateRequest struct {
	Seq int `json:"seq"`
}

type activateResponse struct {
	Name      string `json:"name"`
	ActiveSeq int    `json:"active_seq"`
}

func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	name := r.PathValue("name")
	var req activateRequest
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid JSON: "+err.Error())
			return
		}
	}
	v, err := s.reg.Activate(name, req.Seq)
	if err != nil {
		code, status := CodeVersionNotFound, http.StatusNotFound
		if _, known := s.reg.Get(name); !known {
			code = CodeModelNotFound
		}
		s.writeError(w, status, code, err.Error())
		return
	}
	s.obs.Serve().Swap()
	s.writeJSON(w, http.StatusOK, activateResponse{Name: name, ActiveSeq: v.Seq})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	name := r.PathValue("name")
	v, err := s.reg.Rollback(name)
	if err != nil {
		code := CodeVersionNotFound
		if _, known := s.reg.Get(name); !known {
			code = CodeModelNotFound
		}
		s.writeError(w, http.StatusNotFound, code, err.Error())
		return
	}
	s.obs.Serve().Swap()
	s.writeJSON(w, http.StatusOK, activateResponse{Name: name, ActiveSeq: v.Seq})
}

type stageRequest struct {
	Seq      int     `json:"seq"`
	Fraction float64 `json:"fraction"`
	Window   int     `json:"window"`
}

type stageResponse struct {
	Name     string  `json:"name"`
	Seq      int     `json:"seq"`
	Fraction float64 `json:"fraction"`
	Window   int     `json:"window"`
}

// handleStage starts a canary rollout: POST {"seq":N,"fraction":F,"window":W}
// routes fraction F of the model's traffic to version N (omit/0 seq = newest
// staged; omit window = registry policy). The canary auto-promotes or
// auto-rolls-back once W canary requests have been observed.
func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	name := r.PathValue("name")
	var req stageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid JSON: "+err.Error())
		return
	}
	v, err := s.reg.StageWindow(name, req.Seq, req.Fraction, req.Window)
	if err != nil {
		switch {
		case errors.Is(err, registry.ErrUnknownModel):
			s.writeError(w, http.StatusNotFound, CodeModelNotFound, err.Error())
		case errors.Is(err, registry.ErrUnknownVersion):
			s.writeError(w, http.StatusNotFound, CodeVersionNotFound, err.Error())
		case errors.Is(err, registry.ErrNoActiveVersion):
			s.writeError(w, http.StatusConflict, CodeNoActiveVersion, err.Error())
		default:
			s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		}
		return
	}
	info, _ := s.reg.Canary(name)
	window := 0
	if info != nil {
		window = info.Window
	}
	s.writeJSON(w, http.StatusOK, stageResponse{Name: name, Seq: v.Seq, Fraction: req.Fraction, Window: window})
}

// --- predict hot path ---

// predictOutcome is what the shared predict core reports for telemetry.
type predictOutcome struct {
	rows     int
	isErr    bool
	shed     bool // rejected by the overload gate
	deadline bool // cut off by the request budget or client disconnect
	routed   bool // reached a model version (feeds the canary window)
	canary   bool // which side of the canary split served it
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("name")
	out := s.predict(w, r, name, false)
	s.record(name, start, out)
}

// record feeds one predict outcome into serving telemetry and, when a canary
// is live, into its decision window.
func (s *Server) record(name string, start time.Time, out predictOutcome) {
	ns := time.Since(start).Nanoseconds()
	sv := s.obs.Serve()
	sv.Request(name, out.rows, ns, out.isErr)
	if out.shed {
		sv.Shed()
	}
	if out.deadline {
		sv.DeadlineExceeded()
	}
	if !out.routed {
		return
	}
	switch s.reg.Observe(name, out.canary, ns, out.isErr) {
	case registry.CanaryPromoted:
		sv.CanaryPromote()
		sv.Swap()
	case registry.CanaryRolledBack:
		sv.CanaryRollback()
	}
}

// canaryKey is the identity the canary split hashes: an explicit
// X-Canary-Key header when the caller wants deterministic routing, the
// client address otherwise (so one client sticks to one side).
func canaryKey(r *http.Request) string {
	if k := r.Header.Get("X-Canary-Key"); k != "" {
		return k
	}
	return r.RemoteAddr
}

// resolveDefault names the model legacy aliases forward to: the configured
// default, or the registry's only model.
func (s *Server) resolveDefault() string {
	if s.defaultModel != "" {
		return s.defaultModel
	}
	if names := s.reg.Names(); len(names) == 1 {
		return names[0]
	}
	return ""
}

// predict runs the shared predict core. legacy selects the pre-/v1 response
// and error shapes. Returns telemetry for the caller to record.
func (s *Server) predict(w http.ResponseWriter, r *http.Request, name string, legacy bool) predictOutcome {
	var out predictOutcome
	fail := func(status int, code, msg string) predictOutcome {
		if legacy {
			// The pre-/v1 error shape was a bare {"error":"message"}.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintf(w, "{\"error\":%s}\n", strconv.Quote(msg))
		} else {
			s.writeError(w, status, code, msg)
		}
		out.isErr = true
		return out
	}
	if r.Method != http.MethodPost {
		return fail(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
	}
	if name == "" {
		return fail(http.StatusNotFound, CodeModelNotFound,
			"no default model configured; use /v1/models/{name}/predict")
	}
	v, canary, ok := s.reg.Route(name, registry.HashKey(canaryKey(r)))
	if !ok {
		if _, known := s.reg.Get(name); known {
			return fail(http.StatusServiceUnavailable, CodeNoActiveVersion,
				"model "+strconv.Quote(name)+" has no active version")
		}
		return fail(http.StatusNotFound, CodeModelNotFound, "unknown model "+strconv.Quote(name))
	}
	m := v.Compiled

	ctx := r.Context()
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}

	if l := s.limiterFor(name); l != nil {
		admitted, err := l.acquire(ctx)
		if err != nil {
			out.deadline = true
			return fail(http.StatusServiceUnavailable, CodeDeadlineExceeded,
				"request expired waiting for capacity: "+err.Error())
		}
		if !admitted {
			// Shed before touching the version: a shed never executed, so it
			// must not feed the canary window.
			w.Header().Set("Retry-After", "1")
			out.shed = true
			return fail(http.StatusTooManyRequests, CodeOverloaded,
				"model "+strconv.Quote(name)+" is over its inflight limit; retry later")
		}
		defer l.release()
	}
	// Past admission the request executes on v; from here every outcome —
	// success, decode error, deadline — feeds the canary decision window.
	out.routed, out.canary = true, canary

	body := s.bufPool.Get().(*bytes.Buffer)
	body.Reset()
	defer s.bufPool.Put(body)
	if _, err := body.ReadFrom(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fail(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds "+strconv.FormatInt(tooBig.Limit, 10)+" bytes")
		}
		if ctx.Err() != nil {
			out.deadline = true
			return fail(http.StatusServiceUnavailable, CodeDeadlineExceeded,
				"reading body: "+ctx.Err().Error())
		}
		return fail(http.StatusBadRequest, CodeInvalidRequest, "reading body: "+err.Error())
	}

	block := m.GetBlock()
	defer m.PutBlock(block)
	depth, err := m.DecodeRequestCtx(ctx, block, body.Bytes(), s.maxRows)
	if err != nil {
		if errors.Is(err, infer.ErrTooManyRows) {
			return fail(http.StatusRequestEntityTooLarge, CodeTooManyRows, err.Error())
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			out.deadline = true
			return fail(http.StatusServiceUnavailable, CodeDeadlineExceeded, err.Error())
		}
		return fail(http.StatusBadRequest, CodeInvalidRequest, err.Error())
	}
	if block.Len() == 0 {
		return fail(http.StatusBadRequest, CodeInvalidRequest, "no rows")
	}
	switch {
	case depth < 0:
		return fail(http.StatusBadRequest, CodeInvalidRequest, "max_depth must be >= 0")
	case depth > 0 && !m.DepthTruncation():
		return fail(http.StatusBadRequest, CodeInvalidRequest,
			"max_depth applies only to forest models (boost trees predict at leaves)")
	case depth == 0 && m.DepthTruncation():
		depth = s.defaultDepth
	}

	res := m.GetResult()
	defer m.PutResult(res)
	if err := m.PredictCtx(ctx, block, res, depth); err != nil {
		out.deadline = true
		return fail(http.StatusServiceUnavailable, CodeDeadlineExceeded,
			"inference aborted: "+err.Error())
	}

	resp := s.bufPool.Get().(*bytes.Buffer)
	resp.Reset()
	defer s.bufPool.Put(resp)
	if legacy {
		encodeLegacyResponse(resp, m, res)
	} else {
		encodeResponse(resp, v, m, res)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(resp.Bytes())
	out.rows = res.Len()
	return out
}

// encodeResponse renders the /v1 predict response:
//
//	{"model":"m","version":2,"predictions":[{"class":"C1","pmf":[..]},...]}
//
// hand-written into a pooled buffer so the hot path stays zero-alloc.
func encodeResponse(buf *bytes.Buffer, v *registry.Version, m *infer.Model, res *infer.Result) {
	b := buf.AvailableBuffer()
	b = append(b, `{"model":`...)
	b = appendJSONString(b, v.Name)
	b = append(b, `,"version":`...)
	b = strconv.AppendInt(b, int64(v.Seq), 10)
	b = append(b, `,"predictions":[`...)
	classes := m.Classes()
	for i := 0; i < res.Len(); i++ {
		if i > 0 {
			b = append(b, ',')
		}
		switch {
		case m.Regression():
			b = append(b, `{"value":`...)
			b = appendJSONFloat(b, res.Value(i))
			b = append(b, '}')
		case m.Kind() == "forest":
			b = append(b, `{"class":`...)
			b = appendJSONString(b, classes[res.Class(i)])
			b = append(b, `,"pmf":[`...)
			for j, p := range res.PMF(i) {
				if j > 0 {
					b = append(b, ',')
				}
				b = appendJSONFloat(b, p)
			}
			b = append(b, ']', '}')
		default: // boost classification: class only
			b = append(b, `{"class":`...)
			b = appendJSONString(b, classes[res.Class(i)])
			b = append(b, '}')
		}
	}
	b = append(b, `]}`...)
	b = append(b, '\n')
	_, _ = buf.Write(b)
}

// encodeLegacyResponse renders the pre-/v1 shape: {"predictions":[...]}
// with encoding/json omitempty semantics (class omitted when empty, pmf when
// absent, value when zero) so old callers see byte-compatible output.
func encodeLegacyResponse(buf *bytes.Buffer, m *infer.Model, res *infer.Result) {
	b := buf.AvailableBuffer()
	b = append(b, `{"predictions":[`...)
	classes := m.Classes()
	for i := 0; i < res.Len(); i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '{')
		if !m.Regression() {
			b = append(b, `"class":`...)
			b = appendJSONString(b, classes[res.Class(i)])
			if m.Kind() == "forest" {
				b = append(b, `,"pmf":[`...)
				for j, p := range res.PMF(i) {
					if j > 0 {
						b = append(b, ',')
					}
					b = appendJSONFloat(b, p)
				}
				b = append(b, ']')
			}
		} else if res.Value(i) != 0 {
			b = append(b, `"value":`...)
			b = appendJSONFloat(b, res.Value(i))
		}
		b = append(b, '}')
	}
	b = append(b, `]}`...)
	b = append(b, '\n')
	_, _ = buf.Write(b)
}

// appendJSONFloat appends a float the way encoding/json does for the common
// cases: shortest round-trip decimal. (NaN/Inf cannot reach here — PMFs and
// means are finite.)
func appendJSONFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends a JSON-escaped string. strconv.AppendQuote is not
// usable here: it emits Go-syntax \x escapes, which are invalid JSON.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			i++
			continue
		}
		b = append(b, s[start:i]...)
		if c >= utf8.RuneSelf {
			// Valid UTF-8 passes through untouched; invalid bytes become the
			// replacement rune, like encoding/json.
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, `�`...)
			} else {
				b = append(b, s[i:i+size]...)
			}
			i += size
			start = i
			continue
		}
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[c>>4], hex[c&0xF])
		}
		i++
		start = i
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// --- legacy aliases ---

func (s *Server) handleLegacyPredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := s.resolveDefault()
	out := s.predict(w, r, name, true)
	s.record(name, start, out)
}

// legacySchemaResponse is the pre-/v1 /schema payload, kept byte-compatible.
type legacySchemaResponse struct {
	Model      string   `json:"model"`
	Kind       string   `json:"kind"`
	Task       string   `json:"task"`
	Features   []string `json:"features"`
	Classes    []string `json:"classes,omitempty"`
	NumTrees   int      `json:"num_trees,omitempty"`
	NumRounds  int      `json:"num_rounds,omitempty"`
	TargetName string   `json:"target"`
}

func (s *Server) handleLegacySchema(w http.ResponseWriter, r *http.Request) {
	name := s.resolveDefault()
	v, ok := s.reg.Active(name)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"no default model"}`)
		return
	}
	mf := v.File
	sc := mf.Schema
	resp := legacySchemaResponse{
		Model:      mf.Name,
		Kind:       mf.Kind,
		Task:       "classification",
		Features:   sc.FeatureNames(),
		TargetName: sc.Names[sc.Target],
	}
	if sc.Regression() {
		resp.Task = "regression"
	} else {
		resp.Classes = sc.TargetLevels()
	}
	if mf.Forest != nil {
		resp.NumTrees = len(mf.Forest.Trees)
	}
	if mf.Boost != nil {
		resp.NumRounds = len(mf.Boost.Rounds)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// NewSingle wraps one loaded model file in a registry and serves it — the
// tsserve -model fast path and a convenience for tests.
func NewSingle(mf *model.File, opts ...Option) (*Server, error) {
	reg := registry.New()
	name := mf.Name
	if name == "" {
		name = "default"
	}
	if _, err := reg.Load(name, mf, "inline"); err != nil {
		return nil, err
	}
	if _, err := reg.Activate(name, 0); err != nil {
		return nil, err
	}
	return New(reg, append([]Option{WithDefaultModel(name)}, opts...)...), nil
}
