package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/forest"
	"treeserver/internal/model"
	"treeserver/internal/synth"
)

func testServer(t *testing.T) (*Server, *model.File) {
	t.Helper()
	train, _ := synth.Generate(synth.Spec{
		Name: "serve", Rows: 2500, NumNumeric: 3, NumCategorical: 1, CatLevels: 4,
		NumClasses: 2, ConceptDepth: 3, Seed: 77,
	}, 0)
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: 4, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "t", f, model.SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return New(mf), mf
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestSchemaEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/schema", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("schema status %d", rec.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["task"] != "classification" || resp["kind"] != "forest" {
		t.Fatalf("schema = %v", resp)
	}
	if feats := resp["features"].([]any); len(feats) != 4 {
		t.Fatalf("features = %v", feats)
	}
	if trees := resp["num_trees"].(float64); trees != 4 {
		t.Fatalf("num_trees = %v", trees)
	}
}

func TestPredictEndpoint(t *testing.T) {
	s, _ := testServer(t)
	body := `{"rows":[
		{"num0":"0.5","num1":"-1","num2":"2","cat0":"L1"},
		{"num0":"","cat0":"UNKNOWN"}
	]}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []model.Prediction `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 2 {
		t.Fatalf("predictions = %d", len(resp.Predictions))
	}
	for i, p := range resp.Predictions {
		if p.Class != "C0" && p.Class != "C1" {
			t.Fatalf("prediction %d class %q", i, p.Class)
		}
		sum := 0.0
		for _, v := range p.PMF {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("prediction %d pmf sums to %g", i, sum)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	s, _ := testServer(t)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/predict", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader("{garbage")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"rows":[]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty rows status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"rows":[{"num0":"xx"}]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad numeric status %d", rec.Code)
	}
}

func TestPredictMatchesDirectEvaluation(t *testing.T) {
	s, mf := testServer(t)
	row := map[string]string{"num0": "1.0", "num1": "0.2", "num2": "-0.7", "cat0": "L2"}
	payload, _ := json.Marshal(map[string]any{"rows": []any{row}})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(payload)))
	var resp struct {
		Predictions []model.Prediction `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	tbl, err := mf.Schema.ParseRow(row)
	if err != nil {
		t.Fatal(err)
	}
	want := mf.Predict(tbl)[0]
	if resp.Predictions[0].Class != want.Class {
		t.Fatalf("HTTP %q != direct %q", resp.Predictions[0].Class, want.Class)
	}
}
