package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/forest"
	"treeserver/internal/model"
	"treeserver/internal/obs"
	"treeserver/internal/registry"
	"treeserver/internal/synth"
)

func trainModelFile(t *testing.T, seed int64, trees int) *model.File {
	t.Helper()
	train, _ := synth.Generate(synth.Spec{
		Name: "serve", Rows: 2500, NumNumeric: 3, NumCategorical: 1, CatLevels: 4,
		NumClasses: 2, ConceptDepth: 3, Seed: 77,
	}, 0)
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: trees, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "t", f, model.SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return mf
}

func testServer(t *testing.T) (*Server, *model.File) {
	t.Helper()
	mf := trainModelFile(t, 1, 4)
	s, err := NewSingle(mf)
	if err != nil {
		t.Fatal(err)
	}
	return s, mf
}

func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	s.ServeHTTP(rec, r)
	return rec
}

// decodeEnvelope asserts the response is the typed error envelope and
// returns its code.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("not an envelope: %s", rec.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code/message: %s", rec.Body.String())
	}
	return env.Error.Code
}

// --- legacy alias compatibility (the pre-/v1 contract) ---

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec := do(s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestLegacySchemaEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := do(s, http.MethodGet, "/schema", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("schema status %d", rec.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["task"] != "classification" || resp["kind"] != "forest" {
		t.Fatalf("schema = %v", resp)
	}
	if feats := resp["features"].([]any); len(feats) != 4 {
		t.Fatalf("features = %v", feats)
	}
	if trees := resp["num_trees"].(float64); trees != 4 {
		t.Fatalf("num_trees = %v", trees)
	}
}

func TestLegacyPredictEndpoint(t *testing.T) {
	s, _ := testServer(t)
	body := `{"rows":[
		{"num0":"0.5","num1":"-1","num2":"2","cat0":"L1"},
		{"num0":"","cat0":"UNKNOWN"}
	]}`
	rec := do(s, http.MethodPost, "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []model.Prediction `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 2 {
		t.Fatalf("predictions = %d", len(resp.Predictions))
	}
	for i, p := range resp.Predictions {
		if p.Class != "C0" && p.Class != "C1" {
			t.Fatalf("prediction %d class %q", i, p.Class)
		}
		sum := 0.0
		for _, v := range p.PMF {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("prediction %d pmf sums to %g", i, sum)
		}
	}
}

func TestLegacyPredictErrors(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(s, http.MethodGet, "/predict", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict status %d", rec.Code)
	}
	if rec := do(s, http.MethodPost, "/predict", "{garbage"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec.Code)
	}
	if rec := do(s, http.MethodPost, "/predict", `{"rows":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty rows status %d", rec.Code)
	}
	rec := do(s, http.MethodPost, "/predict", `{"rows":[{"num0":"xx"}]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad numeric status %d", rec.Code)
	}
	// Legacy errors keep the old flat shape: {"error":"message"}.
	var legacyErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &legacyErr); err != nil || legacyErr.Error == "" {
		t.Fatalf("legacy error shape: %s", rec.Body.String())
	}
}

// TestLegacyPredictMatchesDirectEvaluation pins the alias to the
// interpreter's predictions — the compiled engine behind it must be
// invisible to old callers.
func TestLegacyPredictMatchesDirectEvaluation(t *testing.T) {
	s, mf := testServer(t)
	row := map[string]string{"num0": "1.0", "num1": "0.2", "num2": "-0.7", "cat0": "L2"}
	payload, _ := json.Marshal(map[string]any{"rows": []any{row}})
	rec := do(s, http.MethodPost, "/predict", string(payload))
	var resp struct {
		Predictions []model.Prediction `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	tbl, err := mf.Schema.ParseRow(row)
	if err != nil {
		t.Fatal(err)
	}
	want := mf.Predict(tbl)[0]
	if resp.Predictions[0].Class != want.Class {
		t.Fatalf("HTTP %q != direct %q", resp.Predictions[0].Class, want.Class)
	}
	for i, p := range want.PMF {
		if resp.Predictions[0].PMF[i] != p {
			t.Fatalf("pmf[%d] %v != %v", i, resp.Predictions[0].PMF[i], p)
		}
	}
}

// --- /v1 surface ---

func TestV1PredictSingleAndBatch(t *testing.T) {
	s, mf := testServer(t)
	// Single row; native JSON numbers allowed.
	rec := do(s, http.MethodPost, "/v1/models/t/predict",
		`{"rows":[{"num0":1.0,"num1":0.2,"num2":-0.7,"cat0":"L2"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Model       string `json:"model"`
		Version     int    `json:"version"`
		Predictions []struct {
			Class string    `json:"class"`
			PMF   []float64 `json:"pmf"`
		} `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%v in %s", err, rec.Body.String())
	}
	if resp.Model != "t" || resp.Version != 1 || len(resp.Predictions) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	tbl, _ := mf.Schema.ParseRow(map[string]string{"num0": "1.0", "num1": "0.2", "num2": "-0.7", "cat0": "L2"})
	if want := mf.Predict(tbl)[0]; resp.Predictions[0].Class != want.Class {
		t.Fatalf("class %q != %q", resp.Predictions[0].Class, want.Class)
	}

	// Batch.
	rec = do(s, http.MethodPost, "/v1/models/t/predict",
		`{"rows":[{"num0":"0.5"},{"num0":"-2"},{"cat0":"L1"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 3 {
		t.Fatalf("batch predictions = %d", len(resp.Predictions))
	}
}

func TestV1PredictMaxDepth(t *testing.T) {
	s, _ := testServer(t)
	full := do(s, http.MethodPost, "/v1/models/t/predict", `{"rows":[{"num0":"0.5","num1":"3","num2":"-1"}]}`)
	depth1 := do(s, http.MethodPost, "/v1/models/t/predict", `{"rows":[{"num0":"0.5","num1":"3","num2":"-1"}],"max_depth":1}`)
	if full.Code != http.StatusOK || depth1.Code != http.StatusOK {
		t.Fatalf("status %d/%d", full.Code, depth1.Code)
	}
	// Depth-capped responses stay valid JSON with PMFs; the distributions
	// usually differ but both must sum to ~1.
	for _, rec := range []*httptest.ResponseRecorder{full, depth1} {
		var resp struct {
			Predictions []struct {
				PMF []float64 `json:"pmf"`
			} `json:"predictions"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range resp.Predictions[0].PMF {
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("pmf sums to %g", sum)
		}
	}
	if rec := do(s, http.MethodPost, "/v1/models/t/predict", `{"rows":[{}],"max_depth":-1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative depth status %d", rec.Code)
	}
}

func TestV1ErrorEnvelopes(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{http.MethodPost, "/v1/models/ghost/predict", `{"rows":[{}]}`, http.StatusNotFound, CodeModelNotFound},
		{http.MethodGet, "/v1/models/t/predict", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{http.MethodPost, "/v1/models/t/predict", `{garbage`, http.StatusBadRequest, CodeInvalidRequest},
		{http.MethodPost, "/v1/models/t/predict", `{"rows":[]}`, http.StatusBadRequest, CodeInvalidRequest},
		{http.MethodPost, "/v1/models/t/predict", `{"rows":[{"num0":"xx"}]}`, http.StatusBadRequest, CodeInvalidRequest},
		{http.MethodPost, "/v1/models", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{http.MethodGet, "/v1/models/ghost", "", http.StatusNotFound, CodeModelNotFound},
		{http.MethodPost, "/v1/models/ghost/activate", "", http.StatusNotFound, CodeModelNotFound},
		{http.MethodPost, "/v1/models/t/activate", `{"seq":99}`, http.StatusNotFound, CodeVersionNotFound},
		{http.MethodPost, "/v1/models/t/rollback", "", http.StatusNotFound, CodeVersionNotFound},
		{http.MethodGet, "/v1/nonsense", "", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		rec := do(s, tc.method, tc.path, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if code := decodeEnvelope(t, rec); code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, code, tc.code)
		}
	}
}

func TestV1TooManyRows(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	s, err := NewSingle(mf, WithMaxRows(2))
	if err != nil {
		t.Fatal(err)
	}
	rec := do(s, http.MethodPost, "/v1/models/t/predict", `{"rows":[{},{},{}]}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d", rec.Code)
	}
	if code := decodeEnvelope(t, rec); code != CodeTooManyRows {
		t.Fatalf("code %q", code)
	}
}

func TestV1ListAndGet(t *testing.T) {
	s, _ := testServer(t)
	rec := do(s, http.MethodGet, "/v1/models", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var list struct {
		Models []registry.Info `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "t" || list.Models[0].ActiveSeq != 1 {
		t.Fatalf("list = %+v", list)
	}
	if list.Models[0].Task != "classification" || len(list.Models[0].Features) != 4 {
		t.Fatalf("info = %+v", list.Models[0])
	}

	rec = do(s, http.MethodGet, "/v1/models/t", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get status %d", rec.Code)
	}
	var info registry.Info
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "t" || len(info.Versions) != 1 || !info.Versions[0].Active {
		t.Fatalf("info = %+v", info)
	}
}

// TestV1ActivateRollbackFlow drives a two-version lifecycle over HTTP and
// checks the served version header follows the swaps.
func TestV1ActivateRollbackFlow(t *testing.T) {
	reg := registry.New()
	if _, err := reg.Load("m", trainModelFile(t, 1, 4), "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate("m", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("m", trainModelFile(t, 2, 3), "v2"); err != nil {
		t.Fatal(err)
	}
	s := New(reg)

	servedVersion := func() int {
		rec := do(s, http.MethodPost, "/v1/models/m/predict", `{"rows":[{"num0":"1"}]}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
		}
		var resp struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Version
	}

	if v := servedVersion(); v != 1 {
		t.Fatalf("serving version %d, want 1", v)
	}
	rec := do(s, http.MethodPost, "/v1/models/m/activate", `{"seq":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("activate status %d: %s", rec.Code, rec.Body.String())
	}
	var act struct {
		ActiveSeq int `json:"active_seq"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &act); err != nil {
		t.Fatal(err)
	}
	if act.ActiveSeq != 2 {
		t.Fatalf("activate -> %d", act.ActiveSeq)
	}
	if v := servedVersion(); v != 2 {
		t.Fatalf("serving version %d, want 2", v)
	}
	rec = do(s, http.MethodPost, "/v1/models/m/rollback", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("rollback status %d: %s", rec.Code, rec.Body.String())
	}
	if v := servedVersion(); v != 1 {
		t.Fatalf("serving version %d after rollback, want 1", v)
	}
	// Activate with no body selects the newest staged version.
	if rec := do(s, http.MethodPost, "/v1/models/m/activate", ""); rec.Code != http.StatusOK {
		t.Fatalf("empty-body activate status %d", rec.Code)
	}
	if v := servedVersion(); v != 2 {
		t.Fatalf("serving version %d after re-activate, want 2", v)
	}
}

func TestV1RegressionResponse(t *testing.T) {
	train, _ := synth.Generate(synth.Spec{
		Name: "reg", Rows: 1500, NumNumeric: 3, NumClasses: 0, ConceptDepth: 3, Seed: 9,
	}, 0)
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: 3, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "reg", f, model.SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSingle(mf)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(s, http.MethodPost, "/v1/models/reg/predict", `{"rows":[{"num0":"0.1","num1":"0.2","num2":"0.3"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []struct {
			Value *float64 `json:"value"`
		} `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 1 || resp.Predictions[0].Value == nil {
		t.Fatalf("resp = %s", rec.Body.String())
	}
	tbl, _ := mf.Schema.ParseRow(map[string]string{"num0": "0.1", "num1": "0.2", "num2": "0.3"})
	if want := mf.Predict(tbl)[0].Value; *resp.Predictions[0].Value != want {
		t.Fatalf("value %v != %v", *resp.Predictions[0].Value, want)
	}
}

func TestServeObsCounters(t *testing.T) {
	mf := trainModelFile(t, 1, 2)
	reg := obs.NewRegistry()
	s, err := NewSingle(mf, WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if rec := do(s, http.MethodPost, "/v1/models/t/predict", `{"rows":[{"num0":"1"},{"num0":"2"}]}`); rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
	}
	do(s, http.MethodPost, "/v1/models/t/predict", `{garbage`)
	do(s, http.MethodPost, "/predict", `{"rows":[{"num0":"1"}]}`)
	snap := reg.Snapshot()
	sv := snap.Serve
	if sv.Requests != 7 || sv.Errors != 1 || sv.Rows != 11 {
		t.Fatalf("serve snapshot = %+v", sv)
	}
	if sv.P50Ns <= 0 || sv.P99Ns < sv.P50Ns || sv.QPS <= 0 {
		t.Fatalf("latency stats = %+v", sv)
	}
	if len(sv.Models) != 1 || sv.Models[0].Name != "t" || sv.Models[0].Requests != 7 {
		t.Fatalf("per-model = %+v", sv.Models)
	}
	if !strings.Contains(snap.Report(), "serving: 7 requests") {
		t.Fatalf("report lacks serving section:\n%s", snap.Report())
	}
}

// TestPredictHandlerZeroAlloc proves the whole HTTP predict path — routing,
// body buffering, decode, predict, encode — settles to zero allocations per
// request (modulo the recorder itself, measured and subtracted via a
// reusable recorder pattern below).
func TestPredictHandlerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates AllocsPerRun")
	}
	s, _ := testServer(t)
	body := []byte(`{"rows":[{"num0":"0.5","num1":"-1","num2":"2","cat0":"L1"},{"num0":"1.5"}]}`)
	rec := &countingWriter{}
	req := httptest.NewRequest(http.MethodPost, "/v1/models/t/predict", nil)
	reader := bytes.NewReader(body)
	work := func() {
		reader.Reset(body)
		req.Body = nopCloser{reader}
		rec.reset()
		s.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			panic(rec.status)
		}
	}
	work()
	// The handler itself must stay under a handful of allocations per
	// request (header map churn inside net/http test plumbing is allowed;
	// block/result/buffer pools must not leak into per-request cost).
	if avg := testing.AllocsPerRun(200, work); avg > 8 {
		t.Fatalf("predict handler allocates %.1f per request", avg)
	}
}

type nopCloser struct{ *bytes.Reader }

func (nopCloser) Close() error { return nil }

// countingWriter is a minimal ResponseWriter that discards the body without
// per-call allocations (httptest.NewRecorder allocates a fresh Body buffer).
type countingWriter struct {
	h      http.Header
	status int
	n      int
}

func (c *countingWriter) reset() {
	c.status = 0
	c.n = 0
	for k := range c.h {
		delete(c.h, k)
	}
}

func (c *countingWriter) Header() http.Header {
	if c.h == nil {
		c.h = http.Header{}
	}
	return c.h
}

func (c *countingWriter) WriteHeader(code int) { c.status = code }

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	c.n += len(p)
	return len(p), nil
}
