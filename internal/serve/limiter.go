package serve

import (
	"context"
	"sync"
	"time"
)

// limiter is the per-model overload gate: at most maxInflight requests hold
// a slot concurrently, at most queueDepth more wait (each up to queueWait)
// for one to free, and everything beyond that is shed immediately. Both
// channels are fixed-capacity, so admission is two channel operations on
// the happy path and the gate allocates only on the queued slow path (one
// timer).
type limiter struct {
	tokens chan struct{} // buffered to maxInflight; a held slot is one element
	queue  chan struct{} // buffered to queueDepth; a waiter is one element
	wait   time.Duration // how long a queued request may wait for a slot
}

func newLimiter(maxInflight, queueDepth int, wait time.Duration) *limiter {
	l := &limiter{tokens: make(chan struct{}, maxInflight), wait: wait}
	if queueDepth > 0 {
		l.queue = make(chan struct{}, queueDepth)
	}
	return l
}

// acquire admits the request (true), sheds it (false, nil), or aborts the
// queued wait when the request's context dies (false, ctx error). An
// admitted request must release().
func (l *limiter) acquire(ctx context.Context) (bool, error) {
	select {
	case l.tokens <- struct{}{}:
		return true, nil
	default:
	}
	if l.queue == nil || l.wait <= 0 {
		return false, nil
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return false, nil // wait queue full: shed
	}
	defer func() { <-l.queue }()
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.tokens <- struct{}{}:
		return true, nil
	case <-t.C:
		return false, nil // waited the full budget: shed
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

func (l *limiter) release() { <-l.tokens }

// limiterFor returns the gate for a model, creating it on first use.
// Returns nil when overload control is off (maxInflight == 0).
func (s *Server) limiterFor(name string) *limiter {
	if s.maxInflight <= 0 {
		return nil
	}
	if v, ok := s.limiters.Load(name); ok {
		return v.(*limiter)
	}
	v, _ := s.limiters.LoadOrStore(name, newLimiter(s.maxInflight, s.queueDepth, s.queueWait))
	return v.(*limiter)
}

// limiters is a tiny typed wrapper so Server's field reads clearly.
type limiterMap = sync.Map
