//go:build race

package serve

// raceEnabled skips allocation-count assertions: the race detector
// instruments every allocation and inflates AllocsPerRun.
const raceEnabled = true
