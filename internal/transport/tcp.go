package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCPEndpoint is a transport endpoint backed by real TCP sockets, for
// running master and workers as separate OS processes (cmd/treeserver).
// Frames are length-prefixed: 4-byte big-endian name length + name, then
// 4-byte payload length + gob payload.
type TCPEndpoint struct {
	name     string
	listener net.Listener
	peers    map[string]string // name -> address
	box      *mailbox

	connMu sync.Mutex
	conns  map[string]*tcpConn

	msgsSent, msgsRecvd   atomic.Int64
	bytesSent, bytesRecvd atomic.Int64

	closeOnce sync.Once
	closed    atomic.Bool
	wg        sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// ListenTCP starts an endpoint listening on addr ("host:port", empty port
// for ephemeral). peers maps every other endpoint name to its address; the
// map may be extended before the first Send to a given peer.
func ListenTCP(name, addr string, peers map[string]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		name:     name,
		listener: ln,
		peers:    map[string]string{},
		box:      newMailbox(),
		conns:    map[string]*tcpConn{},
	}
	for k, v := range peers {
		ep.peers[k] = v
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the endpoint's listening address.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// AddPeer registers (or updates) a peer address.
func (e *TCPEndpoint) AddPeer(name, addr string) {
	e.connMu.Lock()
	e.peers[name] = addr
	e.connMu.Unlock()
}

// RepointPeer re-homes a peer name to a new address and drops any cached
// connection to the old one, so the next Send dials fresh. Workers use it
// when a promoted standby master announces its address in the rejoin
// handshake.
func (e *TCPEndpoint) RepointPeer(name, addr string) {
	e.connMu.Lock()
	if tc, ok := e.conns[name]; ok {
		tc.mu.Lock()
		tc.c.Close()
		tc.mu.Unlock()
		delete(e.conns, name)
	}
	e.peers[name] = addr
	e.connMu.Unlock()
}

// Name implements Endpoint.
func (e *TCPEndpoint) Name() string { return e.name }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer c.Close()
	for {
		from, data, err := readFrame(c)
		if err != nil {
			return
		}
		payload, err := DecodePayload(data)
		if err != nil {
			return
		}
		e.msgsRecvd.Add(1)
		e.bytesRecvd.Add(int64(len(data)))
		if !e.box.put(Envelope{From: from, Payload: payload}) {
			return
		}
	}
}

func readFrame(r io.Reader) (from string, payload []byte, err error) {
	var nameLen, payloadLen uint32
	if err = binary.Read(r, binary.BigEndian, &nameLen); err != nil {
		return
	}
	if nameLen > 1<<16 {
		return "", nil, fmt.Errorf("transport: name frame too large: %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err = io.ReadFull(r, name); err != nil {
		return
	}
	if err = binary.Read(r, binary.BigEndian, &payloadLen); err != nil {
		return
	}
	if payloadLen > 1<<30 {
		return "", nil, fmt.Errorf("transport: payload frame too large: %d", payloadLen)
	}
	payload = make([]byte, payloadLen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return
	}
	return string(name), payload, nil
}

func writeFrame(w io.Writer, from string, payload []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(from))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, from); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(payload))); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func (e *TCPEndpoint) dial(to string) (*tcpConn, error) {
	e.connMu.Lock()
	defer e.connMu.Unlock()
	if tc, ok := e.conns[to]; ok {
		return tc, nil
	}
	addr, ok := e.peers[to]
	if !ok {
		return nil, fmt.Errorf("transport: %w: peer %q", ErrUnknownEndpoint, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w", to, addr, err)
	}
	tc := &tcpConn{c: c}
	e.conns[to] = tc
	return tc, nil
}

// Send implements Endpoint.
func (e *TCPEndpoint) Send(to string, payload any) error {
	if e.closed.Load() {
		return fmt.Errorf("transport: endpoint %q: %w", e.name, ErrClosed)
	}
	data, err := EncodePayload(payload)
	if err != nil {
		return err
	}
	tc, err := e.dial(to)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	err = writeFrame(tc.c, e.name, data)
	tc.mu.Unlock()
	if err != nil {
		// Drop the broken connection so a retry can redial.
		e.connMu.Lock()
		if e.conns[to] == tc {
			delete(e.conns, to)
		}
		e.connMu.Unlock()
		tc.c.Close()
		return fmt.Errorf("transport: send to %q: %w", to, err)
	}
	e.msgsSent.Add(1)
	e.bytesSent.Add(int64(len(data)))
	return nil
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() (Envelope, bool) { return e.box.get() }

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		e.listener.Close()
		e.connMu.Lock()
		for _, tc := range e.conns {
			tc.c.Close()
		}
		e.connMu.Unlock()
		e.box.close()
	})
	return nil
}

// Stats implements Endpoint.
func (e *TCPEndpoint) Stats() Stats {
	return Stats{
		MsgsSent:      e.msgsSent.Load(),
		MsgsReceived:  e.msgsRecvd.Load(),
		BytesSent:     e.bytesSent.Load(),
		BytesReceived: e.bytesRecvd.Load(),
	}
}
