package transport

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// chaosPair builds a two-endpoint mem fabric wrapped in a chaos network.
func chaosPair(seed int64, plan FaultPlan) (*ChaosNetwork, Endpoint, Endpoint, *MemNetwork) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	c := NewChaosNetwork(seed, plan)
	return c, c.Wrap(a), c.Wrap(b), net
}

// TestChaosTraceReplays is the reproduction guarantee: the same (seed, plan)
// pair applied to the same per-link message sequence yields the identical
// fault trace, run after run.
func TestChaosTraceReplays(t *testing.T) {
	plan := FaultPlan{
		Name: "replay",
		Links: []LinkFault{{
			From: "*", To: "*",
			Drop: 0.2, Dup: 0.1, Reorder: 0.1, SendErr: 0.1,
			Delay: 10 * time.Microsecond, Jitter: 50 * time.Microsecond,
		}},
		Partitions: []Partition{{A: []string{"a"}, B: []string{"b"}, FromSeq: 10, UntilSeq: 15}},
	}
	run := func() []TraceEvent {
		c, a, _, net := chaosPair(99, plan)
		defer net.Close()
		for i := 0; i < 60; i++ {
			_ = a.Send("b", fmt.Sprintf("msg-%d", i))
		}
		return c.Trace()
	}
	first := run()
	if len(first) != 60 {
		t.Fatalf("trace has %d events, want 60", len(first))
	}
	for run2 := 0; run2 < 3; run2++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d trace diverged from first run", run2)
		}
	}
	actions := map[string]int{}
	for _, e := range first {
		actions[e.Action]++
	}
	for _, want := range []string{"deliver", "drop", "partition"} {
		if actions[want] == 0 {
			t.Fatalf("60 messages at these rates produced no %q event: %v", want, actions)
		}
	}
}

func TestChaosDifferentSeedsDiffer(t *testing.T) {
	plan := FaultPlan{Links: []LinkFault{{From: "*", To: "*", Drop: 0.5}}}
	trace := func(seed int64) []TraceEvent {
		c, a, _, net := chaosPair(seed, plan)
		defer net.Close()
		for i := 0; i < 40; i++ {
			_ = a.Send("b", i)
		}
		return c.Trace()
	}
	if reflect.DeepEqual(trace(1), trace(2)) {
		t.Fatal("seeds 1 and 2 produced identical fault traces")
	}
}

func TestChaosCleanPlanDeliversEverything(t *testing.T) {
	_, a, b, net := chaosPair(7, FaultPlan{Name: "clean"})
	defer net.Close()
	for i := 0; i < 20; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload.(int) != i {
			t.Fatalf("recv %d: got %v ok=%v", i, env.Payload, ok)
		}
	}
}

func TestChaosSendErrIsTransient(t *testing.T) {
	plan := FaultPlan{Links: []LinkFault{{From: "a", To: "b", SendErr: 1}}}
	_, a, _, net := chaosPair(3, plan)
	defer net.Close()
	err := a.Send("b", "x")
	if err == nil {
		t.Fatal("SendErr=1 send succeeded")
	}
	if !errors.Is(err, ErrInjected) || !Transient(err) {
		t.Fatalf("injected error %v should be transient ErrInjected", err)
	}
}

func TestChaosDupDeliversTwice(t *testing.T) {
	plan := FaultPlan{Links: []LinkFault{{From: "a", To: "b", Dup: 1}}}
	_, a, b, net := chaosPair(3, plan)
	defer net.Close()
	if err := a.Send("b", "x"); err != nil {
		t.Fatalf("send: %v", err)
	}
	for i := 0; i < 2; i++ {
		if env, ok := b.Recv(); !ok || env.Payload.(string) != "x" {
			t.Fatalf("copy %d missing", i)
		}
	}
}

func TestChaosReorderSwapsWithoutLoss(t *testing.T) {
	// Reorder=1 makes every odd message overtake its predecessor: 1,0,3,2…
	// Nothing may be lost and the swaps must actually happen.
	plan := FaultPlan{Links: []LinkFault{{From: "a", To: "b", Reorder: 1}}}
	_, a, b, net := chaosPair(5, plan)
	defer net.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	var order []int
	for i := 0; i < 10; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		order = append(order, env.Payload.(int))
	}
	want := []int{1, 0, 3, 2, 5, 4, 7, 6, 9, 8}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
}

func TestChaosScheduledKill(t *testing.T) {
	plan := FaultPlan{Kills: []Kill{{Name: "a", AfterSends: 3}}}
	c, a, b, net := chaosPair(11, plan)
	defer net.Close()
	for i := 0; i < 3; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d before kill: %v", i, err)
		}
	}
	err := a.Send("b", 3)
	if err == nil || !errors.Is(err, ErrCrashed) {
		t.Fatalf("send after scheduled kill: %v, want ErrCrashed", err)
	}
	if Transient(err) {
		t.Fatal("kill must be permanent")
	}
	if c.Alive("a") {
		t.Fatal("a still alive after kill")
	}
	// Traffic TO the dead endpoint is swallowed silently.
	if err := b.Send("a", "hello?"); err != nil {
		t.Fatalf("send to dead endpoint should swallow, got %v", err)
	}
	last := c.Trace()[len(c.Trace())-1]
	if last.Action != "to-dead" {
		t.Fatalf("last trace action %q, want to-dead", last.Action)
	}
}

func TestChaosManualKill(t *testing.T) {
	c, a, _, net := chaosPair(1, FaultPlan{})
	defer net.Close()
	c.Kill("a")
	if err := a.Send("b", 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send from manually killed endpoint: %v", err)
	}
}

func TestChaosDelayStillDelivers(t *testing.T) {
	plan := FaultPlan{Links: []LinkFault{{From: "a", To: "b", Delay: time.Millisecond, Jitter: time.Millisecond}}}
	c, a, b, net := chaosPair(13, plan)
	defer net.Close()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("5 sends with >=1ms delay took only %v", elapsed)
	}
	for i := 0; i < 5; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload.(int) != i {
			t.Fatalf("delayed FIFO broken at %d: %v", i, env.Payload)
		}
	}
	for _, e := range c.Trace() {
		if e.Delay < time.Millisecond {
			t.Fatalf("trace event %v records delay below the fixed component", e)
		}
	}
}

func TestChaosPartitionWindowHeals(t *testing.T) {
	plan := FaultPlan{Partitions: []Partition{{A: []string{"a"}, B: []string{"b"}, FromSeq: 0, UntilSeq: 5}}}
	_, a, b, net := chaosPair(17, plan)
	defer net.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Messages 0-4 fell into the partition window; 5-9 must arrive.
	for want := 5; want < 10; want++ {
		env, ok := b.Recv()
		if !ok || env.Payload.(int) != want {
			t.Fatalf("got %v, want %d", env.Payload, want)
		}
	}
}

func TestChaosDegradeWindowSlowsAndHeals(t *testing.T) {
	// Sends 2..5 are degraded by 3ms each; everything still arrives in order.
	plan := FaultPlan{
		Name:     "gray",
		Degrades: []Degrade{{Name: "a", Delay: 3 * time.Millisecond, AfterSends: 2, UntilSends: 6}},
	}
	c, a, b, net := chaosPair(29, plan)
	defer net.Close()
	for i := 0; i < 8; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload.(int) != i {
			t.Fatalf("degraded FIFO broken at %d: %v ok=%v", i, env.Payload, ok)
		}
	}
	for _, e := range c.Trace() {
		inWindow := e.Seq >= 2 && e.Seq < 6
		if inWindow && (e.Action != "degraded" || e.Delay < 3*time.Millisecond) {
			t.Fatalf("event %v inside window should be degraded by >=3ms", e)
		}
		if !inWindow && e.Action != "deliver" {
			t.Fatalf("event %v outside window should be a clean deliver", e)
		}
	}
}

func TestChaosDegradeScalesLinkDelay(t *testing.T) {
	// Factor multiplies the link's own base delay while the window is open.
	plan := FaultPlan{
		Links:    []LinkFault{{From: "a", To: "b", Delay: time.Millisecond}},
		Degrades: []Degrade{{Name: "a", Factor: 5, AfterSends: 0}},
	}
	c, a, _, net := chaosPair(31, plan)
	defer net.Close()
	if err := a.Send("b", "x"); err != nil {
		t.Fatalf("send: %v", err)
	}
	e := c.Trace()[0]
	if e.Action != "degraded" || e.Delay < 5*time.Millisecond {
		t.Fatalf("event %v: want degraded with >=5ms (5 × 1ms link delay)", e)
	}
}

func TestChaosDegradePreservesDecisionSequence(t *testing.T) {
	// Adding a Degrade rule must not shift the per-link RNG stream: the k-th
	// message's drop/dup/reorder fate is identical with and without it.
	base := FaultPlan{
		Name:  "seq",
		Links: []LinkFault{{From: "*", To: "*", Drop: 0.3, Dup: 0.2, Reorder: 0.1}},
	}
	degraded := base
	degraded.Degrades = []Degrade{{Name: "a", Delay: time.Microsecond, AfterSends: 0}}
	run := func(plan FaultPlan) []string {
		c, a, _, net := chaosPair(41, plan)
		defer net.Close()
		for i := 0; i < 50; i++ {
			_ = a.Send("b", i)
		}
		var actions []string
		for _, e := range c.Trace() {
			a := e.Action
			if a == "degraded" {
				a = "deliver" // degradation only slows; fate is unchanged
			}
			actions = append(actions, a)
		}
		return actions
	}
	if got, want := run(degraded), run(base); !reflect.DeepEqual(got, want) {
		t.Fatalf("degrade rule shifted the fault decision sequence:\n got %v\nwant %v", got, want)
	}
}

func TestChaosWrapTCP(t *testing.T) {
	// The decorator is fabric-agnostic: the same plan drives a TCP pair.
	recv, err := ListenTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer recv.Close()
	send, err := ListenTCP("a", "127.0.0.1:0", map[string]string{"b": recv.Addr()})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer send.Close()
	c := NewChaosNetwork(23, FaultPlan{Links: []LinkFault{{From: "a", To: "b", Drop: 0.5}}})
	a := c.Wrap(send)
	for i := 0; i < 40; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	dropped := 0
	for _, e := range c.Trace() {
		if e.Action == "drop" {
			dropped++
		}
	}
	if dropped == 0 || dropped == 40 {
		t.Fatalf("drop=0.5 over 40 msgs dropped %d", dropped)
	}
	// Every non-dropped message must eventually arrive over real sockets.
	arrived := make(chan int, 40)
	go func() {
		for {
			if _, ok := recv.Recv(); !ok {
				return
			}
			arrived <- 1
		}
	}()
	deadline := time.After(5 * time.Second)
	for i := 0; i < 40-dropped; i++ {
		select {
		case <-arrived:
		case <-deadline:
			t.Fatalf("timed out after %d/%d deliveries", i, 40-dropped)
		}
	}
}
