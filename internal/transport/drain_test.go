package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Close/drain semantics, for both fabrics: once an endpoint closes, queued
// messages must still drain through Recv (then ok=false), and Sends racing
// with the close must either deliver or fail cleanly — never panic, never
// wedge a sender.

func TestMemCloseDrainsQueueThenReportsClosed(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// All 10 queued messages drain in order...
	for i := 0; i < 10; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatalf("queue not drained: stopped at %d", i)
		}
		if env.Payload.(int) != i {
			t.Fatalf("drained %v at position %d", env.Payload, i)
		}
	}
	// ...then the endpoint reports closed, repeatedly.
	for i := 0; i < 3; i++ {
		if _, ok := b.Recv(); ok {
			t.Fatal("Recv ok=true after drain on closed endpoint")
		}
	}
	// And sends to it now fail with the permanent sentinel.
	err := a.Send("b", 99)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
}

func TestMemCloseUnderConcurrentSenders(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	recv := net.Endpoint("sink")
	const senders, msgs = 8, 200
	var wg sync.WaitGroup
	var delivered, rejected atomic.Int64
	for s := 0; s < senders; s++ {
		ep := net.Endpoint(testEndpointName(s))
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				err := ep.Send("sink", i)
				switch {
				case err == nil:
					delivered.Add(1)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
				default:
					t.Errorf("unexpected send error: %v", err)
					return
				}
			}
		}(ep)
	}
	time.Sleep(time.Millisecond)
	recv.Close()
	wg.Wait()

	drained := 0
	for {
		if _, ok := recv.Recv(); !ok {
			break
		}
		drained++
	}
	if int64(drained) != delivered.Load() {
		t.Fatalf("drained %d but %d sends reported success", drained, delivered.Load())
	}
	if delivered.Load()+rejected.Load() != senders*msgs {
		t.Fatalf("accounting: %d delivered + %d rejected != %d sent",
			delivered.Load(), rejected.Load(), senders*msgs)
	}
}

// testEndpointName builds distinct endpoint names for concurrent-sender tests.
func testEndpointName(i int) string {
	return string(rune('A' + i))
}

func TestTCPCloseDrainsQueueThenReportsClosed(t *testing.T) {
	recv, err := ListenTCP("sink", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	send, err := ListenTCP("src", "127.0.0.1:0", map[string]string{"sink": recv.Addr()})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer send.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := send.Send("sink", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Wait until all frames landed in the mailbox before closing.
	deadline := time.Now().Add(5 * time.Second)
	for recv.Stats().MsgsReceived < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d frames arrived", recv.Stats().MsgsReceived, n)
		}
		time.Sleep(time.Millisecond)
	}
	recv.Close()
	for i := 0; i < n; i++ {
		env, ok := recv.Recv()
		if !ok {
			t.Fatalf("TCP queue not drained: stopped at %d", i)
		}
		if env.Payload.(int) != i {
			t.Fatalf("drained %v at position %d", env.Payload, i)
		}
	}
	if _, ok := recv.Recv(); ok {
		t.Fatal("Recv ok=true after drain on closed TCP endpoint")
	}
	// Send-after-Close on the closed endpoint itself fails permanently.
	err = recv.Send("src", "x")
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("send from closed TCP endpoint: %v, want ErrClosed", err)
	}
}

func TestTCPCloseUnderConcurrentSenders(t *testing.T) {
	recv, err := ListenTCP("sink", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	const senders = 4
	var eps []*TCPEndpoint
	for s := 0; s < senders; s++ {
		ep, err := ListenTCP(testEndpointName(s), "127.0.0.1:0", map[string]string{"sink": recv.Addr()})
		if err != nil {
			t.Fatalf("listen sender %d: %v", s, err)
		}
		eps = append(eps, ep)
		defer ep.Close()
	}
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for _, ep := range eps {
		wg.Add(1)
		go func(ep *TCPEndpoint) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopped:
					return
				default:
				}
				// Errors are expected once the sink closes; they must be
				// errors, not hangs or panics.
				_ = ep.Send("sink", i)
			}
		}(ep)
	}
	time.Sleep(5 * time.Millisecond)
	recv.Close()
	close(stopped)
	wg.Wait()
	// Drain whatever landed; must terminate with ok=false.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := recv.Recv(); !ok {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain after close did not terminate")
	}
}
