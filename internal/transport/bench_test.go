package transport

import (
	"testing"
)

// BenchmarkMemSendSmall measures small control messages (plans, confirms).
func BenchmarkMemSendSmall(b *testing.B) {
	net := NewMemNetwork()
	defer net.Close()
	a, c := net.Endpoint("a"), net.Endpoint("c")
	done := make(chan struct{})
	go func() {
		for {
			if _, ok := c.Recv(); !ok {
				close(done)
				return
			}
		}
	}()
	msg := testMsg{ID: 7, Body: []byte("confirm")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send("c", msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	net.Close()
	<-done
}

// BenchmarkMemSendColumnShard measures a 64 KB data payload — the size
// class of column shards between workers.
func BenchmarkMemSendColumnShard(b *testing.B) {
	net := NewMemNetwork()
	defer net.Close()
	a, c := net.Endpoint("a"), net.Endpoint("c")
	done := make(chan struct{})
	go func() {
		for {
			if _, ok := c.Recv(); !ok {
				close(done)
				return
			}
		}
	}()
	msg := testMsg{ID: 1, Body: make([]byte, 64<<10)}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send("c", msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	net.Close()
	<-done
}

// BenchmarkTCPSend measures the loopback TCP path with framing.
func BenchmarkTCPSend(b *testing.B) {
	dst, err := ListenTCP("dst", "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	src, err := ListenTCP("src", "127.0.0.1:0", map[string]string{"dst": dst.Addr()})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	done := make(chan struct{})
	go func() {
		for {
			if _, ok := dst.Recv(); !ok {
				close(done)
				return
			}
		}
	}()
	msg := testMsg{ID: 1, Body: make([]byte, 4096)}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send("dst", msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	dst.Close()
	<-done
}
