package transport

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ChaosNetwork decorates any Endpoint fabric (mem or TCP) with deterministic
// fault injection: per-link message drops, fixed/jittered delays,
// duplication, reordering, transient send errors, temporary partitions and
// scheduled endpoint kills. Every decision is drawn from a per-link
// rand.Rand seeded by (Seed, link), consumes a fixed number of draws per
// message, and is appended to a replayable trace — so the k-th message on
// any link suffers exactly the same fate on every run of the same
// (seed, plan) pair, regardless of how goroutines interleave across links.
//
// A killed endpoint behaves like a machine whose NIC died mid-packet: its
// own sends fail with ErrCrashed and traffic addressed to it is silently
// swallowed. Nothing is closed cleanly, which is exactly what the cluster's
// failure detector must cope with.
type ChaosNetwork struct {
	seed int64
	plan FaultPlan

	mu     sync.Mutex
	links  map[string]*chaosLink
	sends  map[string]int // per-endpoint send counter, drives scheduled kills
	killed map[string]bool
	trace  []TraceEvent
}

// FaultPlan is a declarative fault schedule. Plans are plain data on
// purpose: a failing test prints its (seed, plan) pair and re-running with
// the same pair reproduces the same per-link fault sequence.
type FaultPlan struct {
	// Name labels the plan in traces and failure reports.
	Name string
	// Links are per-link fault rules; the first matching rule applies.
	Links []LinkFault
	// Partitions are temporary cuts between endpoint groups.
	Partitions []Partition
	// Kills schedules fail-stop endpoint deaths.
	Kills []Kill
	// Degrades schedules gray failures: endpoints that turn slow and recover.
	Degrades []Degrade
}

// LinkFault injects faults on messages from From to To ("*" matches any
// endpoint). Probabilities are per message and independent; at most one of
// Drop/Dup/Reorder/SendErr fires per message (checked in the order SendErr,
// Drop, Dup, Reorder), while Delay+Jitter apply to every delivered message.
type LinkFault struct {
	From, To string
	// Drop loses the message silently (Send still reports success, like a
	// dropped UDP datagram).
	Drop float64
	// Dup delivers the message twice.
	Dup float64
	// Reorder holds the message back and delivers it after the link's next
	// message (or after a short flush timer if the link goes quiet).
	Reorder float64
	// SendErr fails the Send call with a transient ErrInjected error
	// WITHOUT delivering — the fault bounded-retry must absorb.
	SendErr float64
	// Delay is slept in the sender before delivery; Jitter adds a uniform
	// random extra in [0, Jitter). Per-link FIFO order is preserved for
	// plain delays; only Reorder breaks ordering.
	Delay  time.Duration
	Jitter time.Duration
}

// Partition cuts every link between group A and group B (both directions)
// while the link's own message index lies in [FromSeq, UntilSeq). Windows
// are expressed in per-link sequence numbers rather than wall time so that
// activation is a pure function of (seed, plan, link, seq).
type Partition struct {
	A, B              []string
	FromSeq, UntilSeq int
}

// Kill schedules a fail-stop death: the endpoint dies when it tries its
// (AfterSends+1)-th send. Counting the victim's own sends makes the kill
// deterministic in the victim's lifetime rather than in wall time.
type Kill struct {
	Name       string
	AfterSends int
}

// Degrade schedules a gray failure: while the endpoint's own send count lies
// in [AfterSends, UntilSends), every outbound message is slowed down but
// still delivered — the machine limps instead of dying, which no fail-stop
// detector can see. Like Kill, the window is expressed in the victim's own
// send count so activation is deterministic in its lifetime. UntilSends == 0
// means the degradation never heals.
//
// The extra delay per message is Factor × (link base delay) + Delay +
// jittered extra in [0, Jitter), reusing the message's single jitter draw so
// the per-link decision sequence stays identical with or without the rule.
type Degrade struct {
	Name string
	// Factor scales the matched link rule's own Delay+Jitter while active
	// (0 or 1 leaves it unscaled); use it to turn an already-slow link 50×
	// slower mid-window.
	Factor float64
	// Delay and Jitter add an absolute slowdown on top, for plans whose
	// links are otherwise clean.
	Delay      time.Duration
	Jitter     time.Duration
	AfterSends int
	UntilSends int
}

func (d Degrade) active(n int) bool {
	return n >= d.AfterSends && (d.UntilSends == 0 || n < d.UntilSends)
}

// String renders the plan compactly for failure reports.
func (p FaultPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q{", p.Name)
	for _, l := range p.Links {
		fmt.Fprintf(&b, " link(%s->%s drop=%g dup=%g reorder=%g senderr=%g delay=%v jitter=%v)",
			l.From, l.To, l.Drop, l.Dup, l.Reorder, l.SendErr, l.Delay, l.Jitter)
	}
	for _, pt := range p.Partitions {
		fmt.Fprintf(&b, " partition(%v|%v seq[%d,%d))", pt.A, pt.B, pt.FromSeq, pt.UntilSeq)
	}
	for _, k := range p.Kills {
		fmt.Fprintf(&b, " kill(%s after %d sends)", k.Name, k.AfterSends)
	}
	for _, d := range p.Degrades {
		fmt.Fprintf(&b, " degrade(%s ×%g +%v~%v sends[%d,%d))",
			d.Name, d.Factor, d.Delay, d.Jitter, d.AfterSends, d.UntilSends)
	}
	b.WriteString(" }")
	return b.String()
}

// TraceEvent records one fault decision. The per-link subsequence of events
// is deterministic for a (seed, plan) pair; the interleaving across links
// follows wall-clock send order.
type TraceEvent struct {
	Link   string // "from->to"
	Seq    int    // message index on the link, from 0
	Type   string // payload type, e.g. "cluster.ColumnPlanMsg"
	Action string // deliver | degraded | drop | dup | reorder | senderr | partition | to-dead | kill
	Delay  time.Duration
}

func (e TraceEvent) String() string {
	s := fmt.Sprintf("%s #%d %s: %s", e.Link, e.Seq, e.Type, e.Action)
	if e.Delay > 0 {
		s += fmt.Sprintf(" (+%v)", e.Delay)
	}
	return s
}

// chaosLink is the per-(from,to) decision state.
type chaosLink struct {
	key        string
	seq        int
	rng        *rand.Rand
	rule       LinkFault   // resolved first-matching rule (zero = clean link)
	partitions []Partition // plan partitions that cut this link
	held       *heldMsg    // reordered message awaiting release
}

type heldMsg struct {
	to      string
	payload any
}

// NewChaosNetwork builds a chaos decorator for the given seed and plan.
// Wrap each fabric endpoint before handing it to its owner.
func NewChaosNetwork(seed int64, plan FaultPlan) *ChaosNetwork {
	return &ChaosNetwork{
		seed:   seed,
		plan:   plan,
		links:  map[string]*chaosLink{},
		sends:  map[string]int{},
		killed: map[string]bool{},
	}
}

// Seed returns the seed the network draws its decisions from.
func (c *ChaosNetwork) Seed() int64 { return c.seed }

// Plan returns the fault plan.
func (c *ChaosNetwork) Plan() FaultPlan { return c.plan }

// Wrap decorates one endpoint. The returned Endpoint applies the plan to
// every Send; Name, Recv, Close and Stats pass through.
func (c *ChaosNetwork) Wrap(inner Endpoint) Endpoint {
	return &chaosEndpoint{name: inner.Name(), inner: inner, net: c}
}

// Kill marks an endpoint dead immediately (in addition to any scheduled
// Kill entries): its sends fail and inbound traffic is swallowed.
func (c *ChaosNetwork) Kill(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.killed[name] {
		c.killed[name] = true
		c.trace = append(c.trace, TraceEvent{Link: name, Action: "kill"})
	}
}

// Alive reports whether the endpoint has not been killed.
func (c *ChaosNetwork) Alive(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.killed[name]
}

// Trace returns a copy of all decisions taken so far.
func (c *ChaosNetwork) Trace() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.trace...)
}

// Faults counts trace events that were not clean deliveries.
func (c *ChaosNetwork) Faults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.trace {
		if e.Action != "deliver" {
			n++
		}
	}
	return n
}

// TraceTail formats the last n trace events, one per line — the reproduction
// breadcrumb a failing test prints next to its (seed, plan).
func (c *ChaosNetwork) TraceTail(n int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := len(c.trace) - n
	if start < 0 {
		start = 0
	}
	var b strings.Builder
	for _, e := range c.trace[start:] {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (c *ChaosNetwork) linkLocked(from, to string) *chaosLink {
	key := from + "->" + to
	if l, ok := c.links[key]; ok {
		return l
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	l := &chaosLink{
		key: key,
		rng: rand.New(rand.NewSource(c.seed ^ int64(h.Sum64()))),
	}
	for _, rule := range c.plan.Links {
		if (rule.From == "*" || rule.From == from) && (rule.To == "*" || rule.To == to) {
			l.rule = rule
			break
		}
	}
	for _, p := range c.plan.Partitions {
		if crosses(p, from, to) {
			l.partitions = append(l.partitions, p)
		}
	}
	return c.linksPut(key, l)
}

func (c *ChaosNetwork) linksPut(key string, l *chaosLink) *chaosLink {
	c.links[key] = l
	return l
}

func crosses(p Partition, from, to string) bool {
	inA := func(n string) bool { return contains(p.A, n) }
	inB := func(n string) bool { return contains(p.B, n) }
	return (inA(from) && inB(to)) || (inB(from) && inA(to))
}

func contains(names []string, n string) bool {
	for _, x := range names {
		if x == n {
			return true
		}
	}
	return false
}

func (l *chaosLink) partitioned(seq int) bool {
	for _, p := range l.partitions {
		if seq >= p.FromSeq && seq < p.UntilSeq {
			return true
		}
	}
	return false
}

// chaosEndpoint is the per-endpoint decorator.
type chaosEndpoint struct {
	name  string
	inner Endpoint
	net   *ChaosNetwork
}

func (e *chaosEndpoint) Name() string           { return e.name }
func (e *chaosEndpoint) Recv() (Envelope, bool) { return e.inner.Recv() }
func (e *chaosEndpoint) Close() error           { return e.inner.Close() }
func (e *chaosEndpoint) Stats() Stats           { return e.inner.Stats() }
func (e *chaosEndpoint) Unwrap() Endpoint       { return e.inner }

// reorderFlush bounds how long a reordered message waits for the link's next
// message before being released anyway (so a reorder on a link that then
// goes quiet never stalls the protocol).
const reorderFlush = 25 * time.Millisecond

// Send implements Endpoint, routing the message through the fault plan.
func (e *chaosEndpoint) Send(to string, payload any) error {
	c := e.net
	c.mu.Lock()
	if c.killed[e.name] {
		c.mu.Unlock()
		return fmt.Errorf("transport: chaos: %q: %w", e.name, ErrCrashed)
	}
	n := c.sends[e.name]
	c.sends[e.name] = n + 1
	for _, k := range c.plan.Kills {
		if k.Name == e.name && n >= k.AfterSends {
			c.killed[e.name] = true
			c.trace = append(c.trace, TraceEvent{Link: e.name, Seq: n, Action: "kill"})
			c.mu.Unlock()
			return fmt.Errorf("transport: chaos: %q: %w", e.name, ErrCrashed)
		}
	}

	l := c.linkLocked(e.name, to)
	seq := l.seq
	l.seq++
	// Fixed draw count per message keeps decision k a pure function of
	// (seed, plan, link, k) no matter which branches fire.
	dSendErr := l.rng.Float64()
	dDrop := l.rng.Float64()
	dDup := l.rng.Float64()
	dReorder := l.rng.Float64()
	dJitter := l.rng.Float64()

	action := "deliver"
	switch {
	case c.killed[to]:
		action = "to-dead"
	case l.partitioned(seq):
		action = "partition"
	case dSendErr < l.rule.SendErr:
		action = "senderr"
	case dDrop < l.rule.Drop:
		action = "drop"
	case dDup < l.rule.Dup:
		action = "dup"
	case dReorder < l.rule.Reorder:
		action = "reorder"
	}
	var delay time.Duration
	if l.rule.Delay > 0 || l.rule.Jitter > 0 {
		delay = l.rule.Delay + time.Duration(dJitter*float64(l.rule.Jitter))
	}
	for _, d := range c.plan.Degrades {
		if d.Name != e.name || !d.active(n) {
			continue
		}
		if d.Factor > 1 {
			delay = time.Duration(float64(delay) * d.Factor)
		}
		delay += d.Delay + time.Duration(dJitter*float64(d.Jitter))
		if action == "deliver" {
			action = "degraded"
		}
		break
	}
	c.trace = append(c.trace, TraceEvent{
		Link: l.key, Seq: seq, Type: fmt.Sprintf("%T", payload), Action: action, Delay: delay,
	})

	// Work out the delivery batch while still under the lock, so held
	// messages release in a deterministic spot in the link sequence.
	var deliver []any
	switch action {
	case "to-dead", "partition", "drop", "senderr":
		// no delivery
	case "deliver", "degraded":
		deliver = append(deliver, payload)
	case "dup":
		deliver = append(deliver, payload, payload)
	case "reorder":
		if l.held == nil {
			held := &heldMsg{to: to, payload: payload}
			l.held = held
			time.AfterFunc(reorderFlush+delay, func() { c.flushHeld(e.inner, l, held) })
		} else {
			// A message is already held back: ship this one first and the
			// held one behind it — the held message got its swap.
			deliver = append(deliver, payload, l.held.payload)
			l.held = nil
		}
	}
	if len(deliver) > 0 && l.held != nil {
		deliver = append(deliver, l.held.payload)
		l.held = nil
	}
	c.mu.Unlock()

	if action == "senderr" {
		return fmt.Errorf("transport: chaos: %s #%d: %w", l.key, seq, ErrInjected)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	var firstErr error
	for i, p := range deliver {
		if err := e.inner.Send(to, p); err != nil && i == 0 {
			// The primary copy's failure propagates so callers can retry;
			// extra (dup/reordered) deliveries are best-effort.
			firstErr = err
		}
	}
	return firstErr
}

// flushHeld releases a reordered message that no later traffic overtook.
func (c *ChaosNetwork) flushHeld(inner Endpoint, l *chaosLink, h *heldMsg) {
	c.mu.Lock()
	if l.held != h {
		c.mu.Unlock()
		return
	}
	l.held = nil
	c.mu.Unlock()
	_ = inner.Send(h.to, h.payload)
}
