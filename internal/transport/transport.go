// Package transport provides the message fabric the TreeServer cluster runs
// on: named endpoints exchanging gob-serialised payloads. Two realisations
// share one interface — an in-memory network (every message still passes
// through a gob encode/decode round-trip, so nothing is ever shared by
// pointer between "machines", and per-endpoint byte counters plus an
// optional bandwidth model reproduce network saturation) and a real TCP
// network for multi-process deployments.
//
// The paper's two channel classes (Task Comm. master<->worker and Data
// Comm. worker<->worker, Fig. 6) are both carried over this fabric; byte
// accounting is separated per destination so experiments can report them
// independently.
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel error conditions shared by every fabric. Callers classify send
// failures with errors.Is (or the Transient helper): closed, unknown and
// crashed endpoints are permanent — retrying cannot help — while everything
// else (TCP dial/write hiccups, injected chaos faults, attempt timeouts) is
// transient and worth a bounded retry.
var (
	// ErrClosed marks sends through or to an endpoint that has shut down.
	ErrClosed = errors.New("endpoint closed")
	// ErrUnknownEndpoint marks sends to a name no fabric member registered.
	ErrUnknownEndpoint = errors.New("unknown endpoint")
	// ErrCrashed marks sends from an endpoint that crashed (or was killed by
	// a chaos plan).
	ErrCrashed = errors.New("endpoint crashed")
	// ErrInjected marks a transient send failure injected by a ChaosNetwork.
	ErrInjected = errors.New("injected transient send failure")
	// ErrAttemptTimeout marks one send attempt exceeding its per-attempt
	// budget (see RetryPolicy.AttemptTimeout).
	ErrAttemptTimeout = errors.New("send attempt timed out")
)

// Transient reports whether a send error is worth retrying. Closed, unknown
// and crashed endpoints are permanent; everything else is assumed to be a
// fabric hiccup.
func Transient(err error) bool {
	return err != nil &&
		!errors.Is(err, ErrClosed) &&
		!errors.Is(err, ErrUnknownEndpoint) &&
		!errors.Is(err, ErrCrashed)
}

// Envelope is one delivered message.
type Envelope struct {
	From    string
	Payload any
}

// Endpoint is a named participant on a network.
type Endpoint interface {
	// Name returns the endpoint's registered name.
	Name() string
	// Send delivers payload to the named endpoint. It never blocks on the
	// receiver (mailboxes are unbounded); it returns an error if the target
	// is unknown or the network is closed.
	Send(to string, payload any) error
	// Recv blocks for the next message; ok is false once the endpoint is
	// closed and drained.
	Recv() (env Envelope, ok bool)
	// Close shuts the endpoint down, waking any blocked Recv.
	Close() error
	// Stats returns the endpoint's traffic counters.
	Stats() Stats
}

// Stats counts an endpoint's traffic. Bytes measure the gob-encoded payload
// size as a long-lived connection would carry it: type definitions are
// counted when a type first crosses a stream and amortise to zero after.
type Stats struct {
	MsgsSent      int64
	MsgsReceived  int64
	BytesSent     int64
	BytesReceived int64
}

// mailbox is an unbounded FIFO with blocking receive. Unboundedness is a
// deliberate choice: handlers may send while processing a receive, and a
// bounded channel there can deadlock two mutually-sending endpoints.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(env Envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, env)
	m.cond.Signal()
	return true
}

func (m *mailbox) get() (Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Envelope{}, false
	}
	env := m.queue[0]
	m.queue = m.queue[1:]
	return env, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// wire wraps the payload so gob can encode arbitrary registered types.
type wire struct {
	Payload any
}

// EncodePayload gob-encodes a payload into a self-contained frame (type
// definitions included), the format the TCP fabric ships. Per-frame stream
// setup is expensive; hot in-process paths use the pooled codec pairs below
// instead.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire{Payload: v}); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload.
func DecodePayload(data []byte) (any, error) {
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return w.Payload, nil
}

// codecPair is a matched gob encoder/decoder joined by one buffer — the
// stream state of a single long-lived connection. gob transmits each type's
// definition once per stream, then compiles and caches the codec machinery;
// building a fresh Encoder/Decoder per message re-pays that setup on every
// send, which profiles as the dominant cost of the in-memory fabric. A pair
// must stay matched for life: the decoder only understands types whose
// definitions its own encoder already emitted.
type codecPair struct {
	buf bytes.Buffer
	enc *gob.Encoder
	dec *gob.Decoder
}

var codecPool = sync.Pool{New: func() any {
	p := &codecPair{}
	p.enc = gob.NewEncoder(&p.buf)
	p.dec = gob.NewDecoder(&p.buf)
	return p
}}

// roundTripPayload deep-copies v through a pooled gob stream, returning the
// decoded copy and its encoded size. The size is what a persistent connection
// would carry: type definitions count the first time a type crosses a given
// pair, then amortise to zero. On error the pair is abandoned (its stream may
// be desynchronised mid-message); a bytes.Buffer is an io.ByteReader, so a
// successful decode always drains the buffer completely and the pair re-pools
// clean.
func roundTripPayload(v any) (any, int, error) {
	p := codecPool.Get().(*codecPair)
	if err := p.enc.Encode(&wire{Payload: v}); err != nil {
		return nil, 0, fmt.Errorf("transport: encode: %w", err)
	}
	size := p.buf.Len()
	var w wire
	if err := p.dec.Decode(&w); err != nil {
		return nil, 0, fmt.Errorf("transport: decode: %w", err)
	}
	codecPool.Put(p)
	return w.Payload, size, nil
}

// countingWriter measures bytes without retaining them.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// sizeCodec is a persistent encoder used only for measurement.
type sizeCodec struct {
	cw  countingWriter
	enc *gob.Encoder
}

var sizePool = sync.Pool{New: func() any {
	s := &sizeCodec{}
	s.enc = gob.NewEncoder(&s.cw)
	return s
}}

// PayloadSize returns the encoded size of a payload on a long-lived stream
// (amortised type definitions), without materialising the bytes. It is the
// cheap sizing hook for telemetry decorators; 0 means the payload failed to
// encode.
func PayloadSize(v any) int {
	s := sizePool.Get().(*sizeCodec)
	before := s.cw.n
	if err := s.enc.Encode(&wire{Payload: v}); err != nil {
		return 0 // abandoned: the stream may be desynchronised
	}
	size := int(s.cw.n - before)
	sizePool.Put(s)
	return size
}

// MemNetwork is the in-memory fabric. The zero value is not usable; call
// NewMemNetwork.
type MemNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*MemEndpoint
	closed    bool

	// BandwidthBps, when > 0, models a per-endpoint full-duplex link: each
	// endpoint's sends are paced to this many bytes per second, reproducing
	// the 1 GigE saturation of the paper's Table VI.
	BandwidthBps float64
	// Passthrough skips the gob round-trip, delivering payloads by
	// reference. Only safe when callers promise not to mutate shared data;
	// used by benchmarks isolating protocol overhead from codec cost.
	Passthrough bool
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{endpoints: map[string]*MemEndpoint{}}
}

// Endpoint registers (or returns the existing) endpoint with the name.
func (n *MemNetwork) Endpoint(name string) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[name]; ok {
		return ep
	}
	ep := &MemEndpoint{name: name, net: n, box: newMailbox()}
	n.endpoints[name] = ep
	return ep
}

// Reset discards the named endpoint — closing its mailbox and marking it
// crashed so any goroutine still holding the old handle gets permanent send
// errors — and registers a fresh endpoint under the same name. It is the
// restart hook for crash-recovery: a killed machine's replacement rejoins the
// fabric with an empty mailbox and clean counters, while traffic addressed to
// the name flows to the new instance.
func (n *MemNetwork) Reset(name string) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.endpoints[name]; ok {
		old.crashed.Store(true)
		old.box.close()
	}
	ep := &MemEndpoint{name: name, net: n, box: newMailbox()}
	n.endpoints[name] = ep
	return ep
}

// Close shuts down every endpoint.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	n.closed = true
	eps := make([]*MemEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.box.close()
	}
}

func (n *MemNetwork) lookup(name string) (*MemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network: %w", ErrClosed)
	}
	ep, ok := n.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("transport: %w: %q", ErrUnknownEndpoint, name)
	}
	return ep, nil
}

// MemEndpoint is one participant on a MemNetwork.
type MemEndpoint struct {
	name string
	net  *MemNetwork
	box  *mailbox

	msgsSent, msgsRecvd   atomic.Int64
	bytesSent, bytesRecvd atomic.Int64

	paceMu   sync.Mutex
	paceFree time.Time // when the modelled link next becomes idle

	crashed atomic.Bool
}

// Name implements Endpoint.
func (e *MemEndpoint) Name() string { return e.name }

// Crash makes the endpoint drop all traffic in both directions without
// closing cleanly — the fault-injection hook for worker-failure tests.
func (e *MemEndpoint) Crash() {
	e.crashed.Store(true)
	e.box.close()
}

// Crashed reports whether Crash was called.
func (e *MemEndpoint) Crashed() bool { return e.crashed.Load() }

// Send implements Endpoint.
func (e *MemEndpoint) Send(to string, payload any) error {
	if e.crashed.Load() {
		return fmt.Errorf("transport: endpoint %q: %w", e.name, ErrCrashed)
	}
	target, err := e.net.lookup(to)
	if err != nil {
		return err
	}
	size := 0
	delivered := payload
	if !e.net.Passthrough {
		var err error
		delivered, size, err = roundTripPayload(payload)
		if err != nil {
			return err
		}
	}
	e.pace(size)
	e.msgsSent.Add(1)
	e.bytesSent.Add(int64(size))
	if target.crashed.Load() {
		// A crashed machine silently swallows traffic, like a dead NIC.
		return nil
	}
	if !target.box.put(Envelope{From: e.name, Payload: delivered}) {
		return fmt.Errorf("transport: endpoint %q: %w", to, ErrClosed)
	}
	target.msgsRecvd.Add(1)
	target.bytesRecvd.Add(int64(size))
	return nil
}

// pace models the send-side bandwidth limit by reserving link time.
func (e *MemEndpoint) pace(size int) {
	bw := e.net.BandwidthBps
	if bw <= 0 || size == 0 {
		return
	}
	cost := time.Duration(float64(size) / bw * float64(time.Second))
	e.paceMu.Lock()
	now := time.Now()
	if e.paceFree.Before(now) {
		e.paceFree = now
	}
	e.paceFree = e.paceFree.Add(cost)
	wait := e.paceFree.Sub(now)
	e.paceMu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Recv implements Endpoint.
func (e *MemEndpoint) Recv() (Envelope, bool) { return e.box.get() }

// Close implements Endpoint.
func (e *MemEndpoint) Close() error {
	e.box.close()
	return nil
}

// Stats implements Endpoint.
func (e *MemEndpoint) Stats() Stats {
	return Stats{
		MsgsSent:      e.msgsSent.Load(),
		MsgsReceived:  e.msgsRecvd.Load(),
		BytesSent:     e.bytesSent.Load(),
		BytesReceived: e.bytesRecvd.Load(),
	}
}
