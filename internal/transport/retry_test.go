package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// flakyEndpoint fails the first n sends with the given error, then succeeds.
type flakyEndpoint struct {
	inner Endpoint
	fails atomic.Int32
	err   error
	calls atomic.Int32
}

func (f *flakyEndpoint) Name() string { return f.inner.Name() }
func (f *flakyEndpoint) Send(to string, payload any) error {
	f.calls.Add(1)
	if f.fails.Add(-1) >= 0 {
		return f.err
	}
	return f.inner.Send(to, payload)
}
func (f *flakyEndpoint) Recv() (Envelope, bool) { return f.inner.Recv() }
func (f *flakyEndpoint) Close() error           { return f.inner.Close() }
func (f *flakyEndpoint) Stats() Stats           { return f.inner.Stats() }

func TestSendWithRetryRecoversTransient(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	f := &flakyEndpoint{inner: a, err: ErrInjected}
	f.fails.Store(2)
	if err := SendWithRetry(f, "b", "payload", RetryPolicy{Attempts: 4, BaseDelay: time.Microsecond}); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if got := f.calls.Load(); got != 3 {
		t.Fatalf("send attempted %d times, want 3", got)
	}
	if env, ok := b.Recv(); !ok || env.Payload.(string) != "payload" {
		t.Fatal("payload not delivered")
	}
}

func TestSendWithRetryGivesUpAfterBudget(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	net.Endpoint("b")
	f := &flakyEndpoint{inner: a, err: ErrInjected}
	f.fails.Store(100)
	err := SendWithRetry(f, "b", "x", RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond})
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted retry returned %v, want wrapped ErrInjected", err)
	}
	if got := f.calls.Load(); got != 3 {
		t.Fatalf("attempted %d times, want exactly the 3 budgeted", got)
	}
}

func TestSendWithRetryStopsOnPermanent(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	net.Endpoint("b")
	f := &flakyEndpoint{inner: a, err: ErrClosed}
	f.fails.Store(100)
	err := SendWithRetry(f, "b", "x", RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if got := f.calls.Load(); got != 1 {
		t.Fatalf("permanent error retried %d times, want 1 attempt", got)
	}
}

func TestSendWithRetryBacksOffExponentially(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	net.Endpoint("b")
	f := &flakyEndpoint{inner: a, err: ErrInjected}
	f.fails.Store(100)
	start := time.Now()
	_ = SendWithRetry(f, "b", "x", RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: time.Second})
	// Backoffs: 5 + 10 + 20 = 35ms minimum.
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("4 attempts finished in %v, want >= 35ms of backoff", elapsed)
	}
}

// blockingEndpoint never completes a Send until released.
type blockingEndpoint struct {
	inner   Endpoint
	release chan struct{}
}

func (b *blockingEndpoint) Name() string { return b.inner.Name() }
func (b *blockingEndpoint) Send(to string, payload any) error {
	<-b.release
	return b.inner.Send(to, payload)
}
func (b *blockingEndpoint) Recv() (Envelope, bool) { return b.inner.Recv() }
func (b *blockingEndpoint) Close() error           { return b.inner.Close() }
func (b *blockingEndpoint) Stats() Stats           { return b.inner.Stats() }

func TestSendWithRetryAttemptTimeout(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	net.Endpoint("b")
	blocked := &blockingEndpoint{inner: a, release: make(chan struct{})}
	defer close(blocked.release)
	err := SendWithRetry(blocked, "b", "x", RetryPolicy{
		Attempts: 2, BaseDelay: time.Microsecond, AttemptTimeout: 5 * time.Millisecond,
	})
	if err == nil || !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("hung fabric returned %v, want wrapped ErrAttemptTimeout", err)
	}
}
