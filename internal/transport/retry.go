package transport

import (
	"fmt"
	"time"
)

// RetryPolicy bounds how SendWithRetry re-attempts a transient send failure:
// at most Attempts tries, exponentially backed off from BaseDelay up to
// MaxDelay, each individually capped at AttemptTimeout. The zero value is
// usable and resolves to the defaults below.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first (default 4).
	Attempts int
	// BaseDelay is slept before the first retry and doubled per retry
	// (default 1ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 50ms).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt; an attempt still in
	// flight when it expires counts as failed and the next one starts
	// (delivery may still land later — receivers must tolerate duplicates).
	// 0 disables the per-attempt timer and calls Send directly.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy is the policy the cluster's control-plane sends use.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	return p
}

// RetryReporter is an optional interface an Endpoint (typically a telemetry
// decorator) may implement to observe SendWithRetry re-attempts. The base
// fabrics do not implement it; SendWithRetry discovers it by type assertion,
// which keeps transport free of any dependency on the observer.
type RetryReporter interface {
	// SendRetried is called once per re-attempt (not for the first try),
	// before the backoff sleep.
	SendRetried(to string)
}

// SendWithRetry delivers payload like ep.Send, but survives transient fabric
// errors (TCP hiccups, injected chaos faults, attempt timeouts) by retrying
// under the policy. Permanent errors — closed, unknown or crashed endpoints
// — return immediately: no amount of retrying resurrects those.
//
// The guarantee is at-least-once: a timed-out attempt may still deliver, so
// a successful SendWithRetry can deliver the payload more than once.
func SendWithRetry(ep Endpoint, to string, payload any, p RetryPolicy) error {
	p = p.withDefaults()
	rr, _ := ep.(RetryReporter)
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			if rr != nil {
				rr.SendRetried(to)
			}
			time.Sleep(delay)
			delay *= 2
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		err = sendOnce(ep, to, payload, p.AttemptTimeout)
		if err == nil {
			return nil
		}
		if !Transient(err) {
			return err
		}
	}
	return fmt.Errorf("transport: send to %q failed after %d attempts: %w", to, p.Attempts, err)
}

// sendOnce runs one attempt, bounded by timeout when non-zero. The underlying
// Send cannot be cancelled; on timeout it is abandoned to finish (or fail) on
// its own goroutine.
func sendOnce(ep Endpoint, to string, payload any, timeout time.Duration) error {
	if timeout <= 0 {
		return ep.Send(to, payload)
	}
	done := make(chan error, 1)
	go func() { done <- ep.Send(to, payload) }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("transport: send to %q: %w", to, ErrAttemptTimeout)
	}
}
