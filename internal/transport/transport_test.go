package transport

import (
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
	"time"
)

type testMsg struct {
	ID   int
	Body []byte
}

func init() { gob.Register(testMsg{}) }

func TestMemSendRecv(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	if err := a.Send("b", testMsg{ID: 7, Body: []byte("hello")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	env, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if env.From != "a" {
		t.Fatalf("from = %q", env.From)
	}
	msg := env.Payload.(testMsg)
	if msg.ID != 7 || string(msg.Body) != "hello" {
		t.Fatalf("payload = %+v", msg)
	}
}

func TestMemSerializationIsolation(t *testing.T) {
	// The gob round-trip must prevent sharing: mutating the sent value after
	// Send must not affect the received copy.
	net := NewMemNetwork()
	defer net.Close()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	body := []byte("immutable")
	if err := a.Send("b", testMsg{ID: 1, Body: body}); err != nil {
		t.Fatal(err)
	}
	body[0] = 'X'
	env, _ := b.Recv()
	if got := string(env.Payload.(testMsg).Body); got != "immutable" {
		t.Fatalf("received %q shares memory with sender", got)
	}
}

func TestMemUnknownEndpoint(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a := net.Endpoint("a")
	if err := a.Send("ghost", testMsg{}); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestMemStats(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	for i := 0; i < 5; i++ {
		if err := a.Send("b", testMsg{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		b.Recv()
	}
	as, bs := a.Stats(), b.Stats()
	if as.MsgsSent != 5 || bs.MsgsReceived != 5 {
		t.Fatalf("msgs: sent %d recv %d", as.MsgsSent, bs.MsgsReceived)
	}
	if as.BytesSent <= 0 || as.BytesSent != bs.BytesReceived {
		t.Fatalf("bytes: sent %d recv %d", as.BytesSent, bs.BytesReceived)
	}
}

func TestMemOrderPreservedPerSender(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("b", testMsg{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env, ok := b.Recv()
		if !ok {
			t.Fatal("closed early")
		}
		if env.Payload.(testMsg).ID != i {
			t.Fatalf("message %d arrived out of order", i)
		}
	}
}

func TestMemCloseWakesRecv(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	done := make(chan bool)
	go func() {
		_, ok := a.Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("recv returned ok after close")
		}
	case <-time.After(time.Second):
		t.Fatal("recv did not wake on close")
	}
}

func TestMemCrashSwallowsTraffic(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	b.Crash()
	if !b.Crashed() {
		t.Fatal("crashed flag not set")
	}
	// Send to a crashed endpoint does not error (dead NIC semantics).
	if err := a.Send("b", testMsg{ID: 1}); err != nil {
		t.Fatalf("send to crashed: %v", err)
	}
	// A crashed endpoint cannot send.
	if err := b.Send("a", testMsg{ID: 2}); err == nil {
		t.Fatal("crashed endpoint sent successfully")
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	recv := net.Endpoint("sink")
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := net.Endpoint(fmt.Sprintf("s%d", s))
		wg.Add(1)
		go func(ep *MemEndpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send("sink", testMsg{ID: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		for got < senders*per {
			if _, ok := recv.Recv(); !ok {
				return
			}
			got++
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received %d of %d", got, senders*per)
	}
}

func TestBandwidthPacing(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	net.BandwidthBps = 1e6 // 1 MB/s
	a, b := net.Endpoint("a"), net.Endpoint("b")
	payload := testMsg{Body: make([]byte, 50_000)}
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// ~200 KB at 1 MB/s = 200 ms minimum.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("pacing too fast: %v for ~200KB at 1MB/s", elapsed)
	}
	for i := 0; i < 4; i++ {
		b.Recv()
	}
}

func TestPassthroughSkipsEncoding(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	net.Passthrough = true
	a, b := net.Endpoint("a"), net.Endpoint("b")
	body := []byte("shared")
	if err := a.Send("b", testMsg{Body: body}); err != nil {
		t.Fatal(err)
	}
	env, _ := b.Recv()
	body[0] = 'X'
	if got := string(env.Payload.(testMsg).Body); got != "Xhared" {
		t.Fatalf("passthrough should share memory, got %q", got)
	}
	if a.Stats().BytesSent != 0 {
		t.Fatal("passthrough should not count encoded bytes")
	}
}

func TestEncodeDecodePayload(t *testing.T) {
	data, err := EncodePayload(testMsg{ID: 3, Body: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodePayload(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.(testMsg).ID != 3 {
		t.Fatalf("round trip = %+v", v)
	}
}

func TestTCPEndpoints(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", map[string]string{"a": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())

	if err := a.Send("b", testMsg{ID: 1, Body: []byte("over tcp")}); err != nil {
		t.Fatalf("a->b: %v", err)
	}
	env, ok := b.Recv()
	if !ok || env.From != "a" || env.Payload.(testMsg).ID != 1 {
		t.Fatalf("b received %+v ok=%v", env, ok)
	}
	// Reply path.
	if err := b.Send("a", testMsg{ID: 2}); err != nil {
		t.Fatalf("b->a: %v", err)
	}
	env, ok = a.Recv()
	if !ok || env.Payload.(testMsg).ID != 2 {
		t.Fatalf("a received %+v ok=%v", env, ok)
	}
	if a.Stats().MsgsSent != 1 || a.Stats().MsgsReceived != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("nowhere", testMsg{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPManyMessages(t *testing.T) {
	a, _ := ListenTCP("a", "127.0.0.1:0", nil)
	defer a.Close()
	b, _ := ListenTCP("b", "127.0.0.1:0", map[string]string{"a": a.Addr()})
	defer b.Close()
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			if err := b.Send("a", testMsg{ID: i, Body: make([]byte, 100)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		env, ok := a.Recv()
		if !ok {
			t.Fatal("closed early")
		}
		if env.Payload.(testMsg).ID != i {
			t.Fatalf("out of order at %d", i)
		}
	}
}
