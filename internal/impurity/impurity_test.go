package impurity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGiniKnownValues(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{[]int{0, 0}, 0},
		{[]int{5, 0}, 0},
		{[]int{5, 5}, 0.5},
		{[]int{1, 1, 1, 1}, 0.75},
		{[]int{9, 1}, 1 - 0.81 - 0.01},
	}
	for _, c := range cases {
		if got := GiniFromCounts(c.counts); !almostEqual(got, c.want) {
			t.Errorf("gini(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

func TestEntropyKnownValues(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{[]int{0}, 0},
		{[]int{7, 0}, 0},
		{[]int{4, 4}, 1},
		{[]int{2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := EntropyFromCounts(c.counts); !almostEqual(got, c.want) {
			t.Errorf("entropy(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

func TestVarianceKnownValues(t *testing.T) {
	// Values {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4.
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var sum, sumSq float64
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	if got := VarianceFromMoments(len(vals), sum, sumSq); !almostEqual(got, 4) {
		t.Fatalf("variance = %g, want 4", got)
	}
	if VarianceFromMoments(0, 0, 0) != 0 {
		t.Fatal("empty variance must be 0")
	}
}

func TestVarianceNeverNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var m MomentAccumulator
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			m.Add(math.Mod(v, 1e6))
		}
		return m.Impurity() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassCounterIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 5
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		classes := make([]int32, n)
		for i := range classes {
			classes[i] = int32(rng.Intn(k))
		}
		// Add everything, then remove a random prefix; compare against batch
		// counts of the suffix.
		cc := NewClassCounter(k)
		for _, c := range classes {
			cc.Add(c)
		}
		cut := rng.Intn(n)
		for _, c := range classes[:cut] {
			cc.Remove(c)
		}
		batch := make([]int, k)
		for _, c := range classes[cut:] {
			batch[c]++
		}
		for i := range batch {
			if cc.Counts[i] != batch[i] {
				t.Fatalf("trial %d: incremental counts %v != batch %v", trial, cc.Counts, batch)
			}
		}
		if !almostEqual(cc.Impurity(Gini), GiniFromCounts(batch)) {
			t.Fatalf("trial %d: gini mismatch", trial)
		}
		if !almostEqual(cc.Impurity(Entropy), EntropyFromCounts(batch)) {
			t.Fatalf("trial %d: entropy mismatch", trial)
		}
	}
}

func TestMomentAccumulatorIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		var acc MomentAccumulator
		for _, v := range vals {
			acc.Add(v)
		}
		cut := rng.Intn(n)
		for _, v := range vals[:cut] {
			acc.Remove(v)
		}
		var batch MomentAccumulator
		for _, v := range vals[cut:] {
			batch.Add(v)
		}
		if acc.N != batch.N || math.Abs(acc.Impurity()-batch.Impurity()) > 1e-6 {
			t.Fatalf("trial %d: incremental variance %g != batch %g", trial, acc.Impurity(), batch.Impurity())
		}
	}
}

func TestMajorityAndPMF(t *testing.T) {
	cc := NewClassCounter(3)
	if cc.Majority() != -1 || cc.PMF() != nil {
		t.Fatal("empty counter should have no majority/PMF")
	}
	cc.AddN(0, 2)
	cc.AddN(2, 5)
	cc.AddN(1, 3)
	if cc.Majority() != 2 {
		t.Fatalf("majority = %d, want 2", cc.Majority())
	}
	pmf := cc.PMF()
	if !almostEqual(pmf[0], 0.2) || !almostEqual(pmf[1], 0.3) || !almostEqual(pmf[2], 0.5) {
		t.Fatalf("pmf = %v", pmf)
	}
	cc.Reset()
	if cc.N != 0 || cc.Counts[2] != 0 {
		t.Fatal("reset did not zero counter")
	}
}

func TestMajorityTieBreaksLow(t *testing.T) {
	cc := NewClassCounter(3)
	cc.AddN(1, 4)
	cc.AddN(2, 4)
	if cc.Majority() != 1 {
		t.Fatalf("tie majority = %d, want 1", cc.Majority())
	}
}

func TestWeightedSplit(t *testing.T) {
	if got := WeightedSplit(0, 0, 0, 0); got != 0 {
		t.Fatal("empty split must be 0")
	}
	// 3 rows at impurity 0.4 and 1 row at 0.0 -> 0.3.
	if got := WeightedSplit(3, 0.4, 1, 0); !almostEqual(got, 0.3) {
		t.Fatalf("weighted = %g, want 0.3", got)
	}
}

func TestMeasureStrings(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" || Variance.String() != "variance" {
		t.Fatal("measure strings wrong")
	}
	if !Gini.ForClassification() || !Entropy.ForClassification() || Variance.ForClassification() {
		t.Fatal("ForClassification wrong")
	}
}
