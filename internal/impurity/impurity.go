// Package impurity provides the node impurity measures used to score split
// conditions: Gini index and entropy for classification, variance for
// regression. All three are exposed both as pure functions over summary
// statistics and as incremental accumulators, so split finders can evaluate
// every candidate threshold with O(1) work per row (Appendix B of the paper).
package impurity

import "math"

// Measure selects an impurity function.
type Measure uint8

const (
	// Gini is the Gini index, the paper's default for classification.
	Gini Measure = iota
	// Entropy is the Shannon entropy of the class distribution.
	Entropy
	// Variance is the Y variance, the paper's measure for regression.
	Variance
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	case Variance:
		return "variance"
	default:
		return "unknown"
	}
}

// ForClassification reports whether the measure applies to categorical Y.
func (m Measure) ForClassification() bool { return m == Gini || m == Entropy }

// GiniFromCounts computes the Gini index 1 - sum(p_k^2) of a class count
// vector. An empty node has impurity 0.
func GiniFromCounts(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		sumSq += p * p
	}
	return 1 - sumSq
}

// EntropyFromCounts computes the Shannon entropy (base 2) of a class count
// vector. An empty node has impurity 0.
func EntropyFromCounts(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// VarianceFromMoments computes the population variance from a count, sum and
// sum of squares. An empty node has impurity 0.
func VarianceFromMoments(n int, sum, sumSq float64) float64 {
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	v := sumSq/float64(n) - mean*mean
	if v < 0 { // guard tiny negative values from floating-point cancellation
		return 0
	}
	return v
}

// ClassCounter accumulates class counts incrementally so that split finders
// can slide rows from the right partition to the left in O(1) per row.
type ClassCounter struct {
	Counts []int
	N      int
}

// NewClassCounter returns a counter over k classes.
func NewClassCounter(k int) *ClassCounter {
	return &ClassCounter{Counts: make([]int, k)}
}

// Add records one observation of class c.
func (cc *ClassCounter) Add(c int32) {
	cc.Counts[c]++
	cc.N++
}

// Remove removes one observation of class c.
func (cc *ClassCounter) Remove(c int32) {
	cc.Counts[c]--
	cc.N--
}

// AddN records n observations of class c.
func (cc *ClassCounter) AddN(c int32, n int) {
	cc.Counts[c] += n
	cc.N += n
}

// Reset zeroes the counter in place.
func (cc *ClassCounter) Reset() {
	for i := range cc.Counts {
		cc.Counts[i] = 0
	}
	cc.N = 0
}

// Impurity evaluates the measure on the current counts. Variance is invalid
// for a ClassCounter and panics.
func (cc *ClassCounter) Impurity(m Measure) float64 {
	switch m {
	case Gini:
		return GiniFromCounts(cc.Counts)
	case Entropy:
		return EntropyFromCounts(cc.Counts)
	default:
		panic("impurity: class counter cannot evaluate " + m.String())
	}
}

// Majority returns the class with the highest count (lowest index wins ties)
// or -1 when empty.
func (cc *ClassCounter) Majority() int32 {
	if cc.N == 0 {
		return -1
	}
	best := 0
	for i, c := range cc.Counts {
		if c > cc.Counts[best] {
			best = i
		}
	}
	return int32(best)
}

// PMF returns the probability mass function over classes; nil when empty.
func (cc *ClassCounter) PMF() []float64 {
	if cc.N == 0 {
		return nil
	}
	p := make([]float64, len(cc.Counts))
	for i, c := range cc.Counts {
		p[i] = float64(c) / float64(cc.N)
	}
	return p
}

// MomentAccumulator accumulates count/sum/sum-of-squares for regression
// targets, the incremental counterpart of VarianceFromMoments.
type MomentAccumulator struct {
	N     int
	Sum   float64
	SumSq float64
}

// Add records one observation.
func (ma *MomentAccumulator) Add(y float64) {
	ma.N++
	ma.Sum += y
	ma.SumSq += y * y
}

// Remove removes one observation.
func (ma *MomentAccumulator) Remove(y float64) {
	ma.N--
	ma.Sum -= y
	ma.SumSq -= y * y
}

// Reset zeroes the accumulator.
func (ma *MomentAccumulator) Reset() { *ma = MomentAccumulator{} }

// Mean returns the running mean, or 0 when empty.
func (ma *MomentAccumulator) Mean() float64 {
	if ma.N == 0 {
		return 0
	}
	return ma.Sum / float64(ma.N)
}

// Impurity returns the population variance of the accumulated observations.
func (ma *MomentAccumulator) Impurity() float64 {
	return VarianceFromMoments(ma.N, ma.Sum, ma.SumSq)
}

// WeightedSplit combines left/right impurities into the impurity of a split,
// weighting each side by its row share. This is the quantity split finders
// minimise; the parent impurity is constant per node so it can be ignored
// when comparing candidates.
func WeightedSplit(leftN int, leftImp float64, rightN int, rightImp float64) float64 {
	total := leftN + rightN
	if total == 0 {
		return 0
	}
	return (float64(leftN)*leftImp + float64(rightN)*rightImp) / float64(total)
}
