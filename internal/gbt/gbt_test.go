package gbt

import (
	"math"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/dataset"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func TestLocalRegressionLearnsStep(t *testing.T) {
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i-n/2) / 100
		if xs[i] > 0 {
			ys[i] = 10
		}
	}
	tbl := dataset.MustNewTable([]*dataset.Column{
		dataset.NewNumeric("x", xs), dataset.NewNumeric("y", ys),
	}, 1)
	m, err := Train(&LocalEngine{Table: tbl}, tbl, Config{Rounds: 25, MaxDepth: 2, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := m.RMSE(tbl); rmse > 1 {
		t.Fatalf("rmse %.3f too high", rmse)
	}
}

func TestLocalBinaryClassification(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "gbtc", Rows: 5000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 4, LabelNoise: 0.05, Seed: 61,
	}, 0.25)
	m, err := Train(&LocalEngine{Table: train}, train, Config{Rounds: 30, MaxDepth: 4, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Classification {
		t.Fatal("not classification")
	}
	if acc := m.Accuracy(test); acc < 0.85 {
		t.Fatalf("accuracy %.3f too low", acc)
	}
	// Probabilities are proper.
	for r := 0; r < 20; r++ {
		p := m.PredictProb(test, r)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("bad probability %g", p)
		}
	}
}

func TestAccuracyImprovesWithRounds(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "gbtr", Rows: 5000, NumNumeric: 10, NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.05, Seed: 62,
	}, 0.25)
	few, err := Train(&LocalEngine{Table: train}, train, Config{Rounds: 2, MaxDepth: 4, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(&LocalEngine{Table: train}, train, Config{Rounds: 40, MaxDepth: 4, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if many.Accuracy(test) <= few.Accuracy(test) {
		t.Fatalf("rounds did not help: %d trees %.3f vs %d trees %.3f",
			len(few.Trees), few.Accuracy(test), len(many.Trees), many.Accuracy(test))
	}
}

func TestMulticlassRejected(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "gbtm", Rows: 500, NumNumeric: 4, NumClasses: 3, ConceptDepth: 3, Seed: 63,
	})
	if _, err := Train(&LocalEngine{Table: train}, train, Config{Rounds: 2}); err == nil {
		t.Fatal("multiclass accepted")
	}
}

// TestDistributedMatchesLocal is the headline: gradient boosting through
// the TreeServer cluster — SetTarget between rounds, exact distributed
// trees within rounds — must reproduce the local reference bit for bit.
func TestDistributedMatchesLocal(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "gbtd", Rows: 4000, NumNumeric: 6, NumCategorical: 2, NumClasses: 2,
		ConceptDepth: 4, LabelNoise: 0.05, Seed: 64,
	}, 0.25)
	cfg := Config{Rounds: 6, MaxDepth: 4, LearningRate: 0.3}

	local, err := Train(&LocalEngine{Table: train}, train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(3), cluster.WithCompers(2),
		cluster.WithPolicy(task.Policy{TauD: 500, TauDFS: 2000, NPool: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dist, err := Train(c, train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(dist.Trees) != len(local.Trees) {
		t.Fatalf("tree counts %d vs %d", len(dist.Trees), len(local.Trees))
	}
	for i := range dist.Trees {
		if !dist.Trees[i].Equal(local.Trees[i]) {
			t.Fatalf("round %d tree differs between cluster and local", i)
		}
	}
	if math.Abs(dist.Accuracy(test)-local.Accuracy(test)) > 1e-12 {
		t.Fatal("accuracies differ")
	}
	if dist.Accuracy(test) < 0.75 {
		t.Fatalf("distributed gbt accuracy %.3f too low", dist.Accuracy(test))
	}
}

func TestSubsampleRounds(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "gbts", Rows: 4000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 4, Seed: 65,
	}, 0.25)
	m, err := Train(&LocalEngine{Table: train}, train,
		Config{Rounds: 20, MaxDepth: 4, LearningRate: 0.3, Subsample: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.8 {
		t.Fatalf("stochastic gbt accuracy %.3f", acc)
	}
}

func TestSetTargetValidation(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "gbtv", Rows: 100, NumNumeric: 3, NumClasses: 2, Seed: 66,
	})
	le := &LocalEngine{Table: train}
	if err := le.SetTarget(make([]float64, 5)); err == nil {
		t.Fatal("wrong-length target accepted locally")
	}
	c, err := cluster.NewInProcess(train, cluster.WithWorkers(2), cluster.WithCompers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetTarget(make([]float64, 5)); err == nil {
		t.Fatal("wrong-length target accepted by cluster")
	}
	if err := c.SetTarget(make([]float64, 100)); err != nil {
		t.Fatalf("valid target rejected: %v", err)
	}
}

func TestRegressionBaseIsMean(t *testing.T) {
	tbl := dataset.MustNewTable([]*dataset.Column{
		dataset.NewNumeric("x", []float64{1, 1, 1, 1}),
		dataset.NewNumeric("y", []float64{2, 4, 6, 8}),
	}, 1)
	m, err := Train(&LocalEngine{Table: tbl}, tbl, Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Base != 5 {
		t.Fatalf("base = %g, want 5", m.Base)
	}
	for r := 0; r < 4; r++ {
		if got := m.PredictValue(tbl, r); got != 5 {
			t.Fatalf("constant feature should predict the mean, got %g", got)
		}
	}
}
