// Package gbt implements distributed gradient-boosted trees ON TOP of the
// TreeServer engine — the extension the paper's tree-dependency discussion
// (Section III, "Tree Scheduling") points at but does not build: boosting
// rounds are sequential, but each round's regression tree trains with full
// TreeServer parallelism (exact splits, column tasks, subtree tasks).
//
// Between rounds the driver computes pseudo-residuals from the current
// ensemble and pushes them to the workers as the new target column via the
// cluster's SetTarget protocol. Squared loss fits residuals directly;
// binary classification follows Friedman's gradient boosting with the
// logistic loss (trees fit y - p).
package gbt

import (
	"fmt"
	"math"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
)

// Engine is the training substrate: the distributed cluster, or a local
// stand-in for tests. Both retrain regression trees against a replaceable
// numeric target.
type Engine interface {
	Train(specs []cluster.TreeSpec) ([]*core.Tree, error)
	SetTarget(y []float64) error
}

// LocalEngine trains rounds serially on an in-memory copy of the table —
// the reference the distributed engine is tested against.
type LocalEngine struct {
	Table *dataset.Table // feature columns are shared; Y is replaced
}

// Train implements Engine.
func (l *LocalEngine) Train(specs []cluster.TreeSpec) ([]*core.Tree, error) {
	out := make([]*core.Tree, len(specs))
	for i, spec := range specs {
		if spec.Bag.NumRows == 0 {
			spec.Bag.NumRows = l.Table.NumRows()
		}
		out[i] = core.TrainLocal(l.Table, spec.Bag.Rows(), spec.Params)
	}
	return out, nil
}

// SetTarget implements Engine.
func (l *LocalEngine) SetTarget(y []float64) error {
	if len(y) != l.Table.NumRows() {
		return fmt.Errorf("gbt: target has %d values, table has %d rows", len(y), l.Table.NumRows())
	}
	cols := append([]*dataset.Column(nil), l.Table.Cols...)
	cols[l.Table.Target] = dataset.NewNumeric("Y", y)
	l.Table = &dataset.Table{Cols: cols, Target: l.Table.Target}
	return nil
}

// Config are the boosting hyperparameters.
type Config struct {
	Rounds       int
	LearningRate float64 // default 0.1
	MaxDepth     int     // default 4 (shallow trees boost best)
	MinLeaf      int     // default 1
	// Subsample draws a bootstrap fraction of rows per round (stochastic
	// gradient boosting); 0 or 1 uses all rows.
	Subsample float64
	Seed      int64
	// HistMaxBins > 0 trains each round's tree with the histogram splitter
	// (at most that many bins per numeric column) instead of the exact
	// sweep. When the engine is a hist-mode cluster this only needs to match
	// its MaxBins for local/distributed parity; serially it selects
	// core.Params.HistMaxBins.
	HistMaxBins int
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 1
	}
	return c
}

// Model is a trained gradient-boosted ensemble of TreeServer trees.
type Model struct {
	Base           float64
	LearningRate   float64
	Trees          []*core.Tree
	Classification bool // binary logistic when true
}

// Margin returns the raw additive score for a row.
func (m *Model) Margin(tbl *dataset.Table, row int) float64 {
	out := m.Base
	for _, t := range m.Trees {
		out += m.LearningRate * t.PredictValue(tbl, row, 0)
	}
	return out
}

// PredictValue returns the regression prediction.
func (m *Model) PredictValue(tbl *dataset.Table, row int) float64 {
	return m.Margin(tbl, row)
}

// PredictProb returns P(class 1) for binary models.
func (m *Model) PredictProb(tbl *dataset.Table, row int) float64 {
	return 1 / (1 + math.Exp(-m.Margin(tbl, row)))
}

// PredictClass returns 0/1 for binary models.
func (m *Model) PredictClass(tbl *dataset.Table, row int) int32 {
	if m.Margin(tbl, row) > 0 {
		return 1
	}
	return 0
}

// Accuracy scores a binary model against a table's categorical labels.
func (m *Model) Accuracy(tbl *dataset.Table) float64 {
	pred := make([]int32, tbl.NumRows())
	for r := range pred {
		pred[r] = m.PredictClass(tbl, r)
	}
	return metrics.Accuracy(pred, tbl.Y().Cats)
}

// RMSE scores a regression model.
func (m *Model) RMSE(tbl *dataset.Table) float64 {
	pred := make([]float64, tbl.NumRows())
	actual := make([]float64, tbl.NumRows())
	for r := range pred {
		pred[r] = m.PredictValue(tbl, r)
		actual[r] = tbl.Y().Float(r)
	}
	return metrics.RMSE(pred, actual)
}

// Train fits a boosted model. tbl is the driver-side view of the training
// table (used to compute gradients and route predictions); engine is where
// the trees actually train — pass the cluster for distributed rounds.
//
// The engine's target column is consumed: after Train it holds the last
// round's residuals.
func Train(engine Engine, tbl *dataset.Table, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("gbt: empty table")
	}
	y := tbl.Y()
	m := &Model{LearningRate: cfg.LearningRate}
	var labels []float64
	switch {
	case tbl.Task() == dataset.Regression:
		labels = make([]float64, n)
		var sum float64
		for r := 0; r < n; r++ {
			labels[r] = y.Floats[r]
			sum += labels[r]
		}
		m.Base = sum / float64(n)
	case tbl.NumClasses() == 2:
		m.Classification = true
		labels = make([]float64, n)
		pos := 0
		for r := 0; r < n; r++ {
			labels[r] = float64(y.Cats[r])
			pos += int(y.Cats[r])
		}
		// Base = prior log-odds.
		p := (float64(pos) + 0.5) / (float64(n) + 1)
		m.Base = math.Log(p / (1 - p))
	default:
		return nil, fmt.Errorf("gbt: only regression and binary classification are supported (got %d classes)", tbl.NumClasses())
	}

	margins := make([]float64, n)
	for r := range margins {
		margins[r] = m.Base
	}
	residuals := make([]float64, n)

	params := core.Params{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, HistMaxBins: cfg.HistMaxBins}
	for round := 0; round < cfg.Rounds; round++ {
		// Pseudo-residuals of the loss at the current margins.
		for r := 0; r < n; r++ {
			if m.Classification {
				p := 1 / (1 + math.Exp(-margins[r]))
				residuals[r] = labels[r] - p
			} else {
				residuals[r] = labels[r] - margins[r]
			}
		}
		if err := engine.SetTarget(residuals); err != nil {
			return nil, fmt.Errorf("gbt: round %d: %w", round, err)
		}
		spec := cluster.TreeSpec{Params: params}
		if cfg.Subsample > 0 && cfg.Subsample < 1 {
			spec.Bag = cluster.BagSpec{
				NumRows: n,
				Sample:  int(cfg.Subsample * float64(n)),
				Seed:    cfg.Seed + int64(round),
			}
		}
		trees, err := engine.Train([]cluster.TreeSpec{spec})
		if err != nil {
			return nil, fmt.Errorf("gbt: round %d: %w", round, err)
		}
		tree := trees[0]
		m.Trees = append(m.Trees, tree)
		for r := 0; r < n; r++ {
			margins[r] += cfg.LearningRate * tree.PredictValue(tbl, r, 0)
		}
	}
	return m, nil
}
