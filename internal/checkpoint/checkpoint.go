// Package checkpoint is the master's durable-state subsystem: a versioned,
// CRC-guarded on-disk format holding everything a restarted master needs to
// resume a training job — the job spec (per-tree params and bags), the column
// placement, the completed trees, and the task-ledger counters.
//
// A checkpoint file is a header followed by records:
//
//	header:  "TSCK" magic, u16 little-endian format version
//	record:  kind u8 | len u32 LE | payload | crc32c u32 LE
//
// The CRC (Castagnoli) covers kind, length and payload, so any torn write,
// bit flip or truncation is detected record-by-record. The first record of a
// file is always a full Snapshot; subsequent TreeDone records are appended
// (and fsynced) as trees complete, so the durable state advances at
// tree-completion boundaries without rewriting the snapshot.
//
// Load reads the newest file first and falls back: a file whose header or
// snapshot record is corrupt is skipped entirely in favour of the previous
// one; a corrupt or truncated record tail keeps the valid prefix (the lost
// trees are simply retrained — training is deterministic per (Params, Bag)).
// Completed trees are stored alongside their core.Tree.Canon serialisation
// and re-canonicalised on load, so a tree that decodes but does not round-trip
// bit-identically is treated as corrupt too.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"treeserver/internal/core"
	"treeserver/internal/loadbal"
)

// ErrNoCheckpoint is returned by Load when the directory holds no valid
// checkpoint file at all.
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// Bag mirrors the cluster's bag spec: the deterministic recipe for one
// tree's root row set. Field-identical to cluster.BagSpec so the two convert
// directly; duplicated here because checkpoint must not import cluster.
type Bag struct {
	NumRows int
	Sample  int
	Seed    int64
}

// TreeState is one tree of the job: its deterministic training inputs and,
// once complete, the finished tree plus its canonical serialisation.
type TreeState struct {
	Params core.Params
	Bag    Bag
	Done   bool
	Tree   *core.Tree // nil unless Done
	Canon  string     // core.Tree.Canon() of Tree, the integrity witness
}

// Ledger is the durable subset of the master's task-lifecycle counters,
// restored (max-merged) into the telemetry registry after a recovery so the
// end-of-train report spans the whole job, not just the resumed half.
type Ledger struct {
	TasksPlanned    int64
	TasksConfirmed  int64
	TasksCompleted  int64
	TasksRetried    int64
	TasksSuperseded int64
	RowsPlanned     int64
}

// State is one full snapshot of the master's durable state.
type State struct {
	// Gen is the master generation that wrote the snapshot. A restarted
	// master resumes at Gen+1 and fences its task IDs by generation, so
	// results computed for a previous life can never collide with live tasks.
	Gen        int64
	NumWorkers int
	Replicas   int
	NextTreeID int32
	// Regression records that SetTarget swapped the label column to a
	// numeric target (gradient-boosting rounds). A replacement master must
	// restore the swapped schema or it would plan classification-measure
	// tasks against the workers' regression labels.
	Regression bool
	Placement  loadbal.Placement
	Trees      []TreeState
	Ledger     Ledger
}

// TreeDone is the incremental record appended when one tree completes.
type TreeDone struct {
	Index int
	Tree  *core.Tree
	Canon string
}

// Membership is the incremental record appended when the fleet changes: a
// worker joined live (fleet grew, the joiner now holds replicas) or a worker
// was gracefully drained (its columns were handed to survivors and it left
// the placement). A recovering master — disk restart or standby takeover —
// folds it into the snapshot state so a failover mid-join or mid-drain
// resumes with a consistent fleet view.
type Membership struct {
	NumWorkers int
	Placement  loadbal.Placement
}

// DoneTrees counts the completed trees in the state.
func (s *State) DoneTrees() int {
	n := 0
	for _, t := range s.Trees {
		if t.Done {
			n++
		}
	}
	return n
}

// apply folds a TreeDone record into the state. Out-of-range indexes are
// rejected (a corrupt length field could otherwise panic the loader).
func (s *State) apply(td TreeDone) error {
	if td.Index < 0 || td.Index >= len(s.Trees) {
		return fmt.Errorf("checkpoint: tree-done index %d out of range [0,%d)", td.Index, len(s.Trees))
	}
	s.Trees[td.Index] = TreeState{
		Params: s.Trees[td.Index].Params,
		Bag:    s.Trees[td.Index].Bag,
		Done:   true,
		Tree:   td.Tree,
		Canon:  td.Canon,
	}
	return nil
}

// verifyTrees re-canonicalises every completed tree and compares against the
// stored witness; a mismatch means the encoded tree was damaged in a way the
// CRC did not catch (or was written corrupt), so the caller must reject it.
func (s *State) verifyTrees() error {
	for i, t := range s.Trees {
		if !t.Done {
			continue
		}
		if t.Tree == nil {
			return fmt.Errorf("checkpoint: tree %d marked done but has no tree", i)
		}
		if got := t.Tree.Canon(); got != t.Canon {
			return fmt.Errorf("checkpoint: tree %d canon mismatch after decode", i)
		}
	}
	return nil
}

// applyMembership folds a membership record into the state.
func (s *State) applyMembership(mb Membership) error {
	if err := verifyMembership(mb); err != nil {
		return err
	}
	s.NumWorkers = mb.NumWorkers
	s.Placement = mb.Placement
	return nil
}

// verifyMembership bounds-checks a membership record: a corrupt fleet size
// or an owner index outside the fleet would otherwise poison every slice
// the recovering master sizes from it.
func verifyMembership(mb Membership) error {
	if mb.NumWorkers <= 0 {
		return fmt.Errorf("checkpoint: membership record has fleet size %d", mb.NumWorkers)
	}
	if mb.Placement.NumWorkers > mb.NumWorkers {
		return fmt.Errorf("checkpoint: membership placement spans %d workers, fleet is %d",
			mb.Placement.NumWorkers, mb.NumWorkers)
	}
	for col, owners := range mb.Placement.Owners {
		for _, w := range owners {
			if w < 0 || w >= mb.NumWorkers {
				return fmt.Errorf("checkpoint: membership owner %d of column %d outside fleet [0,%d)",
					w, col, mb.NumWorkers)
			}
		}
	}
	return nil
}

func verifyTreeDone(td TreeDone) error {
	if td.Tree == nil {
		return fmt.Errorf("checkpoint: tree-done record %d has no tree", td.Index)
	}
	if got := td.Tree.Canon(); got != td.Canon {
		return fmt.Errorf("checkpoint: tree-done record %d canon mismatch", td.Index)
	}
	return nil
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decode: %w", err)
	}
	return nil
}
