package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	magic   = "TSCK"
	version = 1

	// KindSnapshot is a full State record — always the first record of a file.
	KindSnapshot = byte(1)
	// KindTreeDone is an incremental tree-completion record.
	KindTreeDone = byte(2)
	// KindMembership is an incremental fleet-change record (live join or
	// graceful drain): new fleet size plus the rebalanced placement.
	KindMembership = byte(3)

	// keepFiles is how many snapshot files Snapshot retains: the newest plus
	// one predecessor, so a corrupt newest file always has a fallback.
	keepFiles = 2

	filePrefix = "ckpt-"
	fileSuffix = ".tsck"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fileName renders the sequence-numbered checkpoint file name; the zero-padded
// decimal makes lexicographic and numeric order agree.
func fileName(seq int) string {
	return fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix)
}

// fileSeq parses a checkpoint file name back to its sequence number.
func fileSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listSeqs returns the sequence numbers of the checkpoint files in dir,
// ascending. A missing directory is simply empty.
func listSeqs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: reading %s: %w", dir, err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := fileSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// frameRecord renders one CRC-guarded record.
func frameRecord(kind byte, payload []byte) []byte {
	buf := make([]byte, 5+len(payload)+4)
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	crc := crc32.Checksum(buf[:5+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(buf[5+len(payload):], crc)
	return buf
}

// parseRecord reads one record from data, returning the kind, payload and the
// remaining bytes. A short or CRC-failing record returns an error — the
// caller treats everything from here on as a torn tail.
func parseRecord(data []byte) (kind byte, payload, rest []byte, err error) {
	if len(data) < 9 {
		return 0, nil, nil, fmt.Errorf("checkpoint: truncated record header (%d bytes)", len(data))
	}
	kind = data[0]
	n := binary.LittleEndian.Uint32(data[1:5])
	if uint64(len(data)) < 9+uint64(n) {
		return 0, nil, nil, fmt.Errorf("checkpoint: truncated record payload (want %d bytes, have %d)", n, len(data)-9)
	}
	body := data[:5+n]
	want := binary.LittleEndian.Uint32(data[5+n : 9+n])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, nil, nil, fmt.Errorf("checkpoint: record crc mismatch (got %08x, want %08x)", got, want)
	}
	return kind, data[5 : 5+n], data[9+n:], nil
}

// Writer owns one checkpoint directory: Snapshot starts a fresh
// sequence-numbered file via write-to-temp + fsync + atomic rename, then
// AppendTreeDone grows it record by record (each append fsynced). Old
// snapshot files beyond the newest two are pruned. All methods are safe for
// concurrent use.
type Writer struct {
	dir string

	mu   sync.Mutex
	seq  int      // sequence of the current (open) file
	f    *os.File // nil until the first Snapshot
	dirF *os.File // directory handle for fsyncing renames
}

// NewWriter opens (creating if necessary) a checkpoint directory. Sequence
// numbering continues after any files already present, so a restarted master
// never overwrites the state it is about to recover from.
func NewWriter(dir string) (*Writer, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	seqs, err := listSeqs(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir}
	if len(seqs) > 0 {
		w.seq = seqs[len(seqs)-1]
	}
	w.dirF, err = os.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return w, nil
}

// Dir returns the writer's directory.
func (w *Writer) Dir() string { return w.dir }

// Snapshot writes a full State as the first record of a new checkpoint file:
// temp file, fsync, atomic rename, directory fsync. Subsequent AppendTreeDone
// calls extend this file. It returns the bytes written.
func (w *Writer) Snapshot(st *State) (int, error) {
	payload, err := encodeGob(st)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	seq := w.seq + 1
	final := filepath.Join(w.dir, fileName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	var hdr [6]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:], version)
	rec := frameRecord(KindSnapshot, payload)
	n := len(hdr) + len(rec)
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(rec)
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	// The rename does not invalidate the open descriptor, so the same file
	// keeps receiving appends under its durable name.
	if w.f != nil {
		w.f.Close()
	}
	w.f, w.seq = f, seq
	if w.dirF != nil {
		_ = w.dirF.Sync()
	}
	w.pruneLocked()
	return n, nil
}

// AppendTreeDone appends (and fsyncs) one tree-completion record to the
// current snapshot file. It returns the bytes written. Calling it before any
// Snapshot is an error — there is no file to extend.
func (w *Writer) AppendTreeDone(td TreeDone) (int, error) {
	payload, err := encodeGob(&td)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("checkpoint: AppendTreeDone before Snapshot")
	}
	rec := frameRecord(KindTreeDone, payload)
	if _, err := w.f.Write(rec); err != nil {
		return 0, fmt.Errorf("checkpoint: appending record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return len(rec), nil
}

// AppendMembership appends (and fsyncs) one fleet-change record to the
// current snapshot file. It returns the bytes written. Like AppendTreeDone,
// calling it before any Snapshot is an error.
func (w *Writer) AppendMembership(mb Membership) (int, error) {
	payload, err := encodeGob(&mb)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("checkpoint: AppendMembership before Snapshot")
	}
	rec := frameRecord(KindMembership, payload)
	if _, err := w.f.Write(rec); err != nil {
		return 0, fmt.Errorf("checkpoint: appending record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return len(rec), nil
}

// pruneLocked removes snapshot files older than the newest keepFiles.
func (w *Writer) pruneLocked() {
	seqs, err := listSeqs(w.dir)
	if err != nil || len(seqs) <= keepFiles {
		return
	}
	for _, seq := range seqs[:len(seqs)-keepFiles] {
		os.Remove(filepath.Join(w.dir, fileName(seq)))
	}
}

// Close releases the writer's file handles.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.f != nil {
		err = w.f.Close()
		w.f = nil
	}
	if w.dirF != nil {
		w.dirF.Close()
		w.dirF = nil
	}
	return err
}

// LoadInfo describes how a Load succeeded: which file won, and how much
// damage the loader had to route around.
type LoadInfo struct {
	Path string
	Seq  int
	// SkippedFiles counts newer files rejected whole (bad header, corrupt
	// snapshot record).
	SkippedFiles int
	// TruncatedRecords counts tail records dropped from the winning file
	// (torn writes, CRC failures, canon mismatches).
	TruncatedRecords int
	// TreesRestored is the number of completed trees recovered.
	TreesRestored int
}

// Load reads the newest valid checkpoint from dir: newest file first, falling
// back to older files when a header or snapshot record is corrupt, and
// keeping the valid record prefix when the tail of a file is damaged.
func Load(dir string) (*State, LoadInfo, error) {
	seqs, err := listSeqs(dir)
	if err != nil {
		return nil, LoadInfo{}, err
	}
	info := LoadInfo{}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fileName(seqs[i]))
		st, truncated, err := loadFile(path)
		if err != nil {
			info.SkippedFiles++
			continue
		}
		info.Path, info.Seq = path, seqs[i]
		info.TruncatedRecords = truncated
		info.TreesRestored = st.DoneTrees()
		return st, info, nil
	}
	return nil, info, fmt.Errorf("%w in %s (%d file(s) skipped)", ErrNoCheckpoint, dir, info.SkippedFiles)
}

// loadFile parses one checkpoint file: header, snapshot record, then as many
// valid TreeDone records as the tail holds. An invalid header or snapshot is
// a file-level error; a broken tail only truncates.
func loadFile(path string) (*State, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < 6 || string(data[:4]) != magic {
		return nil, 0, fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != version {
		return nil, 0, fmt.Errorf("checkpoint: %s: unsupported version %d", path, v)
	}
	kind, payload, rest, err := parseRecord(data[6:])
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %s: snapshot record: %w", path, err)
	}
	if kind != KindSnapshot {
		return nil, 0, fmt.Errorf("checkpoint: %s: first record has kind %d, want snapshot", path, kind)
	}
	st := &State{}
	if err := decodeGob(payload, st); err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %s: snapshot: %w", path, err)
	}
	if err := st.verifyTrees(); err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %s: %w", path, err)
	}

	truncated := 0
	for len(rest) > 0 {
		kind, payload, next, err := parseRecord(rest)
		if err != nil {
			truncated++
			break // torn tail: keep the valid prefix
		}
		switch kind {
		case KindTreeDone:
			var td TreeDone
			if err := decodeGob(payload, &td); err != nil {
				truncated++
				return st, truncated, nil
			}
			if err := verifyTreeDone(td); err != nil {
				truncated++
				return st, truncated, nil
			}
			if err := st.apply(td); err != nil {
				truncated++
				return st, truncated, nil
			}
		case KindMembership:
			var mb Membership
			if err := decodeGob(payload, &mb); err != nil {
				truncated++
				return st, truncated, nil
			}
			if err := st.applyMembership(mb); err != nil {
				truncated++
				return st, truncated, nil
			}
		default:
			truncated++
			return st, truncated, nil // unknown kind: a newer writer or corruption
		}
		rest = next
	}
	return st, truncated, nil
}
