package checkpoint

import (
	"testing"

	"treeserver/internal/loadbal"
)

// Membership-record coverage: the durable log and the standby stream must
// both reproduce a fleet transition (live join, drain retirement) exactly,
// and reject corrupt records instead of materialising an impossible fleet.

func grownMembership() Membership {
	return Membership{
		NumWorkers: 5,
		Placement: loadbal.Placement{
			Owners:     map[int][]int{0: {0, 1, 4}, 2: {1, 3}},
			NumWorkers: 5,
		},
	}
}

func TestMembershipWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if _, err := w.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendMembership(grownMembership()); err != nil {
		t.Fatalf("AppendMembership: %v", err)
	}

	st, info, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if info.TruncatedRecords != 0 {
		t.Fatalf("clean log reported %d truncated records", info.TruncatedRecords)
	}
	if st.NumWorkers != 5 || st.Placement.NumWorkers != 5 {
		t.Fatalf("membership not applied: NumWorkers %d, placement span %d",
			st.NumWorkers, st.Placement.NumWorkers)
	}
	owners := st.Placement.Owners[0]
	if len(owners) != 3 || owners[2] != 4 {
		t.Fatalf("column 0 owners after membership: %v, want [0 1 4]", owners)
	}
}

func TestMembershipStreamsToReplica(t *testing.T) {
	s, recs := collectSink()
	if _, err := s.AppendMembership(grownMembership()); err == nil {
		t.Fatal("AppendMembership before Snapshot must fail")
	}
	if _, err := s.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendMembership(grownMembership()); err != nil {
		t.Fatalf("AppendMembership: %v", err)
	}

	r := NewReplica()
	for _, rec := range *recs {
		if err := r.Apply(rec); err != nil {
			t.Fatalf("Apply kind %d: %v", rec.Kind, err)
		}
	}
	st, err := r.State()
	if err != nil {
		t.Fatalf("replica State: %v", err)
	}
	if st.NumWorkers != 5 || st.Placement.NumWorkers != 5 {
		t.Fatalf("replica fleet after membership: NumWorkers %d span %d",
			st.NumWorkers, st.Placement.NumWorkers)
	}
}

func TestMembershipVerifyRejectsCorruptRecords(t *testing.T) {
	cases := map[string]Membership{
		"zero fleet":       {NumWorkers: 0},
		"negative fleet":   {NumWorkers: -3},
		"span over fleet":  {NumWorkers: 3, Placement: loadbal.Placement{NumWorkers: 9}},
		"owner over fleet": {NumWorkers: 3, Placement: loadbal.Placement{Owners: map[int][]int{1: {0, 7}}, NumWorkers: 3}},
		"negative owner":   {NumWorkers: 3, Placement: loadbal.Placement{Owners: map[int][]int{1: {-1}}, NumWorkers: 3}},
	}
	for name, mb := range cases {
		if err := verifyMembership(mb); err == nil {
			t.Errorf("%s: corrupt membership record accepted", name)
		}
	}
	if err := verifyMembership(grownMembership()); err != nil {
		t.Errorf("valid membership rejected: %v", err)
	}
}
