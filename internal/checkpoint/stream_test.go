package checkpoint

import (
	"errors"
	"testing"

	"treeserver/internal/core"
)

func collectSink() (*StreamSink, *[]Record) {
	recs := &[]Record{}
	s := NewStreamSink(func(r Record) { *recs = append(*recs, r) })
	return s, recs
}

func TestStreamSinkEpochs(t *testing.T) {
	s, recs := collectSink()
	st := testState(t)

	// Appending before any snapshot mirrors the file Writer's contract.
	tree := trainTree(t, 2)
	if _, err := s.AppendTreeDone(TreeDone{Index: 1, Tree: tree, Canon: tree.Canon()}); err == nil {
		t.Fatal("AppendTreeDone before Snapshot must fail")
	}

	if n, err := s.Snapshot(st); err != nil || n <= 0 {
		t.Fatalf("Snapshot: n=%d err=%v", n, err)
	}
	if _, err := s.AppendTreeDone(TreeDone{Index: 1, Tree: tree, Canon: tree.Canon()}); err != nil {
		t.Fatalf("AppendTreeDone: %v", err)
	}
	if _, err := s.Snapshot(st); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}

	got := *recs
	if len(got) != 3 {
		t.Fatalf("emitted %d records, want 3", len(got))
	}
	if got[0].Kind != KindSnapshot || got[0].Seq != 1 {
		t.Fatalf("record 0: kind=%d seq=%d", got[0].Kind, got[0].Seq)
	}
	if got[1].Kind != KindTreeDone || got[1].Seq != 1 {
		t.Fatalf("record 1 must join epoch 1: kind=%d seq=%d", got[1].Kind, got[1].Seq)
	}
	if got[2].Kind != KindSnapshot || got[2].Seq != 2 {
		t.Fatalf("record 2 must open epoch 2: kind=%d seq=%d", got[2].Kind, got[2].Seq)
	}
}

func TestReplicaMaterialisesState(t *testing.T) {
	s, recs := collectSink()
	st := testState(t)
	if _, err := s.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	tree := trainTree(t, 2)
	if _, err := s.AppendTreeDone(TreeDone{Index: 1, Tree: tree, Canon: tree.Canon()}); err != nil {
		t.Fatal(err)
	}

	r := NewReplica()
	if _, err := r.State(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty replica State: %v, want ErrNoCheckpoint", err)
	}
	for _, rec := range *recs {
		if err := r.Apply(rec); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	got, err := r.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if got.DoneTrees() != 2 {
		t.Fatalf("replica has %d done trees, want 2", got.DoneTrees())
	}
	if got.Gen != st.Gen || got.Ledger != st.Ledger {
		t.Fatalf("replica state mismatch: %+v", got)
	}
	if d := core.DiffTrees(tree, got.Trees[1].Tree); d != "" {
		t.Fatalf("streamed tree diverged:\n%s", d)
	}
	if applied, dropped := r.Stats(); applied != 2 || dropped != 0 {
		t.Fatalf("stats applied=%d dropped=%d, want 2/0", applied, dropped)
	}
}

func TestReplicaLossyStream(t *testing.T) {
	s, recs := collectSink()
	st := testState(t)
	tree1, tree2 := trainTree(t, 2), trainTree(t, 3)
	if _, err := s.Snapshot(st); err != nil { // epoch 1
		t.Fatal(err)
	}
	if _, err := s.AppendTreeDone(TreeDone{Index: 1, Tree: tree1, Canon: tree1.Canon()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(st); err != nil { // epoch 2
		t.Fatal(err)
	}
	if _, err := s.AppendTreeDone(TreeDone{Index: 2, Tree: tree2, Canon: tree2.Canon()}); err != nil {
		t.Fatal(err)
	}
	all := *recs // [snap1, td1@1, snap2, td2@2]

	// The epoch-1 tree-done arrives after the epoch-2 snapshot (reordered):
	// it must be discarded, not applied to the wrong base.
	r := NewReplica()
	for _, rec := range []Record{all[0], all[2], all[1], all[3]} {
		if err := r.Apply(rec); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	got, err := r.State()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trees[1].Done {
		t.Fatal("cross-epoch tree-done must be discarded")
	}
	if !got.Trees[2].Done {
		t.Fatal("current-epoch tree-done must apply")
	}

	// A duplicated tree-done is idempotent; a stale re-delivered snapshot
	// must not roll the replica back.
	if err := r.Apply(all[3]); err != nil {
		t.Fatalf("duplicate Apply: %v", err)
	}
	if err := r.Apply(all[0]); err != nil {
		t.Fatalf("stale snapshot Apply: %v", err)
	}
	got, _ = r.State()
	if !got.Trees[2].Done {
		t.Fatal("stale snapshot rolled the replica back")
	}
	if _, dropped := r.Stats(); dropped != 2 {
		t.Fatalf("dropped=%d, want 2 (cross-epoch td + stale snapshot)", dropped)
	}

	// A replica that never saw a snapshot drops tree-dones silently: the
	// tree is simply retrained after takeover.
	fresh := NewReplica()
	if err := fresh.Apply(all[1]); err != nil {
		t.Fatalf("baseless Apply: %v", err)
	}
	if _, err := fresh.State(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("baseless replica must stay empty")
	}
}

func TestReplicaRejectsCorruptPayloads(t *testing.T) {
	st := testState(t)
	payload, err := encodeGob(st)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica()
	if err := r.Apply(Record{Seq: 1, Kind: KindSnapshot, Payload: payload[:len(payload)/2]}); err == nil {
		t.Fatal("truncated snapshot payload must be rejected")
	}
	if err := r.Apply(Record{Seq: 1, Kind: 99, Payload: payload}); err == nil {
		t.Fatal("unknown record kind must be rejected")
	}

	// A tree whose canon witness does not match must be rejected exactly as
	// the disk loader rejects it.
	tree := trainTree(t, 2)
	bad, err := encodeGob(&TreeDone{Index: 1, Tree: tree, Canon: "not-the-canon"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(Record{Seq: 1, Kind: KindTreeDone, Payload: bad}); err == nil {
		t.Fatal("canon mismatch must be rejected")
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	stream, recs := collectSink()
	sink := MultiSink(nil, w, stream)
	if sink == w || sink == Sink(stream) {
		t.Fatal("two live sinks must wrap, not unwrap")
	}

	st := testState(t)
	tree := trainTree(t, 2)
	if n, err := sink.Snapshot(st); err != nil || n <= 0 {
		t.Fatalf("Snapshot: n=%d err=%v", n, err)
	}
	if _, err := sink.AppendTreeDone(TreeDone{Index: 1, Tree: tree, Canon: tree.Canon()}); err != nil {
		t.Fatalf("AppendTreeDone: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Both sides saw both records: disk loads them, stream emitted them.
	got, _, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.DoneTrees() != 2 {
		t.Fatalf("disk side has %d done trees, want 2", got.DoneTrees())
	}
	if len(*recs) != 2 {
		t.Fatalf("stream side saw %d records, want 2", len(*recs))
	}

	// Degenerate cases: nil-only collapses to nil, single sink unwraps.
	if MultiSink(nil, nil) != nil {
		t.Fatal("all-nil MultiSink must be nil")
	}
	if MultiSink(nil, stream) != Sink(stream) {
		t.Fatal("single live sink must be returned unwrapped")
	}
}
