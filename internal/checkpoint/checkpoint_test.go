package checkpoint

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/loadbal"
)

// trainTree builds a small real tree so the round-trip exercises the same
// encoding path (core.Tree's MarshalBinary) production checkpoints use.
func trainTree(t *testing.T, seed int64) *core.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 200
	x := make([]float64, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		if x[i]+rng.NormFloat64()*0.2 > 0 {
			y[i] = 1
		}
	}
	tbl := &dataset.Table{
		Cols:   []*dataset.Column{dataset.NewNumeric("x", x), dataset.NewCategorical("y", y, []string{"n", "p"})},
		Target: 1,
	}
	params := core.Defaults()
	params.MaxDepth = 4
	return core.TrainLocal(tbl, dataset.AllRows(n), params)
}

func testState(t *testing.T) *State {
	t.Helper()
	done := trainTree(t, 1)
	return &State{
		Gen:        3,
		NumWorkers: 4,
		Replicas:   2,
		NextTreeID: 7,
		Placement:  loadbal.Placement{Owners: map[int][]int{0: {0, 1}, 2: {1, 3}}, NumWorkers: 4},
		Trees: []TreeState{
			{Params: core.Params{MaxDepth: 4, MinLeaf: 1}, Bag: Bag{NumRows: 200}, Done: true, Tree: done, Canon: done.Canon()},
			{Params: core.Params{MaxDepth: 4, MinLeaf: 1}, Bag: Bag{NumRows: 200, Sample: 150, Seed: 9}},
			{Params: core.Params{MaxDepth: 4, MinLeaf: 1}, Bag: Bag{NumRows: 200}},
		},
		Ledger: Ledger{TasksPlanned: 40, TasksConfirmed: 30, TasksCompleted: 38, TasksRetried: 2, RowsPlanned: 9000},
	}
}

func TestSnapshotAppendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	st := testState(t)
	if n, err := w.Snapshot(st); err != nil || n <= 0 {
		t.Fatalf("Snapshot: n=%d err=%v", n, err)
	}
	tree1 := trainTree(t, 2)
	if n, err := w.AppendTreeDone(TreeDone{Index: 1, Tree: tree1, Canon: tree1.Canon()}); err != nil || n <= 0 {
		t.Fatalf("AppendTreeDone: n=%d err=%v", n, err)
	}

	got, info, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if info.SkippedFiles != 0 || info.TruncatedRecords != 0 {
		t.Fatalf("clean load reported damage: %+v", info)
	}
	if info.TreesRestored != 2 || got.DoneTrees() != 2 {
		t.Fatalf("restored %d trees (info %d), want 2", got.DoneTrees(), info.TreesRestored)
	}
	if got.Gen != st.Gen || got.NumWorkers != st.NumWorkers || got.Replicas != st.Replicas || got.NextTreeID != st.NextTreeID {
		t.Fatalf("scalar state mismatch: got %+v", got)
	}
	if len(got.Placement.Owners) != 2 || len(got.Placement.Owners[0]) != 2 {
		t.Fatalf("placement mismatch: %+v", got.Placement)
	}
	if got.Ledger != st.Ledger {
		t.Fatalf("ledger mismatch: got %+v want %+v", got.Ledger, st.Ledger)
	}
	if d := core.DiffTrees(st.Trees[0].Tree, got.Trees[0].Tree); d != "" {
		t.Fatalf("snapshot tree diverged:\n%s", d)
	}
	if d := core.DiffTrees(tree1, got.Trees[1].Tree); d != "" {
		t.Fatalf("appended tree diverged:\n%s", d)
	}
	if got.Trees[2].Done {
		t.Fatal("tree 2 should still be pending")
	}
	if got.Trees[1].Bag != st.Trees[1].Bag {
		t.Fatalf("bag lost on apply: %+v", got.Trees[1].Bag)
	}
}

func TestLoadFallsBackToPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st := testState(t)
	if _, err := w.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot(st); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest file deep inside the snapshot payload.
	newest := filepath.Join(dir, fileName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, info, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after corruption: %v", err)
	}
	if info.Seq != 1 || info.SkippedFiles != 1 {
		t.Fatalf("expected fallback to seq 1 skipping 1 file, got %+v", info)
	}
	if got.DoneTrees() != 1 {
		t.Fatalf("fallback restored %d trees, want 1", got.DoneTrees())
	}
}

func TestLoadKeepsValidPrefixOfTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st := testState(t)
	if _, err := w.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	tree1, tree2 := trainTree(t, 2), trainTree(t, 3)
	if _, err := w.AppendTreeDone(TreeDone{Index: 1, Tree: tree1, Canon: tree1.Canon()}); err != nil {
		t.Fatal(err)
	}
	last, err := w.AppendTreeDone(TreeDone{Index: 2, Tree: tree2, Canon: tree2.Canon()})
	if err != nil {
		t.Fatal(err)
	}

	// Tear the last record in half, as a crash mid-append would.
	path := filepath.Join(dir, fileName(1))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-int64(last/2)); err != nil {
		t.Fatal(err)
	}

	got, info, err := Load(dir)
	if err != nil {
		t.Fatalf("Load with torn tail: %v", err)
	}
	if info.TruncatedRecords != 1 {
		t.Fatalf("TruncatedRecords = %d, want 1: %+v", info.TruncatedRecords, info)
	}
	if got.DoneTrees() != 2 {
		t.Fatalf("valid prefix has %d done trees, want 2 (snapshot + first append)", got.DoneTrees())
	}
	if got.Trees[2].Done {
		t.Fatal("torn record's tree should not have been restored")
	}
}

func TestLoadRejectsCanonMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st := testState(t)
	if _, err := w.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	// A record whose canon witness does not match its tree must be dropped
	// even though its CRC is fine.
	tree := trainTree(t, 2)
	if _, err := w.AppendTreeDone(TreeDone{Index: 1, Tree: tree, Canon: "bogus"}); err != nil {
		t.Fatal(err)
	}
	got, info, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.TruncatedRecords != 1 || got.Trees[1].Done {
		t.Fatalf("canon-mismatching record survived: info %+v done=%v", info, got.Trees[1].Done)
	}
}

func TestLoadRejectsBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Snapshot(testState(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte){
		"magic":   func(b []byte) { b[0] = 'X' },
		"version": func(b []byte) { b[4] = 0xff },
	} {
		bad := append([]byte(nil), data...)
		mutate(bad)
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(dir); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("%s corruption: Load err = %v, want ErrNoCheckpoint", name, err)
		}
	}
}

func TestLoadEmptyDir(t *testing.T) {
	if _, _, err := Load(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load of empty dir: %v, want ErrNoCheckpoint", err)
	}
}

func TestWriterContinuesSequenceAndPrunes(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := testState(t)
	for i := 0; i < 3; i++ {
		if _, err := w.Snapshot(st); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seqs, err := listSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != keepFiles || seqs[len(seqs)-1] != 3 {
		t.Fatalf("after 3 snapshots: files %v, want newest %d of %d kept", seqs, 3, keepFiles)
	}

	// A second writer (the restarted master) must continue, not collide.
	w2, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if _, info, err := Load(dir); err != nil || info.Seq != 4 {
		t.Fatalf("restarted writer: Load seq %d err %v, want seq 4", info.Seq, err)
	}
}

func TestAppendBeforeSnapshotFails(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.AppendTreeDone(TreeDone{}); err == nil {
		t.Fatal("AppendTreeDone before Snapshot should fail")
	}
}
