// Checkpoint streaming: the sink/source abstraction that lets the same
// records the master fsyncs locally also feed a hot-standby replica over
// the transport fabric. A Sink receives snapshot and tree-done records (the
// file Writer is one Sink; StreamSink forwards records to a send loop;
// MultiSink fans out to both), and a Replica is the receiving side that
// re-materialises the exact State a disk Load would have produced — without
// any disk.
package checkpoint

import (
	"fmt"
	"sync"
)

// Sink receives the master's durable-state records. Writer implements Sink
// (append to the local log); StreamSink implements it by handing records to
// an emit function. Snapshot, AppendTreeDone and AppendMembership return the
// payload bytes produced, mirroring Writer's accounting.
type Sink interface {
	Snapshot(st *State) (int, error)
	AppendTreeDone(td TreeDone) (int, error)
	AppendMembership(mb Membership) (int, error)
	Close() error
}

// Writer must satisfy Sink: the stream layer is an abstraction over it.
var _ Sink = (*Writer)(nil)

// Record is one checkpoint record in streamed form. Seq is the snapshot
// epoch: each Snapshot bumps it and every subsequent TreeDone carries it,
// so a replica that missed a snapshot (dropped or reordered delivery) can
// recognise — and discard — tree-done records it has no base state for.
type Record struct {
	Seq     int
	Kind    byte   // KindSnapshot, KindTreeDone or KindMembership
	Payload []byte // gob-encoded State, TreeDone or Membership
}

// StreamSink converts sink calls into Records and hands them to emit. The
// emit function is called synchronously under the sink's lock (so records
// are emitted in epoch order) and must not block: the master's send loop
// buffers behind it. A StreamSink works with no checkpoint directory at
// all, which is what lets a standby-backed cluster run diskless.
type StreamSink struct {
	mu   sync.Mutex
	seq  int
	emit func(Record)
}

// NewStreamSink returns a StreamSink forwarding records to emit.
func NewStreamSink(emit func(Record)) *StreamSink {
	return &StreamSink{emit: emit}
}

// Snapshot implements Sink: it starts a new epoch.
func (s *StreamSink) Snapshot(st *State) (int, error) {
	payload, err := encodeGob(st)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.emit(Record{Seq: s.seq, Kind: KindSnapshot, Payload: payload})
	return len(payload), nil
}

// AppendTreeDone implements Sink: the record joins the current epoch.
func (s *StreamSink) AppendTreeDone(td TreeDone) (int, error) {
	payload, err := encodeGob(&td)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == 0 {
		return 0, fmt.Errorf("checkpoint: stream AppendTreeDone before Snapshot")
	}
	s.emit(Record{Seq: s.seq, Kind: KindTreeDone, Payload: payload})
	return len(payload), nil
}

// AppendMembership implements Sink: the fleet change joins the current
// epoch.
func (s *StreamSink) AppendMembership(mb Membership) (int, error) {
	payload, err := encodeGob(&mb)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == 0 {
		return 0, fmt.Errorf("checkpoint: stream AppendMembership before Snapshot")
	}
	s.emit(Record{Seq: s.seq, Kind: KindMembership, Payload: payload})
	return len(payload), nil
}

// Close implements Sink.
func (s *StreamSink) Close() error { return nil }

// multiSink fans every record out to all child sinks.
type multiSink struct {
	sinks []Sink
}

// MultiSink combines sinks into one. Nil entries are skipped; a single
// remaining sink is returned unwrapped; no sinks yields nil. The returned
// bytes come from the first sink (the durable one, by convention) and the
// first error wins — but every sink still sees every record.
func MultiSink(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiSink{sinks: live}
}

func (m *multiSink) Snapshot(st *State) (int, error) {
	var n int
	var first error
	for i, s := range m.sinks {
		bytes, err := s.Snapshot(st)
		if i == 0 {
			n = bytes
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return n, first
}

func (m *multiSink) AppendTreeDone(td TreeDone) (int, error) {
	var n int
	var first error
	for i, s := range m.sinks {
		bytes, err := s.AppendTreeDone(td)
		if i == 0 {
			n = bytes
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return n, first
}

func (m *multiSink) AppendMembership(mb Membership) (int, error) {
	var n int
	var first error
	for i, s := range m.sinks {
		bytes, err := s.AppendMembership(mb)
		if i == 0 {
			n = bytes
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return n, first
}

func (m *multiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Replica is the receiving end of a checkpoint stream: it folds Records
// into the same State a disk Load would return, with the same integrity
// checks (canon witnesses, bounds). It tolerates a lossy, duplicating,
// reordering stream: stale epochs are discarded, tree-done records only
// apply to the epoch they belong to, and duplicates are idempotent — a
// dropped tree-done merely means that tree is retrained after takeover,
// which is deterministic per (Params, Bag).
type Replica struct {
	mu      sync.Mutex
	seq     int // adopted snapshot epoch; 0 = none yet
	st      *State
	applied int64
	dropped int64
}

// NewReplica returns an empty replica.
func NewReplica() *Replica { return &Replica{} }

// Apply folds one streamed record into the replica. Records that cannot be
// used (stale epoch, no base snapshot) are counted as dropped, not errors;
// only payloads that fail decoding or integrity checks return an error.
func (r *Replica) Apply(rec Record) error {
	switch rec.Kind {
	case KindSnapshot:
		st := new(State)
		if err := decodeGob(rec.Payload, st); err != nil {
			return err
		}
		if err := st.verifyTrees(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if rec.Seq <= r.seq {
			r.dropped++
			return nil
		}
		r.seq = rec.Seq
		r.st = st
		r.applied++
		return nil
	case KindTreeDone:
		var td TreeDone
		if err := decodeGob(rec.Payload, &td); err != nil {
			return err
		}
		if err := verifyTreeDone(td); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.st == nil || rec.Seq != r.seq {
			r.dropped++
			return nil
		}
		if err := r.st.apply(td); err != nil {
			return err
		}
		r.applied++
		return nil
	case KindMembership:
		var mb Membership
		if err := decodeGob(rec.Payload, &mb); err != nil {
			return err
		}
		if err := verifyMembership(mb); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.st == nil || rec.Seq != r.seq {
			r.dropped++
			return nil
		}
		if err := r.st.applyMembership(mb); err != nil {
			return err
		}
		r.applied++
		return nil
	default:
		return fmt.Errorf("checkpoint: unknown streamed record kind %d", rec.Kind)
	}
}

// State returns the materialised state, or ErrNoCheckpoint if no snapshot
// has been adopted yet. The caller takes ownership — a promoting standby
// resumes from it exactly as a restarted master resumes from a disk Load.
func (r *Replica) State() (*State, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.st == nil {
		return nil, ErrNoCheckpoint
	}
	return r.st, nil
}

// Stats reports how many records were applied and how many discarded.
func (r *Replica) Stats() (applied, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.dropped
}
