// Package loadbal implements Section VI: the master's workload matrix
// M_work and the greedy plan-to-worker assignment rules built on it. Each
// worker row tracks three pending-workload estimates — Comp (instructions),
// Send and Recv (message units) — and every new plan is placed so that the
// dominant cost stays balanced. Charges are recorded so that the master can
// deduct them when the task's result arrives.
package loadbal

import (
	"math"
	"sync"
)

// Resource indexes a column of M_work.
type Resource uint8

const (
	// Comp is estimated computation workload.
	Comp Resource = iota
	// Send is estimated outbound communication.
	Send
	// Recv is estimated inbound communication.
	Recv
)

// Charge is one recorded M_work update, kept with the task so it can be
// reverted on completion (or on fault-recovery revocation).
type Charge struct {
	Worker   int
	Resource Resource
	Amount   float64
}

// Matrix is M_work. All methods are safe for concurrent use by the master's
// main and receiving threads (the paper protects it with a mutex; so do we).
type Matrix struct {
	mu   sync.Mutex
	work [3][]float64
}

// NewMatrix returns a matrix over n workers.
func NewMatrix(n int) *Matrix {
	m := &Matrix{}
	for r := range m.work {
		m.work[r] = make([]float64, n)
	}
	return m
}

// NumWorkers returns the number of worker rows.
func (m *Matrix) NumWorkers() int { return len(m.work[Comp]) }

// Grow extends the matrix to n workers, appending zero-load rows for the
// newcomers. Shrinking is not supported (worker ids are dense array
// indices everywhere); a smaller or equal n is a no-op.
func (m *Matrix) Grow(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for r := range m.work {
		for len(m.work[r]) < n {
			m.work[r] = append(m.work[r], 0)
		}
	}
}

// Apply adds the charges to the matrix.
func (m *Matrix) Apply(charges []Charge) {
	m.mu.Lock()
	for _, c := range charges {
		m.work[c.Resource][c.Worker] += c.Amount
	}
	m.mu.Unlock()
}

// Revert subtracts previously applied charges (task completed or revoked).
func (m *Matrix) Revert(charges []Charge) {
	m.mu.Lock()
	for _, c := range charges {
		m.work[c.Resource][c.Worker] -= c.Amount
	}
	m.mu.Unlock()
}

// Load returns the current value of one cell.
func (m *Matrix) Load(w int, r Resource) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.work[r][w]
}

// Snapshot copies the matrix as [worker][resource].
func (m *Matrix) Snapshot() [][3]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][3]float64, m.NumWorkers())
	for w := range out {
		out[w] = [3]float64{m.work[Comp][w], m.work[Send][w], m.work[Recv][w]}
	}
	return out
}

// Placement describes where column replicas live: Owners[col] lists the
// workers holding that column. Every worker holds the target column Y.
type Placement struct {
	Owners     map[int][]int
	NumWorkers int
}

// RoundRobin builds the default placement: each column in cols is loaded on
// k consecutive workers starting at a rotating offset, the paper's balanced
// column partitioning with k replicas (k = 2 by default).
func RoundRobin(cols []int, numWorkers, k int) Placement {
	if k < 1 {
		k = 1
	}
	if k > numWorkers {
		k = numWorkers
	}
	p := Placement{Owners: map[int][]int{}, NumWorkers: numWorkers}
	for i, col := range cols {
		owners := make([]int, 0, k)
		for r := 0; r < k; r++ {
			owners = append(owners, (i+r)%numWorkers)
		}
		p.Owners[col] = owners
	}
	return p
}

// Holds reports whether worker w holds the column.
func (p Placement) Holds(w, col int) bool {
	for _, o := range p.Owners[col] {
		if o == w {
			return true
		}
	}
	return false
}

// Assignment is the outcome of planning one task.
type Assignment struct {
	// KeyWorker is the subtree-task's collector (-1 for column tasks).
	KeyWorker int
	// ColumnServer maps each candidate column to the worker that serves or
	// evaluates it.
	ColumnServer map[int]int
	// Charges are the M_work updates applied; revert them on completion.
	Charges []Charge
}

// PerWorkerColumns groups the assignment's columns by worker, with each
// worker's columns in ascending order.
func (a Assignment) PerWorkerColumns() map[int][]int {
	out := map[int][]int{}
	for col, w := range a.ColumnServer {
		out[w] = append(out[w], col)
	}
	for _, cols := range out {
		insertionSortInts(cols)
	}
	return out
}

func insertionSortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Eligibility restricts which workers an assignment may use. Alive is the
// hard constraint: dead endpoints never receive work (nil means every worker
// is alive). Preferred, when non-nil, narrows the choice further — e.g.
// quarantined stragglers are skipped as long as some preferred candidate can
// fill the role; when none can (every replica holder of a column is
// quarantined), the preference is bypassed and any alive candidate is used,
// so replication reachability always beats quarantine.
type Eligibility struct {
	Alive     []bool
	Preferred []bool
}

func (e Eligibility) alive(w int) bool { return masked(e.Alive, w) }

func (e Eligibility) preferred(w int) bool { return e.alive(w) && masked(e.Preferred, w) }

func masked(mask []bool, w int) bool {
	return mask == nil || (w >= 0 && w < len(mask) && mask[w])
}

// AssignSubtree places a subtree-task: the key worker is the worker with
// minimum Comp (the task is CPU-bound), charged |I_x|·|C|·log|I_x|; each
// candidate column is then assigned to a replica holder minimising the
// maximum of the four Send/Recv updates of Section VI, with transfers
// skipped when the data is already local.
func AssignSubtree(m *Matrix, p Placement, cols []int, size, parentWorker int, elig Eligibility) Assignment {
	a := Assignment{KeyWorker: -1, ColumnServer: map[int]int{}}
	m.mu.Lock()
	defer m.mu.Unlock()

	// Key worker: argmin of Comp among preferred workers, falling back to
	// any alive worker when quarantine empties the preferred set.
	best := m.argminComp(p.NumWorkers, elig.preferred)
	if best < 0 {
		best = m.argminComp(p.NumWorkers, elig.alive)
	}
	if best < 0 {
		return a
	}
	a.KeyWorker = best
	compCost := float64(size) * float64(len(cols)) * math.Log2(float64(size)+2)
	a.Charges = append(a.Charges, Charge{best, Comp, compCost})
	m.work[Comp][best] += compCost

	requested := map[int]bool{} // workers already fetching I_x from the parent
	for _, col := range cols {
		w := m.pickServer(p, col, size, parentWorker, a.KeyWorker, requested, elig)
		a.ColumnServer[col] = w
		m.chargeTransfer(&a, col, w, size, parentWorker, a.KeyWorker, requested)
	}
	return a
}

func (m *Matrix) argminComp(n int, ok func(int) bool) int {
	best := -1
	for w := 0; w < n; w++ {
		if !ok(w) {
			continue
		}
		if best < 0 || m.work[Comp][w] < m.work[Comp][best] {
			best = w
		}
	}
	return best
}

// AssignColumns places a column-task: every candidate column goes to a
// replica holder; the worker additionally receives I_x from the parent once
// and pays |I_x| Comp per column examined. The server is chosen to minimise
// max(Recv[j], Send[parent]) after the update, balancing communication.
func AssignColumns(m *Matrix, p Placement, cols []int, size, parentWorker int, elig Eligibility) Assignment {
	a := Assignment{KeyWorker: -1, ColumnServer: map[int]int{}}
	m.mu.Lock()
	defer m.mu.Unlock()
	requested := map[int]bool{}
	for _, col := range cols {
		w := m.pickServer(p, col, size, parentWorker, -1, requested, elig)
		a.ColumnServer[col] = w
		comp := float64(size)
		a.Charges = append(a.Charges, Charge{w, Comp, comp})
		m.work[Comp][w] += comp
		m.chargeTransfer(&a, col, w, size, parentWorker, -1, requested)
	}
	return a
}

// pickServer chooses, among the column's replica holders, the worker whose
// post-update bottleneck metric is smallest. Preferred holders are tried
// first; when quarantine (or hedging exclusions) rules out every preferred
// holder, any alive holder serves — a column must never become unreachable
// because all its replicas scored badly. Holding the lock is required.
func (m *Matrix) pickServer(p Placement, col, size, parentWorker, keyWorker int, requested map[int]bool, elig Eligibility) int {
	owners := p.Owners[col]
	if len(owners) == 0 {
		// Y or an unplaced column: any worker; fall back to min Recv.
		if best := m.argminRecv(p.NumWorkers, elig.preferred); best >= 0 {
			return best
		}
		return m.argminRecv(p.NumWorkers, elig.alive)
	}
	if best := m.bestOwner(owners, size, parentWorker, keyWorker, requested, elig.preferred); best >= 0 {
		return best
	}
	if best := m.bestOwner(owners, size, parentWorker, keyWorker, requested, elig.alive); best >= 0 {
		return best
	}
	return owners[0]
}

func (m *Matrix) argminRecv(n int, ok func(int) bool) int {
	best := -1
	for w := 0; w < n; w++ {
		if !ok(w) {
			continue
		}
		if best < 0 || m.work[Recv][w] < m.work[Recv][best] {
			best = w
		}
	}
	return best
}

func (m *Matrix) bestOwner(owners []int, size, parentWorker, keyWorker int, requested map[int]bool, ok func(int) bool) int {
	bestW, bestScore := -1, math.Inf(1)
	for _, w := range owners {
		if !ok(w) {
			continue
		}
		score := m.transferScore(w, size, parentWorker, keyWorker, requested)
		if score < bestScore {
			bestW, bestScore = w, score
		}
	}
	return bestW
}

// transferScore evaluates the bottleneck the four Section-VI updates would
// create if column service went to worker w.
func (m *Matrix) transferScore(w, size, parentWorker, keyWorker int, requested map[int]bool) float64 {
	fsize := float64(size)
	recvW := m.work[Recv][w]
	sendPa := math.Inf(-1)
	if parentWorker >= 0 && parentWorker != w && !requested[w] {
		recvW += fsize // update (1): w receives I_x
		sendPa = m.work[Send][parentWorker] + fsize
	}
	sendW := m.work[Send][w]
	recvKey := math.Inf(-1)
	if keyWorker >= 0 && keyWorker != w {
		sendW += fsize // update (3): w sends column data to the key worker
		recvKey = m.work[Recv][keyWorker] + fsize
	}
	return math.Max(math.Max(recvW, sendPa), math.Max(sendW, recvKey))
}

// chargeTransfer applies the Section-VI updates for assigning column col to
// worker w, skipping local transfers, and records the charges.
func (m *Matrix) chargeTransfer(a *Assignment, col, w, size, parentWorker, keyWorker int, requested map[int]bool) {
	fsize := float64(size)
	if parentWorker >= 0 && parentWorker != w && !requested[w] {
		// Updates (1) and (2): one I_x fetch per worker, not per column.
		a.Charges = append(a.Charges,
			Charge{w, Recv, fsize},
			Charge{parentWorker, Send, fsize})
		m.work[Recv][w] += fsize
		m.work[Send][parentWorker] += fsize
	}
	requested[w] = true
	if keyWorker >= 0 && keyWorker != w {
		// Updates (3) and (4): column payload to the key worker.
		a.Charges = append(a.Charges,
			Charge{w, Send, fsize},
			Charge{keyWorker, Recv, fsize})
		m.work[Send][w] += fsize
		m.work[Recv][keyWorker] += fsize
	}
}

// AssignRoundRobin is the ablation baseline: columns dealt to replica
// holders cyclically with no cost model; the key worker cycles too.
func AssignRoundRobin(p Placement, cols []int, counter *int, subtree bool) Assignment {
	a := Assignment{KeyWorker: -1, ColumnServer: map[int]int{}}
	if subtree {
		a.KeyWorker = *counter % p.NumWorkers
		*counter++
	}
	for _, col := range cols {
		owners := p.Owners[col]
		if len(owners) == 0 {
			a.ColumnServer[col] = *counter % p.NumWorkers
		} else {
			a.ColumnServer[col] = owners[*counter%len(owners)]
		}
		*counter++
	}
	return a
}
