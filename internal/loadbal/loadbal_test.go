package loadbal

import (
	"math"
	"testing"
)

func TestRoundRobinPlacement(t *testing.T) {
	p := RoundRobin([]int{10, 11, 12, 13}, 3, 2)
	if p.NumWorkers != 3 {
		t.Fatalf("workers = %d", p.NumWorkers)
	}
	for _, col := range []int{10, 11, 12, 13} {
		owners := p.Owners[col]
		if len(owners) != 2 {
			t.Fatalf("col %d has %d replicas, want 2", col, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("col %d replicas on the same worker", col)
		}
	}
	// Balance: with 4 columns × 2 replicas over 3 workers, max load <= 3.
	load := map[int]int{}
	for _, owners := range p.Owners {
		for _, o := range owners {
			load[o]++
		}
	}
	for w, n := range load {
		if n > 3 {
			t.Fatalf("worker %d holds %d replicas", w, n)
		}
	}
}

func TestRoundRobinClampsReplicas(t *testing.T) {
	p := RoundRobin([]int{0}, 2, 5)
	if len(p.Owners[0]) != 2 {
		t.Fatalf("replicas = %d, want clamped to 2", len(p.Owners[0]))
	}
	p = RoundRobin([]int{0}, 4, 0)
	if len(p.Owners[0]) != 1 {
		t.Fatalf("replicas = %d, want min 1", len(p.Owners[0]))
	}
}

func TestMatrixApplyRevert(t *testing.T) {
	m := NewMatrix(3)
	charges := []Charge{{0, Comp, 100}, {1, Send, 50}, {2, Recv, 25}}
	m.Apply(charges)
	if m.Load(0, Comp) != 100 || m.Load(1, Send) != 50 || m.Load(2, Recv) != 25 {
		t.Fatalf("apply wrong: %v", m.Snapshot())
	}
	m.Revert(charges)
	for w := 0; w < 3; w++ {
		for r := Comp; r <= Recv; r++ {
			if m.Load(w, r) != 0 {
				t.Fatalf("revert left residue at [%d][%d]", w, r)
			}
		}
	}
}

func TestMatrixGrow(t *testing.T) {
	m := NewMatrix(2)
	m.Apply([]Charge{{0, Comp, 100}, {1, Send, 50}})
	m.Grow(4)
	if m.NumWorkers() != 4 {
		t.Fatalf("grew to %d workers, want 4", m.NumWorkers())
	}
	// Existing load survives; newcomers start idle.
	if m.Load(0, Comp) != 100 || m.Load(1, Send) != 50 {
		t.Fatalf("grow disturbed existing load: %v", m.Snapshot())
	}
	for w := 2; w < 4; w++ {
		for r := Comp; r <= Recv; r++ {
			if m.Load(w, r) != 0 {
				t.Fatalf("new worker %d has load at resource %d", w, r)
			}
		}
	}
	// Shrinking is a no-op: worker ids are dense indices everywhere.
	m.Grow(1)
	if m.NumWorkers() != 4 {
		t.Fatalf("Grow(1) shrank the matrix to %d workers", m.NumWorkers())
	}
}

func TestAssignSubtreePicksIdleKeyWorker(t *testing.T) {
	m := NewMatrix(3)
	m.Apply([]Charge{{0, Comp, 1000}, {1, Comp, 10}, {2, Comp, 500}})
	p := RoundRobin([]int{0, 1}, 3, 2)
	a := AssignSubtree(m, p, []int{0, 1}, 100, -1, Eligibility{})
	if a.KeyWorker != 1 {
		t.Fatalf("key worker = %d, want idle worker 1", a.KeyWorker)
	}
	// Comp charge |I_x|·|C|·log|I_x|.
	wantComp := 10 + 100.0*2*math.Log2(102)
	if got := m.Load(1, Comp); math.Abs(got-wantComp) > 1e-9 {
		t.Fatalf("key comp = %g, want %g", got, wantComp)
	}
	// Every column must be assigned to one of its replica holders.
	for col, w := range a.ColumnServer {
		if !p.Holds(w, col) {
			t.Fatalf("col %d assigned to non-holder %d", col, w)
		}
	}
	// Reverting the recorded charges restores the pre-assignment state.
	m.Revert(a.Charges)
	if got := m.Load(1, Comp); got != 10 {
		t.Fatalf("after revert comp = %g, want 10", got)
	}
}

func TestAssignColumnsBalancesAcrossReplicas(t *testing.T) {
	m := NewMatrix(2)
	// Both workers hold both columns; worker 0 already busy receiving.
	p := Placement{Owners: map[int][]int{5: {0, 1}, 6: {0, 1}}, NumWorkers: 2}
	m.Apply([]Charge{{0, Recv, 10000}})
	a := AssignColumns(m, p, []int{5, 6}, 100, -1, Eligibility{})
	for col, w := range a.ColumnServer {
		if w != 1 {
			t.Fatalf("col %d went to busy worker %d", col, w)
		}
	}
	// Comp charged per column examined.
	if got := m.Load(1, Comp); got != 200 {
		t.Fatalf("comp = %g, want 200", got)
	}
}

func TestAssignColumnsChargesParentSendOnce(t *testing.T) {
	// Updates (1) and (2) apply once per worker, not once per column.
	m := NewMatrix(3)
	p := Placement{Owners: map[int][]int{1: {2}, 2: {2}, 3: {2}}, NumWorkers: 3}
	a := AssignColumns(m, p, []int{1, 2, 3}, 50, 0, Eligibility{})
	if got := m.Load(0, Send); got != 50 {
		t.Fatalf("parent send charged %g, want 50 (once)", got)
	}
	if got := m.Load(2, Recv); got != 50 {
		t.Fatalf("server recv charged %g, want 50 (once)", got)
	}
	m.Revert(a.Charges)
	if m.Load(0, Send) != 0 || m.Load(2, Recv) != 0 {
		t.Fatal("revert incomplete")
	}
}

func TestAssignSubtreeSkipsLocalTransfers(t *testing.T) {
	// A single-worker cluster must incur no Send/Recv charges at all.
	m := NewMatrix(1)
	p := RoundRobin([]int{0, 1, 2}, 1, 1)
	a := AssignSubtree(m, p, []int{0, 1, 2}, 100, 0, Eligibility{})
	if a.KeyWorker != 0 {
		t.Fatalf("key = %d", a.KeyWorker)
	}
	if m.Load(0, Send) != 0 || m.Load(0, Recv) != 0 {
		t.Fatalf("local transfers charged: %v", m.Snapshot())
	}
}

func TestAssignRespectsAliveMask(t *testing.T) {
	m := NewMatrix(3)
	p := Placement{Owners: map[int][]int{7: {0, 1}}, NumWorkers: 3}
	alive := []bool{false, true, true}
	a := AssignSubtree(m, p, []int{7}, 10, -1, Eligibility{Alive: alive})
	if a.KeyWorker == 0 {
		t.Fatal("dead worker chosen as key")
	}
	if a.ColumnServer[7] != 1 {
		t.Fatalf("col served by %d, want surviving replica 1", a.ColumnServer[7])
	}
	ac := AssignColumns(m, p, []int{7}, 10, -1, Eligibility{Alive: alive})
	if ac.ColumnServer[7] != 1 {
		t.Fatalf("column task served by %d, want 1", ac.ColumnServer[7])
	}
}

func TestAssignAvoidsQuarantinedWorkers(t *testing.T) {
	// A quarantined worker must lose key-worker and column-server roles to a
	// preferred peer even when the cost model favours it.
	m := NewMatrix(3)
	m.Apply([]Charge{{1, Comp, 1000}, {2, Comp, 2000}})
	p := Placement{Owners: map[int][]int{4: {0, 1}}, NumWorkers: 3}
	elig := Eligibility{Preferred: []bool{false, true, true}} // 0 quarantined
	a := AssignSubtree(m, p, []int{4}, 10, -1, elig)
	if a.KeyWorker != 1 {
		t.Fatalf("key worker = %d, want 1 (0 is quarantined, 2 busier)", a.KeyWorker)
	}
	if a.ColumnServer[4] != 1 {
		t.Fatalf("col served by %d, want non-quarantined holder 1", a.ColumnServer[4])
	}
}

func TestAssignBypassesQuarantineWhenAllHoldersQuarantined(t *testing.T) {
	// Replication reachability beats quarantine: when every replica holder
	// of a column is quarantined, placement must fall back to an alive
	// holder rather than leave the column unservable.
	m := NewMatrix(4)
	p := Placement{Owners: map[int][]int{9: {0, 1}}, NumWorkers: 4}
	elig := Eligibility{
		Alive:     []bool{true, true, true, true},
		Preferred: []bool{false, false, true, true}, // both holders quarantined
	}
	for _, a := range []Assignment{
		AssignColumns(m, p, []int{9}, 10, -1, elig),
		AssignSubtree(m, p, []int{9}, 10, -1, elig),
	} {
		w := a.ColumnServer[9]
		if w != 0 && w != 1 {
			t.Fatalf("col served by %d, want a quarantined-but-alive holder (0 or 1)", w)
		}
	}
	// The subtree key worker, by contrast, has preferred alternatives and
	// must use one.
	a := AssignSubtree(m, p, []int{9}, 10, -1, elig)
	if a.KeyWorker != 2 && a.KeyWorker != 3 {
		t.Fatalf("key worker = %d, want a preferred worker (2 or 3)", a.KeyWorker)
	}
	// With every worker quarantined the preference dissolves entirely.
	all := Eligibility{Preferred: []bool{false, false, false, false}}
	if a := AssignSubtree(m, p, []int{9}, 10, -1, all); a.KeyWorker < 0 {
		t.Fatal("fully-quarantined fleet must still get a key worker")
	}
	// A dead holder stays dead even when quarantine empties the preferred
	// set: the alive mask is the hard constraint.
	dead := Eligibility{
		Alive:     []bool{false, true, true, true},
		Preferred: []bool{false, false, true, true},
	}
	if a := AssignColumns(m, p, []int{9}, 10, -1, dead); a.ColumnServer[9] != 1 {
		t.Fatalf("col served by %d, want 1 (0 is dead, not merely quarantined)", a.ColumnServer[9])
	}
}

func TestPerWorkerColumnsSorted(t *testing.T) {
	a := Assignment{ColumnServer: map[int]int{9: 1, 3: 1, 6: 0}}
	per := a.PerWorkerColumns()
	if got := per[1]; len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("worker 1 cols = %v", got)
	}
	if got := per[0]; len(got) != 1 || got[0] != 6 {
		t.Fatalf("worker 0 cols = %v", got)
	}
}

func TestAssignRoundRobinCycles(t *testing.T) {
	p := RoundRobin([]int{0, 1, 2, 3}, 4, 2)
	counter := 0
	seenKeys := map[int]bool{}
	for i := 0; i < 8; i++ {
		a := AssignRoundRobin(p, []int{0, 1}, &counter, true)
		seenKeys[a.KeyWorker] = true
		for col, w := range a.ColumnServer {
			if !p.Holds(w, col) {
				t.Fatalf("rr assigned col %d to non-holder %d", col, w)
			}
		}
	}
	if len(seenKeys) < 2 {
		t.Fatalf("round robin stuck on %v", seenKeys)
	}
}
