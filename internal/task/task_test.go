package task

import (
	"sync"
	"testing"
)

func TestPolicyKinds(t *testing.T) {
	p := DefaultPolicy()
	if p.TauD != 10000 || p.TauDFS != 80000 || p.NPool != 200 {
		t.Fatalf("defaults = %+v, want the paper's tuned values", p)
	}
	if p.KindFor(10000) != SubtreeTask || p.KindFor(10001) != ColumnTask {
		t.Fatal("τ_D boundary wrong")
	}
	if !p.DepthFirst(80000) || p.DepthFirst(80001) {
		t.Fatal("τ_dfs boundary wrong")
	}
	if ColumnTask.String() != "column-task" || SubtreeTask.String() != "subtree-task" {
		t.Fatal("kind strings wrong")
	}
}

func TestDequeFIFOAndLIFO(t *testing.T) {
	var d Deque[int]
	d.PushTail(1)
	d.PushTail(2)
	d.PushHead(0)
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	for want := 0; want <= 2; want++ {
		v, ok := d.PopHead()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := d.PopHead(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestDequeHybridPolicy(t *testing.T) {
	// Fig. 5's example: node 4 (|Dx| <= τ_dfs) goes to the head, node 5
	// (|Dx| > τ_dfs) to the tail.
	p := Policy{TauD: 10000, TauDFS: 80000, NPool: 200}
	var d Deque[string]
	d.PushTail("pending")
	d.Push("node5", 240000, p) // BFS: tail
	d.Push("node4", 60000, p)  // DFS: head
	want := []string{"node4", "pending", "node5"}
	got := d.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestDequeFilter(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushTail(i)
	}
	removed := d.Filter(func(v int) bool { return v%2 == 0 })
	if len(removed) != 5 {
		t.Fatalf("removed %d, want 5", len(removed))
	}
	got := d.Snapshot()
	if len(got) != 5 {
		t.Fatalf("kept %d, want 5", len(got))
	}
	for i, v := range got {
		if v != 2*i+1 {
			t.Fatalf("kept order wrong: %v", got)
		}
	}
}

func TestDequeConcurrent(t *testing.T) {
	var d Deque[int]
	var wg sync.WaitGroup
	const n = 1000
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.PushTail(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.PushHead(i)
		}
	}()
	wg.Wait()
	if d.Len() != 2*n {
		t.Fatalf("len = %d, want %d", d.Len(), 2*n)
	}
	popped := 0
	for {
		if _, ok := d.PopHead(); !ok {
			break
		}
		popped++
	}
	if popped != 2*n {
		t.Fatalf("popped %d", popped)
	}
}

func TestProgressCompletion(t *testing.T) {
	p := NewProgress()
	p.Add(1, 1) // root task
	// Root splits: add children before done (the ordering rule).
	p.Add(1, 2)
	if p.Done(1) {
		t.Fatal("tree complete with pending children")
	}
	if p.Done(1) {
		t.Fatal("tree complete with one pending child")
	}
	if !p.Done(1) {
		t.Fatal("tree not complete after last task")
	}
	if p.Pending(1) != 0 {
		t.Fatalf("pending = %d after completion", p.Pending(1))
	}
}

func TestProgressIndependentTrees(t *testing.T) {
	p := NewProgress()
	p.Add(1, 1)
	p.Add(2, 1)
	if p.Done(1) != true {
		t.Fatal("tree 1 should complete")
	}
	if p.Pending(2) != 1 {
		t.Fatal("tree 2 affected by tree 1")
	}
	p.Clear(2)
	if p.Pending(2) != 0 {
		t.Fatal("clear failed")
	}
}
