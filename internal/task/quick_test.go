package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDequeMultisetProperty: any interleaving of head/tail pushes and pops
// conserves elements — nothing is lost or duplicated.
func TestDequeMultisetProperty(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Deque[int16]
		pushed := map[int16]int{}
		popped := map[int16]int{}
		for _, v := range ops {
			switch rng.Intn(3) {
			case 0:
				d.PushHead(v)
				pushed[v]++
			case 1:
				d.PushTail(v)
				pushed[v]++
			case 2:
				if got, ok := d.PopHead(); ok {
					popped[got]++
				}
			}
		}
		for {
			got, ok := d.PopHead()
			if !ok {
				break
			}
			popped[got]++
		}
		if len(pushed) != len(popped) {
			return false
		}
		for v, n := range pushed {
			if popped[v] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDequeDFSRegionProperty: under the hybrid policy, after any sequence of
// policy pushes, every DFS-inserted element that has not been displaced by a
// later DFS push appears before every BFS-inserted element.
func TestDequeDFSRegionProperty(t *testing.T) {
	p := Policy{TauD: 10, TauDFS: 100, NPool: 1}
	f := func(sizes []uint16) bool {
		var d Deque[int]
		for i, su := range sizes {
			d.Push(i, int(su), p)
		}
		// Scan the deque: once a BFS element (size > TauDFS) appears, no DFS
		// element may follow... that is NOT the invariant (later DFS pushes
		// go to the head). The true invariant: BFS elements appear in FIFO
		// order relative to each other, DFS elements in LIFO order.
		snapshot := d.Snapshot()
		var bfsSeen []int
		var dfsSeen []int
		for _, idx := range snapshot {
			if int(sizes[idx]) > p.TauDFS {
				bfsSeen = append(bfsSeen, idx)
			} else {
				dfsSeen = append(dfsSeen, idx)
			}
		}
		for i := 1; i < len(bfsSeen); i++ {
			if bfsSeen[i] < bfsSeen[i-1] { // FIFO: ascending insert order
				return false
			}
		}
		for i := 1; i < len(dfsSeen); i++ {
			if dfsSeen[i] > dfsSeen[i-1] { // LIFO: descending insert order
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProgressNeverNegativeUntilDone: a tree completes exactly when done
// calls match adds.
func TestProgressProperty(t *testing.T) {
	f := func(childCounts []uint8) bool {
		p := NewProgress()
		const tree = int32(7)
		p.Add(tree, 1) // root
		pending := 1
		completed := false
		for _, c := range childCounts {
			children := int(c % 3) // 0, 1 or 2 children
			if pending == 0 {
				break
			}
			p.Add(tree, children)
			pending += children
			if p.Done(tree) {
				completed = true
			}
			pending--
			if completed != (pending == 0) {
				return false
			}
			if completed {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
