// Package task provides the scheduling containers of the T-thinker engine:
// the plan deque B_plan with the paper's hybrid BFS/DFS insertion policy,
// the progress table T_prog that detects tree completion, and the task-ID
// space shared by master and workers.
package task

import (
	"sync"
)

// ID identifies one node-centric task within a job. IDs are issued by the
// master and never reused.
type ID int64

// Kind distinguishes the two task types of Section III.
type Kind uint8

const (
	// ColumnTask finds per-column best split conditions for a large node.
	ColumnTask Kind = iota
	// SubtreeTask pulls D_x to one worker and builds the whole subtree.
	SubtreeTask
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == ColumnTask {
		return "column-task"
	}
	return "subtree-task"
}

// Policy carries the scheduling thresholds of Section III.
type Policy struct {
	// TauD is τ_D: nodes with |D_x| <= τ_D become subtree-tasks.
	TauD int
	// TauDFS is τ_dfs: nodes with |D_x| <= τ_dfs are traversed depth-first
	// (pushed at the deque head); larger nodes breadth-first (appended).
	TauDFS int
	// NPool is n_pool: the maximum number of trees under construction.
	NPool int
}

// DefaultPolicy returns the paper's tuned defaults:
// τ_D = 10,000, τ_dfs = 80,000, n_pool = 200.
func DefaultPolicy() Policy {
	return Policy{TauD: 10000, TauDFS: 80000, NPool: 200}
}

// KindFor classifies a node of the given |D_x| into its task kind.
func (p Policy) KindFor(size int) Kind {
	if size <= p.TauD {
		return SubtreeTask
	}
	return ColumnTask
}

// DepthFirst reports whether a node of the given size enters the deque at
// the head (depth-first region).
func (p Policy) DepthFirst(size int) bool { return size <= p.TauDFS }

// Deque is the plan buffer B_plan: a mutex-protected double-ended queue.
// The main thread pops from the head; the receiving thread pushes new plans
// at head or tail according to the hybrid policy. It is a ring buffer, so
// both PushHead (the depth-first region's common case) and PushTail are
// amortised O(1) — the former used to shift the whole queue on every
// depth-first insertion.
type Deque[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int // index of the front element within buf
	n    int
}

// growLocked doubles the ring capacity and re-linearises it. Caller holds mu.
func (d *Deque[T]) growLocked() {
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushHead inserts at the front (depth-first insertion / requeue of revoked
// tasks during fault recovery).
func (d *Deque[T]) PushHead(v T) {
	d.mu.Lock()
	if d.n == len(d.buf) {
		d.growLocked()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
	d.mu.Unlock()
}

// PushTail appends at the back (breadth-first insertion).
func (d *Deque[T]) PushTail(v T) {
	d.mu.Lock()
	if d.n == len(d.buf) {
		d.growLocked()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
	d.mu.Unlock()
}

// Push inserts according to the policy for a node of the given size.
func (d *Deque[T]) Push(v T, size int, p Policy) {
	if p.DepthFirst(size) {
		d.PushHead(v)
	} else {
		d.PushTail(v)
	}
}

// PopHead removes and returns the front element.
func (d *Deque[T]) PopHead() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return v, false
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release the reference for GC
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v, true
}

// Len returns the number of queued plans.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Snapshot copies the current contents front-to-back, for tests and the
// master's fault-recovery scan.
func (d *Deque[T]) Snapshot() []T {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]T, d.n)
	for i := 0; i < d.n; i++ {
		out[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	return out
}

// Filter removes every element for which drop returns true, preserving
// order, and returns the removed elements. Used to revoke queued plans of a
// broken tree during fault recovery.
func (d *Deque[T]) Filter(drop func(T) bool) []T {
	d.mu.Lock()
	defer d.mu.Unlock()
	var removed []T
	kept := 0
	for i := 0; i < d.n; i++ {
		v := d.buf[(d.head+i)%len(d.buf)]
		if drop(v) {
			removed = append(removed, v)
		} else {
			d.buf[(d.head+kept)%len(d.buf)] = v
			kept++
		}
	}
	// Zero the vacated trailing slots so dropped plans do not linger.
	var zero T
	for i := kept; i < d.n; i++ {
		d.buf[(d.head+i)%len(d.buf)] = zero
	}
	d.n = kept
	return removed
}

// Progress is T_prog: per-tree pending-task counters. A tree is complete
// when its counter returns to zero after having been positive. The master's
// receiving thread must add child plans before decrementing the parent (the
// paper's ordering rule), which Progress enforces by construction: Add is
// called for children before Done for the parent.
type Progress struct {
	mu     sync.Mutex
	counts map[int32]int
}

// NewProgress returns an empty progress table.
func NewProgress() *Progress {
	return &Progress{counts: map[int32]int{}}
}

// Add records delta new pending tasks for the tree and returns the count.
func (p *Progress) Add(tree int32, delta int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[tree] += delta
	return p.counts[tree]
}

// Done records a completed task; it returns true when the tree has no
// pending tasks left (the tree is fully constructed).
func (p *Progress) Done(tree int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[tree]--
	if p.counts[tree] == 0 {
		delete(p.counts, tree)
		return true
	}
	return false
}

// Pending returns the tree's pending count.
func (p *Progress) Pending(tree int32) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[tree]
}

// Clear drops the tree's counter entirely (fault recovery restart).
func (p *Progress) Clear(tree int32) {
	p.mu.Lock()
	delete(p.counts, tree)
	p.mu.Unlock()
}
