package registry

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/forest"
	"treeserver/internal/infer"
	"treeserver/internal/model"
	"treeserver/internal/synth"
)

// trainFile trains a small forest with the given seed; different seeds pick
// different bootstraps (and tree counts), giving observably different
// predictions on the same rows.
func trainFile(t testing.TB, seed int64) (*model.File, []map[string]string) {
	t.Helper()
	spec := synth.Spec{Name: "reg", Rows: 900, NumNumeric: 3, NumCategorical: 1,
		CatLevels: 4, NumClasses: 2, ConceptDepth: 4, Seed: 5}
	train, test := synth.Generate(spec, 0.2)
	trees := 3
	if seed%2 == 0 {
		trees = 2 // even seeds train a structurally different ensemble
	}
	f, err := forest.Train(&forest.Local{Table: train}, cluster.SchemaOf(train),
		forest.Config{Trees: trees, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "reg", f, model.SchemaOf(train)); err != nil {
		t.Fatal(err)
	}
	mf, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]map[string]string, 32)
	for r := range rows {
		row := map[string]string{}
		for ci, col := range test.Cols {
			if ci == test.Target || col.IsMissing(r) {
				continue
			}
			if col.Levels == nil {
				row[col.Name] = strconv.FormatFloat(col.Floats[r], 'g', -1, 64)
			} else {
				row[col.Name] = col.Levels[col.Cats[r]]
			}
		}
		rows[r] = row
	}
	return mf, rows
}

// pmfFingerprint scores rows with a compiled model and returns the
// concatenated PMFs — bit-identical across calls on the same version.
func pmfFingerprint(t testing.TB, m *infer.Model, rows []map[string]string) []float64 {
	t.Helper()
	b := m.GetBlock()
	defer m.PutBlock(b)
	for _, row := range rows {
		if err := m.AppendRow(b, row); err != nil {
			t.Fatal(err)
		}
	}
	res := m.GetResult()
	defer m.PutResult(res)
	m.Predict(b, res, 0)
	out := make([]float64, 0, len(rows)*m.NumClasses())
	for r := 0; r < len(rows); r++ {
		out = append(out, res.PMF(r)...)
	}
	return out
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLoadActivateRollback(t *testing.T) {
	r := New()
	mf1, _ := trainFile(t, 1)
	mf2, _ := trainFile(t, 2)

	if _, ok := r.Active("m"); ok {
		t.Fatal("empty registry has an active model")
	}
	v1, err := r.Load("m", mf1, "test-v1")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Seq != 1 {
		t.Fatalf("first version seq = %d", v1.Seq)
	}
	if _, ok := r.Active("m"); ok {
		t.Fatal("staged version became active without Activate")
	}
	if _, err := r.Activate("m", 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Active("m"); !ok || v.Seq != 1 {
		t.Fatalf("active = %+v, %v", v, ok)
	}

	v2, err := r.Load("m", mf2, "test-v2")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Seq != 2 {
		t.Fatalf("second version seq = %d", v2.Seq)
	}
	if _, err := r.Activate("m", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Active("m"); v.Seq != 2 {
		t.Fatalf("active seq = %d, want 2", v.Seq)
	}

	back, err := r.Rollback("m")
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 1 {
		t.Fatalf("rollback landed on seq %d, want 1", back.Seq)
	}
	if v, _ := r.Active("m"); v.Seq != 1 {
		t.Fatalf("active after rollback = %d", v.Seq)
	}
	if _, err := r.Rollback("m"); err == nil {
		t.Fatal("second rollback with empty history succeeded")
	}

	if _, err := r.Activate("m", 99); err == nil {
		t.Fatal("activating a nonexistent seq succeeded")
	}
	if _, err := r.Activate("ghost", 0); err == nil {
		t.Fatal("activating an unknown model succeeded")
	}

	infos := r.List()
	if len(infos) != 1 || infos[0].Name != "m" || infos[0].ActiveSeq != 1 {
		t.Fatalf("list = %+v", infos[0])
	}
	if len(infos[0].Versions) != 2 {
		t.Fatalf("versions = %+v", infos[0].Versions)
	}
	if infos[0].Task != "classification" || infos[0].Kind != "forest" {
		t.Fatalf("info = %+v", infos[0])
	}
}

// TestHotSwapStorm activates back and forth between two versions while
// predictor goroutines hammer the active model. Every request must produce
// a result bit-identical to one version or the other — a mixture would mean
// a torn read. Run under -race.
func TestHotSwapStorm(t *testing.T) {
	r := New()
	mf1, rows := trainFile(t, 1)
	mf2, _ := trainFile(t, 2)
	if _, err := r.Load("m", mf1, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("m", mf2, "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Activate("m", 1); err != nil {
		t.Fatal(err)
	}
	v1, _ := r.Active("m")
	want1 := pmfFingerprint(t, v1.Compiled, rows)
	if _, err := r.Activate("m", 2); err != nil {
		t.Fatal(err)
	}
	v2, _ := r.Active("m")
	want2 := pmfFingerprint(t, v2.Compiled, rows)
	if sameFloats(want1, want2) {
		t.Fatal("test needs distinguishable versions")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, ok := r.Active("m")
				if !ok {
					errCh <- "active model vanished"
					return
				}
				got := pmfFingerprint(t, v.Compiled, rows)
				if !sameFloats(got, want1) && !sameFloats(got, want2) {
					errCh <- "request produced a result matching neither version"
					return
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			if _, err := r.Activate("m", 1); err != nil {
				t.Fatal(err)
			}
		} else if _, err := r.Rollback("m"); err != nil {
			// History can drain when consecutive activations repeat a
			// version; re-activate instead.
			if _, err := r.Activate("m", 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
}

// TestCorruptFileRejected proves a bad file on disk cannot disturb the
// active version.
func TestCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()
	r := New()
	mf1, rows := trainFile(t, 1)
	if _, err := r.Load("m", mf1, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Activate("m", 0); err != nil {
		t.Fatal(err)
	}
	before, _ := r.Active("m")
	want := pmfFingerprint(t, before.Compiled, rows)

	bad := filepath.Join(dir, "m"+Ext)
	if err := os.WriteFile(bad, []byte("certainly not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadFile("m", bad); err == nil {
		t.Fatal("corrupt file loaded")
	}
	// Truncated real model: valid prefix, torn tail.
	var buf bytes.Buffer
	if err := model.SaveForest(&buf, "m", mf1.Forest, mf1.Schema); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadFile("m", bad); err == nil {
		t.Fatal("truncated file loaded")
	}

	after, ok := r.Active("m")
	if !ok || after != before {
		t.Fatal("active version disturbed by rejected loads")
	}
	if got := pmfFingerprint(t, after.Compiled, rows); !sameFloats(got, want) {
		t.Fatal("active version predictions changed")
	}
	if info, _ := r.Get("m"); len(info.Versions) != 1 {
		t.Fatalf("rejected loads staged versions: %+v", info.Versions)
	}
}

func TestLoadDirSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	mf1, _ := trainFile(t, 1)
	if err := model.SaveForestFile(filepath.Join(dir, "good"+Ext), "good", mf1.Forest, mf1.Schema); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad"+Ext), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New()
	loaded, err := r.LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "model") {
		t.Fatalf("corrupt file not reported: %v", err)
	}
	if len(loaded) != 1 || loaded[0] != "good" {
		t.Fatalf("loaded = %v", loaded)
	}
	if v, ok := r.Active("good"); !ok || v.Seq != 1 {
		t.Fatalf("good model not active: %+v %v", v, ok)
	}
	if _, ok := r.Active("bad"); ok {
		t.Fatal("corrupt model active")
	}
}

func TestWatchReloads(t *testing.T) {
	dir := t.TempDir()
	mf1, rows := trainFile(t, 1)
	mf2, _ := trainFile(t, 2)
	path := filepath.Join(dir, "m"+Ext)
	if err := model.SaveForestFile(path, "m", mf1.Forest, mf1.Schema); err != nil {
		t.Fatal(err)
	}
	r := New()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	v1, _ := r.Active("m")
	want1 := pmfFingerprint(t, v1.Compiled, rows)

	stop := make(chan struct{})
	defer close(stop)
	go r.Watch(dir, 5*time.Millisecond, stop, nil)

	// Same-size rewrite could share an mtime stamp on coarse filesystems;
	// wait a beat so ModTime moves.
	time.Sleep(20 * time.Millisecond)
	if err := model.SaveForestFile(path, "m", mf2.Forest, mf2.Schema); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _ := r.Active("m")
		if v != nil && v.Seq == 2 {
			if got := pmfFingerprint(t, v.Compiled, rows); sameFloats(got, want1) {
				t.Fatal("reloaded version predicts like the old one")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("watch never activated the rewritten model")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestVersionPruning(t *testing.T) {
	r := New()
	mf1, _ := trainFile(t, 1)
	for i := 0; i < keepVersions+3; i++ {
		if _, err := r.Load("m", mf1, "v"); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := r.Get("m")
	if len(info.Versions) != keepVersions {
		t.Fatalf("kept %d versions, want %d", len(info.Versions), keepVersions)
	}
	if info.Versions[len(info.Versions)-1].Seq != keepVersions+3 {
		t.Fatalf("newest kept seq = %d", info.Versions[len(info.Versions)-1].Seq)
	}
}
