package registry

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Typed sentinels for the canary control surface, so HTTP handlers can map
// failures to envelope codes with errors.Is instead of string matching.
var (
	ErrUnknownModel    = errors.New("unknown model")
	ErrUnknownVersion  = errors.New("unknown version")
	ErrNoActiveVersion = errors.New("no active version")
)

// CanaryPolicy is the auto-promotion contract a staged canary is judged
// against once its request window fills.
type CanaryPolicy struct {
	// Window is how many canary-routed requests are observed before a
	// promote/rollback decision. The decision fires on exactly the Window-th
	// canary observation, so a fixed request sequence decides deterministically.
	Window int
	// ErrBudget is how far the canary's error rate may exceed the active
	// version's (absolute difference) and still promote.
	ErrBudget float64
	// LatencyFactor is how many times the active version's mean latency the
	// canary's mean may reach and still promote. Ignored until the active
	// version has traffic inside the same window.
	LatencyFactor float64
}

// Canary policy defaults.
const (
	DefaultCanaryWindow        = 200
	DefaultCanaryErrBudget     = 0.02
	DefaultCanaryLatencyFactor = 2.0
)

func (p CanaryPolicy) withDefaults() CanaryPolicy {
	if p.Window <= 0 {
		p.Window = DefaultCanaryWindow
	}
	if p.ErrBudget <= 0 {
		p.ErrBudget = DefaultCanaryErrBudget
	}
	if p.LatencyFactor <= 0 {
		p.LatencyFactor = DefaultCanaryLatencyFactor
	}
	return p
}

// CanaryDecision is what Observe reports after recording one outcome.
type CanaryDecision int

const (
	// CanaryNone: no canary live, or its window is still filling.
	CanaryNone CanaryDecision = iota
	// CanaryPromoted: the staged version met the policy and is now active.
	CanaryPromoted
	// CanaryRolledBack: the staged version breached the policy; the canary
	// was cancelled and the previously-active version keeps all traffic.
	CanaryRolledBack
)

func (d CanaryDecision) String() string {
	switch d {
	case CanaryPromoted:
		return "promoted"
	case CanaryRolledBack:
		return "rolled back"
	default:
		return "none"
	}
}

// canaryState is one live canary experiment. Counters are written lock-free
// on the request path; the promote/rollback decision serialises on the
// registry mutex.
type canaryState struct {
	v         *Version
	fraction  float64
	threshold uint64 // canary iff mix(key) < threshold
	policy    CanaryPolicy

	canReq, canErr, canNs    atomic.Int64
	baseReq, baseErr, baseNs atomic.Int64
	decided                  atomic.Bool
}

// CanaryInfo is a live canary in a model listing.
type CanaryInfo struct {
	Seq      int     `json:"seq"`
	Fraction float64 `json:"fraction"`
	Window   int     `json:"window"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
}

// SetCanaryPolicy sets the defaults Stage applies. Zero fields keep the
// package defaults. Live canaries keep the policy they were staged with.
func (r *Registry) SetCanaryPolicy(p CanaryPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.canaryPolicy = p
}

// Stage starts a canary rollout: the staged version seq (<=0 = newest
// staged) serves a deterministic hash-based fraction (0,1] of the model's
// traffic while the active version keeps the rest. Once the canary has
// served the policy window it auto-promotes (meeting the error/latency
// budget against the active version) or auto-rolls-back; either way the
// active version is never disturbed until promotion. Staging again replaces
// any live canary; Activate and Rollback cancel one.
func (r *Registry) Stage(name string, seq int, fraction float64) (*Version, error) {
	return r.StageWindow(name, seq, fraction, 0)
}

// StageWindow is Stage with a per-canary window override (0 = the registry
// policy's window).
func (r *Registry) StageWindow(name string, seq int, fraction float64, window int) (*Version, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("registry: canary fraction %g outside (0,1]", fraction)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, false)
	if e == nil {
		return nil, fmt.Errorf("registry: %w %q", ErrUnknownModel, name)
	}
	active := e.active.Load()
	if active == nil {
		return nil, fmt.Errorf("registry: model %q has %w to canary against", name, ErrNoActiveVersion)
	}
	v, err := e.findLocked(name, seq)
	if err != nil {
		return nil, err
	}
	if v == active {
		return nil, fmt.Errorf("registry: model %q version %d is already active", name, v.Seq)
	}
	policy := r.canaryPolicy.withDefaults()
	if window > 0 {
		policy.Window = window
	}
	st := &canaryState{v: v, fraction: fraction, policy: policy}
	if fraction >= 1 {
		st.threshold = math.MaxUint64
	} else {
		st.threshold = uint64(fraction * float64(1<<63) * 2)
	}
	e.canary.Store(st)
	return v, nil
}

// Unstage cancels a live canary without touching the active version. It
// reports whether one was live.
func (r *Registry) Unstage(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, false)
	if e == nil {
		return false
	}
	if e.canary.Load() == nil {
		return false
	}
	e.canary.Store(nil)
	return true
}

// Canary returns the live canary experiment for a model, if any.
func (r *Registry) Canary(name string) (*CanaryInfo, bool) {
	e, ok := (*r.models.Load())[name]
	if !ok {
		return nil, false
	}
	c := e.canary.Load()
	if c == nil {
		return nil, false
	}
	return &CanaryInfo{
		Seq: c.v.Seq, Fraction: c.fraction, Window: c.policy.Window,
		Requests: c.canReq.Load(), Errors: c.canErr.Load(),
	}, true
}

// HashKey folds a request identity (client address, explicit canary key)
// into the uint64 Route consumes. FNV-1a with a splitmix64 finalizer, so
// the low entropy of addresses still spreads across the full threshold
// range, and the same key always routes the same way.
func HashKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Route resolves the version a request with the given key should hit:
// the live canary for the staged fraction of the key space, the active
// version otherwise. Lock-free — three atomic loads on the canary path.
func (r *Registry) Route(name string, key uint64) (v *Version, canary bool, ok bool) {
	e, found := (*r.models.Load())[name]
	if !found {
		return nil, false, false
	}
	if c := e.canary.Load(); c != nil && (key < c.threshold || c.threshold == math.MaxUint64) {
		return c.v, true, true
	}
	a := e.active.Load()
	return a, false, a != nil
}

// Observe records one served request against the live canary window and
// returns the decision it triggered, if any. canary says which side of the
// Route split served it. The decision fires exactly once, on the canary
// observation that fills the window:
//
//   - promote: canary error rate within ErrBudget of the active version's
//     (absolute budget when the active side saw no traffic) and canary mean
//     latency within LatencyFactor of the active mean — the staged version
//     is activated (the previous active is pushed to Rollback history);
//   - rollback: any breach — the canary is cancelled and the active
//     version, untouched throughout, keeps serving everything.
//
// With no canary live this is two atomic loads; counter updates are
// allocation-free atomic adds.
func (r *Registry) Observe(name string, canary bool, ns int64, isErr bool) CanaryDecision {
	e, found := (*r.models.Load())[name]
	if !found {
		return CanaryNone
	}
	c := e.canary.Load()
	if c == nil {
		return CanaryNone
	}
	if !canary {
		c.baseReq.Add(1)
		c.baseNs.Add(ns)
		if isErr {
			c.baseErr.Add(1)
		}
		return CanaryNone
	}
	n := c.canReq.Add(1)
	c.canNs.Add(ns)
	if isErr {
		c.canErr.Add(1)
	}
	if n < int64(c.policy.Window) || !c.decided.CompareAndSwap(false, true) {
		return CanaryNone
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.canary.Load() != c { // replaced or cancelled while we raced here
		return CanaryNone
	}
	if c.healthy() {
		e.activateLocked(c.v) // clears the canary pointer too
		return CanaryPromoted
	}
	e.canary.Store(nil)
	return CanaryRolledBack
}

// healthy evaluates the promotion contract over the window's counters.
func (c *canaryState) healthy() bool {
	canReq := float64(c.canReq.Load())
	canErrRate := float64(c.canErr.Load()) / canReq
	baseReq := float64(c.baseReq.Load())
	if baseReq == 0 {
		// No traffic on the active side this window: judge against the
		// absolute budget, skip the latency comparison.
		return canErrRate <= c.policy.ErrBudget
	}
	baseErrRate := float64(c.baseErr.Load()) / baseReq
	if canErrRate > baseErrRate+c.policy.ErrBudget {
		return false
	}
	canMean := float64(c.canNs.Load()) / canReq
	baseMean := float64(c.baseNs.Load()) / baseReq
	if baseMean > 0 && canMean > baseMean*c.policy.LatencyFactor {
		return false
	}
	return true
}
