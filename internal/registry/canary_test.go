package registry

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"treeserver/internal/model"
)

// stageTwo loads two versions of a model and activates v1, the canonical
// starting state for a canary experiment.
func stageTwo(t *testing.T) (*Registry, []map[string]string) {
	t.Helper()
	r := New()
	mf1, rows := trainFile(t, 1)
	mf2, _ := trainFile(t, 2)
	if _, err := r.Load("m", mf1, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("m", mf2, "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Activate("m", 1); err != nil {
		t.Fatal(err)
	}
	return r, rows
}

func TestStageValidation(t *testing.T) {
	r, _ := stageTwo(t)
	if _, err := r.Stage("ghost", 0, 0.5); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := r.Stage("m", 99, 0.5); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unknown version: %v", err)
	}
	for _, frac := range []float64{0, -0.25, 1.5} {
		if _, err := r.Stage("m", 2, frac); err == nil {
			t.Fatalf("fraction %g accepted", frac)
		}
	}
	if _, err := r.Stage("m", 1, 0.5); err == nil {
		t.Fatal("staging the active version succeeded")
	}

	// A model with versions but no active one has nothing to canary against.
	noact := New()
	mf, _ := trainFile(t, 1)
	if _, err := noact.Load("n", mf, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := noact.Stage("n", 1, 0.5); !errors.Is(err, ErrNoActiveVersion) {
		t.Fatalf("no active version: %v", err)
	}
}

func TestRouteDeterministic(t *testing.T) {
	r, _ := stageTwo(t)

	// No canary: every key lands on the active version.
	v, canary, ok := r.Route("m", 12345)
	if !ok || canary || v.Seq != 1 {
		t.Fatalf("route without canary = seq %d canary %v ok %v", v.Seq, canary, ok)
	}
	if _, _, ok := r.Route("ghost", 0); ok {
		t.Fatal("unknown model routed")
	}

	if _, err := r.Stage("m", 2, 0.5); err != nil {
		t.Fatal(err)
	}
	// Fraction 0.5 splits the key space at 2^63: low keys go canary, high
	// keys stay on the active version — and repeat calls never flip.
	for i := 0; i < 10; i++ {
		if v, canary, _ := r.Route("m", 0); !canary || v.Seq != 2 {
			t.Fatalf("low key routed to seq %d canary %v", v.Seq, canary)
		}
		if v, canary, _ := r.Route("m", math.MaxUint64); canary || v.Seq != 1 {
			t.Fatalf("high key routed to seq %d canary %v", v.Seq, canary)
		}
	}
	// The hash spreads real-world keys across both sides.
	low, high := 0, 0
	for i := 0; i < 64; i++ {
		if _, canary, _ := r.Route("m", HashKey(string(rune('a'+i%26))+"-client")); canary {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("hash split %d/%d never uses one side", low, high)
	}

	// Fraction 1.0 sends everything to the canary.
	if _, err := r.Stage("m", 2, 1.0); err != nil {
		t.Fatal(err)
	}
	if v, canary, _ := r.Route("m", math.MaxUint64); !canary || v.Seq != 2 {
		t.Fatalf("fraction 1.0 routed to seq %d canary %v", v.Seq, canary)
	}
}

func TestCanaryAutoPromote(t *testing.T) {
	r, _ := stageTwo(t)
	if _, err := r.StageWindow("m", 2, 0.5, 10); err != nil {
		t.Fatal(err)
	}
	// Healthy canary: same latency as baseline, no errors. The decision must
	// fire on exactly the 10th canary observation.
	for i := 0; i < 9; i++ {
		if d := r.Observe("m", true, 1000, false); d != CanaryNone {
			t.Fatalf("decision %v after %d observations", d, i+1)
		}
		r.Observe("m", false, 1000, false)
	}
	if d := r.Observe("m", true, 1000, false); d != CanaryPromoted {
		t.Fatalf("10th observation decided %v, want promoted", d)
	}
	if v, _ := r.Active("m"); v.Seq != 2 {
		t.Fatalf("active after promote = %d", v.Seq)
	}
	if _, live := r.Canary("m"); live {
		t.Fatal("canary still live after promote")
	}
	// Promotion pushed the old active to history, so a manual rollback
	// reverses it.
	back, err := r.Rollback("m")
	if err != nil || back.Seq != 1 {
		t.Fatalf("rollback after promote = %v, %v", back, err)
	}
}

func TestCanaryAutoRollbackOnErrors(t *testing.T) {
	r, _ := stageTwo(t)
	if _, err := r.StageWindow("m", 2, 0.5, 10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		r.Observe("m", true, 1000, true) // every canary request fails
		r.Observe("m", false, 1000, false)
	}
	if d := r.Observe("m", true, 1000, true); d != CanaryRolledBack {
		t.Fatalf("decision = %v, want rolled back", d)
	}
	if v, _ := r.Active("m"); v.Seq != 1 {
		t.Fatalf("active disturbed by rollback: seq %d", v.Seq)
	}
	if _, live := r.Canary("m"); live {
		t.Fatal("canary still live after rollback")
	}
	// Further observations are inert.
	if d := r.Observe("m", true, 1000, false); d != CanaryNone {
		t.Fatalf("post-rollback observation decided %v", d)
	}
}

func TestCanaryAutoRollbackOnLatency(t *testing.T) {
	r, _ := stageTwo(t)
	if _, err := r.StageWindow("m", 2, 0.5, 10); err != nil {
		t.Fatal(err)
	}
	// No errors anywhere, but the canary runs 10x the baseline mean — far
	// past the default 2x budget.
	for i := 0; i < 9; i++ {
		r.Observe("m", true, 10000, false)
		r.Observe("m", false, 1000, false)
	}
	if d := r.Observe("m", true, 10000, false); d != CanaryRolledBack {
		t.Fatalf("decision = %v, want rolled back on latency", d)
	}
	if v, _ := r.Active("m"); v.Seq != 1 {
		t.Fatalf("active disturbed: seq %d", v.Seq)
	}
}

func TestActivateAndRollbackCancelCanary(t *testing.T) {
	r, _ := stageTwo(t)
	if _, err := r.Stage("m", 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Activate("m", 2); err != nil {
		t.Fatal(err)
	}
	if _, live := r.Canary("m"); live {
		t.Fatal("activate left the canary live")
	}

	// Re-stage (active is now 2, canary 1) and cancel via Rollback.
	if _, err := r.Stage("m", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	back, err := r.Rollback("m")
	if err != nil || back.Seq != 1 {
		t.Fatalf("rollback = %v, %v", back, err)
	}
	if _, live := r.Canary("m"); live {
		t.Fatal("rollback left the canary live")
	}

	if !func() bool {
		if _, err := r.Stage("m", 2, 0.5); err != nil {
			t.Fatal(err)
		}
		return r.Unstage("m")
	}() {
		t.Fatal("unstage found no canary")
	}
	if r.Unstage("m") {
		t.Fatal("second unstage found a canary")
	}
}

func TestCanaryInfoInListing(t *testing.T) {
	r, _ := stageTwo(t)
	if info, _ := r.Get("m"); info.Canary != nil {
		t.Fatalf("canary reported before staging: %+v", info.Canary)
	}
	if _, err := r.StageWindow("m", 2, 0.25, 50); err != nil {
		t.Fatal(err)
	}
	r.Observe("m", true, 1000, true)
	info, ok := r.Get("m")
	if !ok || info.Canary == nil {
		t.Fatalf("canary missing from listing: %+v", info)
	}
	c := info.Canary
	if c.Seq != 2 || c.Fraction != 0.25 || c.Window != 50 || c.Requests != 1 || c.Errors != 1 {
		t.Fatalf("canary info = %+v", c)
	}
}

// TestRollbackEmptyHistory is the satellite edge case: a model whose history
// never had a second entry must refuse to roll back and keep serving.
func TestRollbackEmptyHistory(t *testing.T) {
	r := New()
	mf, _ := trainFile(t, 1)
	if _, err := r.Load("m", mf, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Activate("m", 0); err != nil {
		t.Fatal(err)
	}
	before, _ := r.Active("m")
	if _, err := r.Rollback("m"); err == nil {
		t.Fatal("rollback with empty history succeeded")
	}
	if after, ok := r.Active("m"); !ok || after != before {
		t.Fatal("failed rollback disturbed the active version")
	}
	if _, err := r.Rollback("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("rollback unknown model: %v", err)
	}
}

// TestActivateUnknownSeq pins the typed error and that the active version
// survives the failed activation.
func TestActivateUnknownSeq(t *testing.T) {
	r, rows := stageTwo(t)
	before, _ := r.Active("m")
	want := pmfFingerprint(t, before.Compiled, rows)
	if _, err := r.Activate("m", 99); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("activate unknown seq: %v", err)
	}
	if _, err := r.Activate("ghost", 0); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("activate unknown model: %v", err)
	}
	after, _ := r.Active("m")
	if after != before {
		t.Fatal("failed activate disturbed the active version")
	}
	if got := pmfFingerprint(t, after.Compiled, rows); !sameFloats(got, want) {
		t.Fatal("active predictions changed")
	}
}

// TestWatchDeletedFileMidPoll is the satellite edge case: a .tsmodel
// vanishing between polls must not disturb the version serving traffic.
func TestWatchDeletedFileMidPoll(t *testing.T) {
	dir := t.TempDir()
	mf1, rows := trainFile(t, 1)
	path := filepath.Join(dir, "m"+Ext)
	if err := model.SaveForestFile(path, "m", mf1.Forest, mf1.Schema); err != nil {
		t.Fatal(err)
	}
	r := New()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	before, _ := r.Active("m")
	want := pmfFingerprint(t, before.Compiled, rows)

	stop := make(chan struct{})
	defer close(stop)
	events := make(chan string, 16)
	go r.Watch(dir, 2*time.Millisecond, stop, func(msg string) {
		select {
		case events <- msg:
		default:
		}
	})

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// Let several polls observe the deletion.
	time.Sleep(30 * time.Millisecond)
	after, ok := r.Active("m")
	if !ok || after != before {
		t.Fatal("deleting the file on disk disturbed the active version")
	}
	if got := pmfFingerprint(t, after.Compiled, rows); !sameFloats(got, want) {
		t.Fatal("active predictions changed after deletion")
	}
	select {
	case msg := <-events:
		t.Fatalf("deletion produced a watch event: %q", msg)
	default:
	}

	// The model coming back (changed content) is picked up again.
	mf2, _ := trainFile(t, 2)
	time.Sleep(5 * time.Millisecond)
	if err := model.SaveForestFile(path, "m", mf2.Forest, mf2.Schema); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := r.Active("m"); v != nil && v.Seq == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch never reloaded the re-created file")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchCanaryStages pins registry-triggered canarying: with a fraction
// configured, a changed file is staged as a canary instead of activated.
func TestWatchCanaryStages(t *testing.T) {
	dir := t.TempDir()
	mf1, _ := trainFile(t, 1)
	mf2, _ := trainFile(t, 2)
	path := filepath.Join(dir, "m"+Ext)
	if err := model.SaveForestFile(path, "m", mf1.Forest, mf1.Schema); err != nil {
		t.Fatal(err)
	}
	r := New()
	if _, err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go r.WatchCanary(dir, 2*time.Millisecond, 0.5, 25, stop, nil)

	time.Sleep(5 * time.Millisecond)
	if err := model.SaveForestFile(path, "m", mf2.Forest, mf2.Schema); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c, live := r.Canary("m"); live {
			if c.Seq != 2 || c.Fraction != 0.5 || c.Window != 25 {
				t.Fatalf("canary = %+v", c)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch never staged the rewritten model as a canary")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The active version must still be v1 — canarying, not activating.
	if v, _ := r.Active("m"); v.Seq != 1 {
		t.Fatalf("watch activated v%d instead of canarying", v.Seq)
	}
}
