// Package registry holds named, versioned, compiled models for serving.
//
// Every loaded model file is compiled once (infer.Compile) into an immutable
// artifact and staged as a numbered Version. Activation swaps a per-model
// copy-on-write pointer, so the serving hot path reads the active version
// with two atomic loads and no locks — a request that started on version N
// keeps using N even if N+1 activates mid-flight, and a torn model can never
// be observed. Rollback re-activates whatever was active before the last
// activation. A corrupt or incompatible model file fails in Load/compile,
// before any pointer moves, so the active version is never disturbed.
//
// Watch polls a directory (stdlib-only, so no inotify) and load+activates
// changed .tsmodel files, which is how tsserve hot-reloads without dropping
// requests.
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treeserver/internal/infer"
	"treeserver/internal/model"
)

// Ext is the model file extension the directory loaders look for.
const Ext = ".tsmodel"

// keepVersions bounds the staged-version list per model; older versions are
// pruned (an active or history-referenced version stays usable — pruning
// only limits what Activate can name by sequence).
const keepVersions = 8

// Version is one immutable compiled model artifact. Fields are never
// mutated after publication, which is what makes the lock-free hot path
// sound.
type Version struct {
	Name     string // model name in the registry
	Seq      int    // 1-based, monotonically increasing per name
	Source   string // provenance: file path, or a caller-supplied tag
	LoadedAt time.Time
	File     *model.File
	Compiled *infer.Model
}

// entry is one model name's state. The active and canary pointers are the
// only fields the hot path touches; everything else is guarded by the
// registry mutex.
type entry struct {
	active   atomic.Pointer[Version]
	canary   atomic.Pointer[canaryState]
	versions []*Version // staged, ascending Seq
	history  []*Version // previously-active stack, for Rollback
	nextSeq  int
}

// Registry maps model names to versioned entries. The name map itself is
// copy-on-write so lookups never lock.
type Registry struct {
	mu           sync.Mutex
	canaryPolicy CanaryPolicy
	models       atomic.Pointer[map[string]*entry]
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	empty := map[string]*entry{}
	r.models.Store(&empty)
	return r
}

// Active returns the active version of a model, lock-free. ok is false if
// the name is unknown or nothing has been activated yet.
func (r *Registry) Active(name string) (*Version, bool) {
	e, ok := (*r.models.Load())[name]
	if !ok {
		return nil, false
	}
	v := e.active.Load()
	return v, v != nil
}

// lookup returns the entry for name, creating it if missing.
func (r *Registry) lookup(name string, create bool) *entry {
	if e, ok := (*r.models.Load())[name]; ok {
		return e
	}
	if !create {
		return nil
	}
	old := *r.models.Load()
	next := make(map[string]*entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	e := &entry{nextSeq: 1}
	next[name] = e
	r.models.Store(&next)
	return e
}

// Load compiles a model file and stages it as a new version of name (the
// file's own name if name is empty). The version is not active until
// Activate. Compilation failures leave the registry untouched.
func (r *Registry) Load(name string, mf *model.File, source string) (*Version, error) {
	if mf == nil {
		return nil, fmt.Errorf("registry: nil model file")
	}
	if name == "" {
		name = mf.Name
	}
	if name == "" {
		return nil, fmt.Errorf("registry: model has no name")
	}
	compiled, err := infer.Compile(mf)
	if err != nil {
		return nil, fmt.Errorf("registry: compiling %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, true)
	v := &Version{
		Name: name, Seq: e.nextSeq, Source: source, LoadedAt: time.Now(),
		File: mf, Compiled: compiled,
	}
	e.nextSeq++
	e.versions = append(e.versions, v)
	if len(e.versions) > keepVersions {
		e.versions = append(e.versions[:0:0], e.versions[len(e.versions)-keepVersions:]...)
	}
	return v, nil
}

// LoadFile loads and stages a model from a path. A file that fails to read,
// parse or compile is rejected without touching existing versions.
func (r *Registry) LoadFile(name, path string) (*Version, error) {
	mf, err := model.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return r.Load(name, mf, path)
}

// findLocked resolves a staged version by seq (<=0 = newest). Callers hold
// the registry mutex.
func (e *entry) findLocked(name string, seq int) (*Version, error) {
	if seq <= 0 {
		if len(e.versions) == 0 {
			return nil, fmt.Errorf("registry: model %q has no staged versions", name)
		}
		return e.versions[len(e.versions)-1], nil
	}
	for _, cand := range e.versions {
		if cand.Seq == seq {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("registry: model %q: %w %d", name, ErrUnknownVersion, seq)
}

// activateLocked flips the active pointer to v, pushes the previous active
// onto the Rollback history and cancels any live canary (the flip — manual
// or canary auto-promotion — supersedes the experiment).
func (e *entry) activateLocked(v *Version) {
	if prev := e.active.Load(); prev != nil && prev != v {
		e.history = append(e.history, prev)
	}
	e.active.Store(v)
	e.canary.Store(nil)
}

// Activate makes a staged version the active one. seq <= 0 selects the
// newest staged version. The previously active version is pushed for
// Rollback, and any live canary is cancelled. Returns the activated version.
func (r *Registry) Activate(name string, seq int) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, false)
	if e == nil {
		return nil, fmt.Errorf("registry: %w %q", ErrUnknownModel, name)
	}
	v, err := e.findLocked(name, seq)
	if err != nil {
		return nil, err
	}
	e.activateLocked(v)
	return v, nil
}

// Rollback re-activates the version that was active before the most recent
// activation. A live canary is cancelled first; with no prior version the
// registry is left untouched.
func (r *Registry) Rollback(name string) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, false)
	if e == nil {
		return nil, fmt.Errorf("registry: %w %q", ErrUnknownModel, name)
	}
	e.canary.Store(nil)
	if len(e.history) == 0 {
		return nil, fmt.Errorf("registry: model %q has no prior version to roll back to", name)
	}
	v := e.history[len(e.history)-1]
	e.history = e.history[:len(e.history)-1]
	e.active.Store(v)
	return v, nil
}

// VersionInfo is one staged version in a listing.
type VersionInfo struct {
	Seq      int       `json:"seq"`
	Source   string    `json:"source,omitempty"`
	LoadedAt time.Time `json:"loaded_at"`
	Active   bool      `json:"active"`
	NumTrees int       `json:"num_trees"`
}

// Info is one model's listing entry.
type Info struct {
	Name      string        `json:"name"`
	ActiveSeq int           `json:"active_seq"` // 0: nothing active
	Kind      string        `json:"kind,omitempty"`
	Task      string        `json:"task,omitempty"`
	Features  []string      `json:"features,omitempty"`
	Classes   []string      `json:"classes,omitempty"`
	MaxDepth  int           `json:"max_depth,omitempty"` // deepest tree depth of the active version
	Canary    *CanaryInfo   `json:"canary,omitempty"`    // live canary rollout, if any
	Versions  []VersionInfo `json:"versions"`
}

func (r *Registry) info(name string, e *entry) *Info {
	active := e.active.Load()
	in := &Info{Name: name}
	describe := active
	if describe == nil && len(e.versions) > 0 {
		describe = e.versions[len(e.versions)-1]
	}
	if describe != nil {
		in.Kind = describe.Compiled.Kind()
		if describe.Compiled.Regression() {
			in.Task = "regression"
		} else {
			in.Task = "classification"
			in.Classes = describe.Compiled.Classes()
		}
		in.Features = describe.File.Schema.FeatureNames()
		in.MaxDepth = describe.Compiled.MaxTreeDepth()
	}
	if active != nil {
		in.ActiveSeq = active.Seq
	}
	if c := e.canary.Load(); c != nil {
		in.Canary = &CanaryInfo{
			Seq: c.v.Seq, Fraction: c.fraction, Window: c.policy.Window,
			Requests: c.canReq.Load(), Errors: c.canErr.Load(),
		}
	}
	for _, v := range e.versions {
		in.Versions = append(in.Versions, VersionInfo{
			Seq: v.Seq, Source: v.Source, LoadedAt: v.LoadedAt,
			Active: v == active, NumTrees: v.Compiled.NumTrees(),
		})
	}
	return in
}

// Get returns one model's listing.
func (r *Registry) Get(name string) (*Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, false)
	if e == nil {
		return nil, false
	}
	return r.info(name, e), true
}

// List returns every model's listing, sorted by name.
func (r *Registry) List() []*Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := *r.models.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Info, 0, len(names))
	for _, name := range names {
		out = append(out, r.info(name, m[name]))
	}
	return out
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	m := *r.models.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadDir loads and activates every .tsmodel file in dir, named by file
// base name. Files that fail to load are skipped and reported in the joined
// error; good files still load, so one corrupt file never blocks the rest.
func (r *Registry) LoadDir(dir string) (loaded []string, err error) {
	paths, globErr := filepath.Glob(filepath.Join(dir, "*"+Ext))
	if globErr != nil {
		return nil, fmt.Errorf("registry: scanning %s: %w", dir, globErr)
	}
	sort.Strings(paths)
	var errs []error
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), Ext)
		if _, lerr := r.LoadFile(name, path); lerr != nil {
			errs = append(errs, lerr)
			continue
		}
		if _, aerr := r.Activate(name, 0); aerr != nil {
			errs = append(errs, aerr)
			continue
		}
		loaded = append(loaded, name)
	}
	return loaded, errors.Join(errs...)
}

// Watch polls dir every interval and load+activates new or changed .tsmodel
// files until stop closes. Each reload (or failure) is reported through
// onEvent if non-nil. Run it in its own goroutine.
func (r *Registry) Watch(dir string, interval time.Duration, stop <-chan struct{}, onEvent func(msg string)) {
	r.watch(dir, interval, stop, onEvent, 0, 0)
}

// WatchCanary is Watch with registry-triggered canarying: a changed file is
// staged as a canary at the given traffic fraction (window 0 = policy
// default) instead of activating instantly, and traffic then auto-promotes
// or auto-rolls-back the new version. A model with no active version yet
// (first sighting) still activates directly — there is nothing to canary
// against.
func (r *Registry) WatchCanary(dir string, interval time.Duration, fraction float64, window int, stop <-chan struct{}, onEvent func(msg string)) {
	r.watch(dir, interval, stop, onEvent, fraction, window)
}

func (r *Registry) watch(dir string, interval time.Duration, stop <-chan struct{}, onEvent func(msg string), canaryFraction float64, canaryWindow int) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	note := func(format string, args ...any) {
		if onEvent != nil {
			onEvent(fmt.Sprintf(format, args...))
		}
	}
	type stamp struct {
		mod  time.Time
		size int64
	}
	seen := map[string]stamp{}
	record := func(path string) (stamp, bool) {
		fi, err := os.Stat(path)
		if err != nil {
			return stamp{}, false
		}
		return stamp{fi.ModTime(), fi.Size()}, true
	}
	// Prime with the current state so startup loads (LoadDir) aren't redone.
	if paths, err := filepath.Glob(filepath.Join(dir, "*"+Ext)); err == nil {
		for _, p := range paths {
			if st, ok := record(p); ok {
				seen[p] = st
			}
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		paths, err := filepath.Glob(filepath.Join(dir, "*"+Ext))
		if err != nil {
			continue
		}
		for _, path := range paths {
			st, ok := record(path)
			if !ok || seen[path] == st {
				continue
			}
			seen[path] = st
			name := strings.TrimSuffix(filepath.Base(path), Ext)
			v, err := r.LoadFile(name, path)
			if err != nil {
				note("watch: %s rejected: %v", path, err)
				continue
			}
			if canaryFraction > 0 {
				if _, ok := r.Active(name); ok {
					if _, err := r.StageWindow(name, v.Seq, canaryFraction, canaryWindow); err != nil {
						note("watch: %s staged but canary not started: %v", path, err)
						continue
					}
					note("watch: %s staged as canary v%d of %s at %.0f%% traffic", path, v.Seq, name, canaryFraction*100)
					continue
				}
				// First version of this model: nothing to canary against.
			}
			if _, err := r.Activate(name, 0); err != nil {
				note("watch: %s staged but not activated: %v", path, err)
				continue
			}
			note("watch: %s activated as %s", path, name)
		}
	}
}
