package cluster

import (
	"fmt"
	"time"

	"treeserver/internal/dataset"
)

// SetTarget replaces the distributed label column with a new numeric target
// on every alive worker and blocks until all acknowledge. It runs under the
// job lock, so it can only interleave between training jobs — exactly the
// cadence gradient boosting needs: train a round, update residuals, train
// the next round.
//
// After SetTarget the cluster trains regression trees regardless of the
// original task; there is no automatic way back to the original labels
// (create a new cluster for unrelated jobs).
func (m *Master) SetTarget(y []float64) error {
	m.jobMu.Lock()
	defer m.jobMu.Unlock()
	if len(y) != m.schema.NumRows {
		return fmt.Errorf("cluster: target has %d values, table has %d rows", len(y), m.schema.NumRows)
	}

	m.mu.Lock()
	m.targetSeq++
	seq := m.targetSeq
	var alive []int
	for w, ok := range m.alive {
		if ok {
			alive = append(alive, w)
		}
	}
	m.targetAcks = map[int]bool{}
	ackCh := make(chan struct{})
	m.targetAckCh = ackCh
	m.targetWant = len(alive)
	m.mu.Unlock()

	for _, w := range alive {
		m.send(w, SetTargetMsg{Seq: seq, Y: y})
	}

	timeout := m.cfg.JobTimeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	select {
	case <-ackCh:
	case <-time.After(timeout):
		return fmt.Errorf("cluster: target update not acknowledged by all workers within %v", timeout)
	case <-m.stop:
		return fmt.Errorf("cluster: master stopped")
	}

	m.mu.Lock()
	m.schema.NumClasses = 0
	m.schema.Task = dataset.Regression
	m.schema.Kinds[m.schema.Target] = dataset.Numeric
	m.mu.Unlock()
	return nil
}

// handleTargetAck records one worker's acknowledgement (called from the
// receive loop).
func (m *Master) handleTargetAck(msg TargetAckMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if msg.Seq != m.targetSeq || m.targetAckCh == nil {
		return
	}
	if !m.targetAcks[msg.Worker] {
		m.targetAcks[msg.Worker] = true
		if len(m.targetAcks) >= m.targetWant {
			close(m.targetAckCh)
			m.targetAckCh = nil
		}
	}
}

// SetTarget on the in-process cluster helper.
func (c *Cluster) SetTarget(y []float64) error { return c.Master.SetTarget(y) }
