package cluster

import (
	"fmt"
	"time"

	"treeserver/internal/dataset"
)

// SetTarget replaces the distributed label column with a new numeric target
// on every alive worker and blocks until all acknowledge. It runs under the
// job lock, so it can only interleave between training jobs — exactly the
// cadence gradient boosting needs: train a round, update residuals, train
// the next round.
//
// After SetTarget the cluster trains regression trees regardless of the
// original task; there is no automatic way back to the original labels
// (create a new cluster for unrelated jobs).
func (m *Master) SetTarget(y []float64) error {
	m.jobMu.Lock()
	defer m.jobMu.Unlock()
	if len(y) != m.schema.NumRows {
		return fmt.Errorf("cluster: target has %d values, table has %d rows", len(y), m.schema.NumRows)
	}

	m.mu.Lock()
	m.targetSeq++
	seq := m.targetSeq
	// Retain the payload: a worker that joins mid-boosting is caught up with
	// exactly this target at admission.
	m.targetY = append([]float64(nil), y...)
	var alive []int
	for w, ok := range m.alive {
		if ok {
			alive = append(alive, w)
		}
	}
	m.targetAcks = map[int]bool{}
	ackCh := make(chan struct{})
	m.targetAckCh = ackCh
	m.targetWant = len(alive)
	m.mu.Unlock()

	for _, w := range alive {
		m.send(w, SetTargetMsg{Seq: seq, Y: y})
	}

	timeout := m.cfg.JobTimeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	// Re-send to unacked workers until everyone confirms: the update is
	// idempotent on the worker, and over a lossy fabric either the message or
	// its ack can vanish. Without TaskRetry a single send must suffice, so
	// resends only arm when the re-execution machinery is on.
	resendEvery := m.cfg.TaskRetry
	if resendEvery <= 0 {
		resendEvery = timeout
	}
	resend := time.NewTicker(resendEvery)
	defer resend.Stop()
	deadline := time.After(timeout)
	for {
		select {
		case <-ackCh:
			goto acked
		case <-resend.C:
			m.mu.Lock()
			var unacked []int
			live := 0
			for _, w := range alive {
				if !m.alive[w] {
					continue
				}
				live++
				if !m.targetAcks[w] {
					unacked = append(unacked, w)
				}
			}
			// A worker that died mid-update is out of the quorum: once every
			// still-alive worker has acked, the update is complete (the dead
			// worker's columns are re-replicated from survivors that did ack).
			done := live > 0 && len(unacked) == 0
			if done {
				m.targetAckCh = nil
			}
			m.mu.Unlock()
			if done {
				goto acked
			}
			for _, w := range unacked {
				m.send(w, SetTargetMsg{Seq: seq, Y: y})
			}
		case <-deadline:
			return fmt.Errorf("cluster: target update not acknowledged by all workers within %v", timeout)
		case <-m.stop:
			return fmt.Errorf("cluster: master stopped")
		}
	}
acked:

	m.mu.Lock()
	m.schema.NumClasses = 0
	m.schema.Task = dataset.Regression
	m.schema.Kinds[m.schema.Target] = dataset.Numeric
	m.mu.Unlock()
	return nil
}

// handleTargetAck records one worker's acknowledgement (called from the
// receive loop).
func (m *Master) handleTargetAck(msg TargetAckMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if msg.Seq != m.targetSeq || m.targetAckCh == nil {
		return
	}
	if !m.targetAcks[msg.Worker] {
		m.targetAcks[msg.Worker] = true
		if len(m.targetAcks) >= m.targetWant {
			close(m.targetAckCh)
			m.targetAckCh = nil
		}
	}
}

// SetTarget on the in-process cluster helper.
func (c *Cluster) SetTarget(y []float64) error { return c.Master.SetTarget(y) }
