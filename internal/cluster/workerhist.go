package cluster

import (
	"sort"
	"sync"

	"treeserver/internal/dataset"
	"treeserver/internal/sketch"
	"treeserver/internal/split"
	"treeserver/internal/task"
)

// Worker side of the histogram training mode: bin proposal and installation,
// the per-node histogram kernel with parent − sibling subtraction, top-k
// voting, and serving elected histograms back to the master.

// histCacheBudget bounds the per-worker node-histogram cache (FIFO eviction)
// by memory rather than entry count: an entry's cost is dominated by its W
// array (NumBins × stride float64s), so coarse bins afford a much deeper
// cache. Depth matters — a subtraction hit needs the parent entry to survive
// until the later sibling runs, and a frontier at depth d holds O(2^d ×
// owned columns) live parents, so a count cap tuned for fine bins starves
// coarse-bin runs of exactly the hits they were promised.
const histCacheBudget = 64 << 20

// defaultHistCacheCap sizes the cache before any bin broadcast fixes the
// histogram geometry.
const defaultHistCacheCap = 8192

// histCacheCap converts the byte budget into an entry cap for one bin
// geometry (the constant accounts for entry, key-alias, and map-slot
// overhead).
func histCacheCap(numBins, classes int) int {
	stride := 3
	if classes > 0 {
		stride = classes
	}
	entryBytes := numBins*stride*8 + 256
	c := histCacheBudget / entryBytes
	if c < 1024 {
		return 1024
	}
	return c
}

// selfSide marks a histKey addressing a task's own rows, as opposed to one
// side of the split the task later confirms.
const selfSide uint8 = 255

// histKey addresses one cached node histogram. A task's histogram is stored
// under its own (id, selfSide, col) key and, when the task is not a tree
// root, aliased under its parent's (task, side, col) — the address its future
// sibling derives it by.
type histKey struct {
	id   task.ID
	side uint8
	col  int
}

type histCacheEntry struct {
	keys []histKey
	h    *split.Hist
}

// histCache is the bounded per-worker node-histogram cache backing histogram
// subtraction and the master's post-election fetches. Cached histograms are
// immutable and owned by the cache: eviction drops the reference for the GC
// rather than returning it to the hist pool, because an evicted histogram may
// still be held by a reader.
type histCache struct {
	mu      sync.Mutex
	entries map[histKey]*histCacheEntry
	fifo    []*histCacheEntry
	cap     int
}

func newHistCache(capacity int) *histCache {
	return &histCache{entries: make(map[histKey]*histCacheEntry, mapHint(capacity)), cap: capacity}
}

// mapHint pre-sizes the key map for a full cache (each entry lands under two
// keys: self + parent alias), bounded so byte-budgeted caps in the hundreds
// of thousands don't allocate a huge empty table up front.
func mapHint(capacity int) int {
	if h := 2 * capacity; h < 1<<16 {
		return h
	}
	return 1 << 16
}

func (c *histCache) get(k histKey) *split.Hist {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		return e.h
	}
	return nil
}

// put stores h under the task's self key plus its parent-side alias. The
// first store wins: a re-executed attempt recomputes the same rows, so a
// duplicate is identical and the cached copy may already be referenced.
func (c *histCache) put(id task.ID, parent ParentRef, col int, h *split.Hist) {
	self := histKey{id: id, side: selfSide, col: col}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[self]; dup {
		return
	}
	e := &histCacheEntry{keys: []histKey{self}, h: h}
	if !parent.IsRoot() {
		e.keys = append(e.keys, histKey{id: parent.Task, side: parent.Side, col: col})
	}
	for _, k := range e.keys {
		c.entries[k] = e
	}
	c.fifo = append(c.fifo, e)
	for len(c.fifo) > c.cap {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		for _, k := range old.keys {
			if c.entries[k] == old {
				delete(c.entries, k)
			}
		}
	}
}

// resize re-bounds the cache for a new bin geometry, evicting oldest
// entries when the new cap is smaller than the current population.
func (c *histCache) resize(capacity int) {
	c.mu.Lock()
	c.cap = capacity
	for len(c.fifo) > c.cap {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		for _, k := range old.keys {
			if c.entries[k] == old {
				delete(c.entries, k)
			}
		}
	}
	c.mu.Unlock()
}

func (c *histCache) reset() {
	c.mu.Lock()
	c.entries = make(map[histKey]*histCacheEntry, mapHint(c.cap))
	c.fifo = nil
	c.mu.Unlock()
}

// sortCandidates orders candidates best-first under the Better comparator.
// Better is a strict weak order (lower impurity, ties to lower column), so
// the result is a pure function of the candidate set.
func sortCandidates(cands []split.Candidate) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Better(cands[j]) })
}

// handleBinProposalRequest sketches every owned feature column and ships the
// summaries. The recompute is deterministic (row-order Add over immutable
// columns), so answering a resent request is idempotent.
func (w *Worker) handleBinProposalRequest(msg BinProposalRequestMsg) {
	w.enqueue(func() {
		w.mu.Lock()
		cols := make([]int, 0, len(w.cols))
		for c := range w.cols {
			cols = append(cols, c)
		}
		target := w.schema.Target
		w.mu.Unlock()
		sort.Ints(cols)

		sketches := make([]ColumnSketch, 0, len(cols))
		for _, c := range cols {
			if c == target {
				continue
			}
			w.mu.Lock()
			col := w.cols[c]
			w.mu.Unlock()
			if col == nil {
				continue
			}
			cs := ColumnSketch{Col: c, Kind: col.Kind}
			if col.Kind == dataset.Categorical {
				cs.Levels = col.NumLevels()
			} else {
				sk := sketch.New(histSketchSize(msg.MaxBins))
				vals := make([]float64, 0, col.Len())
				for r := 0; r < col.Len(); r++ {
					if !col.IsMissing(r) {
						vals = append(vals, col.Floats[r])
					}
				}
				sk.AddBulk(vals)
				cs.Entries = sk.Entries()
			}
			sketches = append(sketches, cs)
		}
		w.send(MasterName, BinProposalMsg{Worker: w.id, Seq: msg.Seq, Sketches: sketches})
	})
}

// handleBinBroadcast installs the merged bins (fenced by Seq), pre-bins every
// owned column off the receive loop, and acks. A re-delivered sequence is
// only re-acked — the ack may be the lost half of the exchange.
func (w *Worker) handleBinBroadcast(msg BinBroadcastMsg) {
	w.mu.Lock()
	if msg.Seq <= w.binSeq {
		w.mu.Unlock()
		w.send(MasterName, BinAckMsg{Worker: w.id, Seq: msg.Seq})
		return
	}
	w.binSeq = msg.Seq
	bins := make(map[int]split.Bins, len(msg.Bins))
	maxBins := 0
	for _, b := range msg.Bins {
		bins[b.Col] = b
		if b.NumBins > maxBins {
			maxBins = b.NumBins
		}
	}
	w.bins = bins
	w.binned = map[int]*split.BinnedColumn{}
	classes := 0
	if w.y != nil && w.y.Kind == dataset.Categorical {
		classes = w.schema.NumClasses
	}
	w.mu.Unlock()
	w.histCache.reset()
	if maxBins > 0 {
		w.histCache.resize(histCacheCap(maxBins, classes))
	}

	w.enqueue(func() {
		w.mu.Lock()
		cols := make([]int, 0, len(w.cols))
		for c := range w.cols {
			cols = append(cols, c)
		}
		w.mu.Unlock()
		sort.Ints(cols)
		for _, c := range cols {
			w.mu.Lock()
			col := w.cols[c]
			b, ok := w.bins[c]
			stale := w.binSeq != msg.Seq
			w.mu.Unlock()
			if stale {
				return // a newer broadcast superseded this one mid-bin
			}
			if col == nil || !ok {
				continue
			}
			bc := split.BinColumn(col, b)
			w.mu.Lock()
			if w.binSeq == msg.Seq {
				w.binned[c] = bc
			}
			w.mu.Unlock()
		}
		w.send(MasterName, BinAckMsg{Worker: w.id, Seq: msg.Seq})
	})
}

// binnedFor returns the cached binned image of one column, computing and
// caching it on miss — the path for columns re-replicated onto this worker
// after the broadcast pre-binned the rest.
func (w *Worker) binnedFor(colIdx int, col *dataset.Column, b split.Bins, seq int64) *split.BinnedColumn {
	w.mu.Lock()
	if w.binSeq == seq {
		if bc := w.binned[colIdx]; bc != nil {
			w.mu.Unlock()
			return bc
		}
	}
	w.mu.Unlock()
	bc := split.BinColumn(col, b)
	w.mu.Lock()
	if w.binSeq == seq && w.binned != nil {
		w.binned[colIdx] = bc
	}
	w.mu.Unlock()
	return bc
}

// computeColumnTaskHist is the hist-mode analogue of computeColumnTask: one
// pooled histogram per assigned column (subtraction-derived when the cached
// parent and sibling allow it), scored locally, with only the top-k
// candidates shipped to the master. Under column partitioning this worker
// holds every row of its columns, so each candidate is already exact with
// respect to the bins.
func (w *Worker) computeColumnTaskHist(msg ColumnPlanMsg, rows []int32) {
	w.mu.Lock()
	y := w.y
	seq := w.binSeq
	bins := w.bins
	localCols := make([]*dataset.Column, len(msg.Cols))
	for i, c := range msg.Cols {
		localCols[i] = w.cols[c]
	}
	w.mu.Unlock()
	if bins == nil {
		w.fail(msg.Task, "hist plan before bin broadcast")
		return
	}
	classes := 0
	if y.Kind == dataset.Categorical {
		classes = msg.NumClasses
	}

	scratch := split.GetScratchObserved(w.sc)
	defer split.PutScratch(scratch)
	cands := make([]split.Candidate, 0, len(msg.Cols))
	for i, colIdx := range msg.Cols {
		col := localCols[i]
		if col == nil {
			w.fail(msg.Task, "assigned column %d not held", colIdx)
			return
		}
		b, ok := bins[colIdx]
		if !ok {
			w.fail(msg.Task, "no bins for column %d", colIdx)
			return
		}
		bc := w.binnedFor(colIdx, col, b, seq)
		h := w.nodeHist(msg, colIdx, bc, y, rows, b.NumBins, classes)
		cand := split.BestFromHist(b, h, msg.Measure, msg.MaxExh, scratch)
		// The cache takes ownership of h; it backs both the sibling's
		// subtraction and a possible post-election fetch.
		w.histCache.put(msg.Task, msg.Parent, colIdx, h)
		if cand.Valid {
			cands = append(cands, cand)
		}
	}
	sortCandidates(cands)
	topK := msg.TopK
	if topK < 1 {
		topK = 1
	}
	if len(cands) > topK {
		cands = cands[:topK]
	}
	stats := StatsOf(y, rows, msg.NumClasses)
	w.send(MasterName, TopKVoteMsg{Task: msg.Task, Attempt: msg.Attempt, Worker: w.id, Votes: cands, Stats: stats})
}

// nodeHist produces one column's histogram for the task's rows: derived by
// parent − sibling subtraction when both cached histograms are available, or
// accumulated by a direct row scan. Subtraction is classification-only —
// class counts are integers, exact in float64, so the difference is bitwise
// identical to a direct fill; regression moments would subtract with
// different rounding than they accumulate, breaking run-to-run determinism.
func (w *Worker) nodeHist(msg ColumnPlanMsg, colIdx int, bc *split.BinnedColumn, y *dataset.Column, rows []int32, numBins, classes int) *split.Hist {
	if classes > 0 && !msg.Parent.IsRoot() {
		parent := w.histCache.get(histKey{id: msg.Parent.Task, side: selfSide, col: colIdx})
		sibling := w.histCache.get(histKey{id: msg.Parent.Task, side: 1 - msg.Parent.Side, col: colIdx})
		if parent != nil && sibling != nil &&
			parent.NumBins == numBins && parent.Classes == classes &&
			sibling.NumBins == numBins && sibling.Classes == classes {
			h := split.GetHist(numBins, classes)
			h.Sub(parent, sibling)
			w.sc.HistSubtracted()
			return h
		}
	}
	h := split.GetHist(numBins, classes)
	h.Fill(bc, y, rows)
	w.sc.HistFilled()
	return h
}

// handleHistogramRequest serves the master's post-election fetch: the cached
// histograms of the named columns, cloned so the in-process fabric never
// aliases cache-owned state, rebuilt from the binned column on a cache miss.
func (w *Worker) handleHistogramRequest(msg HistogramRequestMsg) {
	w.mu.Lock()
	entry, ok := w.tasks[msg.Task]
	var rows []int32
	if ok {
		rows = entry.rows
	}
	live := ok && entry.attempt == msg.Attempt
	w.mu.Unlock()
	if !live {
		return // dropped or re-attempted task; master-side retry owns recovery
	}
	w.enqueue(func() {
		hists := make([]*split.Hist, len(msg.Cols))
		for i, c := range msg.Cols {
			if h := w.histCache.get(histKey{id: msg.Task, side: selfSide, col: c}); h != nil {
				hists[i] = h.Clone()
				continue
			}
			w.mu.Lock()
			y := w.y
			col := w.cols[c]
			b, okb := w.bins[c]
			seq := w.binSeq
			classes := 0
			if y != nil && y.Kind == dataset.Categorical {
				classes = w.schema.NumClasses
			}
			w.mu.Unlock()
			if col == nil || !okb || rows == nil {
				w.fail(msg.Task, "histogram request for column %d: not available", c)
				return
			}
			bc := w.binnedFor(c, col, b, seq)
			h := split.GetHist(b.NumBins, classes)
			h.Fill(bc, y, rows)
			w.sc.HistFilled()
			hists[i] = h
		}
		w.send(MasterName, HistogramMsg{Task: msg.Task, Attempt: msg.Attempt, Worker: w.id, Cols: msg.Cols, Hists: hists})
	})
}
