package cluster

import (
	"sort"
	"time"

	"treeserver/internal/loadbal"
	"treeserver/internal/task"
)

// Gray-failure tolerance. Fail-stop detection (heartbeatLoop) cannot see a
// worker that is merely slow: late-but-arriving pongs keep clearing the
// heartbeat budget while every task placed on the straggler burns its full
// per-attempt deadline before re-execution. Three mechanisms close the gap:
//
//  1. Straggler scoring. The master keeps per-worker EWMAs of two signals —
//     task latency per row and control-message round-trips — and normalises
//     each worker against the fleet median. A score of 1 is fleet-typical;
//     0.02 means 50× slower than peers. Median-relative scoring makes the
//     detector immune to uniform slowness (a loaded cluster moves the
//     median, not the scores).
//
//  2. Hedged execution. An attempt whose elapsed time exceeds HedgeFactor ×
//     the fleet latency estimate for its size gets a duplicate attempt on a
//     disjoint set of workers, without revoking the original. The first
//     complete attempt wins; losers are cancelled with attempt-tagged
//     DropTask messages carrying the loser's own attempt number, so a drop
//     can never destroy the winner's state and trees stay bit-identical to a
//     fault-free run.
//
//  3. Quarantine with probation. A worker scoring below QuarantineThreshold
//     is excluded from new placement (circuit open) until a probe
//     round-trip returns at fleet-typical speed (half-open → closed).
//     Placement treats quarantine as a soft preference: whenever no
//     preferred replica of a column exists the load balancer falls back to
//     quarantined holders, so k-replica reachability is never sacrificed,
//     and MaxQuarantined bounds how many workers scoring can sideline.

type circuitState uint8

const (
	circuitClosed   circuitState = iota // healthy: preferred for placement
	circuitOpen                         // quarantined: excluded from new placement
	circuitHalfOpen                     // probation: probe outstanding
)

func (s circuitState) String() string {
	switch s {
	case circuitOpen:
		return "open"
	case circuitHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

const (
	// healthAlpha weights the newest sample in the EWMAs.
	healthAlpha = 0.3
	// healthMinSamples observations are required before a worker is scored;
	// with fewer it scores a neutral 1.0.
	healthMinSamples = 3
	// healthSizeFloor clamps per-row normalisation so fixed per-task
	// overheads on tiny tasks do not read as slowness.
	healthSizeFloor = 64
	// probePassFactor: a half-open worker is restored when its probe RTT is
	// within this factor of the closed fleet's median probe RTT.
	probePassFactor = 2.0
	// probeRTTFloor is an absolute slack under which any probe RTT passes,
	// so microsecond-scale medians cannot flap probation on scheduler noise.
	probeRTTFloor = 2 * time.Millisecond
	// probeEvery paces probe waves while any circuit is open.
	probeEvery = 20 * time.Millisecond
	// healthTick paces the scoring/hedging loop.
	healthTick = 2 * time.Millisecond
	// maxOutstandingHedges bounds concurrent duplicate attempts — hedging is
	// a targeted countermeasure, not a general replication of the job.
	maxOutstandingHedges = 2
	// minHedgeDelay is the floor on the hedge trigger so sub-millisecond
	// estimate noise cannot spray duplicates.
	minHedgeDelay = 2 * time.Millisecond
)

// healthTracker scores workers and runs the quarantine circuit. All methods
// require the master's mutex; the tracker itself is lock-free state. A nil
// tracker is a no-op observer, so call sites need no feature gates.
type healthTracker struct {
	taskEwma    []float64 // ns per row of completed attempt shares
	taskSamples []int
	durEwma     []float64 // ns raw attempt duration: the fixed-cost component
	durSamples  []int
	rttEwma     []float64 // ns round-trip of pings and probes
	rttSamples  []int
	state       []circuitState

	pingSent map[int64]time.Time // ping seq → send time (pruned)
	probeSeq int64
	waveAt   map[int64]time.Time // probe wave seq → send time (pruned)
	lastWave time.Time
}

func newHealthTracker(n int) *healthTracker {
	return &healthTracker{
		taskEwma: make([]float64, n), taskSamples: make([]int, n),
		durEwma: make([]float64, n), durSamples: make([]int, n),
		rttEwma: make([]float64, n), rttSamples: make([]int, n),
		state:    make([]circuitState, n),
		pingSent: map[int64]time.Time{},
		waveAt:   map[int64]time.Time{},
	}
}

// grow extends the tracker to n workers with no samples and closed
// circuits, so a live-joined worker starts in good standing. Nil-safe
// (health tracking may be disabled); shrinking is a no-op.
func (h *healthTracker) grow(n int) {
	if h == nil {
		return
	}
	for len(h.state) < n {
		h.taskEwma = append(h.taskEwma, 0)
		h.taskSamples = append(h.taskSamples, 0)
		h.durEwma = append(h.durEwma, 0)
		h.durSamples = append(h.durSamples, 0)
		h.rttEwma = append(h.rttEwma, 0)
		h.rttSamples = append(h.rttSamples, 0)
		h.state = append(h.state, circuitClosed)
	}
}

func ewmaAdd(e *float64, count *int, sample float64) {
	if *count == 0 {
		*e = sample
	} else {
		*e = (1-healthAlpha)**e + healthAlpha*sample
	}
	*count++
}

// ObserveTask folds one completed attempt share into the worker's task-latency
// EWMA, normalised to nanoseconds per row.
func (h *healthTracker) ObserveTask(w, size int, elapsed time.Duration) {
	if h == nil || w < 0 || w >= len(h.taskEwma) {
		return
	}
	rows := size
	if rows < healthSizeFloor {
		rows = healthSizeFloor
	}
	ewmaAdd(&h.taskEwma[w], &h.taskSamples[w], float64(elapsed)/float64(rows))
	ewmaAdd(&h.durEwma[w], &h.durSamples[w], float64(elapsed))
}

// ObserveRTT folds one control round-trip into the worker's RTT EWMA.
func (h *healthTracker) ObserveRTT(w int, rtt time.Duration) {
	if h == nil || w < 0 || w >= len(h.rttEwma) {
		return
	}
	ewmaAdd(&h.rttEwma[w], &h.rttSamples[w], float64(rtt))
}

// PingSent records a heartbeat probe's departure so the matching pong yields
// an RTT sample.
func (h *healthTracker) PingSent(seq int64, now time.Time) {
	if h == nil {
		return
	}
	h.pingSent[seq] = now
	for s := range h.pingSent {
		if s < seq-8 {
			delete(h.pingSent, s)
		}
	}
}

// PongReceived resolves a pong against its recorded ping departure.
func (h *healthTracker) PongReceived(w int, seq int64, now time.Time) {
	if h == nil {
		return
	}
	if sent, ok := h.pingSent[seq]; ok {
		h.ObserveRTT(w, now.Sub(sent))
	}
}

// WorkerFailed clears a dead worker's quarantine state — fail-stop recovery
// owns it now — and forgets its samples so it cannot skew fleet medians.
func (h *healthTracker) WorkerFailed(w int) {
	if h == nil || w < 0 || w >= len(h.state) {
		return
	}
	h.state[w] = circuitClosed
	h.taskEwma[w], h.taskSamples[w] = 0, 0
	h.durEwma[w], h.durSamples[w] = 0, 0
	h.rttEwma[w], h.rttSamples[w] = 0, 0
}

// medianOf returns the median of ewma[w] over workers with at least
// minSamples observations that pass ok (nil = all); 0 when no worker
// qualifies.
func medianOf(ewma []float64, samples []int, minSamples int, ok func(int) bool) float64 {
	vals := make([]float64, 0, len(ewma))
	for w := range ewma {
		if samples[w] >= minSamples && (ok == nil || ok(w)) {
			vals = append(vals, ewma[w])
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// Scores returns per-worker health: the worse (minimum) of the two
// median-normalised signals, 1.0 for workers without enough data, 0 for dead
// workers. A fleet-typical worker scores ~1; a worker k× slower than the
// median scores ~1/k.
func (h *healthTracker) Scores(alive []bool) []float64 {
	out := make([]float64, len(h.state))
	isAlive := func(w int) bool { return alive == nil || (w < len(alive) && alive[w]) }
	taskMed := medianOf(h.taskEwma, h.taskSamples, healthMinSamples, isAlive)
	rttMed := medianOf(h.rttEwma, h.rttSamples, healthMinSamples, isAlive)
	for w := range out {
		if !isAlive(w) {
			continue // score 0
		}
		s := 1.0
		if taskMed > 0 && h.taskSamples[w] >= healthMinSamples && h.taskEwma[w] > taskMed {
			s = min(s, taskMed/h.taskEwma[w])
		}
		if rttMed > 0 && h.rttSamples[w] >= healthMinSamples && h.rttEwma[w] > rttMed {
			s = min(s, rttMed/h.rttEwma[w])
		}
		out[w] = s
	}
	return out
}

// Estimate predicts a healthy attempt latency for a task of the given size
// from the fleet-median per-row rate; 0 until enough data has accumulated.
func (h *healthTracker) Estimate(size int) time.Duration {
	med := medianOf(h.taskEwma, h.taskSamples, healthMinSamples, nil)
	if med == 0 {
		return 0
	}
	rows := size
	if rows < healthSizeFloor {
		rows = healthSizeFloor
	}
	return time.Duration(med * float64(rows))
}

// TypicalDuration is the fleet-median raw attempt duration. Small tasks are
// dominated by fixed costs (fabric round-trips, comper queueing) the per-row
// Estimate cannot see; the hedge trigger takes the worse of the two models so
// fleet-typical fixed latency never reads as straggling.
func (h *healthTracker) TypicalDuration() time.Duration {
	return time.Duration(medianOf(h.durEwma, h.durSamples, healthMinSamples, nil))
}

// evaluate opens the circuit on closed workers scoring below threshold,
// bounded so at most maxQ workers are sidelined at once. Returns the workers
// newly quarantined.
func (h *healthTracker) evaluate(scores []float64, threshold float64, maxQ int, alive []bool) []int {
	quarantined := 0
	for _, s := range h.state {
		if s != circuitClosed {
			quarantined++
		}
	}
	var opened []int
	for w := range h.state {
		if alive != nil && w < len(alive) && !alive[w] {
			continue
		}
		if h.state[w] == circuitClosed && scores[w] < threshold && quarantined < maxQ {
			h.state[w] = circuitOpen
			quarantined++
			opened = append(opened, w)
		}
	}
	return opened
}

// probeDue starts a probe wave when any circuit is non-closed and the wave
// interval has elapsed. Open circuits move to half-open. The wave probes
// EVERY alive worker, not just suspects: the healthy workers' acks are the
// baseline the suspects' probation is judged against.
func (h *healthTracker) probeDue(now time.Time, alive []bool) (seq int64, workers []int) {
	any := false
	for _, s := range h.state {
		if s != circuitClosed {
			any = true
			break
		}
	}
	if !any || now.Sub(h.lastWave) < probeEvery {
		return 0, nil
	}
	h.lastWave = now
	h.probeSeq++
	h.waveAt[h.probeSeq] = now
	for s := range h.waveAt {
		if s < h.probeSeq-8 {
			delete(h.waveAt, s)
		}
	}
	for w := range h.state {
		if alive != nil && w < len(alive) && !alive[w] {
			continue
		}
		if h.state[w] == circuitOpen {
			h.state[w] = circuitHalfOpen
		}
		workers = append(workers, w)
	}
	return h.probeSeq, workers
}

// ProbeAck folds a probe round-trip into the RTT EWMA and, for a half-open
// worker, decides probation: restored (true) when the RTT is fleet-typical,
// back to open otherwise (the next wave retries). A restored worker's stale
// slow EWMAs are discarded so it is not instantly re-quarantined.
func (h *healthTracker) ProbeAck(w int, seq int64, now time.Time) (restored bool) {
	if h == nil || w < 0 || w >= len(h.state) {
		return false
	}
	sent, ok := h.waveAt[seq]
	if !ok {
		return false
	}
	rtt := now.Sub(sent)
	h.ObserveRTT(w, rtt)
	if h.state[w] != circuitHalfOpen {
		return false
	}
	base := medianOf(h.rttEwma, h.rttSamples, 1, func(x int) bool { return h.state[x] == circuitClosed })
	if base == 0 || float64(rtt) <= probePassFactor*base || rtt <= probeRTTFloor {
		h.state[w] = circuitClosed
		h.taskEwma[w], h.taskSamples[w] = 0, 0
		h.durEwma[w], h.durSamples[w] = 0, 0
		h.rttEwma[w], h.rttSamples[w] = 0, 0
		return true
	}
	h.state[w] = circuitOpen
	return false
}

// preferredMask returns the placement preference for the load balancer: nil
// when every circuit is closed (no constraint), else true exactly for closed
// workers.
func (h *healthTracker) preferredMask() []bool {
	if h == nil {
		return nil
	}
	all := true
	for _, s := range h.state {
		if s != circuitClosed {
			all = false
			break
		}
	}
	if all {
		return nil
	}
	mask := make([]bool, len(h.state))
	for w, s := range h.state {
		mask[w] = s == circuitClosed
	}
	return mask
}

// stateStrings renders the circuit states for telemetry.
func (h *healthTracker) stateStrings() []string {
	out := make([]string, len(h.state))
	for w, s := range h.state {
		out[w] = s.String()
	}
	return out
}

// --- master integration ---

// healthLoop is the gray-failure control loop: it refreshes scores, runs the
// quarantine circuit and its probe waves, and launches hedged attempts for
// tasks outliving the fleet latency estimate.
func (m *Master) healthLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(healthTick)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.healthTick(time.Now())
	}
}

func (m *Master) healthTick(now time.Time) {
	m.mu.Lock()
	scores := m.health.Scores(m.alive)
	var opened []int
	var probeSeq int64
	var probes []int
	if m.cfg.QuarantineThreshold > 0 {
		opened = m.health.evaluate(scores, m.cfg.QuarantineThreshold, m.cfg.MaxQuarantined, m.alive)
		probeSeq, probes = m.health.probeDue(now, m.alive)
		m.refreshMaskLocked()
	}
	var hedges []task.ID
	if m.cfg.HedgeFactor > 0 {
		hedges = m.hedgeCandidatesLocked(now)
	}
	m.obs.SetWorkerHealth(scores, m.health.stateStrings())
	m.mu.Unlock()

	for range opened {
		m.obs.WorkerQuarantined()
	}
	for _, w := range probes {
		m.send(w, ProbeMsg{Seq: probeSeq})
		m.obs.ProbeSent()
	}
	for _, id := range hedges {
		m.hedgeTask(id)
	}
}

func (m *Master) handleProbeAck(msg ProbeAckMsg) {
	m.mu.Lock()
	restored := m.health.ProbeAck(msg.Worker, msg.Seq, time.Now())
	if restored {
		m.refreshMaskLocked()
	}
	m.mu.Unlock()
	if restored {
		m.obs.WorkerRestored()
	}
}

// hedgeCandidatesLocked selects tasks whose sole attempt has outlived
// HedgeFactor × the fleet latency model: the worse of the size-scaled
// per-row estimate and the typical raw attempt duration.
func (m *Master) hedgeCandidatesLocked(now time.Time) []task.ID {
	outstanding := 0
	for _, entry := range m.tasks {
		if len(entry.attempts) > 1 {
			outstanding++
		}
	}
	var out []task.ID
	for id, entry := range m.tasks {
		if outstanding >= maxOutstandingHedges {
			break
		}
		if entry.hedged || entry.winner != 0 || len(entry.attempts) != 1 {
			continue
		}
		est := m.health.Estimate(entry.plan.size)
		typ := m.health.TypicalDuration()
		if est == 0 || typ == 0 {
			continue // estimator still cold
		}
		trigger := time.Duration(m.cfg.HedgeFactor * float64(max(est, typ)))
		if trigger < minHedgeDelay {
			trigger = minHedgeDelay
		}
		if now.Sub(entry.assignedAt) <= trigger {
			continue
		}
		out = append(out, id)
		outstanding++
	}
	return out
}

// hedgeTask launches a duplicate attempt for a slow task on workers disjoint
// from every outstanding attempt. Disjointness is a correctness requirement,
// not an optimisation: the worker task table is keyed by task ID alone, so a
// duplicate landing on an involved worker would overwrite the original
// attempt's state there. When placement cannot satisfy it — the load
// balancer's last-ditch owners[0] fallback may pick an excluded holder — the
// hedge is aborted and its charges reverted; the original keeps running and
// the per-attempt deadline remains the recovery of last resort.
func (m *Master) hedgeTask(id task.ID) {
	m.mu.Lock()
	entry, ok := m.tasks[id]
	if !ok || entry.hedged || entry.winner != 0 || len(entry.attempts) != 1 {
		m.mu.Unlock()
		return
	}
	p := entry.plan
	a, live := m.trees[p.tree]
	if !live || a.epoch != p.epoch {
		m.mu.Unlock()
		return
	}
	excluded := make(map[int]bool)
	for _, as := range entry.attempts {
		if p.kind == task.SubtreeTask {
			// Only the key worker holds wtask state for a subtree task; its
			// column servers answer stateless shard requests and may overlap.
			excluded[as.keyWorker] = true
		} else {
			for w := range as.involved {
				excluded[w] = true
			}
		}
	}
	avail := make([]bool, len(m.alive))
	spare := false
	for w := range avail {
		avail[w] = m.alive[w] && !excluded[w]
		spare = spare || avail[w]
	}
	if !spare {
		m.mu.Unlock()
		return // no spare capacity to hedge on
	}
	elig := loadbal.Eligibility{Alive: avail, Preferred: m.healthMask}
	var assignment loadbal.Assignment
	if p.kind == task.SubtreeTask {
		assignment = loadbal.AssignSubtree(m.matrix, m.placement, entry.spec.cols, p.size, p.parent.Worker, elig)
		if assignment.KeyWorker < 0 || excluded[assignment.KeyWorker] {
			m.matrix.Revert(assignment.Charges)
			m.mu.Unlock()
			return
		}
	} else {
		assignment = loadbal.AssignColumns(m.matrix, m.placement, entry.spec.cols, p.size, p.parent.Worker, elig)
		for _, w := range assignment.ColumnServer {
			if excluded[w] || !m.alive[w] {
				m.matrix.Revert(assignment.Charges)
				m.mu.Unlock()
				return
			}
		}
	}
	p.attempt++
	attempt := p.attempt
	as := newAttemptState(p.kind, attempt, true, assignment, time.Now(), entry.spec.hist)
	entry.attempts[attempt] = as
	entry.hedged = true
	spec := entry.spec
	m.obs.HedgeLaunched()
	m.mu.Unlock()

	m.shipAttempt(p, spec, attempt, assignment)
}
