package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"treeserver/internal/checkpoint"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/loadbal"
	"treeserver/internal/obs"
	"treeserver/internal/split"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// TreeSpec describes one decision tree for the master to train.
type TreeSpec struct {
	// Params are the model hyperparameters. Candidates hold original table
	// column indexes (nil = all non-target columns).
	Params core.Params
	// Bag selects the root rows; the zero value uses all rows.
	Bag BagSpec
}

// MasterConfig tunes the master's scheduling and fault handling.
type MasterConfig struct {
	NumWorkers int
	Policy     task.Policy
	// Heartbeat enables worker failure detection at this probe interval;
	// zero disables it (a worker is declared failed after 3 missed probes).
	Heartbeat time.Duration
	// Ablation selects the load-balancing or row-relay ablation (default
	// AblationNone, the full design).
	Ablation AblationMode
	// JobTimeout bounds Train; zero means no limit.
	JobTimeout time.Duration
	// TaskRetry enables master-side task re-execution: a task with no result
	// after TaskRetry (doubled per attempt) is revoked and requeued, up to
	// MaxTaskAttempts. It is the recovery of last resort for messages lost in
	// the fabric — transport retries cannot see a silently dropped delivery.
	// Zero disables re-execution.
	TaskRetry time.Duration
	// MaxTaskAttempts bounds executions per task (default 5 when TaskRetry
	// is set); exhausting it fails the job.
	MaxTaskAttempts int
	// HeartbeatBudget overrides the failure-detection budget: a worker is
	// declared failed when its freshest pong lags the cluster's freshest pong
	// by more than this many probes (default 20; negative is rejected).
	HeartbeatBudget int
	// MaxTreeRestarts bounds delegate-loss restarts per tree (default 8);
	// a tree exceeding it fails the job instead of restarting forever.
	MaxTreeRestarts int
	// CheckpointDir, when non-empty, enables durable master checkpointing:
	// a full snapshot at job start and end, an appended record per completed
	// tree, and (optionally) periodic snapshots. A restarted master recovers
	// the job from this directory via Resume.
	CheckpointDir string
	// CheckpointEvery adds periodic full snapshots between tree-completion
	// boundaries (0 = tree boundaries only). Only meaningful with
	// CheckpointDir set.
	CheckpointEvery time.Duration
	// StandbyName, when non-empty, enables the hot standby: every checkpoint
	// record is streamed to this transport endpoint as it is written locally,
	// and the master renews a failover lease against it. Streaming works with
	// or without CheckpointDir — a standby-backed cluster can run diskless.
	// The standby endpoint must exist before the master starts.
	StandbyName string
	// LeaseTTL is the failover lease duration (default 2s when StandbyName is
	// set): the primary renews at TTL/3 and the standby takes over once the
	// lease it watches has lapsed.
	LeaseTTL time.Duration
	// AdvertiseAddr, when non-empty, rides in rejoin requests so TCP workers
	// can repoint their master peer at a promoted standby's listen address.
	// In-memory fabrics rebind by name and leave it empty.
	AdvertiseAddr string
	// RejoinTimeout bounds the worker rejoin handshake during Resume
	// (default 10s). Workers that miss the deadline are treated as failed.
	RejoinTimeout time.Duration
	// Replicas is the column replication factor k the Resume reconciliation
	// restores (default 2, clamped to the number of rejoined workers).
	Replicas int
	// HedgeFactor enables hedged task execution: an attempt whose elapsed
	// time exceeds HedgeFactor × the fleet latency estimate for its size gets
	// a duplicate attempt on a disjoint set of healthy workers; the first
	// complete attempt wins and the loser is dropped. Zero disables hedging
	// (behaviour is then identical to a build without it). Typical: 3–8.
	HedgeFactor float64
	// QuarantineThreshold enables straggler quarantine: a worker whose
	// median-normalised health score falls below the threshold is excluded
	// from new placement until a probe round-trip returns at fleet-typical
	// speed. Zero disables quarantine. Typical: 0.1–0.5.
	QuarantineThreshold float64
	// MaxQuarantined bounds simultaneously quarantined workers (default
	// max(1, NumWorkers/4)), so scoring outliers can never drain placement
	// capacity; column reachability is additionally protected by placement
	// fallback, which bypasses quarantine rather than orphan a column.
	MaxQuarantined int
	// SplitMode selects exact (default) or histogram-approximate split
	// finding for column tasks; MaxBins and TopK tune the hist protocol
	// (defaults 64 and 2).
	SplitMode SplitMode
	MaxBins   int
	TopK      int
	// FleetCap bounds the fleet size live joins may grow to (0 = unbounded).
	// A join request that would push the fleet past the cap is rejected
	// non-retryably. Must be zero or at least NumWorkers.
	FleetCap int
	// Obs, when non-nil, receives the master's scheduling telemetry (B_plan
	// pushes, pool occupancy, task lifecycle spans).
	Obs *obs.Registry
}

// plan is a task not yet assigned to workers (an element of B_plan).
type plan struct {
	id      task.ID
	tree    int32
	node    *core.Node
	depth   int
	size    int
	parent  ParentRef
	kind    task.Kind
	rows    []int32 // relay-mode only
	tries   int     // extra-trees column redraws
	epoch   int     // assembly epoch; a restarted tree invalidates old plans
	attempt int     // attempt fence; bumped per shipped attempt, hedges included
	spawns  int     // full (non-hedge) executions; drives MaxTaskAttempts and backoff
}

// attemptState is one outstanding execution of a task. A task normally has a
// single attempt; hedging adds duplicates that race it, and the first
// complete attempt wins while the losers' late messages die on their stale
// attempt numbers.
type attemptState struct {
	attempt    int
	hedge      bool
	charges    []loadbal.Charge
	involved   map[int]bool
	keyWorker  int          // subtree-task key worker; -1 for column tasks
	got        map[int]bool // workers whose result arrived (dedups retries)
	expected   int
	received   int
	best       split.Candidate
	bestWorker int
	stats      NodeStats
	statsSet   bool
	assignedAt time.Time // when this attempt's plans were shipped

	// Hist-mode aggregation state. Votes are kept per worker and flattened
	// in sorted worker order at election time, so arrival order can never
	// change the elected columns. perCols is the attempt's column→worker
	// assignment, consulted to route histogram fetches.
	hist      bool
	perCols   map[int][]int
	votesBy   map[int][]split.Candidate
	fetching  bool
	fetchWant int
	fetchGot  map[int]bool
	fetchCol  map[int]int // elected column -> owning worker
	hists     map[int]*split.Hist
}

// shipSpec captures everything assignAndSend resolved about the task's work
// content — candidate columns, extra-trees draw, subtree params — so a hedged
// duplicate ships byte-identical work and both attempts compute the same
// result.
type shipSpec struct {
	cols          []int
	random        bool
	drawSeed      int64
	subtreeParams core.Params
	measure       impurity.Measure
	numClasses    int
	maxExh        int
	hist          bool // histogram-mode column task (top-k vote protocol)
	topK          int
}

// mtask is the master-side task table entry: the plan, the work spec, and
// the set of outstanding attempts racing to complete it.
type mtask struct {
	plan        *plan
	spec        shipSpec
	attempts    map[int]*attemptState
	winner      int       // confirmed attempt number (column tasks); 0 = undecided
	hedged      bool      // a hedge was already launched for this execution round
	assignedAt  time.Time // first attempt ship time — the retry-deadline base
	confirmedAt time.Time // when the winning split was confirmed (column tasks)
}

// assembly tracks one tree under construction.
type assembly struct {
	index    int // slot in the job's result slice
	spec     TreeSpec
	root     *core.Node
	features []int
	rng      *rand.Rand // extra-trees column draws
	measure  impurity.Measure
	epoch    int // bumped on fault-recovery restart
}

// Master is the TreeServer master: it owns tree disassembly, the B_plan
// deque, the task table, worker assignment and tree reassembly. It never
// touches row data (Section V).
type Master struct {
	ep     transport.Endpoint
	cfg    MasterConfig
	schema Schema

	placement loadbal.Placement
	matrix    *loadbal.Matrix
	bplan     *task.Deque[*plan]
	prog      *task.Progress
	obs       *obs.MasterObs // nil when telemetry is disabled

	mu           sync.Mutex
	tasks        map[task.ID]*mtask
	trees        map[int32]*assembly
	pendingTrees []*assembly
	active       int
	nextTaskID   task.ID
	nextTreeID   int32
	rrCounter    int

	results   []*core.Tree
	remaining int
	jobErr    error
	jobDone   chan struct{}
	jobMu     sync.Mutex

	// Durable checkpointing (nil/zero when CheckpointDir is unset). gen
	// fences task IDs across master incarnations: a resumed master allocates
	// IDs from gen<<40, so results a pre-crash worker emits for old task IDs
	// can never match a post-restart task table entry.
	ck       *checkpoint.Writer
	gen      int64
	jobSpecs []TreeSpec

	// sink is where checkpoint records go: the file writer, the standby
	// stream, both, or nil when neither is configured. streamCh decouples
	// record emission (under m.mu) from fabric sends; lease is the failover
	// lease machine (nil without a standby), guarded by leaseMu because the
	// lease and renew loops race the recv loop's ack handling.
	sink       checkpoint.Sink
	streamCh   chan CkptRecordMsg
	streamSent atomic.Int64
	lease      *leaseMachine
	leaseMu    sync.Mutex

	// Rejoin handshake state (only non-nil while Resume is collecting).
	rejoinGen     int64
	rejoinReports map[int][]int
	rejoinCh      chan struct{}

	alive    []bool
	lastPong []time.Time
	lastSeq  []int64

	// Elastic-fleet state. fleetSize atomically mirrors cfg.NumWorkers so
	// the unlocked loops (heartbeat pings, shutdown broadcast, rejoin) see
	// live fleet growth; hbSeq is the heartbeat probe sequence, kept under
	// m.mu so an admitted joiner can start at the current value and get a
	// full lag budget from the failure detector; draining cordons workers
	// mid-drain (composed into healthMask); joins holds in-flight join
	// handshakes; targetY retains the last SetTarget payload so a joiner
	// can be caught up mid-boosting.
	fleetSize  atomic.Int64
	hbSeq      int64
	draining   []bool
	joins      map[int]*joinState
	targetY    []float64
	copyLanded map[[2]int]bool // (worker, col) column copies acknowledged

	// Gray-failure tolerance (nil unless HedgeFactor or QuarantineThreshold
	// is set). healthMask is the cached quarantine preference handed to the
	// load balancer: nil when every worker is in good standing.
	health     *healthTracker
	healthMask []bool

	targetSeq   int64
	targetAcks  map[int]bool
	targetAckCh chan struct{}
	targetWant  int

	// Hist-mode bin state: the merged immutable bins per feature column,
	// plus the transient proposal/ack collection of the quorum round.
	binSeq    int64
	binsReady bool
	bins      map[int]split.Bins
	binProps  map[int]*BinProposalMsg
	binPropCh chan struct{}
	binAcks   map[int]bool
	binAckCh  chan struct{}
	binWant   int

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// NewMaster builds a master over the given endpoint. placement must match
// the columns actually loaded on the workers. With CheckpointDir set it also
// opens (creating if necessary) the checkpoint directory; a directory that
// cannot be opened is an error up front, not a silent loss of durability.
func NewMaster(ep transport.Endpoint, schema Schema, placement loadbal.Placement, cfg MasterConfig) (*Master, error) {
	if cfg.Policy == (task.Policy{}) {
		cfg.Policy = task.DefaultPolicy()
	}
	if cfg.HeartbeatBudget < 0 {
		return nil, fmt.Errorf("cluster: HeartbeatBudget %d is negative", cfg.HeartbeatBudget)
	}
	if cfg.HeartbeatBudget == 0 {
		cfg.HeartbeatBudget = heartbeatMissedProbes
	}
	if cfg.MaxTreeRestarts < 0 {
		return nil, fmt.Errorf("cluster: MaxTreeRestarts %d is negative", cfg.MaxTreeRestarts)
	}
	if cfg.MaxTreeRestarts == 0 {
		cfg.MaxTreeRestarts = defaultMaxTreeRestarts
	}
	if cfg.HedgeFactor < 0 {
		return nil, fmt.Errorf("cluster: HedgeFactor %g is negative", cfg.HedgeFactor)
	}
	if cfg.QuarantineThreshold < 0 || cfg.QuarantineThreshold >= 1 {
		return nil, fmt.Errorf("cluster: QuarantineThreshold %g outside [0,1)", cfg.QuarantineThreshold)
	}
	if cfg.MaxQuarantined < 0 {
		return nil, fmt.Errorf("cluster: MaxQuarantined %d is negative", cfg.MaxQuarantined)
	}
	if cfg.MaxQuarantined == 0 {
		cfg.MaxQuarantined = cfg.NumWorkers / 4
		if cfg.MaxQuarantined < 1 {
			cfg.MaxQuarantined = 1
		}
	}
	if cfg.FleetCap < 0 {
		return nil, fmt.Errorf("cluster: FleetCap %d is negative", cfg.FleetCap)
	}
	if cfg.FleetCap > 0 && cfg.FleetCap < cfg.NumWorkers {
		return nil, fmt.Errorf("cluster: FleetCap %d below initial fleet %d", cfg.FleetCap, cfg.NumWorkers)
	}
	if cfg.SplitMode >= splitModes {
		return nil, fmt.Errorf("cluster: unknown SplitMode(%d)", uint8(cfg.SplitMode))
	}
	if cfg.MaxBins < 0 || cfg.MaxBins == 1 || cfg.MaxBins > 60000 {
		return nil, fmt.Errorf("cluster: MaxBins %d must be 0 (default) or in [2, 60000]", cfg.MaxBins)
	}
	if cfg.TopK < 0 {
		return nil, fmt.Errorf("cluster: TopK %d is negative", cfg.TopK)
	}
	if cfg.SplitMode == SplitHist {
		if cfg.MaxBins == 0 {
			cfg.MaxBins = 64
		}
		if cfg.TopK == 0 {
			cfg.TopK = 2
		}
	}
	// Own the Kinds slice: SetTarget mutates it in place, and a master built
	// by a promoted standby shares the caller's backing array with the old
	// incarnation otherwise.
	schema.Kinds = append([]dataset.Kind(nil), schema.Kinds...)
	m := &Master{
		ep: ep, cfg: cfg, schema: schema,
		placement: placement,
		matrix:    loadbal.NewMatrix(cfg.NumWorkers),
		bplan:     &task.Deque[*plan]{},
		prog:      task.NewProgress(),
		obs:       cfg.Obs.Master(),
		tasks:     map[task.ID]*mtask{},
		trees:     map[int32]*assembly{},
		alive:     make([]bool, cfg.NumWorkers),
		lastPong:  make([]time.Time, cfg.NumWorkers),
		lastSeq:   make([]int64, cfg.NumWorkers),
		draining:  make([]bool, cfg.NumWorkers),
		joins:     map[int]*joinState{},
		stop:      make(chan struct{}),
	}
	m.fleetSize.Store(int64(cfg.NumWorkers))
	for i := range m.alive {
		m.alive[i] = true
		m.lastPong[i] = time.Now()
	}
	if cfg.HedgeFactor > 0 || cfg.QuarantineThreshold > 0 {
		m.health = newHealthTracker(cfg.NumWorkers)
	}
	if cfg.LeaseTTL < 0 {
		return nil, fmt.Errorf("cluster: LeaseTTL %v is negative", cfg.LeaseTTL)
	}
	if cfg.LeaseTTL > 0 && cfg.StandbyName == "" {
		return nil, fmt.Errorf("cluster: LeaseTTL set without StandbyName")
	}
	if cfg.StandbyName != "" && cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	m.cfg = cfg
	var sinks []checkpoint.Sink
	if cfg.CheckpointDir != "" {
		ck, err := checkpoint.NewWriter(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		m.ck = ck
		sinks = append(sinks, ck)
	}
	if cfg.StandbyName != "" {
		m.streamCh = make(chan CkptRecordMsg, streamBuffer)
		m.lease = newLeaseMachine(cfg.LeaseTTL)
		sinks = append(sinks, checkpoint.NewStreamSink(m.emitRecordLocked))
	}
	m.sink = checkpoint.MultiSink(sinks...)
	return m, nil
}

// Start launches the master's main and receiving threads (θ_main, θ_recv)
// and, when configured, the heartbeat prober.
func (m *Master) Start() {
	m.wg.Add(2)
	go m.mainLoop()
	go m.recvLoop()
	if m.cfg.Heartbeat > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
	if m.cfg.TaskRetry > 0 {
		m.wg.Add(1)
		go m.retryLoop()
	}
	if m.sink != nil && m.cfg.CheckpointEvery > 0 {
		m.wg.Add(1)
		go m.checkpointLoop()
	}
	if m.health != nil {
		m.wg.Add(1)
		go m.healthLoop()
	}
	if m.cfg.StandbyName != "" {
		m.wg.Add(2)
		go m.streamLoop()
		go m.leaseLoop()
	}
}

// Stop shuts the master down and notifies workers to terminate.
func (m *Master) Stop() {
	m.stopOnce.Do(func() {
		close(m.stop)
		for w := 0; w < m.fleet(); w++ {
			_ = m.ep.Send(WorkerName(w), ShutdownMsg{})
		}
		m.ep.Close()
	})
	m.wg.Wait()
	if m.sink != nil {
		m.sink.Close()
	}
}

// Kill simulates a master crash: loops stop and the endpoint dies without any
// shutdown notice to the workers, which keep their column shards and target
// column. Only the checkpoint file handles are released (every checkpoint
// write is already fsynced, so closing adds no durability a crash would lack)
// — a replacement master recovers the job via Resume.
func (m *Master) Kill() {
	m.stopOnce.Do(func() {
		close(m.stop)
		m.ep.Close()
	})
	m.wg.Wait()
	if m.sink != nil {
		m.sink.Close()
	}
}

// CompletedTrees reports how many of the current job's trees are finished —
// the probe crash-recovery tests use to time a mid-job master kill.
func (m *Master) CompletedTrees() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.results {
		if t != nil {
			n++
		}
	}
	return n
}

// TransportStats exposes the master's traffic counters — the quantity the
// Section-V design is measured by.
func (m *Master) TransportStats() transport.Stats { return m.ep.Stats() }

// WorkloadSnapshot returns the current M_work contents.
func (m *Master) WorkloadSnapshot() [][3]float64 { return m.matrix.Snapshot() }

// Train runs one job: it trains every spec'd tree (at most n_pool under
// construction at a time) and returns them in spec order. Train serialises
// concurrent callers.
func (m *Master) Train(specs []TreeSpec) ([]*core.Tree, error) {
	m.jobMu.Lock()
	defer m.jobMu.Unlock()
	if len(specs) == 0 {
		return nil, nil
	}
	if m.cfg.SplitMode == SplitHist {
		// Bins are proposed once per cluster and survive SetTarget rounds —
		// they discretise feature columns, which never change.
		if err := m.ensureBins(); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	m.results = make([]*core.Tree, len(specs))
	m.remaining = len(specs)
	m.jobErr = nil
	m.jobDone = make(chan struct{})
	m.jobSpecs = specs
	// The initial snapshot makes the job spec itself durable before any task
	// is planned: a master killed a microsecond later already resumes.
	m.writeSnapshotLocked()
	for i, spec := range specs {
		m.pendingTrees = append(m.pendingTrees, m.newAssembly(i, spec))
	}
	done := m.jobDone
	m.mu.Unlock()

	return m.awaitJob(done)
}

// awaitJob blocks until the current job completes (or times out / the master
// stops) and returns its result, writing the final snapshot on success.
func (m *Master) awaitJob(done chan struct{}) ([]*core.Tree, error) {
	if m.cfg.JobTimeout > 0 {
		select {
		case <-done:
		case <-time.After(m.cfg.JobTimeout):
			return nil, fmt.Errorf("cluster: job timed out after %v", m.cfg.JobTimeout)
		case <-m.stop:
			return nil, fmt.Errorf("cluster: master stopped")
		}
	} else {
		select {
		case <-done:
		case <-m.stop:
			return nil, fmt.Errorf("cluster: master stopped")
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.jobErr != nil {
		return nil, m.jobErr
	}
	// The final snapshot compacts the append log: a restart after this point
	// restores every tree from one record and re-trains nothing.
	m.writeSnapshotLocked()
	return m.results, nil
}

func (m *Master) newAssembly(index int, spec TreeSpec) *assembly {
	if spec.Bag.NumRows == 0 {
		spec.Bag.NumRows = m.schema.NumRows
	}
	features := spec.Params.Candidates
	if features == nil {
		features = make([]int, 0, m.schema.NumCols-1)
		for c := 0; c < m.schema.NumCols; c++ {
			if c != m.schema.Target {
				features = append(features, c)
			}
		}
	}
	spec.Params.Candidates = features
	measure := spec.Params.Measure
	if m.schema.Task == dataset.Regression {
		measure = impurity.Variance
	} else if !measure.ForClassification() {
		measure = impurity.Gini
	}
	spec.Params.Measure = measure
	if spec.Params.MinLeaf < 1 {
		spec.Params.MinLeaf = 1
	}
	return &assembly{
		index: index, spec: spec, features: features,
		rng: rand.New(rand.NewSource(spec.Params.Seed ^ 0x5eed)), measure: measure,
	}
}

// --- θ_main: admission and plan assignment ---

func (m *Master) mainLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		m.mu.Lock()
		for m.active < m.cfg.Policy.NPool && len(m.pendingTrees) > 0 {
			a := m.pendingTrees[0]
			m.pendingTrees = m.pendingTrees[1:]
			m.admitTreeLocked(a)
		}
		m.mu.Unlock()

		p, ok := m.bplan.PopHead()
		if !ok {
			// The paper's θ_main sleeps 100 µs between probes of B_plan.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		m.obs.SetDequeDepth(m.bplan.Len())
		m.assignAndSend(p)
	}
}

func (m *Master) admitTreeLocked(a *assembly) {
	tid := m.nextTreeID
	m.nextTreeID++
	m.trees[tid] = a
	m.active++
	size := a.spec.Bag.Size()
	a.root = &core.Node{Depth: 0, N: size}
	root := &plan{
		id: m.newTaskIDLocked(), tree: tid, node: a.root,
		depth: 0, size: size,
		parent: ParentRef{Worker: -1, Bag: a.spec.Bag},
		kind:   m.cfg.Policy.KindFor(size),
		epoch:  a.epoch,
	}
	if m.cfg.Ablation == AblationRelayRows {
		root.rows = a.spec.Bag.Rows()
	}
	m.prog.Add(tid, 1)
	m.bplan.Push(root, size, m.cfg.Policy)
	m.obs.SetPool(m.active)
	m.obs.PlanPushed(m.cfg.Policy.DepthFirst(size))
	m.obs.SetDequeDepth(m.bplan.Len())
}

func (m *Master) newTaskIDLocked() task.ID {
	m.nextTaskID++
	return m.nextTaskID
}

// assignAndSend computes the plan's worker assignment (Section VI) and ships
// the plan messages.
func (m *Master) assignAndSend(p *plan) {
	m.mu.Lock()
	a, ok := m.trees[p.tree]
	if !ok || a.epoch != p.epoch { // tree restarted or completed during recovery
		m.mu.Unlock()
		return
	}
	cols := a.spec.Params.Candidates
	randomDraw := a.spec.Params.ExtraTrees
	var drawSeed int64
	if randomDraw && p.kind == task.ColumnTask {
		cols = []int{a.features[a.rng.Intn(len(a.features))]}
		drawSeed = a.rng.Int63()
	}
	subtreeParams := a.spec.Params
	if randomDraw {
		subtreeParams.Seed = a.rng.Int63()
	}
	elig := loadbal.Eligibility{
		Alive:     append([]bool(nil), m.alive...),
		Preferred: m.healthMask,
	}
	var assignment loadbal.Assignment
	if m.cfg.Ablation == AblationRoundRobin {
		assignment = loadbal.AssignRoundRobin(m.placement, cols, &m.rrCounter, p.kind == task.SubtreeTask)
	} else if p.kind == task.SubtreeTask {
		assignment = loadbal.AssignSubtree(m.matrix, m.placement, cols, p.size, p.parent.Worker, elig)
	} else {
		assignment = loadbal.AssignColumns(m.matrix, m.placement, cols, p.size, p.parent.Worker, elig)
	}

	p.attempt++
	p.spawns++
	attempt := p.attempt // capture under the lock; retryLoop may bump it later
	spec := shipSpec{
		cols: cols, random: randomDraw, drawSeed: drawSeed,
		subtreeParams: subtreeParams,
		measure:       a.measure, numClasses: m.schema.NumClasses,
		maxExh: a.spec.Params.MaxExhaustiveLevels,
		// Extra-trees draws stay exact: a single random threshold needs the
		// raw values, not bins.
		hist: m.cfg.SplitMode == SplitHist && p.kind == task.ColumnTask && !randomDraw,
		topK: m.cfg.TopK,
	}
	now := time.Now()
	as := newAttemptState(p.kind, attempt, false, assignment, now, spec.hist)
	entry := &mtask{
		plan: p, spec: spec,
		attempts:   map[int]*attemptState{attempt: as},
		assignedAt: now,
	}
	m.tasks[p.id] = entry
	m.obs.TaskPlanned(p.size, attempt)
	m.mu.Unlock()

	m.shipAttempt(p, spec, attempt, assignment)
}

// newAttemptState builds the bookkeeping for one shipped attempt from its
// worker assignment.
func newAttemptState(kind task.Kind, attempt int, hedge bool, assignment loadbal.Assignment, now time.Time, hist bool) *attemptState {
	as := &attemptState{
		attempt: attempt, hedge: hedge, charges: assignment.Charges,
		involved: map[int]bool{}, got: map[int]bool{},
		keyWorker: -1, assignedAt: now,
	}
	if kind == task.SubtreeTask {
		as.expected = 1
		as.keyWorker = assignment.KeyWorker
		as.involved[assignment.KeyWorker] = true
		for _, w := range assignment.ColumnServer {
			as.involved[w] = true
		}
	} else {
		perWorker := assignment.PerWorkerColumns()
		as.expected = len(perWorker)
		for w := range perWorker {
			as.involved[w] = true
		}
		if hist {
			as.hist = true
			as.perCols = perWorker
			as.votesBy = map[int][]split.Candidate{}
		}
	}
	return as
}

// shipAttempt sends one attempt's plan messages. Called without m.mu held; a
// hedged duplicate ships the same spec as the original, so both attempts
// compute identical results.
func (m *Master) shipAttempt(p *plan, spec shipSpec, attempt int, assignment loadbal.Assignment) {
	if p.kind == task.SubtreeTask {
		m.send(assignment.KeyWorker, SubtreePlanMsg{
			Task: p.id, Attempt: attempt, Tree: p.tree, Depth: p.depth, Size: p.size,
			Parent: p.parent, Params: spec.subtreeParams, ColServer: assignment.ColumnServer,
			Rows: p.rows,
		})
		return
	}
	for w, wcols := range assignment.PerWorkerColumns() {
		m.send(w, ColumnPlanMsg{
			Task: p.id, Attempt: attempt, Tree: p.tree, Depth: p.depth, Size: p.size,
			Cols: wcols, Parent: p.parent,
			Measure: spec.measure, NumClasses: spec.numClasses, MaxExh: spec.maxExh,
			Random: spec.random, RandomSeed: spec.drawSeed,
			Hist: spec.hist, TopK: spec.topK,
			Rows: p.rows,
		})
	}
}

// send ships a control message with bounded retry: transient fabric errors
// are retried under the default backoff policy, permanent ones (peer crashed,
// endpoint closed) are left to the fault-recovery path. Deliveries the fabric
// silently loses are recovered by task re-execution (retryLoop), not here.
func (m *Master) send(worker int, payload any) {
	_ = transport.SendWithRetry(m.ep, WorkerName(worker), payload, transport.DefaultRetryPolicy())
}

// --- θ_recv: result processing and tree assembly ---

func (m *Master) recvLoop() {
	defer m.wg.Done()
	for {
		env, ok := m.ep.Recv()
		if !ok {
			// Distinguish orderly shutdown from the endpoint dying under us:
			// a standby takeover rebinds the master's transport name, which
			// closes this incarnation's mailbox. Without the check the old
			// primary would sit in awaitJob until the job timeout.
			select {
			case <-m.stop:
			default:
				m.fence()
			}
			return
		}
		switch msg := env.Payload.(type) {
		case ColumnResultMsg:
			m.handleColumnResult(msg)
		case SplitDoneMsg:
			m.handleSplitDone(msg)
		case SubtreeResultMsg:
			m.handleSubtreeResult(msg)
		case PongMsg:
			m.mu.Lock()
			if msg.Worker >= 0 && msg.Worker < len(m.lastPong) {
				m.lastPong[msg.Worker] = time.Now()
				if msg.Seq > m.lastSeq[msg.Worker] {
					m.lastSeq[msg.Worker] = msg.Seq
				}
				m.health.PongReceived(msg.Worker, msg.Seq, time.Now())
			}
			m.mu.Unlock()
		case ProbeAckMsg:
			m.handleProbeAck(msg)
		case TargetAckMsg:
			m.handleTargetAck(msg)
		case TopKVoteMsg:
			m.handleTopKVote(msg)
		case HistogramMsg:
			m.handleHistogram(msg)
		case BinProposalMsg:
			m.handleBinProposal(msg)
		case BinAckMsg:
			m.handleBinAck(msg)
		case RejoinReportMsg:
			m.handleRejoinReport(msg)
		case JoinRequestMsg:
			m.handleJoinRequest(msg)
		case JoinReadyMsg:
			m.handleJoinReady(msg)
		case DrainRequestMsg:
			// Drain blocks until the worker quiesces; never stall θ_recv.
			go func() { _ = m.Drain(msg.Worker) }()
		case ColumnCopyAckMsg:
			m.handleColumnCopyAck(msg)
		case LeaseAckMsg:
			m.handleLeaseAck(msg)
		case TakeoverMsg:
			m.handleTakeover(msg)
		case WorkerErrorMsg:
			m.handleWorkerError(msg)
		}
	}
}

func (m *Master) handleColumnResult(msg ColumnResultMsg) {
	m.mu.Lock()
	entry, ok := m.tasks[msg.Task]
	if !ok || entry.winner != 0 {
		m.mu.Unlock()
		return // unknown task, or the race is already decided
	}
	as, ok := entry.attempts[msg.Attempt]
	if !ok || as.got[msg.Worker] {
		m.mu.Unlock()
		return // revoked/superseded attempt, or duplicate delivery
	}
	as.got[msg.Worker] = true
	as.received++
	if !as.statsSet {
		as.stats, as.statsSet = msg.Stats, true
	}
	if msg.Best.Valid && msg.Best.Better(as.best) {
		as.best = msg.Best
		as.bestWorker = msg.Worker
	}
	if m.health != nil {
		m.health.ObserveTask(msg.Worker, entry.plan.size, time.Since(as.assignedAt))
	}
	if as.received < as.expected {
		m.mu.Unlock()
		return
	}
	m.decideSplitLocked(entry, as)
	m.mu.Unlock()
}

// decideSplitLocked runs once all column results for one attempt are in. That
// attempt wins the race: any other outstanding attempts are cancelled before
// the split is confirmed, so exactly one worker ever applies it.
func (m *Master) decideSplitLocked(entry *mtask, as *attemptState) {
	p := entry.plan
	a := m.trees[p.tree]
	if a == nil {
		return
	}
	if as.stats.Pure || !as.best.Valid {
		if !as.best.Valid && !as.stats.Pure && a.spec.Params.ExtraTrees && p.tries < len(a.features) {
			// Extra-trees drew a constant column: redraw and retry.
			p.tries++
			m.cancelAttemptsLocked(entry, nil)
			delete(m.tasks, p.id)
			m.bplan.PushHead(p)
			m.obs.TaskRetried()
			m.obs.PlanRequeued()
			m.obs.SetDequeDepth(m.bplan.Len())
			return
		}
		m.makeLeafLocked(entry, as)
		return
	}
	entry.winner = as.attempt
	m.resolveRaceLocked(entry, as)
	// Confirm the winner; everyone else in the attempt drops their task object.
	for w := range as.involved {
		if w != as.bestWorker {
			m.send(w, DropTaskMsg{Task: p.id, Attempt: as.attempt})
		}
	}
	entry.confirmedAt = time.Now()
	m.obs.TaskConfirmed(entry.confirmedAt.Sub(entry.assignedAt))
	m.send(as.bestWorker, ConfirmSplitMsg{Task: p.id, Attempt: as.attempt, Cond: as.best.Cond, Relay: m.cfg.Ablation == AblationRelayRows})
}

// resolveRaceLocked cancels every attempt other than the winner: losers get
// attempt-tagged DropTask messages (their attempt numbers, so a drop can
// never hit the winner's state) and their cost-model charges are reverted.
func (m *Master) resolveRaceLocked(entry *mtask, winner *attemptState) {
	for n, as := range entry.attempts {
		if n == winner.attempt {
			continue
		}
		m.cancelOneAttemptLocked(entry, as)
		delete(entry.attempts, n)
	}
	if winner.hedge {
		m.obs.HedgeWon()
	}
}

// cancelOneAttemptLocked revokes a single attempt at its (alive) workers and
// reverts its charges.
func (m *Master) cancelOneAttemptLocked(entry *mtask, as *attemptState) {
	for w := range as.involved {
		if w >= 0 && w < len(m.alive) && m.alive[w] {
			m.send(w, DropTaskMsg{Task: entry.plan.id, Attempt: as.attempt})
		}
	}
	m.matrix.Revert(as.charges)
	if as.hedge {
		m.obs.HedgeWasted()
	}
}

// cancelAttemptsLocked revokes every outstanding attempt; keep, when non-nil,
// is dropped from the table without DropTask sends (its workers are already
// done with the task).
func (m *Master) cancelAttemptsLocked(entry *mtask, keep *attemptState) {
	for n, as := range entry.attempts {
		if keep != nil && n == keep.attempt {
			m.matrix.Revert(as.charges)
			continue
		}
		m.cancelOneAttemptLocked(entry, as)
	}
	entry.attempts = map[int]*attemptState{}
	entry.hedged = false
}

// makeLeafLocked turns the task's node into a leaf (pure node, or no column
// admits a split).
func (m *Master) makeLeafLocked(entry *mtask, as *attemptState) {
	p := entry.plan
	if as.statsSet {
		as.stats.Fill(p.node)
	}
	entry.winner = as.attempt
	m.resolveRaceLocked(entry, as)
	for w := range as.involved {
		m.send(w, DropTaskMsg{Task: p.id, Attempt: as.attempt})
	}
	m.matrix.Revert(as.charges)
	delete(m.tasks, p.id)
	m.obs.TaskCompleted()
	m.releaseParentLocked(p)
	m.finishTaskLocked(p)
}

func (m *Master) handleSplitDone(msg SplitDoneMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.tasks[msg.Task]
	if !ok || entry.winner != msg.Attempt {
		return
	}
	as, ok := entry.attempts[msg.Attempt]
	if !ok {
		return
	}
	p := entry.plan
	a := m.trees[p.tree]
	if a == nil {
		return
	}
	cond := as.best.Cond
	cond.Rehydrate()
	p.node.Cond = &cond
	p.node.SeenCodes = msg.SeenCodes
	if as.statsSet {
		as.stats.Fill(p.node)
	}

	left := &core.Node{Depth: p.depth + 1}
	msg.LeftStats.Fill(left)
	right := &core.Node{Depth: p.depth + 1}
	msg.RightStats.Fill(right)
	p.node.Left, p.node.Right = left, right

	// Children are created (and possibly planned) before the parent's
	// progress decrement, preserving the paper's T_prog ordering rule.
	m.spawnChildLocked(a, p, msg.Worker, 0, left, msg.LeftN, msg.LeftStats, msg.LeftRows)
	m.spawnChildLocked(a, p, msg.Worker, 1, right, msg.RightN, msg.RightStats, msg.RightRows)

	m.matrix.Revert(as.charges)
	delete(m.tasks, p.id)
	m.obs.TaskCompleted()
	if !entry.confirmedAt.IsZero() {
		m.obs.SplitApplied(time.Since(entry.confirmedAt))
	}
	m.releaseParentLocked(p)
	m.finishTaskLocked(p)
}

// spawnChildLocked decides the fate of one child node: leaf (stats are
// already in hand, so release the delegate's rows immediately) or a new
// column-/subtree-task pushed into B_plan under the hybrid policy.
func (m *Master) spawnChildLocked(a *assembly, p *plan, delegate int, side uint8, node *core.Node, size int, stats NodeStats, rows []int32) {
	params := a.spec.Params
	depth := p.depth + 1
	isLeaf := stats.Pure || size <= params.MinLeaf ||
		(params.MaxDepth > 0 && depth >= params.MaxDepth)
	if isLeaf {
		m.send(delegate, ReleaseSideMsg{Task: p.id, Side: side})
		return
	}
	child := &plan{
		id: m.newTaskIDLocked(), tree: p.tree, node: node,
		depth: depth, size: size,
		parent: ParentRef{Task: p.id, Side: side, Worker: delegate},
		kind:   m.cfg.Policy.KindFor(size),
		epoch:  p.epoch,
	}
	if m.cfg.Ablation == AblationRelayRows {
		child.rows = rows
	}
	m.prog.Add(p.tree, 1)
	m.bplan.Push(child, size, m.cfg.Policy)
	m.obs.PlanPushed(m.cfg.Policy.DepthFirst(size))
	m.obs.SetDequeDepth(m.bplan.Len())
}

func (m *Master) handleSubtreeResult(msg SubtreeResultMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.tasks[msg.Task]
	if !ok || entry.winner != 0 {
		return
	}
	as, ok := entry.attempts[msg.Attempt]
	if !ok {
		return
	}
	p := entry.plan
	if _, live := m.trees[p.tree]; !live {
		return
	}
	// First complete attempt wins: losers are dropped before the graft.
	entry.winner = as.attempt
	m.resolveRaceLocked(entry, as)
	if m.health != nil {
		m.health.ObserveTask(msg.Worker, p.size, time.Since(as.assignedAt))
	}
	graft(p.node, msg.Subtree.Root, p.depth)
	m.matrix.Revert(as.charges)
	delete(m.tasks, p.id)
	m.obs.TaskCompleted()
	m.releaseParentLocked(p)
	m.finishTaskLocked(p)
}

// graft copies the built subtree into the assembly slot, shifting node
// depths from subtree-local to absolute.
func graft(slot, subRoot *core.Node, depthOffset int) {
	var shift func(*core.Node)
	shift = func(n *core.Node) {
		if n == nil {
			return
		}
		n.Depth += depthOffset
		shift(n.Left)
		shift(n.Right)
	}
	shift(subRoot)
	*slot = *subRoot
}

func (m *Master) releaseParentLocked(p *plan) {
	if !p.parent.IsRoot() {
		m.send(p.parent.Worker, ReleaseSideMsg{Task: p.parent.Task, Side: p.parent.Side})
	}
}

// finishTaskLocked records the task's completion in T_prog; a zero count
// means the tree is fully built, so it is finalised and its memory released
// — the paper's flush-as-soon-as-complete behaviour.
func (m *Master) finishTaskLocked(p *plan) {
	if !m.prog.Done(p.tree) {
		return
	}
	a := m.trees[p.tree]
	delete(m.trees, p.tree)
	m.active--
	m.obs.SetPool(m.active)
	tree := finalizeTree(a.root, m.schema)
	if m.results != nil && a.index < len(m.results) {
		m.results[a.index] = tree
		m.remaining--
		m.appendTreeDoneLocked(a.index, tree)
		if m.remaining == 0 && m.jobDone != nil {
			close(m.jobDone)
		}
	}
}

// finalizeTree renumbers nodes in pre-order and computes the summary fields,
// matching the serial trainer's bookkeeping.
func finalizeTree(root *core.Node, schema Schema) *core.Tree {
	t := &core.Tree{Root: root, Task: schema.Task, NumClasses: schema.NumClasses}
	id := int32(0)
	var walk func(*core.Node)
	walk = func(n *core.Node) {
		if n == nil {
			return
		}
		n.ID = id
		id++
		if n.Depth > t.MaxDepth {
			t.MaxDepth = n.Depth
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	t.NumNodes = int(id)
	return t
}

func (m *Master) handleWorkerError(msg WorkerErrorMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, live := m.tasks[msg.Task]
	if !live && msg.Task != 0 {
		return // stale error from a revoked task
	}
	if msg.Worker >= 0 && msg.Worker < len(m.alive) && !m.alive[msg.Worker] {
		return
	}
	if live && m.cfg.TaskRetry > 0 {
		// A transient protocol failure (lost rows, missing replica mid-copy):
		// re-execute the task instead of failing the job.
		m.requeueTaskLocked(msg.Task, entry, fmt.Sprintf("worker %d: %s", msg.Worker, msg.Err))
		return
	}
	m.failJobLocked(fmt.Errorf("cluster: worker %d task %d: %s", msg.Worker, msg.Task, msg.Err))
}

// --- Task re-execution (recovery of last resort for lost messages) ---

// retryLoop periodically revokes and requeues tasks whose current attempt has
// outlived its deadline. Together with attempt-tagged messages this gives the
// protocol at-least-once task execution over a lossy fabric: any plan, result,
// confirm or row transfer the fabric drops is eventually recovered by
// re-executing the task from its (still reachable) parent row sets.
func (m *Master) retryLoop() {
	defer m.wg.Done()
	interval := m.cfg.TaskRetry / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		var stale []task.ID
		now := time.Now()
		for id, entry := range m.tasks {
			if now.Sub(entry.assignedAt) > m.attemptDeadline(entry.plan.spawns, entry.plan.size) {
				stale = append(stale, id)
			}
		}
		for _, id := range stale {
			if entry, ok := m.tasks[id]; ok {
				m.requeueTaskLocked(id, entry, "no result before attempt deadline")
			}
		}
		m.mu.Unlock()
	}
}

// attemptDeadline scales TaskRetry by task size — a leaf-level task over a
// few dozen rows should be revoked long before a root-sized one — floored at
// a quarter of the configured deadline so fixed per-task overheads (plan
// delivery, row fetch round-trips) are always granted. The result doubles per
// prior full execution (capped), so re-executions back off exponentially
// under persistent faults.
func (m *Master) attemptDeadline(executions, size int) time.Duration {
	d := m.cfg.TaskRetry
	if ref := m.schema.NumRows; ref > 0 && size < ref {
		d = time.Duration(float64(d) * (0.25 + 0.75*float64(size)/float64(ref)))
	}
	for i := 1; i < executions && i < 6; i++ {
		d *= 2
	}
	return d
}

// requeueTaskLocked revokes every outstanding attempt at its involved workers
// and requeues the plan at the head of B_plan; assignAndSend will bump the
// attempt so stale messages from these executions are ignored everywhere.
func (m *Master) requeueTaskLocked(id task.ID, entry *mtask, reason string) {
	p := entry.plan
	maxAttempts := m.cfg.MaxTaskAttempts
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	if p.spawns >= maxAttempts {
		m.failJobLocked(fmt.Errorf("cluster: task %d failed after %d attempts: %s", id, p.spawns, reason))
		return
	}
	m.cancelAttemptsLocked(entry, nil)
	delete(m.tasks, id)
	m.bplan.PushHead(p)
	m.obs.TaskRetried()
	m.obs.PlanRequeued()
	m.obs.SetDequeDepth(m.bplan.Len())
}

func (m *Master) failJobLocked(err error) {
	if m.jobErr == nil {
		m.jobErr = err
	}
	if m.remaining > 0 && m.jobDone != nil {
		m.remaining = 0
		close(m.jobDone)
	}
}
