package cluster

import (
	"reflect"
	"strings"
	"testing"

	"treeserver/internal/core"
	"treeserver/internal/loadbal"
	"treeserver/internal/transport"
)

// Unit tests for the heartbeat failure detector's decision rule, driven by
// injected pong-sequence snapshots (no cluster, no clock).

func TestFailedWorkersLaggingWorkerDetected(t *testing.T) {
	alive := []bool{true, true, true, true}
	// Worker 2 stopped ponging at seq 4; the freshest worker is at 40.
	lastSeq := []int64{40, 39, 4, 38}
	got := failedWorkers(alive, lastSeq, 20)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("failedWorkers = %v, want [2]", got)
	}
}

func TestFailedWorkersExactBudgetIsNotFailure(t *testing.T) {
	alive := []bool{true, true}
	// Lag of exactly missedProbes stays inside the budget...
	if got := failedWorkers(alive, []int64{41, 21}, 20); got != nil {
		t.Fatalf("lag == budget flagged %v", got)
	}
	// ...one more probe crosses it.
	if got := failedWorkers(alive, []int64{42, 21}, 20); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("lag == budget+1 flagged %v, want [1]", got)
	}
}

func TestFailedWorkersNoDetectionDuringWarmup(t *testing.T) {
	// Until the freshest pong itself clears the budget, nobody is failed —
	// even a worker that has never ponged (seq 0) at startup.
	alive := []bool{true, true, true}
	if got := failedWorkers(alive, []int64{20, 3, 0}, 20); got != nil {
		t.Fatalf("warmup snapshot flagged %v", got)
	}
}

func TestFailedWorkersMasterLagDelaysAllPongsEqually(t *testing.T) {
	// The master's receive queue backing up delays every pong equally: each
	// worker's lastSeq is far behind the probes actually sent, but their
	// relative lag is small. Absolute-lag detection would kill the whole
	// cluster here; the relative rule must keep everyone alive.
	alive := []bool{true, true, true, true}
	probesSent := int64(1000)
	lastSeq := []int64{probesSent - 600, probesSent - 590, probesSent - 605, probesSent - 598}
	if got := failedWorkers(alive, lastSeq, 20); got != nil {
		t.Fatalf("equal master-side lag flagged %v, want none", got)
	}
	// The same absolute sequences with one genuinely dead worker still
	// isolate exactly that worker.
	lastSeq[2] = probesSent - 700
	if got := failedWorkers(alive, lastSeq, 20); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("dead worker among lagged pongs flagged %v, want [2]", got)
	}
}

func TestFailedWorkersIgnoresDeadWorkers(t *testing.T) {
	// Already-failed workers neither anchor the freshest pong nor get
	// re-reported.
	alive := []bool{false, true, true}
	lastSeq := []int64{500, 40, 39} // w0's stale high seq must not count
	if got := failedWorkers(alive, lastSeq, 20); got != nil {
		t.Fatalf("dead worker's seq influenced detection: %v", got)
	}
	// And a dead worker lagging far behind is not reported again.
	lastSeq = []int64{2, 100, 99}
	if got := failedWorkers(alive, lastSeq, 20); got != nil {
		t.Fatalf("dead worker re-reported: %v", got)
	}
}

func TestFailedWorkersMultipleFailures(t *testing.T) {
	alive := []bool{true, true, true, true}
	lastSeq := []int64{100, 2, 100, 5}
	if got := failedWorkers(alive, lastSeq, 20); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("failedWorkers = %v, want [1 3]", got)
	}
}

// --- rereplication and restart-budget unit tests ---

// bareMaster builds an un-started master over a private fabric so the
// locked fault-recovery helpers can be unit-tested directly. Worker
// endpoints exist (sends land in unread mailboxes) but no workers run.
func bareMaster(t *testing.T, numWorkers int, owners map[int][]int) *Master {
	t.Helper()
	net := transport.NewMemNetwork()
	for w := 0; w < numWorkers; w++ {
		net.Endpoint(WorkerName(w))
	}
	m, err := NewMaster(net.Endpoint(MasterName),
		Schema{NumRows: 100, NumCols: len(owners) + 1, Target: len(owners)},
		loadbal.Placement{Owners: owners, NumWorkers: numWorkers},
		MasterConfig{NumWorkers: numWorkers})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	return m
}

func TestRereplicateTargetsLeastLoadedAliveWorker(t *testing.T) {
	// Worker 0 dies holding column 0. Among the alive non-holders, worker 3
	// holds nothing and worker 2 holds two columns — the copy must go to 3.
	m := bareMaster(t, 4, map[int][]int{
		0: {0, 1},
		1: {1, 2},
		2: {1, 2},
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alive[0] = false
	if err := m.rereplicateLocked(0); err != nil {
		t.Fatalf("rereplicateLocked: %v", err)
	}
	if got := m.placement.Owners[0]; !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("column 0 owners = %v, want [1 3] (survivor + least-loaded)", got)
	}
}

func TestRereplicateNeverPicksSurvivingReplica(t *testing.T) {
	// Both workers hold column 0; worker 0 dies. The only alive worker is
	// already a replica, so the column degrades to one copy — it must not
	// be "re-replicated" onto the worker that already holds it.
	m := bareMaster(t, 2, map[int][]int{0: {0, 1}})
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alive[0] = false
	if err := m.rereplicateLocked(0); err != nil {
		t.Fatalf("rereplicateLocked: %v", err)
	}
	if got := m.placement.Owners[0]; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("column 0 owners = %v, want [1] (no duplicate replica)", got)
	}
}

func TestRereplicateLastReplicaLossFailsJob(t *testing.T) {
	// Column 1 lives only on worker 0. Losing it is unrecoverable and the
	// error must name the column.
	m := bareMaster(t, 3, map[int][]int{
		0: {0, 1},
		1: {0},
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alive[0] = false
	err := m.rereplicateLocked(0)
	if err == nil {
		t.Fatal("rereplicateLocked recovered a column with no surviving replica")
	}
	if !strings.Contains(err.Error(), "column 1") || !strings.Contains(err.Error(), "last replica") {
		t.Fatalf("error %q does not name the lost column", err)
	}
}

func TestMaxTreeRestartsFailsJob(t *testing.T) {
	m := bareMaster(t, 2, map[int][]int{0: {0, 1}})
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.newAssembly(0, TreeSpec{Params: core.Defaults(), Bag: BagSpec{NumRows: 100}})
	m.trees[7] = a

	// Restarts within the budget requeue the root and keep the job alive.
	for i := 0; i < m.cfg.MaxTreeRestarts; i++ {
		m.restartTreeLocked(7)
		if m.jobErr != nil {
			t.Fatalf("restart %d failed the job early: %v", i+1, m.jobErr)
		}
	}
	if a.epoch != m.cfg.MaxTreeRestarts {
		t.Fatalf("epoch %d after %d restarts", a.epoch, m.cfg.MaxTreeRestarts)
	}
	// One more exceeds the budget and must fail the job with a clear error.
	m.restartTreeLocked(7)
	if m.jobErr == nil || !strings.Contains(m.jobErr.Error(), "MaxTreeRestarts") {
		t.Fatalf("jobErr = %v, want MaxTreeRestarts failure", m.jobErr)
	}
}

func TestHeartbeatBudgetValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	if _, err := NewMaster(net.Endpoint(MasterName), Schema{}, loadbal.Placement{},
		MasterConfig{NumWorkers: 1, HeartbeatBudget: -1}); err == nil {
		t.Fatal("NewMaster accepted a negative HeartbeatBudget")
	}
	if _, err := NewMaster(net.Endpoint("m2"), Schema{}, loadbal.Placement{},
		MasterConfig{NumWorkers: 1, MaxTreeRestarts: -1}); err == nil {
		t.Fatal("NewMaster accepted a negative MaxTreeRestarts")
	}
	m, err := NewMaster(net.Endpoint("m3"), Schema{}, loadbal.Placement{}, MasterConfig{NumWorkers: 1})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	if m.cfg.HeartbeatBudget != heartbeatMissedProbes {
		t.Fatalf("default HeartbeatBudget = %d, want %d", m.cfg.HeartbeatBudget, heartbeatMissedProbes)
	}
	if m.cfg.MaxTreeRestarts != defaultMaxTreeRestarts {
		t.Fatalf("default MaxTreeRestarts = %d, want %d", m.cfg.MaxTreeRestarts, defaultMaxTreeRestarts)
	}
}
