package cluster

import (
	"reflect"
	"testing"
)

// Unit tests for the heartbeat failure detector's decision rule, driven by
// injected pong-sequence snapshots (no cluster, no clock).

func TestFailedWorkersLaggingWorkerDetected(t *testing.T) {
	alive := []bool{true, true, true, true}
	// Worker 2 stopped ponging at seq 4; the freshest worker is at 40.
	lastSeq := []int64{40, 39, 4, 38}
	got := failedWorkers(alive, lastSeq, 20)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("failedWorkers = %v, want [2]", got)
	}
}

func TestFailedWorkersExactBudgetIsNotFailure(t *testing.T) {
	alive := []bool{true, true}
	// Lag of exactly missedProbes stays inside the budget...
	if got := failedWorkers(alive, []int64{41, 21}, 20); got != nil {
		t.Fatalf("lag == budget flagged %v", got)
	}
	// ...one more probe crosses it.
	if got := failedWorkers(alive, []int64{42, 21}, 20); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("lag == budget+1 flagged %v, want [1]", got)
	}
}

func TestFailedWorkersNoDetectionDuringWarmup(t *testing.T) {
	// Until the freshest pong itself clears the budget, nobody is failed —
	// even a worker that has never ponged (seq 0) at startup.
	alive := []bool{true, true, true}
	if got := failedWorkers(alive, []int64{20, 3, 0}, 20); got != nil {
		t.Fatalf("warmup snapshot flagged %v", got)
	}
}

func TestFailedWorkersMasterLagDelaysAllPongsEqually(t *testing.T) {
	// The master's receive queue backing up delays every pong equally: each
	// worker's lastSeq is far behind the probes actually sent, but their
	// relative lag is small. Absolute-lag detection would kill the whole
	// cluster here; the relative rule must keep everyone alive.
	alive := []bool{true, true, true, true}
	probesSent := int64(1000)
	lastSeq := []int64{probesSent - 600, probesSent - 590, probesSent - 605, probesSent - 598}
	if got := failedWorkers(alive, lastSeq, 20); got != nil {
		t.Fatalf("equal master-side lag flagged %v, want none", got)
	}
	// The same absolute sequences with one genuinely dead worker still
	// isolate exactly that worker.
	lastSeq[2] = probesSent - 700
	if got := failedWorkers(alive, lastSeq, 20); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("dead worker among lagged pongs flagged %v, want [2]", got)
	}
}

func TestFailedWorkersIgnoresDeadWorkers(t *testing.T) {
	// Already-failed workers neither anchor the freshest pong nor get
	// re-reported.
	alive := []bool{false, true, true}
	lastSeq := []int64{500, 40, 39} // w0's stale high seq must not count
	if got := failedWorkers(alive, lastSeq, 20); got != nil {
		t.Fatalf("dead worker's seq influenced detection: %v", got)
	}
	// And a dead worker lagging far behind is not reported again.
	lastSeq = []int64{2, 100, 99}
	if got := failedWorkers(alive, lastSeq, 20); got != nil {
		t.Fatalf("dead worker re-reported: %v", got)
	}
}

func TestFailedWorkersMultipleFailures(t *testing.T) {
	alive := []bool{true, true, true, true}
	lastSeq := []int64{100, 2, 100, 5}
	if got := failedWorkers(alive, lastSeq, 20); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("failedWorkers = %v, want [1 3]", got)
	}
}
