// Hot-standby wire protocol: the primary master streams its checkpoint
// records to a live standby and renews a lease against it; when the lease
// lapses the standby announces a takeover and re-homes the fleet. All
// messages travel over the same transport fabric as the training protocol.
package cluster

import (
	"encoding/gob"
	"time"
)

// StandbyName is the hot-standby master's transport name.
const StandbyName = "standby"

// --- Primary -> standby messages ---

// CkptRecordMsg streams one checkpoint record (a full snapshot or a
// tree-done append) to the standby as the primary fsyncs it locally. Seq is
// the snapshot epoch from checkpoint.Record; Gen is the sending master's
// generation, so records from a fenced primary are recognisably stale.
type CkptRecordMsg struct {
	Gen     int64
	Seq     int
	Kind    uint8
	Payload []byte
}

// LeaseGrantMsg opens the lease protocol: it tells the standby which
// generation currently leads and with what TTL, starting the standby's
// watched-lapse clock. Sent once at master start (and harmless if resent).
type LeaseGrantMsg struct {
	Gen int64 // lease generation (master generation + 1)
	TTL time.Duration
}

// LeaseRenewMsg is the primary's periodic lease renewal. The primary's
// lease only extends when the matching LeaseAckMsg returns — see
// leaseMachine for the safety argument.
type LeaseRenewMsg struct {
	Gen int64
	Seq int64
}

// --- Standby -> primary messages ---

// LeaseAckMsg acknowledges a renewal: the standby promises not to take over
// for TTL from receipt. Records echoes how many stream records the standby
// has applied, giving the primary a stream-lag signal for telemetry.
type LeaseAckMsg struct {
	Gen     int64
	Seq     int64
	Records int64
}

// TakeoverMsg is the standby's best-effort fencing announcement to the old
// primary: a higher lease generation now owns the fleet. The authoritative
// fence is the generation stamp on task IDs plus the endpoint rebind — this
// message just lets a reachable stale primary fail fast instead of timing
// out.
type TakeoverMsg struct {
	Gen int64 // the new lease generation
}

func init() {
	gob.Register(CkptRecordMsg{})
	gob.Register(LeaseGrantMsg{})
	gob.Register(LeaseRenewMsg{})
	gob.Register(LeaseAckMsg{})
	gob.Register(TakeoverMsg{})
}
