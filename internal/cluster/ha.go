package cluster

import (
	"time"

	"treeserver/internal/checkpoint"
	"treeserver/internal/transport"
)

// Master-side hot-standby integration: checkpoint-record streaming and the
// failover lease. The standby side lives in standby.go; the pure lease
// state machine in lease.go.
//
// The lease is the STANDBY's takeover gate, not the primary's licence to
// act: a primary whose lease lapses (standby dead, partitioned away, acks
// lost) keeps training — killing a healthy job because the backup vanished
// would invert the availability the standby exists to add. What actually
// stops a superseded primary is fencing: the takeover rebinds the master
// transport name (the recv loop sees its endpoint die and fails the job
// with ErrFenced), a reachable primary additionally gets a best-effort
// TakeoverMsg, and any in-flight work from the old generation dies on the
// gen<<40 task-ID fence at the new master. "Both believe they lead" can
// therefore happen for a bounded window under partition — the split-brain
// chaos cell exercises exactly that — and is harmless by construction.

const (
	// DefaultLeaseTTL is the failover lease duration when StandbyName is set
	// without an explicit LeaseTTL.
	DefaultLeaseTTL = 2 * time.Second
	// streamBuffer bounds the record queue between checkpoint writes (under
	// m.mu) and the stream send loop. A full queue drops the record rather
	// than stall training: a dropped tree-done only means the standby
	// retrains that tree after takeover, and a dropped snapshot is superseded
	// by the next one.
	streamBuffer = 64
)

// emitRecordLocked is the StreamSink emit hook. It runs under m.mu (every
// checkpoint write holds it), so reading m.gen is safe and it must not
// block — hence the non-blocking queue handoff.
func (m *Master) emitRecordLocked(rec checkpoint.Record) {
	msg := CkptRecordMsg{Gen: m.gen, Seq: rec.Seq, Kind: rec.Kind, Payload: rec.Payload}
	select {
	case m.streamCh <- msg:
		m.streamSent.Add(1)
		m.obs.StreamRecordQueued(len(rec.Payload))
	default:
		m.obs.StreamRecordDropped()
	}
}

// streamLoop ships queued checkpoint records to the standby. Send failures
// are counted and dropped — the stream is best-effort by design; durability
// is the local log's job and replica gaps heal at the next snapshot.
func (m *Master) streamLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case msg := <-m.streamCh:
			if err := transport.SendWithRetry(m.ep, m.cfg.StandbyName, msg, transport.DefaultRetryPolicy()); err != nil {
				m.obs.StreamSendError()
			}
		}
	}
}

// leaseLoop acquires the lease at this master's generation, announces it to
// the standby, then renews at TTL/3. Renewals only extend the lease when
// the standby's ack returns (see leaseMachine); if the machine fences —
// lapse or a higher generation observed — the loop stops renewing but does
// NOT fail the job, per the fencing design in the file comment.
func (m *Master) leaseLoop() {
	defer m.wg.Done()
	m.mu.Lock()
	gen := leaseGen(m.gen)
	m.mu.Unlock()

	m.leaseMu.Lock()
	err := m.lease.Acquire(time.Now(), gen)
	m.leaseMu.Unlock()
	if err != nil {
		return // machine pre-fenced (cannot happen on a fresh master)
	}
	_ = transport.SendWithRetry(m.ep, m.cfg.StandbyName, LeaseGrantMsg{Gen: gen, TTL: m.cfg.LeaseTTL}, transport.DefaultRetryPolicy())

	tick := time.NewTicker(m.cfg.LeaseTTL / 3)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.leaseMu.Lock()
			seq, err := m.lease.Renew(time.Now())
			fenced := m.lease.Fenced()
			m.leaseMu.Unlock()
			if fenced {
				m.obs.LeaseLost()
				return
			}
			if err == nil {
				m.obs.LeaseRenewed()
				_ = transport.SendWithRetry(m.ep, m.cfg.StandbyName, LeaseRenewMsg{Gen: gen, Seq: seq}, transport.DefaultRetryPolicy())
			}
		}
	}
}

// handleLeaseAck extends the lease with the standby's acknowledgement and
// records stream lag (records queued locally minus records the standby has
// applied).
func (m *Master) handleLeaseAck(msg LeaseAckMsg) {
	if m.lease == nil {
		return
	}
	m.leaseMu.Lock()
	if msg.Gen == m.lease.Gen() {
		m.lease.Ack(msg.Seq)
	}
	m.leaseMu.Unlock()
	m.obs.LeaseAcked()
	if lag := m.streamSent.Load() - msg.Records; lag >= 0 {
		m.obs.SetStreamLag(lag)
	}
}

// handleTakeover is the best-effort fast path of fencing: a reachable
// primary that hears a higher generation announce itself fails the job
// immediately instead of discovering the rebind through its dead endpoint.
func (m *Master) handleTakeover(msg TakeoverMsg) {
	m.mu.Lock()
	own := leaseGen(m.gen)
	m.mu.Unlock()
	if m.lease != nil {
		m.leaseMu.Lock()
		m.lease.Observe(time.Now(), msg.Gen)
		m.leaseMu.Unlock()
	}
	if msg.Gen > own {
		m.fence()
	}
}

// fence fails the current job with ErrFenced and stops the master's loops
// without the shutdown broadcast (the workers now belong to the new
// master). Safe to call from the recv loop: it does not wait for the
// WaitGroup.
func (m *Master) fence() {
	m.mu.Lock()
	m.failJobLocked(ErrFenced)
	m.mu.Unlock()
	m.stopOnce.Do(func() {
		close(m.stop)
		m.ep.Close()
	})
}
