// Package cluster implements the TreeServer distributed engine: a master
// that manages node-centric tasks (Sections III–VI) and workers that compute
// them, connected by the transport fabric. The protocol reproduces the
// paper's designs precisely:
//
//   - column-partitioned data with k replicas; every worker holds Y;
//   - column-tasks and subtree-tasks (Fig. 3, Fig. 9);
//   - the hybrid BFS/DFS plan deque with τ_D / τ_dfs / n_pool (Fig. 4/5);
//   - row maintenance without master relaying (Section V): the delegate
//     worker of a column-task splits and serves I_xl / I_xr directly to the
//     workers of the child tasks; the master never ships row-index sets;
//   - the M_work cost model for plan-to-worker assignment (Section VI);
//   - fault tolerance: column re-replication and task revocation on worker
//     failure (Appendix E).
package cluster

import (
	"encoding/gob"
	"math/rand"
	"slices"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/impurity"
	"treeserver/internal/split"
	"treeserver/internal/task"
)

// BagSpec determines the root row set I_root of one tree. It is derived
// deterministically from the seed, so any worker can materialise the same
// root rows without the master ever transmitting them.
type BagSpec struct {
	NumRows int
	// Sample > 0 draws that many rows with replacement (bagging); 0 uses
	// all rows.
	Sample int
	Seed   int64
}

// Rows materialises the root row-index set. Bootstrap samples are sorted so
// that training is order-deterministic.
func (b BagSpec) Rows() []int32 {
	if b.Sample <= 0 {
		return dataset.AllRows(b.NumRows)
	}
	rng := rand.New(rand.NewSource(b.Seed))
	rows := make([]int32, b.Sample)
	for i := range rows {
		rows[i] = int32(rng.Intn(b.NumRows))
	}
	slices.Sort(rows)
	return rows
}

// Size returns |I_root|.
func (b BagSpec) Size() int {
	if b.Sample > 0 {
		return b.Sample
	}
	return b.NumRows
}

// ParentRef locates the row-index set a task needs: side L/R of the parent
// task, held by the parent task's delegate worker. Worker == -1 marks a root
// task whose rows come from the bag instead.
type ParentRef struct {
	Task   task.ID
	Side   uint8 // 0 = left child, 1 = right child
	Worker int   // delegate worker of the parent task; -1 for root
	Bag    BagSpec
}

// IsRoot reports whether the rows come from the bag.
func (p ParentRef) IsRoot() bool { return p.Worker < 0 }

// NodeStats are the label statistics of D_x: class counts for
// classification, moments for regression. They travel with task results so
// the master can fill node predictions without ever touching row data.
type NodeStats struct {
	N      int
	Counts []int
	Sum    float64
	SumSq  float64
	Pure   bool
}

// StatsOf computes NodeStats exactly from the label column at the rows.
func StatsOf(y *dataset.Column, rows []int32, numClasses int) NodeStats {
	s := NodeStats{N: len(rows)}
	if y.Kind == dataset.Categorical {
		s.Counts = make([]int, numClasses)
		for _, r := range rows {
			s.Counts[y.Cats[r]]++
		}
		for _, c := range s.Counts {
			if c == s.N {
				s.Pure = true
			}
		}
		return s
	}
	s.Pure = true
	for i, r := range rows {
		v := y.Floats[r]
		s.Sum += v
		s.SumSq += v * v
		if i > 0 && v != y.Floats[rows[0]] {
			s.Pure = false
		}
	}
	if s.N == 0 {
		s.Pure = true
	}
	return s
}

// Fill writes the prediction implied by the stats into a node.
func (s NodeStats) Fill(n *core.Node) {
	n.N = s.N
	if s.Counts != nil {
		n.PMF = make([]float64, len(s.Counts))
		best := 0
		for i, c := range s.Counts {
			if s.N > 0 {
				n.PMF[i] = float64(c) / float64(s.N)
			}
			if c > s.Counts[best] {
				best = i
			}
		}
		n.Class = int32(best)
		if s.N == 0 {
			n.Class = -1
			n.PMF = nil
		}
		return
	}
	if s.N > 0 {
		n.Mean = s.Sum / float64(s.N)
	}
}

// Schema is the table metadata every machine shares: enough to validate
// plans and derive bags, without any row data.
type Schema struct {
	NumRows    int
	NumCols    int
	Target     int
	Kinds      []dataset.Kind
	NumClasses int
	Task       dataset.Task
}

// SchemaOf extracts the schema of a table.
func SchemaOf(t *dataset.Table) Schema {
	kinds := make([]dataset.Kind, len(t.Cols))
	for i, c := range t.Cols {
		kinds[i] = c.Kind
	}
	return Schema{
		NumRows: t.NumRows(), NumCols: len(t.Cols), Target: t.Target,
		Kinds: kinds, NumClasses: t.NumClasses(), Task: t.Task(),
	}
}

// --- Master -> worker messages (Task Comm.) ---

// ColumnPlanMsg assigns a column-task share: evaluate Cols over I_x (fetched
// from Parent) and return the best split condition among them.
type ColumnPlanMsg struct {
	Task task.ID
	// Attempt distinguishes re-executions of the same task after fault
	// recovery; stale results are discarded by attempt mismatch.
	Attempt    int
	Tree       int32
	Depth      int
	Size       int
	Cols       []int
	Parent     ParentRef
	Measure    impurity.Measure
	NumClasses int
	MaxExh     int
	// Random selects extra-trees behaviour: draw one random split on the
	// single column in Cols, seeded by RandomSeed.
	Random     bool
	RandomSeed int64
	// Hist selects the histogram protocol: answer with a TopKVoteMsg of at
	// most TopK candidates instead of a ColumnResultMsg.
	Hist bool
	TopK int
	// Rows is only set in the relay-rows ablation, where the master ships
	// I_x itself instead of pointing at the parent's delegate worker.
	Rows []int32
}

// SubtreePlanMsg assigns a subtree-task to its key worker: collect D_x
// (columns from ColServer, rows from Parent, Y locally) and build Δ_x.
type SubtreePlanMsg struct {
	Task      task.ID
	Attempt   int
	Tree      int32
	Depth     int
	Size      int
	Parent    ParentRef
	Params    core.Params // Candidates hold original column indexes
	ColServer map[int]int // column -> serving worker
	// Rows is only set in the relay-rows ablation.
	Rows []int32
}

// ConfirmSplitMsg tells the delegate worker its candidate won: split I_x by
// Cond, report SplitDoneMsg, and retain I_xl / I_xr for the child tasks.
type ConfirmSplitMsg struct {
	Task task.ID
	// Attempt must match the worker's task attempt; confirms from a revoked
	// execution are ignored.
	Attempt int
	Cond    split.Condition
	// Relay asks the delegate to ship I_xl and I_xr back to the master in
	// SplitDoneMsg (relay-rows ablation).
	Relay bool
}

// DropTaskMsg tells a worker to discard all state for the task (losing
// column-task workers, revoked tasks during fault recovery).
type DropTaskMsg struct {
	Task task.ID
	// Attempt scopes the drop: a worker discards its task object only when
	// its attempt is <= Attempt, so a delayed drop from a revoked execution
	// cannot destroy the state of a newer one.
	Attempt int
}

// ReleaseSideMsg tells the delegate worker that no further requests for the
// given side's rows will arrive; it frees them, and the task object once
// both sides are released.
type ReleaseSideMsg struct {
	Task task.ID
	Side uint8
}

// PingMsg is the master's liveness probe.
type PingMsg struct{ Seq int64 }

// ProbeMsg is the master's quarantine-probation probe: a lightweight task the
// worker must turn around immediately. Unlike PingMsg it is sent in waves to
// every alive worker, so the acks of healthy workers form the latency
// baseline a quarantined worker's probation is judged against.
type ProbeMsg struct{ Seq int64 }

// ReplicateColumnMsg asks a surviving replica holder to copy a column to
// another worker (fault recovery).
type ReplicateColumnMsg struct {
	Col int
	To  int
}

// SetTargetMsg replaces the workers' label column with a new numeric
// target — the substrate for gradient-boosting rounds, where each round
// trains regression trees on updated pseudo-residuals.
type SetTargetMsg struct {
	Seq int64
	Y   []float64
}

// TargetAckMsg confirms a SetTargetMsg was applied.
type TargetAckMsg struct {
	Worker int
	Seq    int64
}

// ShutdownMsg terminates a worker's loops.
type ShutdownMsg struct{}

// RejoinRequestMsg is broadcast by a restarted (or promoted-standby) master:
// workers discard all in-flight task state (the new master re-plans
// everything unfinished under generation Gen) and report the column replicas
// they still hold. MasterAddr, when non-empty, is the new master's transport
// address — TCP workers repoint their "master" peer at it before replying.
type RejoinRequestMsg struct {
	Gen        int64
	MasterAddr string
}

// --- Worker -> master messages (Task Comm.) ---

// ColumnResultMsg reports one worker's best candidate over its assigned
// columns, plus the node's label stats (used for root tasks and purity
// checks). The candidate carries |I_xl| and |I_xr| as the paper requires, so
// the master can classify child tasks without seeing I_x.
type ColumnResultMsg struct {
	Task    task.ID
	Attempt int
	Worker  int
	Best    split.Candidate
	Stats   NodeStats
}

// SplitDoneMsg is the delegate's acknowledgement that I_x was partitioned.
// Child label stats let the master fill child node predictions and decide
// leaf conditions without any row traffic.
type SplitDoneMsg struct {
	Task       task.ID
	Attempt    int
	Worker     int
	LeftN      int
	RightN     int
	LeftStats  NodeStats
	RightStats NodeStats
	SeenCodes  []int32 // training-time codes of the winning categorical column
	// LeftRows/RightRows are only populated in the relay-rows ablation.
	LeftRows, RightRows []int32
}

// SubtreeResultMsg carries a completed subtree back to the master.
type SubtreeResultMsg struct {
	Task    task.ID
	Attempt int
	Worker  int
	Subtree *core.Tree
}

// PongMsg answers PingMsg.
type PongMsg struct {
	Worker int
	Seq    int64
}

// ProbeAckMsg answers ProbeMsg; the round-trip time is the worker's probation
// evidence.
type ProbeAckMsg struct {
	Worker int
	Seq    int64
}

// RejoinReportMsg answers RejoinRequestMsg: the worker's surviving column
// replicas, sorted ascending. The reports are authoritative for placement
// reconciliation — the checkpointed placement may predate re-replications or
// crashes that happened after the snapshot was written.
type RejoinReportMsg struct {
	Worker int
	Gen    int64
	Cols   []int
}

// WorkerErrorMsg surfaces a worker-side protocol failure to the master.
type WorkerErrorMsg struct {
	Worker int
	Task   task.ID
	Err    string
}

// --- Worker <-> worker messages (Data Comm.) ---

// RowsRequestMsg asks the parent task's delegate for I_x (Fig. 9 step
// "request for I_x").
type RowsRequestMsg struct {
	Parent    ParentRef
	ForTask   task.ID
	Requester int
}

// RowsResponseMsg returns the rows.
type RowsResponseMsg struct {
	ForTask task.ID
	Rows    []int32
}

// ColDataRequestMsg asks a data-serving worker for the values of Cols at the
// task's rows; the server fetches I_x from the parent delegate itself, so
// the key worker never relays rows either.
type ColDataRequestMsg struct {
	ForTask task.ID
	// Attempt is echoed into the response so the key worker can discard
	// shards gathered for a revoked execution (whose column set may differ).
	Attempt   int
	Cols      []int
	Parent    ParentRef
	KeyWorker int
	Requester int
	// Rows is only set in the relay-rows ablation, where the key worker
	// already holds I_x and forwards it instead of having the server fetch
	// it from the parent's delegate.
	Rows []int32
}

// ColDataResponseMsg returns the gathered column shards, aligned with Cols.
type ColDataResponseMsg struct {
	ForTask task.ID
	Attempt int
	Cols    []int
	Data    []*dataset.Column
}

// ColumnCopyMsg installs a full column replica on the receiving worker
// (fault recovery re-replication).
type ColumnCopyMsg struct {
	Col  int
	Data *dataset.Column
}

func init() {
	gob.Register(ColumnPlanMsg{})
	gob.Register(SubtreePlanMsg{})
	gob.Register(ConfirmSplitMsg{})
	gob.Register(DropTaskMsg{})
	gob.Register(ReleaseSideMsg{})
	gob.Register(PingMsg{})
	gob.Register(ProbeMsg{})
	gob.Register(ProbeAckMsg{})
	gob.Register(ReplicateColumnMsg{})
	gob.Register(SetTargetMsg{})
	gob.Register(TargetAckMsg{})
	gob.Register(ShutdownMsg{})
	gob.Register(RejoinRequestMsg{})
	gob.Register(RejoinReportMsg{})
	gob.Register(ColumnResultMsg{})
	gob.Register(SplitDoneMsg{})
	gob.Register(SubtreeResultMsg{})
	gob.Register(PongMsg{})
	gob.Register(WorkerErrorMsg{})
	gob.Register(RowsRequestMsg{})
	gob.Register(RowsResponseMsg{})
	gob.Register(ColDataRequestMsg{})
	gob.Register(ColDataResponseMsg{})
	gob.Register(ColumnCopyMsg{})
}

// WorkerName returns the transport name of worker i.
func WorkerName(i int) string {
	return "w" + itoa(i)
}

// MasterName is the master's transport name.
const MasterName = "master"

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
