package cluster

import (
	"strings"
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
)

// TestTelemetryLedgerReconciles trains a forest with a live registry and
// checks the task lifecycle ledger balances at quiescence: every assignment
// the master made was either completed, requeued for another attempt, or
// superseded by a tree restart. It also pins the M_work claim — every worker
// that served the job has measured computation time — and that observation
// does not change the trained model.
func TestTelemetryLedgerReconciles(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "obs", Rows: 5000, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 71,
	})
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Observer = reg
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, 6)
	for i := range specs {
		specs[i] = TreeSpec{Params: params}
	}
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	for i, tr := range trees {
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs from serial with telemetry attached", i)
		}
	}

	s := reg.Snapshot()
	m := s.Master

	// Lifecycle ledger: Planned counts per attempt at assignment, so at
	// quiescence after a successful job every assignment is accounted for.
	if m.TasksPlanned <= 0 {
		t.Fatal("no tasks planned")
	}
	if got := m.TasksCompleted + m.TasksRetried + m.TasksSuperseded; got != m.TasksPlanned {
		t.Fatalf("ledger: completed %d + retried %d + superseded %d = %d, want planned %d",
			m.TasksCompleted, m.TasksRetried, m.TasksSuperseded, got, m.TasksPlanned)
	}
	if m.TasksConfirmed > m.TasksPlanned {
		t.Fatalf("confirms %d exceed plans %d", m.TasksConfirmed, m.TasksPlanned)
	}
	if m.RowsPlanned <= 0 || m.MaxAttempt < 1 {
		t.Fatalf("rows planned %d, max attempt %d", m.RowsPlanned, m.MaxAttempt)
	}

	// B_plan: the deque saw pushes and its high-water marks are consistent
	// with the configured pool bound.
	if m.PushesBFS+m.PushesDFS <= 0 {
		t.Fatal("no B_plan pushes recorded")
	}
	if m.PoolHighWater <= 0 || m.PoolHighWater > int64(cfg.Policy.NPool)*int64(len(specs)) {
		t.Fatalf("pool high water %d outside (0, n_pool x trees]", m.PoolHighWater)
	}
	if m.DequeHighWater <= 0 {
		t.Fatal("deque high water never moved")
	}

	// M_work: every alive worker must have measured computation time, and
	// the matrix must align with the workers slice.
	mwork := s.MWork()
	if len(mwork) != cfg.Workers || len(s.Workers) != cfg.Workers {
		t.Fatalf("M_work has %d rows for %d workers", len(mwork), cfg.Workers)
	}
	for i, row := range mwork {
		if row[0] <= 0 {
			t.Fatalf("worker %d measured Comp is zero", s.Workers[i].ID)
		}
		if s.Workers[i].Jobs <= 0 {
			t.Fatalf("worker %d recorded no comper jobs", s.Workers[i].ID)
		}
	}

	// Transport: the decorator saw traffic on master->worker links with
	// nonzero byte counts, broken out by message type.
	if len(s.Links) == 0 || len(s.Messages) == 0 {
		t.Fatalf("no link/message counters (%d links, %d message types)", len(s.Links), len(s.Messages))
	}
	var bytes int64
	for _, l := range s.Links {
		if l.Msgs <= 0 || l.Bytes <= 0 {
			t.Fatalf("link %s->%s has %d msgs / %d bytes", l.From, l.To, l.Msgs, l.Bytes)
		}
		bytes += l.Bytes
	}
	if bytes <= 0 {
		t.Fatal("no bytes counted on any link")
	}

	// The human-readable report must render the paper's concepts.
	rep := s.Report()
	for _, want := range []string{"B_plan", "M_work", "tasks", "split kernels"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q section:\n%s", want, rep)
		}
	}
}

// TestTelemetryLedgerBalancesAfterCrash runs the fault-recovery path with a
// live registry: the revocation pass must account for every in-flight
// assignment it revokes (retried or superseded), keeping the ledger exact.
func TestTelemetryLedgerBalancesAfterCrash(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "obscrash", Rows: 6000, NumNumeric: 8, NumClasses: 2,
		ConceptDepth: 6, LabelNoise: 0.05, Seed: 72,
	})
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Workers = 5
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.JobTimeout = 2 * time.Minute
	cfg.Observer = reg
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, 8)
	for i := range specs {
		specs[i] = TreeSpec{Params: params}
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		c.CrashWorker(2)
	}()
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train with crash: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	for i, tr := range trees {
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs from serial after recovery", i)
		}
	}

	m := reg.Snapshot().Master
	if got := m.TasksCompleted + m.TasksRetried + m.TasksSuperseded; got != m.TasksPlanned {
		t.Fatalf("ledger after crash: completed %d + retried %d + superseded %d = %d, want planned %d",
			m.TasksCompleted, m.TasksRetried, m.TasksSuperseded, got, m.TasksPlanned)
	}
	// Only surviving workers can carry measured work; the dead worker's row
	// stops growing but stays in the snapshot.
	alive := map[int]bool{}
	for _, w := range c.Master.AliveWorkers() {
		alive[w] = true
	}
	s := reg.Snapshot()
	for i, row := range s.MWork() {
		if alive[s.Workers[i].ID] && row[0] <= 0 {
			t.Fatalf("alive worker %d measured no computation", s.Workers[i].ID)
		}
	}
}

// TestNewInProcessValidation pins the construction errors that used to be
// silent defaults or downstream panics.
func TestNewInProcessValidation(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "val", Rows: 200, NumNumeric: 3, NumClasses: 2, Seed: 73})

	if _, err := NewInProcess(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := NewInProcess(tbl, WithWorkers(-1)); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := NewInProcess(tbl, WithCompers(-2)); err == nil {
		t.Fatal("negative Compers accepted")
	}
	if _, err := NewInProcess(tbl, WithWorkers(2), WithReplicas(3)); err == nil {
		t.Fatal("Replicas > Workers accepted")
	}
	if _, err := NewInProcess(tbl, WithAblation(AblationMode(99))); err == nil {
		t.Fatal("unknown ablation mode accepted")
	}

	// Defaulted Replicas must clamp to Workers rather than error.
	c, err := NewInProcess(tbl, WithWorkers(1), WithCompers(1))
	if err != nil {
		t.Fatalf("Workers=1 with defaulted replicas: %v", err)
	}
	c.Close()
}

// TestAblationModeString pins the enum's debug names.
func TestAblationModeString(t *testing.T) {
	cases := map[AblationMode]string{
		AblationNone:       "none",
		AblationRoundRobin: "round-robin",
		AblationRelayRows:  "relay-rows",
		AblationMode(7):    "AblationMode(7)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", uint8(mode), got, want)
		}
	}
}
