package cluster

import (
	"fmt"
	"sort"
	"time"

	"treeserver/internal/checkpoint"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/loadbal"
	"treeserver/internal/obs"
	"treeserver/internal/task"
)

// Master crash recovery. The master checkpoints its job to disk (package
// checkpoint): a full snapshot at job start/end plus one appended record per
// completed tree, and optionally periodic snapshots. A replacement master
// loads the newest valid checkpoint, re-registers the surviving workers via
// the rejoin handshake, reconciles column placement against what they
// actually hold, and restarts only the unfinished trees. Because each tree is
// trained deterministically from its (Params, Bag) spec, restarting an
// in-progress tree from its root reproduces bit-identical results — the
// workers' column shards and target column survive the crash, so no data
// reload is needed.

// defaultMaxTreeRestarts bounds delegate-loss restarts per tree; a tree that
// keeps losing its delegates is evidence of a systemic fault the job should
// surface, not mask by restarting forever.
const defaultMaxTreeRestarts = 8

// --- Checkpoint writing ---

// checkpointStateLocked renders the master's durable state: job spec,
// placement, per-tree progress with completed trees (canon-witnessed), and
// the task-ledger counters. Caller holds m.mu.
func (m *Master) checkpointStateLocked() *checkpoint.State {
	st := &checkpoint.State{
		Gen:        m.gen,
		NumWorkers: m.cfg.NumWorkers,
		Replicas:   m.cfg.Replicas,
		NextTreeID: m.nextTreeID,
		Regression: m.schema.Task == dataset.Regression,
		Placement:  loadbal.Placement{Owners: make(map[int][]int, len(m.placement.Owners)), NumWorkers: m.placement.NumWorkers},
	}
	for col, owners := range m.placement.Owners {
		st.Placement.Owners[col] = append([]int(nil), owners...)
	}
	for i, spec := range m.jobSpecs {
		ts := checkpoint.TreeState{Params: spec.Params, Bag: checkpoint.Bag(spec.Bag)}
		if i < len(m.results) && m.results[i] != nil {
			ts.Done, ts.Tree, ts.Canon = true, m.results[i], m.results[i].Canon()
		}
		st.Trees = append(st.Trees, ts)
	}
	l := m.obs.Ledger()
	st.Ledger = checkpoint.Ledger{
		TasksPlanned: l.Planned, TasksConfirmed: l.Confirmed, TasksCompleted: l.Completed,
		TasksRetried: l.Retried, TasksSuperseded: l.Superseded, RowsPlanned: l.RowsPlanned,
	}
	return st
}

// writeSnapshotLocked writes a full snapshot through the checkpoint sink —
// the local log, the standby stream, or both. A failed write is counted and
// otherwise ignored — checkpointing degrades, the job does not.
func (m *Master) writeSnapshotLocked() {
	if m.sink == nil || m.jobSpecs == nil {
		return
	}
	start := time.Now()
	n, err := m.sink.Snapshot(m.checkpointStateLocked())
	if err != nil {
		m.obs.CheckpointError()
		return
	}
	// The checkpoint counters mean durable disk writes; a stream-only sink
	// reports through the stream counters instead.
	if m.ck != nil {
		m.obs.CheckpointWritten(true, n, time.Since(start))
	}
}

// appendTreeDoneLocked durably records one completed tree. If the append
// fails (e.g. the current file vanished) it falls back to a full snapshot so
// the completion is never lost silently.
func (m *Master) appendTreeDoneLocked(index int, tree *core.Tree) {
	if m.sink == nil {
		return
	}
	start := time.Now()
	n, err := m.sink.AppendTreeDone(checkpoint.TreeDone{Index: index, Tree: tree, Canon: tree.Canon()})
	if err != nil {
		m.obs.CheckpointError()
		m.writeSnapshotLocked()
		return
	}
	if m.ck != nil {
		m.obs.CheckpointWritten(false, n, time.Since(start))
	}
}

// checkpointLoop writes periodic snapshots between tree boundaries, bounding
// how much appended history a restart has to replay.
func (m *Master) checkpointLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		m.writeSnapshotLocked()
		m.mu.Unlock()
	}
}

// --- Resume: load, rejoin, reconcile, restart ---

// Resume recovers the job recorded in the master's checkpoint directory: it
// loads the newest valid checkpoint, runs the worker rejoin handshake,
// reconciles column placement, restarts the unfinished trees and blocks until
// the job completes. The returned trees are bit-identical to an uninterrupted
// run. The master must be Started; Resume serialises with Train.
func (m *Master) Resume() ([]*core.Tree, error) {
	if m.ck == nil {
		return nil, fmt.Errorf("cluster: Resume requires CheckpointDir")
	}
	st, info, err := checkpoint.Load(m.ck.Dir())
	if err != nil {
		return nil, err
	}
	return m.resumeFrom(st, info)
}

func (m *Master) resumeFrom(st *checkpoint.State, info checkpoint.LoadInfo) ([]*core.Tree, error) {
	m.jobMu.Lock()
	defer m.jobMu.Unlock()

	m.mu.Lock()
	// The generation fence: task IDs of this incarnation start at gen<<40,
	// so a stale result addressed to a pre-crash task ID can never collide
	// with an entry in the new task table.
	m.gen = st.Gen + 1
	m.nextTaskID = task.ID(m.gen << 40)
	m.nextTreeID = st.NextTreeID
	m.placement = st.Placement
	if st.NumWorkers > m.cfg.NumWorkers {
		// Workers joined live before the crash: the checkpointed fleet is
		// larger than this master was configured for. Adopt the grown fleet
		// so the rejoin broadcast addresses every slot.
		m.growFleetLocked(st.NumWorkers)
	}
	if st.Regression && m.schema.Task != dataset.Regression {
		// The job being resumed ran after a SetTarget swap; the workers still
		// hold the numeric labels, so only the master's schema needs to catch
		// up or it would plan classification-measure tasks over them.
		m.schema.NumClasses = 0
		m.schema.Task = dataset.Regression
		m.schema.Kinds[m.schema.Target] = dataset.Numeric
	}
	specs := make([]TreeSpec, len(st.Trees))
	m.results = make([]*core.Tree, len(st.Trees))
	m.remaining = 0
	m.jobErr = nil
	m.jobDone = make(chan struct{})
	for i, ts := range st.Trees {
		specs[i] = TreeSpec{Params: ts.Params, Bag: BagSpec(ts.Bag)}
		if ts.Done {
			m.results[i] = ts.Tree
		} else {
			m.remaining++
		}
	}
	m.jobSpecs = specs
	done := m.jobDone
	remaining := m.remaining
	gen := m.gen
	m.mu.Unlock()

	m.obs.RestoreCompleted(st.DoneTrees(), info.SkippedFiles, info.TruncatedRecords)
	m.obs.RestoreLedger(obs.TaskLedger{
		Planned: st.Ledger.TasksPlanned, Confirmed: st.Ledger.TasksConfirmed,
		Completed: st.Ledger.TasksCompleted, Retried: st.Ledger.TasksRetried,
		Superseded: st.Ledger.TasksSuperseded, RowsPlanned: st.Ledger.RowsPlanned,
	})

	if remaining == 0 {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.writeSnapshotLocked()
		return m.results, nil
	}

	reports, err := m.rejoinWorkers(gen)
	if err != nil {
		return nil, err
	}
	if err := m.reconcilePlacement(reports); err != nil {
		return nil, err
	}
	if m.cfg.SplitMode == SplitHist {
		// A replacement master has no bins; workers reset theirs on rejoin.
		// Re-running the proposal round over the same columns reproduces the
		// same bins, so resumed trees stay deterministic.
		if err := m.ensureBins(); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	// Durable before any new work: the snapshot with the bumped generation
	// ensures a second crash resumes with a yet-higher fence.
	m.writeSnapshotLocked()
	for i := range specs {
		if m.results[i] == nil {
			m.pendingTrees = append(m.pendingTrees, m.newAssembly(i, specs[i]))
		}
	}
	m.mu.Unlock()

	return m.awaitJob(done)
}

// rejoinWorkers broadcasts the rejoin request and collects the workers'
// held-column reports, waiting up to RejoinTimeout for stragglers. At least
// one worker must answer; non-reporters are marked failed.
func (m *Master) rejoinWorkers(gen int64) (map[int][]int, error) {
	m.mu.Lock()
	m.rejoinGen = gen
	m.rejoinReports = map[int][]int{}
	m.rejoinCh = make(chan struct{}, 1)
	ch := m.rejoinCh
	m.mu.Unlock()

	for w := 0; w < m.fleet(); w++ {
		m.send(w, RejoinRequestMsg{Gen: gen, MasterAddr: m.cfg.AdvertiseAddr})
	}

	timeout := m.cfg.RejoinTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	waiting := true
	for waiting {
		m.mu.Lock()
		n := len(m.rejoinReports)
		m.mu.Unlock()
		if n >= m.fleet() {
			break
		}
		select {
		case <-ch:
		case <-deadline.C:
			waiting = false
		case <-m.stop:
			return nil, fmt.Errorf("cluster: master stopped")
		}
	}

	m.mu.Lock()
	reports := m.rejoinReports
	m.rejoinReports, m.rejoinCh = nil, nil
	now := time.Now()
	for w := 0; w < m.cfg.NumWorkers; w++ {
		if _, ok := reports[w]; ok {
			m.alive[w] = true
			m.lastPong[w] = now
		} else {
			m.alive[w] = false
		}
	}
	m.mu.Unlock()
	if len(reports) == 0 {
		return nil, fmt.Errorf("cluster: no workers rejoined within %v", timeout)
	}
	return reports, nil
}

func (m *Master) handleRejoinReport(msg RejoinReportMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rejoinReports == nil || msg.Gen != m.rejoinGen ||
		msg.Worker < 0 || msg.Worker >= m.cfg.NumWorkers {
		return
	}
	if _, dup := m.rejoinReports[msg.Worker]; dup {
		return
	}
	m.rejoinReports[msg.Worker] = msg.Cols
	select {
	case m.rejoinCh <- struct{}{}:
	default:
	}
}

// reconcilePlacement rebuilds the column placement from the rejoin reports —
// the reports, not the checkpointed placement, are authoritative, because the
// snapshot may predate re-replications or crashes. Columns below the
// replication factor are re-replicated onto the least-loaded rejoined
// workers; a column no survivor holds is unrecoverable data loss and fails
// the resume with the column named.
func (m *Master) reconcilePlacement(reports map[int][]int) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	held := map[int][]int{}
	for w := 0; w < m.cfg.NumWorkers; w++ {
		for _, col := range reports[w] {
			held[col] = append(held[col], w)
		}
	}
	// Iterate the checkpointed column set in sorted order so replication
	// targets (and thus the reconciled placement) are deterministic.
	cols := make([]int, 0, len(m.placement.Owners))
	for col := range m.placement.Owners {
		cols = append(cols, col)
	}
	sort.Ints(cols)

	load := map[int]int{}
	for _, holders := range held {
		for _, w := range holders {
			load[w]++
		}
	}
	replicas := m.cfg.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	if replicas > len(reports) {
		replicas = len(reports)
	}

	owners := make(map[int][]int, len(cols))
	for _, col := range cols {
		holders := append([]int(nil), held[col]...)
		if len(holders) == 0 {
			return fmt.Errorf("cluster: column %d has no surviving replica after master restart", col)
		}
		for len(holders) < replicas {
			target, best := -1, int(^uint(0)>>1)
			for w := 0; w < m.cfg.NumWorkers; w++ {
				if !m.alive[w] || holdsCol(holders, w) {
					continue
				}
				if load[w] < best {
					target, best = w, load[w]
				}
			}
			if target < 0 {
				break // fewer rejoined workers than replicas: degrade
			}
			holders = append(holders, target)
			load[target]++
			m.send(holders[0], ReplicateColumnMsg{Col: col, To: target})
		}
		owners[col] = holders
	}
	m.placement = loadbal.Placement{Owners: owners, NumWorkers: m.cfg.NumWorkers}
	return nil
}

func holdsCol(holders []int, w int) bool {
	for _, h := range holders {
		if h == w {
			return true
		}
	}
	return false
}
