package cluster

import (
	"testing"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// histConfig forces every split through the column-task protocol so the hist
// path — not the exact subtree fallback — trains the tree.
func histConfig(maxBins, topK int) Config {
	cfg := testConfig()
	cfg.Policy = task.Policy{TauD: 1, TauDFS: 800, NPool: 4}
	cfg.SplitMode = SplitHist
	cfg.MaxBins = maxBins
	cfg.TopK = topK
	return cfg
}

// assertEquivalentTrees walks two trees in lockstep over the same row set and
// fails unless they are the same tree up to threshold placement: identical
// structure, split columns, induced row partitions, and leaf predictions. At
// depth ≥ 1 a node sees a subset of rows, so the saturated hist threshold may
// sit at a different point of the same value gap than the exact midpoint —
// the partitions are what the equivalence property guarantees.
func assertEquivalentTrees(t *testing.T, tbl *dataset.Table, got, want *core.Tree) {
	t.Helper()
	if got.NumNodes != want.NumNodes || got.MaxDepth != want.MaxDepth {
		t.Fatalf("shape differs: %d nodes depth %d vs %d nodes depth %d",
			got.NumNodes, got.MaxDepth, want.NumNodes, want.MaxDepth)
	}
	var walk func(g, w *core.Node, rows []int32)
	walk = func(g, w *core.Node, rows []int32) {
		if g.IsLeaf() != w.IsLeaf() || g.N != w.N {
			t.Fatalf("node %d: leaf=%v n=%d vs leaf=%v n=%d", w.ID, g.IsLeaf(), g.N, w.IsLeaf(), w.N)
		}
		if g.IsLeaf() {
			if g.Class != w.Class || g.Mean != w.Mean {
				t.Fatalf("leaf %d: prediction (%d, %v) vs (%d, %v)", w.ID, g.Class, g.Mean, w.Class, w.Mean)
			}
			return
		}
		if g.Cond.Col != w.Cond.Col || g.Cond.Kind != w.Cond.Kind {
			t.Fatalf("node %d: split %v vs %v", w.ID, g.Cond, w.Cond)
		}
		col := tbl.Cols[w.Cond.Col]
		gl, gr := g.Cond.Partition(col, rows)
		wl, wr := w.Cond.Partition(col, rows)
		if len(gl) != len(wl) || len(gr) != len(wr) {
			t.Fatalf("node %d: partition %d|%d vs %d|%d", w.ID, len(gl), len(gr), len(wl), len(wr))
		}
		for i := range gl {
			if gl[i] != wl[i] {
				t.Fatalf("node %d: left rows diverge at %d", w.ID, i)
			}
		}
		walk(g.Left, w.Left, wl)
		walk(g.Right, w.Right, wr)
	}
	walk(got.Root, want.Root, dataset.AllRows(tbl.NumRows()))
}

// TestHistSaturatedMatchesExactCluster is the cluster-level saturation
// property: with MaxBins large enough that every distinct numeric value gets
// its own bin, hist-mode training must grow the equivalent tree the exact
// protocol (and the serial oracle) produces — same structure, same row
// partitions, same predictions; classification bin counts are integers, so
// even histogram subtraction is bitwise exact.
func TestHistSaturatedMatchesExactCluster(t *testing.T) {
	cases := []synth.Spec{
		{Name: "numeric-clf", Rows: 2000, NumNumeric: 6, NumClasses: 3, ConceptDepth: 4, LabelNoise: 0.05, Seed: 71},
		{Name: "mixed-clf", Rows: 2000, NumNumeric: 3, NumCategorical: 3, CatLevels: 5, NumClasses: 2, ConceptDepth: 4, Seed: 72},
		{Name: "missing-clf", Rows: 1500, NumNumeric: 4, NumCategorical: 2, NumClasses: 2, MissingRate: 0.1, ConceptDepth: 4, Seed: 73},
	}
	for _, spec := range cases {
		t.Run(spec.Name, func(t *testing.T) {
			tbl := synth.GenerateTrain(spec)
			params := core.Defaults()
			params.MaxDepth = 7

			// 4*MaxBins sketch capacity comfortably exceeds the distinct
			// values of a 2000-row column: the summary is lossless and every
			// value is retained as a cut.
			c := newTestCluster(t, tbl, histConfig(4096, 2))
			defer c.Close()
			got, err := c.TrainOne(params)
			if err != nil {
				t.Fatalf("hist training: %v", err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("invalid hist tree: %v", err)
			}
			want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
			assertEquivalentTrees(t, tbl, got, want)
		})
	}
}

// TestHistModeDeterministicAndAccurate trains the same spec twice in coarse
// (non-saturated) hist mode: the runs must be bit-identical — bins derive
// from order-insensitive merged sketches and votes are aggregated in sorted
// worker order — and the approximate tree's training accuracy must stay close
// to the exact tree's.
func TestHistModeDeterministicAndAccurate(t *testing.T) {
	spec := synth.Spec{Name: "hist-det", Rows: 4000, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 74}
	tbl := synth.GenerateTrain(spec)
	params := core.Defaults()
	params.MaxDepth = 8

	train := func() *core.Tree {
		c := newTestCluster(t, tbl, histConfig(32, 2))
		defer c.Close()
		tr, err := c.TrainOne(params)
		if err != nil {
			t.Fatalf("hist training: %v", err)
		}
		return tr
	}
	first, second := train(), train()
	if !first.Equal(second) {
		t.Fatal("hist-mode training is not deterministic across runs")
	}

	exact := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	truth := make([]int32, tbl.NumRows())
	for r := range truth {
		truth[r] = tbl.Y().Cats[r]
	}
	histAcc := metrics.Accuracy(classifyAll(first, tbl), truth)
	exactAcc := metrics.Accuracy(classifyAll(exact, tbl), truth)
	if histAcc < exactAcc-0.02 {
		t.Fatalf("hist accuracy %.4f trails exact %.4f by more than 2%%", histAcc, exactAcc)
	}
}

// TestHistModeRegression exercises the regression kernel end to end (direct
// fills only — subtraction is classification-only) and its run-to-run
// determinism.
func TestHistModeRegression(t *testing.T) {
	spec := synth.Spec{Name: "hist-reg", Rows: 3000, NumNumeric: 5, NumCategorical: 2,
		NumClasses: 0, ConceptDepth: 4, LabelNoise: 0.2, Seed: 75}
	tbl := synth.GenerateTrain(spec)
	params := core.Defaults()
	params.MaxDepth = 6

	train := func() *core.Tree {
		c := newTestCluster(t, tbl, histConfig(64, 2))
		defer c.Close()
		tr, err := c.TrainOne(params)
		if err != nil {
			t.Fatalf("hist training: %v", err)
		}
		return tr
	}
	first, second := train(), train()
	if err := first.Validate(); err != nil {
		t.Fatalf("invalid hist regression tree: %v", err)
	}
	if !first.Equal(second) {
		t.Fatal("hist-mode regression training is not deterministic across runs")
	}
}

// TestHistModeSetTargetRounds drives the gradient-boosting cadence under hist
// mode: bins are proposed once, survive SetTarget, and the cached node
// histograms of the previous round must not leak into the next.
func TestHistModeSetTargetRounds(t *testing.T) {
	spec := synth.Spec{Name: "hist-gbt", Rows: 2500, NumNumeric: 5,
		NumClasses: 0, ConceptDepth: 4, LabelNoise: 0.1, Seed: 76}
	tbl := synth.GenerateTrain(spec)
	params := core.Defaults()
	params.MaxDepth = 4

	c := newTestCluster(t, tbl, histConfig(64, 2))
	defer c.Close()
	if _, err := c.TrainOne(params); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	y2 := make([]float64, tbl.NumRows())
	for r := range y2 {
		y2[r] = tbl.Y().Floats[r] * 0.5
	}
	if err := c.SetTarget(y2); err != nil {
		t.Fatalf("SetTarget: %v", err)
	}
	tr, err := c.TrainOne(params)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid round-2 tree: %v", err)
	}
}

// TestHistObsCounters asserts the hist telemetry shows up: votes received,
// histograms fetched, fills and (for a deep classification tree) subtraction
// hits.
func TestHistObsCounters(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "hist-obs", Rows: 3000, NumNumeric: 6,
		NumClasses: 2, ConceptDepth: 5, Seed: 77})
	reg := obs.NewRegistry()
	cfg := histConfig(32, 2)
	cfg.Observer = reg
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	params := core.Defaults()
	params.MaxDepth = 8
	if _, err := c.TrainOne(params); err != nil {
		t.Fatalf("train: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Master.BinRounds != 1 {
		t.Fatalf("BinRounds = %d, want 1", snap.Master.BinRounds)
	}
	if snap.Master.SketchMerges == 0 {
		t.Fatal("no sketch merges recorded")
	}
	if snap.Master.VoteMsgs == 0 || snap.Master.Votes == 0 {
		t.Fatalf("no votes recorded (msgs=%d cands=%d)", snap.Master.VoteMsgs, snap.Master.Votes)
	}
	if snap.Master.HistogramsFetched == 0 {
		t.Fatal("no histograms fetched")
	}
	if snap.Split.HistFills == 0 {
		t.Fatal("no histogram fills recorded")
	}
	if snap.Split.HistSubtractions == 0 {
		t.Fatal("no histogram subtractions recorded on a deep classification tree")
	}
}
