package cluster

import (
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// TestManyTreesInterleaved floods the engine with a 40-tree job under a
// tiny task granularity, so thousands of column- and subtree-tasks from
// many trees interleave in the pool. Every tree must come out identical to
// the serial result.
func TestManyTreesInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "stress", Rows: 3000, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 95,
	})
	c := newTestCluster(t, tbl, Config{
		Workers: 5, Compers: 3,
		Policy:     task.Policy{TauD: 120, TauDFS: 700, NPool: 40},
		JobTimeout: 3 * time.Minute,
	})
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, 40)
	for i := range specs {
		specs[i] = TreeSpec{Params: params}
	}
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatalf("stress job: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	for i, tr := range trees {
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs under stress", i)
		}
	}
}

// TestRepeatedJobsLeaveNoResidue runs many small jobs back to back and
// checks the master's state drains completely between them.
func TestRepeatedJobsLeaveNoResidue(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "residue", Rows: 1200, NumNumeric: 4, NumClasses: 2, ConceptDepth: 3, Seed: 96,
	})
	c := newTestCluster(t, tbl, Config{
		Workers: 3, Compers: 2,
		Policy: task.Policy{TauD: 200, TauDFS: 600, NPool: 8},
	})
	defer c.Close()
	for round := 0; round < 10; round++ {
		if _, err := c.TrainOne(core.Defaults()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// All load-balance charges must have been reverted.
	for w, row := range c.Master.WorkloadSnapshot() {
		for r, v := range row {
			if v < -1e-6 || v > 1e-6 {
				t.Fatalf("M_work[%d][%d] = %g after 10 jobs", w, r, v)
			}
		}
	}
	// Worker task tables must be empty (delegates fully released).
	time.Sleep(50 * time.Millisecond) // let trailing releases land
	for _, w := range c.Workers {
		w.mu.Lock()
		pending := len(w.tasks)
		waits := len(w.rowWaits)
		w.mu.Unlock()
		if pending != 0 || waits != 0 {
			t.Fatalf("worker %d retains %d tasks / %d row waits after jobs", w.ID(), pending, waits)
		}
	}
}
