package cluster

import (
	"fmt"
	"sync"
	"time"

	"treeserver/internal/checkpoint"
	"treeserver/internal/core"
	"treeserver/internal/obs"
	"treeserver/internal/transport"
)

// Standby is a hot-standby master: it materialises the primary's streamed
// checkpoint records into an in-memory replica and watches the failover
// lease. When the lease it observes lapses, it promotes itself — bumps the
// generation, announces the takeover, rebinds the master transport name,
// and drives the standard resume path (rejoin handshake, placement
// reconciliation, restart of unfinished trees) to finish the job with
// bit-identical results, never touching disk.
type Standby struct {
	ep      transport.Endpoint
	cfg     StandbyConfig
	obs     *obs.MasterObs
	replica *checkpoint.Replica

	leaseMu sync.Mutex
	lease   *leaseMachine

	mu       sync.Mutex
	master   *Master // the promoted master, nil until takeover
	result   []*core.Tree
	err      error
	promoted bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	doneOnce sync.Once
	wg       sync.WaitGroup
}

// StandbyConfig wires a standby to its fleet.
type StandbyConfig struct {
	// Schema is the dataset schema the promoted master trains against.
	Schema Schema
	// MasterCfg is the configuration the promoted master runs with. The
	// standby clears StandbyName/LeaseTTL on promotion (the promoted master
	// has no standby behind it) and keeps everything else, including
	// CheckpointDir if the deployment also logs to disk.
	MasterCfg MasterConfig
	// LeaseTTL is the watched lease duration; must match the primary's.
	LeaseTTL time.Duration
	// Rebind re-homes the master transport name to the standby's side and
	// returns the fresh endpoint the promoted master will run on. In the
	// in-memory fabric this is MemNetwork.Reset(MasterName), which also
	// closes the old primary's mailbox — the authoritative fence.
	Rebind func() (transport.Endpoint, error)
}

// NewStandby builds a standby listening on ep (conventionally named
// StandbyName). Start launches its receive and watchdog loops.
func NewStandby(ep transport.Endpoint, cfg StandbyConfig) (*Standby, error) {
	if cfg.LeaseTTL <= 0 {
		return nil, fmt.Errorf("cluster: standby requires a positive LeaseTTL")
	}
	if cfg.Rebind == nil {
		return nil, fmt.Errorf("cluster: standby requires a Rebind hook")
	}
	return &Standby{
		ep:      ep,
		cfg:     cfg,
		obs:     cfg.MasterCfg.Obs.Master(),
		replica: checkpoint.NewReplica(),
		lease:   newLeaseMachine(cfg.LeaseTTL),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the standby's receive loop and lease watchdog.
func (s *Standby) Start() {
	s.wg.Add(2)
	go s.recvLoop()
	go s.watchdog()
}

// Stop shuts the standby down. If it has promoted, the promoted master is
// stopped too (its workers get the shutdown broadcast).
func (s *Standby) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.mu.Lock()
		m := s.master
		s.mu.Unlock()
		if m != nil {
			m.Stop()
		}
		s.ep.Close()
	})
	s.wg.Wait()
}

// Done is closed once the standby has finished the job after a takeover (or
// failed trying). Never closed while the primary stays healthy.
func (s *Standby) Done() <-chan struct{} { return s.done }

// Result returns the takeover outcome: the completed forest or the error
// that ended the attempt. Valid after Done is closed.
func (s *Standby) Result() ([]*core.Tree, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result, s.err
}

// Master returns the promoted master (nil before takeover). After a
// failover this is the cluster's acting master — boosting rounds continue
// against it.
func (s *Standby) Master() *Master {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master
}

// Promoted reports whether the standby has begun a takeover.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// ReplicaStats returns how many streamed records the replica has applied
// and discarded as stale.
func (s *Standby) ReplicaStats() (applied, stale int64) {
	return s.replica.Stats()
}

func (s *Standby) finish(trees []*core.Tree, err error) {
	s.mu.Lock()
	s.result, s.err = trees, err
	s.mu.Unlock()
	s.doneOnce.Do(func() { close(s.done) })
}

func (s *Standby) recvLoop() {
	defer s.wg.Done()
	for {
		env, ok := s.ep.Recv()
		if !ok {
			return
		}
		switch msg := env.Payload.(type) {
		case CkptRecordMsg:
			s.handleRecord(msg)
		case LeaseGrantMsg:
			s.leaseMu.Lock()
			s.lease.Observe(time.Now(), msg.Gen)
			s.leaseMu.Unlock()
		case LeaseRenewMsg:
			s.handleRenew(msg)
		}
	}
}

func (s *Standby) handleRecord(msg CkptRecordMsg) {
	s.mu.Lock()
	promoted := s.promoted
	s.mu.Unlock()
	if promoted {
		return // a fenced primary's late records must not touch the replica
	}
	_ = s.replica.Apply(checkpoint.Record{Seq: msg.Seq, Kind: msg.Kind, Payload: msg.Payload})
	s.obs.StreamApplied(s.replica.Stats())
}

// handleRenew extends the watched lease and acks with the replica's applied
// count. Only current-generation renewals are acknowledged: acking a stale
// generation after a takeover would extend a lease nobody honours and muddy
// the primary's telemetry.
func (s *Standby) handleRenew(msg LeaseRenewMsg) {
	now := time.Now()
	s.leaseMu.Lock()
	s.lease.Observe(now, msg.Gen)
	ack := !s.lease.Fenced() && !s.lease.Leading(now) && msg.Gen == s.lease.MaxObserved()
	s.leaseMu.Unlock()
	if ack {
		applied, _ := s.replica.Stats()
		_ = s.ep.Send(MasterName, LeaseAckMsg{Gen: msg.Gen, Seq: msg.Seq, Records: applied})
	}
}

// watchdog polls the watched lease and fires the takeover when it lapses.
func (s *Standby) watchdog() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.leaseMu.Lock()
			lapsed := s.lease.Lapsed(time.Now())
			s.leaseMu.Unlock()
			if lapsed {
				s.promote()
				return
			}
		}
	}
}

// promote is the takeover: fence the old primary, re-home the fleet, resume
// the replicated job from memory. Runs once, on the watchdog goroutine.
func (s *Standby) promote() {
	st, err := s.replica.State()
	if err != nil {
		s.finish(nil, fmt.Errorf("cluster: standby takeover with no replicated checkpoint: %w", err))
		return
	}

	// The promoted master resumes at generation st.Gen+1 (resumeFrom bumps
	// it); acquire the matching lease generation so any stale renewal from
	// the old primary is recognisably below us.
	gen := leaseGen(st.Gen + 1)
	now := time.Now()
	s.leaseMu.Lock()
	if err := s.lease.Acquire(now, gen); err != nil {
		s.leaseMu.Unlock()
		s.finish(nil, fmt.Errorf("cluster: standby could not acquire lease: %w", err))
		return
	}
	s.leaseMu.Unlock()

	s.mu.Lock()
	s.promoted = true
	s.mu.Unlock()

	// Best-effort fast fence: tell a still-reachable primary it has been
	// superseded while the master name still routes to it. The rebind below
	// is the authoritative fence for an unreachable one.
	_ = s.ep.Send(MasterName, TakeoverMsg{Gen: gen})

	ep, err := s.cfg.Rebind()
	if err != nil {
		s.finish(nil, fmt.Errorf("cluster: standby could not rebind master endpoint: %w", err))
		return
	}

	cfg := s.cfg.MasterCfg
	cfg.StandbyName = "" // the promoted master runs without a standby
	cfg.LeaseTTL = 0
	if st.NumWorkers > cfg.NumWorkers {
		// Membership records streamed before the failover grew the fleet
		// past the configured size: the promoted master adopts the larger
		// fleet so live-joined workers stay addressable.
		cfg.NumWorkers = st.NumWorkers
	}
	m, err := NewMaster(ep, s.cfg.Schema, st.Placement, cfg)
	if err != nil {
		s.finish(nil, err)
		return
	}
	m.Start()

	s.mu.Lock()
	s.master = m
	s.mu.Unlock()
	// Stop raced promotion and read a nil master: shut the new one down.
	select {
	case <-s.stop:
		m.Stop()
		s.finish(nil, fmt.Errorf("cluster: standby stopped during takeover"))
		return
	default:
	}

	trees, err := m.resumeFrom(st, checkpoint.LoadInfo{})
	if err == nil {
		s.obs.FailoverCompleted()
	}
	s.finish(trees, err)
}
