package cluster

import (
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// smallPolicy forces both task kinds on laptop-sized data: nodes above 600
// rows go through the column-task protocol, below through subtree-tasks.
func smallPolicy() task.Policy {
	return task.Policy{TauD: 600, TauDFS: 2400, NPool: 8}
}

func testConfig() Config {
	return Config{Workers: 4, Compers: 2, Replicas: 2, Policy: smallPolicy(), JobTimeout: time.Minute}
}

// newTestCluster builds a cluster from a literal Config, failing the test on
// configuration errors.
func newTestCluster(t *testing.T, tbl *dataset.Table, cfg Config) *Cluster {
	t.Helper()
	c, err := NewInProcess(tbl, WithConfig(cfg))
	if err != nil {
		t.Fatalf("NewInProcess: %v", err)
	}
	return c
}

func classifyAll(tr *core.Tree, tbl *dataset.Table) []int32 {
	out := make([]int32, tbl.NumRows())
	for r := range out {
		out[r] = tr.PredictClass(tbl, r, 0)
	}
	return out
}

// TestDistributedMatchesSerial is the paper's core exactness claim: the
// distributed engine must produce the identical tree a conventional serial
// algorithm produces, on every attribute-type mix.
func TestDistributedMatchesSerial(t *testing.T) {
	cases := []synth.Spec{
		{Name: "numeric-clf", Rows: 5000, NumNumeric: 8, NumClasses: 3, ConceptDepth: 5, LabelNoise: 0.05, Seed: 21},
		{Name: "mixed-clf", Rows: 5000, NumNumeric: 4, NumCategorical: 4, CatLevels: 5, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 22},
		{Name: "missing-clf", Rows: 4000, NumNumeric: 5, NumCategorical: 2, NumClasses: 2, MissingRate: 0.08, ConceptDepth: 4, Seed: 23},
		{Name: "regression", Rows: 5000, NumNumeric: 6, NumCategorical: 2, NumClasses: 0, ConceptDepth: 4, LabelNoise: 0.2, Seed: 24},
	}
	for _, spec := range cases {
		t.Run(spec.Name, func(t *testing.T) {
			tbl := synth.GenerateTrain(spec)
			c := newTestCluster(t, tbl, testConfig())
			defer c.Close()

			params := core.Defaults()
			params.MaxDepth = 8
			distributed, err := c.TrainOne(params)
			if err != nil {
				t.Fatalf("distributed training: %v", err)
			}
			serial := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
			if err := distributed.Validate(); err != nil {
				t.Fatalf("invalid distributed tree: %v", err)
			}
			if !distributed.Equal(serial) {
				t.Fatalf("distributed tree differs from serial tree (%d vs %d nodes)",
					distributed.NumNodes, serial.NumNodes)
			}
			if distributed.NumNodes != serial.NumNodes || distributed.MaxDepth != serial.MaxDepth {
				t.Fatalf("summary mismatch: nodes %d/%d depth %d/%d",
					distributed.NumNodes, serial.NumNodes, distributed.MaxDepth, serial.MaxDepth)
			}
		})
	}
}

// TestAllSubtreePath drives the degenerate case where the whole tree fits in
// one subtree-task (|D_root| <= τ_D).
func TestAllSubtreePath(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "tiny", Rows: 500, NumNumeric: 5, NumClasses: 2, ConceptDepth: 3, Seed: 31})
	cfg := testConfig()
	cfg.Policy = task.Policy{TauD: 1000, TauDFS: 2000, NPool: 4}
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	got, err := c.TrainOne(core.Defaults())
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), core.Defaults())
	if !got.Equal(want) {
		t.Fatal("subtree-only path differs from serial")
	}
}

// TestAllColumnPath forces every split through the column-task protocol
// (τ_D below the leaf threshold region).
func TestAllColumnPath(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "colsonly", Rows: 1500, NumNumeric: 5, NumCategorical: 2, NumClasses: 2, ConceptDepth: 4, Seed: 32})
	cfg := testConfig()
	cfg.Policy = task.Policy{TauD: 1, TauDFS: 800, NPool: 4}
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	params := core.Defaults()
	params.MaxDepth = 6
	got, err := c.TrainOne(params)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	if !got.Equal(want) {
		t.Fatal("column-only path differs from serial")
	}
}

func TestSingleWorkerCluster(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "w1", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 33})
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Replicas = 1
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	got, err := c.TrainOne(core.Defaults())
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), core.Defaults())
	if !got.Equal(want) {
		t.Fatal("single-worker cluster differs from serial")
	}
}

func TestForestJobWithBaggingAndColumnSampling(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "forest", Rows: 4000, NumNumeric: 9, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 34})
	c := newTestCluster(t, tbl, testConfig())
	defer c.Close()

	var specs []TreeSpec
	for i := 0; i < 6; i++ {
		params := core.Defaults()
		params.Candidates = []int{i % 9, (i + 3) % 9, (i + 6) % 9}
		params.Seed = int64(i)
		specs = append(specs, TreeSpec{
			Params: params,
			Bag:    BagSpec{NumRows: tbl.NumRows(), Sample: 4000, Seed: int64(100 + i)},
		})
	}
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if len(trees) != 6 {
		t.Fatalf("got %d trees, want 6", len(trees))
	}
	for i, tr := range trees {
		if tr == nil {
			t.Fatalf("tree %d missing", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", i, err)
		}
		// Column restriction must hold.
		tr.Walk(func(n *core.Node) {
			if n.Cond == nil {
				return
			}
			allowed := specs[i].Params.Candidates
			ok := false
			for _, c := range allowed {
				if n.Cond.Col == c {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("tree %d split on column %d outside its C %v", i, n.Cond.Col, allowed)
			}
		})
		// Bagged trees must equal serial training on the same bag.
		bagRows := specs[i].Bag.Rows()
		want := core.TrainLocal(tbl, bagRows, specs[i].Params)
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs from serial training on its bag", i)
		}
	}
}

func TestNPoolOne(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "npool", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 35})
	cfg := testConfig()
	cfg.Policy.NPool = 1
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	specs := make([]TreeSpec, 4)
	for i := range specs {
		specs[i] = TreeSpec{Params: core.Defaults()}
	}
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	for i := 1; i < len(trees); i++ {
		if !trees[i].Equal(trees[0]) {
			t.Fatal("identical specs must produce identical trees")
		}
	}
}

func TestSequentialJobs(t *testing.T) {
	// Boosting layers and deep-forest levels run as consecutive jobs on one
	// cluster; state must not leak between them.
	tbl := synth.GenerateTrain(synth.Spec{Name: "seq", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 4, Seed: 36})
	c := newTestCluster(t, tbl, testConfig())
	defer c.Close()
	first, err := c.TrainOne(core.Defaults())
	if err != nil {
		t.Fatalf("job 1: %v", err)
	}
	second, err := c.TrainOne(core.Defaults())
	if err != nil {
		t.Fatalf("job 2: %v", err)
	}
	if !first.Equal(second) {
		t.Fatal("same job produced different trees across runs")
	}
}

func TestMasterNeverShipsRows(t *testing.T) {
	// The Section-V claim: master outbound traffic must be dramatically
	// smaller than with relayed rows on the same workload.
	spec := synth.Spec{Name: "relay", Rows: 6000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 5, Seed: 37}
	tbl := synth.GenerateTrain(spec)

	run := func(relay bool) (int64, *core.Tree) {
		cfg := testConfig()
		if relay {
			cfg.Ablation = AblationRelayRows
		}
		c := newTestCluster(t, tbl, cfg)
		defer c.Close()
		params := core.Defaults()
		params.MaxDepth = 8
		tr, err := c.TrainOne(params)
		if err != nil {
			t.Fatalf("train(relay=%v): %v", relay, err)
		}
		return c.Master.TransportStats().BytesSent, tr
	}
	lean, leanTree := run(false)
	relayed, relayTree := run(true)
	if !leanTree.Equal(relayTree) {
		t.Fatal("relay mode changed the trained tree")
	}
	if relayed < lean*3 {
		t.Fatalf("master bytes: delegate=%d relay=%d; expected relay to be >3x", lean, relayed)
	}
}

func TestRoundRobinAblation(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "rr", Rows: 3000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 38})
	cfg := testConfig()
	cfg.Ablation = AblationRoundRobin
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	got, err := c.TrainOne(core.Defaults())
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), core.Defaults())
	if !got.Equal(want) {
		t.Fatal("round-robin assignment changed the tree")
	}
}

func TestExtraTreesDistributed(t *testing.T) {
	train, test := synth.Generate(synth.Spec{Name: "xt", Rows: 5000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 39}, 0.25)
	c := newTestCluster(t, train, testConfig())
	defer c.Close()
	params := core.Defaults()
	params.ExtraTrees = true
	params.Seed = 7
	tr, err := c.TrainOne(params)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid extra-tree: %v", err)
	}
	acc := metrics.Accuracy(classifyAll(tr, test), test.Y().Cats)
	if acc < 0.55 {
		t.Fatalf("extra-tree accuracy %.3f barely above chance", acc)
	}
}

func TestLoadBalancedBetterOrEqualMasterBytes(t *testing.T) {
	// Sanity: the cost model must not change correctness and the workload
	// matrix must return to ~zero once the job completes.
	tbl := synth.GenerateTrain(synth.Spec{Name: "mwork", Rows: 3000, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 40})
	c := newTestCluster(t, tbl, testConfig())
	defer c.Close()
	if _, err := c.TrainOne(core.Defaults()); err != nil {
		t.Fatalf("train: %v", err)
	}
	for w, row := range c.Master.WorkloadSnapshot() {
		for r, v := range row {
			if v < -1e-6 || v > 1e-6 {
				t.Fatalf("M_work[%d][%d] = %g after completion, want 0", w, r, v)
			}
		}
	}
}

func TestWorkerCrashRecovery(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "crash", Rows: 6000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.05, Seed: 41})
	cfg := testConfig()
	cfg.Workers = 5
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.JobTimeout = 2 * time.Minute
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, 8)
	for i := range specs {
		specs[i] = TreeSpec{Params: params}
	}

	// Crash a worker shortly after the job starts.
	go func() {
		time.Sleep(30 * time.Millisecond)
		c.CrashWorker(2)
	}()
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train with crash: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	for i, tr := range trees {
		if tr == nil {
			t.Fatalf("tree %d missing after recovery", i)
		}
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs from serial after recovery", i)
		}
	}
	alive := c.Master.AliveWorkers()
	if len(alive) != 4 {
		t.Fatalf("alive workers = %v, want 4 of 5", alive)
	}
	// Every surviving worker pair must still jointly cover all columns.
	for _, col := range tbl.FeatureIndexes() {
		held := false
		for _, w := range alive {
			if c.Workers[w].HoldsColumn(col) {
				held = true
			}
		}
		if !held {
			t.Fatalf("column %d lost after recovery", col)
		}
	}
}

func TestBagSpecDeterministicAndSorted(t *testing.T) {
	b := BagSpec{NumRows: 1000, Sample: 500, Seed: 9}
	r1, r2 := b.Rows(), b.Rows()
	if len(r1) != 500 {
		t.Fatalf("bag size %d, want 500", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("bag not deterministic")
		}
		if i > 0 && r1[i] < r1[i-1] {
			t.Fatal("bag not sorted")
		}
	}
	all := BagSpec{NumRows: 5}
	if got := all.Rows(); len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Fatalf("all-rows bag = %v", got)
	}
	if all.Size() != 5 || b.Size() != 500 {
		t.Fatal("bag sizes wrong")
	}
}

func TestNodeStats(t *testing.T) {
	y := dataset.NewCategorical("y", []int32{0, 1, 1, 1}, []string{"a", "b"})
	s := StatsOf(y, []int32{0, 1, 2, 3}, 2)
	if s.N != 4 || s.Counts[0] != 1 || s.Counts[1] != 3 || s.Pure {
		t.Fatalf("stats = %+v", s)
	}
	var n core.Node
	s.Fill(&n)
	if n.Class != 1 || n.PMF[1] != 0.75 {
		t.Fatalf("filled node = %+v", n)
	}
	pure := StatsOf(y, []int32{1, 2, 3}, 2)
	if !pure.Pure {
		t.Fatal("pure subset not detected")
	}

	yr := dataset.NewNumeric("y", []float64{2, 4, 6})
	sr := StatsOf(yr, []int32{0, 1, 2}, 0)
	if sr.Pure {
		t.Fatal("non-constant regression marked pure")
	}
	var nr core.Node
	sr.Fill(&nr)
	if nr.Mean != 4 {
		t.Fatalf("mean = %g, want 4", nr.Mean)
	}
	constY := dataset.NewNumeric("y", []float64{5, 5})
	if !StatsOf(constY, []int32{0, 1}, 0).Pure {
		t.Fatal("constant regression not pure")
	}
}

func TestWorkerNameRoundTrip(t *testing.T) {
	if WorkerName(0) != "w0" || WorkerName(13) != "w13" {
		t.Fatalf("names: %s %s", WorkerName(0), WorkerName(13))
	}
}
