package cluster

// Worker-side elastic-fleet client: the joiner's half of the membership
// protocol. A fresh worker calls Join, which resends JoinRequestMsg until a
// terminal outcome — every other message of the handshake (accept, column
// copies, ready, admit) may be lost, duplicated, or superseded by a master
// failover, and the retry converges through the master's idempotent
// admission arms.

import (
	"fmt"
	"sort"
	"time"
)

// joinRetryEvery paces the join-request retry loop. It is deliberately
// shorter than typical task-retry deadlines: a request is tiny, and the
// retry is what heals every lost message of the handshake.
const joinRetryEvery = 250 * time.Millisecond

// Join announces the worker to the master and blocks until it is admitted
// into the fleet (nil), terminally rejected (the reject's reason), stopped,
// or timed out. Safe to call once per worker; the endpoint must already be
// registered as WorkerName(id) and Start must have been called.
func (w *Worker) Join(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	w.mu.Lock()
	done := w.joinDone
	gen := w.joinGen
	w.mu.Unlock()
	w.send(MasterName, JoinRequestMsg{Worker: w.id, Gen: gen})
	retry := time.NewTicker(joinRetryEvery)
	defer retry.Stop()
	deadline := time.After(timeout)
	for {
		select {
		case <-done:
			w.mu.Lock()
			err := w.joinErr
			w.mu.Unlock()
			return err
		case <-w.done:
			return fmt.Errorf("cluster: worker %d stopped before join completed", w.id)
		case <-deadline:
			return fmt.Errorf("cluster: worker %d join timed out after %v", w.id, timeout)
		case <-retry.C:
			w.mu.Lock()
			gen = w.joinGen
			w.mu.Unlock()
			w.send(MasterName, JoinRequestMsg{Worker: w.id, Gen: gen})
		}
	}
}

// Joined reports whether the worker has been admitted into a fleet.
func (w *Worker) Joined() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.joined
}

// handleJoinAccept arms the readiness confirmation: once every assigned
// column replica is installed (ColumnCopyMsg deliveries), the worker
// reports ready. A duplicate accept re-arms the wait and re-sends the
// ready, which the master ignores after admission.
func (w *Worker) handleJoinAccept(msg JoinAcceptMsg) {
	if msg.Worker != w.id {
		return
	}
	w.mu.Lock()
	if msg.Gen > w.joinGen {
		w.joinGen = msg.Gen
	}
	w.mu.Unlock()
	cols := append([]int(nil), msg.Cols...)
	sort.Ints(cols)
	w.whenColumnsPresent(cols, func() {
		w.send(MasterName, JoinReadyMsg{Worker: w.id, Gen: msg.Gen, Cols: cols})
	})
}

// handleJoinAdmit completes the handshake: the worker is a fleet member and
// the Join call unblocks. Duplicates are idempotent.
func (w *Worker) handleJoinAdmit(msg JoinAdmitMsg) {
	if msg.Worker != w.id {
		return
	}
	w.mu.Lock()
	if msg.Gen > w.joinGen {
		w.joinGen = msg.Gen
	}
	w.joined = true
	w.joinErr = nil
	var done chan struct{}
	if !w.joinClosed {
		w.joinClosed = true
		done = w.joinDone
	}
	w.mu.Unlock()
	if done != nil {
		close(done)
	}
}

// handleJoinReject ends the join on a terminal refusal. Retryable rejects
// (master mid-recovery) leave the retry loop running; a reject arriving
// after admission is a fenced stale primary's and is ignored.
func (w *Worker) handleJoinReject(msg JoinRejectMsg) {
	if msg.Worker != w.id {
		return
	}
	w.mu.Lock()
	if msg.Gen > w.joinGen {
		w.joinGen = msg.Gen
	}
	if msg.Retryable || w.joined {
		w.mu.Unlock()
		return
	}
	w.joinErr = fmt.Errorf("cluster: join rejected: %s", msg.Reason)
	var done chan struct{}
	if !w.joinClosed {
		w.joinClosed = true
		done = w.joinDone
	}
	w.mu.Unlock()
	if done != nil {
		close(done)
	}
}
