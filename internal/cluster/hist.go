package cluster

import (
	"fmt"
	"sort"
	"time"

	"treeserver/internal/dataset"
	"treeserver/internal/sketch"
	"treeserver/internal/split"
)

// Master side of the histogram training mode. Two sub-protocols live here:
//
// Bin proposal (ensureBins): once per cluster, before the first hist job, the
// master collects one quantile summary per owned column from every alive
// worker, merges the replica summaries, derives immutable split.Bins, and
// broadcasts them until an alive quorum acks. Merging replica sketches of the
// same column collapses equal values into uniformly scaled weights, and the
// quantile extraction is scale-invariant, so the derived bins are identical
// regardless of which replicas happened to report — bins are deterministic
// across runs, restarts and failure patterns.
//
// Vote aggregation (handleTopKVote → electAndFetchLocked → handleHistogram):
// hist-mode column tasks answer with at most TopK candidate splits instead of
// full histograms. The master flattens the votes in sorted worker order,
// elects the best TopK distinct columns, fetches only those columns' full
// node histograms from their owners, re-scores them centrally and hands the
// winner to the unchanged decideSplit → ConfirmSplit flow. Under column
// partitioning each vote is already exact with respect to the bins (a worker
// holds every row of its columns), so the fetch round is a cross-column
// merge/verification pass in the spirit of PV-Tree rather than a statistical
// repair; it is also what keeps per-task traffic at O(TopK) histograms
// instead of O(columns).

// ensureBins runs the bin-proposal round if it has not completed yet. The
// caller holds m.jobMu, so the round can only interleave between jobs. Bins
// discretise feature columns, which never change for the life of the cluster,
// so one successful round serves every subsequent job (SetTarget swaps only
// the label column).
func (m *Master) ensureBins() error {
	m.mu.Lock()
	if m.binsReady {
		m.mu.Unlock()
		return nil
	}
	m.binSeq++
	seq := m.binSeq
	var alive []int
	for w, ok := range m.alive {
		if ok {
			alive = append(alive, w)
		}
	}
	m.binProps = map[int]*BinProposalMsg{}
	propCh := make(chan struct{}, 1)
	m.binPropCh = propCh
	m.mu.Unlock()

	req := BinProposalRequestMsg{Seq: seq, MaxBins: m.cfg.MaxBins}
	for _, w := range alive {
		m.send(w, req)
	}

	timeout := m.cfg.JobTimeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	// Proposals are recomputed idempotently on the worker, so resending to
	// laggards is safe; as with SetTarget, resends only arm when the task
	// re-execution machinery provides a cadence.
	resendEvery := m.cfg.TaskRetry
	if resendEvery <= 0 {
		resendEvery = timeout
	}
	resend := time.NewTicker(resendEvery)
	defer resend.Stop()
	deadline := time.After(timeout)
	for {
		m.mu.Lock()
		var missing []int
		live := 0
		for _, w := range alive {
			if !m.alive[w] {
				continue
			}
			live++
			if _, ok := m.binProps[w]; !ok {
				missing = append(missing, w)
			}
		}
		done := live > 0 && len(missing) == 0
		m.mu.Unlock()
		if done {
			break
		}
		select {
		case <-propCh:
		case <-resend.C:
			for _, w := range missing {
				m.send(w, req)
			}
		case <-deadline:
			m.mu.Lock()
			m.binProps, m.binPropCh = nil, nil
			m.mu.Unlock()
			return fmt.Errorf("cluster: bin proposals not received from all workers within %v", timeout)
		case <-m.stop:
			return fmt.Errorf("cluster: master stopped")
		}
	}

	m.mu.Lock()
	props := m.binProps
	m.binProps, m.binPropCh = nil, nil
	cols := make([]int, 0, len(m.placement.Owners))
	for col := range m.placement.Owners {
		cols = append(cols, col)
	}
	m.mu.Unlock()

	bins, binsSlice, merges, err := mergeProposals(cols, props, m.cfg.MaxBins)
	if err != nil {
		return err
	}
	m.obs.BinRoundCompleted(merges)

	// Broadcast with the SetTarget quorum template: resend to unacked
	// workers; a worker that dies mid-round is out of the quorum.
	m.mu.Lock()
	m.bins = bins
	m.binAcks = map[int]bool{}
	ackCh := make(chan struct{})
	m.binAckCh = ackCh
	alive = alive[:0]
	for w, ok := range m.alive {
		if ok {
			alive = append(alive, w)
		}
	}
	m.binWant = len(alive)
	m.mu.Unlock()

	bcast := BinBroadcastMsg{Seq: seq, Bins: binsSlice}
	for _, w := range alive {
		m.send(w, bcast)
	}
	for {
		select {
		case <-ackCh:
			goto acked
		case <-resend.C:
			m.mu.Lock()
			var unacked []int
			live := 0
			for _, w := range alive {
				if !m.alive[w] {
					continue
				}
				live++
				if !m.binAcks[w] {
					unacked = append(unacked, w)
				}
			}
			done := live > 0 && len(unacked) == 0
			if done {
				m.binAckCh = nil
			}
			m.mu.Unlock()
			if done {
				goto acked
			}
			for _, w := range unacked {
				m.send(w, bcast)
			}
		case <-deadline:
			m.mu.Lock()
			m.binAckCh = nil
			m.mu.Unlock()
			return fmt.Errorf("cluster: bin broadcast not acknowledged by all workers within %v", timeout)
		case <-m.stop:
			return fmt.Errorf("cluster: master stopped")
		}
	}
acked:

	m.mu.Lock()
	m.binsReady = true
	m.mu.Unlock()
	return nil
}

// mergeProposals derives the cluster-wide bins from the collected per-worker
// sketches. Columns and reporting workers are iterated in sorted order, so
// the result is independent of map iteration and message arrival order. A
// column no reporting worker covers is an error: without bins its histograms
// would be meaningless.
func mergeProposals(cols []int, props map[int]*BinProposalMsg, maxBins int) (map[int]split.Bins, []split.Bins, int, error) {
	sort.Ints(cols)
	workers := make([]int, 0, len(props))
	byWorker := make(map[int]map[int]ColumnSketch, len(props))
	for w, p := range props {
		workers = append(workers, w)
		byCol := make(map[int]ColumnSketch, len(p.Sketches))
		for _, cs := range p.Sketches {
			byCol[cs.Col] = cs
		}
		byWorker[w] = byCol
	}
	sort.Ints(workers)

	bins := make(map[int]split.Bins, len(cols))
	binsSlice := make([]split.Bins, 0, len(cols))
	merges := 0
	for _, col := range cols {
		var merged *sketch.Sketch
		levels, reports := 0, 0
		categorical := false
		for _, w := range workers {
			cs, ok := byWorker[w][col]
			if !ok {
				continue
			}
			reports++
			if cs.Kind == dataset.Categorical {
				categorical = true
				if cs.Levels > levels {
					levels = cs.Levels
				}
				continue
			}
			if merged == nil {
				merged = sketch.New(histSketchSize(maxBins))
			}
			merged.Merge(sketch.FromEntries(histSketchSize(maxBins), cs.Entries))
			merges++
		}
		if reports == 0 {
			return nil, nil, 0, fmt.Errorf("cluster: no bin proposal covers column %d", col)
		}
		var b split.Bins
		if categorical {
			b = split.Bins{Col: col, Kind: dataset.Categorical, NumBins: levels}
		} else {
			b = split.BinsFromSketch(col, merged, maxBins)
		}
		bins[col] = b
		binsSlice = append(binsSlice, b)
	}
	return bins, binsSlice, merges, nil
}

// handleBinProposal records one worker's sketches (first delivery wins; the
// proposal recompute is deterministic, so duplicates carry identical data).
func (m *Master) handleBinProposal(msg BinProposalMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.binProps == nil || msg.Seq != m.binSeq ||
		msg.Worker < 0 || msg.Worker >= m.cfg.NumWorkers {
		return
	}
	if _, dup := m.binProps[msg.Worker]; dup {
		return
	}
	p := msg
	m.binProps[msg.Worker] = &p
	select {
	case m.binPropCh <- struct{}{}:
	default:
	}
}

// handleBinAck records one worker's bin-broadcast acknowledgement.
func (m *Master) handleBinAck(msg BinAckMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if msg.Seq != m.binSeq || m.binAckCh == nil {
		return
	}
	if !m.binAcks[msg.Worker] {
		m.binAcks[msg.Worker] = true
		if len(m.binAcks) >= m.binWant {
			close(m.binAckCh)
			m.binAckCh = nil
		}
	}
}

// handleTopKVote is the hist-mode analogue of handleColumnResult: it records
// one worker's top-k candidates and, once every involved worker has voted,
// runs the election.
func (m *Master) handleTopKVote(msg TopKVoteMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.tasks[msg.Task]
	if !ok || entry.winner != 0 {
		return // unknown task, or the race is already decided
	}
	as, ok := entry.attempts[msg.Attempt]
	if !ok || !as.hist || as.got[msg.Worker] {
		return // revoked/superseded attempt, wrong protocol, or duplicate
	}
	as.got[msg.Worker] = true
	as.received++
	if !as.statsSet {
		as.stats, as.statsSet = msg.Stats, true
	}
	as.votesBy[msg.Worker] = msg.Votes
	m.obs.VoteReceived(len(msg.Votes))
	if m.health != nil {
		m.health.ObserveTask(msg.Worker, entry.plan.size, time.Since(as.assignedAt))
	}
	if as.received < as.expected {
		return
	}
	m.electAndFetchLocked(entry, as)
}

// electAndFetchLocked runs the global top-k election over one attempt's votes
// and requests the elected columns' full histograms from their owners. Votes
// are flattened in sorted worker order before sorting with the Better
// comparator; since workers' columns are disjoint within an attempt, Better's
// lower-column tie-break makes the order — and hence the election — a pure
// function of the votes, never of arrival order.
func (m *Master) electAndFetchLocked(entry *mtask, as *attemptState) {
	workers := make([]int, 0, len(as.votesBy))
	for w := range as.votesBy {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	type vote struct {
		cand   split.Candidate
		worker int
	}
	var votes []vote
	for _, w := range workers {
		for _, c := range as.votesBy[w] {
			if c.Valid {
				votes = append(votes, vote{c, w})
			}
		}
	}
	if as.stats.Pure || len(votes) == 0 {
		// No column admits a split (or the node is pure): as.best stays
		// invalid and decideSplit takes its leaf path.
		m.decideSplitLocked(entry, as)
		return
	}
	sort.SliceStable(votes, func(i, j int) bool { return votes[i].cand.Better(votes[j].cand) })

	topK := entry.spec.topK
	if topK < 1 {
		topK = 1
	}
	as.fetchCol = map[int]int{}
	perOwner := map[int][]int{}
	for _, v := range votes {
		col := v.cand.Cond.Col
		if _, dup := as.fetchCol[col]; dup {
			continue
		}
		as.fetchCol[col] = v.worker
		perOwner[v.worker] = append(perOwner[v.worker], col)
		if len(as.fetchCol) >= topK {
			break
		}
	}

	as.fetching = true
	as.fetchWant = len(perOwner)
	as.fetchGot = map[int]bool{}
	as.hists = map[int]*split.Hist{}
	for w, wcols := range perOwner {
		sort.Ints(wcols)
		m.send(w, HistogramRequestMsg{Task: entry.plan.id, Attempt: as.attempt, Cols: wcols})
	}
}

// handleHistogram collects one owner's full histograms; when every requested
// owner has answered, the fetched columns are re-scored centrally.
func (m *Master) handleHistogram(msg HistogramMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.tasks[msg.Task]
	if !ok || entry.winner != 0 {
		return
	}
	as, ok := entry.attempts[msg.Attempt]
	if !ok || !as.fetching || as.fetchGot[msg.Worker] {
		return
	}
	as.fetchGot[msg.Worker] = true
	m.obs.HistogramsFetched(len(msg.Hists))
	for i, col := range msg.Cols {
		if i >= len(msg.Hists) || msg.Hists[i] == nil {
			continue
		}
		if _, want := as.fetchCol[col]; !want {
			continue
		}
		// Columns are disjoint per owner within an attempt, so a column
		// normally arrives exactly once; Merge keeps a duplicate-coverage
		// delivery from silently overwriting accumulated state.
		if prev, ok := as.hists[col]; ok {
			prev.Merge(msg.Hists[i])
		} else {
			as.hists[col] = msg.Hists[i]
		}
	}
	if len(as.fetchGot) >= as.fetchWant {
		m.finishHistFetchLocked(entry, as)
	}
}

// finishHistFetchLocked scores the fetched histograms and hands the winner to
// the unchanged confirm flow. Columns are scored in ascending order, matching
// the tie-break direction of Better, so the decision is deterministic.
func (m *Master) finishHistFetchLocked(entry *mtask, as *attemptState) {
	as.fetching = false
	s := split.GetScratch()
	defer split.PutScratch(s)
	cols := make([]int, 0, len(as.hists))
	for col := range as.hists {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		b, ok := m.bins[col]
		if !ok {
			continue
		}
		cand := split.BestFromHist(b, as.hists[col], entry.spec.measure, entry.spec.maxExh, s)
		if cand.Valid && cand.Better(as.best) {
			as.best = cand
			as.bestWorker = as.fetchCol[col]
		}
	}
	as.hists = nil
	m.decideSplitLocked(entry, as)
}
