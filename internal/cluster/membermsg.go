package cluster

// Elastic-fleet membership wire messages. The PR 4/PR 7 rejoin handshake
// covers workers that crash back into an existing slot; these messages
// generalize it into a full membership protocol: a brand-new worker can
// announce itself mid-job (join), and a live worker can be cordoned and
// retired without failing the job (drain). The join handshake is
// idempotent end to end — the joiner resends JoinRequestMsg until it sees
// an admit or a reject, and every master-side transition tolerates
// duplicates — so lost accepts, lost column copies, and even a master
// failover mid-join all self-heal.

import "encoding/gob"

// JoinRequestMsg announces a prospective worker to the master. Worker is
// the slot index the joiner wants (its endpoint is already registered as
// WorkerName(Worker)). Gen is the highest master generation the joiner has
// observed, or -1 for a fresh worker that has never spoken to any master;
// a request carrying Gen newer than the receiving master's own generation
// proves the receiver is a stale primary and is rejected (the same fencing
// rule the lease takeover uses).
type JoinRequestMsg struct {
	Worker int
	Gen    int64
}

// JoinAcceptMsg tells a joiner it is provisionally accepted: Cols lists
// the column replicas it will receive (shipped separately as
// ColumnCopyMsg, reusing the re-replication path), NumWorkers is the fleet
// size after growth, and Gen is the admitting master's generation. The
// joiner is NOT schedulable yet — it must collect every column in Cols and
// answer with JoinReadyMsg.
type JoinAcceptMsg struct {
	Worker     int
	Gen        int64
	Cols       []int
	NumWorkers int
}

// JoinRejectMsg refuses a join: generation fence violated, fleet cap
// reached, or the master is mid-recovery. Reason is human-readable;
// Retryable tells the joiner whether resending later can succeed (a
// mid-recovery reject is retryable, a fleet-cap or fence reject is not).
type JoinRejectMsg struct {
	Worker    int
	Gen       int64
	Reason    string
	Retryable bool
}

// JoinReadyMsg is the joiner's confirmation that every column replica in
// its accept has landed. Cols echoes the held set (sorted) so the master's
// placement update is driven by what the worker actually holds, mirroring
// the authoritative-report rule of the rejoin handshake.
type JoinReadyMsg struct {
	Worker int
	Gen    int64
	Cols   []int
}

// JoinAdmitMsg completes the handshake: the worker is now alive,
// schedulable, and counted in the fleet of NumWorkers. Receipt stops the
// joiner's request-retry loop.
type JoinAdmitMsg struct {
	Worker     int
	Gen        int64
	NumWorkers int
}

// DrainRequestMsg asks the master to gracefully retire a worker: cordon
// it, hand its last-replica columns to survivors, let in-flight attempts
// finish, then shut it down. Sent by CLIs/tests that cannot call
// Master.Drain directly.
type DrainRequestMsg struct {
	Worker int
}

// ColumnCopyAckMsg tells the master a ColumnCopyMsg landed: Worker now
// holds a replica of Col. Drains wait on these acks before retiring the
// drainee — a column whose only copy was on the drainee must be confirmed
// on a survivor, or a lossy fabric could silently destroy its last replica.
// Acks for copies nobody is waiting on (fail-stop re-replication) are
// recorded and otherwise ignored.
type ColumnCopyAckMsg struct {
	Worker int
	Col    int
}

func init() {
	gob.Register(JoinRequestMsg{})
	gob.Register(JoinAcceptMsg{})
	gob.Register(JoinRejectMsg{})
	gob.Register(JoinReadyMsg{})
	gob.Register(JoinAdmitMsg{})
	gob.Register(DrainRequestMsg{})
	gob.Register(ColumnCopyAckMsg{})
}
