package cluster

import (
	"fmt"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/task"
)

// Fault tolerance (Appendix E). Worker failure is detected by missed
// heartbeats. Recovery has three parts:
//
//  1. Column re-replication: every column the dead worker held is copied
//     from a surviving replica to another worker, restoring the replication
//     factor. If a column loses its last replica the job fails (data loss).
//  2. Task revocation: in-flight tasks whose assignment involved the dead
//     worker are dropped at the surviving workers and requeued at the head
//     of B_plan, exactly as the paper describes — provided their row sets
//     survive (the parent's delegate is alive).
//  3. Tree restart: a task whose parent delegate died cannot recover its
//     I_x (the whole point of Section V is that nobody else has it), so the
//     affected trees restart from their root tasks. Completed trees are
//     unaffected.

func (m *Master) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		// The probe sequence lives on the master (m.hbSeq, under m.mu)
		// rather than in a loop-local: a worker admitted mid-job starts at
		// the current sequence, so the relative-lag detector grants it a
		// full budget instead of failing it on its first probe.
		m.mu.Lock()
		m.hbSeq++
		seq := m.hbSeq
		failed := failedWorkers(m.alive, m.lastSeq, int64(m.cfg.HeartbeatBudget))
		m.health.PingSent(seq, time.Now())
		m.mu.Unlock()
		for _, w := range failed {
			m.NotifyWorkerFailure(w)
		}
		for w := 0; w < m.fleet(); w++ {
			m.send(w, PingMsg{Seq: seq})
		}
	}
}

// heartbeatMissedProbes is the default failure-detection budget: a worker is
// failed when its latest pong lags the freshest pong by more than this many
// probes. MasterConfig.HeartbeatBudget (cluster.WithHeartbeatBudget)
// overrides it.
const heartbeatMissedProbes = 20

// failedWorkers applies the relative-lag detection rule to a pong-sequence
// snapshot: a worker is failed when its latest pong lags the freshest pong
// from any alive worker by more than missedProbes probes. The relative
// comparison makes detection robust to master-side queue lag, which delays
// all pongs equally; the generous budget tolerates workers whose receive
// loop briefly stalls on large data requests. No worker is failed until the
// freshest pong itself clears the budget, so a cluster that is merely slow
// to start never triggers detection.
func failedWorkers(alive []bool, lastSeq []int64, missedProbes int64) []int {
	var maxSeq int64
	for w := range alive {
		if alive[w] && lastSeq[w] > maxSeq {
			maxSeq = lastSeq[w]
		}
	}
	if maxSeq <= missedProbes {
		return nil
	}
	var failed []int
	for w := range alive {
		if alive[w] && maxSeq-lastSeq[w] > missedProbes {
			failed = append(failed, w)
		}
	}
	return failed
}

// NotifyWorkerFailure runs the recovery protocol for a failed worker. The
// heartbeat prober calls it automatically; tests may call it directly after
// injecting a crash.
func (m *Master) NotifyWorkerFailure(failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if failed < 0 || failed >= len(m.alive) || !m.alive[failed] {
		return
	}
	m.alive[failed] = false
	if failed < len(m.draining) {
		// A draining worker that dies (or is force-shed) is simply dead.
		m.draining[failed] = false
	}
	if m.health != nil {
		// Fail-stop recovery owns the worker now; quarantine bookkeeping for
		// it (and any outstanding probe) is void.
		m.health.WorkerFailed(failed)
	}
	m.refreshMaskLocked()

	if err := m.rereplicateLocked(failed); err != nil {
		m.failJobLocked(err)
		return
	}

	// Pass 1: find trees whose surviving state depends on the dead worker's
	// row sets — they must restart.
	broken := map[int32]bool{}
	for _, entry := range m.tasks {
		if entry.plan.parent.Worker == failed {
			broken[entry.plan.tree] = true
		}
	}
	for _, p := range m.bplan.Snapshot() {
		if p.parent.Worker == failed {
			broken[p.tree] = true
		}
	}

	// Pass 2: revoke tasks that involved the dead worker; requeue the
	// recoverable ones at the head of B_plan. A task of a broken tree is
	// superseded — the restart re-plans the tree from its root instead.
	for id, entry := range m.tasks {
		involved := false
		for _, as := range entry.attempts {
			if as.involved[failed] {
				involved = true
				break
			}
		}
		if !involved && !broken[entry.plan.tree] {
			continue
		}
		m.cancelAttemptsLocked(entry, nil)
		delete(m.tasks, id)
		if !broken[entry.plan.tree] {
			m.bplan.PushHead(entry.plan)
			m.obs.TaskRetried()
			m.obs.PlanRequeued()
		} else {
			m.obs.TaskSuperseded()
		}
	}
	m.obs.SetDequeDepth(m.bplan.Len())

	// Pass 3: restart broken trees from their roots.
	if len(broken) > 0 {
		m.bplan.Filter(func(p *plan) bool { return broken[p.tree] })
		for tid := range broken {
			m.restartTreeLocked(tid)
		}
	}
}

// rereplicateLocked restores the replication factor of every column the
// failed worker held.
func (m *Master) rereplicateLocked(failed int) error {
	for col, owners := range m.placement.Owners {
		survivors := owners[:0]
		lost := false
		for _, o := range owners {
			if o == failed {
				lost = true
			} else if m.alive[o] {
				survivors = append(survivors, o)
			}
		}
		if !lost {
			m.placement.Owners[col] = survivors
			continue
		}
		if len(survivors) == 0 {
			return fmt.Errorf("cluster: column %d lost its last replica (worker %d)", col, failed)
		}
		// Copy to the alive worker holding the fewest columns.
		target, best := -1, int(^uint(0)>>1)
		held := make(map[int]int, m.cfg.NumWorkers)
		for _, os := range m.placement.Owners {
			for _, o := range os {
				held[o]++
			}
		}
		for w := 0; w < m.cfg.NumWorkers; w++ {
			if !m.alive[w] || m.draining[w] || m.placementHoldsLocked(w, col, survivors) {
				continue
			}
			if held[w] < best {
				target, best = w, held[w]
			}
		}
		m.placement.Owners[col] = survivors
		if target >= 0 {
			m.placement.Owners[col] = append(survivors, target)
			m.send(survivors[0], ReplicateColumnMsg{Col: col, To: target})
		}
	}
	return nil
}

func (m *Master) placementHoldsLocked(w, col int, survivors []int) bool {
	for _, o := range survivors {
		if o == w {
			return true
		}
	}
	return false
}

// restartTreeLocked throws away a tree's partial construction and requeues
// its root task at the head of B_plan. A tree that exhausts MaxTreeRestarts
// fails the job — repeated delegate loss on one tree is a systemic fault the
// caller must see, not an excuse to loop forever.
func (m *Master) restartTreeLocked(tid int32) {
	a, ok := m.trees[tid]
	if !ok {
		return
	}
	m.prog.Clear(tid)
	a.epoch++
	if a.epoch > m.cfg.MaxTreeRestarts {
		m.failJobLocked(fmt.Errorf("cluster: tree %d restarted %d times, exceeding MaxTreeRestarts %d — repeated delegate failure", tid, a.epoch, m.cfg.MaxTreeRestarts))
		return
	}
	m.obs.TreeRestarted(a.epoch)
	size := a.spec.Bag.Size()
	a.root = &core.Node{Depth: 0, N: size}
	root := &plan{
		id: m.newTaskIDLocked(), tree: tid, node: a.root,
		depth: 0, size: size,
		parent: ParentRef{Worker: -1, Bag: a.spec.Bag},
		kind:   m.cfg.Policy.KindFor(size),
		epoch:  a.epoch,
	}
	if m.cfg.Ablation == AblationRelayRows {
		root.rows = a.spec.Bag.Rows()
	}
	m.prog.Add(tid, 1)
	m.bplan.PushHead(root)
	m.obs.PlanRequeued()
	m.obs.SetDequeDepth(m.bplan.Len())
}

// AliveWorkers returns the indexes of workers currently believed alive.
func (m *Master) AliveWorkers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for w, ok := range m.alive {
		if ok {
			out = append(out, w)
		}
	}
	return out
}

var _ = task.ColumnTask // keep the task import explicit for godoc references
