package cluster

import (
	"strings"
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
)

// memberTable is the shared workload for the membership tests: big enough to
// exercise both task kinds under smallPolicy, mixed types so column copies
// carry every column representation.
func memberTable() *dataset.Table {
	return synth.GenerateTrain(synth.Spec{Name: "member", Rows: 3000, NumNumeric: 6,
		NumCategorical: 2, CatLevels: 4, NumClasses: 2, ConceptDepth: 5, Seed: 91})
}

// TestJoinBetweenJobs: a worker that joins an idle cluster is admitted,
// receives column replicas, and the next job trains bit-identically to the
// serial oracle. The join must only ADD replicas — no column loses a holder.
func TestJoinBetweenJobs(t *testing.T) {
	tbl := memberTable()
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Observer = reg
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	if _, err := c.TrainOne(params); err != nil {
		t.Fatalf("job before join: %v", err)
	}
	before := c.Master.PlacementSnapshot()

	w, err := c.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !w.Joined() {
		t.Fatal("Join returned nil error but worker does not report joined")
	}

	after := c.Master.PlacementSnapshot()
	if after.NumWorkers != before.NumWorkers+1 {
		t.Fatalf("fleet size %d after join, want %d", after.NumWorkers, before.NumWorkers+1)
	}
	joined := 0
	for col, owners := range after.Owners {
		holders := map[int]bool{}
		for _, o := range owners {
			holders[o] = true
			if o == w.ID() {
				joined++
			}
		}
		for _, o := range before.Owners[col] {
			if !holders[o] {
				t.Fatalf("column %d lost holder %d during join — joins must only add replicas", col, o)
			}
		}
	}
	if joined == 0 {
		t.Fatal("joined worker holds no column replicas")
	}

	tr, err := c.TrainOne(params)
	if err != nil {
		t.Fatalf("job after join: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	if !tr.Equal(want) {
		t.Fatal("post-join tree differs from serial oracle")
	}

	m := reg.Snapshot().Master
	if m.Joins != 1 {
		t.Fatalf("Joins counter %d, want 1", m.Joins)
	}
	if m.RebalancedColumns != int64(joined) {
		t.Fatalf("RebalancedColumns %d, want %d (the joiner's replica count)", m.RebalancedColumns, joined)
	}
	if m.Drains != 0 || m.JoinRejects != 0 || m.DrainSheds != 0 {
		t.Fatalf("unexpected elastic counters: %+v", m)
	}
}

// TestJoinMidJob: a worker joining while a multi-tree job is in flight must
// not perturb the forest — placement never affects split results.
func TestJoinMidJob(t *testing.T) {
	tbl := memberTable()
	c := newTestCluster(t, tbl, testConfig())
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, 4)
	for i := range specs {
		specs[i] = TreeSpec{Params: params}
	}
	trainErr := make(chan error, 1)
	trees := make(chan []*core.Tree, 1)
	go func() {
		got, err := c.Train(specs)
		trees <- got
		trainErr <- err
	}()

	w, err := c.Join()
	if err != nil {
		t.Fatalf("Join during job: %v", err)
	}
	if !w.Joined() {
		t.Fatal("worker not joined")
	}
	got := <-trees
	if err := <-trainErr; err != nil {
		t.Fatalf("train with concurrent join: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	for i, tr := range got {
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs from serial with a concurrent join", i)
		}
	}
}

// TestJoinCatchesUpTarget: a worker joining mid-boosting is replayed the
// retained SetTarget payload at admission, so the next round matches a fleet
// that never churned.
func TestJoinCatchesUpTarget(t *testing.T) {
	spec := synth.Spec{Name: "member-gbt", Rows: 2500, NumNumeric: 5,
		NumClasses: 0, ConceptDepth: 4, LabelNoise: 0.1, Seed: 92}
	params := core.Defaults()
	params.MaxDepth = 4

	round2 := func(join bool) *core.Tree {
		tbl := synth.GenerateTrain(spec)
		c := newTestCluster(t, tbl, testConfig())
		defer c.Close()
		if _, err := c.TrainOne(params); err != nil {
			t.Fatalf("round 1: %v", err)
		}
		y2 := make([]float64, tbl.NumRows())
		for r := range y2 {
			y2[r] = tbl.Y().Floats[r] * 0.5
		}
		if err := c.SetTarget(y2); err != nil {
			t.Fatalf("SetTarget: %v", err)
		}
		if join {
			if _, err := c.Join(); err != nil {
				t.Fatalf("Join mid-boosting: %v", err)
			}
		}
		tr, err := c.TrainOne(params)
		if err != nil {
			t.Fatalf("round 2: %v", err)
		}
		return tr
	}

	if !round2(true).Equal(round2(false)) {
		t.Fatal("round-2 tree with a mid-boosting join differs from the churn-free fleet")
	}
}

// TestDrainGraceful: draining a worker retires it without failing the job,
// hands its last-replica columns to survivors, and the next job still
// matches the serial oracle.
func TestDrainGraceful(t *testing.T) {
	tbl := memberTable()
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Observer = reg
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	if _, err := c.TrainOne(params); err != nil {
		t.Fatalf("job before drain: %v", err)
	}

	const victim = 1
	if err := c.Drain(victim); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	p := c.Master.PlacementSnapshot()
	alive := map[int]bool{}
	for _, w := range c.Master.AliveWorkers() {
		alive[w] = true
	}
	if alive[victim] {
		t.Fatal("drained worker still reported alive")
	}
	for col, owners := range p.Owners {
		if len(owners) < cfg.Replicas {
			t.Fatalf("column %d under-replicated after drain: %d owners", col, len(owners))
		}
		for _, o := range owners {
			if o == victim {
				t.Fatalf("column %d still owned by drained worker", col)
			}
			if !alive[o] {
				t.Fatalf("column %d owned by dead worker %d", col, o)
			}
		}
	}

	tr, err := c.TrainOne(params)
	if err != nil {
		t.Fatalf("job after drain: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	if !tr.Equal(want) {
		t.Fatal("post-drain tree differs from serial oracle")
	}

	m := reg.Snapshot().Master
	if m.Drains != 1 {
		t.Fatalf("Drains counter %d, want 1", m.Drains)
	}
	if m.DrainSheds != 0 {
		t.Fatalf("graceful drain recorded %d force-sheds", m.DrainSheds)
	}
	if m.TreeRestarts != 0 {
		t.Fatalf("graceful drain triggered %d tree restarts", m.TreeRestarts)
	}
}

// TestDrainDuringJob: cordoning a worker while a job is in flight lets its
// in-flight work finish (or re-execute) and the forest stays bit-identical.
func TestDrainDuringJob(t *testing.T) {
	tbl := memberTable()
	cfg := testConfig()
	cfg.TaskRetry = 300 * time.Millisecond
	cfg.MaxTaskAttempts = 8
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, 4)
	for i := range specs {
		specs[i] = TreeSpec{Params: params}
	}
	trainErr := make(chan error, 1)
	trees := make(chan []*core.Tree, 1)
	go func() {
		got, err := c.Train(specs)
		trees <- got
		trainErr <- err
	}()

	if err := c.Drain(2); err != nil {
		t.Fatalf("Drain during job: %v", err)
	}
	got := <-trees
	if err := <-trainErr; err != nil {
		t.Fatalf("train with concurrent drain: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	for i, tr := range got {
		if !tr.Equal(want) {
			t.Fatalf("tree %d differs from serial with a concurrent drain", i)
		}
	}
}

// TestFleetCapRejectsJoin: the admission gate refuses joins that would grow
// the fleet past FleetCap, terminally, and counts the rejection.
func TestFleetCapRejectsJoin(t *testing.T) {
	tbl := memberTable()
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.FleetCap = cfg.Workers
	cfg.Observer = reg
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	if _, err := c.Join(); err == nil {
		t.Fatal("join beyond FleetCap succeeded")
	} else if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("join rejection reason %q does not mention the cap", err)
	}
	if n := c.Master.PlacementSnapshot().NumWorkers; n != cfg.Workers {
		t.Fatalf("fleet grew to %d despite the cap", n)
	}
	if m := reg.Snapshot().Master; m.JoinRejects == 0 || m.Joins != 0 {
		t.Fatalf("counters after capped join: rejects %d joins %d", m.JoinRejects, m.Joins)
	}
}

// TestJoinGenerationFence: a join request claiming a generation ahead of the
// master's is a fenced ghost and must be terminally rejected.
func TestJoinGenerationFence(t *testing.T) {
	tbl := memberTable()
	c := newTestCluster(t, tbl, testConfig())
	defer c.Close()

	i := len(c.Workers)
	w := NewWorker(i, c.endpoint(WorkerName(i)), c.schema, map[int]*dataset.Column{}, c.y, c.cfg.Compers, nil)
	w.Start()
	c.Workers = append(c.Workers, w)
	w.mu.Lock()
	w.joinGen = 999 // claims a future generation the master has never issued
	w.mu.Unlock()
	if err := w.Join(10 * time.Second); err == nil {
		t.Fatal("join from a future generation was admitted")
	} else if !strings.Contains(err.Error(), "generation") {
		t.Fatalf("fence rejection reason %q does not mention the generation", err)
	}
}

// TestDrainValidation pins the refusals: out-of-range index, double drain,
// and draining away the last survivor.
func TestDrainValidation(t *testing.T) {
	tbl := memberTable()
	cfg := testConfig()
	cfg.Workers = 2
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	if err := c.Drain(7); err == nil {
		t.Fatal("drain of an unknown worker succeeded")
	}
	if err := c.Drain(0); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := c.Drain(0); err == nil {
		t.Fatal("double drain succeeded")
	}
	if err := c.Drain(1); err == nil {
		t.Fatal("draining the last alive worker succeeded")
	}
}
