package cluster

import (
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// TestPassthroughModeMatchesSerial checks the zero-copy fabric variant
// (used by protocol-overhead benchmarks) still trains the exact tree: the
// protocol must not rely on the gob boundary for copy isolation of row
// index sets (workers must never mutate what they serve).
func TestPassthroughModeMatchesSerial(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "pass", Rows: 2500, NumNumeric: 5, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 4, Seed: 97,
	})
	c := newTestCluster(t, tbl, Config{
		Workers: 3, Compers: 2, Passthrough: true,
		Policy: task.Policy{TauD: 300, TauDFS: 1200, NPool: 4},
	})
	defer c.Close()
	got, err := c.TrainOne(core.Defaults())
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), core.Defaults())
	if !got.Equal(want) {
		t.Fatal("passthrough mode changed the tree")
	}
}

// TestBandwidthModelSlowsTraining enables the per-endpoint link model and
// checks the job still completes correctly, slower than unthrottled.
func TestBandwidthModelSlowsTraining(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "bw", Rows: 2500, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 98,
	})
	run := func(bps float64) (time.Duration, *core.Tree) {
		c := newTestCluster(t, tbl, Config{
			Workers: 3, Compers: 2, BandwidthBps: bps,
			Policy: task.Policy{TauD: 300, TauDFS: 1200, NPool: 4},
		})
		defer c.Close()
		start := time.Now()
		tr, err := c.TrainOne(core.Defaults())
		if err != nil {
			t.Fatalf("train(bw=%g): %v", bps, err)
		}
		return time.Since(start), tr
	}
	fastTime, fastTree := run(0)
	slowTime, slowTree := run(2e6) // 2 MB/s links
	if !fastTree.Equal(slowTree) {
		t.Fatal("bandwidth model changed the tree")
	}
	if slowTime <= fastTime {
		t.Fatalf("bandwidth model did not slow training: %v vs %v", slowTime, fastTime)
	}
}

// TestConfigDefaults pins the documented defaults.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Workers != 4 || cfg.Compers != 4 || cfg.Replicas != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Policy != task.DefaultPolicy() {
		t.Fatalf("policy = %+v", cfg.Policy)
	}
	if cfg.JobTimeout != 5*time.Minute {
		t.Fatalf("timeout = %v", cfg.JobTimeout)
	}
	neg := Config{JobTimeout: -1}.withDefaults()
	if neg.JobTimeout != 0 {
		t.Fatal("negative timeout should disable")
	}
}
