package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// Wire-format regression tests: every message type must round-trip through
// gob as an interface value (the way the transport actually ships it) without
// losing any exported field. Adding a message type without listing it here,
// or without registering it in messages.go's init(), fails the AST
// completeness test below.

// messageSpecimens lists one zero instance of every wire message type.
func messageSpecimens() []any {
	return []any{
		ColumnPlanMsg{}, SubtreePlanMsg{}, ConfirmSplitMsg{}, DropTaskMsg{},
		ReleaseSideMsg{}, PingMsg{}, ProbeMsg{}, ProbeAckMsg{},
		ReplicateColumnMsg{}, SetTargetMsg{},
		TargetAckMsg{}, ShutdownMsg{}, RejoinRequestMsg{}, RejoinReportMsg{},
		ColumnResultMsg{}, SplitDoneMsg{}, SubtreeResultMsg{}, PongMsg{},
		WorkerErrorMsg{}, RowsRequestMsg{}, RowsResponseMsg{},
		ColDataRequestMsg{}, ColDataResponseMsg{}, ColumnCopyMsg{},
		BinProposalRequestMsg{}, BinProposalMsg{}, BinBroadcastMsg{},
		BinAckMsg{}, TopKVoteMsg{}, HistogramRequestMsg{}, HistogramMsg{},
		CkptRecordMsg{}, LeaseGrantMsg{}, LeaseRenewMsg{}, LeaseAckMsg{},
		TakeoverMsg{},
		JoinRequestMsg{}, JoinAcceptMsg{}, JoinRejectMsg{}, JoinReadyMsg{},
		JoinAdmitMsg{}, DrainRequestMsg{}, ColumnCopyAckMsg{},
	}
}

// filler populates every exported field with a distinct non-zero value, so a
// field gob drops (or aliases) shows up as a diff. Non-zero matters: gob
// omits zero values, which would mask a lost field.
type filler struct{ n int64 }

func (f *filler) next() int64 { f.n++; return f.n }

func (f *filler) fill(v reflect.Value, depth int) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x := f.next()
		if v.OverflowInt(x) {
			x %= 100
		}
		v.SetInt(x)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		x := f.next()
		if v.OverflowUint(uint64(x)) {
			x %= 100
		}
		v.SetUint(uint64(x))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(f.next()) + 0.5)
	case reflect.String:
		v.SetString(fmt.Sprintf("s%d", f.next()))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < s.Len(); i++ {
			f.fill(s.Index(i), depth)
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		for i := 0; i < 2; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			f.fill(k, depth)
			val := reflect.New(v.Type().Elem()).Elem()
			f.fill(val, depth)
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.Pointer:
		if depth <= 0 {
			return // bound recursive types (core.Node)
		}
		v.Set(reflect.New(v.Type().Elem()))
		f.fill(v.Elem(), depth-1)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).PkgPath == "" {
				f.fill(v.Field(i), depth)
			}
		}
	}
}

// exportedDiff compares two values over their exported surface only —
// unexported caches (condition masks, presorted indexes) are legitimately
// rebuilt rather than shipped — and returns the path of the first mismatch.
func exportedDiff(path string, a, b reflect.Value) string {
	if a.Type() != b.Type() {
		return fmt.Sprintf("%s: type %v vs %v", path, a.Type(), b.Type())
	}
	switch a.Kind() {
	case reflect.Pointer, reflect.Interface:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil %v vs %v", path, a.IsNil(), b.IsNil())
		}
		if a.IsNil() {
			return ""
		}
		return exportedDiff(path, a.Elem(), b.Elem())
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			field := a.Type().Field(i)
			if field.PkgPath != "" {
				continue
			}
			if d := exportedDiff(path+"."+field.Name, a.Field(i), b.Field(i)); d != "" {
				return d
			}
		}
		return ""
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: len %d vs %d", path, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if d := exportedDiff(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i)); d != "" {
				return d
			}
		}
		return ""
	case reflect.Map:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: len %d vs %d", path, a.Len(), b.Len())
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() {
				return fmt.Sprintf("%s: key %v missing after decode", path, k)
			}
			if d := exportedDiff(fmt.Sprintf("%s[%v]", path, k), a.MapIndex(k), bv); d != "" {
				return d
			}
		}
		return ""
	default:
		if a.Interface() != b.Interface() {
			return fmt.Sprintf("%s: %v vs %v", path, a.Interface(), b.Interface())
		}
		return ""
	}
}

// TestMessagesGobRoundTripLossless: each message type, fully populated,
// survives the interface-typed gob round trip the fabric performs.
func TestMessagesGobRoundTripLossless(t *testing.T) {
	for _, msg := range messageSpecimens() {
		name := reflect.TypeOf(msg).Name()
		t.Run(name, func(t *testing.T) {
			f := &filler{}
			v := reflect.New(reflect.TypeOf(msg)).Elem()
			f.fill(v, 3)
			in := v.Interface()

			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
				t.Fatalf("encode (is %s gob.Register'ed?): %v", name, err)
			}
			var out any
			if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if reflect.TypeOf(out) != reflect.TypeOf(in) {
				t.Fatalf("decoded as %T, want %T", out, in)
			}
			if d := exportedDiff(name, reflect.ValueOf(in), reflect.ValueOf(out)); d != "" {
				t.Fatalf("round trip lost data at %s", d)
			}
		})
	}
}

// TestMessageFieldsAllExported: gob silently skips unexported fields, so a
// message type carrying one would lose data without any error.
func TestMessageFieldsAllExported(t *testing.T) {
	for _, msg := range messageSpecimens() {
		tp := reflect.TypeOf(msg)
		for i := 0; i < tp.NumField(); i++ {
			if tp.Field(i).PkgPath != "" {
				t.Errorf("%s.%s is unexported: gob would silently drop it", tp.Name(), tp.Field(i).Name)
			}
		}
	}
}

// TestMessageSpecimenListIsComplete parses the message-declaring files and
// checks that every declared *Msg type is (a) covered by the round-trip test
// above and (b) registered with gob in an init(). Forgetting either fails
// here.
func TestMessageSpecimenListIsComplete(t *testing.T) {
	declared := map[string]bool{}
	registered := map[string]bool{}
	for _, src := range []string{"messages.go", "histmsg.go", "standbymsg.go", "membermsg.go"} {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, src, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", src, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.TypeSpec:
				if strings.HasSuffix(node.Name.Name, "Msg") {
					declared[node.Name.Name] = true
				}
			case *ast.CallExpr:
				sel, ok := node.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Register" || len(node.Args) != 1 {
					return true
				}
				if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "gob" {
					return true
				}
				if lit, ok := node.Args[0].(*ast.CompositeLit); ok {
					if ident, ok := lit.Type.(*ast.Ident); ok {
						registered[ident.Name] = true
					}
				}
			}
			return true
		})
	}
	if len(declared) == 0 {
		t.Fatal("no *Msg types found — parser broken?")
	}
	covered := map[string]bool{}
	for _, msg := range messageSpecimens() {
		covered[reflect.TypeOf(msg).Name()] = true
	}
	for name := range declared {
		if !covered[name] {
			t.Errorf("%s is not in messageSpecimens — add it so the gob round-trip test covers it", name)
		}
		if !registered[name] {
			t.Errorf("%s is not gob.Register'ed in an init()", name)
		}
	}
}
