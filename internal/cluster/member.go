package cluster

// Elastic fleet: live worker join, graceful drain, and replication-aware
// rebalancing under churn. This generalizes the PR 4/PR 7 rejoin handshake
// (crashed worker re-enters its old slot during Resume) into a membership
// protocol that works mid-job:
//
//   - Live join: a brand-new worker announces itself with JoinRequestMsg and
//     retries until it sees an admit or a terminal reject, so every message
//     of the handshake may be lost and the join still converges. The master
//     grows the fleet, draws a fair share of column replicas from the most
//     loaded holders (the same least-loaded placement rule fail-stop
//     re-replication uses), ships the copies through the existing
//     ReplicateColumnMsg/ColumnCopyMsg path, and only marks the joiner
//     schedulable after the joiner confirms every replica landed
//     (JoinReadyMsg). Admission is fenced: a request carrying a newer
//     generation than the master's proves the master is stale, and a
//     configured FleetCap bounds growth.
//
//   - Graceful drain: Master.Drain cordons a worker (excluded from the load
//     balancer's preference mask immediately), tops its columns back up to
//     the replication factor on survivors, waits for the copies to be
//     acknowledged and for every in-flight attempt touching the worker to
//     finish, then retires it with zero failed tasks. A cordoned worker that
//     will not quiesce — or that trips the PR 5 quarantine breaker mid-drain
//     — is force-shed through the fail-stop path instead, so a drain can
//     degrade but never wedge the job.
//
//   - Churn-safe invariants: every admission and retirement appends a
//     checkpoint Membership record (and is folded into snapshots), which
//     also streams to the hot standby, so a failover mid-join or mid-drain
//     recovers a consistent fleet view. Determinism is unaffected by
//     placement: a joiner only adds replicas, and every candidate column is
//     still evaluated exactly once per task wherever it lives, so forests
//     remain bit-identical to the serial oracle under churn.

import (
	"fmt"
	"sort"
	"time"

	"treeserver/internal/checkpoint"
	"treeserver/internal/loadbal"
	"treeserver/internal/split"
)

// joinState is one in-flight join handshake: the generation the accept was
// issued under and the column replicas assigned to the joiner.
type joinState struct {
	gen  int64
	cols []int
}

// drainCopy is one column hand-off a drain is waiting on: col must be
// confirmed on worker to before the drainee may retire.
type drainCopy struct {
	col int
	to  int
}

const (
	// defaultDrainTimeout bounds how long Drain waits for a cordoned worker
	// to quiesce before force-shedding it through the fail-stop path.
	defaultDrainTimeout = 60 * time.Second
	// drainPollEvery is the quiesce-poll interval.
	drainPollEvery = 2 * time.Millisecond
	// drainResendEvery re-drives unacknowledged column copies (the fabric
	// may have dropped the ReplicateColumnMsg or the copy itself).
	drainResendEvery = 250 * time.Millisecond
)

// fleet returns the current fleet size. It is the unlocked twin of
// cfg.NumWorkers: loops that run outside m.mu (heartbeat pings, shutdown
// broadcast, rejoin collection) must use it, or they would race live join's
// fleet growth.
func (m *Master) fleet() int { return int(m.fleetSize.Load()) }

// refreshMaskLocked recomputes the scheduling preference mask handed to the
// load balancer: a worker is preferred iff its quarantine circuit is closed
// AND it is not draining. nil means no constraint. Caller holds m.mu.
func (m *Master) refreshMaskLocked() {
	base := m.health.preferredMask() // nil-safe; nil = all in good standing
	anyDraining := false
	for _, d := range m.draining {
		if d {
			anyDraining = true
			break
		}
	}
	if !anyDraining {
		m.healthMask = base
		return
	}
	mask := make([]bool, m.cfg.NumWorkers)
	for w := range mask {
		ok := base == nil || (w < len(base) && base[w])
		mask[w] = ok && !m.draining[w]
	}
	m.healthMask = mask
}

// growFleetLocked extends every per-worker structure to n slots. New slots
// are born dead (alive=false) — they become schedulable only through
// admission. Shrinking never happens: worker ids are dense array indices
// everywhere, so a retired slot is a permanent alive=false hole instead.
// Caller holds m.mu.
func (m *Master) growFleetLocked(n int) {
	if n <= m.cfg.NumWorkers {
		return
	}
	for len(m.alive) < n {
		m.alive = append(m.alive, false)
	}
	for len(m.lastPong) < n {
		m.lastPong = append(m.lastPong, time.Time{})
	}
	for len(m.lastSeq) < n {
		m.lastSeq = append(m.lastSeq, 0)
	}
	for len(m.draining) < n {
		m.draining = append(m.draining, false)
	}
	m.cfg.NumWorkers = n
	m.fleetSize.Store(int64(n))
	m.placement.NumWorkers = n
	m.matrix.Grow(n)
	m.health.grow(n)
	m.refreshMaskLocked()
}

// placementCopyLocked deep-copies the current placement. Caller holds m.mu.
func (m *Master) placementCopyLocked() loadbal.Placement {
	p := loadbal.Placement{
		Owners:     make(map[int][]int, len(m.placement.Owners)),
		NumWorkers: m.placement.NumWorkers,
	}
	for col, owners := range m.placement.Owners {
		p.Owners[col] = append([]int(nil), owners...)
	}
	return p
}

// PlacementSnapshot returns a deep copy of the current column placement —
// the elastic chaos cells assert replication invariants on it.
func (m *Master) PlacementSnapshot() loadbal.Placement {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.placementCopyLocked()
}

// appendMembershipLocked durably records a fleet transition (join admitted
// or drain retired): an incremental Membership record through the sink —
// which also streams it to the standby — falling back to a full snapshot if
// the append fails, mirroring appendTreeDoneLocked. Before the first job
// snapshot exists there is nothing to append to (and nothing to recover), so
// pre-job transitions are captured by Train's initial snapshot instead.
// Caller holds m.mu.
func (m *Master) appendMembershipLocked() {
	if m.sink == nil || m.jobSpecs == nil {
		return
	}
	start := time.Now()
	mb := checkpoint.Membership{NumWorkers: m.cfg.NumWorkers, Placement: m.placementCopyLocked()}
	n, err := m.sink.AppendMembership(mb)
	if err != nil {
		m.obs.CheckpointError()
		m.writeSnapshotLocked()
		return
	}
	if m.ck != nil {
		m.obs.CheckpointWritten(false, n, time.Since(start))
	}
}

// rebalanceTargetsLocked picks the column replicas a joiner will receive: a
// fair share (total replica slots over the post-join member count, at least
// one) drawn from the columns whose current holders are the most loaded.
// The draw is deterministic — sorted by (holder load desc, col asc) — so a
// duplicated join request computes the same assignment. Caller holds m.mu.
func (m *Master) rebalanceTargetsLocked(joiner int) []int {
	held := make(map[int]int, m.cfg.NumWorkers)
	total := 0
	for _, owners := range m.placement.Owners {
		for _, o := range owners {
			held[o]++
			total++
		}
	}
	members := 1 // the joiner
	for w := 0; w < m.cfg.NumWorkers; w++ {
		if w != joiner && m.alive[w] && !m.draining[w] {
			members++
		}
	}
	share := total / members
	if share < 1 {
		share = 1
	}
	if n := len(m.placement.Owners); share > n {
		share = n
	}
	type scored struct{ col, load int }
	cand := make([]scored, 0, len(m.placement.Owners))
	for col, owners := range m.placement.Owners {
		if holdsCol(owners, joiner) {
			continue
		}
		load := 0
		for _, o := range owners {
			if held[o] > load {
				load = held[o]
			}
		}
		cand = append(cand, scored{col: col, load: load})
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].load != cand[j].load {
			return cand[i].load > cand[j].load
		}
		return cand[i].col < cand[j].col
	})
	if len(cand) > share {
		cand = cand[:share]
	}
	cols := make([]int, 0, len(cand))
	for _, c := range cand {
		cols = append(cols, c.col)
	}
	sort.Ints(cols)
	return cols
}

// replicaSourcesLocked resolves, for each assigned column, the worker that
// will serve the copy: the first alive non-draining holder other than the
// joiner (-1 if the column currently has none — the copy must wait for
// recovery to restore one). Caller holds m.mu.
func (m *Master) replicaSourcesLocked(cols []int, joiner int) []int {
	srcs := make([]int, len(cols))
	for i, col := range cols {
		srcs[i] = -1
		for _, o := range m.placement.Owners[col] {
			if o != joiner && o >= 0 && o < len(m.alive) && m.alive[o] && !m.draining[o] {
				srcs[i] = o
				break
			}
		}
	}
	return srcs
}

// handleJoinRequest runs the admission gate. Every arm is idempotent: the
// joiner retries its request until it sees JoinAdmitMsg or a non-retryable
// JoinRejectMsg, so a duplicate request re-drives whatever stage the
// handshake is in (re-accept + re-copy, or re-admit).
func (m *Master) handleJoinRequest(msg JoinRequestMsg) {
	w := msg.Worker
	if w < 0 {
		return
	}
	m.mu.Lock()
	gen := m.gen
	if msg.Gen > gen {
		// The joiner has heard from a newer master: this primary is stale.
		// Refusing (rather than admitting into a fenced fleet) is the same
		// rule the lease takeover applies to task results.
		m.mu.Unlock()
		m.obs.JoinRejected()
		m.send(w, JoinRejectMsg{Worker: w, Gen: gen,
			Reason: fmt.Sprintf("generation fence: joiner saw gen %d, master is gen %d", msg.Gen, gen)})
		return
	}
	if m.rejoinReports != nil {
		// Mid-Resume: the fleet is being reconciled from rejoin reports;
		// admitting now would race the reconciliation. Retryable — the
		// joiner's retry loop lands after recovery completes.
		m.mu.Unlock()
		m.obs.JoinRejected()
		m.send(w, JoinRejectMsg{Worker: w, Gen: gen, Reason: "master is mid-recovery", Retryable: true})
		return
	}
	if js, ok := m.joins[w]; ok {
		// Handshake already in flight: re-accept and re-drive the copies
		// (the originals may have been lost).
		cols := append([]int(nil), js.cols...)
		srcs := m.replicaSourcesLocked(cols, w)
		n := m.cfg.NumWorkers
		jgen := js.gen
		m.mu.Unlock()
		m.send(w, JoinAcceptMsg{Worker: w, Gen: jgen, Cols: cols, NumWorkers: n})
		for i, col := range cols {
			if srcs[i] >= 0 {
				m.send(srcs[i], ReplicateColumnMsg{Col: col, To: w})
			}
		}
		return
	}
	if w < m.cfg.NumWorkers && m.alive[w] {
		// Already admitted — the admit was lost; repeat it.
		n := m.cfg.NumWorkers
		m.mu.Unlock()
		m.send(w, JoinAdmitMsg{Worker: w, Gen: gen, NumWorkers: n})
		return
	}
	if w > m.cfg.NumWorkers {
		// Worker ids are dense array indices; admitting w would leave a hole.
		n := m.cfg.NumWorkers
		m.mu.Unlock()
		m.obs.JoinRejected()
		m.send(w, JoinRejectMsg{Worker: w, Gen: gen,
			Reason: fmt.Sprintf("worker index %d not contiguous with fleet of %d", w, n)})
		return
	}
	if w == m.cfg.NumWorkers {
		if m.cfg.FleetCap > 0 && m.cfg.NumWorkers+1 > m.cfg.FleetCap {
			n := m.cfg.NumWorkers
			m.mu.Unlock()
			m.obs.JoinRejected()
			m.send(w, JoinRejectMsg{Worker: w, Gen: gen,
				Reason: fmt.Sprintf("fleet cap %d reached (fleet is %d)", m.cfg.FleetCap, n)})
			return
		}
		m.growFleetLocked(w + 1)
	}
	// Fresh join into the grown tail slot — or a dead slot reclaimed by a
	// new process, which starts columnless and is treated identically.
	cols := m.rebalanceTargetsLocked(w)
	m.joins[w] = &joinState{gen: gen, cols: cols}
	srcs := m.replicaSourcesLocked(cols, w)
	n := m.cfg.NumWorkers
	m.mu.Unlock()
	m.send(w, JoinAcceptMsg{Worker: w, Gen: gen, Cols: cols, NumWorkers: n})
	for i, col := range cols {
		if srcs[i] >= 0 {
			m.send(srcs[i], ReplicateColumnMsg{Col: col, To: w})
		}
	}
}

// handleJoinReady admits a joiner whose replicas all landed: it becomes
// alive (schedulable), enters the placement for the columns it reports
// holding (the worker's report is authoritative, as in the rejoin
// handshake), the transition is checkpointed, and the joiner is caught up
// on cluster-wide state it missed — the current regression target and the
// histogram bins — before the admit is sent.
func (m *Master) handleJoinReady(msg JoinReadyMsg) {
	w := msg.Worker
	m.mu.Lock()
	js, ok := m.joins[w]
	if !ok || msg.Gen != js.gen || w < 0 || w >= m.cfg.NumWorkers {
		m.mu.Unlock()
		return // duplicate ready after admission, or a stale generation
	}
	delete(m.joins, w)
	m.alive[w] = true
	m.draining[w] = false
	m.lastPong[w] = time.Now()
	// Start the joiner at the current probe sequence: the relative-lag
	// failure detector compares against the fleet's freshest pong, and a
	// zero lastSeq would read as an instantly-dead worker.
	m.lastSeq[w] = m.hbSeq
	for _, col := range msg.Cols {
		owners, ok := m.placement.Owners[col]
		if ok && !holdsCol(owners, w) {
			m.placement.Owners[col] = append(owners, w)
		}
	}
	m.refreshMaskLocked()
	m.obs.WorkerJoined()
	m.obs.ColumnsRebalanced(len(msg.Cols))
	m.appendMembershipLocked()
	gen := js.gen
	n := m.cfg.NumWorkers
	var target *SetTargetMsg
	if m.targetSeq > 0 && m.targetY != nil {
		target = &SetTargetMsg{Seq: m.targetSeq, Y: m.targetY}
	}
	var binCatchup *BinBroadcastMsg
	if m.binsReady {
		cols := make([]int, 0, len(m.bins))
		for col := range m.bins {
			cols = append(cols, col)
		}
		sort.Ints(cols)
		bins := make([]split.Bins, 0, len(cols))
		for _, col := range cols {
			bins = append(bins, m.bins[col])
		}
		binCatchup = &BinBroadcastMsg{Seq: m.binSeq, Bins: bins}
	}
	m.mu.Unlock()
	m.send(w, JoinAdmitMsg{Worker: w, Gen: gen, NumWorkers: n})
	if target != nil {
		m.send(w, *target)
	}
	if binCatchup != nil {
		m.send(w, *binCatchup)
	}
}

// handleColumnCopyAck records a landed column copy; drains poll these.
func (m *Master) handleColumnCopyAck(msg ColumnCopyAckMsg) {
	m.mu.Lock()
	if m.copyLanded == nil {
		m.copyLanded = map[[2]int]bool{}
	}
	m.copyLanded[[2]int{msg.Worker, msg.Col}] = true
	m.mu.Unlock()
}

// Drain gracefully retires worker w: cordon, hand-off, quiesce, retire. It
// blocks until the worker is retired (returns nil), the worker was
// force-shed through the fail-stop path because it would not quiesce or
// tripped the quarantine breaker (also nil — the job continues either way),
// or the drain could not start (error). Concurrent drains of different
// workers are safe; draining the last survivor is refused.
func (m *Master) Drain(w int) error {
	m.mu.Lock()
	if w < 0 || w >= m.cfg.NumWorkers {
		m.mu.Unlock()
		return fmt.Errorf("cluster: Drain(%d) outside fleet [0,%d)", w, m.cfg.NumWorkers)
	}
	if !m.alive[w] {
		m.mu.Unlock()
		return fmt.Errorf("cluster: Drain(%d): worker is not alive", w)
	}
	if m.draining[w] {
		m.mu.Unlock()
		return fmt.Errorf("cluster: Drain(%d): already draining", w)
	}
	survivors := 0
	for x := 0; x < m.cfg.NumWorkers; x++ {
		if x != w && m.alive[x] && !m.draining[x] {
			survivors++
		}
	}
	if survivors == 0 {
		m.mu.Unlock()
		return fmt.Errorf("cluster: Drain(%d): no surviving worker to hand columns to", w)
	}
	// Cordon: new assignments prefer everyone else from this instant.
	m.draining[w] = true
	m.refreshMaskLocked()
	copies := m.drainHandoffLocked(w)
	m.mu.Unlock()
	if n := len(copies); n > 0 {
		m.obs.ColumnsRebalanced(n)
	}

	// Quiesce: wait until every hand-off copy is acknowledged and no task
	// state references w — no attempt involves it and no plan's parent
	// delegate is it (children fetch their rows from the parent's delegate,
	// so w must keep serving until the last such child completes).
	deadline := time.Now().Add(defaultDrainTimeout)
	lastResend := time.Now()
	for {
		select {
		case <-m.stop:
			return fmt.Errorf("cluster: master stopped during drain of worker %d", w)
		case <-time.After(drainPollEvery):
		}
		m.mu.Lock()
		pending := m.pendingCopiesLocked(copies)
		busy := len(pending) > 0 || m.drainBusyLocked(w)
		stuck := m.health != nil && w < len(m.health.state) && m.health.state[w] != circuitClosed
		m.mu.Unlock()
		if !busy {
			break
		}
		if stuck || time.Now().After(deadline) {
			// The cordoned worker will not quiesce (or the PR 5 quarantine
			// tracker already gave up on it): shed it through fail-stop
			// recovery — re-replication and task requeue keep the job alive.
			m.obs.DrainShed()
			m.NotifyWorkerFailure(w)
			return nil
		}
		if time.Since(lastResend) >= drainResendEvery && len(pending) > 0 {
			lastResend = time.Now()
			m.resendDrainCopies(pending, w)
		}
	}

	// Retire: the worker leaves the placement and the alive set; the
	// transition is made durable; the worker is told to shut down.
	m.mu.Lock()
	m.alive[w] = false
	m.draining[w] = false
	for col, owners := range m.placement.Owners {
		kept := owners[:0]
		for _, o := range owners {
			if o != w {
				kept = append(kept, o)
			}
		}
		m.placement.Owners[col] = kept
	}
	m.refreshMaskLocked()
	m.obs.WorkerDrained()
	m.appendMembershipLocked()
	m.mu.Unlock()
	m.send(w, ShutdownMsg{})
	return nil
}

// drainHandoffLocked tops every column held by the drainee back up to the
// replication factor on alive non-draining workers, choosing the least
// loaded non-holders — the same placement rule as fail-stop re-replication.
// Targets enter the placement optimistically (plans landing on them park on
// whenColumnsPresent until the copy arrives); the returned copies are what
// the drain waits to see acknowledged. Caller holds m.mu.
func (m *Master) drainHandoffLocked(w int) []drainCopy {
	repl := m.cfg.Replicas
	if repl < 1 {
		repl = 1
	}
	held := make(map[int]int, m.cfg.NumWorkers)
	for _, owners := range m.placement.Owners {
		for _, o := range owners {
			held[o]++
		}
	}
	cols := make([]int, 0, len(m.placement.Owners))
	for col, owners := range m.placement.Owners {
		if holdsCol(owners, w) {
			cols = append(cols, col)
		}
	}
	sort.Ints(cols)
	var copies []drainCopy
	for _, col := range cols {
		good := 0
		for _, o := range m.placement.Owners[col] {
			if o != w && m.alive[o] && !m.draining[o] {
				good++
			}
		}
		for good < repl {
			target, best := -1, int(^uint(0)>>1)
			for x := 0; x < m.cfg.NumWorkers; x++ {
				if x == w || !m.alive[x] || m.draining[x] || holdsCol(m.placement.Owners[col], x) {
					continue
				}
				if held[x] < best {
					target, best = x, held[x]
				}
			}
			if target < 0 {
				break // no eligible worker left; survivors already hold it
			}
			if m.copyLanded != nil {
				delete(m.copyLanded, [2]int{target, col})
			}
			m.placement.Owners[col] = append(m.placement.Owners[col], target)
			held[target]++
			copies = append(copies, drainCopy{col: col, to: target})
			good++
		}
	}
	// Ship each copy from a non-draining holder when one exists, else from
	// the drainee itself (it is still alive and serving until retirement).
	for _, c := range copies {
		if src := m.drainCopySourceLocked(c, w); src >= 0 {
			m.send(src, ReplicateColumnMsg{Col: c.col, To: c.to})
		}
	}
	return copies
}

// drainCopySourceLocked picks the worker to serve one hand-off copy: the
// first alive non-draining holder other than the target, else the drainee
// itself, else any alive holder. Caller holds m.mu.
func (m *Master) drainCopySourceLocked(c drainCopy, drainee int) int {
	owners := m.placement.Owners[c.col]
	for _, o := range owners {
		if o != c.to && o != drainee && o >= 0 && o < len(m.alive) && m.alive[o] && !m.draining[o] {
			return o
		}
	}
	if holdsCol(owners, drainee) && m.alive[drainee] {
		return drainee
	}
	for _, o := range owners {
		if o != c.to && o >= 0 && o < len(m.alive) && m.alive[o] {
			return o
		}
	}
	return -1
}

// pendingCopiesLocked filters the hand-off list down to copies not yet
// acknowledged. Caller holds m.mu.
func (m *Master) pendingCopiesLocked(copies []drainCopy) []drainCopy {
	var pending []drainCopy
	for _, c := range copies {
		if m.copyLanded == nil || !m.copyLanded[[2]int{c.to, c.col}] {
			pending = append(pending, c)
		}
	}
	return pending
}

// resendDrainCopies re-drives lost hand-off copies (called without m.mu).
func (m *Master) resendDrainCopies(pending []drainCopy, drainee int) {
	m.mu.Lock()
	type ship struct{ src, col, to int }
	ships := make([]ship, 0, len(pending))
	for _, c := range pending {
		if src := m.drainCopySourceLocked(c, drainee); src >= 0 {
			ships = append(ships, ship{src: src, col: c.col, to: c.to})
		}
	}
	m.mu.Unlock()
	for _, s := range ships {
		m.send(s.src, ReplicateColumnMsg{Col: s.col, To: s.to})
	}
}

// drainBusyLocked reports whether any task state still references the
// draining worker: an outstanding attempt that involves it (column share,
// subtree key worker, hist fetch — all covered by involved/keyWorker), or a
// task/plan whose parent delegate is it (its children fetch rows from it).
// Once false with the cordon in place, no future reference can appear.
// Caller holds m.mu.
func (m *Master) drainBusyLocked(w int) bool {
	for _, entry := range m.tasks {
		if entry.plan.parent.Worker == w {
			return true
		}
		for _, as := range entry.attempts {
			if as.involved[w] || as.keyWorker == w {
				return true
			}
		}
	}
	for _, p := range m.bplan.Snapshot() {
		if p.parent.Worker == w {
			return true
		}
	}
	return false
}
