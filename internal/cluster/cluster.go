package cluster

import (
	"fmt"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/loadbal"
	"treeserver/internal/obs"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// AblationMode selects one of the paper-reproduction ablations. The modes
// are mutually exclusive by construction — the old pair of booleans could
// express a combination no experiment defines.
type AblationMode uint8

const (
	// AblationNone is the full TreeServer design (default).
	AblationNone AblationMode = iota
	// AblationRoundRobin replaces the Section-VI cost model with cyclic
	// worker assignment — the load-balancing ablation.
	AblationRoundRobin
	// AblationRelayRows reverts to the naive design Section V eliminates:
	// the master ships I_x inside every task plan — the row-relay ablation.
	AblationRelayRows

	ablationModes // sentinel for validation
)

// String implements fmt.Stringer.
func (m AblationMode) String() string {
	switch m {
	case AblationNone:
		return "none"
	case AblationRoundRobin:
		return "round-robin"
	case AblationRelayRows:
		return "relay-rows"
	default:
		return fmt.Sprintf("AblationMode(%d)", uint8(m))
	}
}

// SplitMode selects how column tasks find split conditions.
type SplitMode uint8

const (
	// SplitExact is the paper's exact column-partitioned search (default).
	// It is byte-identical to a build without hist mode and serves as the
	// correctness oracle.
	SplitExact SplitMode = iota
	// SplitHist is the approximate mode: sketch-proposed bins, per-column
	// histograms with subtraction, and top-k vote aggregation.
	SplitHist

	splitModes // sentinel for validation
)

// String implements fmt.Stringer.
func (m SplitMode) String() string {
	switch m {
	case SplitExact:
		return "exact"
	case SplitHist:
		return "hist"
	default:
		return fmt.Sprintf("SplitMode(%d)", uint8(m))
	}
}

// ParseSplitMode maps the -mode flag values onto SplitMode.
func ParseSplitMode(s string) (SplitMode, error) {
	switch s {
	case "", "exact":
		return SplitExact, nil
	case "hist":
		return SplitHist, nil
	default:
		return 0, fmt.Errorf("cluster: unknown split mode %q (want exact or hist)", s)
	}
}

// Config describes an in-process TreeServer deployment. It is the internal
// carrier the Option constructors write into; callers normally use
// NewInProcess(tbl, cluster.WithWorkers(8), ...) rather than building one
// directly.
type Config struct {
	// Workers is the number of worker machines (paper: 15). Default 4.
	Workers int
	// Compers is the computing-thread pool size per worker (paper: 10).
	// Default 4.
	Compers int
	// Replicas is k, the column replication factor (paper default 2, clamped
	// to Workers when defaulted).
	Replicas int
	// Policy holds τ_D, τ_dfs and n_pool; zero value uses the paper's
	// defaults.
	Policy task.Policy
	// Heartbeat enables failure detection (0 = off).
	Heartbeat time.Duration
	// Ablation selects an ablation experiment mode (default AblationNone).
	Ablation AblationMode
	// BandwidthBps models per-machine link speed (0 = unlimited).
	BandwidthBps float64
	// Passthrough skips gob serialisation on the in-memory fabric.
	Passthrough bool
	// JobTimeout bounds each Train call (default 5 minutes; <0 disables).
	JobTimeout time.Duration
	// TaskRetry enables master-side task re-execution on this per-attempt
	// deadline (0 = off); MaxTaskAttempts bounds executions per task.
	TaskRetry       time.Duration
	MaxTaskAttempts int
	// HeartbeatBudget overrides the failure-detection budget in missed
	// probes (0 = default 20; negative is rejected).
	HeartbeatBudget int
	// MaxTreeRestarts bounds delegate-loss restarts per tree (0 = default 8;
	// negative is rejected); exceeding it fails the job.
	MaxTreeRestarts int
	// CheckpointDir enables durable master checkpointing into this directory;
	// CheckpointEvery adds periodic snapshots between tree boundaries.
	CheckpointDir   string
	CheckpointEvery time.Duration
	// RejoinTimeout bounds the worker rejoin handshake during Resume
	// (0 = default 10s).
	RejoinTimeout time.Duration
	// FleetCap bounds the total fleet size live joins may grow the cluster
	// to (0 = unbounded). Must be 0 or >= Workers.
	FleetCap int
	// HedgeFactor enables hedged task execution (0 = off): a task attempt
	// outliving HedgeFactor × the fleet latency estimate for its size gets a
	// racing duplicate on disjoint workers.
	HedgeFactor float64
	// QuarantineThreshold enables straggler quarantine (0 = off): workers
	// whose median-normalised health score drops below it are excluded from
	// new placement until a probe passes at fleet-typical speed.
	QuarantineThreshold float64
	// MaxQuarantined bounds simultaneously quarantined workers
	// (0 = default max(1, Workers/4)).
	MaxQuarantined int
	// SplitMode selects exact (default) or histogram-approximate split
	// finding for column tasks. Subtree tasks always train exactly.
	SplitMode SplitMode
	// MaxBins bounds the bins per numeric column in hist mode (default 64).
	MaxBins int
	// TopK is the number of candidate splits each worker votes per node in
	// hist mode (default 2).
	TopK int
	// Standby enables the hot-standby master: checkpoint records stream to a
	// live replica that takes over via the failover lease when the primary
	// dies. Works with or without CheckpointDir (diskless failover).
	Standby bool
	// LeaseTTL is the failover lease duration (0 = default 2s). Requires
	// Standby.
	LeaseTTL time.Duration
	// WrapEndpoint, when set, decorates every endpoint (master and workers)
	// before use — the hook the chaos harness uses to inject faults into the
	// fabric without the cluster knowing.
	WrapEndpoint func(transport.Endpoint) transport.Endpoint
	// Observer, when set, threads live telemetry through the whole stack:
	// transport links, master scheduling, worker stopwatches and split
	// kernels. nil disables telemetry at one pointer check per event.
	Observer *obs.Registry
}

// Option mutates a Config — the documented constructor surface of
// NewInProcess.
type Option func(*Config)

// WithWorkers sets the number of worker machines.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithCompers sets the computing-thread pool size per worker.
func WithCompers(n int) Option { return func(c *Config) { c.Compers = n } }

// WithReplicas sets k, the column replication factor.
func WithReplicas(k int) Option { return func(c *Config) { c.Replicas = k } }

// WithPolicy sets the scheduling thresholds (τ_D, τ_dfs, n_pool).
func WithPolicy(p task.Policy) Option { return func(c *Config) { c.Policy = p } }

// WithHeartbeat enables worker failure detection at the probe interval.
func WithHeartbeat(d time.Duration) Option { return func(c *Config) { c.Heartbeat = d } }

// WithAblation selects an ablation experiment mode.
func WithAblation(m AblationMode) Option { return func(c *Config) { c.Ablation = m } }

// WithBandwidth models per-machine link speed in bytes per second.
func WithBandwidth(bps float64) Option { return func(c *Config) { c.BandwidthBps = bps } }

// WithPassthrough toggles gob-free delivery on the in-memory fabric.
func WithPassthrough(on bool) Option { return func(c *Config) { c.Passthrough = on } }

// WithJobTimeout bounds each Train call (negative disables the bound).
func WithJobTimeout(d time.Duration) Option { return func(c *Config) { c.JobTimeout = d } }

// WithTaskRetry enables master-side task re-execution on the per-attempt
// deadline, bounded to maxAttempts executions per task (0 = default 5).
func WithTaskRetry(every time.Duration, maxAttempts int) Option {
	return func(c *Config) {
		c.TaskRetry = every
		c.MaxTaskAttempts = maxAttempts
	}
}

// WithHeartbeatBudget overrides the failure-detection budget: a worker is
// declared failed when its freshest pong lags the cluster's freshest pong by
// more than this many probes.
func WithHeartbeatBudget(probes int) Option {
	return func(c *Config) { c.HeartbeatBudget = probes }
}

// WithHedgeFactor enables hedged task execution: a task attempt outliving
// factor × the fleet latency estimate for its size gets a racing duplicate on
// a disjoint set of workers; the first complete attempt wins.
func WithHedgeFactor(factor float64) Option {
	return func(c *Config) { c.HedgeFactor = factor }
}

// WithQuarantine enables straggler quarantine: workers scoring below
// threshold are excluded from new placement (at most maxQuarantined at once;
// 0 = default) until a probe round-trip passes at fleet-typical speed.
func WithQuarantine(threshold float64, maxQuarantined int) Option {
	return func(c *Config) {
		c.QuarantineThreshold = threshold
		c.MaxQuarantined = maxQuarantined
	}
}

// WithSplitMode selects exact or histogram-approximate split finding.
func WithSplitMode(m SplitMode) Option { return func(c *Config) { c.SplitMode = m } }

// WithMaxBins bounds the number of bins per numeric column in hist mode.
func WithMaxBins(n int) Option { return func(c *Config) { c.MaxBins = n } }

// WithTopK sets how many candidate splits each worker votes per node in hist
// mode.
func WithTopK(k int) Option { return func(c *Config) { c.TopK = k } }

// WithMaxTreeRestarts bounds delegate-loss restarts per tree; exceeding it
// fails the job with a clear error instead of restarting forever.
func WithMaxTreeRestarts(n int) Option { return func(c *Config) { c.MaxTreeRestarts = n } }

// WithCheckpoint enables durable master checkpointing into dir, with optional
// periodic snapshots every `every` (0 = snapshots at tree boundaries only).
func WithCheckpoint(dir string, every time.Duration) Option {
	return func(c *Config) {
		c.CheckpointDir = dir
		c.CheckpointEvery = every
	}
}

// WithStandby enables the hot-standby master: every checkpoint record
// streams to a live replica that takes over, diskless, when the failover
// lease lapses.
func WithStandby() Option { return func(c *Config) { c.Standby = true } }

// WithLease enables the standby with an explicit failover lease duration.
func WithLease(ttl time.Duration) Option {
	return func(c *Config) {
		c.Standby = true
		c.LeaseTTL = ttl
	}
}

// WithRejoinTimeout bounds the worker rejoin handshake during Resume.
func WithRejoinTimeout(d time.Duration) Option { return func(c *Config) { c.RejoinTimeout = d } }

// WithFleetCap bounds the total fleet size live joins may grow the cluster
// to (0 = unbounded). Join requests that would exceed the cap are rejected
// at admission.
func WithFleetCap(n int) Option { return func(c *Config) { c.FleetCap = n } }

// WithEndpointWrapper decorates every endpoint before use (fault injection).
func WithEndpointWrapper(wrap func(transport.Endpoint) transport.Endpoint) Option {
	return func(c *Config) { c.WrapEndpoint = wrap }
}

// WithObserver attaches a telemetry registry to the deployment.
func WithObserver(r *obs.Registry) Option { return func(c *Config) { c.Observer = r } }

// WithConfig replaces the whole Config — the escape hatch for harnesses that
// build configurations programmatically (chaos grids, experiment sweeps).
// Options applied after it still take effect.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// validate rejects configurations that previously defaulted or panicked
// silently. It runs on the caller's values, before defaults are applied.
func (c Config) validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("cluster: Workers %d is negative", c.Workers)
	}
	if c.Compers < 0 {
		return fmt.Errorf("cluster: Compers %d is negative", c.Compers)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("cluster: Replicas %d is negative", c.Replicas)
	}
	workers := c.Workers
	if workers == 0 {
		workers = 4
	}
	if c.Replicas > workers {
		return fmt.Errorf("cluster: Replicas %d exceeds Workers %d — a column cannot have more replicas than machines", c.Replicas, workers)
	}
	if c.FleetCap < 0 {
		return fmt.Errorf("cluster: FleetCap %d is negative", c.FleetCap)
	}
	if c.FleetCap > 0 && c.FleetCap < workers {
		return fmt.Errorf("cluster: FleetCap %d is below the initial fleet of %d workers", c.FleetCap, workers)
	}
	if c.Ablation >= ablationModes {
		return fmt.Errorf("cluster: unknown AblationMode(%d)", uint8(c.Ablation))
	}
	if c.HeartbeatBudget < 0 {
		return fmt.Errorf("cluster: HeartbeatBudget %d is negative", c.HeartbeatBudget)
	}
	if c.MaxTreeRestarts < 0 {
		return fmt.Errorf("cluster: MaxTreeRestarts %d is negative", c.MaxTreeRestarts)
	}
	if c.CheckpointDir == "" && !c.Standby && c.CheckpointEvery != 0 {
		return fmt.Errorf("cluster: CheckpointEvery set without CheckpointDir or Standby")
	}
	if c.LeaseTTL < 0 {
		return fmt.Errorf("cluster: LeaseTTL %v is negative", c.LeaseTTL)
	}
	if c.LeaseTTL > 0 && !c.Standby {
		return fmt.Errorf("cluster: LeaseTTL set without Standby")
	}
	if c.SplitMode >= splitModes {
		return fmt.Errorf("cluster: unknown SplitMode(%d)", uint8(c.SplitMode))
	}
	if c.MaxBins < 0 || c.MaxBins == 1 {
		return fmt.Errorf("cluster: MaxBins %d must be 0 (default) or >= 2", c.MaxBins)
	}
	if c.MaxBins > 60000 {
		return fmt.Errorf("cluster: MaxBins %d exceeds the uint16 bin-index range", c.MaxBins)
	}
	if c.TopK < 0 {
		return fmt.Errorf("cluster: TopK %d is negative", c.TopK)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Compers <= 0 {
		c.Compers = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
		if c.Replicas > c.Workers {
			c.Replicas = c.Workers
		}
	}
	if c.Policy == (task.Policy{}) {
		c.Policy = task.DefaultPolicy()
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	if c.SplitMode == SplitHist {
		if c.MaxBins == 0 {
			c.MaxBins = 64
		}
		if c.TopK <= 0 {
			c.TopK = 2
		}
	}
	if c.Standby && c.LeaseTTL == 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	return c
}

// Cluster is an in-process TreeServer deployment: one master plus N workers
// as goroutine groups over an in-memory transport. Every message still
// crosses a gob serialisation boundary, so the protocol is exercised exactly
// as it would be over TCP.
type Cluster struct {
	Master  *Master
	Workers []*Worker
	Standby *Standby // non-nil when built WithStandby/WithLease
	Net     *transport.MemNetwork
	cfg     Config
	start   time.Time

	// Stored so RestartMaster can build a replacement master on the same
	// fabric after KillMaster.
	schema    Schema
	placement loadbal.Placement
	endpoint  func(string) transport.Endpoint
	masterCfg MasterConfig

	// y is the shared label column, kept so Join can hand it to workers
	// created after construction (the paper loads Y on every machine).
	y *dataset.Column
}

// NewInProcess partitions the table's columns over the configured number of
// workers (k replicas each, Y everywhere — the paper's loading scheme) and
// starts master and workers. Invalid configurations (negative counts, more
// replicas than workers, unknown ablation modes, missing table) return an
// error instead of silently defaulting, matching dataset.NewTable's
// convention.
func NewInProcess(tbl *dataset.Table, opts ...Option) (*Cluster, error) {
	if tbl == nil {
		return nil, fmt.Errorf("cluster: nil table")
	}
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	net := transport.NewMemNetwork()
	net.BandwidthBps = cfg.BandwidthBps
	net.Passthrough = cfg.Passthrough

	schema := SchemaOf(tbl)
	placement := loadbal.RoundRobin(tbl.FeatureIndexes(), cfg.Workers, cfg.Replicas)

	// The telemetry decorator wraps outermost so it observes exactly what the
	// application sends and receives — after any fault-injection wrapper has
	// had its chance to drop or delay the message.
	endpoint := func(name string) transport.Endpoint {
		ep := transport.Endpoint(net.Endpoint(name))
		if cfg.WrapEndpoint != nil {
			ep = cfg.WrapEndpoint(ep)
		}
		return cfg.Observer.Wrap(ep)
	}

	c := &Cluster{Net: net, cfg: cfg, start: time.Now()}
	for w := 0; w < cfg.Workers; w++ {
		cols := map[int]*dataset.Column{}
		for col, owners := range placement.Owners {
			for _, o := range owners {
				if o == w {
					cols[col] = tbl.Cols[col]
				}
			}
		}
		worker := NewWorker(w, endpoint(WorkerName(w)), schema, cols, tbl.Y(), cfg.Compers, cfg.Observer)
		worker.Start()
		c.Workers = append(c.Workers, worker)
	}
	c.schema, c.placement, c.endpoint = schema, placement, endpoint
	c.y = tbl.Y()
	c.masterCfg = MasterConfig{
		NumWorkers: cfg.Workers, Policy: cfg.Policy,
		Heartbeat:           cfg.Heartbeat,
		HeartbeatBudget:     cfg.HeartbeatBudget,
		Ablation:            cfg.Ablation,
		JobTimeout:          cfg.JobTimeout,
		TaskRetry:           cfg.TaskRetry,
		MaxTaskAttempts:     cfg.MaxTaskAttempts,
		MaxTreeRestarts:     cfg.MaxTreeRestarts,
		CheckpointDir:       cfg.CheckpointDir,
		CheckpointEvery:     cfg.CheckpointEvery,
		RejoinTimeout:       cfg.RejoinTimeout,
		Replicas:            cfg.Replicas,
		HedgeFactor:         cfg.HedgeFactor,
		QuarantineThreshold: cfg.QuarantineThreshold,
		MaxQuarantined:      cfg.MaxQuarantined,
		SplitMode:           cfg.SplitMode,
		MaxBins:             cfg.MaxBins,
		TopK:                cfg.TopK,
		FleetCap:            cfg.FleetCap,
		Obs:                 cfg.Observer,
	}
	if cfg.Standby {
		// The standby endpoint must exist before the master starts: the
		// in-memory fabric treats a send to an unknown name as permanent.
		c.masterCfg.StandbyName = StandbyName
		c.masterCfg.LeaseTTL = cfg.LeaseTTL
		sb, err := NewStandby(endpoint(StandbyName), StandbyConfig{
			Schema:    schema,
			MasterCfg: c.masterCfg,
			LeaseTTL:  cfg.LeaseTTL,
			Rebind:    c.rebindMasterEndpoint,
		})
		if err != nil {
			for _, w := range c.Workers {
				w.Stop()
			}
			net.Close()
			return nil, err
		}
		c.Standby = sb
		c.Standby.Start()
	}
	m, err := NewMaster(endpoint(MasterName), schema, placement, c.masterCfg)
	if err != nil {
		if c.Standby != nil {
			c.Standby.Stop()
		}
		for _, w := range c.Workers {
			w.Stop()
		}
		net.Close()
		return nil, err
	}
	c.Master = m
	c.Master.Start()
	return c, nil
}

// rebindMasterEndpoint re-homes the master transport name: the old
// incarnation's mailbox closes (its recv loop sees the endpoint die) and a
// fresh endpoint with the same name — same telemetry and fault-injection
// wrapping — is returned for the successor. Shared by RestartMaster and the
// standby takeover: both replace the master behind an unchanged fleet.
func (c *Cluster) rebindMasterEndpoint() (transport.Endpoint, error) {
	c.Net.Reset(MasterName)
	return c.endpoint(MasterName), nil
}

// Observer returns the telemetry registry the cluster was built with (nil
// when telemetry is disabled).
func (c *Cluster) Observer() *obs.Registry { return c.cfg.Observer }

// Train runs one job and returns the trees in spec order.
func (c *Cluster) Train(specs []TreeSpec) ([]*core.Tree, error) {
	return c.Master.Train(specs)
}

// TrainOne trains a single tree with the given parameters over all rows.
func (c *Cluster) TrainOne(params core.Params) (*core.Tree, error) {
	trees, err := c.Train([]TreeSpec{{Params: params}})
	if err != nil {
		return nil, err
	}
	return trees[0], nil
}

// Join spins up a fresh worker machine on the cluster's fabric and runs the
// live-join handshake: the worker announces itself, receives its column
// replicas from the master-driven rebalance, and blocks until admitted into
// the fleet (or terminally rejected — fleet cap, generation fence). The
// worker is appended to c.Workers either way so Close still stops it. Not
// safe for concurrent Join calls.
func (c *Cluster) Join() (*Worker, error) {
	i := len(c.Workers)
	w := NewWorker(i, c.endpoint(WorkerName(i)), c.schema, map[int]*dataset.Column{}, c.y, c.cfg.Compers, c.cfg.Observer)
	w.Start()
	c.Workers = append(c.Workers, w)
	if err := w.Join(c.cfg.JobTimeout); err != nil {
		return w, err
	}
	return w, nil
}

// Drain cordons worker i, lets its in-flight work finish, hands its
// last-replica columns to survivors and retires it without failing the job.
// Blocks until the worker is retired (or force-shed on timeout).
func (c *Cluster) Drain(i int) error {
	return c.activeMaster().Drain(i)
}

// activeMaster resolves the cluster's acting master: the promoted standby
// after a failover, the original otherwise.
func (c *Cluster) activeMaster() *Master {
	if c.Standby != nil {
		if m := c.Standby.Master(); m != nil {
			return m
		}
	}
	return c.Master
}

// CrashWorker simulates a machine failure: the worker's endpoint starts
// dropping all traffic. Recovery is driven by the heartbeat prober, or
// manually via Master.NotifyWorkerFailure.
func (c *Cluster) CrashWorker(i int) {
	c.Net.Endpoint(WorkerName(i)).Crash()
}

// KillMaster simulates a master crash: its loops stop and its endpoint dies
// without notifying the workers, which keep their column shards and idle.
// RestartMaster builds the replacement.
func (c *Cluster) KillMaster() {
	c.Master.Kill()
}

// RestartMaster replaces a killed master with a fresh instance on the same
// fabric, same configuration and same checkpoint directory. Call Resume on
// the cluster afterwards to recover the interrupted job.
func (c *Cluster) RestartMaster() error {
	ep, err := c.rebindMasterEndpoint()
	if err != nil {
		return err
	}
	m, err := NewMaster(ep, c.schema, c.placement, c.masterCfg)
	if err != nil {
		return err
	}
	c.Master = m
	c.Master.Start()
	return nil
}

// Resume recovers the interrupted job from the checkpoint directory: done
// trees are restored from disk, unfinished trees restart, and the result is
// bit-identical to an uninterrupted run.
func (c *Cluster) Resume() ([]*core.Tree, error) {
	return c.Master.Resume()
}

// Close shuts the deployment down.
func (c *Cluster) Close() {
	if c.Standby != nil {
		c.Standby.Stop()
	}
	c.Master.Stop()
	for _, w := range c.Workers {
		w.Stop()
	}
	c.Net.Close()
}

// Metrics summarises a cluster's activity for the experiment harnesses.
type Metrics struct {
	WallSeconds     float64
	WorkerBusy      []float64 // comper busy seconds per worker
	CPUUtilisation  float64   // average busy-compers per worker, like the paper's "CPU %"
	WorkerSentBytes int64
	MasterSentBytes int64
	SendMbps        float64 // aggregate worker outbound rate
}

// MetricsSince summarises activity between a wall-clock start and now.
func (c *Cluster) MetricsSince(start time.Time) Metrics {
	wall := time.Since(start).Seconds()
	m := Metrics{WallSeconds: wall}
	var busy float64
	for _, w := range c.Workers {
		b := w.BusySeconds()
		m.WorkerBusy = append(m.WorkerBusy, b)
		busy += b
		m.WorkerSentBytes += w.TransportStats().BytesSent
	}
	m.MasterSentBytes = c.Master.TransportStats().BytesSent
	if wall > 0 {
		// busy/wall is the average number of simultaneously busy compers in
		// the cluster; per machine and ×100 matches the paper's "CPU %"
		// convention (e.g. 837% = 8.37 cores busy).
		m.CPUUtilisation = busy / wall / float64(len(c.Workers)) * 100
		m.SendMbps = float64(m.WorkerSentBytes) * 8 / 1e6 / wall
	}
	return m
}
