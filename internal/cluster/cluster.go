package cluster

import (
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/loadbal"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// Config describes an in-process TreeServer deployment.
type Config struct {
	// Workers is the number of worker machines (paper: 15). Default 4.
	Workers int
	// Compers is the computing-thread pool size per worker (paper: 10).
	// Default 4.
	Compers int
	// Replicas is k, the column replication factor (paper default 2).
	Replicas int
	// Policy holds τ_D, τ_dfs and n_pool; zero value uses the paper's
	// defaults.
	Policy task.Policy
	// Heartbeat enables failure detection (0 = off).
	Heartbeat time.Duration
	// RoundRobinAssign / RelayRows select the two ablation modes.
	RoundRobinAssign bool
	RelayRows        bool
	// BandwidthBps models per-machine link speed (0 = unlimited).
	BandwidthBps float64
	// Passthrough skips gob serialisation on the in-memory fabric.
	Passthrough bool
	// JobTimeout bounds each Train call (default 5 minutes; <0 disables).
	JobTimeout time.Duration
	// TaskRetry enables master-side task re-execution on this per-attempt
	// deadline (0 = off); MaxTaskAttempts bounds executions per task.
	TaskRetry       time.Duration
	MaxTaskAttempts int
	// WrapEndpoint, when set, decorates every endpoint (master and workers)
	// before use — the hook the chaos harness uses to inject faults into the
	// fabric without the cluster knowing.
	WrapEndpoint func(transport.Endpoint) transport.Endpoint
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Compers <= 0 {
		c.Compers = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Policy == (task.Policy{}) {
		c.Policy = task.DefaultPolicy()
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	return c
}

// Cluster is an in-process TreeServer deployment: one master plus N workers
// as goroutine groups over an in-memory transport. Every message still
// crosses a gob serialisation boundary, so the protocol is exercised exactly
// as it would be over TCP.
type Cluster struct {
	Master  *Master
	Workers []*Worker
	Net     *transport.MemNetwork
	cfg     Config
	start   time.Time
}

// NewInProcess partitions the table's columns over cfg.Workers workers
// (k = cfg.Replicas copies each, Y everywhere — the paper's loading scheme)
// and starts master and workers.
func NewInProcess(tbl *dataset.Table, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	net := transport.NewMemNetwork()
	net.BandwidthBps = cfg.BandwidthBps
	net.Passthrough = cfg.Passthrough

	schema := SchemaOf(tbl)
	placement := loadbal.RoundRobin(tbl.FeatureIndexes(), cfg.Workers, cfg.Replicas)

	endpoint := func(name string) transport.Endpoint {
		ep := transport.Endpoint(net.Endpoint(name))
		if cfg.WrapEndpoint != nil {
			ep = cfg.WrapEndpoint(ep)
		}
		return ep
	}

	c := &Cluster{Net: net, cfg: cfg, start: time.Now()}
	for w := 0; w < cfg.Workers; w++ {
		cols := map[int]*dataset.Column{}
		for col, owners := range placement.Owners {
			for _, o := range owners {
				if o == w {
					cols[col] = tbl.Cols[col]
				}
			}
		}
		worker := NewWorker(w, endpoint(WorkerName(w)), schema, cols, tbl.Y(), cfg.Compers)
		worker.Start()
		c.Workers = append(c.Workers, worker)
	}
	c.Master = NewMaster(endpoint(MasterName), schema, placement, MasterConfig{
		NumWorkers: cfg.Workers, Policy: cfg.Policy,
		Heartbeat:        cfg.Heartbeat,
		RoundRobinAssign: cfg.RoundRobinAssign,
		RelayRows:        cfg.RelayRows,
		JobTimeout:       cfg.JobTimeout,
		TaskRetry:        cfg.TaskRetry,
		MaxTaskAttempts:  cfg.MaxTaskAttempts,
	})
	c.Master.Start()
	return c
}

// Train runs one job and returns the trees in spec order.
func (c *Cluster) Train(specs []TreeSpec) ([]*core.Tree, error) {
	return c.Master.Train(specs)
}

// TrainOne trains a single tree with the given parameters over all rows.
func (c *Cluster) TrainOne(params core.Params) (*core.Tree, error) {
	trees, err := c.Train([]TreeSpec{{Params: params}})
	if err != nil {
		return nil, err
	}
	return trees[0], nil
}

// CrashWorker simulates a machine failure: the worker's endpoint starts
// dropping all traffic. Recovery is driven by the heartbeat prober, or
// manually via Master.NotifyWorkerFailure.
func (c *Cluster) CrashWorker(i int) {
	c.Net.Endpoint(WorkerName(i)).Crash()
}

// Close shuts the deployment down.
func (c *Cluster) Close() {
	c.Master.Stop()
	for _, w := range c.Workers {
		w.Stop()
	}
	c.Net.Close()
}

// Metrics summarises a cluster's activity for the experiment harnesses.
type Metrics struct {
	WallSeconds     float64
	WorkerBusy      []float64 // comper busy seconds per worker
	CPUUtilisation  float64   // average busy-compers per worker, like the paper's "CPU %"
	WorkerSentBytes int64
	MasterSentBytes int64
	SendMbps        float64 // aggregate worker outbound rate
}

// MetricsSince summarises activity between a wall-clock start and now.
func (c *Cluster) MetricsSince(start time.Time) Metrics {
	wall := time.Since(start).Seconds()
	m := Metrics{WallSeconds: wall}
	var busy float64
	for _, w := range c.Workers {
		b := w.BusySeconds()
		m.WorkerBusy = append(m.WorkerBusy, b)
		busy += b
		m.WorkerSentBytes += w.TransportStats().BytesSent
	}
	m.MasterSentBytes = c.Master.TransportStats().BytesSent
	if wall > 0 {
		// busy/wall is the average number of simultaneously busy compers in
		// the cluster; per machine and ×100 matches the paper's "CPU %"
		// convention (e.g. 837% = 8.37 cores busy).
		m.CPUUtilisation = busy / wall / float64(len(c.Workers)) * 100
		m.SendMbps = float64(m.WorkerSentBytes) * 8 / 1e6 / wall
	}
	return m
}
