package cluster

import (
	"strings"
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/loadbal"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// standbyConfig is the shared deployment for the hot-standby tests: diskless
// (no CheckpointDir — the stream is the only durability), a short lease so
// failover fires fast, and task retries so rejoin-era message loss heals.
func standbyConfig() Config {
	cfg := testConfig()
	cfg.Policy = task.Policy{TauD: 600, TauDFS: 2400, NPool: 2}
	cfg.Standby = true
	cfg.LeaseTTL = 150 * time.Millisecond
	cfg.TaskRetry = 250 * time.Millisecond
	cfg.MaxTaskAttempts = 8
	cfg.RejoinTimeout = 2 * time.Second
	cfg.Observer = obs.NewRegistry()
	return cfg
}

// killAfterTrees starts the job, blocks until the primary has completed at
// least n trees, then kills it without warning. Returns the Train error.
func killAfterTrees(t *testing.T, c *Cluster, specs []TreeSpec, n int) error {
	t.Helper()
	trainErr := make(chan error, 1)
	go func() {
		_, err := c.Train(specs)
		trainErr <- err
	}()
	deadline := time.After(30 * time.Second)
	for c.Master.CompletedTrees() < n {
		select {
		case err := <-trainErr:
			t.Fatalf("job finished before the kill (err=%v); slow the config down", err)
		case <-deadline:
			t.Fatalf("fewer than %d trees completed within 30s", n)
		case <-time.After(time.Millisecond):
		}
	}
	c.KillMaster()
	return <-trainErr
}

// awaitFailover blocks until the standby finishes its takeover job.
func awaitFailover(t *testing.T, c *Cluster) []*core.Tree {
	t.Helper()
	select {
	case <-c.Standby.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("standby did not finish the job within 60s of the primary dying")
	}
	trees, err := c.Standby.Result()
	if err != nil {
		t.Fatalf("standby takeover failed: %v", err)
	}
	return trees
}

// TestStandbyFailoverDisklessBitIdentical is the tentpole guarantee: the
// primary dies mid-job with NO checkpoint directory configured, and the
// standby — fed only by the streamed records — finishes the forest
// bit-identical to the serial oracle, without any disk reload or
// RestartMaster call.
func TestStandbyFailoverDisklessBitIdentical(t *testing.T) {
	tbl := recoveryTable()
	specs := recoverySpecs(tbl.NumRows(), 8)

	cfg := standbyConfig()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	if c.Master.cfg.CheckpointDir != "" {
		t.Fatal("test misconfigured: failover must be diskless")
	}

	trainErr := make(chan error, 1)
	go func() {
		_, err := c.Train(specs)
		trainErr <- err
	}()
	// Kill once at least two trees are replicated AND at least one lease
	// renewal has been acked — so the test covers the renew/ack path, not
	// just the initial grant.
	deadline := time.After(30 * time.Second)
	for {
		s := cfg.Observer.Snapshot().Master
		if c.Master.CompletedTrees() >= 2 && s.LeaseAcks >= 1 {
			break
		}
		select {
		case err := <-trainErr:
			t.Fatalf("job finished before the kill (err=%v); slow the config down", err)
		case <-deadline:
			t.Fatal("kill precondition (2 trees + 1 lease ack) not reached within 30s")
		case <-time.After(time.Millisecond):
		}
	}
	c.KillMaster()
	if err := <-trainErr; err == nil {
		t.Fatal("killed Train returned nil error")
	}
	got := awaitFailover(t, c)
	assertBitIdentical(t, got, serialOracle(tbl, specs))

	s := cfg.Observer.Snapshot().Master
	if s.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", s.Failovers)
	}
	if s.StreamRecords < 3 { // job-start snapshot + >=2 tree-done records
		t.Fatalf("streamed %d records, want >= 3", s.StreamRecords)
	}
	if s.StreamApplied < 1 {
		t.Fatalf("replica applied %d records, want >= 1", s.StreamApplied)
	}
	if s.LeaseRenewals < 1 || s.LeaseAcks < 1 {
		t.Fatalf("lease traffic renewals=%d acks=%d, want both >= 1", s.LeaseRenewals, s.LeaseAcks)
	}
	if s.CheckpointSnapshots != 0 || s.CheckpointBytes != 0 {
		t.Fatalf("diskless run wrote %d snapshots / %d bytes to disk", s.CheckpointSnapshots, s.CheckpointBytes)
	}
}

// TestStandbyIdleWhilePrimaryHealthy: a healthy job with a standby attached
// completes normally on the primary; the standby replicates but never
// promotes, and the forest matches the oracle.
func TestStandbyIdleWhilePrimaryHealthy(t *testing.T) {
	tbl := recoveryTable()
	specs := recoverySpecs(tbl.NumRows(), 4)

	cfg := standbyConfig()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	got, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	assertBitIdentical(t, got, serialOracle(tbl, specs))
	if c.Standby.Promoted() {
		t.Fatal("standby promoted under a healthy primary")
	}
	if applied, _ := c.Standby.ReplicaStats(); applied < 5 {
		// job-start snapshot + 4 tree-done records, at minimum
		t.Fatalf("replica applied %d records during a healthy job, want >= 5", applied)
	}
}

// TestStandbySetTargetAcrossFailover is the satellite-4 regression: a
// takeover immediately followed by the worker rejoin must leave the
// SetTarget machinery coherent. The workers' sequence fence resets with the
// rejoin (the promoted master counts from zero again), the resumed job keeps
// the regression schema recorded in the replicated snapshot, and the next
// boosting round applies exactly once per worker — no silent drop from a
// stale fence, no double-apply from resends. TargetApplies is the proof.
func TestStandbySetTargetAcrossFailover(t *testing.T) {
	tbl := recoveryTable()
	specs := recoverySpecs(tbl.NumRows(), 6)

	cfg := standbyConfig()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	// Round 1 of a boosting cadence: swap in numeric labels, then train.
	y1 := make([]float64, tbl.NumRows())
	for i := range y1 {
		y1[i] = float64(i%7) - 3
	}
	if err := c.SetTarget(y1); err != nil {
		t.Fatalf("SetTarget round 1: %v", err)
	}
	for _, w := range c.Workers {
		if got := w.TargetApplies(); got != 1 {
			t.Fatalf("worker %d applied %d targets before the kill, want 1", w.ID(), got)
		}
	}

	if err := killAfterTrees(t, c, specs, 1); err == nil {
		t.Fatal("killed Train returned nil error")
	}
	got := awaitFailover(t, c)

	// The resumed regression job must match a serial run over the swapped
	// labels — proving the replicated snapshot carried the schema swap.
	cols := append([]*dataset.Column(nil), tbl.Cols...)
	cols[tbl.Target] = dataset.NewNumeric("Y", y1)
	swapped := &dataset.Table{Cols: cols, Target: tbl.Target}
	want := make([]*core.Tree, len(specs))
	for i, spec := range specs {
		want[i] = core.TrainLocal(swapped, spec.Bag.Rows(), spec.Params)
	}
	assertBitIdentical(t, got, want)

	// Round 2 against the promoted master: its sequence restarts at 1, which
	// the rejoin-reset worker fence must accept — and apply exactly once.
	promoted := c.Standby.Master()
	if promoted == nil {
		t.Fatal("no promoted master after failover")
	}
	y2 := make([]float64, tbl.NumRows())
	for i := range y2 {
		y2[i] = y1[i] * 0.5
	}
	if err := promoted.SetTarget(y2); err != nil {
		t.Fatalf("SetTarget round 2 on promoted master: %v", err)
	}
	for _, w := range c.Workers {
		if got := w.TargetApplies(); got != 2 {
			t.Fatalf("worker %d applied %d targets after failover round, want exactly 2", w.ID(), got)
		}
	}
}

// TestNoStandbyNoStreamTraffic pins the strictly-additive guarantee: with no
// standby configured, not one standby-protocol message crosses the fabric
// and the stream/lease counters stay zero, so scheduling and byte traffic
// are untouched.
func TestNoStandbyNoStreamTraffic(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "nostandby", Rows: 800, NumNumeric: 4,
		NumClasses: 2, ConceptDepth: 3, Seed: 9})
	cfg := testConfig()
	cfg.Observer = obs.NewRegistry()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()
	if _, err := c.Train(recoverySpecs(tbl.NumRows(), 2)); err != nil {
		t.Fatalf("train: %v", err)
	}
	snap := cfg.Observer.Snapshot()
	for _, msg := range snap.Messages {
		switch msg.Type {
		case "cluster.CkptRecordMsg", "cluster.LeaseGrantMsg", "cluster.LeaseRenewMsg",
			"cluster.LeaseAckMsg", "cluster.TakeoverMsg":
			t.Fatalf("standby-protocol message %s on the wire without a standby", msg.Type)
		}
	}
	m := snap.Master
	if m.StreamRecords != 0 || m.LeaseRenewals != 0 || m.Failovers != 0 {
		t.Fatalf("standby counters moved without a standby: records=%d renewals=%d failovers=%d",
			m.StreamRecords, m.LeaseRenewals, m.Failovers)
	}
}

// TestStandbyConfigValidation pins the option-surface errors.
func TestStandbyConfigValidation(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "sbv", Rows: 300, NumNumeric: 3,
		NumClasses: 2, ConceptDepth: 2, Seed: 5})
	if _, err := NewInProcess(tbl, WithJobTimeout(time.Minute), func(c *Config) { c.LeaseTTL = time.Second }); err == nil ||
		!strings.Contains(err.Error(), "LeaseTTL set without Standby") {
		t.Fatalf("LeaseTTL without Standby: %v", err)
	}
	if _, err := NewInProcess(tbl, WithStandby(), func(c *Config) { c.LeaseTTL = -time.Second }); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative LeaseTTL: %v", err)
	}
	if _, err := NewMaster(nil, Schema{}, loadbal.Placement{}, MasterConfig{NumWorkers: 1, LeaseTTL: time.Second}); err == nil ||
		!strings.Contains(err.Error(), "LeaseTTL set without StandbyName") {
		t.Fatalf("MasterConfig LeaseTTL without StandbyName: %v", err)
	}
}
