package cluster

import (
	"encoding/gob"

	"treeserver/internal/dataset"
	"treeserver/internal/sketch"
	"treeserver/internal/split"
	"treeserver/internal/task"
)

// Wire messages of the distributed histogram training mode ("-mode hist").
// The protocol has two phases layered on the existing task machinery:
//
//  1. Bin proposal (once per cluster, before the first hist job): the master
//     broadcasts BinProposalRequestMsg; every worker sketches each owned
//     numeric column and replies with BinProposalMsg; the master merges the
//     replica sketches per column, derives immutable split.Bins, and
//     broadcasts them in BinBroadcastMsg until an alive quorum acks with
//     BinAckMsg (the SetTarget quorum template).
//
//  2. Per column-task: workers answer hist-mode ColumnPlanMsgs with
//     TopKVoteMsg — only their k best candidate splits, not every bin of
//     every column. The master elects the globally voted columns, fetches
//     their full histograms with HistogramRequestMsg / HistogramMsg, merges,
//     and confirms the winner through the unchanged ConfirmSplit flow.

// histSketchSize is the per-column quantile-summary size used by both the
// workers (proposal) and the master (merge).
func histSketchSize(maxBins int) int { return split.SketchCapacity(maxBins) }

// ColumnSketch is one column's bin-proposal payload: a quantile summary for
// numeric columns, the level count for categorical ones.
type ColumnSketch struct {
	Col     int
	Kind    dataset.Kind
	Levels  int            // categorical: number of levels
	Entries []sketch.Entry // numeric: compressed weighted summary
}

// BinProposalRequestMsg asks a worker to sketch every column it holds.
type BinProposalRequestMsg struct {
	Seq     int64
	MaxBins int
}

// BinProposalMsg carries one worker's sketches back to the master.
type BinProposalMsg struct {
	Worker   int
	Seq      int64
	Sketches []ColumnSketch
}

// BinBroadcastMsg installs the merged, immutable per-column bins on a worker.
// Workers pre-bin their held columns before acking, so a quorum of acks means
// the fleet is ready to fill histograms.
type BinBroadcastMsg struct {
	Seq  int64
	Bins []split.Bins
}

// BinAckMsg confirms a BinBroadcastMsg was applied.
type BinAckMsg struct {
	Worker int
	Seq    int64
}

// TopKVoteMsg is a worker's answer to a hist-mode column plan: its best k
// candidate splits over the assigned columns, ordered best-first, plus the
// node's label stats. Each candidate is computed from the worker's full
// column histogram, so under column partitioning a vote is already globally
// exact with respect to the bins.
type TopKVoteMsg struct {
	Task    task.ID
	Attempt int
	Worker  int
	Votes   []split.Candidate
	Stats   NodeStats
}

// HistogramRequestMsg asks a worker for the full node histograms of the
// globally elected columns — the only histograms that ever cross the wire.
type HistogramRequestMsg struct {
	Task    task.ID
	Attempt int
	Cols    []int
}

// HistogramMsg returns the requested histograms, aligned with Cols.
type HistogramMsg struct {
	Task    task.ID
	Attempt int
	Worker  int
	Cols    []int
	Hists   []*split.Hist
}

func init() {
	gob.Register(BinProposalRequestMsg{})
	gob.Register(BinProposalMsg{})
	gob.Register(BinBroadcastMsg{})
	gob.Register(BinAckMsg{})
	gob.Register(TopKVoteMsg{})
	gob.Register(HistogramRequestMsg{})
	gob.Register(HistogramMsg{})
}
