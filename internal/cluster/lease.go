package cluster

import (
	"errors"
	"fmt"
	"time"
)

// ErrFenced is the job error a master reports when it has been fenced by a
// standby takeover: its lease lapsed (or its endpoint was rebound under it)
// and a higher generation now owns the fleet.
var ErrFenced = errors.New("cluster: master fenced by standby takeover")

// leaseGen maps a master generation to its lease generation. Lease
// generations must be strictly positive so a fresh master (gen 0) can
// acquire against a zero-valued machine, hence the +1 offset.
func leaseGen(masterGen int64) int64 { return masterGen + 1 }

type leaseState int

const (
	leaseFollower leaseState = iota
	leaseLeader
	leaseFenced
)

func (s leaseState) String() string {
	switch s {
	case leaseFollower:
		return "follower"
	case leaseLeader:
		return "leader"
	case leaseFenced:
		return "fenced"
	}
	return "unknown"
}

// leaseMachine is the pure lease/failover state machine: candidate→leader
// acquisition, renewal, lapse and fencing. It never reads the wall clock —
// every transition takes `now` as an argument — so tests drive it with a
// fake clock and the master/standby drive it with time.Now().
//
// Safety argument (at most one unfenced leader at any instant): a renewal
// only extends the leader's lease once the follower ACKS it, and then only
// to the renewal's SEND time + ttl; the follower extends its watched expiry
// to the renewal's RECEIPT time + ttl the moment it arrives. Receipt is
// never earlier than send, so the follower's promise always covers the
// leader's lease: if renewals (or their acks) are dropped, delayed or
// partitioned away, the leader's lease simply stops extending and it
// self-fences at expiry — strictly before the follower's watched window,
// which outlives it, can lapse and admit a takeover. Generations are
// strictly monotonic (Acquire requires gen > every generation ever
// observed), so a fenced generation can never re-acquire.
type leaseMachine struct {
	state   leaseState
	ttl     time.Duration
	gen     int64     // generation this node leads (or led) under
	maxGen  int64     // highest lease generation ever observed or acquired
	expiry  time.Time // leader: own lease expiry; follower: watched expiry
	seq     int64     // last renewal sequence issued by this leader
	pending map[int64]time.Time
}

// newLeaseMachine returns a follower with no watched lease. The follower's
// lapse clock does not start until the first Observe.
func newLeaseMachine(ttl time.Duration) *leaseMachine {
	return &leaseMachine{state: leaseFollower, ttl: ttl}
}

// Acquire attempts the candidate→leader transition at generation gen.
// It fails unless the node is an eligible follower, gen beats every
// generation ever observed, and any watched lease has already lapsed.
func (m *leaseMachine) Acquire(now time.Time, gen int64) error {
	if m.state != leaseFollower {
		return fmt.Errorf("lease: acquire from %s state", m.state)
	}
	if gen <= m.maxGen {
		return fmt.Errorf("lease: acquire gen %d not above observed max %d", gen, m.maxGen)
	}
	if !m.expiry.IsZero() && now.Before(m.expiry) {
		return fmt.Errorf("lease: acquire before watched lease expires (%s early)", m.expiry.Sub(now))
	}
	m.state = leaseLeader
	m.gen = gen
	m.maxGen = gen
	m.expiry = now.Add(m.ttl) // self-grant; extensions need follower acks
	m.pending = map[int64]time.Time{}
	return nil
}

// Renew issues a renewal attempt: it records the send time under a fresh
// sequence number (returned, for the wire message) but does NOT extend the
// lease — only the follower's ack does, via Ack. Renewing after the lease
// already expired fences the node: a standby may have taken over in the
// gap, so the old leader must not keep acting on a lapsed lease.
func (m *leaseMachine) Renew(now time.Time) (int64, error) {
	if m.state != leaseLeader {
		return 0, fmt.Errorf("lease: renew from %s state", m.state)
	}
	if now.After(m.expiry) {
		m.state = leaseFenced
		return 0, fmt.Errorf("lease: renewed %s after expiry; fenced", now.Sub(m.expiry))
	}
	m.seq++
	m.pending[m.seq] = now
	return m.seq, nil
}

// Ack records the follower's acknowledgement of renewal seq, extending the
// leader's lease to the renewal's send time + ttl. Unknown or duplicate
// sequence numbers and acks arriving after a fence are ignored.
func (m *leaseMachine) Ack(seq int64) {
	if m.state != leaseLeader {
		return
	}
	sent, ok := m.pending[seq]
	if !ok {
		return
	}
	// Acks are cumulative: seeing seq means the follower's watched window
	// covers every earlier renewal too, so drop them all.
	for s := range m.pending {
		if s <= seq {
			delete(m.pending, s)
		}
	}
	if e := sent.Add(m.ttl); e.After(m.expiry) {
		m.expiry = e
	}
}

// Observe records a grant or renewal received from generation gen. A leader
// observing a higher generation has been superseded and fences itself. A
// follower observing the newest generation pushes its watched expiry out
// from receipt time — the pessimistic side of the safety argument above.
// Stale generations are ignored.
func (m *leaseMachine) Observe(now time.Time, gen int64) {
	if gen > m.maxGen {
		m.maxGen = gen
	}
	switch m.state {
	case leaseLeader:
		if gen > m.gen {
			m.state = leaseFenced
		}
	case leaseFollower:
		// Only ever extend the watched window — a reordered older renewal
		// must not rewind the promise already made for a newer one.
		if e := now.Add(m.ttl); gen == m.maxGen && e.After(m.expiry) {
			m.expiry = e
		}
	}
}

// Leading reports whether the node holds a valid lease at instant now. A
// leader whose lease has lapsed is fenced on the spot: it must discover its
// own demotion no later than anyone else can acquire.
func (m *leaseMachine) Leading(now time.Time) bool {
	if m.state == leaseLeader && now.After(m.expiry) {
		m.state = leaseFenced
	}
	return m.state == leaseLeader
}

// Lapsed reports whether a follower's watched lease has expired, i.e. the
// leader has missed enough renewals that takeover is now safe. A follower
// that has never observed a grant is not lapsed — its clock hasn't started.
func (m *leaseMachine) Lapsed(now time.Time) bool {
	return m.state == leaseFollower && !m.expiry.IsZero() && now.After(m.expiry)
}

// Fence forces the node into the terminal fenced state.
func (m *leaseMachine) Fence() { m.state = leaseFenced }

// Fenced reports whether the node is permanently fenced.
func (m *leaseMachine) Fenced() bool { return m.state == leaseFenced }

// Gen returns the generation this node leads (or last led) under.
func (m *leaseMachine) Gen() int64 { return m.gen }

// MaxObserved returns the highest lease generation ever seen; a candidate
// acquires at MaxObserved()+1.
func (m *leaseMachine) MaxObserved() int64 { return m.maxGen }
