package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/obs"
	"treeserver/internal/split"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// Worker is one TreeServer worker machine. It runs a receiving loop (the
// paper's θ_main/θ_recv, folded into one dispatcher since both only move
// state) and a pool of computing threads ("compers") that execute the
// CPU-bound work: split finding and subtree construction.
type Worker struct {
	id      int
	ep      transport.Endpoint
	schema  Schema
	compers int

	mu       sync.Mutex
	cols     map[int]*dataset.Column // column replicas held by this worker
	y        *dataset.Column
	tasks    map[task.ID]*wtask
	rowWaits map[task.ID][]func([]int32)
	colWaits []colWait // work parked until re-replicated columns arrive

	// SetTarget idempotence fence: sequences at or below targetSeq were
	// already applied and are only re-acked. targetApplies counts actual
	// applications for the duplicate-delivery tests.
	targetSeq     int64
	targetApplies int

	// Elastic-fleet join-client state: the highest master generation this
	// worker has observed (-1 until a master speaks to it — carried in join
	// requests so a stale primary can be fenced), whether the worker has
	// been admitted, and the channel Join blocks on (closed exactly once on
	// the first terminal outcome).
	joinGen    int64
	joined     bool
	joinErr    error
	joinDone   chan struct{}
	joinClosed bool

	// Hist-mode state: the broadcast bins (fenced by binSeq), the lazily
	// binned images of held columns, and the node-histogram cache backing
	// subtraction and post-election fetches.
	binSeq    int64
	bins      map[int]split.Bins
	binned    map[int]*split.BinnedColumn
	histCache *histCache

	btask    chan func()
	done     chan struct{} // closed on shutdown; gates btask enqueues and comper exit
	wg       sync.WaitGroup
	stopOnce sync.Once
	busyNs   atomic.Int64

	// rowSets pools per-comper RowSet instances (all sized to the table) so
	// concurrent column-tasks can engage the presorted split fast path
	// without allocating a fresh membership set per task.
	rowSets sync.Pool

	// obs is this worker's measured M_work row; sc the shared split-kernel
	// counters. Both nil when telemetry is disabled — hot paths gate their
	// stopwatches on the nil check so the disabled cost is one comparison.
	obs *obs.WorkerObs
	sc  *obs.SplitCounters
}

// colWait parks a continuation until all its columns are installed. This
// absorbs the fault-recovery race where the master re-plans a task onto a
// new replica owner before the column copy has arrived.
type colWait struct {
	cols []int
	cont func()
}

// wtask is the worker-side task object kept in T_task.
type wtask struct {
	// Column-task state.
	colPlan *ColumnPlanMsg
	attempt int
	rows    []int32
	// Delegate state after ConfirmSplit. confirmed and released guard against
	// duplicate deliveries: a re-sent confirm must not re-partition, and a
	// duplicated release must not double-decrement pendingReleases and free
	// the other side's rows early.
	confirmed           bool
	released            [2]bool
	leftRows, rightRows []int32
	pendingReleases     int
	// Subtree-task (key worker) state.
	subPlan    *SubtreePlanMsg
	shards     map[int]*dataset.Column
	needShards int
}

// NewWorker constructs a worker holding the given column replicas plus the
// full target column y. Start must be called before the master sends plans.
// reg, when non-nil, receives the worker's Comp/Send/Recv stopwatches and
// pool telemetry; the worker resolves its collectors once here so the hot
// paths pay a single pointer check.
func NewWorker(id int, ep transport.Endpoint, schema Schema, cols map[int]*dataset.Column, y *dataset.Column, compers int, reg *obs.Registry) *Worker {
	if compers < 1 {
		compers = 1
	}
	// Own the Kinds slice: over the in-memory fabric every worker receives
	// the same backing array, and handleSetTarget mutates it in place.
	schema.Kinds = append([]dataset.Kind(nil), schema.Kinds...)
	return &Worker{
		id: id, ep: ep, schema: schema, compers: compers,
		cols: cols, y: y,
		tasks:     map[task.ID]*wtask{},
		rowWaits:  map[task.ID][]func([]int32){},
		histCache: newHistCache(defaultHistCacheCap),
		btask:     make(chan func(), 4096),
		done:      make(chan struct{}),
		joinGen:   -1,
		joinDone:  make(chan struct{}),
		obs:       reg.Worker(id),
		sc:        reg.Split(),
	}
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// BusySeconds returns the cumulative comper compute time, the basis for the
// CPU-utilisation numbers of Table VI.
func (w *Worker) BusySeconds() float64 { return float64(w.busyNs.Load()) / 1e9 }

// TransportStats exposes the worker's traffic counters.
func (w *Worker) TransportStats() transport.Stats { return w.ep.Stats() }

// HoldsColumn reports whether the worker currently holds a replica of col.
func (w *Worker) HoldsColumn(col int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.cols[col]
	return ok
}

// Start launches the receive loop and the comper pool.
func (w *Worker) Start() {
	for i := 0; i < w.compers; i++ {
		w.wg.Add(1)
		go w.comperLoop()
	}
	w.wg.Add(1)
	go w.recvLoop()
}

// Wait blocks until the worker terminates (a ShutdownMsg from the master or
// a Stop call) — the run loop of a standalone worker process.
func (w *Worker) Wait() { w.wg.Wait() }

// Stop terminates the worker and waits for its goroutines.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		w.ep.Close()
		close(w.done)
	})
	w.wg.Wait()
}

// enqueue hands a job to the comper pool. Late continuations (a delayed
// RowsResponse landing after shutdown) must not panic or block forever, so
// shutdown is signalled via the done channel rather than closing btask.
func (w *Worker) enqueue(job func()) {
	select {
	case <-w.done:
		return
	default:
	}
	select {
	case w.btask <- job:
	case <-w.done:
	}
}

func (w *Worker) comperLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case job := <-w.btask:
			start := time.Now()
			job()
			d := time.Since(start)
			w.busyNs.Add(int64(d))
			w.obs.AddComp(d) // the measured M_work Comp column
		}
	}
}

func (w *Worker) recvLoop() {
	defer w.wg.Done()
	for {
		env, ok := w.ep.Recv()
		if !ok {
			return
		}
		if w.obs != nil {
			// Time the handler (not the blocking Recv wait): that is the
			// measured M_work Recv column, the receive-side protocol cost.
			start := time.Now()
			alive := w.dispatch(env)
			w.obs.AddRecv(time.Since(start))
			if !alive {
				return
			}
			continue
		}
		if !w.dispatch(env) {
			return
		}
	}
}

// dispatch routes one delivered message; it returns false on shutdown.
func (w *Worker) dispatch(env transport.Envelope) bool {
	switch msg := env.Payload.(type) {
	case ColumnPlanMsg:
		w.handleColumnPlan(msg)
	case SubtreePlanMsg:
		w.handleSubtreePlan(msg)
	case ConfirmSplitMsg:
		w.handleConfirm(msg)
	case DropTaskMsg:
		w.handleDrop(msg)
	case ReleaseSideMsg:
		w.handleRelease(msg)
	case RowsRequestMsg:
		w.handleRowsRequest(msg)
	case RowsResponseMsg:
		w.handleRowsResponse(msg)
	case ColDataRequestMsg:
		w.handleColDataRequest(msg)
	case ColDataResponseMsg:
		w.handleColDataResponse(msg)
	case ReplicateColumnMsg:
		w.handleReplicate(msg)
	case ColumnCopyMsg:
		w.handleColumnCopy(msg)
	case SetTargetMsg:
		w.handleSetTarget(msg)
	case BinProposalRequestMsg:
		w.handleBinProposalRequest(msg)
	case BinBroadcastMsg:
		w.handleBinBroadcast(msg)
	case HistogramRequestMsg:
		w.handleHistogramRequest(msg)
	case RejoinRequestMsg:
		w.handleRejoin(msg)
	case JoinAcceptMsg:
		w.handleJoinAccept(msg)
	case JoinAdmitMsg:
		w.handleJoinAdmit(msg)
	case JoinRejectMsg:
		w.handleJoinReject(msg)
	case PingMsg:
		w.send(MasterName, PongMsg{Worker: w.id, Seq: msg.Seq})
	case ProbeMsg:
		w.send(MasterName, ProbeAckMsg{Worker: w.id, Seq: msg.Seq})
	case ShutdownMsg:
		w.stopOnce.Do(func() {
			w.ep.Close()
			close(w.done)
		})
		return false
	}
	return true
}

func (w *Worker) send(to string, payload any) {
	// Transient fabric errors are retried with bounded backoff; permanent
	// errors mean the peer crashed or the job is over, and the master's
	// fault-recovery and task re-execution paths own those situations.
	if w.obs != nil {
		// Retries and backoff sleeps are charged too: the measured M_work
		// Send column is the wall cost of getting bytes out, not just the
		// happy-path serialisation.
		start := time.Now()
		_ = transport.SendWithRetry(w.ep, to, payload, transport.DefaultRetryPolicy())
		w.obs.AddSend(time.Since(start))
		return
	}
	_ = transport.SendWithRetry(w.ep, to, payload, transport.DefaultRetryPolicy())
}

func (w *Worker) fail(t task.ID, format string, args ...any) {
	w.send(MasterName, WorkerErrorMsg{Worker: w.id, Task: t, Err: fmt.Sprintf(format, args...)})
}

// needRows arranges for cont to run with I_x for the task: root bags are
// derived locally, locally-delegated rows are read directly, and remote rows
// are requested from the parent worker (Section V). cont runs on the receive
// goroutine.
func (w *Worker) needRows(parent ParentRef, forTask task.ID, cont func([]int32)) {
	if parent.IsRoot() {
		cont(parent.Bag.Rows())
		return
	}
	if parent.Worker == w.id {
		rows, ok := w.lookupSideRows(parent.Task, parent.Side)
		if !ok {
			w.fail(forTask, "local parent task %d side %d has no rows", parent.Task, parent.Side)
			return
		}
		cont(rows)
		return
	}
	w.mu.Lock()
	w.rowWaits[forTask] = append(w.rowWaits[forTask], cont)
	w.mu.Unlock()
	w.send(WorkerName(parent.Worker), RowsRequestMsg{Parent: parent, ForTask: forTask, Requester: w.id})
}

// whenColumnsPresent runs cont once the worker holds every listed column —
// immediately in the common case, or after a ColumnCopyMsg lands.
func (w *Worker) whenColumnsPresent(cols []int, cont func()) {
	w.mu.Lock()
	missing := false
	for _, c := range cols {
		if w.cols[c] == nil {
			missing = true
			break
		}
	}
	if missing {
		w.colWaits = append(w.colWaits, colWait{cols: append([]int(nil), cols...), cont: cont})
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	cont()
}

func (w *Worker) lookupSideRows(parent task.ID, side uint8) ([]int32, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	entry, ok := w.tasks[parent]
	if !ok {
		return nil, false
	}
	if side == 0 {
		return entry.leftRows, entry.leftRows != nil
	}
	return entry.rightRows, entry.rightRows != nil
}

// --- Column-task flow (Fig. 9(b)) ---

func (w *Worker) handleColumnPlan(msg ColumnPlanMsg) {
	entry := &wtask{colPlan: &msg, attempt: msg.Attempt}
	w.mu.Lock()
	if prev, ok := w.tasks[msg.Task]; ok && prev.attempt >= msg.Attempt {
		w.mu.Unlock()
		return // duplicated or stale plan delivery; keep the live state
	}
	w.tasks[msg.Task] = entry
	w.mu.Unlock()
	compute := w.computeColumnTask
	if msg.Hist {
		compute = w.computeColumnTaskHist
	}
	if msg.Rows != nil { // relay-rows ablation: I_x arrived with the plan
		entry.rows = msg.Rows
		w.whenColumnsPresent(msg.Cols, func() {
			w.enqueue(func() { compute(msg, msg.Rows) })
		})
		return
	}
	w.needRows(msg.Parent, msg.Task, func(rows []int32) {
		w.mu.Lock()
		if w.tasks[msg.Task] != entry { // dropped while waiting
			w.mu.Unlock()
			return
		}
		entry.rows = rows
		w.mu.Unlock()
		w.whenColumnsPresent(msg.Cols, func() {
			w.enqueue(func() { compute(msg, rows) })
		})
	})
}

func (w *Worker) computeColumnTask(msg ColumnPlanMsg, rows []int32) {
	w.mu.Lock()
	y := w.y
	localCols := make([]*dataset.Column, len(msg.Cols))
	for i, c := range msg.Cols {
		localCols[i] = w.cols[c]
	}
	w.mu.Unlock()

	// Per-comper scratch keeps the exact-split kernels allocation-free, and
	// a pooled RowSet loaded once per task lets every numeric column of the
	// task reuse the same membership walk over its presorted index.
	scratch := split.GetScratchObserved(w.sc)
	defer split.PutScratch(scratch)
	var rs *dataset.RowSet
	if !msg.Random && split.Dense(len(rows), y.Len()) && anyNumeric(localCols) {
		rs = w.getRowSet(y.Len())
		rs.AddAll(rows)
		defer func() {
			rs.RemoveAll(rows)
			w.rowSets.Put(rs)
		}()
	}

	best := split.Candidate{}
	for i, colIdx := range msg.Cols {
		col := localCols[i]
		if col == nil {
			w.fail(msg.Task, "assigned column %d not held", colIdx)
			return
		}
		req := split.Request{
			Col: col, ColIdx: colIdx, Y: y, Rows: rows,
			Measure: msg.Measure, NumClasses: msg.NumClasses,
			MaxExhaustiveLevels: msg.MaxExh,
			RowSet:              rs, Scratch: scratch,
			Counters: w.sc,
		}
		var cand split.Candidate
		if msg.Random {
			cand = split.FindRandom(req, rand.New(rand.NewSource(msg.RandomSeed+int64(i))))
		} else {
			cand = split.FindBest(req)
		}
		if cand.Better(best) {
			best = cand
		}
	}
	stats := StatsOf(y, rows, msg.NumClasses)
	w.send(MasterName, ColumnResultMsg{Task: msg.Task, Attempt: msg.Attempt, Worker: w.id, Best: best, Stats: stats})
}

// anyNumeric reports whether any held column of the task is numeric (nil
// entries are reported as a task failure later; skip them here).
func anyNumeric(cols []*dataset.Column) bool {
	for _, c := range cols {
		if c != nil && c.Kind == dataset.Numeric {
			return true
		}
	}
	return false
}

// getRowSet returns a pooled RowSet sized for numRows-row tables, allocating
// one only when the pool is empty or the table size changed (SetTarget never
// changes row counts, so in practice sizes match for a worker's lifetime).
func (w *Worker) getRowSet(numRows int) *dataset.RowSet {
	if v := w.rowSets.Get(); v != nil {
		if rs := v.(*dataset.RowSet); rs.Cap() == numRows {
			w.obs.RowSetGet(true)
			return rs
		}
	}
	w.obs.RowSetGet(false)
	return dataset.NewRowSet(numRows)
}

// handleConfirm runs on the delegate worker: split I_x with the winning
// condition, report child statistics, and retain both sides for the child
// tasks' row requests.
func (w *Worker) handleConfirm(msg ConfirmSplitMsg) {
	w.mu.Lock()
	entry, ok := w.tasks[msg.Task]
	var col *dataset.Column
	if ok {
		col = w.cols[msg.Cond.Col]
	}
	w.mu.Unlock()
	if !ok || entry.attempt != msg.Attempt || entry.confirmed {
		// Dropped task, revoked attempt, or a duplicated confirm delivery:
		// all expected under lossy fabrics — the master's re-execution owns
		// recovery, so a stale confirm is silently ignored.
		return
	}
	if entry.rows == nil {
		w.fail(msg.Task, "confirm for task with no rows")
		return
	}
	if col == nil {
		w.fail(msg.Task, "confirm for column %d not held", msg.Cond.Col)
		return
	}
	cond := msg.Cond
	cond.Rehydrate()
	left, right := cond.Partition(col, entry.rows)
	done := SplitDoneMsg{
		Task: msg.Task, Attempt: entry.attempt, Worker: w.id,
		LeftN: len(left), RightN: len(right),
		LeftStats:  StatsOf(w.y, left, w.schema.NumClasses),
		RightStats: StatsOf(w.y, right, w.schema.NumClasses),
		SeenCodes:  core.SeenCodes(col, entry.rows),
	}
	if msg.Relay {
		done.LeftRows, done.RightRows = left, right
	}
	w.mu.Lock()
	entry.rows = nil
	entry.confirmed = true
	entry.leftRows, entry.rightRows = left, right
	entry.pendingReleases = 2
	w.mu.Unlock()
	w.send(MasterName, done)
}

func (w *Worker) handleRelease(msg ReleaseSideMsg) {
	w.mu.Lock()
	defer w.mu.Unlock()
	entry, ok := w.tasks[msg.Task]
	if !ok || msg.Side > 1 || entry.released[msg.Side] {
		return // unknown task or duplicated release
	}
	entry.released[msg.Side] = true
	if msg.Side == 0 {
		entry.leftRows = nil
	} else {
		entry.rightRows = nil
	}
	entry.pendingReleases--
	if entry.pendingReleases <= 0 {
		delete(w.tasks, msg.Task)
	}
}

func (w *Worker) handleDrop(msg DropTaskMsg) {
	w.mu.Lock()
	if entry, ok := w.tasks[msg.Task]; ok && entry.attempt <= msg.Attempt {
		delete(w.tasks, msg.Task)
		delete(w.rowWaits, msg.Task)
	}
	w.mu.Unlock()
}

// --- Row serving (Section V) ---

func (w *Worker) handleRowsRequest(msg RowsRequestMsg) {
	start := time.Now()
	rows, ok := w.lookupSideRows(msg.Parent.Task, msg.Parent.Side)
	if !ok {
		w.fail(msg.ForTask, "rows request for task %d side %d: not held", msg.Parent.Task, msg.Parent.Side)
		return
	}
	w.send(WorkerName(msg.Requester), RowsResponseMsg{ForTask: msg.ForTask, Rows: rows})
	w.obs.RowServed(time.Since(start))
}

func (w *Worker) handleRowsResponse(msg RowsResponseMsg) {
	w.mu.Lock()
	conts := w.rowWaits[msg.ForTask]
	delete(w.rowWaits, msg.ForTask)
	w.mu.Unlock()
	for _, cont := range conts {
		cont(msg.Rows)
	}
}

// --- Subtree-task flow (Fig. 9(a)) ---

func (w *Worker) handleSubtreePlan(msg SubtreePlanMsg) {
	entry := &wtask{subPlan: &msg, attempt: msg.Attempt, shards: map[int]*dataset.Column{}}
	w.mu.Lock()
	if prev, ok := w.tasks[msg.Task]; ok && prev.attempt >= msg.Attempt {
		w.mu.Unlock()
		return // duplicated or stale plan delivery; keep the live state
	}
	w.tasks[msg.Task] = entry
	w.mu.Unlock()
	withRows := func(rows []int32) {
		w.mu.Lock()
		if w.tasks[msg.Task] != entry {
			w.mu.Unlock()
			return
		}
		entry.rows = rows
		// Group remote columns per serving worker; local columns are
		// gathered at build time.
		perWorker := map[int][]int{}
		for col, server := range msg.ColServer {
			if server != w.id {
				perWorker[server] = append(perWorker[server], col)
				entry.needShards++
			}
		}
		ready := entry.needShards == 0
		w.mu.Unlock()
		for server, cols := range perWorker {
			sort.Ints(cols)
			req := ColDataRequestMsg{
				ForTask: msg.Task, Attempt: msg.Attempt, Cols: cols, Parent: msg.Parent,
				KeyWorker: w.id, Requester: w.id,
			}
			if msg.Rows != nil {
				req.Rows = rows // relay mode: forward I_x to the server
			}
			w.send(WorkerName(server), req)
		}
		if ready {
			w.enqueueBuild(msg, entry)
		}
	}
	if msg.Rows != nil {
		withRows(msg.Rows)
		return
	}
	w.needRows(msg.Parent, msg.Task, withRows)
}

// enqueueBuild schedules the subtree build once the key worker's own column
// replicas are all present (they may be inbound after fault recovery).
func (w *Worker) enqueueBuild(msg SubtreePlanMsg, entry *wtask) {
	var local []int
	for col, server := range msg.ColServer {
		if server == w.id {
			local = append(local, col)
		}
	}
	w.whenColumnsPresent(local, func() {
		w.enqueue(func() { w.buildSubtree(msg, entry) })
	})
}

func (w *Worker) handleColDataRequest(msg ColDataRequestMsg) {
	serve := func(rows []int32) {
		w.mu.Lock()
		data := make([]*dataset.Column, len(msg.Cols))
		for i, c := range msg.Cols {
			col := w.cols[c]
			if col == nil {
				w.mu.Unlock()
				w.fail(msg.ForTask, "data request for column %d not held", c)
				return
			}
			data[i] = col.Gather(rows)
		}
		w.mu.Unlock()
		w.send(WorkerName(msg.KeyWorker), ColDataResponseMsg{ForTask: msg.ForTask, Attempt: msg.Attempt, Cols: msg.Cols, Data: data})
	}
	// Serving runs off the receive loop so a large gather cannot delay
	// heartbeat replies or other peers' row requests; it also waits for any
	// inbound column replicas this worker was just assigned.
	async := func(rows []int32) {
		w.whenColumnsPresent(msg.Cols, func() { go serve(rows) })
	}
	if msg.Rows != nil { // relay mode: rows came with the request
		async(msg.Rows)
		return
	}
	w.needRows(msg.Parent, msg.ForTask, async)
}

func (w *Worker) handleColDataResponse(msg ColDataResponseMsg) {
	w.mu.Lock()
	entry, ok := w.tasks[msg.ForTask]
	if !ok || entry.subPlan == nil || entry.attempt != msg.Attempt {
		// Unknown task or shards gathered for a revoked attempt, whose
		// column set may not match this attempt's requests.
		w.mu.Unlock()
		return
	}
	for i, c := range msg.Cols {
		if _, dup := entry.shards[c]; !dup {
			entry.shards[c] = msg.Data[i]
			entry.needShards--
		}
	}
	ready := entry.needShards == 0 && entry.rows != nil
	plan := *entry.subPlan
	w.mu.Unlock()
	if ready {
		w.enqueueBuild(plan, entry)
	}
}

// buildSubtree runs on a comper: assemble the compact D_x table (candidate
// columns in ascending order plus Y) and train Δ_x locally, then remap
// column indexes back to table coordinates.
func (w *Worker) buildSubtree(msg SubtreePlanMsg, entry *wtask) {
	w.mu.Lock()
	if w.tasks[msg.Task] != entry { // dropped during collection
		w.mu.Unlock()
		return
	}
	rows := entry.rows
	cand := append([]int(nil), msg.Params.Candidates...)
	sort.Ints(cand)
	cols := make([]*dataset.Column, 0, len(cand)+1)
	mapping := make([]int, 0, len(cand))
	missing := -1
	for _, c := range cand {
		shard := entry.shards[c]
		if shard == nil {
			if local := w.cols[c]; local != nil {
				shard = local.Gather(rows)
			} else {
				missing = c
			}
		}
		cols = append(cols, shard)
		mapping = append(mapping, c)
	}
	yShard := w.y.Gather(rows)
	delete(w.tasks, msg.Task)
	w.mu.Unlock()
	if missing >= 0 {
		w.fail(msg.Task, "subtree build missing column %d", missing)
		return
	}

	cols = append(cols, yShard)
	tbl := &dataset.Table{Cols: cols, Target: len(cols) - 1}
	params := msg.Params
	params.Candidates = make([]int, len(mapping))
	for i := range mapping {
		params.Candidates[i] = i
	}
	if params.MaxDepth > 0 {
		params.MaxDepth -= msg.Depth
	}
	tree := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	tree.Walk(func(n *core.Node) {
		if n.Cond != nil {
			n.Cond.Col = mapping[n.Cond.Col]
		}
	})
	w.send(MasterName, SubtreeResultMsg{Task: msg.Task, Attempt: msg.Attempt, Worker: w.id, Subtree: tree})
}

// handleSetTarget swaps in a new numeric label column (gradient-boosting
// rounds). Only valid between jobs: the master serialises it under its job
// lock, so no task references the old Y concurrently.
func (w *Worker) handleSetTarget(msg SetTargetMsg) {
	w.mu.Lock()
	// The master resends SetTarget until an alive quorum acks, so a degraded
	// worker whose acks arrive late sees the same sequence repeatedly. Apply
	// each sequence once; re-ack unconditionally (the ack may be the lost
	// half of the exchange).
	applied := false
	if msg.Seq > w.targetSeq {
		w.targetSeq = msg.Seq
		w.targetApplies++
		w.y = dataset.NewNumeric("Y", msg.Y)
		w.schema.NumClasses = 0
		w.schema.Task = dataset.Regression
		w.schema.Kinds[w.schema.Target] = dataset.Numeric
		applied = true
	}
	w.mu.Unlock()
	if applied {
		// Cached node histograms aggregate the old labels; bins and binned
		// columns survive (they discretise features, not the target).
		w.histCache.reset()
	}
	w.send(MasterName, TargetAckMsg{Worker: w.id, Seq: msg.Seq})
}

// TargetApplies reports how many SetTarget sequences this worker has applied
// — the probe the duplicate-delivery tests assert on.
func (w *Worker) TargetApplies() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.targetApplies
}

// --- Fault-recovery support ---

// handleRejoin re-registers the worker with a restarted master: all in-flight
// task state is discarded (the new master re-plans everything unfinished, and
// its generation-fenced task IDs make stale results unmatchable anyway) and
// the surviving column replicas are reported, sorted, so the master can
// reconcile placement against ground truth. Column shards and the target
// column are kept — they are exactly what makes a master crash recoverable
// without reloading data.
func (w *Worker) handleRejoin(msg RejoinRequestMsg) {
	w.mu.Lock()
	// Track the master generation for the join fence: a worker that has
	// rejoined a promoted master carries its generation in join retries,
	// which lets a not-yet-fenced stale primary reject itself.
	if msg.Gen > w.joinGen {
		w.joinGen = msg.Gen
	}
	w.tasks = map[task.ID]*wtask{}
	w.rowWaits = map[task.ID][]func([]int32){}
	w.colWaits = nil
	// A replacement master restarts its bin sequence at zero, so the fence
	// must reset or its broadcast would be rejected as stale; the re-proposed
	// bins are identical, but the protocol re-derives them for simplicity.
	w.binSeq = 0
	w.bins, w.binned = nil, nil
	// Same story for the SetTarget sequence: the replacement master counts
	// from zero, so an unreset fence would silently swallow its first target
	// swap — boosting rounds after a failover would train on stale labels.
	w.targetSeq = 0
	cols := make([]int, 0, len(w.cols))
	for c := range w.cols {
		cols = append(cols, c)
	}
	w.mu.Unlock()
	w.histCache.reset()
	sort.Ints(cols)
	// A promoted standby on TCP listens on a new address; repoint the master
	// peer before replying so the report (and everything after) reaches it.
	// The in-memory fabric rebinds by name and leaves MasterAddr empty. The
	// endpoint may sit behind telemetry/chaos decorators, hence the unwrap
	// walk to the fabric that actually holds the peer table.
	if msg.MasterAddr != "" {
		for ep := w.ep; ep != nil; {
			if rp, ok := ep.(interface{ RepointPeer(string, string) }); ok {
				rp.RepointPeer(MasterName, msg.MasterAddr)
				break
			}
			u, ok := ep.(interface{ Unwrap() transport.Endpoint })
			if !ok {
				break
			}
			ep = u.Unwrap()
		}
	}
	w.send(MasterName, RejoinReportMsg{Worker: w.id, Gen: msg.Gen, Cols: cols})
}

func (w *Worker) handleReplicate(msg ReplicateColumnMsg) {
	w.mu.Lock()
	col := w.cols[msg.Col]
	w.mu.Unlock()
	if col == nil {
		w.fail(0, "replicate request for column %d not held", msg.Col)
		return
	}
	w.send(WorkerName(msg.To), ColumnCopyMsg{Col: msg.Col, Data: col})
}

func (w *Worker) handleColumnCopy(msg ColumnCopyMsg) {
	w.mu.Lock()
	w.cols[msg.Col] = msg.Data
	var ready []func()
	remaining := w.colWaits[:0]
	for _, cw := range w.colWaits {
		ok := true
		for _, c := range cw.cols {
			if w.cols[c] == nil {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, cw.cont)
		} else {
			remaining = append(remaining, cw)
		}
	}
	w.colWaits = remaining
	w.mu.Unlock()
	// Acknowledge the landed copy (idempotent — duplicates re-ack): drains
	// wait on these before retiring the source of a last replica.
	w.send(MasterName, ColumnCopyAckMsg{Worker: w.id, Col: msg.Col})
	for _, cont := range ready {
		cont()
	}
}
