package cluster

import (
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

func observeN(h *healthTracker, w, n int, perRow time.Duration) {
	for i := 0; i < n; i++ {
		h.ObserveTask(w, 1000, perRow*1000)
	}
}

func TestHealthScoresMedianNormalised(t *testing.T) {
	h := newHealthTracker(4)
	for w := 0; w < 3; w++ {
		observeN(h, w, 3, time.Microsecond)
	}
	observeN(h, 3, 3, 50*time.Microsecond) // 50× slower than the fleet
	scores := h.Scores(nil)
	for w := 0; w < 3; w++ {
		if scores[w] < 0.9 {
			t.Fatalf("healthy worker %d scores %g, want ~1", w, scores[w])
		}
	}
	if scores[3] > 0.05 {
		t.Fatalf("straggler scores %g, want ~0.02 (50× slower)", scores[3])
	}
}

func TestHealthScoresImmuneToUniformSlowness(t *testing.T) {
	// Everyone slowing down together moves the median, not the scores.
	h := newHealthTracker(3)
	for w := 0; w < 3; w++ {
		observeN(h, w, 5, 40*time.Microsecond)
	}
	for w, s := range h.Scores(nil) {
		if s < 0.9 {
			t.Fatalf("uniformly-slow worker %d scores %g, want ~1", w, s)
		}
	}
}

func TestHealthScoresNeutralWithoutSamples(t *testing.T) {
	h := newHealthTracker(3)
	observeN(h, 0, 3, time.Microsecond)
	observeN(h, 1, 3, time.Microsecond)
	// Worker 2 has too few samples to be judged.
	h.ObserveTask(2, 1000, time.Second)
	if s := h.Scores(nil)[2]; s != 1 {
		t.Fatalf("under-sampled worker scores %g, want neutral 1", s)
	}
	if s := h.Scores([]bool{true, true, false})[2]; s != 0 {
		t.Fatalf("dead worker scores %g, want 0", s)
	}
}

func TestHealthEstimateScalesWithSize(t *testing.T) {
	h := newHealthTracker(2)
	observeN(h, 0, 3, 2*time.Microsecond)
	observeN(h, 1, 3, 2*time.Microsecond)
	if est := h.Estimate(1000); est < 1500*time.Microsecond || est > 2500*time.Microsecond {
		t.Fatalf("Estimate(1000) = %v, want ~2ms", est)
	}
	// The size floor keeps tiny-task estimates from collapsing to noise.
	if est := h.Estimate(1); est < time.Duration(healthSizeFloor)*time.Microsecond {
		t.Fatalf("Estimate(1) = %v, below the %d-row floor", est, healthSizeFloor)
	}
	if newHealthTracker(2).Estimate(1000) != 0 {
		t.Fatal("cold tracker must estimate 0 (unknown)")
	}
}

func TestQuarantineCircuitLifecycle(t *testing.T) {
	h := newHealthTracker(4)
	for w := 0; w < 3; w++ {
		observeN(h, w, 3, time.Microsecond)
	}
	observeN(h, 3, 3, 50*time.Microsecond)
	scores := h.Scores(nil)

	opened := h.evaluate(scores, 0.3, 1, nil)
	if len(opened) != 1 || opened[0] != 3 {
		t.Fatalf("opened %v, want [3]", opened)
	}
	if h.state[3] != circuitOpen {
		t.Fatalf("state = %v, want open", h.state[3])
	}
	mask := h.preferredMask()
	if mask == nil || mask[3] || !mask[0] {
		t.Fatalf("preferred mask = %v, want worker 3 excluded", mask)
	}

	// A probe wave probes every worker and moves the suspect to half-open.
	now := time.Now()
	seq, workers := h.probeDue(now, nil)
	if seq == 0 || len(workers) != 4 {
		t.Fatalf("probe wave = (%d, %v), want all 4 workers probed", seq, workers)
	}
	if h.state[3] != circuitHalfOpen {
		t.Fatalf("state = %v, want half-open after wave", h.state[3])
	}
	// No second wave before the interval elapses.
	if s, _ := h.probeDue(now.Add(probeEvery/2), nil); s != 0 {
		t.Fatal("second wave fired before the interval elapsed")
	}

	// Healthy workers ack fast, establishing the baseline; the suspect's
	// slow ack fails probation and re-opens the circuit.
	for w := 0; w < 3; w++ {
		if h.ProbeAck(w, seq, now.Add(100*time.Microsecond)) {
			t.Fatalf("closed worker %d reported as restored", w)
		}
	}
	if h.ProbeAck(3, seq, now.Add(200*time.Millisecond)) {
		t.Fatal("slow probe ack passed probation")
	}
	if h.state[3] != circuitOpen {
		t.Fatalf("state = %v, want re-opened after failed probation", h.state[3])
	}

	// Next wave: the worker has recovered and acks at fleet speed.
	now = now.Add(2 * probeEvery)
	seq, _ = h.probeDue(now, nil)
	for w := 0; w < 3; w++ {
		h.ProbeAck(w, seq, now.Add(100*time.Microsecond))
	}
	if !h.ProbeAck(3, seq, now.Add(150*time.Microsecond)) {
		t.Fatal("fleet-speed probe ack failed probation")
	}
	if h.state[3] != circuitClosed {
		t.Fatalf("state = %v, want closed after probation pass", h.state[3])
	}
	if h.taskSamples[3] != 0 {
		t.Fatal("restored worker kept its stale slow samples")
	}
	if h.preferredMask() != nil {
		t.Fatal("all-closed fleet must yield a nil preference mask")
	}
}

func TestQuarantineBoundedByMaxQuarantined(t *testing.T) {
	h := newHealthTracker(5)
	observeN(h, 0, 3, time.Microsecond)
	observeN(h, 1, 3, time.Microsecond)
	observeN(h, 2, 3, time.Microsecond)
	observeN(h, 3, 3, 80*time.Microsecond)
	observeN(h, 4, 3, 80*time.Microsecond)
	opened := h.evaluate(h.Scores(nil), 0.3, 1, nil)
	if len(opened) != 1 {
		t.Fatalf("opened %v, want exactly 1 (MaxQuarantined)", opened)
	}
	quarantined := 0
	for _, s := range h.state {
		if s != circuitClosed {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Fatalf("%d workers quarantined, want 1", quarantined)
	}
}

func TestWorkerFailedClearsQuarantine(t *testing.T) {
	h := newHealthTracker(2)
	observeN(h, 1, 3, time.Microsecond)
	h.state[0] = circuitOpen
	h.WorkerFailed(0)
	if h.state[0] != circuitClosed || h.taskSamples[0] != 0 {
		t.Fatal("failed worker kept quarantine state or samples")
	}
}

func TestPingRTTFeedsHealth(t *testing.T) {
	h := newHealthTracker(2)
	base := time.Now()
	h.PingSent(1, base)
	h.PongReceived(0, 1, base.Add(time.Millisecond))
	if h.rttSamples[0] != 1 || h.rttEwma[0] != float64(time.Millisecond) {
		t.Fatalf("pong rtt not recorded: samples=%d ewma=%g", h.rttSamples[0], h.rttEwma[0])
	}
	// Unmatched sequence (pruned or never sent) must not record garbage.
	h.PongReceived(1, 99, base)
	if h.rttSamples[1] != 0 {
		t.Fatal("unmatched pong recorded an RTT")
	}
}

func TestAttemptDeadlineScalesWithSizeAndSpawns(t *testing.T) {
	m := &Master{cfg: MasterConfig{TaskRetry: 100 * time.Millisecond}, schema: Schema{NumRows: 1000}}
	if d := m.attemptDeadline(1, 1000); d != 100*time.Millisecond {
		t.Fatalf("full-size deadline = %v, want TaskRetry", d)
	}
	// A tiny task gets the floor: a quarter of the configured deadline.
	if d := m.attemptDeadline(1, 0); d != 25*time.Millisecond {
		t.Fatalf("tiny-task deadline = %v, want 25ms floor", d)
	}
	if d := m.attemptDeadline(1, 500); d != 62500*time.Microsecond {
		t.Fatalf("half-size deadline = %v, want 62.5ms", d)
	}
	// Doubling per prior full execution, capped.
	if d := m.attemptDeadline(3, 1000); d != 400*time.Millisecond {
		t.Fatalf("3rd-execution deadline = %v, want 400ms", d)
	}
	if d8, d16 := m.attemptDeadline(8, 1000), m.attemptDeadline(16, 1000); d8 != d16 {
		t.Fatalf("backoff not capped: %v vs %v", d8, d16)
	}
}

// TestSetTargetDegradedWorkerAppliesOnce is the gray-failure variant of the
// SetTarget protocol test: worker 1 stays alive but its acks crawl, forcing
// the master's resend loop to deliver the same sequence repeatedly. The
// worker-side fence must apply each sequence exactly once — duplicate
// application would corrupt boosting residuals silently.
func TestSetTargetDegradedWorkerAppliesOnce(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "stdeg", Rows: 600, NumNumeric: 5, NumClasses: 2, ConceptDepth: 3, Seed: 77})
	chaos := transport.NewChaosNetwork(42, transport.FaultPlan{
		Name: "degraded-acks",
		Degrades: []transport.Degrade{{
			Name: WorkerName(1), Delay: 50 * time.Millisecond,
		}},
	})
	c, err := NewInProcess(tbl,
		WithWorkers(3), WithCompers(1), WithReplicas(2),
		WithTaskRetry(15*time.Millisecond, 8),
		WithEndpointWrapper(chaos.Wrap),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 3
	y := make([]float64, tbl.NumRows())
	for round := 1; round <= rounds; round++ {
		for i := range y {
			y[i] = float64(round*1000 + i)
		}
		if err := c.SetTarget(y); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for _, w := range c.Workers {
		if got := w.TargetApplies(); got != rounds {
			t.Fatalf("worker %d applied %d target updates, want exactly %d", w.ID(), got, rounds)
		}
	}
	if chaos.Faults() == 0 {
		t.Fatal("degrade plan injected nothing — the test exercised no resends")
	}
}

// TestHedgeDisjointFromOriginal pins the correctness requirement that makes
// hedging safe with a task-ID-keyed worker state table: the duplicate attempt
// must never land on a worker already involved in an outstanding attempt.
func TestHedgeDisjointFromOriginal(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "hedgedj", Rows: 1200, NumNumeric: 6, NumClasses: 2, ConceptDepth: 4, Seed: 78})
	c, err := NewInProcess(tbl,
		WithWorkers(4), WithCompers(2), WithReplicas(3),
		WithTaskRetry(500*time.Millisecond, 8),
		WithHedgeFactor(0.0001), // hedge everything hedgeable, immediately
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	specs := make([]TreeSpec, 4)
	for i := range specs {
		specs[i] = TreeSpec{Params: core.Defaults(), Bag: BagSpec{NumRows: tbl.NumRows()}}
	}
	trees, err := c.Train(specs)
	if err != nil {
		t.Fatal(err)
	}
	serial := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), core.Defaults())
	for i, tr := range trees {
		if d := core.DiffTrees(serial, tr); d != "" {
			t.Fatalf("tree %d diverges under aggressive hedging:\n%s", i, d)
		}
	}

	// Whitebox: every surviving task entry's attempts must be worker-disjoint
	// (the table is empty at quiescence, so assert on the invariant checker
	// instead — re-run a job while probing the table concurrently would be
	// racy; the bit-identical trees above are the behavioural proof).
	m := c.Master
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, entry := range m.tasks {
		seen := map[int]int{}
		for n, as := range entry.attempts {
			if entry.plan.kind == task.SubtreeTask { // only key workers must differ
				if prev, dup := seen[as.keyWorker]; dup {
					t.Fatalf("task %d: attempts %d and %d share key worker %d", id, prev, n, as.keyWorker)
				}
				seen[as.keyWorker] = n
				continue
			}
			for w := range as.involved {
				if prev, dup := seen[w]; dup {
					t.Fatalf("task %d: attempts %d and %d share worker %d", id, prev, n, w)
				}
				seen[w] = n
			}
		}
	}
}
